// Command tmprof analyses the transaction-level flight-recorder profiles
// embedded in a BenchReport JSON document (asfbench -profile, or the txprof
// experiment which records unconditionally): per-cell wasted-work summaries,
// abort-cause breakdowns, the most contended cache lines, and the
// aborter→victim causality graph.
//
//	asfbench -experiment txprof -scale 0.1 -format json -o prof.json
//	tmprof prof.json                      # summary + per-cell leaderboards
//	tmprof -cell linkedlist prof.json     # only cells matching a substring
//	tmprof -top 8 prof.json               # cap the leaderboards
//	tmprof -dump prof.json                # raw per-core event dumps
//	tmprof -dot graph.dot prof.json       # causality graph as Graphviz DOT
//	tmprof -trace trace.json prof.json    # event windows as Chrome instants
//	tmprof -o analysis.txt prof.json
//
// All text output is assembled from the deterministic sim sections of the
// report, in report order with total sorts — so for a fixed seed it is
// byte-identical across runs and across the asfbench -parallel values that
// produced the report.
//
// Exit status 1 means the report contained no matching profiles; 2 means
// the invocation itself was bad (missing argument, unreadable or invalid
// report, unwritable output).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"asfstack/internal/harness"
	"asfstack/internal/trace"
	"asfstack/internal/txprof"
)

// profiledCell is one report cell that carried a flight-recorder snapshot.
type profiledCell struct {
	Name    string // "<experiment> <cell label>"
	Profile *txprof.Profile
}

func main() {
	cellFilter := flag.String("cell", "", "only analyse cells whose name contains this substring")
	top := flag.Int("top", txprof.TopLinesN, "rows kept in the contended-line and causality-edge leaderboards")
	dump := flag.Bool("dump", false, "print raw per-core event dumps instead of the analysis tables")
	dotPath := flag.String("dot", "", "write the aborter→victim causality graph as Graphviz DOT to this file")
	tracePath := flag.String("trace", "", "write the surviving event windows as a Chrome trace_event JSON file")
	outPath := flag.String("o", "", "write the text output to this file instead of stdout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tmprof [flags] report.json  (a BenchReport with txprof profiles)")
		os.Exit(2)
	}

	cells, err := loadProfiles(flag.Arg(0), *cellFilter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmprof:", err)
		os.Exit(2)
	}
	if len(cells) == 0 {
		if *cellFilter != "" {
			fmt.Fprintf(os.Stderr, "tmprof: %s: no profiled cells match -cell %q (run asfbench with -profile?)\n",
				flag.Arg(0), *cellFilter)
		} else {
			fmt.Fprintf(os.Stderr, "tmprof: %s: no cell carries a txprof profile (run asfbench with -profile?)\n",
				flag.Arg(0))
		}
		os.Exit(1)
	}

	emit := analyse(cells, *top)
	if *dump {
		emit = func(w io.Writer) error {
			for _, c := range cells {
				fmt.Fprintf(w, "\n== %s ==\n", c.Name)
				c.Profile.WriteDump(w)
			}
			return nil
		}
	}
	if err := writeOutput(*outPath, emit); err != nil {
		fmt.Fprintln(os.Stderr, "tmprof:", err)
		os.Exit(2)
	}

	if *dotPath != "" {
		if err := writeOutput(*dotPath, func(w io.Writer) error {
			writeDOT(w, cells)
			return nil
		}); err != nil {
			fmt.Fprintln(os.Stderr, "tmprof:", err)
			os.Exit(2)
		}
	}
	if *tracePath != "" {
		var tc []trace.ProfileCell
		for _, c := range cells {
			tc = append(tc, trace.ProfileCell{Name: c.Name, Profile: c.Profile})
		}
		if err := writeOutput(*tracePath, func(w io.Writer) error {
			return trace.WriteChromeProfiles(w, tc)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "tmprof:", err)
			os.Exit(2)
		}
	}
}

// loadProfiles reads a BenchReport document and returns every cell carrying
// a flight-recorder profile, in report order, filtered by substring match
// on "<experiment> <label>".
func loadProfiles(path, filter string) ([]profiledCell, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if rep.Schema != harness.ReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, harness.ReportSchema)
	}
	if rep.Version != harness.ReportVersion {
		return nil, fmt.Errorf("%s: version %d, want %d", path, rep.Version, harness.ReportVersion)
	}
	var cells []profiledCell
	for _, exp := range rep.Experiments {
		for _, c := range exp.Cells {
			if c.Sim == nil || c.Sim.Profile == nil {
				continue
			}
			p := c.Sim.Profile
			if p.Schema != txprof.ProfileSchema || p.Version != txprof.ProfileVersion {
				return nil, fmt.Errorf("%s: cell %q: profile schema %q v%d, want %q v%d",
					path, c.Label, p.Schema, p.Version, txprof.ProfileSchema, txprof.ProfileVersion)
			}
			name := c.Label
			if !strings.HasPrefix(name, exp.Name+" ") {
				name = exp.Name + " " + name
			}
			if filter != "" && !strings.Contains(name, filter) {
				continue
			}
			cells = append(cells, profiledCell{Name: name, Profile: p})
		}
	}
	return cells, nil
}

// analyse renders the summary table plus per-cell leaderboards.
func analyse(cells []profiledCell, top int) func(io.Writer) error {
	return func(w io.Writer) error {
		sum := &harness.Table{
			Title: "txprof — wasted-work summary (one row per profiled cell)",
			Header: []string{"cell", "begins", "commits", "aborts", "fallbacks",
				"useful-cyc", "wasted-cyc", "wasted%"},
			Note: "wasted% = attempt cycles thrown away on aborts / (useful + wasted)",
		}
		for _, c := range cells {
			s := c.Profile.Summary
			sum.Add(c.Name, s.Begins, s.Commits, s.Aborts, s.Fallbacks,
				s.UsefulCycles, s.WastedCycles, fmt.Sprintf("%.1f", 100*s.WastedRatio))
		}
		sum.Fprint(w)

		for _, c := range cells {
			s := c.Profile.Summary
			if len(s.AbortsByCause) > 0 {
				t := &harness.Table{
					Title:  c.Name + " — aborts by cause",
					Header: []string{"cause", "count"},
				}
				for _, cc := range s.AbortsByCause {
					t.Add(cc.Cause, cc.Count)
				}
				t.Fprint(w)
			}
			if len(s.TopLines) > 0 {
				t := &harness.Table{
					Title:  c.Name + " — most contended cache lines (flight window)",
					Header: []string{"line", "aborts"},
				}
				for i, lc := range s.TopLines {
					if i >= top {
						break
					}
					t.Add(lc.Addr.String(), lc.Count)
				}
				t.Fprint(w)
			}
			if len(s.Edges) > 0 {
				t := &harness.Table{
					Title:  c.Name + " — causality edges (aborter → victim, full run)",
					Header: []string{"aborter", "victim", "aborts"},
				}
				for i, e := range heaviestFirst(s.Edges) {
					if i >= top {
						break
					}
					t.Add(fmt.Sprintf("core %d", e.From), fmt.Sprintf("core %d", e.To), e.Count)
				}
				t.Fprint(w)
			}
		}
		return nil
	}
}

// heaviestFirst orders edges by count descending, ties by (from, to) — a
// total order, so leaderboards are deterministic.
func heaviestFirst(edges []txprof.Edge) []txprof.Edge {
	out := make([]txprof.Edge, len(edges))
	copy(out, edges)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// writeDOT renders the causality graphs as one Graphviz document: each cell
// a cluster, each core a node, each aborter→victim edge labelled with its
// abort count. Deterministic: cells in report order, edges in (from, to)
// order as the profile stores them.
func writeDOT(w io.Writer, cells []profiledCell) {
	fmt.Fprintln(w, "digraph txprof {")
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=circle];")
	for i, c := range cells {
		fmt.Fprintf(w, "  subgraph cluster_%d {\n", i)
		fmt.Fprintf(w, "    label=%q;\n", c.Name)
		seen := map[int]bool{}
		node := func(core int) {
			if !seen[core] {
				seen[core] = true
				fmt.Fprintf(w, "    c%d_%d [label=%q];\n", i, core, fmt.Sprintf("core %d", core))
			}
		}
		for _, e := range c.Profile.Summary.Edges {
			node(e.From)
			node(e.To)
		}
		for _, e := range c.Profile.Summary.Edges {
			fmt.Fprintf(w, "    c%d_%d -> c%d_%d [label=\"%d\"];\n", i, e.From, i, e.To, e.Count)
		}
		fmt.Fprintln(w, "  }")
	}
	fmt.Fprintln(w, "}")
}

// writeOutput writes via emit to path, or to stdout when path is empty.
func writeOutput(path string, emit func(io.Writer) error) error {
	if path == "" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
