// Command asfsim runs a single workload configuration on the simulated ASF
// stack and prints its measurements — the one-off counterpart to
// cmd/asfbench's full sweeps.
//
//	asfsim -workload intset -structure rbtree -runtime LLB-256 -threads 8
//	asfsim -workload stamp -app vacation-low -runtime STM -threads 4
//	asfsim -workload server -runtime LLB-256 -topology 2x8 -load 1.4
//	asfsim -workload intset -topology 4x16 -engine epoch
package main

import (
	"flag"
	"fmt"
	"os"

	"asfstack/internal/intset"
	"asfstack/internal/metrics"
	"asfstack/internal/server"
	"asfstack/internal/sim"
	"asfstack/internal/stamp"
)

func main() {
	workload := flag.String("workload", "intset", "intset, stamp, or server")
	runtimeName := flag.String("runtime", "LLB-256", "LLB-8, LLB-256, LLB-8 w/ L1, LLB-256 w/ L1, STM, Sequential")
	threads := flag.Int("threads", 4, "simulated cores (ignored when -topology is set)")
	seed := flag.Int64("seed", 42, "random seed")
	topology := flag.String("topology", "",
		"socket layout, e.g. 2x8 (sockets x cores-per-socket); empty = single socket; overrides -threads")
	engineFlag := flag.String("engine", "serial",
		"simulator execution engine: serial or epoch (results are bit-identical)")
	epochLen := flag.Uint64("epoch-len", 0,
		"epoch length in simulated cycles for -engine epoch (0 = default)")

	structure := flag.String("structure", "rbtree", "intset: linkedlist, skiplist, rbtree, hashset")
	keyRange := flag.Uint64("range", 1024, "intset: key range")
	update := flag.Int("update", 20, "intset: update percentage")
	ops := flag.Int("ops", 1500, "intset: operations per thread")
	early := flag.Bool("early-release", false, "intset: hand-over-hand list traversal")

	app := flag.String("app", "genome", "stamp: application name")
	scale := flag.Float64("scale", 1.0, "stamp/server: input scale")

	load := flag.Float64("load", 0.7, "server: offered per-core load (fraction of nominal service rate; >= 1 is overload)")
	requests := flag.Int("requests", 0, "server: requests per core (0 = default from scale)")
	zipf := flag.Float64("zipf", 1.2, "server: item-key Zipf skew exponent (> 1)")
	flag.Parse()

	engine, err := sim.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asfsim:", err)
		os.Exit(2)
	}
	// With an explicit topology the core count comes from it; keep the
	// workload configs unambiguous by zeroing -threads' default.
	if *topology != "" {
		*threads = 0
	}

	switch *workload {
	case "intset":
		r, err := intset.Run(intset.Config{
			Structure: *structure, Runtime: *runtimeName, Threads: *threads,
			Range: *keyRange, UpdatePct: *update, OpsPerThread: *ops,
			EarlyRelease: *early, Seed: *seed,
			Engine: engine, EpochLen: *epochLen, Topology: *topology,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "asfsim:", err)
			os.Exit(1)
		}
		fmt.Printf("workload     intset %s (range=%d, %d%% upd, %d threads)\n",
			*structure, *keyRange, *update, r.Config.Threads)
		fmt.Printf("runtime      %s\n", *runtimeName)
		printTopology(*topology, r.Metrics)
		fmt.Printf("throughput   %.2f tx/µs\n", r.Throughput())
		fmt.Printf("duration     %.3f ms simulated\n", float64(r.Cycles)/2_200_000)
		printStats(r.Stats.Commits, r.Stats.Serial, r.Stats.TotalAborts(), r.Stats.STMAborts)
		printBreakdown(r.Breakdown)
	case "stamp":
		r, err := stamp.Run(stamp.Config{
			App: *app, Runtime: *runtimeName, Threads: *threads,
			Scale: *scale, Seed: *seed,
			Engine: engine, EpochLen: *epochLen, Topology: *topology,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "asfsim:", err)
			os.Exit(1)
		}
		fmt.Printf("workload     stamp %s (scale %.2f, %d threads)\n", *app, *scale, r.Config.Threads)
		fmt.Printf("runtime      %s\n", *runtimeName)
		printTopology(*topology, r.Metrics)
		fmt.Printf("duration     %.3f ms simulated\n", r.Millis)
		printStats(r.Stats.Commits, r.Stats.Serial, r.Stats.TotalAborts(), r.Stats.STMAborts)
		printBreakdown(r.Breakdown)
	case "server":
		r, err := server.Run(server.Config{
			Runtime: *runtimeName, Threads: *threads, Topology: *topology,
			RequestsPerCore: *requests, Load: *load, ZipfS: *zipf,
			Scale: *scale, Seed: *seed,
			Engine: engine, EpochLen: *epochLen,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "asfsim:", err)
			os.Exit(1)
		}
		fmt.Printf("workload     server (open-loop, load=%.2f, zipf=%.2f, %d requests/core, %d threads)\n",
			r.Config.Load, r.Config.ZipfS, r.Config.RequestsPerCore, r.Config.Threads)
		fmt.Printf("runtime      %s\n", *runtimeName)
		printTopology(*topology, r.Metrics)
		fmt.Printf("throughput   %.2f tx/µs\n", r.Throughput())
		fmt.Printf("duration     %.3f ms simulated\n", r.Millis)
		fmt.Printf("sojourn      p50 %.0f  p95 %.0f  p99 %.0f  p999 %.0f  max %d cycles\n",
			r.P50, r.P95, r.P99, r.P999, r.MaxSojourn)
		printStats(r.Stats.Commits, r.Stats.Serial, r.Stats.TotalAborts(), r.Stats.STMAborts)
		printBreakdown(r.Breakdown)
	default:
		fmt.Fprintf(os.Stderr, "asfsim: unknown workload %q\n", *workload)
		os.Exit(2)
	}
}

func printStats(commits, serial, aborts, stmAborts uint64) {
	fmt.Printf("commits      %d (%d serial-irrevocable)\n", commits, serial)
	fmt.Printf("aborts       %d (%d software)\n", aborts, stmAborts)
}

// printTopology reports the socket layout and its directory traffic when a
// multi-socket topology was requested.
func printTopology(topology string, m *metrics.Snapshot) {
	if topology == "" || m == nil {
		return
	}
	hops := uint64(0)
	if g, ok := m.Gauge("cache/xsock_hops"); ok {
		hops = g.Total
	}
	fmt.Printf("topology     %s (%d cross-socket hops)\n", topology, hops)
}

func printBreakdown(b sim.Breakdown) {
	total := b.Total()
	if total == 0 {
		return
	}
	fmt.Printf("cycles       %d total\n", total)
	for i := 0; i < sim.NumCategories; i++ {
		c := sim.Category(i)
		fmt.Printf("  %-16s %12d  (%5.1f%%)\n", c, b[c], float64(b[c])/float64(total)*100)
	}
}
