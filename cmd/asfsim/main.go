// Command asfsim runs a single workload configuration on the simulated ASF
// stack and prints its measurements — the one-off counterpart to
// cmd/asfbench's full sweeps.
//
//	asfsim -workload intset -structure rbtree -runtime LLB-256 -threads 8
//	asfsim -workload stamp -app vacation-low -runtime STM -threads 4
package main

import (
	"flag"
	"fmt"
	"os"

	"asfstack/internal/intset"
	"asfstack/internal/sim"
	"asfstack/internal/stamp"
)

func main() {
	workload := flag.String("workload", "intset", "intset or stamp")
	runtimeName := flag.String("runtime", "LLB-256", "LLB-8, LLB-256, LLB-8 w/ L1, LLB-256 w/ L1, STM, Sequential")
	threads := flag.Int("threads", 4, "simulated cores")
	seed := flag.Int64("seed", 42, "random seed")

	structure := flag.String("structure", "rbtree", "intset: linkedlist, skiplist, rbtree, hashset")
	keyRange := flag.Uint64("range", 1024, "intset: key range")
	update := flag.Int("update", 20, "intset: update percentage")
	ops := flag.Int("ops", 1500, "intset: operations per thread")
	early := flag.Bool("early-release", false, "intset: hand-over-hand list traversal")

	app := flag.String("app", "genome", "stamp: application name")
	scale := flag.Float64("scale", 1.0, "stamp: input scale")
	flag.Parse()

	switch *workload {
	case "intset":
		r, err := intset.Run(intset.Config{
			Structure: *structure, Runtime: *runtimeName, Threads: *threads,
			Range: *keyRange, UpdatePct: *update, OpsPerThread: *ops,
			EarlyRelease: *early, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "asfsim:", err)
			os.Exit(1)
		}
		fmt.Printf("workload     intset %s (range=%d, %d%% upd, %d threads)\n",
			*structure, *keyRange, *update, *threads)
		fmt.Printf("runtime      %s\n", *runtimeName)
		fmt.Printf("throughput   %.2f tx/µs\n", r.Throughput())
		fmt.Printf("duration     %.3f ms simulated\n", float64(r.Cycles)/2_200_000)
		printStats(r.Stats.Commits, r.Stats.Serial, r.Stats.TotalAborts(), r.Stats.STMAborts)
		printBreakdown(r.Breakdown)
	case "stamp":
		r, err := stamp.Run(stamp.Config{
			App: *app, Runtime: *runtimeName, Threads: *threads,
			Scale: *scale, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "asfsim:", err)
			os.Exit(1)
		}
		fmt.Printf("workload     stamp %s (scale %.2f, %d threads)\n", *app, *scale, *threads)
		fmt.Printf("runtime      %s\n", *runtimeName)
		fmt.Printf("duration     %.3f ms simulated\n", r.Millis)
		printStats(r.Stats.Commits, r.Stats.Serial, r.Stats.TotalAborts(), r.Stats.STMAborts)
		printBreakdown(r.Breakdown)
	default:
		fmt.Fprintf(os.Stderr, "asfsim: unknown workload %q\n", *workload)
		os.Exit(2)
	}
}

func printStats(commits, serial, aborts, stmAborts uint64) {
	fmt.Printf("commits      %d (%d serial-irrevocable)\n", commits, serial)
	fmt.Printf("aborts       %d (%d software)\n", aborts, stmAborts)
}

func printBreakdown(b sim.Breakdown) {
	total := b.Total()
	if total == 0 {
		return
	}
	fmt.Printf("cycles       %d total\n", total)
	for i := 0; i < sim.NumCategories; i++ {
		c := sim.Category(i)
		fmt.Printf("  %-16s %12d  (%5.1f%%)\n", c, b[c], float64(b[c])/float64(total)*100)
	}
}
