package main

import (
	"bufio"
	"strings"
	"testing"
)

func parseString(t *testing.T, s string) map[string]entry {
	t.Helper()
	res, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParseBenchLines(t *testing.T) {
	out := `
goos: linux
BenchmarkFig5 	       1	5086217894 ns/op
BenchmarkSimulatorOpRate/solo         	  109178	     21864 ns/op	        21.86 host_ns/op
BenchmarkSimulatorOpRate/8core        	     996	   2345366 ns/op	       293.2 host_ns/op
BenchmarkStampGenomeASF 	       2	 512345678 ns/op	        12.5 sim_ms
PASS
`
	res := parseString(t, out)
	if len(res) != 4 {
		t.Fatalf("parsed %d entries, want 4: %v", len(res), res)
	}
	if e := res["BenchmarkFig5"]; e.NsPerOp != 5086217894 || e.Iters != 1 {
		t.Fatalf("Fig5 = %+v", e)
	}
	if e := res["BenchmarkSimulatorOpRate/8core"]; e.Metrics["host_ns/op"] != 293.2 {
		t.Fatalf("8core metrics = %+v", e.Metrics)
	}
	if e := res["BenchmarkStampGenomeASF"]; e.Metrics["sim_ms"] != 12.5 {
		t.Fatalf("genome metrics = %+v", e.Metrics)
	}
}

func TestLastOccurrenceWins(t *testing.T) {
	out := `
BenchmarkSimulatorOpRate/solo 	1	80000 ns/op	80.0 host_ns/op
BenchmarkSimulatorOpRate/solo 	100000	22000 ns/op	22.0 host_ns/op
`
	res := parseString(t, out)
	if e := res["BenchmarkSimulatorOpRate/solo"]; e.Metrics["host_ns/op"] != 22.0 {
		t.Fatalf("later line did not win: %+v", e)
	}
}

func TestProcSuffixStripping(t *testing.T) {
	// All names share -8: it is the GOMAXPROCS suffix and must go.
	res := parseString(t, `
BenchmarkFig5-8 	1	5086217894 ns/op
BenchmarkAtomicOverhead/LLB-256-8 	10	1000 ns/op
`)
	if _, ok := res["BenchmarkAtomicOverhead/LLB-256"]; !ok {
		t.Fatalf("suffix not stripped: %v", res)
	}
	// Mixed digit endings: legitimate parts of the names, keep them.
	res = parseString(t, `
BenchmarkAtomicOverhead/LLB-256 	10	1000 ns/op
BenchmarkAtomicOverhead/LLB-8 	10	1000 ns/op
`)
	if _, ok := res["BenchmarkAtomicOverhead/LLB-256"]; !ok {
		t.Fatalf("legitimate digit suffix stripped: %v", res)
	}
}
