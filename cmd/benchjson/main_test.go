package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseString(t *testing.T, s string) map[string]entry {
	t.Helper()
	res, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParseBenchLines(t *testing.T) {
	out := `
goos: linux
BenchmarkFig5 	       1	5086217894 ns/op
BenchmarkSimulatorOpRate/solo         	  109178	     21864 ns/op	        21.86 host_ns/op
BenchmarkSimulatorOpRate/8core        	     996	   2345366 ns/op	       293.2 host_ns/op
BenchmarkStampGenomeASF 	       2	 512345678 ns/op	        12.5 sim_ms
PASS
`
	res := parseString(t, out)
	if len(res) != 4 {
		t.Fatalf("parsed %d entries, want 4: %v", len(res), res)
	}
	if e := res["BenchmarkFig5"]; e.NsPerOp != 5086217894 || e.Iters != 1 {
		t.Fatalf("Fig5 = %+v", e)
	}
	if e := res["BenchmarkSimulatorOpRate/8core"]; e.Metrics["host_ns/op"] != 293.2 {
		t.Fatalf("8core metrics = %+v", e.Metrics)
	}
	if e := res["BenchmarkStampGenomeASF"]; e.Metrics["sim_ms"] != 12.5 {
		t.Fatalf("genome metrics = %+v", e.Metrics)
	}
}

func TestLastOccurrenceWins(t *testing.T) {
	out := `
BenchmarkSimulatorOpRate/solo 	1	80000 ns/op	80.0 host_ns/op
BenchmarkSimulatorOpRate/solo 	100000	22000 ns/op	22.0 host_ns/op
`
	res := parseString(t, out)
	if e := res["BenchmarkSimulatorOpRate/solo"]; e.Metrics["host_ns/op"] != 22.0 {
		t.Fatalf("later line did not win: %+v", e)
	}
}

func TestProcSuffixStripping(t *testing.T) {
	// All names share -8: it is the GOMAXPROCS suffix and must go.
	res := parseString(t, `
BenchmarkFig5-8 	1	5086217894 ns/op
BenchmarkAtomicOverhead/LLB-256-8 	10	1000 ns/op
`)
	if _, ok := res["BenchmarkAtomicOverhead/LLB-256"]; !ok {
		t.Fatalf("suffix not stripped: %v", res)
	}
	// Mixed digit endings: legitimate parts of the names, keep them.
	res = parseString(t, `
BenchmarkAtomicOverhead/LLB-256 	10	1000 ns/op
BenchmarkAtomicOverhead/LLB-8 	10	1000 ns/op
`)
	if _, ok := res["BenchmarkAtomicOverhead/LLB-256"]; !ok {
		t.Fatalf("legitimate digit suffix stripped: %v", res)
	}
}

// writeDoc marshals d to a file under t.TempDir and returns its path.
func writeDoc(t *testing.T, d doc) string {
	t.Helper()
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_TEST.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func validDoc() doc {
	return doc{
		Schema:  schema,
		Version: version,
		Sections: map[string]map[string]entry{
			"baseline": {
				"BenchmarkFig5": {NsPerOp: 100, Iters: 1,
					Metrics: map[string]float64{"allocs/op": 10, "B/op": 2048, "sim_ms": 12.5}},
			},
			"current": {
				"BenchmarkFig5": {NsPerOp: 150, Iters: 1,
					Metrics: map[string]float64{"allocs/op": 10, "B/op": 2048, "sim_ms": 12.5}},
			},
		},
	}
}

func TestCheckFileValid(t *testing.T) {
	v, err := checkFile(writeDoc(t, validDoc()))
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if v != version {
		t.Fatalf("reported version %d, want %d", v, version)
	}
	// Version-1 documents (committed baselines) remain valid and report
	// their own version.
	d := validDoc()
	d.Version = 1
	if v, err := checkFile(writeDoc(t, d)); err != nil || v != 1 {
		t.Fatalf("v1 document: version %d, err %v", v, err)
	}
}

func TestCheckFileRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*doc)
		errWant string
	}{
		{"wrong schema", func(d *doc) { d.Schema = "other/schema" }, "schema"},
		{"wrong version", func(d *doc) { d.Version = 99 }, "version"},
		{"no sections", func(d *doc) { d.Sections = nil }, "no sections"},
		{"empty section", func(d *doc) { d.Sections["baseline"] = map[string]entry{} }, "is empty"},
		{"non-benchmark name", func(d *doc) {
			d.Sections["baseline"]["notabench"] = entry{NsPerOp: 1, Iters: 1}
		}, "not a benchmark name"},
		{"zero iters", func(d *doc) {
			d.Sections["baseline"]["BenchmarkFig5"] = entry{NsPerOp: 1, Iters: 0}
		}, "iters"},
		{"negative ns/op", func(d *doc) {
			d.Sections["baseline"]["BenchmarkFig5"] = entry{NsPerOp: -1, Iters: 1}
		}, "negative ns/op"},
		{"negative metric", func(d *doc) {
			d.Sections["baseline"]["BenchmarkFig5"] = entry{NsPerOp: 1, Iters: 1,
				Metrics: map[string]float64{"B/op": -8}}
		}, "negative B/op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := validDoc()
			tc.mutate(&d)
			_, err := checkFile(writeDoc(t, d))
			if err == nil || !strings.Contains(err.Error(), tc.errWant) {
				t.Fatalf("err = %v, want mention of %q", err, tc.errWant)
			}
		})
	}
}

func TestCheckFileTruncatedJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_TRUNC.json")
	if err := os.WriteFile(path, []byte(`{"schema": "asfstack/bench-js`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := checkFile(path); err == nil || !strings.Contains(err.Error(), "not valid JSON") {
		t.Fatalf("truncated JSON accepted: %v", err)
	}
}

// TestCompareHostGrowthAdvisory: host-time growth alone (ns/op and host
// units) must not gate — deterministic metrics are unchanged.
func TestCompareHostGrowthAdvisory(t *testing.T) {
	path := writeDoc(t, validDoc()) // ns/op grows 100 → 150
	var b strings.Builder
	regressed, err := compareSections(&b, path, "baseline,current", false)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("host-only growth gated:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "(host, advisory)") {
		t.Fatalf("missing advisory marker:\n%s", out)
	}
	if strings.Contains(out, "REGRESSED") || strings.Contains(out, "FAIL") {
		t.Fatalf("advisory delta flagged as regression:\n%s", out)
	}
}

// TestCompareDeterministicRegression: allocs/op or B/op growing from the
// first section to the second must flag the run as regressed.
func TestCompareDeterministicRegression(t *testing.T) {
	for _, unit := range deterministicMetrics {
		t.Run(unit, func(t *testing.T) {
			d := validDoc()
			e := d.Sections["current"]["BenchmarkFig5"]
			e.Metrics[unit] = e.Metrics[unit] + 1
			d.Sections["current"]["BenchmarkFig5"] = e
			var b strings.Builder
			regressed, err := compareSections(&b, writeDoc(t, d), "baseline,current", false)
			if err != nil {
				t.Fatal(err)
			}
			if !regressed {
				t.Fatalf("%s growth not flagged:\n%s", unit, b.String())
			}
			out := b.String()
			if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "FAIL") {
				t.Fatalf("missing REGRESSED/FAIL markers:\n%s", out)
			}
		})
	}
}

// TestCompareDeterministicImprovement: shrinking allocs/op is not a
// regression — only growth gates.
func TestCompareDeterministicImprovement(t *testing.T) {
	d := validDoc()
	e := d.Sections["current"]["BenchmarkFig5"]
	e.Metrics["allocs/op"] = 5
	d.Sections["current"]["BenchmarkFig5"] = e
	var b strings.Builder
	regressed, err := compareSections(&b, writeDoc(t, d), "baseline,current", false)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("improvement flagged as regression:\n%s", b.String())
	}
}

// TestCompareOneSidedBenchmarks: benchmarks present in only one section
// are listed but never gate.
func TestCompareOneSidedBenchmarks(t *testing.T) {
	d := validDoc()
	d.Sections["baseline"]["BenchmarkOldOnly"] = entry{NsPerOp: 1, Iters: 1}
	d.Sections["current"]["BenchmarkNewOnly"] = entry{NsPerOp: 1, Iters: 1}
	var b strings.Builder
	regressed, err := compareSections(&b, writeDoc(t, d), "baseline,current", false)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("one-sided benchmarks gated the comparison")
	}
	out := b.String()
	if !strings.Contains(out, "BenchmarkOldOnly") || !strings.Contains(out, `only in "baseline"`) {
		t.Fatalf("baseline-only benchmark not listed:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkNewOnly") || !strings.Contains(out, `only in "current"`) {
		t.Fatalf("current-only benchmark not listed:\n%s", out)
	}
}

// TestCompareEngineMismatch: sections recorded under different engines must
// refuse to compare unless explicitly allowed; a missing engine record means
// serial (every baseline before the field existed was).
func TestCompareEngineMismatch(t *testing.T) {
	d := validDoc()
	d.Engines = map[string]string{"current": "epoch"} // baseline: implicit serial
	path := writeDoc(t, d)
	var b strings.Builder
	if _, err := compareSections(&b, path, "baseline,current", false); err == nil ||
		!strings.Contains(err.Error(), "engine") {
		t.Fatalf("cross-engine compare not refused: %v", err)
	}
	b.Reset()
	regressed, err := compareSections(&b, path, "baseline,current", true)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("allowed cross-engine compare gated without a deterministic regression")
	}
	if !strings.Contains(b.String(), "WARNING") {
		t.Fatalf("allowed cross-engine compare printed no warning:\n%s", b.String())
	}

	// Same engine on both sides: no refusal, no warning.
	d.Engines = map[string]string{"baseline": "epoch", "current": "epoch"}
	b.Reset()
	if _, err := compareSections(&b, writeDoc(t, d), "baseline,current", false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "WARNING") {
		t.Fatalf("same-engine compare warned:\n%s", b.String())
	}

	// checkFile rejects unknown engine spellings.
	d.Engines = map[string]string{"current": "warp"}
	if _, err := checkFile(writeDoc(t, d)); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown engine accepted: %v", err)
	}
}

// TestCompareLatencyAdvisory: the v2 latency quantile units are reported
// with their own advisory marker and never gate, however much they grow.
func TestCompareLatencyAdvisory(t *testing.T) {
	d := validDoc()
	for sec, p99 := range map[string]float64{"baseline": 50_000, "current": 900_000} {
		e := d.Sections[sec]["BenchmarkFig5"]
		e.Metrics["p99_cyc"] = p99
		d.Sections[sec]["BenchmarkFig5"] = e
	}
	var b strings.Builder
	regressed, err := compareSections(&b, writeDoc(t, d), "baseline,current", false)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("latency growth gated the comparison:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "p99_cyc") || !strings.Contains(out, "(sim latency, advisory)") {
		t.Fatalf("latency delta not reported as advisory:\n%s", out)
	}
}

// TestCompareMixedSchemaLatency: comparing a pre-v2 section (no latency
// units) against a v2 one degrades gracefully — the one-sided units are
// noted, nothing errors, nothing gates.
func TestCompareMixedSchemaLatency(t *testing.T) {
	d := validDoc() // baseline stays v1-shaped: no latency units
	e := d.Sections["current"]["BenchmarkFig5"]
	e.Metrics["p50_cyc"] = 40_000
	e.Metrics["p99_cyc"] = 250_000
	d.Sections["current"]["BenchmarkFig5"] = e
	var b strings.Builder
	regressed, err := compareSections(&b, writeDoc(t, d), "baseline,current", false)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("mixed-schema compare gated:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "p99_cyc") || !strings.Contains(out, `only in "current"`) {
		t.Fatalf("one-sided latency units not noted:\n%s", out)
	}
	if strings.Contains(out, "REGRESSED") || strings.Contains(out, "FAIL") {
		t.Fatalf("mixed-schema compare flagged a regression:\n%s", out)
	}
}

func TestCompareBadSpecAndMissingSection(t *testing.T) {
	path := writeDoc(t, validDoc())
	var b strings.Builder
	for _, spec := range []string{"", "baseline", "baseline,", ",current", "a,b,c"} {
		if _, err := compareSections(&b, path, spec, false); err == nil {
			t.Fatalf("bad spec %q accepted", spec)
		}
	}
	if _, err := compareSections(&b, path, "baseline,nosuch", false); err == nil ||
		!strings.Contains(err.Error(), `no section "nosuch"`) {
		t.Fatalf("missing section err = %v", err)
	}
}
