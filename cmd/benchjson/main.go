// Command benchjson converts `go test -bench` output into the repo's
// BENCH_*.json format: one JSON document with named sections (typically
// "baseline" and "current"), each mapping benchmark name to host ns/op and
// the benchmark's custom metrics (host_ns/op, sim_ms, simtx/us, ...).
//
//	go test -run '^$' -bench . -benchtime 1x . > BENCH_OUT.txt
//	go run ./cmd/benchjson -o BENCH_PR4.json -section current < BENCH_OUT.txt
//
// An existing output file is updated in place: only the named section is
// replaced, so a committed baseline survives re-runs of the current section.
// When the same benchmark appears more than once in the input, the last
// occurrence wins — the Makefile uses that to re-run the noise-sensitive
// micro-benchmarks with a longer -benchtime after the 1x figure pass.
//
// Two further modes read instead of write:
//
//	benchjson -compare baseline,current -o BENCH_PR4.json
//	benchjson -check BENCH_PR4.json BENCH_PR5.json
//
// -compare prints per-benchmark deltas between two recorded sections and
// exits 1 when a deterministic metric — allocs/op or B/op — regressed
// (grew) from the first section to the second; host-time deltas (ns/op,
// host_ns/op) vary run to run and are printed as advisory only. -check
// validates each named file against the bench-json schema — a hand-edited
// or truncated baseline fails — and exits 1 on the first invalid file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema versioning: version 2 added the open-loop latency quantile units
// (p50_cyc, p95_cyc, p99_cyc, p999_cyc — simulated cycles, deterministic
// but load-shaped, so -compare reports them as advisory). Readers accept
// any version in 1..version; sections written by older binaries simply
// lack the latency units and mixed-schema compares note them one-sided.
const (
	schema  = "asfstack/bench-json"
	version = 2
)

// entry is one benchmark's measurements.
type entry struct {
	// NsPerOp is the host wall time per benchmark iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Iters is the iteration count the measurement averaged over.
	Iters int64 `json:"iters"`
	// Metrics carries the benchmark's custom units (host_ns/op, sim_ms,
	// simtx/us, B/op, ...), keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	Schema   string                      `json:"schema"`
	Version  int                         `json:"version"`
	Sections map[string]map[string]entry `json:"sections"`
	// Engines records which simulator engine each section's benchmarks ran
	// under ("serial" or "epoch"), keyed by section name. Absent for
	// sections written before the field existed, which -compare treats as
	// "serial" — every historical baseline was. Additive: no version bump.
	Engines map[string]string `json:"engines,omitempty"`
}

// sectionEngine returns the engine a section was recorded under, defaulting
// to "serial" for pre-engine documents.
func sectionEngine(d doc, sec string) string {
	if e, ok := d.Engines[sec]; ok && e != "" {
		return e
	}
	return "serial"
}

func main() {
	out := flag.String("o", "BENCH_PR4.json", "output JSON file (updated in place)")
	section := flag.String("section", "current", "section of the output file to replace")
	compare := flag.String("compare", "",
		"compare two sections of the -o file (SECTION_A,SECTION_B); exit 1 when allocs/op or B/op regresses")
	check := flag.Bool("check", false, "validate the named BENCH_*.json files against the bench-json schema and exit")
	engine := flag.String("engine", "",
		"record the simulator engine this section's benchmarks ran under (serial or epoch); -compare refuses mismatched sections")
	allowEngineMismatch := flag.Bool("allow-engine-mismatch", false,
		"let -compare diff sections recorded under different engines (host-time columns are then apples to oranges)")
	flag.Parse()

	if *check {
		if len(flag.Args()) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -check needs at least one file argument")
			os.Exit(1)
		}
		for _, path := range flag.Args() {
			v, err := checkFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: valid %s v%d\n", path, schema, v)
		}
		return
	}
	if *compare != "" {
		regressed, err := compareSections(os.Stdout, *out, *compare, *allowEngineMismatch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	parsed, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(parsed) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	d := load(*out)
	d.Sections[*section] = parsed
	if *engine != "" {
		if *engine != "serial" && *engine != "epoch" {
			fmt.Fprintf(os.Stderr, "benchjson: unknown -engine %q (want serial or epoch)\n", *engine)
			os.Exit(1)
		}
		if d.Engines == nil {
			d.Engines = map[string]string{}
		}
		d.Engines[*section] = *engine
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(parsed))
	for n := range parsed {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: wrote %d benchmarks to section %q\n", *out, len(names), *section)
	for _, n := range names {
		fmt.Printf("  %-45s %12.2f ns/op\n", n, parsed[n].NsPerOp)
	}
}

// deterministicMetrics are the benchmark units that must not vary between
// runs of the same code: a growth from one section to the next is a real
// regression, not noise, so -compare gates on them.
var deterministicMetrics = []string{"allocs/op", "B/op"}

// checkFile validates one BENCH_*.json document: well-formed JSON of the
// right schema and an accepted version (1..version), at least one section,
// and sane entries. It is the CI guard against hand-edited or truncated
// baselines, and returns the document's own version.
func checkFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return 0, fmt.Errorf("%s: not valid JSON: %v", path, err)
	}
	if d.Schema != schema {
		return 0, fmt.Errorf("%s: schema %q, want %q", path, d.Schema, schema)
	}
	if d.Version < 1 || d.Version > version {
		return 0, fmt.Errorf("%s: version %d, want 1..%d", path, d.Version, version)
	}
	if len(d.Sections) == 0 {
		return 0, fmt.Errorf("%s: no sections", path)
	}
	for name, e := range d.Engines {
		if e != "serial" && e != "epoch" {
			return 0, fmt.Errorf("%s: section %q records unknown engine %q", path, name, e)
		}
	}
	for name, sec := range d.Sections {
		if len(sec) == 0 {
			return 0, fmt.Errorf("%s: section %q is empty", path, name)
		}
		for bench, e := range sec {
			if !strings.HasPrefix(bench, "Benchmark") {
				return 0, fmt.Errorf("%s: section %q: entry %q is not a benchmark name", path, name, bench)
			}
			if e.Iters <= 0 {
				return 0, fmt.Errorf("%s: section %q: %s: iters = %d", path, name, bench, e.Iters)
			}
			if e.NsPerOp < 0 {
				return 0, fmt.Errorf("%s: section %q: %s: negative ns/op", path, name, bench)
			}
			for unit, v := range e.Metrics {
				if v < 0 {
					return 0, fmt.Errorf("%s: section %q: %s: negative %s", path, name, bench, unit)
				}
			}
		}
	}
	return d.Version, nil
}

// latencyUnit reports whether a benchmark unit is an open-loop latency
// quantile (simulated cycles, schema v2). Deterministic for a fixed
// config, but shaped by offered load — compared as advisory, never gated.
func latencyUnit(u string) bool { return strings.HasSuffix(u, "_cyc") }

// compareSections prints per-benchmark deltas between two sections of the
// document at path and reports whether any deterministic metric regressed.
// Host-time deltas are advisory: they vary with machine and load. Sections
// recorded under different simulator engines refuse to compare unless
// allowEngineMismatch: the sim metrics are identical by construction, but a
// cross-engine host-time delta silently conflates the engine's speedup with
// the code change under test.
func compareSections(w io.Writer, path, spec string, allowEngineMismatch bool) (regressed bool, err error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
		return false, fmt.Errorf("-compare wants SECTION_A,SECTION_B, got %q", spec)
	}
	secA, secB := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	if _, err := checkFile(path); err != nil {
		return false, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return false, err
	}
	a, ok := d.Sections[secA]
	if !ok {
		return false, fmt.Errorf("%s: no section %q (have %v)", path, secA, sectionNames(d))
	}
	b, ok := d.Sections[secB]
	if !ok {
		return false, fmt.Errorf("%s: no section %q (have %v)", path, secB, sectionNames(d))
	}
	engA, engB := sectionEngine(d, secA), sectionEngine(d, secB)
	if engA != engB {
		if !allowEngineMismatch {
			return false, fmt.Errorf(
				"%s: section %q ran under the %s engine but %q under %s; host-time deltas would conflate the engine with the change (re-run one side, or pass -allow-engine-mismatch)",
				path, secA, engA, secB, engB)
		}
		fmt.Fprintf(w, "WARNING: comparing %s-engine section %q against %s-engine section %q; host-time deltas include the engine difference\n",
			engA, secA, engB, secB)
	}

	det := map[string]bool{}
	for _, m := range deterministicMetrics {
		det[m] = true
	}
	names := make([]string, 0, len(a))
	for n := range a {
		if _, ok := b[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return false, fmt.Errorf("%s: sections %q and %q share no benchmarks", path, secA, secB)
	}

	fmt.Fprintf(w, "%-45s %-12s %14s %14s %9s\n", "benchmark", "metric", secA, secB, "delta")
	for _, n := range names {
		ea, eb := a[n], b[n]
		fmt.Fprintf(w, "%-45s %-12s %14.2f %14.2f %8.1f%%  (host, advisory)\n",
			n, "ns/op", ea.NsPerOp, eb.NsPerOp, pctDelta(ea.NsPerOp, eb.NsPerOp))
		units := make([]string, 0, len(ea.Metrics))
		for u := range ea.Metrics {
			if _, ok := eb.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			va, vb := ea.Metrics[u], eb.Metrics[u]
			verdict := "(host, advisory)"
			if det[u] {
				verdict = "(deterministic)"
				if vb > va {
					verdict = "(deterministic) REGRESSED"
					regressed = true
				}
			} else if latencyUnit(u) {
				verdict = "(sim latency, advisory)"
			}
			fmt.Fprintf(w, "%-45s %-12s %14.2f %14.2f %8.1f%%  %s\n", n, u, va, vb, pctDelta(va, vb), verdict)
		}
		// Latency units present on only one side (the other section was
		// written by an older, pre-v2 binary): note them, never gate.
		for _, pair := range []struct {
			have, miss map[string]float64
			sec        string
		}{{eb.Metrics, ea.Metrics, secB}, {ea.Metrics, eb.Metrics, secA}} {
			var only []string
			for u := range pair.have {
				if _, ok := pair.miss[u]; !ok && latencyUnit(u) {
					only = append(only, u)
				}
			}
			sort.Strings(only)
			for _, u := range only {
				fmt.Fprintf(w, "%-45s %-12s only in %q (older schema on the other side; advisory)\n", n, u, pair.sec)
			}
		}
	}
	for n := range a {
		if _, ok := b[n]; !ok {
			fmt.Fprintf(w, "%-45s only in %q\n", n, secA)
		}
	}
	for n := range b {
		if _, ok := a[n]; !ok {
			fmt.Fprintf(w, "%-45s only in %q\n", n, secB)
		}
	}
	if regressed {
		fmt.Fprintf(w, "FAIL: deterministic metric regressed from %q to %q\n", secA, secB)
	}
	return regressed, nil
}

func pctDelta(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return 100
	}
	return (b - a) / a * 100
}

func sectionNames(d doc) []string {
	names := make([]string, 0, len(d.Sections))
	for n := range d.Sections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// load reads an existing output document, or returns an empty one when the
// file is absent or from an incompatible schema.
func load(path string) doc {
	d := doc{Schema: schema, Version: version, Sections: map[string]map[string]entry{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return d
	}
	var prev doc
	if json.Unmarshal(data, &prev) != nil || prev.Schema != schema {
		return d
	}
	if prev.Sections != nil {
		d.Sections = prev.Sections
	}
	d.Engines = prev.Engines
	return d
}

// parse extracts benchmark result lines:
//
//	BenchmarkFig5        1  5086217894 ns/op
//	BenchmarkSimulatorOpRate/8core  996  2345366 ns/op  293.2 host_ns/op
func parse(sc *bufio.Scanner) (map[string]entry, error) {
	res := map[string]entry{}
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		e := entry{Iters: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			if f[i+1] == "ns/op" {
				e.NsPerOp = v
			} else {
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[f[i+1]] = v
			}
		}
		res[f[0]] = e
	}
	return stripProcSuffix(res), sc.Err()
}

// stripProcSuffix drops the -GOMAXPROCS suffix go test appends when procs
// is not 1, so names are comparable across hosts. The suffix is appended to
// every benchmark of a run or to none, so it is stripped only when all
// names share the same trailing -N — names that legitimately end in digits
// (LLB-256) never match across a whole run.
func stripProcSuffix(res map[string]entry) map[string]entry {
	suffix := ""
	for name := range res {
		i := strings.LastIndexByte(name, '-')
		if i < 0 || i+1 == len(name) {
			return res
		}
		for _, r := range name[i+1:] {
			if r < '0' || r > '9' {
				return res
			}
		}
		if suffix == "" {
			suffix = name[i:]
		} else if suffix != name[i:] {
			return res
		}
	}
	if suffix == "" {
		return res
	}
	out := make(map[string]entry, len(res))
	for name, e := range res {
		out[strings.TrimSuffix(name, suffix)] = e
	}
	return out
}
