// Command benchjson converts `go test -bench` output into the repo's
// BENCH_*.json format: one JSON document with named sections (typically
// "baseline" and "current"), each mapping benchmark name to host ns/op and
// the benchmark's custom metrics (host_ns/op, sim_ms, simtx/us, ...).
//
//	go test -run '^$' -bench . -benchtime 1x . > BENCH_OUT.txt
//	go run ./cmd/benchjson -o BENCH_PR4.json -section current < BENCH_OUT.txt
//
// An existing output file is updated in place: only the named section is
// replaced, so a committed baseline survives re-runs of the current section.
// When the same benchmark appears more than once in the input, the last
// occurrence wins — the Makefile uses that to re-run the noise-sensitive
// micro-benchmarks with a longer -benchtime after the 1x figure pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

const (
	schema  = "asfstack/bench-json"
	version = 1
)

// entry is one benchmark's measurements.
type entry struct {
	// NsPerOp is the host wall time per benchmark iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Iters is the iteration count the measurement averaged over.
	Iters int64 `json:"iters"`
	// Metrics carries the benchmark's custom units (host_ns/op, sim_ms,
	// simtx/us, B/op, ...), keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	Schema   string                      `json:"schema"`
	Version  int                         `json:"version"`
	Sections map[string]map[string]entry `json:"sections"`
}

func main() {
	out := flag.String("o", "BENCH_PR4.json", "output JSON file (updated in place)")
	section := flag.String("section", "current", "section of the output file to replace")
	flag.Parse()

	parsed, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(parsed) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	d := load(*out)
	d.Sections[*section] = parsed
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(parsed))
	for n := range parsed {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: wrote %d benchmarks to section %q\n", *out, len(names), *section)
	for _, n := range names {
		fmt.Printf("  %-45s %12.2f ns/op\n", n, parsed[n].NsPerOp)
	}
}

// load reads an existing output document, or returns an empty one when the
// file is absent or from an incompatible schema.
func load(path string) doc {
	d := doc{Schema: schema, Version: version, Sections: map[string]map[string]entry{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return d
	}
	var prev doc
	if json.Unmarshal(data, &prev) != nil || prev.Schema != schema {
		return d
	}
	if prev.Sections != nil {
		d.Sections = prev.Sections
	}
	return d
}

// parse extracts benchmark result lines:
//
//	BenchmarkFig5        1  5086217894 ns/op
//	BenchmarkSimulatorOpRate/8core  996  2345366 ns/op  293.2 host_ns/op
func parse(sc *bufio.Scanner) (map[string]entry, error) {
	res := map[string]entry{}
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		e := entry{Iters: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			if f[i+1] == "ns/op" {
				e.NsPerOp = v
			} else {
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[f[i+1]] = v
			}
		}
		res[f[0]] = e
	}
	return stripProcSuffix(res), sc.Err()
}

// stripProcSuffix drops the -GOMAXPROCS suffix go test appends when procs
// is not 1, so names are comparable across hosts. The suffix is appended to
// every benchmark of a run or to none, so it is stripped only when all
// names share the same trailing -N — names that legitimately end in digits
// (LLB-256) never match across a whole run.
func stripProcSuffix(res map[string]entry) map[string]entry {
	suffix := ""
	for name := range res {
		i := strings.LastIndexByte(name, '-')
		if i < 0 || i+1 == len(name) {
			return res
		}
		for _, r := range name[i+1:] {
			if r < '0' || r > '9' {
				return res
			}
		}
		if suffix == "" {
			suffix = name[i:]
		} else if suffix != name[i:] {
			return res
		}
	}
	if suffix == "" {
		return res
	}
	out := make(map[string]entry, len(res))
	for name, e := range res {
		out[strings.TrimSuffix(name, suffix)] = e
	}
	return out
}
