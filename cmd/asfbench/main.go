// Command asfbench regenerates the paper's evaluation artifacts — Figures
// 3–9 and Table 1 — on the simulated ASF stack and prints them as text
// tables.
//
// Usage:
//
//	asfbench -experiment fig4          # one figure
//	asfbench -experiment all           # everything (slow)
//	asfbench -experiment fig5 -scale 0.25 -parallel 8 -v
//
// Scale shrinks the workload sizes proportionally; 1.0 is the reported
// configuration. Each experiment decomposes into independent cells (one
// simulated machine each) that -parallel host goroutines run concurrently;
// tables are byte-identical for every -parallel value. -v streams per-cell
// progress to stderr.
//
// A failing cell does not kill the run: its table entries read "ERR", the
// failure is reported per cell on stderr, and the exit status is 1. Exit
// status 2 means the invocation itself was bad (unknown experiment).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"asfstack/internal/harness"
)

func main() {
	exp := flag.String("experiment", "all",
		"experiment to run: "+strings.Join(harness.Names, ", ")+", or all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = reported configuration)")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"experiment cells run concurrently (host goroutines)")
	verbose := flag.Bool("v", false, "stream per-cell progress to stderr")
	flag.Parse()

	var prog io.Writer = io.Discard
	if *verbose {
		prog = os.Stderr
	}

	names := harness.Names
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	exit := 0
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		tables, err := harness.Run(name, harness.Options{
			Scale:    *scale,
			Parallel: *parallel,
			Progress: prog,
		})
		if tables == nil && err != nil {
			fmt.Fprintln(os.Stderr, "asfbench:", err)
			os.Exit(2)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asfbench: %s: some cells failed:\n%v\n", name, err)
			exit = 1
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "asfbench: %s done in %v (parallel=%d)\n",
				name, time.Since(start).Round(time.Millisecond), *parallel)
		}
	}
	os.Exit(exit)
}
