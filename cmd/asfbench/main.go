// Command asfbench regenerates the paper's evaluation artifacts — Figures
// 3–9 and Table 1 — on the simulated ASF stack and prints them as text
// tables or a machine-readable JSON report.
//
// Usage:
//
//	asfbench -list                               # experiment names + descriptions
//	asfbench -experiment fig4                    # one figure
//	asfbench -experiment all                     # everything (slow)
//	asfbench -experiment fig5 -scale 0.25 -parallel 8 -v
//	asfbench -experiment fig5 -engine epoch      # epoch-speculative engine: identical results, less host work
//	asfbench -experiment fig5 -format json -o out.json
//	asfbench -experiment fig5 -trace trace.json  # Chrome trace_event export
//	asfbench -experiment txprof -profile -format json -o prof.json  # flight-recorder profiles (cmd/tmprof input)
//	asfbench -validate out.json                  # check a report's schema
//
// Scale shrinks the workload sizes proportionally; 1.0 is the reported
// configuration. Each experiment decomposes into independent cells (one
// simulated machine each) that -parallel host goroutines run concurrently;
// tables — and the JSON report's sim sections — are byte-identical for
// every -parallel value. -v streams per-cell progress to stderr.
//
// -format json emits a versioned BenchReport document (schema
// "asfstack/bench-report", see internal/harness and EXPERIMENTS.md) instead
// of text tables; -o writes the output (either format) to a file instead of
// stdout. -trace records every cell's simulated execution and writes a
// Chrome trace_event JSON file loadable in chrome://tracing or Perfetto.
// -validate reads a previously written JSON report, checks its schema and
// version, and exits without running anything.
//
// A failing cell does not kill the run: its table entries read "ERR", the
// failure is reported per cell on stderr, and the exit status is 1. Exit
// status 2 means the invocation itself was bad (unknown experiment, bad
// flags, unwritable output, invalid report).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"asfstack/internal/harness"
	"asfstack/internal/sim"
	"asfstack/internal/trace"
)

func main() {
	exp := flag.String("experiment", "all",
		"comma-separated experiments to run: "+strings.Join(harness.Names, ", ")+", or all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = reported configuration)")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"experiment cells run concurrently (host goroutines)")
	verbose := flag.Bool("v", false, "stream per-cell progress to stderr")
	format := flag.String("format", "text", "output format: text or json (a BenchReport document)")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	tracePath := flag.String("trace", "", "record sim traces and write a Chrome trace_event JSON file here")
	profile := flag.Bool("profile", false,
		"enable the transaction-level flight recorder in every cell (profiles land in the JSON report for cmd/tmprof)")
	engineFlag := flag.String("engine", "serial",
		"simulator execution engine: serial or epoch (results are bit-identical; epoch trades host memory for speed on repeat-heavy cells)")
	epochLen := flag.Uint64("epoch-len", 0,
		"epoch length in simulated cycles for -engine epoch (0 = default; a pure host-performance knob)")
	validatePath := flag.String("validate", "", "validate a BenchReport JSON file and exit (runs nothing)")
	list := flag.Bool("list", false, "print every experiment name with a one-line description and exit")
	flag.Parse()

	if *list {
		for _, name := range harness.Names {
			fmt.Printf("%-8s %s\n", name, harness.Descriptions[name])
		}
		return
	}
	if *validatePath != "" {
		v, err := validateReport(*validatePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asfbench:", err)
			os.Exit(2)
		}
		fmt.Printf("%s: valid %s v%d\n", *validatePath, harness.ReportSchema, v)
		return
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "asfbench: unknown -format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	names, err := experimentNames(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asfbench:", err)
		os.Exit(2)
	}
	engine, err := sim.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asfbench:", err)
		os.Exit(2)
	}

	var prog io.Writer = io.Discard
	if *verbose {
		prog = os.Stderr
	}

	report := harness.NewBenchReport(*scale)
	report.Engine = engine.String()
	exit := 0
	for _, name := range names {
		start := time.Now()
		rep, err := harness.RunReport(name, harness.Options{
			Scale:    *scale,
			Parallel: *parallel,
			Progress: prog,
			Trace:    *tracePath != "",
			Profile:  *profile,
			Engine:   engine,
			EpochLen: *epochLen,
		})
		if rep == nil {
			// Unreachable for validated names; defensive.
			fmt.Fprintln(os.Stderr, "asfbench:", err)
			os.Exit(2)
		}
		report.Experiments = append(report.Experiments, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asfbench: %s: some cells failed:\n%v\n", name, err)
			exit = 1
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "asfbench: %s done in %v (parallel=%d)\n",
				name, time.Since(start).Round(time.Millisecond), *parallel)
		}
	}

	if err := writeOutput(*outPath, func(w io.Writer) error {
		if *format == "json" {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(report)
		}
		for _, rep := range report.Experiments {
			for _, t := range rep.Tables {
				t.Fprint(w)
			}
		}
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, "asfbench:", err)
		os.Exit(2)
	}

	if *tracePath != "" {
		if err := writeTrace(*tracePath, report); err != nil {
			fmt.Fprintln(os.Stderr, "asfbench:", err)
			os.Exit(2)
		}
	}
	os.Exit(exit)
}

// experimentNames parses and validates the -experiment flag: names are
// comma-separated, whitespace-trimmed, and every one must be known before
// anything runs — a typo in the last name must not cost the first
// experiment's hours.
func experimentNames(arg string) ([]string, error) {
	if strings.TrimSpace(arg) == "all" {
		return harness.Names, nil
	}
	known := map[string]bool{}
	for _, n := range harness.Names {
		known[n] = true
	}
	var names []string
	var bad []string
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			bad = append(bad, fmt.Sprintf("%q", name))
			continue
		}
		names = append(names, name)
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("unknown experiment(s) %s (want one of %v, or all)",
			strings.Join(bad, ", "), harness.Names)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no experiments selected (want one of %v, or all)", harness.Names)
	}
	return names, nil
}

// writeOutput writes via emit to path, or to stdout when path is empty.
func writeOutput(path string, emit func(io.Writer) error) error {
	if path == "" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace exports every traced cell as a Chrome trace_event document.
func writeTrace(path string, report *harness.BenchReport) error {
	var cells []trace.ChromeCell
	for _, rep := range report.Experiments {
		for _, c := range rep.Cells {
			if len(c.TraceEvents) == 0 {
				continue
			}
			cells = append(cells, trace.ChromeCell{
				Name:   rep.Name + " " + c.Label,
				Events: c.TraceEvents,
				Start:  c.TraceStart,
			})
		}
	}
	return writeOutput(path, func(w io.Writer) error {
		return trace.WriteChrome(w, cells)
	})
}

// validateReport checks that path holds a well-formed BenchReport of the
// schema and version this binary understands.
func validateReport(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if rep.Schema != harness.ReportSchema {
		return 0, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, harness.ReportSchema)
	}
	if rep.Version < 1 || rep.Version > harness.ReportVersion {
		return 0, fmt.Errorf("%s: version %d, want 1..%d", path, rep.Version, harness.ReportVersion)
	}
	if len(rep.Experiments) == 0 {
		return 0, fmt.Errorf("%s: no experiments", path)
	}
	for _, e := range rep.Experiments {
		if e.Name == "" {
			return 0, fmt.Errorf("%s: experiment with empty name", path)
		}
		if len(e.Tables) == 0 {
			return 0, fmt.Errorf("%s: experiment %s has no tables", path, e.Name)
		}
		for _, c := range e.Cells {
			if c.Label == "" {
				return 0, fmt.Errorf("%s: experiment %s has a cell with no label", path, e.Name)
			}
			if c.Err == "" && c.Sim == nil {
				return 0, fmt.Errorf("%s: experiment %s cell %q has neither sim results nor an error", path, e.Name, c.Label)
			}
		}
	}
	return rep.Version, nil
}
