// Command asfbench regenerates the paper's evaluation artifacts — Figures
// 3–9 and Table 1 — on the simulated ASF stack and prints them as text
// tables.
//
// Usage:
//
//	asfbench -experiment fig4          # one figure
//	asfbench -experiment all           # everything (slow)
//	asfbench -experiment fig5 -scale 0.25 -v
//
// Scale shrinks the workload sizes proportionally; 1.0 is the reported
// configuration. -v streams per-run progress to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"asfstack/internal/harness"
)

func main() {
	exp := flag.String("experiment", "all",
		"experiment to run: "+strings.Join(harness.Names, ", ")+", or all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = reported configuration)")
	verbose := flag.Bool("v", false, "stream per-run progress to stderr")
	flag.Parse()

	var prog io.Writer = io.Discard
	if *verbose {
		prog = os.Stderr
	}

	names := harness.Names
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		tables, err := harness.Run(strings.TrimSpace(name), *scale, prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asfbench:", err)
			os.Exit(2)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	}
}
