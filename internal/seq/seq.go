// Package seq is the uninstrumented sequential baseline: tm.Runtime with
// no synchronisation and no barriers, matching the paper's "Sequential"
// bars ("single-threaded executions ... with no synchronization mechanism
// in use and no instrumentation added"). It is only correct on one thread.
package seq

import (
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// Runtime implements tm.Runtime by running bodies directly.
type Runtime struct {
	heap  *tm.Heap
	stats []tm.Stats
	hook  tm.CommitHook
}

// SetCommitHook implements tm.HookableRuntime. With a single thread the
// global order is the program order, but the litmus suite installs the hook
// uniformly across runtimes.
func (r *Runtime) SetCommitHook(h tm.CommitHook) { r.hook = h }

// New builds the sequential runtime.
func New(heap *tm.Heap, cores int) *Runtime {
	return &Runtime{heap: heap, stats: make([]tm.Stats, cores)}
}

// Name implements tm.Runtime.
func (r *Runtime) Name() string { return "Sequential" }

// Stats implements tm.Runtime.
func (r *Runtime) Stats(core int) tm.Stats { return r.stats[core] }

// ResetStats implements tm.Runtime.
func (r *Runtime) ResetStats() {
	for i := range r.stats {
		r.stats[i] = tm.Stats{}
	}
}

// Atomic implements tm.Runtime: the body runs inline, uninstrumented.
func (r *Runtime) Atomic(c *sim.CPU, body func(tx tm.Tx)) {
	body(&seqTx{r: r, c: c})
	r.stats[c.ID()].Commits++
	if r.hook != nil {
		c.SpecOp(0, func() { r.hook(c.ID(), false) })
	}
}

type seqTx struct {
	r *Runtime
	c *sim.CPU
}

func (t *seqTx) Load(a mem.Addr) mem.Word     { return t.c.Load(a) }
func (t *seqTx) Store(a mem.Addr, v mem.Word) { t.c.Store(a, v) }
func (t *seqTx) CPU() *sim.CPU                { return t.c }
func (t *seqTx) Irrevocable() bool            { return true }
func (t *seqTx) Free(a mem.Addr)              { t.r.heap.Free(t.c, a) }

func (t *seqTx) Alloc(size uint64) mem.Addr {
	for {
		a, ok := t.r.heap.AllocFast(t.c, size, mem.WordSize)
		if ok {
			return a
		}
		t.r.heap.Refill(t.c, size)
	}
}

func (t *seqTx) AllocLines(n int) mem.Addr {
	for {
		a, ok := t.r.heap.AllocFast(t.c, uint64(n)*mem.LineSize, mem.LineSize)
		if ok {
			return a
		}
		t.r.heap.Refill(t.c, uint64(n)*mem.LineSize)
	}
}
