package seq

import (
	"testing"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

func TestSequentialRuntime(t *testing.T) {
	m := sim.New(sim.Barcelona(1))
	m.Mem.Prefault(0, 1<<20)
	layout := mem.NewLayout(mem.PageSize)
	heap := tm.NewHeap(m.Mem, layout, 1, 8<<20)
	r := New(heap, 1)
	if r.Name() != "Sequential" {
		t.Fatalf("name = %q", r.Name())
	}
	m.Run(func(c *sim.CPU) {
		for i := 0; i < 10; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				if !tx.Irrevocable() {
					t.Error("sequential tx not irrevocable")
				}
				tx.Store(0x100, tx.Load(0x100)+1)
				a := tx.Alloc(32)
				tx.Store(a, 1)
				tx.Free(a)
			})
		}
	})
	if got := m.Mem.Load(0x100); got != 10 {
		t.Fatalf("counter = %d", got)
	}
	if st := r.Stats(0); st.Commits != 10 || st.TotalAborts() != 0 {
		t.Fatalf("stats = %+v", st)
	}
	r.ResetStats()
	if st := r.Stats(0); st.Commits != 0 {
		t.Fatal("ResetStats did not clear")
	}
}
