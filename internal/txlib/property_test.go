package txlib_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"asfstack"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/txlib"
)

// applyOps drives a set and a map model with the same decoded operations
// and reports the first divergence.
func applyOps(t *testing.T, name string, build func(tx tm.Tx) set, ops []uint16) bool {
	s := asfstack.New(asfstack.Options{Cores: 1, Runtime: "Sequential"})
	var ds set
	s.Setup(func(tx tm.Tx) { ds = build(tx) })
	model := map[uint64]bool{}
	okAll := true
	s.M.Run(func(c *sim.CPU) {
		tx := tm.Direct(c, s.Heap)
		for _, op := range ops {
			k := uint64(op & 0x3F) // 64 keys
			switch (op >> 6) % 3 {
			case 0:
				want := !model[k]
				if got := ds.Insert(tx, k); got != want {
					t.Logf("%s: Insert(%d)=%v want %v", name, k, got, want)
					okAll = false
					return
				}
				model[k] = true
			case 1:
				want := model[k]
				if got := ds.Remove(tx, k); got != want {
					t.Logf("%s: Remove(%d)=%v want %v", name, k, got, want)
					okAll = false
					return
				}
				delete(model, k)
			default:
				if got := ds.Contains(tx, k); got != model[k] {
					t.Logf("%s: Contains(%d)=%v want %v", name, k, got, model[k])
					okAll = false
					return
				}
			}
		}
		if ds.Size(tx) != len(model) {
			t.Logf("%s: size %d want %d", name, ds.Size(tx), len(model))
			okAll = false
		}
	})
	return okAll
}

// TestSetsQuickProperty runs quick-generated operation sequences against
// the map model on every structure.
func TestSetsQuickProperty(t *testing.T) {
	for name, build := range builders() {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			prop := func(raw []uint16) bool {
				if len(raw) > 400 {
					raw = raw[:400]
				}
				return applyOps(t, name, build, raw)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(7))}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestListStaysSortedProperty: after any operation sequence the list's keys
// are strictly increasing.
func TestListStaysSortedProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		s := asfstack.New(asfstack.Options{Cores: 1, Runtime: "Sequential"})
		var l *txlib.List
		s.Setup(func(tx tm.Tx) { l = txlib.NewList(tx) })
		sorted := true
		s.M.Run(func(c *sim.CPU) {
			tx := tm.Direct(c, s.Heap)
			for _, op := range raw {
				k := uint64(op & 0xFF)
				if op>>8&1 == 0 {
					l.Insert(tx, k)
				} else {
					l.Remove(tx, k)
				}
			}
			keys := l.Keys(tx)
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					sorted = false
				}
			}
		})
		return sorted
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// TestRBTreeInvariantProperty: the red-black invariants hold after any
// quick-generated mutation sequence.
func TestRBTreeInvariantProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		s := asfstack.New(asfstack.Options{Cores: 1, Runtime: "Sequential"})
		var tr *txlib.RBTree
		s.Setup(func(tx tm.Tx) { tr = txlib.NewRBTree(tx) })
		ok := true
		s.M.Run(func(c *sim.CPU) {
			tx := tm.Direct(c, s.Heap)
			for _, op := range raw {
				k := uint64(op & 0x7F)
				if op>>7&1 == 0 {
					tr.Insert(tx, k, 0)
				} else {
					tr.Remove(tx, k)
				}
			}
			_, ok = tr.CheckInvariants(tx)
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}
