package txlib

import (
	"asfstack/internal/mem"
	"asfstack/internal/tm"
)

// HashMap is a chained hash table from uint64 keys to word values — the
// dictionary substrate for genome's segment table and intruder's
// reassembly map. Buckets are 16 bytes (chain head + pad); chain nodes are
// 24 bytes (next, key, value), packed.
type HashMap struct {
	buckets mem.Addr
	mask    uint64
}

// NewHashMap builds a map with 2^bits buckets.
func NewHashMap(tx tm.Tx, bits uint) *HashMap {
	n := uint64(1) << bits
	b := tx.AllocLines(int(n * bucketBytes / mem.LineSize))
	return &HashMap{buckets: b, mask: n - 1}
}

func (h *HashMap) bucket(k uint64) mem.Addr {
	idx := (k * 0x9E3779B97F4A7C15) >> 1 & h.mask
	return h.buckets + mem.Addr(idx*bucketBytes)
}

// Get returns the value at k.
func (h *HashMap) Get(tx tm.Tx, k uint64) (mem.Word, bool) {
	tx.CPU().Exec(10)
	cur := mem.Addr(tx.Load(h.bucket(k)))
	for cur != 0 {
		tx.CPU().Exec(4)
		if uint64(tx.Load(field(cur, 1))) == k {
			return tx.Load(field(cur, 2)), true
		}
		cur = mem.Addr(tx.Load(field(cur, 0)))
	}
	return 0, false
}

// Put inserts or updates k → v, returning true if the key was new.
func (h *HashMap) Put(tx tm.Tx, k uint64, v mem.Word) bool {
	tx.CPU().Exec(10)
	head := h.bucket(k)
	cur := mem.Addr(tx.Load(head))
	for p := cur; p != 0; {
		tx.CPU().Exec(4)
		if uint64(tx.Load(field(p, 1))) == k {
			tx.Store(field(p, 2), v)
			return false
		}
		p = mem.Addr(tx.Load(field(p, 0)))
	}
	n := tx.Alloc(24)
	tx.Store(field(n, 1), mem.Word(k))
	tx.Store(field(n, 2), v)
	tx.Store(field(n, 0), mem.Word(cur))
	tx.Store(head, mem.Word(n))
	return true
}

// PutIfAbsent inserts k → v only if k is absent, returning true on insert.
func (h *HashMap) PutIfAbsent(tx tm.Tx, k uint64, v mem.Word) bool {
	tx.CPU().Exec(10)
	head := h.bucket(k)
	cur := mem.Addr(tx.Load(head))
	for p := cur; p != 0; {
		tx.CPU().Exec(4)
		if uint64(tx.Load(field(p, 1))) == k {
			return false
		}
		p = mem.Addr(tx.Load(field(p, 0)))
	}
	n := tx.Alloc(24)
	tx.Store(field(n, 1), mem.Word(k))
	tx.Store(field(n, 2), v)
	tx.Store(field(n, 0), mem.Word(cur))
	tx.Store(head, mem.Word(n))
	return true
}

// Remove deletes k, returning its value.
func (h *HashMap) Remove(tx tm.Tx, k uint64) (mem.Word, bool) {
	tx.CPU().Exec(10)
	head := h.bucket(k)
	var prev mem.Addr
	cur := mem.Addr(tx.Load(head))
	for cur != 0 {
		tx.CPU().Exec(4)
		next := tx.Load(field(cur, 0))
		if uint64(tx.Load(field(cur, 1))) == k {
			v := tx.Load(field(cur, 2))
			if prev == 0 {
				tx.Store(head, next)
			} else {
				tx.Store(field(prev, 0), next)
			}
			tx.Free(cur)
			return v, true
		}
		prev, cur = cur, mem.Addr(next)
	}
	return 0, false
}
