package txlib

import (
	"asfstack/internal/mem"
	"asfstack/internal/tm"
)

// SkipList is a probabilistic sorted set — the IntegerSet skip-list
// workload. Node layout (one cache line):
//
//	word 0: key
//	word 1: level (1..MaxLevel)
//	word 2+i: next pointer at level i
//
// MaxLevel is 6 so a node fits exactly one line (8 words): one node, one
// unit of ASF capacity.
type SkipList struct {
	head mem.Addr
}

// SkipMaxLevel is the maximum tower height.
const SkipMaxLevel = 6

const (
	skipKey   = 0
	skipLevel = 1
	skipNext0 = 2
)

// NewSkipList builds an empty skip list.
func NewSkipList(tx tm.Tx) *SkipList {
	head := tx.AllocLines(1)
	tx.Store(field(head, skipLevel), SkipMaxLevel)
	for i := 0; i < SkipMaxLevel; i++ {
		tx.Store(field(head, skipNext0+i), 0)
	}
	return &SkipList{head: head}
}

// randomLevel draws a geometric(1/2) tower height.
func randomLevel(tx tm.Tx) int {
	tx.CPU().Exec(8)
	lvl := 1
	r := tx.CPU().Rand().Uint64()
	for lvl < SkipMaxLevel && r&1 == 1 {
		lvl++
		r >>= 1
	}
	return lvl
}

// findPrevs fills prevs with the rightmost node at each level whose key is
// < k, and returns the candidate node at level 0 (or 0).
func (s *SkipList) findPrevs(tx tm.Tx, k uint64, prevs *[SkipMaxLevel]mem.Addr) mem.Addr {
	c := tx.CPU()
	x := s.head
	for i := SkipMaxLevel - 1; i >= 0; i-- {
		for {
			c.Exec(7)
			next := mem.Addr(tx.Load(field(x, skipNext0+i)))
			if next == 0 || uint64(tx.Load(field(next, skipKey))) >= k {
				break
			}
			x = next
		}
		prevs[i] = x
	}
	return mem.Addr(tx.Load(field(x, skipNext0)))
}

// Contains reports whether k is in the set.
func (s *SkipList) Contains(tx tm.Tx, k uint64) bool {
	var prevs [SkipMaxLevel]mem.Addr
	cur := s.findPrevs(tx, k, &prevs)
	return cur != 0 && uint64(tx.Load(field(cur, skipKey))) == k
}

// Insert adds k, returning false if already present.
func (s *SkipList) Insert(tx tm.Tx, k uint64) bool {
	var prevs [SkipMaxLevel]mem.Addr
	cur := s.findPrevs(tx, k, &prevs)
	if cur != 0 && uint64(tx.Load(field(cur, skipKey))) == k {
		return false
	}
	lvl := randomLevel(tx)
	n := tx.AllocLines(1)
	tx.Store(field(n, skipKey), mem.Word(k))
	tx.Store(field(n, skipLevel), mem.Word(lvl))
	for i := 0; i < lvl; i++ {
		tx.Store(field(n, skipNext0+i), tx.Load(field(prevs[i], skipNext0+i)))
		tx.Store(field(prevs[i], skipNext0+i), mem.Word(n))
	}
	return true
}

// Remove deletes k, returning false if absent.
func (s *SkipList) Remove(tx tm.Tx, k uint64) bool {
	var prevs [SkipMaxLevel]mem.Addr
	cur := s.findPrevs(tx, k, &prevs)
	if cur == 0 || uint64(tx.Load(field(cur, skipKey))) != k {
		return false
	}
	lvl := int(tx.Load(field(cur, skipLevel)))
	for i := 0; i < lvl; i++ {
		if mem.Addr(tx.Load(field(prevs[i], skipNext0+i))) == cur {
			tx.Store(field(prevs[i], skipNext0+i), tx.Load(field(cur, skipNext0+i)))
		}
	}
	tx.Store(field(cur, skipNext0), ^mem.Word(0)) // poison
	tx.Free(cur)
	return true
}

// Size counts elements at level 0 (verification).
func (s *SkipList) Size(tx tm.Tx) int {
	n := 0
	for cur := mem.Addr(tx.Load(field(s.head, skipNext0))); cur != 0; {
		n++
		cur = mem.Addr(tx.Load(field(cur, skipNext0)))
	}
	return n
}
