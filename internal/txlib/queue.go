package txlib

import (
	"asfstack/internal/mem"
	"asfstack/internal/tm"
)

// Queue is a transactional FIFO of words (intruder's packet and task
// queues). Head and tail pointers live on separate cache lines so
// producers and consumers only conflict when the queue is near-empty.
// Nodes are 16 bytes (next, value), packed.
type Queue struct {
	head mem.Addr // line 0: head pointer
	tail mem.Addr // line 1: tail pointer
}

// NewQueue builds an empty queue.
func NewQueue(tx tm.Tx) *Queue {
	base := tx.AllocLines(2)
	q := &Queue{head: base, tail: base + mem.LineSize}
	tx.Store(q.head, 0)
	tx.Store(q.tail, 0)
	return q
}

// Push appends v.
func (q *Queue) Push(tx tm.Tx, v mem.Word) {
	tx.CPU().Exec(8)
	n := tx.Alloc(16)
	tx.Store(field(n, 0), 0)
	tx.Store(field(n, 1), v)
	tail := mem.Addr(tx.Load(q.tail))
	if tail == 0 {
		tx.Store(q.head, mem.Word(n))
	} else {
		tx.Store(field(tail, 0), mem.Word(n))
	}
	tx.Store(q.tail, mem.Word(n))
}

// Pop removes and returns the oldest element; ok=false if empty.
func (q *Queue) Pop(tx tm.Tx) (v mem.Word, ok bool) {
	tx.CPU().Exec(8)
	head := mem.Addr(tx.Load(q.head))
	if head == 0 {
		return 0, false
	}
	v = tx.Load(field(head, 1))
	next := tx.Load(field(head, 0))
	tx.Store(q.head, next)
	if next == 0 {
		tx.Store(q.tail, 0)
	}
	tx.Free(head)
	return v, true
}

// Empty reports whether the queue has no elements.
func (q *Queue) Empty(tx tm.Tx) bool {
	return tx.Load(q.head) == 0
}
