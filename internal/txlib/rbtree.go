package txlib

import (
	"asfstack/internal/mem"
	"asfstack/internal/tm"
)

// RBTree is a red-black tree implementing a sorted integer map (and set) —
// the IntegerSet red-black-tree workload and the dictionaries inside
// vacation. Node layout (one cache line, so tree height ≈ ASF capacity
// demand, the Fig. 7 relationship):
//
//	word 0: key
//	word 1: value
//	word 2: left
//	word 3: right
//	word 4: parent
//	word 5: color (0 black, 1 red)
//
// The implementation is CLRS with an explicit nil sentinel node, with every
// field access going through the TM barriers.
type RBTree struct {
	hdr mem.Addr // word 0: root pointer
	nil mem.Addr // sentinel (black)
}

const (
	rbKey = iota
	rbVal
	rbLeft
	rbRight
	rbParent
	rbColor
)

const (
	black mem.Word = 0
	red   mem.Word = 1
)

// NewRBTree builds an empty tree.
func NewRBTree(tx tm.Tx) *RBTree {
	t := &RBTree{hdr: tx.AllocLines(1), nil: tx.AllocLines(1)}
	tx.Store(field(t.nil, rbColor), black)
	tx.Store(t.hdr, mem.Word(t.nil)) // root = nil
	return t
}

func (t *RBTree) root(tx tm.Tx) mem.Addr       { return mem.Addr(tx.Load(t.hdr)) }
func (t *RBTree) setRoot(tx tm.Tx, n mem.Addr) { tx.Store(t.hdr, mem.Word(n)) }

func get(tx tm.Tx, n mem.Addr, f int) mem.Addr    { return mem.Addr(tx.Load(field(n, f))) }
func set(tx tm.Tx, n mem.Addr, f int, v mem.Addr) { tx.Store(field(n, f), mem.Word(v)) }

// lookup returns the node with key k, or the sentinel.
func (t *RBTree) lookup(tx tm.Tx, k uint64) mem.Addr {
	c := tx.CPU()
	x := t.root(tx)
	for x != t.nil {
		c.Exec(6)
		xk := uint64(tx.Load(field(x, rbKey)))
		if k == xk {
			return x
		}
		if k < xk {
			x = get(tx, x, rbLeft)
		} else {
			x = get(tx, x, rbRight)
		}
	}
	return t.nil
}

// Contains reports whether k is in the tree.
func (t *RBTree) Contains(tx tm.Tx, k uint64) bool {
	return t.lookup(tx, k) != t.nil
}

// Get returns the value stored at k.
func (t *RBTree) Get(tx tm.Tx, k uint64) (mem.Word, bool) {
	n := t.lookup(tx, k)
	if n == t.nil {
		return 0, false
	}
	return tx.Load(field(n, rbVal)), true
}

// Update stores v at existing key k, returning false if absent.
func (t *RBTree) Update(tx tm.Tx, k uint64, v mem.Word) bool {
	n := t.lookup(tx, k)
	if n == t.nil {
		return false
	}
	tx.Store(field(n, rbVal), v)
	return true
}

// Insert adds (k, v), returning false if k was already present.
func (t *RBTree) Insert(tx tm.Tx, k uint64, v mem.Word) bool {
	c := tx.CPU()
	y := t.nil
	x := t.root(tx)
	for x != t.nil {
		c.Exec(6)
		y = x
		xk := uint64(tx.Load(field(x, rbKey)))
		if k == xk {
			return false
		}
		if k < xk {
			x = get(tx, x, rbLeft)
		} else {
			x = get(tx, x, rbRight)
		}
	}
	z := tx.AllocLines(1)
	tx.Store(field(z, rbKey), mem.Word(k))
	tx.Store(field(z, rbVal), v)
	set(tx, z, rbLeft, t.nil)
	set(tx, z, rbRight, t.nil)
	set(tx, z, rbParent, y)
	tx.Store(field(z, rbColor), red)
	if y == t.nil {
		t.setRoot(tx, z)
	} else if k < uint64(tx.Load(field(y, rbKey))) {
		set(tx, y, rbLeft, z)
	} else {
		set(tx, y, rbRight, z)
	}
	t.insertFixup(tx, z)
	return true
}

func (t *RBTree) rotateLeft(tx tm.Tx, x mem.Addr) {
	tx.CPU().Exec(12)
	y := get(tx, x, rbRight)
	yl := get(tx, y, rbLeft)
	set(tx, x, rbRight, yl)
	if yl != t.nil {
		set(tx, yl, rbParent, x)
	}
	xp := get(tx, x, rbParent)
	set(tx, y, rbParent, xp)
	if xp == t.nil {
		t.setRoot(tx, y)
	} else if x == get(tx, xp, rbLeft) {
		set(tx, xp, rbLeft, y)
	} else {
		set(tx, xp, rbRight, y)
	}
	set(tx, y, rbLeft, x)
	set(tx, x, rbParent, y)
}

func (t *RBTree) rotateRight(tx tm.Tx, x mem.Addr) {
	tx.CPU().Exec(12)
	y := get(tx, x, rbLeft)
	yr := get(tx, y, rbRight)
	set(tx, x, rbLeft, yr)
	if yr != t.nil {
		set(tx, yr, rbParent, x)
	}
	xp := get(tx, x, rbParent)
	set(tx, y, rbParent, xp)
	if xp == t.nil {
		t.setRoot(tx, y)
	} else if x == get(tx, xp, rbRight) {
		set(tx, xp, rbRight, y)
	} else {
		set(tx, xp, rbLeft, y)
	}
	set(tx, y, rbRight, x)
	set(tx, x, rbParent, y)
}

func (t *RBTree) color(tx tm.Tx, n mem.Addr) mem.Word       { return tx.Load(field(n, rbColor)) }
func (t *RBTree) setColor(tx tm.Tx, n mem.Addr, c mem.Word) { tx.Store(field(n, rbColor), c) }

func (t *RBTree) insertFixup(tx tm.Tx, z mem.Addr) {
	for {
		zp := get(tx, z, rbParent)
		if zp == t.nil || t.color(tx, zp) == black {
			break
		}
		zpp := get(tx, zp, rbParent)
		if zp == get(tx, zpp, rbLeft) {
			y := get(tx, zpp, rbRight)
			if t.color(tx, y) == red {
				t.setColor(tx, zp, black)
				t.setColor(tx, y, black)
				t.setColor(tx, zpp, red)
				z = zpp
			} else {
				if z == get(tx, zp, rbRight) {
					z = zp
					t.rotateLeft(tx, z)
					zp = get(tx, z, rbParent)
					zpp = get(tx, zp, rbParent)
				}
				t.setColor(tx, zp, black)
				t.setColor(tx, zpp, red)
				t.rotateRight(tx, zpp)
			}
		} else {
			y := get(tx, zpp, rbLeft)
			if t.color(tx, y) == red {
				t.setColor(tx, zp, black)
				t.setColor(tx, y, black)
				t.setColor(tx, zpp, red)
				z = zpp
			} else {
				if z == get(tx, zp, rbLeft) {
					z = zp
					t.rotateRight(tx, z)
					zp = get(tx, z, rbParent)
					zpp = get(tx, zp, rbParent)
				}
				t.setColor(tx, zp, black)
				t.setColor(tx, zpp, red)
				t.rotateLeft(tx, zpp)
			}
		}
	}
	t.setColor(tx, t.root(tx), black)
}

// transplant replaces subtree u with subtree v. The sentinel is never
// written (writing it would make every removal conflict with every other
// through one hot line); callers carry v's parent explicitly instead.
func (t *RBTree) transplant(tx tm.Tx, u, v mem.Addr) {
	up := get(tx, u, rbParent)
	if up == t.nil {
		t.setRoot(tx, v)
	} else if u == get(tx, up, rbLeft) {
		set(tx, up, rbLeft, v)
	} else {
		set(tx, up, rbRight, v)
	}
	if v != t.nil {
		set(tx, v, rbParent, up)
	}
}

func (t *RBTree) minimum(tx tm.Tx, x mem.Addr) mem.Addr {
	for {
		l := get(tx, x, rbLeft)
		if l == t.nil {
			return x
		}
		x = l
	}
}

// Remove deletes k, returning false if absent.
func (t *RBTree) Remove(tx tm.Tx, k uint64) bool {
	z := t.lookup(tx, k)
	if z == t.nil {
		return false
	}
	y := z
	yColor := t.color(tx, y)
	var x, xp mem.Addr // x may be the sentinel; xp is its effective parent
	if get(tx, z, rbLeft) == t.nil {
		x = get(tx, z, rbRight)
		xp = get(tx, z, rbParent)
		t.transplant(tx, z, x)
	} else if get(tx, z, rbRight) == t.nil {
		x = get(tx, z, rbLeft)
		xp = get(tx, z, rbParent)
		t.transplant(tx, z, x)
	} else {
		y = t.minimum(tx, get(tx, z, rbRight))
		yColor = t.color(tx, y)
		x = get(tx, y, rbRight)
		if get(tx, y, rbParent) == z {
			xp = y
			if x != t.nil {
				set(tx, x, rbParent, y)
			}
		} else {
			xp = get(tx, y, rbParent)
			t.transplant(tx, y, x)
			zr := get(tx, z, rbRight)
			set(tx, y, rbRight, zr)
			set(tx, zr, rbParent, y)
		}
		t.transplant(tx, z, y)
		zl := get(tx, z, rbLeft)
		set(tx, y, rbLeft, zl)
		set(tx, zl, rbParent, y)
		t.setColor(tx, y, t.color(tx, z))
	}
	if yColor == black {
		t.deleteFixup(tx, x, xp)
	}
	tx.Store(field(z, rbKey), ^mem.Word(0)) // poison
	tx.Free(z)
	return true
}

func (t *RBTree) deleteFixup(tx tm.Tx, x, xp mem.Addr) {
	for x != t.root(tx) && (x == t.nil || t.color(tx, x) == black) {
		tx.CPU().Exec(8)
		if x != t.nil {
			xp = get(tx, x, rbParent)
		}
		if x == get(tx, xp, rbLeft) {
			w := get(tx, xp, rbRight)
			if t.color(tx, w) == red {
				t.setColor(tx, w, black)
				t.setColor(tx, xp, red)
				t.rotateLeft(tx, xp)
				w = get(tx, xp, rbRight)
			}
			if t.color(tx, get(tx, w, rbLeft)) == black &&
				t.color(tx, get(tx, w, rbRight)) == black {
				t.setColor(tx, w, red)
				x, xp = xp, t.nil
			} else {
				if t.color(tx, get(tx, w, rbRight)) == black {
					t.setColor(tx, get(tx, w, rbLeft), black)
					t.setColor(tx, w, red)
					t.rotateRight(tx, w)
					w = get(tx, xp, rbRight)
				}
				t.setColor(tx, w, t.color(tx, xp))
				t.setColor(tx, xp, black)
				t.setColor(tx, get(tx, w, rbRight), black)
				t.rotateLeft(tx, xp)
				x = t.root(tx)
			}
		} else {
			w := get(tx, xp, rbLeft)
			if t.color(tx, w) == red {
				t.setColor(tx, w, black)
				t.setColor(tx, xp, red)
				t.rotateRight(tx, xp)
				w = get(tx, xp, rbLeft)
			}
			if t.color(tx, get(tx, w, rbRight)) == black &&
				t.color(tx, get(tx, w, rbLeft)) == black {
				t.setColor(tx, w, red)
				x, xp = xp, t.nil
			} else {
				if t.color(tx, get(tx, w, rbLeft)) == black {
					t.setColor(tx, get(tx, w, rbRight), black)
					t.setColor(tx, w, red)
					t.rotateLeft(tx, w)
					w = get(tx, xp, rbLeft)
				}
				t.setColor(tx, w, t.color(tx, xp))
				t.setColor(tx, xp, black)
				t.setColor(tx, get(tx, w, rbLeft), black)
				t.rotateRight(tx, xp)
				x = t.root(tx)
			}
		}
	}
	if x != t.nil {
		t.setColor(tx, x, black)
	}
}

// Size returns the element count by walking the tree. Deliberately not a
// maintained counter: a counter word next to the root pointer would make
// every update conflict with every lookup through one hot line.
func (t *RBTree) Size(tx tm.Tx) int { return t.sizeOf(tx, t.root(tx)) }

func (t *RBTree) sizeOf(tx tm.Tx, n mem.Addr) int {
	if n == t.nil {
		return 0
	}
	return 1 + t.sizeOf(tx, get(tx, n, rbLeft)) + t.sizeOf(tx, get(tx, n, rbRight))
}

// CheckInvariants verifies the red-black properties and key order,
// returning the black height (tests only).
func (t *RBTree) CheckInvariants(tx tm.Tx) (blackHeight int, ok bool) {
	root := t.root(tx)
	if root == t.nil {
		return 1, true
	}
	if t.color(tx, root) != black {
		return 0, false
	}
	return t.check(tx, root, 0, ^uint64(0))
}

func (t *RBTree) check(tx tm.Tx, n mem.Addr, lo, hi uint64) (int, bool) {
	if n == t.nil {
		return 1, true
	}
	k := uint64(tx.Load(field(n, rbKey)))
	if k < lo || k > hi {
		return 0, false
	}
	c := t.color(tx, n)
	l, r := get(tx, n, rbLeft), get(tx, n, rbRight)
	if c == red {
		if (l != t.nil && t.color(tx, l) == red) || (r != t.nil && t.color(tx, r) == red) {
			return 0, false
		}
	}
	var lk, hk uint64
	if k > 0 {
		lk = k - 1
	}
	hk = k + 1
	lb, lok := t.check(tx, l, lo, lk)
	rb, rok := t.check(tx, r, hk, hi)
	if !lok || !rok || lb != rb {
		return 0, false
	}
	if c == black {
		lb++
	}
	return lb, true
}
