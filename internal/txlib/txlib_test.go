package txlib_test

import (
	"math/rand"
	"testing"

	"asfstack"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/txlib"
)

// set is the common interface of the four IntegerSet structures.
type set interface {
	Contains(tx tm.Tx, k uint64) bool
	Insert(tx tm.Tx, k uint64) bool
	Remove(tx tm.Tx, k uint64) bool
	Size(tx tm.Tx) int
}

// rbAsSet adapts RBTree's map API to the set interface.
type rbAsSet struct{ t *txlib.RBTree }

func (s rbAsSet) Contains(tx tm.Tx, k uint64) bool { return s.t.Contains(tx, k) }
func (s rbAsSet) Insert(tx tm.Tx, k uint64) bool   { return s.t.Insert(tx, k, 0) }
func (s rbAsSet) Remove(tx tm.Tx, k uint64) bool   { return s.t.Remove(tx, k) }
func (s rbAsSet) Size(tx tm.Tx) int                { return s.t.Size(tx) }

func builders() map[string]func(tx tm.Tx) set {
	return map[string]func(tx tm.Tx) set{
		"list":     func(tx tm.Tx) set { return txlib.NewList(tx) },
		"skiplist": func(tx tm.Tx) set { return txlib.NewSkipList(tx) },
		"rbtree":   func(tx tm.Tx) set { return rbAsSet{txlib.NewRBTree(tx)} },
		"hashset":  func(tx tm.Tx) set { return txlib.NewHashSet(tx, 8) },
	}
}

// TestSetsMatchOracle drives each structure with a random operation mix on
// the sequential runtime and compares every result against a Go map.
func TestSetsMatchOracle(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			s := asfstack.New(asfstack.Options{Cores: 1, Runtime: "Sequential"})
			var ds set
			s.Setup(func(tx tm.Tx) { ds = build(tx) })
			oracle := map[uint64]bool{}
			rng := rand.New(rand.NewSource(7))
			s.M.Run(func(c *sim.CPU) {
				tx := tm.Direct(c, s.Heap)
				for i := 0; i < 3000; i++ {
					k := uint64(rng.Intn(256))
					switch rng.Intn(3) {
					case 0:
						want := !oracle[k]
						if got := ds.Insert(tx, k); got != want {
							t.Fatalf("%s Insert(%d) = %v, want %v (op %d)", name, k, got, want, i)
						}
						oracle[k] = true
					case 1:
						want := oracle[k]
						if got := ds.Remove(tx, k); got != want {
							t.Fatalf("%s Remove(%d) = %v, want %v (op %d)", name, k, got, want, i)
						}
						delete(oracle, k)
					default:
						if got := ds.Contains(tx, k); got != oracle[k] {
							t.Fatalf("%s Contains(%d) = %v, want %v (op %d)", name, k, got, oracle[k], i)
						}
					}
				}
				if got := ds.Size(tx); got != len(oracle) {
					t.Fatalf("%s Size = %d, want %d", name, got, len(oracle))
				}
			})
		})
	}
}

// TestRBTreeInvariants checks the red-black properties hold after every
// batch of random mutations.
func TestRBTreeInvariants(t *testing.T) {
	s := asfstack.New(asfstack.Options{Cores: 1, Runtime: "Sequential"})
	var tr *txlib.RBTree
	s.Setup(func(tx tm.Tx) { tr = txlib.NewRBTree(tx) })
	rng := rand.New(rand.NewSource(11))
	s.M.Run(func(c *sim.CPU) {
		tx := tm.Direct(c, s.Heap)
		for round := 0; round < 30; round++ {
			for i := 0; i < 100; i++ {
				k := uint64(rng.Intn(512))
				if rng.Intn(2) == 0 {
					tr.Insert(tx, k, mem0(k))
				} else {
					tr.Remove(tx, k)
				}
			}
			if _, ok := tr.CheckInvariants(tx); !ok {
				t.Fatalf("red-black invariants violated after round %d", round)
			}
		}
	})
}

func mem0(k uint64) uint64 { return k * 3 }

// TestSetsConcurrentDisjoint has each thread insert then remove its own key
// range on every runtime; the structure must end empty with every
// intermediate lookup correct.
func TestSetsConcurrentDisjoint(t *testing.T) {
	const threads, perThread = 4, 40
	for name, build := range builders() {
		for _, rt := range []string{"LLB-256", "LLB-8 w/ L1", "STM"} {
			t.Run(name+"/"+rt, func(t *testing.T) {
				s := asfstack.New(asfstack.Options{Cores: threads, Runtime: rt})
				var ds set
				s.Setup(func(tx tm.Tx) { ds = build(tx) })
				errs := make([]int, threads)
				s.Parallel(threads, func(c *sim.CPU) {
					base := uint64(c.ID() * 1000)
					for i := uint64(0); i < perThread; i++ {
						s.Atomic(c, func(tx tm.Tx) {
							if !ds.Insert(tx, base+i) {
								errs[c.ID()]++
							}
						})
					}
					for i := uint64(0); i < perThread; i++ {
						s.Atomic(c, func(tx tm.Tx) {
							if !ds.Contains(tx, base+i) {
								errs[c.ID()]++
							}
						})
					}
					for i := uint64(0); i < perThread; i++ {
						s.Atomic(c, func(tx tm.Tx) {
							if !ds.Remove(tx, base+i) {
								errs[c.ID()]++
							}
						})
					}
				})
				for id, e := range errs {
					if e != 0 {
						t.Fatalf("thread %d saw %d wrong results", id, e)
					}
				}
				s.Setup(func(tx tm.Tx) {
					if got := ds.Size(tx); got != 0 {
						t.Fatalf("final size = %d, want 0", got)
					}
				})
			})
		}
	}
}

// TestSetsConcurrentContended runs a contended random mix and then checks
// the structure's size against the net successful inserts/removes.
func TestSetsConcurrentContended(t *testing.T) {
	const threads, ops, keyRange = 4, 150, 64
	for name, build := range builders() {
		for _, rt := range []string{"LLB-256", "STM"} {
			t.Run(name+"/"+rt, func(t *testing.T) {
				s := asfstack.New(asfstack.Options{Cores: threads, Runtime: rt})
				var ds set
				s.Setup(func(tx tm.Tx) { ds = build(tx) })
				net := make([]int, threads)
				s.Parallel(threads, func(c *sim.CPU) {
					rng := c.Rand()
					for i := 0; i < ops; i++ {
						k := uint64(rng.Intn(keyRange))
						if rng.Intn(2) == 0 {
							ok := false
							s.Atomic(c, func(tx tm.Tx) {
								ok = ds.Insert(tx, k)
							})
							if ok {
								net[c.ID()]++
							}
						} else {
							ok := false
							s.Atomic(c, func(tx tm.Tx) {
								ok = ds.Remove(tx, k)
							})
							if ok {
								net[c.ID()]--
							}
						}
					}
				})
				want := 0
				for _, n := range net {
					want += n
				}
				s.Setup(func(tx tm.Tx) {
					if got := ds.Size(tx); got != want {
						t.Fatalf("size = %d, want net %d", got, want)
					}
				})
			})
		}
	}
}

// TestListEarlyReleaseCorrectness stresses the hand-over-hand list on the
// 8-entry LLB, where early release is what makes hardware commits possible.
func TestListEarlyReleaseCorrectness(t *testing.T) {
	const threads, ops, keyRange = 4, 150, 48
	s := asfstack.New(asfstack.Options{Cores: threads, Runtime: "LLB-8"})
	var l *txlib.List
	s.Setup(func(tx tm.Tx) {
		l = txlib.NewList(tx)
		l.EarlyRelease = true
		for k := uint64(0); k < keyRange; k += 2 {
			l.Insert(tx, k)
		}
	})
	net := make([]int, threads)
	s.Parallel(threads, func(c *sim.CPU) {
		rng := c.Rand()
		for i := 0; i < ops; i++ {
			k := uint64(rng.Intn(keyRange))
			if rng.Intn(2) == 0 {
				ok := false
				s.Atomic(c, func(tx tm.Tx) { ok = l.Insert(tx, k) })
				if ok {
					net[c.ID()]++
				}
			} else {
				ok := false
				s.Atomic(c, func(tx tm.Tx) { ok = l.Remove(tx, k) })
				if ok {
					net[c.ID()]--
				}
			}
		}
	})
	want := int(keyRange / 2)
	for _, n := range net {
		want += n
	}
	s.Setup(func(tx tm.Tx) {
		keys := l.Keys(tx)
		if len(keys) != want {
			t.Fatalf("size = %d, want %d", len(keys), want)
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("list unsorted at %d: %v >= %v", i, keys[i-1], keys[i])
			}
		}
	})
	st := s.TotalStats()
	if st.Serial > st.Commits/2 {
		t.Errorf("early release ineffective: %d/%d commits serial", st.Serial, st.Commits)
	}
}

// TestQueueFIFO checks ordering and conservation.
func TestQueueFIFO(t *testing.T) {
	s := asfstack.New(asfstack.Options{Cores: 1, Runtime: "Sequential"})
	var q *txlib.Queue
	s.Setup(func(tx tm.Tx) { q = txlib.NewQueue(tx) })
	s.M.Run(func(c *sim.CPU) {
		tx := tm.Direct(c, s.Heap)
		for i := 0; i < 50; i++ {
			q.Push(tx, uint64(i))
		}
		for i := 0; i < 50; i++ {
			v, ok := q.Pop(tx)
			if !ok || v != uint64(i) {
				t.Fatalf("Pop %d = (%d,%v)", i, v, ok)
			}
		}
		if _, ok := q.Pop(tx); ok {
			t.Fatal("Pop on empty succeeded")
		}
	})
}

// TestQueueConcurrent: producers and consumers conserve elements.
func TestQueueConcurrent(t *testing.T) {
	const threads, items = 4, 60
	for _, rt := range []string{"LLB-256", "STM"} {
		t.Run(rt, func(t *testing.T) {
			s := asfstack.New(asfstack.Options{Cores: threads, Runtime: rt})
			var q *txlib.Queue
			s.Setup(func(tx tm.Tx) { q = txlib.NewQueue(tx) })
			popped := make([]int, threads)
			s.Parallel(threads, func(c *sim.CPU) {
				if c.ID()%2 == 0 { // producer
					for i := 0; i < items; i++ {
						s.Atomic(c, func(tx tm.Tx) {
							q.Push(tx, uint64(c.ID()*10000+i))
						})
					}
				} else { // consumer
					for popped[c.ID()] < items {
						got := false
						s.Atomic(c, func(tx tm.Tx) {
							_, got = q.Pop(tx)
						})
						if got {
							popped[c.ID()]++
						} else {
							c.Cycles(500)
						}
					}
				}
			})
			total := 0
			for _, p := range popped {
				total += p
			}
			if total != (threads/2)*items {
				t.Fatalf("popped %d, want %d", total, (threads/2)*items)
			}
		})
	}
}

// TestHashMapSemantics exercises the map variant against an oracle.
func TestHashMapSemantics(t *testing.T) {
	s := asfstack.New(asfstack.Options{Cores: 1, Runtime: "Sequential"})
	var h *txlib.HashMap
	s.Setup(func(tx tm.Tx) { h = txlib.NewHashMap(tx, 6) })
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(3))
	s.M.Run(func(c *sim.CPU) {
		tx := tm.Direct(c, s.Heap)
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(128))
			switch rng.Intn(4) {
			case 0:
				v := rng.Uint64() % 1000
				_, existed := oracle[k]
				if isNew := h.Put(tx, k, v); isNew == existed {
					t.Fatalf("Put(%d) new=%v, want %v", k, isNew, !existed)
				}
				oracle[k] = v
			case 1:
				_, existed := oracle[k]
				if ok := h.PutIfAbsent(tx, k, 42); ok == existed {
					t.Fatalf("PutIfAbsent(%d) = %v", k, ok)
				}
				if !existed {
					oracle[k] = 42
				}
			case 2:
				wantV, want := oracle[k]
				v, ok := h.Remove(tx, k)
				if ok != want || (ok && v != wantV) {
					t.Fatalf("Remove(%d) = (%d,%v), want (%d,%v)", k, v, ok, wantV, want)
				}
				delete(oracle, k)
			default:
				wantV, want := oracle[k]
				v, ok := h.Get(tx, k)
				if ok != want || (ok && v != wantV) {
					t.Fatalf("Get(%d) = (%d,%v), want (%d,%v)", k, v, ok, wantV, want)
				}
			}
		}
	})
}
