// Package txlib provides transactional data structures laid out in
// simulated memory and operated through the TM ABI (tm.Tx): sorted linked
// list, skip list, red-black tree, hash set/map, FIFO queue, and word
// arrays. These are the structures behind the IntegerSet microbenchmarks
// and the STAMP applications in the paper's evaluation.
//
// Layout conventions:
//
//   - every structure's entry point (head/root/bucket array) is padded to
//     whole cache lines, the paper's discipline for avoiding false-sharing
//     contention aborts (§5, footnote 11);
//   - list, skip-list and tree nodes occupy one full line each, so one
//     node costs exactly one unit of ASF capacity — which is what makes
//     the capacity figures (Fig. 5/7/8) meaningful;
//   - hash buckets are 16 bytes (packed four to a line), matching the
//     hash-set geometry the paper reports (2^17 buckets, 16 B/bucket).
//
// All operations charge compute cycles through tx.CPU().Exec so that the
// instrumented-application-code category of the overhead breakdown
// (Fig. 9 / Table 1) reflects real traversal work.
package txlib

import (
	"asfstack/internal/mem"
	"asfstack/internal/tm"
)

// field returns the address of 8-byte field i of a record at base.
func field(base mem.Addr, i int) mem.Addr {
	return base + mem.Addr(i*mem.WordSize)
}

// releaser is implemented by TM handles that support ASF early release
// (asftm.Tx). Structures that can exploit hand-over-hand protection probe
// for it; on other runtimes release is a no-op.
type releaser interface {
	Release(a mem.Addr)
}

// release drops a from the transaction's read set if the runtime supports
// early release.
func release(tx tm.Tx, a mem.Addr) {
	if r, ok := tx.(releaser); ok {
		r.Release(a)
	}
}
