package txlib

import (
	"asfstack/internal/mem"
	"asfstack/internal/tm"
)

// HashSet is a chained hash table implementing an integer set — the
// IntegerSet hash-set workload. The bucket array uses 16 bytes per bucket
// (chain head + pad), four buckets per cache line, matching the geometry
// the paper reports (2^17 buckets × 16 B ≈ 2 MiB, larger than L1+L2 —
// which is why its transactional accesses are cache-miss bound and the
// STM/ASF barrier ratio shrinks to ≈9×, Table 1).
//
// Chain nodes are 16 bytes (next, key), packed.
type HashSet struct {
	buckets mem.Addr
	mask    uint64
}

const bucketBytes = 16

// NewHashSet builds a table with 2^bits buckets.
func NewHashSet(tx tm.Tx, bits uint) *HashSet {
	n := uint64(1) << bits
	b := tx.AllocLines(int(n * bucketBytes / mem.LineSize))
	return &HashSet{buckets: b, mask: n - 1}
}

// hash mixes k (Fibonacci hashing).
func (h *HashSet) bucket(k uint64) mem.Addr {
	idx := (k * 0x9E3779B97F4A7C15) >> 1 & h.mask
	return h.buckets + mem.Addr(idx*bucketBytes)
}

// Contains reports whether k is in the set.
func (h *HashSet) Contains(tx tm.Tx, k uint64) bool {
	tx.CPU().Exec(10) // hash + dispatch
	cur := mem.Addr(tx.Load(h.bucket(k)))
	for cur != 0 {
		tx.CPU().Exec(4)
		if uint64(tx.Load(field(cur, 1))) == k {
			return true
		}
		cur = mem.Addr(tx.Load(field(cur, 0)))
	}
	return false
}

// Insert adds k, returning false if already present.
func (h *HashSet) Insert(tx tm.Tx, k uint64) bool {
	tx.CPU().Exec(10)
	head := h.bucket(k)
	cur := mem.Addr(tx.Load(head))
	for p := cur; p != 0; {
		tx.CPU().Exec(4)
		if uint64(tx.Load(field(p, 1))) == k {
			return false
		}
		p = mem.Addr(tx.Load(field(p, 0)))
	}
	n := tx.Alloc(16)
	tx.Store(field(n, 1), mem.Word(k))
	tx.Store(field(n, 0), mem.Word(cur))
	tx.Store(head, mem.Word(n))
	return true
}

// Remove deletes k, returning false if absent.
func (h *HashSet) Remove(tx tm.Tx, k uint64) bool {
	tx.CPU().Exec(10)
	head := h.bucket(k)
	var prev mem.Addr
	cur := mem.Addr(tx.Load(head))
	for cur != 0 {
		tx.CPU().Exec(4)
		next := tx.Load(field(cur, 0))
		if uint64(tx.Load(field(cur, 1))) == k {
			if prev == 0 {
				tx.Store(head, next)
			} else {
				tx.Store(field(prev, 0), next)
			}
			tx.Free(cur)
			return true
		}
		prev, cur = cur, mem.Addr(next)
	}
	return false
}

// Size counts elements (verification; O(buckets + n)).
func (h *HashSet) Size(tx tm.Tx) int {
	n := 0
	for i := uint64(0); i <= h.mask; i++ {
		cur := mem.Addr(tx.Load(h.buckets + mem.Addr(i*bucketBytes)))
		for cur != 0 {
			n++
			cur = mem.Addr(tx.Load(field(cur, 0)))
		}
	}
	return n
}
