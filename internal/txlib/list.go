package txlib

import (
	"asfstack/internal/mem"
	"asfstack/internal/tm"
)

// List is a sorted singly linked list implementing an integer set — the
// IntegerSet linked-list workload. Each node occupies one cache line:
//
//	word 0: next pointer (0 terminates)
//	word 1: key
//
// With EarlyRelease set (and a runtime that supports it), traversal keeps
// only a hand-over-hand window [prev, cur] in the read set, releasing
// earlier nodes — the Fig. 8 optimisation that lets an 8-entry LLB walk
// arbitrarily long lists.
type List struct {
	head mem.Addr // sentinel node, line-padded
	// EarlyRelease enables hand-over-hand read-set trimming.
	EarlyRelease bool
}

const (
	listNext = 0
	listKey  = 1
)

// NewList builds an empty list, allocating its sentinel via tx.
func NewList(tx tm.Tx) *List {
	head := tx.AllocLines(1)
	tx.Store(field(head, listNext), 0)
	return &List{head: head}
}

// find walks to the first node with key >= k, returning (prev, cur).
// cur may be 0 (end of list). Traversal work is charged per hop.
func (l *List) find(tx tm.Tx, k uint64) (prev, cur mem.Addr) {
	c := tx.CPU()
	prev = l.head
	cur = mem.Addr(tx.Load(field(prev, listNext)))
	var older mem.Addr // node before prev, candidate for release
	for cur != 0 {
		c.Exec(6)
		kk := uint64(tx.Load(field(cur, listKey)))
		if kk >= k {
			break
		}
		if l.EarlyRelease && older != 0 {
			release(tx, older)
		}
		older, prev = prev, cur
		cur = mem.Addr(tx.Load(field(cur, listNext)))
	}
	return prev, cur
}

// Contains reports whether k is in the set.
func (l *List) Contains(tx tm.Tx, k uint64) bool {
	_, cur := l.find(tx, k)
	return cur != 0 && uint64(tx.Load(field(cur, listKey))) == k
}

// Insert adds k, returning false if it was already present.
func (l *List) Insert(tx tm.Tx, k uint64) bool {
	prev, cur := l.find(tx, k)
	if cur != 0 && uint64(tx.Load(field(cur, listKey))) == k {
		return false
	}
	n := tx.AllocLines(1)
	tx.Store(field(n, listKey), mem.Word(k))
	tx.Store(field(n, listNext), mem.Word(cur))
	tx.Store(field(prev, listNext), mem.Word(n))
	return true
}

// Remove deletes k, returning false if it was absent. The removed node's
// next pointer is poisoned (written), which guarantees a conflict with any
// concurrent transaction still holding the node — required for correctness
// under early release, and what a transactional free list does anyway.
func (l *List) Remove(tx tm.Tx, k uint64) bool {
	prev, cur := l.find(tx, k)
	if cur == 0 || uint64(tx.Load(field(cur, listKey))) != k {
		return false
	}
	next := tx.Load(field(cur, listNext))
	tx.Store(field(prev, listNext), next)
	tx.Store(field(cur, listNext), ^mem.Word(0)) // poison
	tx.Free(cur)
	return true
}

// Size counts elements (setup/verification; O(n) transactional reads).
func (l *List) Size(tx tm.Tx) int {
	n := 0
	for cur := mem.Addr(tx.Load(field(l.head, listNext))); cur != 0; {
		n++
		cur = mem.Addr(tx.Load(field(cur, listNext)))
	}
	return n
}

// Keys returns the set contents in order (verification).
func (l *List) Keys(tx tm.Tx) []uint64 {
	var out []uint64
	for cur := mem.Addr(tx.Load(field(l.head, listNext))); cur != 0; {
		out = append(out, uint64(tx.Load(field(cur, listKey))))
		cur = mem.Addr(tx.Load(field(cur, listNext)))
	}
	return out
}
