// Package elision implements transactional lock elision on ASF — the
// paper's path for existing lock-based software (§3): "our software stack
// also supports existing software with the help of lock elision [25]".
//
// A critical section is first attempted as an ASF speculative region that
// *reads* the lock word (adding it to the read set) without acquiring it:
// concurrent critical sections on the same lock run in parallel as long as
// their data accesses do not conflict. Any real acquisition of the lock
// writes the word and thereby aborts all elided sections instantly
// (requester wins). After repeated aborts or a capacity overflow the
// section falls back to actually taking the lock.
//
// As with compiler-driven elision, the section's shared accesses must be
// annotated speculative while eliding — the CS handle does this, issuing
// LOCK MOVs on the hardware path and plain accesses when the lock is held.
package elision

import (
	"asfstack/internal/asf"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

// codeLockBusy is the ABORT code used when the elided region observes the
// lock already held.
const codeLockBusy uint64 = 0xE11DE

// Mutex is a lock word in simulated memory, alone on its cache line.
type Mutex struct {
	addr mem.Addr
}

// NewMutex allocates a mutex. alloc must return line-aligned memory (use
// tm.Tx.AllocLines or an arena).
func NewMutex(a mem.Addr) *Mutex {
	if a%mem.LineSize != 0 {
		panic("elision: mutex must be line-aligned")
	}
	return &Mutex{addr: a}
}

// Addr returns the lock word's address.
func (m *Mutex) Addr() mem.Addr { return m.addr }

// Stats counts how critical sections executed.
type Stats struct {
	Elided   uint64 // committed speculatively, lock never taken
	Acquired uint64 // fell back to real acquisition
	Aborts   uint64 // failed elision attempts
}

// Elider runs critical sections with elision on one ASF system.
type Elider struct {
	sys *asf.System
	// MaxAttempts bounds elision retries before falling back.
	MaxAttempts int
	// BackoffBase scales the randomised retry back-off (cycles).
	BackoffBase uint64

	stats []Stats
}

// New builds an elider for sys.
func New(sys *asf.System, cores int) *Elider {
	return &Elider{sys: sys, MaxAttempts: 4, BackoffBase: 64, stats: make([]Stats, cores)}
}

// Stats returns core i's counters.
func (e *Elider) Stats(i int) Stats { return e.stats[i] }

// CS is the critical-section handle: accesses through it are speculative
// while eliding and plain once the lock is truly held.
type CS struct {
	c *sim.CPU
	u *asf.Unit // nil when the lock is held for real
}

// Load reads a shared word inside the critical section.
func (s CS) Load(a mem.Addr) mem.Word {
	if s.u != nil {
		return s.u.Load(a)
	}
	return s.c.Load(a)
}

// Store writes a shared word inside the critical section.
func (s CS) Store(a mem.Addr, v mem.Word) {
	if s.u != nil {
		s.u.Store(a, v)
	} else {
		s.c.Store(a, v)
	}
}

// CPU returns the executing core.
func (s CS) CPU() *sim.CPU { return s.c }

// Elided reports whether the section is running speculatively.
func (s CS) Elided() bool { return s.u != nil }

// Critical executes body under m, eliding the lock when possible.
func (e *Elider) Critical(c *sim.CPU, m *Mutex, body func(cs CS)) {
	u := e.sys.Unit(c.ID())
	st := &e.stats[c.ID()]

	for attempt := 0; attempt < e.MaxAttempts; attempt++ {
		reason, code := u.Region(func() {
			// Monitor the lock word: a real acquisition aborts us.
			if u.Load(m.addr) != 0 {
				u.Abort(codeLockBusy)
			}
			body(CS{c: c, u: u})
		})
		if reason == sim.AbortNone {
			st.Elided++
			return
		}
		st.Aborts++
		switch {
		case reason == sim.AbortExplicit && code == codeLockBusy:
			// Someone holds the lock for real: wait it out, then
			// re-elide (no need to count against the budget harshly,
			// but bounded anyway).
			for c.Load(m.addr) != 0 {
				c.Cycles(150)
			}
		case reason == sim.AbortCapacity:
			// The section does not fit in hardware: no point retrying.
			attempt = e.MaxAttempts
		default:
			limit := int64(e.BackoffBase) << uint(min(attempt, 8))
			c.Cycles(uint64(c.Rand().Int63n(limit)) + 1)
		}
	}

	// Fallback: take the lock. The CAS write aborts every elided section
	// monitoring the word.
	for {
		if _, ok := c.CAS(m.addr, 0, mem.Word(c.ID())+1); ok {
			break
		}
		c.Cycles(uint64(c.Rand().Int63n(300)) + 50)
	}
	body(CS{c: c})
	c.Store(m.addr, 0)
	st.Acquired++
}
