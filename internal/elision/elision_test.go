package elision

import (
	"testing"

	"asfstack/internal/asf"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

func setup(t *testing.T, cores int, v asf.Variant) (*sim.Machine, *Elider, *Mutex) {
	t.Helper()
	m := sim.New(sim.Barcelona(cores))
	m.Mem.Prefault(0, 1<<21)
	sys := asf.Install(m, v)
	return m, New(sys, cores), NewMutex(0x10000)
}

func TestElidedCounterIsAtomic(t *testing.T) {
	const threads, incs = 4, 250
	m, e, mu := setup(t, threads, asf.LLB256)
	body := func(c *sim.CPU) {
		for i := 0; i < incs; i++ {
			e.Critical(c, mu, func(cs CS) {
				cs.Store(0x20000, cs.Load(0x20000)+1)
			})
		}
	}
	bodies := make([]func(*sim.CPU), threads)
	for i := range bodies {
		bodies[i] = body
	}
	m.Run(bodies...)
	if got := m.Mem.Load(0x20000); got != threads*incs {
		t.Fatalf("counter = %d, want %d", got, threads*incs)
	}
}

func TestDisjointSectionsRunElided(t *testing.T) {
	// Threads touching disjoint data under ONE lock: elision should make
	// nearly every section speculative — the whole point of elision.
	const threads, rounds = 4, 200
	m, e, mu := setup(t, threads, asf.LLB256)
	body := func(c *sim.CPU) {
		a := mem.Addr(0x30000 + c.ID()*0x1000)
		for i := 0; i < rounds; i++ {
			e.Critical(c, mu, func(cs CS) {
				cs.Store(a, cs.Load(a)+1)
			})
		}
	}
	bodies := make([]func(*sim.CPU), threads)
	for i := range bodies {
		bodies[i] = body
	}
	m.Run(bodies...)
	var st Stats
	for i := 0; i < threads; i++ {
		s := e.Stats(i)
		st.Elided += s.Elided
		st.Acquired += s.Acquired
	}
	if st.Elided+st.Acquired != threads*rounds {
		t.Fatalf("sections: %d elided + %d acquired != %d", st.Elided, st.Acquired, threads*rounds)
	}
	if st.Acquired > uint64(threads*rounds/10) {
		t.Fatalf("elision rate too low: %d/%d fell back", st.Acquired, threads*rounds)
	}
	for i := 0; i < threads; i++ {
		if got := m.Mem.Load(mem.Addr(0x30000 + i*0x1000)); got != rounds {
			t.Fatalf("thread %d count = %d", i, got)
		}
	}
}

func TestCapacityOverflowFallsBack(t *testing.T) {
	m, e, mu := setup(t, 1, asf.LLB8)
	m.Run(func(c *sim.CPU) {
		e.Critical(c, mu, func(cs CS) {
			for i := 0; i < 20; i++ {
				a := mem.Addr(0x40000 + i*mem.LineSize)
				cs.Store(a, cs.Load(a)+1)
			}
		})
	})
	st := e.Stats(0)
	if st.Acquired != 1 || st.Elided != 0 {
		t.Fatalf("stats = %+v, want one real acquisition", st)
	}
	for i := 0; i < 20; i++ {
		if m.Mem.Load(mem.Addr(0x40000+i*mem.LineSize)) != 1 {
			t.Fatal("fallback lost a store")
		}
	}
}

func TestRealAcquisitionAbortsEliders(t *testing.T) {
	// A thread that cannot elide (capacity) acquires for real, which must
	// abort concurrent elided sections; everything stays atomic.
	const rounds = 50
	m, e, mu := setup(t, 2, asf.LLB8)
	m.Run(
		func(c *sim.CPU) { // big sections: always acquire
			for i := 0; i < rounds; i++ {
				e.Critical(c, mu, func(cs CS) {
					for j := 0; j < 16; j++ {
						a := mem.Addr(0x50000 + j*mem.LineSize)
						cs.Store(a, cs.Load(a)+1)
					}
				})
			}
		},
		func(c *sim.CPU) { // small sections on the same data: elide
			for i := 0; i < rounds*4; i++ {
				e.Critical(c, mu, func(cs CS) {
					cs.Store(0x50000, cs.Load(0x50000)+1)
				})
			}
		},
	)
	if got := m.Mem.Load(0x50000); got != rounds+rounds*4 {
		t.Fatalf("contended word = %d, want %d", got, rounds+rounds*4)
	}
	for j := 1; j < 16; j++ {
		if got := m.Mem.Load(mem.Addr(0x50000 + j*mem.LineSize)); got != rounds {
			t.Fatalf("line %d = %d, want %d", j, got, rounds)
		}
	}
}

func TestMutexMustBeLineAligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned mutex accepted")
		}
	}()
	NewMutex(0x10008)
}
