// Package trace performs the offline cycle-breakdown analysis of the
// paper's methodology (§5): replaying a timed trace of category switches
// and transaction lifecycle events into per-category cycle counts —
// aborted attempts' cycles land in the abort/restart bucket wholesale.
//
// The result must agree with the simulator's online accounting; the tests
// cross-validate the two, which is exactly the redundancy the paper built
// by keeping the statistics path out of the measured execution.
package trace

import (
	"fmt"

	"asfstack/internal/sim"
)

// CoreBreakdown is the analysis result for one core.
type CoreBreakdown struct {
	Core      int
	Breakdown sim.Breakdown
	Commits   uint64
	Aborts    uint64
}

// Analyze replays events into per-core breakdowns, one per entry of ends.
// start is the common time the measured phase began (all cores' clocks were
// synchronised there); ends[i] is core i's final clock. Events must come
// from Machine.TraceEvents (per-core chronological).
//
// A core with no events still ran: its whole window was spent in the
// starting category (non-instr, the state SyncClocks leaves every core in),
// so it gets a breakdown charging start..ends[i] there rather than being
// dropped from the result.
func Analyze(events []sim.TraceEvent, start uint64, ends []uint64) ([]CoreBreakdown, error) {
	perCore := make([][]sim.TraceEvent, len(ends))
	for _, e := range events {
		if e.Core < 0 || e.Core >= len(ends) {
			return nil, fmt.Errorf("trace: core %d has no end time", e.Core)
		}
		perCore[e.Core] = append(perCore[e.Core], e)
	}
	out := make([]CoreBreakdown, 0, len(ends))
	for core, evs := range perCore {
		cb, err := analyzeCore(core, evs, start, ends[core])
		if err != nil {
			return nil, err
		}
		out = append(out, cb)
	}
	return out, nil
}

func analyzeCore(core int, evs []sim.TraceEvent, start, end uint64) (CoreBreakdown, error) {
	cb := CoreBreakdown{Core: core}
	cur := sim.CatNonInstr
	lastT := start
	inTx := false
	var attempt sim.Breakdown // segments of the open attempt

	segment := func(until uint64) error {
		if until < lastT {
			return fmt.Errorf("trace: core %d time went backwards (%d -> %d)", core, lastT, until)
		}
		d := until - lastT
		if inTx {
			attempt[cur] += d
		} else {
			cb.Breakdown[cur] += d
		}
		lastT = until
		return nil
	}

	for _, e := range evs {
		if err := segment(e.Time); err != nil {
			return cb, err
		}
		switch e.Kind {
		case sim.TraceCategory:
			cur = sim.Category(e.Arg)
		case sim.TraceTxBegin:
			if inTx {
				// Nested begin inside an attempt: flatten (the
				// runtimes emit one begin per outermost attempt, so
				// this indicates a serial restart — fold the failed
				// prefix into the new attempt).
				continue
			}
			inTx = true
		case sim.TraceTxCommit:
			cb.Breakdown = cb.Breakdown.Add(attempt)
			attempt = sim.Breakdown{}
			inTx = false
			cb.Commits++
		case sim.TraceTxAbort:
			cb.Breakdown[sim.CatAbort] += attempt.Total()
			attempt = sim.Breakdown{}
			inTx = false
			cb.Aborts++
		}
	}
	if err := segment(end); err != nil {
		return cb, err
	}
	if inTx {
		// An attempt left open at the end of the measured window.
		cb.Breakdown = cb.Breakdown.Add(attempt)
	}
	return cb, nil
}

// Total sums the per-core breakdowns.
func Total(cbs []CoreBreakdown) sim.Breakdown {
	var t sim.Breakdown
	for _, cb := range cbs {
		t = t.Add(cb.Breakdown)
	}
	return t
}
