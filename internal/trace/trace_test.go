package trace_test

import (
	"testing"

	"asfstack"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/trace"
)

// runTraced executes a contended counter workload with tracing enabled and
// returns (offline breakdown, online breakdown, commits).
func runTraced(t *testing.T, rt string, threads int) (off, on sim.Breakdown, commits uint64) {
	t.Helper()
	s := asfstack.New(asfstack.Options{Cores: threads, Runtime: rt})
	base := s.AllocShared(8 * mem.LineSize)
	start := s.BeginMeasured()
	s.M.EnableTrace()
	s.M.TraceEvents() // drop anything recorded before the measured phase
	s.Parallel(threads, func(c *sim.CPU) {
		rng := c.Rand()
		for i := 0; i < 200; i++ {
			a := base + mem.Addr(rng.Intn(8)*mem.LineSize)
			s.Atomic(c, func(tx tm.Tx) {
				tx.CPU().Exec(60)
				tx.Store(a, tx.Load(a)+1)
			})
		}
	})
	ends := make([]uint64, threads)
	for i := 0; i < threads; i++ {
		ends[i] = s.M.CPU(i).Now()
		on = on.Add(s.M.CPU(i).Counters())
	}
	cbs, err := trace.Analyze(s.M.TraceEvents(), start, ends)
	if err != nil {
		t.Fatal(err)
	}
	off = trace.Total(cbs)
	for _, cb := range cbs {
		commits += cb.Commits
	}
	return off, on, commits
}

// TestOfflineMatchesOnline: the paper's offline trace analysis must agree
// with the online per-category counters — the same breakdown computed two
// independent ways.
func TestOfflineMatchesOnline(t *testing.T) {
	for _, cfg := range []struct {
		rt      string
		threads int
	}{
		{"LLB-256", 1},
		{"LLB-256", 4},
		{"LLB-8", 4},
		{"STM", 4},
	} {
		t.Run(cfg.rt, func(t *testing.T) {
			off, on, commits := runTraced(t, cfg.rt, cfg.threads)
			if commits != uint64(cfg.threads*200) {
				t.Fatalf("commits = %d", commits)
			}
			for i := 0; i < sim.NumCategories; i++ {
				if off[i] != on[i] {
					t.Errorf("%v: offline %d != online %d",
						sim.Category(i), off[i], on[i])
				}
			}
		})
	}
}

// TestAnalyzeKeepsIdleCores: a core that recorded no events still ran the
// whole window — spinning or executing uninstrumented code — so it must
// appear in the result with its full window charged to non-instr.
// Regression: Analyze used to build its result from the event stream alone
// and silently dropped idle cores, understating total cycles.
func TestAnalyzeKeepsIdleCores(t *testing.T) {
	evs := []sim.TraceEvent{
		{Core: 1, Time: 10, Kind: sim.TraceCategory, Arg: uint64(sim.CatTxApp)},
	}
	cbs, err := trace.Analyze(evs, 0, []uint64{80, 100, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(cbs) != 3 {
		t.Fatalf("got %d cores, want 3 (idle cores dropped)", len(cbs))
	}
	for i, cb := range cbs {
		if cb.Core != i {
			t.Fatalf("cbs[%d].Core = %d, want %d", i, cb.Core, i)
		}
	}
	if got := cbs[0].Breakdown[sim.CatNonInstr]; got != 80 {
		t.Errorf("idle core 0: non-instr = %d, want the full 80-cycle window", got)
	}
	if got := cbs[2].Breakdown[sim.CatNonInstr]; got != 120 {
		t.Errorf("idle core 2: non-instr = %d, want the full 120-cycle window", got)
	}
	// The active core is charged as before: [0,10) non-instr, [10,100) tx-app.
	if got := cbs[1].Breakdown[sim.CatNonInstr]; got != 10 {
		t.Errorf("core 1: non-instr = %d, want 10", got)
	}
	if got := cbs[1].Breakdown[sim.CatTxApp]; got != 90 {
		t.Errorf("core 1: tx-app = %d, want 90", got)
	}
}

// TestAnalyzeRejectsUnknownCore: an event from a core with no end time is
// still an error.
func TestAnalyzeRejectsUnknownCore(t *testing.T) {
	evs := []sim.TraceEvent{{Core: 5, Time: 10, Kind: sim.TraceTxBegin}}
	if _, err := trace.Analyze(evs, 0, []uint64{100}); err == nil {
		t.Fatal("event from core without an end time accepted")
	}
}

// TestAnalyzeRejectsBackwardsTime: malformed traces surface as errors.
func TestAnalyzeRejectsBackwardsTime(t *testing.T) {
	evs := []sim.TraceEvent{
		{Core: 0, Time: 100, Kind: sim.TraceCategory, Arg: uint64(sim.CatTxApp)},
		{Core: 0, Time: 50, Kind: sim.TraceCategory, Arg: uint64(sim.CatNonInstr)},
	}
	if _, err := trace.Analyze(evs, 0, []uint64{200}); err == nil {
		t.Fatal("backwards time accepted")
	}
}

// TestAnalyzeCountsOutcomes: synthetic trace with one commit and one abort.
func TestAnalyzeCountsOutcomes(t *testing.T) {
	evs := []sim.TraceEvent{
		{Core: 0, Time: 10, Kind: sim.TraceTxBegin},
		{Core: 0, Time: 10, Kind: sim.TraceCategory, Arg: uint64(sim.CatTxApp)},
		{Core: 0, Time: 50, Kind: sim.TraceTxAbort},
		{Core: 0, Time: 50, Kind: sim.TraceCategory, Arg: uint64(sim.CatAbort)},
		{Core: 0, Time: 60, Kind: sim.TraceCategory, Arg: uint64(sim.CatTxApp)},
		{Core: 0, Time: 60, Kind: sim.TraceTxBegin},
		{Core: 0, Time: 90, Kind: sim.TraceTxCommit},
		{Core: 0, Time: 90, Kind: sim.TraceCategory, Arg: uint64(sim.CatNonInstr)},
	}
	cbs, err := trace.Analyze(evs, 0, []uint64{100})
	if err != nil {
		t.Fatal(err)
	}
	cb := cbs[0]
	if cb.Commits != 1 || cb.Aborts != 1 {
		t.Fatalf("outcomes: %d commits, %d aborts", cb.Commits, cb.Aborts)
	}
	// [10,50) aborted attempt -> CatAbort (40), plus [50,60) back-off 10.
	if cb.Breakdown[sim.CatAbort] != 50 {
		t.Fatalf("CatAbort = %d, want 50", cb.Breakdown[sim.CatAbort])
	}
	// [60,90) committed attempt in CatTxApp.
	if cb.Breakdown[sim.CatTxApp] != 30 {
		t.Fatalf("CatTxApp = %d, want 30", cb.Breakdown[sim.CatTxApp])
	}
	// [0,10) non-instr + [90,100) non-instr.
	if cb.Breakdown[sim.CatNonInstr] != 20 {
		t.Fatalf("CatNonInstr = %d, want 20", cb.Breakdown[sim.CatNonInstr])
	}
}
