package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"asfstack/internal/sim"
	"asfstack/internal/trace"
)

// TestWriteChrome renders a synthetic two-core trace and checks the
// document structure: valid JSON, per-process metadata, category slices
// with the right durations, and instant events carrying abort reasons.
func TestWriteChrome(t *testing.T) {
	cell := trace.ChromeCell{
		Name:  "demo cell",
		Start: 1000,
		Events: []sim.TraceEvent{
			// Core 0: one category slice [1000,3200), then a commit.
			{Core: 0, Time: 1000, Kind: sim.TraceCategory, Arg: uint64(sim.CatTxApp)},
			{Core: 0, Time: 1100, Kind: sim.TraceTxBegin},
			{Core: 0, Time: 3200, Kind: sim.TraceCategory, Arg: uint64(sim.CatNonInstr)},
			{Core: 0, Time: 3200, Kind: sim.TraceTxCommit},
			// Core 1: an abort with a reason.
			{Core: 1, Time: 1500, Kind: sim.TraceTxBegin},
			{Core: 1, Time: 2500, Kind: sim.TraceTxAbort, Arg: uint64(sim.AbortCapacity)},
		},
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, []trace.ChromeCell{cell}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}

	byName := map[string][]map[string]any{}
	for _, e := range doc.TraceEvents {
		name := e["name"].(string)
		byName[name] = append(byName[name], e)
	}
	if got := byName["process_name"]; len(got) != 1 {
		t.Fatalf("process_name events = %d, want 1", len(got))
	}
	if got := len(byName["thread_name"]); got != 2 {
		t.Fatalf("thread_name events = %d, want 2 (one per core)", got)
	}
	slices := byName[sim.CatTxApp.String()]
	if len(slices) != 1 {
		t.Fatalf("tx-app slices = %d, want 1", len(slices))
	}
	// [1000,3200) at 2200 cycles/µs: ts=0, dur=1µs.
	if ts := slices[0]["ts"].(float64); ts != 0 {
		t.Errorf("slice ts = %v, want 0 (relative to cell start)", ts)
	}
	if dur := slices[0]["dur"].(float64); dur != 1 {
		t.Errorf("slice dur = %v µs, want 1", dur)
	}
	aborts := byName["tx-abort"]
	if len(aborts) != 1 {
		t.Fatalf("tx-abort events = %d, want 1", len(aborts))
	}
	args := aborts[0]["args"].(map[string]any)
	if args["reason"] != sim.AbortCapacity.String() {
		t.Errorf("abort reason = %v, want %q", args["reason"], sim.AbortCapacity.String())
	}
	if len(byName["tx-begin"]) != 2 || len(byName["tx-commit"]) != 1 {
		t.Errorf("lifecycle events: begin=%d commit=%d, want 2/1",
			len(byName["tx-begin"]), len(byName["tx-commit"]))
	}
}
