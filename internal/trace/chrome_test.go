package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/trace"
	"asfstack/internal/txprof"
)

// TestWriteChrome renders a synthetic two-core trace and checks the
// document structure: valid JSON, per-process metadata, category slices
// with the right durations, and instant events carrying abort reasons.
func TestWriteChrome(t *testing.T) {
	cell := trace.ChromeCell{
		Name:  "demo cell",
		Start: 1000,
		Events: []sim.TraceEvent{
			// Core 0: one category slice [1000,3200), then a commit.
			{Core: 0, Time: 1000, Kind: sim.TraceCategory, Arg: uint64(sim.CatTxApp)},
			{Core: 0, Time: 1100, Kind: sim.TraceTxBegin},
			{Core: 0, Time: 3200, Kind: sim.TraceCategory, Arg: uint64(sim.CatNonInstr)},
			{Core: 0, Time: 3200, Kind: sim.TraceTxCommit},
			// Core 1: an abort with a reason.
			{Core: 1, Time: 1500, Kind: sim.TraceTxBegin},
			{Core: 1, Time: 2500, Kind: sim.TraceTxAbort, Arg: uint64(sim.AbortCapacity)},
		},
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, []trace.ChromeCell{cell}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}

	byName := map[string][]map[string]any{}
	for _, e := range doc.TraceEvents {
		name := e["name"].(string)
		byName[name] = append(byName[name], e)
	}
	if got := byName["process_name"]; len(got) != 1 {
		t.Fatalf("process_name events = %d, want 1", len(got))
	}
	if got := len(byName["thread_name"]); got != 2 {
		t.Fatalf("thread_name events = %d, want 2 (one per core)", got)
	}
	slices := byName[sim.CatTxApp.String()]
	if len(slices) != 1 {
		t.Fatalf("tx-app slices = %d, want 1", len(slices))
	}
	// [1000,3200) at 2200 cycles/µs: ts=0, dur=1µs.
	if ts := slices[0]["ts"].(float64); ts != 0 {
		t.Errorf("slice ts = %v, want 0 (relative to cell start)", ts)
	}
	if dur := slices[0]["dur"].(float64); dur != 1 {
		t.Errorf("slice dur = %v µs, want 1", dur)
	}
	aborts := byName["tx-abort"]
	if len(aborts) != 1 {
		t.Fatalf("tx-abort events = %d, want 1", len(aborts))
	}
	args := aborts[0]["args"].(map[string]any)
	if args["reason"] != sim.AbortCapacity.String() {
		t.Errorf("abort reason = %v, want %q", args["reason"], sim.AbortCapacity.String())
	}
	if len(byName["tx-begin"]) != 2 || len(byName["tx-commit"]) != 1 {
		t.Errorf("lifecycle events: begin=%d commit=%d, want 2/1",
			len(byName["tx-begin"]), len(byName["tx-commit"]))
	}
}

// TestWriteChromeLifecycleInstants covers the runtime-path and cohort
// lifecycle kinds: fallback transitions carry the entered path, seal and
// turbo points carry the cohort order.
func TestWriteChromeLifecycleInstants(t *testing.T) {
	cell := trace.ChromeCell{
		Name:  "lifecycle cell",
		Start: 1000,
		Events: []sim.TraceEvent{
			{Core: 0, Time: 1100, Kind: sim.TraceTxBegin},
			{Core: 0, Time: 1400, Kind: sim.TraceTxFallback, Arg: uint64(tm.PathSerial)},
			{Core: 1, Time: 1200, Kind: sim.TraceCohortSeal, Arg: 0},
			{Core: 1, Time: 1300, Kind: sim.TraceTurbo, Arg: 3},
		},
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, []trace.ChromeCell{cell}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string][]map[string]any{}
	for _, e := range doc.TraceEvents {
		byName[e["name"].(string)] = append(byName[e["name"].(string)], e)
	}
	fb := byName["tx-fallback"]
	if len(fb) != 1 {
		t.Fatalf("tx-fallback events = %d, want 1", len(fb))
	}
	if args := fb[0]["args"].(map[string]any); args["path"] != tm.PathSerial.String() {
		t.Errorf("fallback path = %v, want %q", args["path"], tm.PathSerial.String())
	}
	seal := byName["cohort-seal"]
	if len(seal) != 1 || seal[0]["args"].(map[string]any)["order"] != float64(0) {
		t.Fatalf("cohort-seal events = %+v, want one with order 0", seal)
	}
	turbo := byName["turbo"]
	if len(turbo) != 1 || turbo[0]["args"].(map[string]any)["order"] != float64(3) {
		t.Fatalf("turbo events = %+v, want one with order 3", turbo)
	}
	for _, e := range append(seal, turbo...) {
		if e["cat"] != "cohort" {
			t.Errorf("%s category = %v, want \"cohort\"", e["name"], e["cat"])
		}
	}
}

// TestWriteChromeProfiles: flight-recorder snapshots render as txprof
// instants, timestamped relative to the earliest surviving event, with the
// abort payload (cause, causality edge, wasted cycles) in args.
func TestWriteChromeProfiles(t *testing.T) {
	rec := txprof.NewRecorder(2, 8)
	rec.Record(0, tm.TxEvent{Time: 2200, Kind: tm.TxEvBegin, Path: tm.PathHW,
		Aborter: sim.NoCore, Addr: sim.NoAddr})
	rec.Record(0, tm.TxEvent{Time: 4400, Kind: tm.TxEvAbort, Path: tm.PathHW,
		Cause: sim.AbortContention, Aborter: 1, Addr: 0x1040,
		Reads: 2, Writes: 1, Cycles: 2200})
	rec.Record(1, tm.TxEvent{Time: 6600, Kind: tm.TxEvCommit, Path: tm.PathSW,
		Aborter: sim.NoCore, Addr: sim.NoAddr, Reads: 4, Writes: 2, Cycles: 1100})
	var buf bytes.Buffer
	err := trace.WriteChromeProfiles(&buf, []trace.ProfileCell{
		{Name: "profiled cell", Profile: rec.Profile()},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string][]map[string]any{}
	for _, e := range doc.TraceEvents {
		byName[e["name"].(string)] = append(byName[e["name"].(string)], e)
	}
	if len(byName["thread_name"]) != 2 {
		t.Fatalf("thread_name events = %d, want 2", len(byName["thread_name"]))
	}
	begins := byName["txprof-begin"]
	if len(begins) != 1 {
		t.Fatalf("txprof-begin events = %d, want 1", len(begins))
	}
	// Earliest surviving event (2200) is the origin: begin at 0µs.
	if ts := begins[0]["ts"].(float64); ts != 0 {
		t.Errorf("begin ts = %v, want 0", ts)
	}
	aborts := byName["txprof-abort"]
	if len(aborts) != 1 {
		t.Fatalf("txprof-abort events = %d, want 1", len(aborts))
	}
	// 4400 cycles after origin at 2200 cycles/µs = 1µs.
	if ts := aborts[0]["ts"].(float64); ts != 1 {
		t.Errorf("abort ts = %v µs, want 1", ts)
	}
	args := aborts[0]["args"].(map[string]any)
	if args["cause"] != sim.AbortContention.String() || args["by"] != float64(1) ||
		args["addr"] != "0x1040" || args["wasted_cycles"] != float64(2200) {
		t.Errorf("abort args = %+v", args)
	}
	commits := byName["txprof-commit"]
	if len(commits) != 1 {
		t.Fatalf("txprof-commit events = %d, want 1", len(commits))
	}
	cargs := commits[0]["args"].(map[string]any)
	if cargs["path"] != "sw" || cargs["reads"] != float64(4) || cargs["cycles"] != float64(1100) {
		t.Errorf("commit args = %+v", cargs)
	}
}
