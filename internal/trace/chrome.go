package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/txprof"
)

// Chrome trace_event export: the simulator's category and transaction
// lifecycle events rendered as a Chrome/Perfetto-loadable JSON document
// (chrome://tracing, https://ui.perfetto.dev). Each cell becomes one
// process, each simulated core one thread; category dwell becomes complete
// ("X") slices and transaction lifecycle points become instant ("i")
// events. Timestamps are microseconds at the simulated 2.2 GHz clock,
// relative to each cell's measured-phase start.

// ChromeCell is one cell's trace: its label and the events of its measured
// phase (from sim.Machine.TraceEvents), with the phase's start cycle.
type ChromeCell struct {
	Name   string
	Events []sim.TraceEvent
	Start  uint64
}

// chromeEvent is one trace_event entry. Chrome's JSON array format.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

const cyclesPerMicro = 2200.0 // simulated 2.2 GHz clock

// WriteChrome renders cells as one Chrome trace_event JSON document.
func WriteChrome(w io.Writer, cells []ChromeCell) error {
	var out []chromeEvent
	for pid, cell := range cells {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": cell.Name},
		})
		out = append(out, cellEvents(pid, cell)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayUnit: "ms"})
}

func cellEvents(pid int, cell ChromeCell) []chromeEvent {
	ts := func(cycles uint64) float64 {
		if cycles < cell.Start {
			return 0
		}
		return float64(cycles-cell.Start) / cyclesPerMicro
	}
	var out []chromeEvent
	// Events arrive per-core chronological (cores concatenated); track
	// each core's open category slice independently.
	type openSlice struct {
		cat   sim.Category
		since uint64
		known bool
	}
	open := map[int]*openSlice{}
	closeSlice := func(core int, until uint64) {
		o := open[core]
		if o == nil || !o.known {
			return
		}
		if until > o.since {
			out = append(out, chromeEvent{
				Name: o.cat.String(), Ph: "X", Pid: pid, Tid: core,
				Ts: ts(o.since), Dur: float64(until-o.since) / cyclesPerMicro,
				Cat: "category",
			})
		}
		o.known = false
	}
	lastSeen := map[int]uint64{}
	for _, e := range cell.Events {
		if e.Time >= cell.Start {
			lastSeen[e.Core] = e.Time
		}
		switch e.Kind {
		case sim.TraceCategory:
			closeSlice(e.Core, e.Time)
			open[e.Core] = &openSlice{cat: sim.Category(e.Arg), since: e.Time, known: true}
		case sim.TraceTxBegin:
			out = append(out, chromeEvent{
				Name: "tx-begin", Ph: "i", Pid: pid, Tid: e.Core,
				Ts: ts(e.Time), Cat: "tx", S: "t",
			})
		case sim.TraceTxCommit:
			out = append(out, chromeEvent{
				Name: "tx-commit", Ph: "i", Pid: pid, Tid: e.Core,
				Ts: ts(e.Time), Cat: "tx", S: "t",
			})
		case sim.TraceTxAbort:
			out = append(out, chromeEvent{
				Name: "tx-abort", Ph: "i", Pid: pid, Tid: e.Core,
				Ts: ts(e.Time), Cat: "tx", S: "t",
				Args: map[string]any{"reason": sim.AbortReason(e.Arg).String()},
			})
		case sim.TraceTxFallback:
			out = append(out, chromeEvent{
				Name: "tx-fallback", Ph: "i", Pid: pid, Tid: e.Core,
				Ts: ts(e.Time), Cat: "tx", S: "t",
				Args: map[string]any{"path": tm.TxPath(e.Arg).String()},
			})
		case sim.TraceCohortSeal:
			out = append(out, chromeEvent{
				Name: "cohort-seal", Ph: "i", Pid: pid, Tid: e.Core,
				Ts: ts(e.Time), Cat: "cohort", S: "t",
				Args: map[string]any{"order": e.Arg},
			})
		case sim.TraceTurbo:
			out = append(out, chromeEvent{
				Name: "turbo", Ph: "i", Pid: pid, Tid: e.Core,
				Ts: ts(e.Time), Cat: "cohort", S: "t",
				Args: map[string]any{"order": e.Arg},
			})
		}
	}
	// Close open slices and emit thread names, in core order so the
	// document is deterministic.
	for core := 0; core < 64; core++ {
		last, seen := lastSeen[core]
		if seen {
			closeSlice(core, last)
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: core,
				Args: map[string]any{"name": fmt.Sprintf("core %d", core)},
			})
		}
	}
	return out
}

// ProfileCell is one cell's flight-recorder profile for Chrome export: its
// label and the txprof snapshot cmd/tmprof read from a BenchReport.
type ProfileCell struct {
	Name    string
	Profile *txprof.Profile
}

// WriteChromeProfiles renders flight-recorder profiles as a Chrome
// trace_event document: each cell one process, each core one thread, every
// surviving TxEvent an instant ("i") carrying the record's full payload
// (path, cause, causality edge, set sizes, attempt cycles). Timestamps are
// microseconds at the simulated clock relative to each cell's earliest
// surviving event, so cells overlay at origin zero.
func WriteChromeProfiles(w io.Writer, cells []ProfileCell) error {
	var out []chromeEvent
	for pid, cell := range cells {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": cell.Name},
		})
		start := ^uint64(0)
		for _, cl := range cell.Profile.Cores {
			if len(cl.Events) > 0 && cl.Events[0].Time < start {
				start = cl.Events[0].Time
			}
		}
		for _, cl := range cell.Profile.Cores {
			if len(cl.Events) == 0 {
				continue
			}
			for _, ev := range cl.Events {
				args := map[string]any{"path": ev.Path.String()}
				switch ev.Kind {
				case tm.TxEvAbort:
					cause := ev.Cause.String()
					if ev.STM {
						cause = "stm"
					}
					args["cause"] = cause
					if ev.Aborter != sim.NoCore {
						args["by"] = ev.Aborter
					}
					if ev.Addr != sim.NoAddr {
						args["addr"] = ev.Addr.String()
					}
					args["reads"], args["writes"] = ev.Reads, ev.Writes
					args["wasted_cycles"] = ev.Cycles
				case tm.TxEvCommit:
					args["reads"], args["writes"] = ev.Reads, ev.Writes
					args["cycles"] = ev.Cycles
				}
				out = append(out, chromeEvent{
					Name: "txprof-" + ev.Kind.String(), Ph: "i", Pid: pid, Tid: cl.Core,
					Ts: float64(ev.Time-start) / cyclesPerMicro, Cat: "txprof", S: "t",
					Args: args,
				})
			}
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: cl.Core,
				Args: map[string]any{"name": fmt.Sprintf("core %d", cl.Core)},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayUnit: "ms"})
}
