package asf

// Conformance tests for the corner cases the ASF specification pins down
// (§2.2) beyond the main semantics covered in asf_test.go.

import (
	"testing"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

func TestNestingDepthLimit(t *testing.T) {
	m, s := testSystem(t, 1, LLB256)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		var dive func(d int)
		overflowed := false
		dive = func(d int) {
			reason, _ := u.Region(func() {
				if d < MaxNesting+2 {
					dive(d + 1)
				}
			})
			if d == 0 && reason == sim.AbortNesting {
				overflowed = true
			}
		}
		dive(0)
		if !overflowed {
			t.Error("nesting past the 256 limit did not abort")
		}
		// The unit must be usable again afterwards.
		reason, _ := u.Region(func() { u.Store(0x100, 1) })
		if reason != sim.AbortNone {
			t.Errorf("region after nesting abort failed: %v", reason)
		}
	})
}

func TestReleaseOfUnprotectedLineIsHarmless(t *testing.T) {
	// RELEASE is strictly a hint; releasing something never protected
	// must not fault or disturb the region.
	m, s := testSystem(t, 1, LLB8)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ := u.Region(func() {
			u.Load(0x200)
			u.Release(0x9999999 & ^mem.Addr(7))
			u.Store(0x200, 1)
		})
		if reason != sim.AbortNone {
			t.Errorf("reason = %v", reason)
		}
	})
	if m.Mem.Load(0x200) != 1 {
		t.Fatal("store lost")
	}
}

func TestReleasedLineNoLongerConflicts(t *testing.T) {
	// After RELEASE, a remote store to the line must not abort us.
	m, s := testSystem(t, 2, LLB256)
	var reason sim.AbortReason
	m.Run(
		func(c *sim.CPU) {
			u := s.Unit(0)
			reason, _ = u.Region(func() {
				u.Load(0x300)
				u.Release(0x300)
				c.Cycles(100_000)
				u.Load(0x340) // different line; deliver any pending abort
			})
		},
		func(c *sim.CPU) {
			c.Cycles(10_000)
			c.Store(0x300, 7)
		},
	)
	if reason != sim.AbortNone {
		t.Fatalf("released line still conflicted: %v", reason)
	}
	if m.Mem.Load(0x300) != 7 {
		t.Fatal("remote store lost")
	}
}

func TestBackToBackRegionsReuseUnit(t *testing.T) {
	m, s := testSystem(t, 1, LLB8)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		for i := 0; i < 50; i++ {
			reason, _ := u.Region(func() {
				a := mem.Addr(0x400 + (i%4)*mem.LineSize)
				u.Store(a, u.Load(a)+1)
			})
			if reason != sim.AbortNone {
				t.Fatalf("iteration %d: %v", i, reason)
			}
		}
	})
	var sum mem.Word
	for i := 0; i < 4; i++ {
		sum += m.Mem.Load(mem.Addr(0x400 + i*mem.LineSize))
	}
	if sum != 50 {
		t.Fatalf("sum = %d, want 50", sum)
	}
}

func TestAbortReasonReportedLikeSpeculateStatus(t *testing.T) {
	// The revised ASF reports errors via SPECULATE's status rather than
	// exceptions (§3.4): Region surfaces (reason, code) to software.
	m, s := testSystem(t, 1, LLB8)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		for _, want := range []struct {
			reason sim.AbortReason
			code   uint64
		}{
			{sim.AbortExplicit, 7},
			{sim.AbortCapacity, 0},
		} {
			reason, code := u.Region(func() {
				switch want.reason {
				case sim.AbortExplicit:
					u.Abort(7)
				default:
					for i := 0; i < 16; i++ {
						u.Store(mem.Addr(0x1000+i*mem.LineSize), 1)
					}
				}
			})
			if reason != want.reason || code != want.code {
				t.Errorf("got (%v,%d), want (%v,%d)", reason, code, want.reason, want.code)
			}
		}
	})
}

func TestStrongIsolationAgainstPlainRMW(t *testing.T) {
	// Atomic RMWs (CMPXCHG) by non-transactional code must conflict with
	// speculative readers of the line, like any store.
	m, s := testSystem(t, 2, LLB256)
	var reason sim.AbortReason
	m.Run(
		func(c *sim.CPU) {
			u := s.Unit(0)
			reason, _ = u.Region(func() {
				u.Load(0x500)
				c.Cycles(100_000)
				u.Load(0x500)
			})
		},
		func(c *sim.CPU) {
			c.Cycles(10_000)
			c.CAS(0x500, 0, 9)
		},
	)
	if reason != sim.AbortContention {
		t.Fatalf("CAS did not conflict: %v", reason)
	}
	if m.Mem.Load(0x500) != 9 {
		t.Fatal("CAS lost")
	}
}

func TestSpeculativeValuesVisibleToOwnPlainLoads(t *testing.T) {
	// Within a region, plain loads of a speculatively written line see
	// the speculative value (the core reads its own store queue/cache).
	m, s := testSystem(t, 1, LLB256)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ := u.Region(func() {
			u.Store(0x600, 42)
			if got := c.Load(0x608); got != 0 {
				t.Errorf("other word on line = %d", got)
			}
			if got := c.Load(0x600); got != 42 {
				t.Errorf("own plain load of spec store = %d, want 42", got)
			}
			u.Abort(1)
		})
		if reason != sim.AbortExplicit {
			t.Errorf("reason = %v", reason)
		}
	})
	if m.Mem.Load(0x600) != 0 {
		t.Fatal("speculative value survived abort")
	}
}

func TestRegionStatsCount(t *testing.T) {
	m, s := testSystem(t, 1, LLB8)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		for i := 0; i < 5; i++ {
			u.Region(func() { u.Store(0x700, 1) })
		}
		u.Region(func() { u.Abort(1) })
	})
	st := s.Unit(0).Stats()
	if st.Starts != 6 || st.Commits != 5 || st.Aborts[sim.AbortExplicit] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	s.Unit(0).ResetStats()
	if st := s.Unit(0).Stats(); st.Starts != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestAbortAllHelper(t *testing.T) {
	m, s := testSystem(t, 2, LLB256)
	var reason sim.AbortReason
	m.Run(
		func(c *sim.CPU) {
			u := s.Unit(0)
			reason, _ = u.Region(func() {
				u.Load(0x800)
				c.Cycles(100_000)
				u.Load(0x800)
			})
		},
		func(c *sim.CPU) {
			c.Cycles(10_000)
			c.SpecOp(0, func() { s.abortAll(1) })
		},
	)
	if reason != sim.AbortContention {
		t.Fatalf("abortAll did not abort: %v", reason)
	}
}
