package asf

import (
	"fmt"

	"asfstack/internal/mem"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
)

// System is the machine-wide ASF facility: one speculative Unit per core
// plus the conflict-detection state that, on real hardware, piggybacks on
// the cache-coherence protocol. It installs itself into the simulator's
// access and eviction hooks; from then on every memory access from every
// core is checked against all protected lines (strong isolation).
type System struct {
	m       *sim.Machine
	variant Variant
	units   []*Unit

	// prot maps a line address to its protection state — the model of
	// what coherence probes would discover. Entries are created on first
	// protection and kept forever (bounded by the workload's footprint):
	// a quiescent entry (no readers, no writer) answers every probe
	// exactly like an absent one, and the stable *protState pointers let
	// the units and the pcache below skip the map on the hot paths.
	prot map[mem.Addr]*protState

	// pcache is a direct-mapped line→protState cache in front of prot,
	// the same idiom as mem's page cache. Because prot entries are never
	// deleted, cached pointers cannot dangle; a collision only costs a
	// map lookup.
	pcache [pcacheSlots]pcacheEnt

	// Socket topology (from the machine config): an abort probe that has
	// to cross a socket boundary to reach its victim pays xsockLat extra
	// cycles, like the cache's directory hops. coresPer is 0 on
	// single-socket machines, disabling the charge entirely.
	coresPer int
	xsockLat uint64

	met sysMetrics
}

const pcacheSlots = 2048 // power of two

type pcacheEnt struct {
	line mem.Addr
	p    *protState // nil marks an empty slot
}

// sysMetrics holds the facility's registered metric handles. All handles
// are zero-value inert until SetMetrics installs a registry, so the hot
// paths record unconditionally.
type sysMetrics struct {
	starts  metrics.Counter
	commits metrics.Counter
	aborts  [sim.NumAbortReasons]metrics.Counter

	// Read/write-set sizes (in lines) observed at commit and at abort —
	// the paper's capacity-attribution evidence (§5, Figs. 6/7).
	readCommit  metrics.Histogram
	writeCommit metrics.Histogram
	readAbort   metrics.Histogram
	writeAbort  metrics.Histogram

	// llbHigh is the high-water mark of LLB entries in use.
	llbHigh metrics.Gauge

	// xsockProbes counts conflict-abort probes that crossed a socket
	// boundary (multi-socket topologies only).
	xsockProbes metrics.Counter
}

// SetMetrics registers the facility's instruments with reg. Must be called
// before the first speculative region (stack construction does this).
func (s *System) SetMetrics(reg *metrics.Registry) {
	s.met.starts = reg.Counter("asf/starts")
	s.met.commits = reg.Counter("asf/commits")
	for r := 1; r < sim.NumAbortReasons; r++ { // skip AbortNone
		s.met.aborts[r] = reg.Counter("asf/aborts/" + sim.AbortReason(r).String())
	}
	sizes := metrics.PowersOfTwo(10) // 1..512 lines, +overflow
	s.met.readCommit = reg.Histogram("asf/readset_lines/commit", sizes)
	s.met.writeCommit = reg.Histogram("asf/writeset_lines/commit", sizes)
	s.met.readAbort = reg.Histogram("asf/readset_lines/abort", sizes)
	s.met.writeAbort = reg.Histogram("asf/writeset_lines/abort", sizes)
	s.met.llbHigh = reg.Gauge("asf/llb_highwater")
	s.met.xsockProbes = reg.Counter("asf/xsock_probes")
}

type protState struct {
	readers uint64 // cores monitoring the line (read or write set; 64-core cap)
	writer  int8   // core holding it speculatively modified, or -1
}

// Install builds the ASF system for machine m with the given implementation
// variant and hooks it into the simulator. Each core's Unit is registered
// as its speculative unit.
func Install(m *sim.Machine, v Variant) *System {
	s := &System{
		m:       m,
		variant: v,
		prot:    make(map[mem.Addr]*protState),
	}
	if tp := m.Config().Topology; tp.Sockets > 1 {
		s.coresPer = tp.CoresPerSocket
		s.xsockLat = m.Config().Cache.XSockLat
	}
	for i := 0; i < m.Config().Cores; i++ {
		u := newUnit(s, m.CPU(i))
		s.units = append(s.units, u)
		m.CPU(i).SetSpecUnit(u)
		m.CPU(i).SetReplayTracker(u)
	}
	m.SetAccessHook(s.onAccess)
	m.Hier.SetEvictHook(s.onEvict)
	return s
}

// Variant returns the installed implementation configuration.
func (s *System) Variant() Variant { return s.variant }

// Unit returns core i's speculative unit.
func (s *System) Unit(i int) *Unit { return s.units[i] }

// protFor returns line's directory entry, materialising it on first use.
func (s *System) protFor(line mem.Addr) *protState {
	e := &s.pcache[int(line>>mem.LineShift)&(pcacheSlots-1)]
	if e.p != nil && e.line == line {
		return e.p
	}
	p, ok := s.prot[line]
	if !ok {
		p = &protState{writer: -1}
		s.prot[line] = p
	}
	e.line, e.p = line, p
	return p
}

// protLookup is protFor without materialisation: nil means the line has
// never been protected, which every caller treats like a quiescent entry.
func (s *System) protLookup(line mem.Addr) *protState {
	e := &s.pcache[int(line>>mem.LineShift)&(pcacheSlots-1)]
	if e.p != nil && e.line == line {
		return e.p
	}
	p, ok := s.prot[line]
	if !ok {
		return nil
	}
	e.line, e.p = line, p
	return p
}

// chargeProbe adds the cross-socket latency of one conflict-abort probe
// when requester and victim sit on different sockets. This path is only
// reachable from full-path accesses: the epoch engine's replay windows
// require L1 residency (dirty, for stores), which a foreign speculative
// protection of the same line would have destroyed — so charging here
// cannot diverge the engines.
func (s *System) chargeProbe(c *sim.CPU, self, victim int) {
	if s.coresPer == 0 || self/s.coresPer == victim/s.coresPer {
		return
	}
	c.Cycles(s.xsockLat)
	s.met.xsockProbes.Inc(self)
}

// onAccess is the simulator access hook: it implements conflict detection
// (requester-wins), selective annotation, the colocation rules, and
// read/write-set tracking. It runs on the accessing core's goroutine with
// the global turn held.
func (s *System) onAccess(c *sim.CPU, addr mem.Addr, f sim.Flags) {
	line := addr.Line()
	self := c.ID()
	u := s.units[self]
	write := f&sim.FWrite != 0
	locked := f&sim.FLocked != 0

	if f&sim.FPre != 0 {
		// Probe phase, before the cache model moves any line: resolve
		// conflicts (requester wins) so victims roll back — and their
		// speculative marks flash-clear — before this access's fills
		// and invalidations can displace the marks (which would
		// misreport contention as capacity).
		if p := s.protLookup(line); p != nil {
			if w := int(p.writer); w >= 0 && w != self {
				s.chargeProbe(c, self, w)
				s.units[w].asyncAbortFrom(sim.AbortContention, self, line)
			}
			if write {
				rd := p.readers &^ (1 << uint(self))
				for o := 0; rd != 0; o, rd = o+1, rd>>1 {
					if rd&1 != 0 {
						s.chargeProbe(c, self, o)
						s.units[o].asyncAbortFrom(sim.AbortContention, self, line)
					}
				}
			}
		}
		return
	}

	if !u.active {
		if locked {
			if c.AbortPending() {
				// The region was rolled back mid-operation (e.g.
				// its own refill displaced a speculative-read
				// line); the abort is delivered at the next
				// operation and this access's effects are moot.
				return
			}
			// LOCK MOV / WATCH outside a speculative region is a
			// disallowed-instruction fault in the specification.
			panic(fmt.Sprintf("asf: core %d: speculative access at %v outside a region", self, addr))
		}
		return
	}

	// The region is active on this core (tracking phase).
	p := s.protLookup(line)
	switch {
	case locked && write:
		u.trackWrite(line)
	case locked:
		u.trackRead(line)
	case write:
		// Plain store inside a region. If this region speculatively
		// modified the line, that is the colocation error ASF raises an
		// exception for. If the line is only in the read set, ASF
		// hoists the store into the transactional set.
		if p != nil && int(p.writer) == self {
			c.RaiseAbort(sim.AbortDisallowed, 0)
		}
		if p != nil && p.readers&(1<<uint(self)) != 0 {
			u.trackWrite(line) // hoisting
		}
	default:
		// Plain load: never tracked; reads current (possibly
		// speculative) data. Nothing to do.
	}
}

// onEvict is the cache eviction hook. Losing an L1 line that carries the
// speculative-read mark means the hybrid implementation can no longer
// monitor it: the owning region must abort (a capacity condition — this is
// the displacement pathology §5 analyses).
func (s *System) onEvict(core int, line mem.Addr, specRead bool) {
	if !specRead || !s.variant.L1ReadSet {
		return
	}
	u := s.units[core]
	if u.active {
		u.asyncAbortFrom(sim.AbortCapacity, sim.NoCore, line)
	}
}

// abortAll aborts every active region except the one on core except
// (pass -1 to abort all). Used by the serial-irrevocable fallback test
// helpers and by lock-elision style code.
func (s *System) abortAll(except int) {
	for i, u := range s.units {
		if i != except && u.active {
			u.asyncAbort(sim.AbortContention)
		}
	}
}

// ProtectedLines returns how many lines are currently protected machine-
// wide (diagnostics and tests). Quiescent directory entries — kept for
// pointer stability — do not count.
func (s *System) ProtectedLines() int {
	n := 0
	for _, p := range s.prot {
		if p.readers != 0 || p.writer >= 0 {
			n++
		}
	}
	return n
}

// Monitors reports how many cores other than c currently protect a's line
// in an active speculative region — the set of regions a conflicting plain
// write from c would abort. The probe takes the global simulation turn (at
// zero cycle cost): on hardware this information is what the write's
// coherence probes would discover, so reading it separately is a modelling
// convenience, not extra traffic.
func (s *System) Monitors(c *sim.CPU, a mem.Addr) int {
	n := 0
	c.SpecOp(0, func() {
		if p := s.protLookup(a.Line()); p != nil {
			rd := p.readers &^ (1 << uint(c.ID()))
			for ; rd != 0; rd >>= 1 {
				n += int(rd & 1)
			}
		}
	})
	return n
}
