package asf

// Randomised model check: arbitrary single-core programs of speculative
// regions (loads, stores, watches, releases, plain accesses, commit or
// explicit abort) must leave memory exactly as a trivial reference model
// predicts — committed regions apply their speculative stores, aborted
// ones apply none, and plain stores always apply. This pins the rollback
// machinery against a specification independent of the implementation.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

const modelLines = 16

// modelOp is one decoded operation inside a region.
type modelOp struct {
	kind byte // 0 spec store, 1 spec load, 2 plain store, 3 release, 4 watchR
	line int
	val  mem.Word
}

// decodeProgram turns raw fuzz bytes into a list of regions; each region
// is (ops, commit?).
func decodeProgram(raw []byte) (regions [][]modelOp, commits []bool) {
	for len(raw) >= 2 {
		n := int(raw[0]%5) + 1
		commit := raw[1]%2 == 0
		raw = raw[2:]
		var ops []modelOp
		for i := 0; i < n && len(raw) >= 3; i++ {
			ops = append(ops, modelOp{
				kind: raw[0] % 5,
				line: int(raw[1]) % modelLines,
				val:  mem.Word(raw[2]) + 1,
			})
			raw = raw[3:]
		}
		regions = append(regions, ops)
		commits = append(commits, commit)
	}
	return regions, commits
}

func lineAddr(i int) mem.Addr { return mem.Addr(0x8000 + i*mem.LineSize) }

// runModel computes the expected final memory.
func runModel(regions [][]modelOp, commits []bool) [modelLines]mem.Word {
	var state [modelLines]mem.Word
	for r, ops := range regions {
		written := map[int]mem.Word{}
		for _, op := range ops {
			switch op.kind {
			case 0: // speculative store: applies only on commit
				written[op.line] = op.val
			case 2:
				// Plain store (selective annotation): applies
				// immediately and survives aborts. The generator
				// only emits these for lines the region has not
				// touched speculatively (colocation and hoisting
				// have their own directed tests), so no further
				// interaction exists.
				state[op.line] = op.val
			}
		}
		if commits[r] {
			for l, v := range written {
				state[l] = v
			}
		}
	}
	return state
}

// TestRegionModelProperty executes the same program on the simulator (all
// four evaluated variants can differ only via capacity, so the big-LLB
// variant is used) and compares final memory with the model.
func TestRegionModelProperty(t *testing.T) {
	prop := func(raw []byte) bool {
		if len(raw) > 240 {
			raw = raw[:240]
		}
		regions, commits := decodeProgram(raw)

		// Sanitise: drop plain stores to lines the region writes
		// speculatively (colocation exception) so the model stays
		// trivial; plain stores to spec-READ lines are hoisted, which
		// the model must mirror (applied only on commit).
		for r := range regions {
			specWrite := map[int]bool{}
			specRead := map[int]bool{}
			for i, op := range regions[r] {
				switch op.kind {
				case 0:
					specWrite[op.line] = true
				case 1, 4:
					specRead[op.line] = true
				case 2:
					if specWrite[op.line] || specRead[op.line] {
						regions[r][i].kind = 1 // degrade to a load
					}
				}
			}
		}

		cfg := sim.Barcelona(1)
		cfg.TimerInterval = 0 // no transient aborts: model is exact
		m := sim.New(cfg)
		m.Mem.Prefault(0, 1<<20)
		s := Install(m, LLB256)

		m.Run(func(c *sim.CPU) {
			u := s.Unit(0)
			for r, ops := range regions {
				reason, _ := u.Region(func() {
					for _, op := range ops {
						switch op.kind {
						case 0:
							u.Store(lineAddr(op.line), op.val)
						case 1:
							u.Load(lineAddr(op.line))
						case 2:
							c.Store(lineAddr(op.line), op.val)
						case 3:
							u.Release(lineAddr(op.line))
						case 4:
							u.WatchR(lineAddr(op.line))
						}
					}
					if !commits[r] {
						u.Abort(1)
					}
				})
				if commits[r] && reason != sim.AbortNone {
					t.Logf("region %d aborted unexpectedly: %v", r, reason)
				}
			}
		})

		want := runModel(regions, commits)
		for i := 0; i < modelLines; i++ {
			if got := m.Mem.Load(lineAddr(i)); got != want[i] {
				t.Logf("line %d = %d, model says %d", i, got, want[i])
				return false
			}
		}
		if s.ProtectedLines() != 0 {
			t.Log("protection leaked")
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Error(err)
	}
}
