// Package asf implements AMD's Advanced Synchronization Facility (ASF) —
// the experimental AMD64 architecture extension the paper evaluates — on the
// simulated machine of package sim.
//
// ASF adds seven instructions for speculative code regions: SPECULATE,
// COMMIT, ABORT, LOCK MOV (speculative load/store), WATCHR, WATCHW, and
// RELEASE. This package models their architectural semantics:
//
//   - cache-line-granularity protection with a requester-wins contention
//     policy piggybacked on the coherence protocol: an incompatible access
//     always aborts the region that already holds the line;
//   - strong isolation: conflicts with plain (non-transactional) accesses
//     from other cores also abort, and aborts are instantaneous — no
//     speculative side effect ever becomes visible;
//   - selective annotation: plain and LOCK-prefixed accesses coexist inside
//     a region; plain accesses are not protected (and not rolled back),
//     which keeps thread-local data out of the hardware's capacity;
//   - flat dynamic nesting up to depth 256;
//   - abort on exceptions, interrupts and system calls — but not on TLB
//     misses;
//   - eventual forward progress for regions of at most 4 lines (the
//     architectural minimum capacity), on LLB-based implementations;
//   - the colocation rule: an unprotected store to a line this region has
//     speculatively modified raises an exception, while unprotected
//     accesses to read-set lines are hoisted into the protected set.
//
// Two hardware implementation variants from §2.3 are provided, in the four
// configurations of the evaluation: a pure locked-line-buffer design (the
// LLB tracks and versions both sets) and the hybrid design (L1 cache tracks
// the read set via speculative-read bits — with the capacity and
// displacement artifacts the paper measures — while the LLB tracks and
// versions the write set).
package asf

import "fmt"

// Variant selects an ASF hardware implementation configuration.
type Variant struct {
	// Name is the label used in the paper's figures.
	Name string
	// LLBEntries is the locked-line buffer capacity in cache lines. In
	// the pure-LLB design this bounds read set + write set together; in
	// the hybrid design it bounds only the write set.
	LLBEntries int
	// L1ReadSet selects the hybrid design: the read set is tracked by
	// speculative-read bits in the (2-way set associative) L1, subject to
	// displacement by associativity conflicts and plain refills.
	L1ReadSet bool
	// CacheBased selects the pure cache-based design of §2.3: both sets
	// live in L1 speculative bits and no LLB exists. Capacity is the L1
	// way count per index; any displacement of a marked line aborts.
	// (The paper describes but does not evaluate this variant; it is
	// provided for ablation.)
	CacheBased bool
	// ASF1 reproduces the earlier ASF revision discussed in §6: the
	// protected set cannot grow once the region has speculatively
	// written (the "atomic phase"). Protecting a new line afterwards
	// raises a disallowed-operation abort. For ablation against ASF2's
	// dynamic expansion.
	ASF1 bool
}

func (v Variant) String() string { return v.Name }

// The four configurations evaluated in the paper (§5).
var (
	LLB8     = Variant{Name: "LLB-8", LLBEntries: 8}
	LLB256   = Variant{Name: "LLB-256", LLBEntries: 256}
	LLB8L1   = Variant{Name: "LLB-8 w/ L1", LLBEntries: 8, L1ReadSet: true}
	LLB256L1 = Variant{Name: "LLB-256 w/ L1", LLBEntries: 256, L1ReadSet: true}
)

// Ablation configurations described by the paper but not part of its main
// evaluation.
var (
	// CacheOnly is §2.3's first implementation variant: read and write
	// sets both tracked by L1 speculative bits, no locked-line buffer.
	CacheOnly = Variant{Name: "Cache-based", L1ReadSet: true, CacheBased: true}
	// ASF1LLB256 is the §6 predecessor revision on an LLB-256: the
	// protected set is frozen at the first speculative store.
	ASF1LLB256 = Variant{Name: "ASF1 LLB-256", LLBEntries: 256, ASF1: true}
)

// Variants lists the four evaluated configurations in figure order.
var Variants = []Variant{LLB8, LLB256, LLB8L1, LLB256L1}

// AllVariants additionally includes the ablation configurations.
var AllVariants = append(append([]Variant{}, Variants...), CacheOnly, ASF1LLB256)

// VariantByName resolves a figure label (e.g. "LLB-256 w/ L1").
func VariantByName(name string) (Variant, error) {
	for _, v := range AllVariants {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("asf: unknown variant %q", name)
}

// Architectural constants from the ASF specification proposal (rev 2.1).
const (
	// MinCapacityLines is the architectural minimum: eventual forward
	// progress is ensured (absent contention and exceptions) for regions
	// protecting at most this many 64-byte lines.
	MinCapacityLines = 4

	// MaxNesting is the maximum dynamic (flat) nesting depth.
	MaxNesting = 256
)

// Instruction cycle costs for a feasible implementation, used by the
// simulator's timing model. SPECULATE/COMMIT serialise parts of the
// pipeline; ABORT additionally restores LLB backups (per-line cost charged
// separately).
const (
	SpeculateCost    = 10
	CommitCost       = 14
	AbortBaseCost    = 30
	AbortPerLine     = 4 // write-back of one LLB backup line
	WatchCost        = 0 // charged as the underlying probe access
	ReleaseCost      = 2
	NestedSpecCost   = 2 // nested SPECULATE just bumps the depth counter
	NestedCommitCost = 2
)
