package asf

import (
	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

// Stats counts speculative-region outcomes on one core.
type Stats struct {
	Starts  uint64
	Commits uint64
	Aborts  [sim.NumAbortReasons]uint64
}

// TotalAborts sums aborts across reasons.
func (s *Stats) TotalAborts() uint64 {
	var t uint64
	for _, v := range s.Aborts {
		t += v
	}
	return t
}

// llbEntry is one locked-line-buffer slot: the address of a protected line
// (with its directory entry, cached so region end never touches the
// directory map) and, when the line has been speculatively modified, the
// backup copy that is written back on abort.
type llbEntry struct {
	line    mem.Addr
	p       *protState
	written bool
	backup  [mem.WordsPerLine]mem.Word
}

// Unit is one core's ASF facility: the locked-line buffer, the (variant-
// dependent) read-set tracking, and the speculative-region state machine.
//
// All Unit state is only ever touched while the global simulation turn is
// held — by the owning core inside its operations, or by another core
// aborting this one from inside its own operation (requester wins).
type Unit struct {
	sys *System
	c   *sim.CPU

	active bool
	depth  int

	llb        []llbEntry
	writeCount int                     // written lines (llb or cache)
	readSet    map[mem.Addr]*protState // hybrid/cache variants: read lines marked in L1
	// cacheWrites holds backups for the pure cache-based variant, whose
	// write set lives in L1 speculative bits instead of an LLB.
	cacheWrites map[mem.Addr]*[mem.WordsPerLine]mem.Word

	lastAbortCost uint64 // hardware rollback cost, charged at recovery
	stats         Stats

	// Last-region observability, read by the TM runtime after Region
	// returns (flight recorder): the read/write-set sizes when the region
	// ended, and — for aborts — the causality edge (aborter core and
	// conflicting line, sim.NoCore/sim.NoAddr when unknown).
	lastRead  uint64
	lastWrite uint64
	lastBy    int
	lastAddr  mem.Addr
}

func newUnit(s *System, c *sim.CPU) *Unit {
	return &Unit{
		sys:         s,
		c:           c,
		llb:         make([]llbEntry, 0, s.variant.LLBEntries),
		readSet:     make(map[mem.Addr]*protState),
		cacheWrites: make(map[mem.Addr]*[mem.WordsPerLine]mem.Word),
		lastBy:      sim.NoCore,
		lastAddr:    sim.NoAddr,
	}
}

// Active reports whether a speculative region is in flight (sim.SpecUnit).
func (u *Unit) Active() bool { return u.active }

// Stats returns the outcome counters.
func (u *Unit) Stats() Stats { return u.stats }

// ResetStats zeroes the outcome counters (start of a measured phase).
func (u *Unit) ResetStats() { u.stats = Stats{} }

// CPU returns the core this unit belongs to.
func (u *Unit) CPU() *sim.CPU { return u.c }

// LastSetSizes returns the read/write-set sizes (in lines) of the region
// that most recently ended — committed or rolled back — on this unit.
func (u *Unit) LastSetSizes() (read, write uint64) { return u.lastRead, u.lastWrite }

// LastAbortEdge returns the causality edge of the most recent abort: the
// core whose access killed the region (sim.NoCore when self-inflicted or
// unknown) and the conflicting or displaced cache line (sim.NoAddr when
// unknown).
func (u *Unit) LastAbortEdge() (by int, addr mem.Addr) { return u.lastBy, u.lastAddr }

// --- region lifecycle ----------------------------------------------------

// Region executes body as an ASF speculative region: SPECULATE, body,
// COMMIT. It returns sim.AbortNone if the region committed, or the abort
// reason (plus the software code for explicit aborts). The caller — the TM
// runtime's begin function — decides whether to retry, back off, or fall
// back to software, exactly like the abort handler branching on rAX after
// SPECULATE.
//
// Nested calls compose by flattening (§2.2): an inner Region neither
// commits nor aborts independently; an abort anywhere rolls back the
// outermost region.
func (u *Unit) Region(body func()) (reason sim.AbortReason, code uint64) {
	nested := false
	u.c.SpecOp(SpeculateCost, func() {
		if u.active {
			if u.depth >= MaxNesting {
				u.c.RaiseAbort(sim.AbortNesting, 0)
			}
			u.depth++
			nested = true
			return
		}
		u.active = true
		u.depth = 1
		u.stats.Starts++
		u.sys.met.starts.Inc(u.c.ID())
	})

	if nested {
		body()
		u.c.SpecOp(NestedCommitCost, func() { u.depth-- })
		return sim.AbortNone, 0
	}

	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			ae, ok := r.(*sim.AbortError)
			if !ok || ae.Core != u.c.ID() {
				panic(r) // not ours: a real bug, keep unwinding
			}
			reason, code = ae.Reason, ae.Code
			u.lastBy, u.lastAddr = ae.By, ae.Addr
			// Synchronous aborts (capacity, explicit, colocation,
			// page fault) arrive here with the region still active;
			// asynchronous ones (contention, interrupt) were already
			// rolled back by the aborter. rollback is idempotent.
			u.rollback(reason)
			u.c.Cycles(u.lastAbortCost)
		}()
		body()
		u.commit()
	}()
	return reason, code
}

// Abort executes the ABORT instruction with a software code, discarding the
// region's speculative state and transferring control to the abort handler
// (i.e., Region returns sim.AbortExplicit with the code).
func (u *Unit) Abort(code uint64) {
	u.c.SpecOp(0, func() {
		if !u.active {
			panic("asf: ABORT outside a speculative region")
		}
		u.c.RaiseAbort(sim.AbortExplicit, code)
	})
}

func (u *Unit) commit() {
	u.c.SpecOp(CommitCost, func() {
		if !u.active {
			panic("asf: COMMIT outside a speculative region")
		}
		for i := range u.llb {
			u.releaseProt(u.llb[i].p)
		}
		for _, p := range u.readSet {
			u.releaseProt(p)
		}
		for line := range u.cacheWrites {
			u.clearProt(line)
		}
		if u.sys.variant.L1ReadSet {
			u.sys.m.Hier.FlashClearSpecRead(u.c.ID())
		}
		read, write := u.setSizes()
		u.lastRead, u.lastWrite = read, write
		u.sys.met.readCommit.Observe(u.c.ID(), read)
		u.sys.met.writeCommit.Observe(u.c.ID(), write)
		u.reset()
		u.stats.Commits++
		u.sys.met.commits.Inc(u.c.ID())
	})
}

// rollback restores memory and releases protection. Idempotent: no-op if
// the region was already rolled back asynchronously.
func (u *Unit) rollback(reason sim.AbortReason) {
	if !u.active {
		return
	}
	u.doRollback(reason)
}

// asyncAbort rolls the region back immediately and posts the abort for
// delivery at the core's next operation. Runs on the *aborting* core's
// goroutine (or this core's own OS-event path) with the turn held.
func (u *Unit) asyncAbort(reason sim.AbortReason) {
	u.asyncAbortFrom(reason, sim.NoCore, sim.NoAddr)
}

// asyncAbortFrom is asyncAbort carrying the causality edge: the aborting
// core and the conflicting (or displaced) line, delivered to the victim
// through its pending-abort state for the flight recorder.
func (u *Unit) asyncAbortFrom(reason sim.AbortReason, by int, line mem.Addr) {
	if !u.active {
		return
	}
	u.doRollback(reason)
	u.c.PostAbortFrom(reason, by, line)
}

// AsyncAbort implements sim.SpecUnit for OS events (interrupts, faults,
// system calls).
func (u *Unit) AsyncAbort(reason sim.AbortReason) { u.asyncAbort(reason) }

func (u *Unit) doRollback(reason sim.AbortReason) {
	hier := u.sys.m.Hier
	memory := u.sys.m.Mem
	for i := range u.llb {
		e := &u.llb[i]
		if e.written {
			// Write the backup copy back before any probe is
			// answered; drop the (now stale) cached copy.
			memory.StoreLine(e.line, &e.backup)
			hier.Drop(u.c.ID(), e.line)
		}
		u.releaseProt(e.p)
	}
	for _, p := range u.readSet {
		u.releaseProt(p)
	}
	for line, backup := range u.cacheWrites {
		memory.StoreLine(line, backup)
		hier.Drop(u.c.ID(), line)
		u.clearProt(line)
	}
	if u.sys.variant.L1ReadSet {
		hier.FlashClearSpecRead(u.c.ID())
	}
	u.lastAbortCost = AbortBaseCost + AbortPerLine*uint64(u.writeCount)
	read, write := u.setSizes()
	u.lastRead, u.lastWrite = read, write
	u.sys.met.readAbort.Observe(u.c.ID(), read)
	u.sys.met.writeAbort.Observe(u.c.ID(), write)
	u.reset()
	u.stats.Aborts[reason]++
	u.sys.met.aborts[reason].Inc(u.c.ID())
}

// setSizes reports the region's current read- and write-set sizes in lines.
// In the pure cache-based variant the write set lives outside the LLB; in
// every LLB variant written lines are LLB entries.
func (u *Unit) setSizes() (read, write uint64) {
	write = uint64(u.writeCount)
	if u.sys.variant.CacheBased {
		return uint64(len(u.readSet)), write
	}
	return uint64(len(u.llb)-u.writeCount) + uint64(len(u.readSet)), write
}

func (u *Unit) reset() {
	u.llb = u.llb[:0]
	u.writeCount = 0
	clear(u.readSet)
	clear(u.cacheWrites)
	u.active = false
	u.depth = 0
}

// releaseProt drops this core's marks from a directory entry. The entry
// itself stays in the directory (see System.prot); a quiescent entry is
// indistinguishable from an absent one to every probe.
func (u *Unit) releaseProt(p *protState) {
	p.readers &^= 1 << uint(u.c.ID())
	if int(p.writer) == u.c.ID() {
		p.writer = -1
	}
}

func (u *Unit) clearProt(line mem.Addr) {
	if p := u.sys.protLookup(line); p != nil {
		u.releaseProt(p)
	}
}

// --- protected accesses ---------------------------------------------------

// Load performs a LOCK MOV load: addr's line joins the read set.
func (u *Unit) Load(a mem.Addr) mem.Word { return u.c.LoadLocked(a) }

// Store performs a LOCK MOV store: addr's line joins the write set.
func (u *Unit) Store(a mem.Addr, v mem.Word) { u.c.StoreLocked(a, v) }

// WatchR starts monitoring addr's line for remote stores without reading
// data into the program.
func (u *Unit) WatchR(a mem.Addr) { u.c.Watch(a, false) }

// WatchW protects addr's line for writing (monitors loads and stores)
// without storing data.
func (u *Unit) WatchW(a mem.Addr) { u.c.Watch(a, true) }

// Release stops monitoring a read-only line (a strict hint: it cannot
// cancel a speculative store). This is the early-release mechanism the
// hand-over-hand list traversal in §5 exploits.
func (u *Unit) Release(a mem.Addr) {
	u.c.SpecOp(ReleaseCost, func() {
		if !u.active {
			return
		}
		line := a.Line()
		for i := range u.llb {
			e := &u.llb[i]
			if e.line == line {
				if e.written {
					return // cannot release a written line
				}
				p := e.p
				u.llb[i] = u.llb[len(u.llb)-1]
				u.llb = u.llb[:len(u.llb)-1]
				u.releaseProt(p)
				return
			}
		}
		if _, written := u.cacheWrites[line]; written {
			return // cannot release a written line
		}
		if p, ok := u.readSet[line]; ok {
			delete(u.readSet, line)
			u.sys.m.Hier.SetSpecRead(u.c.ID(), line, false)
			u.releaseProt(p)
		}
	})
}

// --- epoch-engine tracking replay (sim.ReplayTracker) ---------------------
//
// The epoch engine replays repeat accesses of L1-resident lines without the
// full access path. When such a replay crosses into a newer speculative
// region, the only hook effect the full path would have is the tracking
// phase — the conflict probe is a no-op by the L1-residency argument (see
// sim.ReplayTracker) — so the engine calls straight into the same tracking
// functions the access hook uses. Aborts they raise (capacity, ASF1
// frozen-set) are identical to the full path's by construction.

// TrackableLoad implements sim.ReplayTracker.
func (u *Unit) TrackableLoad() bool { return u.active }

// TrackableStore implements sim.ReplayTracker.
func (u *Unit) TrackableStore() bool { return u.active }

// Idle implements sim.ReplayTracker.
func (u *Unit) Idle() bool { return !u.active }

// TrackLoad implements sim.ReplayTracker.
func (u *Unit) TrackLoad(line mem.Addr) { u.trackRead(line) }

// TrackStore implements sim.ReplayTracker.
func (u *Unit) TrackStore(line mem.Addr) { u.trackWrite(line) }

// --- tracking (called from the access hook, turn held) --------------------

func (u *Unit) trackRead(line mem.Addr) {
	p := u.sys.protFor(line)
	bit := uint64(1) << uint(u.c.ID())
	if p.readers&bit != 0 || int(p.writer) == u.c.ID() {
		return // already protected by this region
	}
	if u.sys.variant.ASF1 && u.writeCount > 0 {
		// ASF1 (§6): the protected set is frozen once the atomic phase
		// (first speculative store) has begun.
		u.c.RaiseAbort(sim.AbortDisallowed, 0)
	}
	if u.sys.variant.L1ReadSet {
		if !u.sys.m.Hier.SetSpecRead(u.c.ID(), line, true) {
			u.c.RaiseAbortAt(sim.AbortCapacity, 0, line)
		}
		u.readSet[line] = p
	} else {
		if len(u.llb) == cap(u.llb) {
			u.c.RaiseAbortAt(sim.AbortCapacity, 0, line)
		}
		u.llb = append(u.llb, llbEntry{line: line, p: p})
		u.sys.met.llbHigh.High(u.c.ID(), uint64(len(u.llb)))
	}
	p.readers |= bit
}

func (u *Unit) trackWrite(line mem.Addr) {
	p := u.sys.protFor(line)
	bit := uint64(1) << uint(u.c.ID())
	if int(p.writer) == u.c.ID() {
		return // already in the write set
	}
	if u.sys.variant.ASF1 && u.writeCount > 0 && p.readers&bit == 0 {
		// ASF1: no new protected lines after the atomic phase starts.
		u.c.RaiseAbort(sim.AbortDisallowed, 0)
	}
	if u.sys.variant.CacheBased {
		u.trackWriteCache(line, p, bit)
		return
	}
	// Upgrade an existing read entry, or allocate a new one.
	var e *llbEntry
	for i := range u.llb {
		if u.llb[i].line == line {
			e = &u.llb[i]
			break
		}
	}
	if e == nil {
		if u.writeCount >= u.sys.variant.LLBEntries ||
			(!u.sys.variant.L1ReadSet && len(u.llb) == cap(u.llb)) {
			u.c.RaiseAbortAt(sim.AbortCapacity, 0, line)
		}
		u.llb = append(u.llb, llbEntry{line: line, p: p})
		u.sys.met.llbHigh.High(u.c.ID(), uint64(len(u.llb)))
		e = &u.llb[len(u.llb)-1]
	}
	if !e.written {
		e.written = true
		u.writeCount++
		u.sys.m.Mem.LoadLine(line, &e.backup)
	}
	if u.sys.variant.L1ReadSet {
		// The LLB monitors the line now; the L1 mark is redundant.
		if _, ok := u.readSet[line]; ok {
			delete(u.readSet, line)
			u.sys.m.Hier.SetSpecRead(u.c.ID(), line, false)
		}
	}
	p.readers |= bit
	p.writer = int8(u.c.ID())
}

// trackWriteCache implements the pure cache-based variant's write path:
// the line's speculative mark lives in L1 (so displacement aborts), and
// the pre-transaction data is backed up for rollback — the write-back to a
// backup location §2.3 describes for dirty lines.
func (u *Unit) trackWriteCache(line mem.Addr, p *protState, bit uint64) {
	if !u.sys.m.Hier.SetSpecRead(u.c.ID(), line, true) {
		u.c.RaiseAbortAt(sim.AbortCapacity, 0, line)
	}
	var backup [mem.WordsPerLine]mem.Word
	u.sys.m.Mem.LoadLine(line, &backup)
	u.cacheWrites[line] = &backup
	u.writeCount++
	delete(u.readSet, line) // now tracked as a write
	p.readers |= bit
	p.writer = int8(u.c.ID())
}
