package asf

import (
	"testing"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

func testSystem(t *testing.T, cores int, v Variant) (*sim.Machine, *System) {
	t.Helper()
	cfg := sim.Barcelona(cores)
	m := sim.New(cfg)
	m.Mem.Prefault(0, 1<<21)
	return m, Install(m, v)
}

func TestRegionCommitsStores(t *testing.T) {
	for _, v := range Variants {
		t.Run(v.Name, func(t *testing.T) {
			m, s := testSystem(t, 1, v)
			m.Run(func(c *sim.CPU) {
				u := s.Unit(0)
				reason, _ := u.Region(func() {
					u.Store(0x100, 7)
					u.Store(0x140, 8)
				})
				if reason != sim.AbortNone {
					t.Errorf("region aborted: %v", reason)
				}
			})
			if got := m.Mem.Load(0x100); got != 7 {
				t.Errorf("mem[0x100] = %d, want 7", got)
			}
			if st := s.Unit(0).Stats(); st.Commits != 1 {
				t.Errorf("commits = %d, want 1", st.Commits)
			}
			if s.ProtectedLines() != 0 {
				t.Errorf("%d lines still protected after commit", s.ProtectedLines())
			}
		})
	}
}

func TestExplicitAbortRollsBack(t *testing.T) {
	for _, v := range Variants {
		t.Run(v.Name, func(t *testing.T) {
			m, s := testSystem(t, 1, v)
			m.Run(func(c *sim.CPU) {
				c.Store(0x200, 1)
				u := s.Unit(0)
				reason, code := u.Region(func() {
					u.Store(0x200, 99)
					u.Abort(0xDEAD)
				})
				if reason != sim.AbortExplicit || code != 0xDEAD {
					t.Errorf("reason=%v code=%#x, want explicit/0xDEAD", reason, code)
				}
			})
			if got := m.Mem.Load(0x200); got != 1 {
				t.Errorf("mem[0x200] = %d after abort, want 1 (rolled back)", got)
			}
			if s.ProtectedLines() != 0 {
				t.Errorf("%d lines still protected after abort", s.ProtectedLines())
			}
		})
	}
}

func TestRequesterWinsPlainReadAbortsWriter(t *testing.T) {
	m, s := testSystem(t, 2, LLB256)
	const addr = 0x300
	var seen mem.Word
	var reason sim.AbortReason
	m.Run(
		func(c *sim.CPU) { // core 0: long speculative region writing addr
			u := s.Unit(0)
			r, _ := u.Region(func() {
				u.Store(addr, 42)
				c.Cycles(100_000) // stay inside while core 1 intrudes
				u.Load(addr)      // next op delivers the abort
			})
			reason = r
		},
		func(c *sim.CPU) { // core 1: plain read, strong isolation
			c.Cycles(10_000)
			seen = c.Load(addr)
		},
	)
	if reason != sim.AbortContention {
		t.Fatalf("writer aborted with %v, want contention", reason)
	}
	if seen != 0 {
		t.Fatalf("plain reader saw speculative value %d, want 0", seen)
	}
	if got := m.Mem.Load(addr); got != 0 {
		t.Fatalf("mem = %d after rollback, want 0", got)
	}
}

func TestRequesterWinsWriteAbortsReaders(t *testing.T) {
	m, s := testSystem(t, 3, LLB256)
	const addr = 0x400
	reasons := make([]sim.AbortReason, 3)
	m.Run(
		func(c *sim.CPU) {
			u := s.Unit(0)
			reasons[0], _ = u.Region(func() {
				u.Load(addr)
				c.Cycles(100_000)
				u.Load(addr)
			})
		},
		func(c *sim.CPU) {
			u := s.Unit(1)
			reasons[1], _ = u.Region(func() {
				u.Load(addr)
				c.Cycles(100_000)
				u.Load(addr)
			})
		},
		func(c *sim.CPU) { // plain writer arrives in the middle
			c.Cycles(10_000)
			c.Store(addr, 5)
		},
	)
	if reasons[0] != sim.AbortContention || reasons[1] != sim.AbortContention {
		t.Fatalf("reader abort reasons = %v, want both contention", reasons[:2])
	}
}

func TestTwoReadersDoNotConflict(t *testing.T) {
	m, s := testSystem(t, 2, LLB256)
	const addr = 0x500
	reasons := make([]sim.AbortReason, 2)
	body := func(id int) func(*sim.CPU) {
		return func(c *sim.CPU) {
			u := s.Unit(id)
			reasons[id], _ = u.Region(func() {
				u.Load(addr)
				c.Cycles(50_000)
				u.Load(addr)
			})
		}
	}
	m.Run(body(0), body(1))
	if reasons[0] != sim.AbortNone || reasons[1] != sim.AbortNone {
		t.Fatalf("read sharing aborted: %v", reasons)
	}
}

func TestCapacityAbortLLB8(t *testing.T) {
	m, s := testSystem(t, 1, LLB8)
	var reason sim.AbortReason
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ = u.Region(func() {
			for i := 0; i < 9; i++ { // 9 lines > 8 entries
				u.Store(mem.Addr(0x1000+i*mem.LineSize), 1)
			}
		})
	})
	if reason != sim.AbortCapacity {
		t.Fatalf("reason = %v, want capacity", reason)
	}
	// All speculative stores must be rolled back.
	for i := 0; i < 9; i++ {
		if v := m.Mem.Load(mem.Addr(0x1000 + i*mem.LineSize)); v != 0 {
			t.Fatalf("line %d leaked speculative value %d", i, v)
		}
	}
}

func TestArchitecturalMinimumCapacity(t *testing.T) {
	// Eventual forward progress: a solo region protecting 4 lines must
	// commit (possibly after transient aborts, e.g. timer interrupts)
	// on the pure-LLB implementations.
	for _, v := range []Variant{LLB8, LLB256} {
		t.Run(v.Name, func(t *testing.T) {
			m, s := testSystem(t, 1, v)
			committed := false
			m.Run(func(c *sim.CPU) {
				u := s.Unit(0)
				for try := 0; try < 10 && !committed; try++ {
					reason, _ := u.Region(func() {
						for i := 0; i < MinCapacityLines; i++ {
							u.Store(mem.Addr(0x2000+i*mem.LineSize), 1)
						}
					})
					if reason == sim.AbortNone {
						committed = true
					} else if reason == sim.AbortCapacity {
						t.Fatalf("capacity abort within architectural minimum")
					}
				}
			})
			if !committed {
				t.Fatal("region never committed")
			}
		})
	}
}

func TestReleaseFreesLLBEntries(t *testing.T) {
	// Hand-over-hand traversal: with early release, an LLB-8 region can
	// walk arbitrarily many lines keeping only a window protected.
	m, s := testSystem(t, 1, LLB8)
	var reason sim.AbortReason
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ = u.Region(func() {
			var prev mem.Addr
			for i := 0; i < 64; i++ {
				a := mem.Addr(0x4000 + i*mem.LineSize)
				u.Load(a)
				if prev != 0 {
					u.Release(prev)
				}
				prev = a
			}
		})
	})
	if reason != sim.AbortNone {
		t.Fatalf("reason = %v, want commit", reason)
	}
}

func TestReleaseCannotCancelStore(t *testing.T) {
	m, s := testSystem(t, 1, LLB8)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ := u.Region(func() {
			u.Store(0x600, 3)
			u.Release(0x600) // strict hint: must be ignored for writes
			u.Store(0x640, 4)
		})
		if reason != sim.AbortNone {
			t.Fatalf("reason = %v", reason)
		}
	})
	if got := m.Mem.Load(0x600); got != 3 {
		t.Fatalf("released written line lost its store: %d", got)
	}
}

func TestFlatNesting(t *testing.T) {
	m, s := testSystem(t, 1, LLB256)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ := u.Region(func() {
			u.Store(0x700, 1)
			inner, _ := u.Region(func() {
				u.Store(0x740, 2)
			})
			if inner != sim.AbortNone {
				t.Errorf("inner region reported %v", inner)
			}
			// Inner protections must persist until the outermost commit.
			if s.ProtectedLines() != 2 {
				t.Errorf("protected lines = %d inside outer, want 2", s.ProtectedLines())
			}
		})
		if reason != sim.AbortNone {
			t.Errorf("outer region aborted: %v", reason)
		}
	})
	if m.Mem.Load(0x700) != 1 || m.Mem.Load(0x740) != 2 {
		t.Fatal("nested stores not committed")
	}
}

func TestNestedAbortUnwindsWholeRegion(t *testing.T) {
	m, s := testSystem(t, 1, LLB256)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, code := u.Region(func() {
			u.Store(0x800, 1)
			u.Region(func() {
				u.Store(0x840, 2)
				u.Abort(5)
			})
			t.Error("outer body continued past nested abort")
		})
		if reason != sim.AbortExplicit || code != 5 {
			t.Errorf("reason=%v code=%d", reason, code)
		}
	})
	if m.Mem.Load(0x800) != 0 || m.Mem.Load(0x840) != 0 {
		t.Fatal("nested abort did not roll back the whole region")
	}
}

func TestColocationExceptionOnPlainStoreToSpecLine(t *testing.T) {
	m, s := testSystem(t, 1, LLB256)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ := u.Region(func() {
			u.Store(0x900, 1)
			c.Store(0x908, 2) // plain store, same line: exception
		})
		if reason != sim.AbortDisallowed {
			t.Errorf("reason = %v, want disallowed", reason)
		}
	})
	if m.Mem.Load(0x900) != 0 {
		t.Fatal("speculative store survived the exception")
	}
}

func TestPlainWriteToReadLineIsHoisted(t *testing.T) {
	// ASF hoists colocated unprotected accesses to read-set lines into
	// the transactional data set, so the plain store rolls back too.
	m, s := testSystem(t, 1, LLB256)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ := u.Region(func() {
			u.Load(0xA00)
			c.Store(0xA08, 7) // hoisted into the write set
			u.Abort(1)
		})
		if reason != sim.AbortExplicit {
			t.Errorf("reason = %v", reason)
		}
	})
	if got := m.Mem.Load(0xA08); got != 0 {
		t.Fatalf("hoisted store leaked: %d", got)
	}
}

func TestSelectiveAnnotationPlainStoresSurviveAbort(t *testing.T) {
	// Plain accesses to *other* lines are nontransactional: they are not
	// rolled back (that is the point of selective annotation).
	m, s := testSystem(t, 1, LLB256)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		u.Region(func() {
			c.Store(0xB00, 9) // thread-local by convention
			u.Store(0xC00, 1)
			u.Abort(1)
		})
	})
	if got := m.Mem.Load(0xB00); got != 9 {
		t.Fatalf("plain store rolled back: %d, want 9", got)
	}
	if got := m.Mem.Load(0xC00); got != 0 {
		t.Fatalf("speculative store survived: %d, want 0", got)
	}
}

func TestPageFaultAbortsRegion(t *testing.T) {
	cfg := sim.Barcelona(1)
	m := sim.New(cfg) // nothing prefaulted
	s := Install(m, LLB256)
	m.Mem.Prefault(0, 1<<16)
	var reasons []sim.AbortReason
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		for try := 0; try < 3; try++ {
			r, _ := u.Region(func() {
				u.Store(0x100000, 1) // cold page
			})
			reasons = append(reasons, r)
			if r == sim.AbortNone {
				break
			}
		}
	})
	if len(reasons) < 2 || reasons[0] != sim.AbortPageFault || reasons[1] != sim.AbortNone {
		t.Fatalf("reasons = %v, want [page-fault none]", reasons)
	}
}

func TestSyscallAbortsRegion(t *testing.T) {
	m, s := testSystem(t, 1, LLB256)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ := u.Region(func() {
			u.Store(0xD00, 1)
			c.Syscall(1000)
		})
		if reason != sim.AbortSyscall {
			t.Errorf("reason = %v, want syscall", reason)
		}
	})
	if m.Mem.Load(0xD00) != 0 {
		t.Fatal("store survived syscall abort")
	}
}

func TestTimerInterruptAbortsRegion(t *testing.T) {
	cfg := sim.Barcelona(1)
	cfg.TimerInterval = 5_000
	m := sim.New(cfg)
	m.Mem.Prefault(0, 1<<20)
	s := Install(m, LLB256)
	var reason sim.AbortReason
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ = u.Region(func() {
			u.Store(0xE00, 1)
			c.Cycles(20_000)
			u.Load(0xE00)
		})
	})
	if reason != sim.AbortInterrupt {
		t.Fatalf("reason = %v, want interrupt", reason)
	}
}

func TestHybridL1DisplacementCausesCapacityAbort(t *testing.T) {
	// With L1 read-set tracking (2-way associative), reading 3 lines that
	// map to the same set must displace a marked line and abort, even
	// though the LLB has plenty of room. This is the §5 pathology.
	m, s := testSystem(t, 1, LLB256L1)
	// L1: 64 KiB / 64 B / 2-way = 512 sets; stride 512*64 = 32 KiB.
	stride := 512 * mem.LineSize
	var reason sim.AbortReason
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ = u.Region(func() {
			for i := 0; i < 3; i++ {
				u.Load(mem.Addr(0x10000 + i*stride))
			}
			u.Load(0x10000) // deliver the pending capacity abort
		})
	})
	if reason != sim.AbortCapacity {
		t.Fatalf("reason = %v, want capacity (L1 displacement)", reason)
	}
	// The pure-LLB variant handles the same pattern fine.
	m2, s2 := testSystem(t, 1, LLB256)
	m2.Run(func(c *sim.CPU) {
		u := s2.Unit(0)
		r, _ := u.Region(func() {
			for i := 0; i < 3; i++ {
				u.Load(mem.Addr(0x10000 + i*stride))
			}
		})
		if r != sim.AbortNone {
			t.Errorf("LLB-256 aborted with %v on the same pattern", r)
		}
	})
}

func TestWatchRMonitorsWithoutData(t *testing.T) {
	m, s := testSystem(t, 2, LLB256)
	var reason sim.AbortReason
	m.Run(
		func(c *sim.CPU) {
			u := s.Unit(0)
			reason, _ = u.Region(func() {
				u.WatchR(0xF00)
				c.Cycles(100_000)
				u.Load(0xF40)
			})
		},
		func(c *sim.CPU) {
			c.Cycles(10_000)
			c.Store(0xF00, 1)
		},
	)
	if reason != sim.AbortContention {
		t.Fatalf("WATCHR did not detect remote store: %v", reason)
	}
}

func TestWatchWConflictsWithRemoteRead(t *testing.T) {
	m, s := testSystem(t, 2, LLB256)
	var reason sim.AbortReason
	m.Run(
		func(c *sim.CPU) {
			u := s.Unit(0)
			reason, _ = u.Region(func() {
				u.WatchW(0x1F00)
				c.Cycles(100_000)
				u.Load(0x1F40)
			})
		},
		func(c *sim.CPU) {
			c.Cycles(10_000)
			c.Load(0x1F00) // reads conflict with a speculative write
		},
	)
	if reason != sim.AbortContention {
		t.Fatalf("WATCHW did not conflict with remote load: %v", reason)
	}
}

func TestVariantByName(t *testing.T) {
	for _, v := range Variants {
		got, err := VariantByName(v.Name)
		if err != nil || got != v {
			t.Errorf("VariantByName(%q) = %v, %v", v.Name, got, err)
		}
	}
	if _, err := VariantByName("bogus"); err == nil {
		t.Error("VariantByName(bogus) succeeded")
	}
}

func TestCacheBasedVariantCommitAndRollback(t *testing.T) {
	m, s := testSystem(t, 1, CacheOnly)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ := u.Region(func() {
			u.Store(0x7000, 3)
			u.Store(0x7040, 4)
		})
		if reason != sim.AbortNone {
			t.Errorf("commit failed: %v", reason)
		}
		reason, _ = u.Region(func() {
			u.Store(0x7000, 99)
			u.Abort(1)
		})
		if reason != sim.AbortExplicit {
			t.Errorf("reason = %v", reason)
		}
	})
	if m.Mem.Load(0x7000) != 3 || m.Mem.Load(0x7040) != 4 {
		t.Fatal("cache-based rollback/commit wrong")
	}
	if s.ProtectedLines() != 0 {
		t.Fatal("protection leaked")
	}
}

func TestCacheBasedWriteSetDisplacementAborts(t *testing.T) {
	// The pure cache-based design cannot evict a speculatively written
	// line: three writes mapping to one 2-way L1 set must abort.
	m, s := testSystem(t, 1, CacheOnly)
	stride := 512 * mem.LineSize
	var reason sim.AbortReason
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		reason, _ = u.Region(func() {
			for i := 0; i < 3; i++ {
				u.Store(mem.Addr(0x20000+i*stride), 1)
			}
			u.Load(0x20000) // deliver any pending abort
		})
	})
	if reason != sim.AbortCapacity {
		t.Fatalf("reason = %v, want capacity", reason)
	}
	for i := 0; i < 3; i++ {
		if m.Mem.Load(mem.Addr(0x20000+i*stride)) != 0 {
			t.Fatal("speculative write leaked on displacement abort")
		}
	}
}

func TestASF1FreezesProtectedSetAtFirstWrite(t *testing.T) {
	m, s := testSystem(t, 1, ASF1LLB256)
	m.Run(func(c *sim.CPU) {
		u := s.Unit(0)
		// Reading after the first write is ASF2 behaviour; ASF1 aborts.
		reason, _ := u.Region(func() {
			u.Load(0x8000)
			u.Store(0x8000, 1) // upgrade of a protected line: allowed
			u.Load(0x8040)     // NEW line after the atomic phase: forbidden
		})
		if reason != sim.AbortDisallowed {
			t.Errorf("read expansion: reason = %v, want disallowed", reason)
		}
		// The ASF1-correct pattern: protect everything first, then write.
		reason, _ = u.Region(func() {
			u.Load(0x8000)
			u.Load(0x8040)
			u.Store(0x8000, 5)
			u.Store(0x8040, 6)
		})
		if reason != sim.AbortNone {
			t.Errorf("declare-then-write: reason = %v", reason)
		}
	})
	if m.Mem.Load(0x8000) != 5 || m.Mem.Load(0x8040) != 6 {
		t.Fatal("ASF1 declare-then-write lost data")
	}
}

func TestAllVariantNamesResolve(t *testing.T) {
	for _, v := range AllVariants {
		got, err := VariantByName(v.Name)
		if err != nil || got.Name != v.Name {
			t.Errorf("VariantByName(%q): %v %v", v.Name, got, err)
		}
	}
}
