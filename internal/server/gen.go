package server

import (
	"math"
	"math/rand"
)

// Request kinds, in mix order.
const (
	opReserve = iota // query items, reserve the cheapest available
	opCancel         // release all of one customer's reservations
	opUpdate         // re-price (and occasionally grow) items
)

// request is one pre-drawn client request: its absolute arrival offset
// (simulated cycles after the measured phase starts) and every random
// choice its transaction body needs, fixed at generation time so retries
// and runtimes all see the same task. The struct is a flat value — the
// steady-state queue path moves it without allocating.
type request struct {
	arrival uint64 // cycles after measured-phase start
	items   [2]uint32
	cust    uint32
	price   uint32
	kind    uint8
	nq      uint8
	grow    bool
}

// reqQueue is the per-core session queue: a fixed-capacity FIFO ring of
// requests. The generator fills it before the measured phase and the
// session thread drains it; both push and pop are allocation-free (the CI
// alloc gate pins this).
type reqQueue struct {
	buf  []request
	head int // next pop
	tail int // next push
	n    int
}

func newReqQueue(capacity int) *reqQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &reqQueue{buf: make([]request, capacity)}
}

// push appends r; reports false when the ring is full.
func (q *reqQueue) push(r request) bool {
	if q.n == len(q.buf) {
		return false
	}
	q.buf[q.tail] = r
	q.tail++
	if q.tail == len(q.buf) {
		q.tail = 0
	}
	q.n++
	return true
}

// pop removes the oldest request; ok is false when the queue is empty.
func (q *reqQueue) pop() (r request, ok bool) {
	if q.n == 0 {
		return request{}, false
	}
	r = q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return r, true
}

func (q *reqQueue) len() int { return q.n }

// Arrival process parameters. A burst draws its length from a bounded
// Pareto (heavy-ish tail, but capped so one burst cannot swallow a whole
// run) and its inter-arrivals at twice the nominal rate; the off gap after
// each burst restores the long-run mean, so offered load is exactly
// Load × (baseServiceCycles)⁻¹ requests per cycle per core while arrivals
// still clump the way open-loop clients do.
const (
	burstMin   = 1.0
	burstMax   = 32.0
	burstAlpha = 1.5
)

// boundedPareto draws from a Pareto(alpha) truncated to [lo, hi] by
// inverse-CDF.
func boundedPareto(rng *rand.Rand, lo, hi, alpha float64) float64 {
	u := rng.Float64()
	la, ha := math.Pow(lo, alpha), math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// generate pre-draws core's request stream: RequestsPerCore requests with
// absolute arrival offsets and fully-determined transaction bodies. It
// runs on the host before the measured phase — its determinism depends
// only on the config, never on engine, worker count, or execution order.
func (w *world) generate(core int) *reqQueue {
	cfg := w.cfg
	// Independent stream per core, decoupled from the simulator's own
	// per-core RNGs (which the workload bodies never touch).
	rng := rand.New(rand.NewSource(cfg.Seed*0x9E3779B9 + int64(core)*0x85EBCA77 + 1))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(w.items-1))

	q := newReqQueue(cfg.RequestsPerCore)
	mean := float64(baseServiceCycles) / cfg.Load
	var clock float64 // arrival clock, cycles
	burst := boundedPareto(rng, burstMin, burstMax, burstAlpha)
	var inBurst float64
	for i := 0; i < cfg.RequestsPerCore; i++ {
		gap := rng.ExpFloat64() * mean / 2 // on-phase: twice the nominal rate
		inBurst++
		if inBurst >= burst {
			// Off gap: what the burst saved against the nominal mean.
			gap += inBurst * mean / 2
			burst = boundedPareto(rng, burstMin, burstMax, burstAlpha)
			inBurst = 0
		}
		clock += gap
		r := request{arrival: uint64(clock)}
		mix := rng.Intn(100)
		switch {
		case mix < 60:
			r.kind = opReserve
			r.nq = 2
			r.cust = uint32(rng.Intn(w.customers))
			for j := range r.items {
				r.items[j] = uint32(zipf.Uint64())
			}
		case mix < 80:
			r.kind = opCancel
			r.cust = uint32(rng.Intn(w.customers))
		default:
			r.kind = opUpdate
			r.nq = uint8(1 + rng.Intn(2))
			r.price = uint32(100 + rng.Intn(400))
			r.grow = rng.Intn(8) == 0
			for j := 0; j < int(r.nq); j++ {
				r.items[j] = uint32(zipf.Uint64())
			}
		}
		q.push(r)
	}
	return q
}
