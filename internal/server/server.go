// Package server is the open-loop transactional server workload (E16):
// a vacation-style reservation service driven by per-core client sessions
// whose requests arrive on a pre-drawn open-loop schedule — Zipf-skewed
// keys, bursty on/off arrivals — independent of how fast the server
// commits. The measured quantity is per-request sojourn time (arrival to
// commit, simulated cycles), reported as p50/p95/p99/p999; under overload
// the queues grow and the tail shows it, which is exactly the behaviour a
// closed-loop throughput experiment (Fig. 5) structurally cannot exhibit.
package server

import (
	"fmt"

	"asfstack"
	"asfstack/internal/adaptive"
	"asfstack/internal/mem"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/topo"
	"asfstack/internal/txlib"
	"asfstack/internal/txprof"
)

// baseServiceCycles is the nominal per-request service time that defines
// Load = 1.0: one request per core every baseServiceCycles cycles. It is a
// calibration constant, not a measurement — actual service time varies by
// runtime and contention, so the true saturation point of each runtime sits
// at a different Load (that spread is what E16's overload cells probe).
const baseServiceCycles = 25_000

// waitChunk bounds one idle step of a session waiting for its next
// arrival, so pending timers and asynchronous aborts keep being delivered.
const waitChunk = 1_000

// Config describes one server run.
type Config struct {
	Runtime string
	// Threads is the core count when Topology is empty; with a Topology it
	// must be zero or equal the topology's total.
	Threads int
	// Topology is the socket layout ("2x8"); empty runs single-socket.
	Topology string
	// RequestsPerCore is each session's measured request count (default
	// 200 × Scale).
	RequestsPerCore int
	// Load is the offered load per core as a fraction of the nominal
	// service rate 1/baseServiceCycles (default 0.7). Values ≥ ~1 drive
	// the server into overload: arrivals outpace commits and sojourn time
	// grows with queue depth.
	Load float64
	// ZipfS is the key-skew exponent of the item-id distribution (> 1;
	// default 1.2 — a hot head with a long cold tail).
	ZipfS float64
	// Seed makes runs reproducible. Zero selects the default (42) unless
	// SeedSet marks it deliberate.
	Seed    int64
	SeedSet bool
	// Scale multiplies store size and default request count (1.0 when
	// zero); used by tests and CI smoke to shrink runs.
	Scale float64
	// Trace records sim trace events for the measured phase.
	Trace bool
	// Profile installs the transaction-level flight recorder.
	Profile bool
	// Engine selects the simulator execution engine (serial or epoch);
	// results are bit-identical either way.
	Engine sim.Engine
	// EpochLen overrides the epoch length for the epoch engine.
	EpochLen uint64
}

// Result carries the measurements of a run.
type Result struct {
	Config   Config
	Cycles   uint64 // simulated duration of the measured phase
	Millis   float64
	Requests uint64 // completed requests (== sessions × RequestsPerCore)

	// Sojourn-time quantiles (arrival → commit, simulated cycles),
	// interpolated from the server/sojourn_cyc histogram.
	P50, P95, P99, P999 float64
	MaxSojourn          uint64

	// XSockHops is the machine total of cross-socket directory hops (zero
	// on single-socket runs).
	XSockHops uint64

	Stats     tm.Stats
	Breakdown sim.Breakdown
	Metrics   *metrics.Snapshot
	Switches  []adaptive.Switch

	TraceEvents []sim.TraceEvent
	TraceStart  uint64
	Profile     *txprof.Profile
	EngineStats sim.EngineStats
}

// Throughput returns committed requests per simulated microsecond.
func (r Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Requests) / (float64(r.Cycles) / 2200)
}

// world is the server's shared store plus the per-core session queues.
// Layout follows STAMP's vacation: an item table (id → one-line record
// {total, avail, price}) and a customer table (id → reservation list
// head), both red-black trees.
type world struct {
	cfg       Config
	items     int
	customers int

	itemTree *txlib.RBTree
	custTree *txlib.RBTree

	queues []*reqQueue

	sojourn metrics.Histogram
}

// Item record layout (one line): word 0 total, 1 avail, 2 price.
const (
	itTotal = 0
	itAvail = 1
	itPrice = 2
)

func (w *world) setup(tx tm.Tx) {
	rng := tx.CPU().Rand()
	w.itemTree = txlib.NewRBTree(tx)
	w.custTree = txlib.NewRBTree(tx)
	for id := 0; id < w.items; id++ {
		rec := tx.AllocLines(1)
		n := mem.Word(2 + rng.Intn(6))
		tx.Store(rec+itTotal*8, n)
		tx.Store(rec+itAvail*8, n)
		tx.Store(rec+itPrice*8, mem.Word(100+rng.Intn(400)))
		w.itemTree.Insert(tx, uint64(id), mem.Word(rec))
	}
	for id := 0; id < w.customers; id++ {
		rec := tx.AllocLines(1)
		tx.Store(rec, 0) // empty reservation list
		w.custTree.Insert(tx, uint64(id), mem.Word(rec))
	}
}

// session drains core tid's queue: wait (open-loop — the schedule does not
// care how busy the server is) until each request's arrival, execute its
// transaction, record the sojourn. start is the measured phase's start
// cycle, making arrivals absolute.
func (w *world) session(s *asfstack.Stack, c *sim.CPU, start uint64) {
	q := w.queues[c.ID()]
	for {
		rq, ok := q.pop()
		if !ok {
			return
		}
		target := start + rq.arrival
		for {
			now := c.Now()
			if now >= target {
				break
			}
			gap := target - now
			if gap > waitChunk {
				gap = waitChunk
			}
			// Quiescent wait: no transaction is in flight, so runtimes
			// tracking per-core liveness (cohort sealing) may drain.
			c.IdleHint()
			c.Cycles(gap)
		}
		switch rq.kind {
		case opReserve:
			w.reserve(s, c, rq)
		case opCancel:
			w.cancel(s, c, rq)
		default:
			w.update(s, c, rq)
		}
		w.sojourn.Observe(c.ID(), c.Now()-target)
	}
}

// reserve queries the request's pre-drawn items and reserves the cheapest
// available one for the customer — one atomic block, as in vacation.
func (w *world) reserve(s *asfstack.Stack, c *sim.CPU, rq request) {
	s.Atomic(c, func(tx tm.Tx) {
		crec, ok := w.custTree.Get(tx, uint64(rq.cust))
		if !ok {
			return
		}
		bestID, bestRec, bestPrice := uint64(0), mem.Word(0), ^uint64(0)
		for _, id := range rq.items[:rq.nq] {
			rec, ok := w.itemTree.Get(tx, uint64(id))
			if !ok {
				continue
			}
			r := mem.Addr(rec)
			if tx.Load(r+itAvail*8) == 0 {
				continue
			}
			if price := uint64(tx.Load(r + itPrice*8)); price < bestPrice {
				bestID, bestRec, bestPrice = uint64(id), rec, price
			}
		}
		if bestRec == 0 {
			return
		}
		r := mem.Addr(bestRec)
		tx.Store(r+itAvail*8, tx.Load(r+itAvail*8)-1)
		// Prepend a reservation node (word 0 next, 1 item id) to the
		// customer's list.
		node := tx.Alloc(16)
		tx.Store(node+8, mem.Word(bestID))
		tx.Store(node, tx.Load(mem.Addr(crec)))
		tx.Store(mem.Addr(crec), mem.Word(node))
	})
}

// cancel releases all of the customer's reservations.
func (w *world) cancel(s *asfstack.Stack, c *sim.CPU, rq request) {
	s.Atomic(c, func(tx tm.Tx) {
		crec, ok := w.custTree.Get(tx, uint64(rq.cust))
		if !ok {
			return
		}
		head := mem.Addr(crec)
		cur := mem.Addr(tx.Load(head))
		for cur != 0 {
			id := uint64(tx.Load(cur + 8))
			if rec, ok := w.itemTree.Get(tx, id); ok {
				r := mem.Addr(rec)
				tx.Store(r+itAvail*8, tx.Load(r+itAvail*8)+1)
			}
			next := mem.Addr(tx.Load(cur))
			tx.Free(cur)
			cur = next
		}
		tx.Store(head, 0)
	})
}

// update re-prices the request's items and occasionally adds capacity.
func (w *world) update(s *asfstack.Stack, c *sim.CPU, rq request) {
	s.Atomic(c, func(tx tm.Tx) {
		for _, id := range rq.items[:rq.nq] {
			rec, ok := w.itemTree.Get(tx, uint64(id))
			if !ok {
				continue
			}
			r := mem.Addr(rec)
			tx.Store(r+itPrice*8, mem.Word(rq.price))
			if rq.grow {
				tx.Store(r+itTotal*8, tx.Load(r+itTotal*8)+1)
				tx.Store(r+itAvail*8, tx.Load(r+itAvail*8)+1)
			}
		}
	})
}

// validate checks conservation: every item's avail plus outstanding
// reservations equals its total.
func (w *world) validate(tx tm.Tx) error {
	reserved := map[uint64]uint64{}
	for id := 0; id < w.customers; id++ {
		crec, ok := w.custTree.Get(tx, uint64(id))
		if !ok {
			return fmt.Errorf("customer %d missing", id)
		}
		cur := mem.Addr(tx.Load(mem.Addr(crec)))
		for cur != 0 {
			reserved[uint64(tx.Load(cur+8))]++
			cur = mem.Addr(tx.Load(cur))
		}
	}
	for id := 0; id < w.items; id++ {
		rec, ok := w.itemTree.Get(tx, uint64(id))
		if !ok {
			return fmt.Errorf("item %d missing", id)
		}
		r := mem.Addr(rec)
		total := uint64(tx.Load(r + itTotal*8))
		avail := uint64(tx.Load(r + itAvail*8))
		if avail+reserved[uint64(id)] != total {
			return fmt.Errorf("item %d: avail %d + reserved %d != total %d",
				id, avail, reserved[uint64(id)], total)
		}
	}
	return nil
}

// Run executes one configuration to completion and validates the store.
func Run(cfg Config) (Result, error) {
	if cfg.Seed == 0 && !cfg.SeedSet {
		cfg.Seed = 42
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	if cfg.Load <= 0 {
		cfg.Load = 0.7
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.RequestsPerCore <= 0 {
		cfg.RequestsPerCore = int(200 * scale)
		if cfg.RequestsPerCore < 4 {
			cfg.RequestsPerCore = 4
		}
	}
	threads := cfg.Threads
	if cfg.Topology != "" {
		tp, err := topo.Parse(cfg.Topology)
		if err != nil {
			return Result{}, fmt.Errorf("server: %w", err)
		}
		if threads != 0 && threads != tp.Total() {
			return Result{}, fmt.Errorf("server: %d threads conflict with topology %s", threads, tp)
		}
		threads = tp.Total()
	}
	if threads <= 0 {
		threads = 1
	}
	cfg.Threads = threads

	w := &world{
		cfg:       cfg,
		items:     max(int(256*scale), 8),
		customers: max(int(128*scale), 4),
	}

	mc := sim.Barcelona(threads)
	mc.Seed = cfg.Seed
	mc.Engine = cfg.Engine
	if cfg.EpochLen != 0 {
		mc.EpochLen = cfg.EpochLen
	}
	s := asfstack.New(asfstack.Options{
		Cores:    threads,
		Runtime:  cfg.Runtime,
		Topology: cfg.Topology,
		Machine:  &mc,
		Profile:  cfg.Profile,
	})
	// Register the sojourn histogram before the registry seals (first
	// record). Bounds reach 2^27 cycles — deep overload territory — before
	// the overflow bucket.
	w.sojourn = s.Metrics.Histogram("server/sojourn_cyc", metrics.PowersOfTwo(28))

	// Pre-draw every session's schedule on the host: arrivals are fixed
	// before the server starts, the definition of open loop.
	w.queues = make([]*reqQueue, threads)
	for i := range w.queues {
		w.queues[i] = w.generate(i)
	}

	s.Setup(func(tx tm.Tx) { w.setup(tx) })

	start := s.BeginMeasured()
	if cfg.Trace {
		s.M.EnableTrace()
	}
	end := s.Parallel(threads, func(c *sim.CPU) {
		w.session(s, c, start)
	})

	res := Result{Config: cfg, Cycles: end - start}
	res.Millis = float64(res.Cycles) / 2_200_000.0
	res.Requests = uint64(threads * cfg.RequestsPerCore)
	res.Stats = s.TotalStats()
	for i := 0; i < threads; i++ {
		res.Breakdown = res.Breakdown.Add(s.M.CPU(i).Counters())
	}
	res.Metrics = s.MetricsSnapshot()
	if hs, ok := res.Metrics.Histogram("server/sojourn_cyc"); ok {
		res.P50 = hs.Quantile(0.50)
		res.P95 = hs.Quantile(0.95)
		res.P99 = hs.Quantile(0.99)
		res.P999 = hs.Quantile(0.999)
		res.MaxSojourn = hs.Max
	}
	if g, ok := res.Metrics.Gauge("cache/xsock_hops"); ok {
		res.XSockHops = g.Total
	}
	if s.ADAPT != nil {
		res.Switches = s.ADAPT.Switches()
	}
	if cfg.Trace {
		res.TraceEvents = s.M.TraceEvents()
		res.TraceStart = start
	}
	res.Profile = s.TxProfile()
	res.EngineStats = s.M.EngineStats()

	var verr error
	s.Setup(func(tx tm.Tx) { verr = w.validate(tx) })
	if verr != nil {
		return res, fmt.Errorf("server %s/%s load=%.2f: validation: %w",
			cfg.Runtime, cfg.Topology, cfg.Load, verr)
	}
	return res, nil
}
