package server

import (
	"reflect"
	"testing"

	"asfstack/internal/sim"
)

// TestQueueAllocs pins the steady-state session path: once a queue is
// built, push and pop must not allocate (the CI alloc gate runs this).
func TestQueueAllocs(t *testing.T) {
	q := newReqQueue(64)
	r := request{arrival: 123, kind: opReserve, cust: 7, nq: 2}
	if n := testing.AllocsPerRun(1000, func() {
		q.push(r)
		q.push(r)
		q.pop()
		q.pop()
	}); n != 0 {
		t.Fatalf("queue push/pop allocates %v allocs/op, want 0", n)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := newReqQueue(3)
	for i := 0; i < 3; i++ {
		if !q.push(request{arrival: uint64(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.push(request{}) {
		t.Fatal("push into a full ring succeeded")
	}
	for i := 0; i < 3; i++ {
		r, ok := q.pop()
		if !ok || r.arrival != uint64(i) {
			t.Fatalf("pop %d = (%v, %v), want arrival %d", i, r.arrival, ok, i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop from an empty ring succeeded")
	}
	// Wrap-around keeps order.
	q.push(request{arrival: 10})
	q.push(request{arrival: 11})
	q.pop()
	q.push(request{arrival: 12})
	for want := uint64(11); want <= 12; want++ {
		if r, _ := q.pop(); r.arrival != want {
			t.Fatalf("wrapped pop = %d, want %d", r.arrival, want)
		}
	}
}

// TestGenerateDeterministic: the open-loop schedule is a pure function of
// the config — regenerating yields the identical stream, and arrivals are
// strictly non-decreasing.
func TestGenerateDeterministic(t *testing.T) {
	w := &world{cfg: Config{Seed: 42, Load: 0.9, ZipfS: 1.2, RequestsPerCore: 200}, items: 64, customers: 32}
	a, b := w.generate(3), w.generate(3)
	if !reflect.DeepEqual(a.buf, b.buf) {
		t.Fatal("regenerated schedule differs")
	}
	other := w.generate(4)
	if reflect.DeepEqual(a.buf, other.buf) {
		t.Fatal("different cores drew identical schedules")
	}
	var prev uint64
	hot := 0
	for a.len() > 0 {
		r, _ := a.pop()
		if r.arrival < prev {
			t.Fatalf("arrivals not monotone: %d after %d", r.arrival, prev)
		}
		prev = r.arrival
		if r.kind == opReserve && r.items[0] < 8 {
			hot++
		}
	}
	if hot == 0 {
		t.Fatal("Zipf skew produced no hot-head keys at all")
	}
}

func smallConfig(runtime string) Config {
	return Config{
		Runtime:         runtime,
		Threads:         4,
		RequestsPerCore: 12,
		Load:            0.9,
		Scale:           0.05,
	}
}

// TestRunSmoke: a small run completes, validates, and reports ordered
// quantiles within the observed range.
func TestRunSmoke(t *testing.T) {
	r, err := Run(smallConfig("LLB-256"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 4*12 {
		t.Fatalf("Requests = %d, want %d", r.Requests, 4*12)
	}
	if r.Stats.Commits == 0 {
		t.Fatal("no commits")
	}
	qs := []float64{r.P50, r.P95, r.P99, r.P999}
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
	if r.P50 <= 0 || r.P999 > float64(r.MaxSojourn) {
		t.Fatalf("quantiles outside (0, max=%d]: %v", r.MaxSojourn, qs)
	}
	if r.XSockHops != 0 {
		t.Fatalf("single-socket run counted %d cross-socket hops", r.XSockHops)
	}
}

// simFingerprint is the deterministic part of a Result.
type simFingerprint struct {
	Cycles              uint64
	Requests            uint64
	P50, P95, P99, P999 float64
	Max                 uint64
	XSock               uint64
	Commits             uint64
	Aborts              uint64
}

func fingerprint(r Result) simFingerprint {
	var aborts uint64
	for _, a := range r.Stats.Aborts {
		aborts += a
	}
	return simFingerprint{
		Cycles: r.Cycles, Requests: r.Requests,
		P50: r.P50, P95: r.P95, P99: r.P99, P999: r.P999,
		Max: r.MaxSojourn, XSock: r.XSockHops,
		Commits: r.Stats.Commits, Aborts: aborts,
	}
}

// TestRunDeterministicAcrossEngines: the serial and epoch engines must
// produce byte-identical simulated results for the open-loop workload,
// including on a multi-socket topology.
func TestRunDeterministicAcrossEngines(t *testing.T) {
	for _, topology := range []string{"", "2x2"} {
		cfg := smallConfig("LLB-256")
		if topology != "" {
			cfg.Threads = 0
			cfg.Topology = topology
		}
		cfg.Engine = sim.EngineSerial
		serial, err := Run(cfg)
		if err != nil {
			t.Fatalf("topology %q serial: %v", topology, err)
		}
		cfg.Engine = sim.EngineEpoch
		cfg.EpochLen = 300
		epoch, err := Run(cfg)
		if err != nil {
			t.Fatalf("topology %q epoch: %v", topology, err)
		}
		if fs, fe := fingerprint(serial), fingerprint(epoch); fs != fe {
			t.Fatalf("topology %q: engines diverge:\nserial %+v\nepoch  %+v", topology, fs, fe)
		}
	}
}

// TestRunTopologyCharges: a multi-socket run pays cross-socket hops; the
// same workload single-socket does not, and is cheaper.
func TestRunTopologyCharges(t *testing.T) {
	cfg := smallConfig("LLB-256")
	cfg.Threads = 0
	cfg.Topology = "2x2"
	multi, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if multi.XSockHops == 0 {
		t.Fatal("2x2 run recorded zero cross-socket hops")
	}
	if hs, ok := multi.Metrics.Histogram("server/sojourn_cyc"); !ok || hs.Count != multi.Requests {
		t.Fatalf("sojourn histogram count = %v, want one observation per request (%d)",
			hs.Count, multi.Requests)
	}
}

// TestRunOverloadTail: pushing Load well past saturation must inflate the
// tail relative to a lightly-loaded run of the same server.
func TestRunOverloadTail(t *testing.T) {
	light := smallConfig("LLB-256")
	light.Load = 0.3
	lr, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	heavy := smallConfig("LLB-256")
	heavy.Load = 8.0 // deep overload: arrivals 8× the nominal service rate
	hr, err := Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if hr.P99 <= lr.P99 {
		t.Fatalf("overload p99 (%.0f) not above light-load p99 (%.0f)", hr.P99, lr.P99)
	}
}
