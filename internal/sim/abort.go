package sim

import (
	"fmt"

	"asfstack/internal/mem"
)

// AbortReason identifies why a speculative region was rolled back. The set
// mirrors the ASF status codes plus the OS-event causes the paper's abort
// breakdown (Fig. 6) distinguishes.
type AbortReason uint8

const (
	AbortNone AbortReason = iota

	// AbortContention: another thread accessed a protected line
	// incompatibly; ASF's requester-wins policy aborted this region.
	AbortContention

	// AbortCapacity: the implementation ran out of speculative-tracking
	// resources (LLB entries, or a speculatively marked L1 line was
	// displaced by an associativity conflict or a coherence probe).
	AbortCapacity

	// AbortPageFault: a memory access inside the region faulted; all
	// exceptions abort speculative regions.
	AbortPageFault

	// AbortInterrupt: a timer interrupt (or any privilege-level switch)
	// arrived during the region.
	AbortInterrupt

	// AbortSyscall: the region executed a system call.
	AbortSyscall

	// AbortExplicit: software executed the ABORT instruction. The Code
	// field of AbortError carries the software-supplied value (the TM
	// runtime uses it to flag, e.g., allocator refills — the paper's
	// "Abort (malloc)" category).
	AbortExplicit

	// AbortDisallowed: the region executed an instruction ASF forbids in
	// speculative code.
	AbortDisallowed

	// AbortNesting: the 256-level dynamic nesting limit was exceeded.
	AbortNesting

	numAbortReasons
)

// NumAbortReasons is the number of distinct reasons (for breakdown arrays).
const NumAbortReasons = int(numAbortReasons)

func (r AbortReason) String() string {
	switch r {
	case AbortNone:
		return "none"
	case AbortContention:
		return "contention"
	case AbortCapacity:
		return "capacity"
	case AbortPageFault:
		return "page-fault"
	case AbortInterrupt:
		return "interrupt"
	case AbortSyscall:
		return "syscall"
	case AbortExplicit:
		return "explicit"
	case AbortDisallowed:
		return "disallowed"
	case AbortNesting:
		return "nesting"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// NoCore marks an unknown aborter core and NoAddr an unknown conflicting
// address in an AbortError (and in the txprof flight records built from it).
// Self-inflicted aborts (capacity, explicit, OS events) have no aborter;
// only contention aborts delivered by another core's probe carry one.
const NoCore = -1

// NoAddr is the "no conflicting address" sentinel (an impossible line
// address: lines are aligned, and the address space never reaches the top).
const NoAddr = ^mem.Addr(0)

// AbortError is the sentinel carried by the panic that unwinds a speculative
// region back to its SPECULATE point. Only package asf recovers it; any
// other escape is a stack bug.
//
// By and Addr form the causality edge of the abort: the core whose access
// killed this region (NoCore when self-inflicted or unknown) and the cache
// line the conflict — or capacity displacement — was on (NoAddr when not
// applicable). They exist for the flight recorder; correctness never
// depends on them.
type AbortError struct {
	Core   int
	Reason AbortReason
	Code   uint64 // software code for AbortExplicit
	By     int    // aborter core (causality edge), NoCore if unknown
	Addr   mem.Addr
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("asf abort on core %d: %s", e.Core, e.Reason)
}
