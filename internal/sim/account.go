package sim

// Category classifies where cycles are spent, reproducing the paper's
// single-thread overhead breakdown (Fig. 9 / Table 1). The paper obtained
// these by annotating the final binaries line-by-line and post-processing a
// timed trace; here the runtime layers declare the category before charging
// cycles, which is the same attribution without the offline pass.
type Category uint8

const (
	// CatNonInstr: code outside transactions, uninstrumented.
	CatNonInstr Category = iota
	// CatTxApp: instrumented application code inside transactions
	// (compute between barriers, stack accesses).
	CatTxApp
	// CatTxLoadStore: TM read/write barriers (ASF LOCK MOVs, or the STM's
	// lock-table and logging work).
	CatTxLoadStore
	// CatTxStartCommit: beginning and committing transactions (ABI entry,
	// register checkpointing, SPECULATE/COMMIT, STM clock work).
	CatTxStartCommit
	// CatAbort: cycles wasted in aborted attempts plus restart overhead.
	// Attempt cycles are re-attributed here when the attempt aborts.
	CatAbort

	numCategories
)

// NumCategories is the number of accounting categories.
const NumCategories = int(numCategories)

func (k Category) String() string {
	switch k {
	case CatNonInstr:
		return "non-instr"
	case CatTxApp:
		return "tx-app"
	case CatTxLoadStore:
		return "tx-load/store"
	case CatTxStartCommit:
		return "tx-start/commit"
	case CatAbort:
		return "abort/restart"
	default:
		return "category(?)"
	}
}

// Breakdown is a per-category cycle count.
type Breakdown [NumCategories]uint64

// Total sums all categories.
func (b Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// Sub returns b - o, element-wise (o must be an earlier snapshot).
func (b Breakdown) Sub(o Breakdown) Breakdown {
	var d Breakdown
	for i := range b {
		d[i] = b[i] - o[i]
	}
	return d
}

// Add returns b + o, element-wise.
func (b Breakdown) Add(o Breakdown) Breakdown {
	var s Breakdown
	for i := range b {
		s[i] = b[i] + o[i]
	}
	return s
}

// Category returns the core's current accounting category.
func (c *CPU) Category() Category { return c.cat }

// SetCategory switches the accounting category, returning the previous one.
// Pending batched compute is attributed to the *old* category first.
func (c *CPU) SetCategory(k Category) Category {
	old := c.cat
	if c.pending > 0 {
		c.now += c.pending
		c.counters[old] += c.pending
		c.pending = 0
	}
	c.cat = k
	if c.tracing && k != old {
		c.Trace(TraceCategory, uint64(k))
	}
	return old
}

// Counters returns a snapshot of the per-category cycle counters,
// including batched compute (attributed to the current category).
func (c *CPU) Counters() Breakdown {
	b := c.counters
	b[c.cat] += c.pending
	return b
}

// MoveToAbort re-attributes every cycle charged since the snapshot to
// CatAbort. The TM runtime calls this when an attempt aborts, so wasted
// work lands in the paper's "Abort/restart" bucket.
func (c *CPU) MoveToAbort(since Breakdown) {
	// Fold batched compute in first so the delta below is exact.
	if c.pending > 0 {
		c.now += c.pending
		c.counters[c.cat] += c.pending
		c.pending = 0
	}
	for i := range c.counters {
		if Category(i) == CatAbort {
			continue
		}
		d := c.counters[i] - since[i]
		c.counters[i] -= d
		c.counters[CatAbort] += d
	}
}

// ResetCounters zeroes the per-category counters (start of measured phase).
func (c *CPU) ResetCounters() {
	c.counters = Breakdown{}
	c.pending = 0
	c.instLeft = 0
}
