// Package sim is the deterministic multicore simulator the ASF stack runs
// on. It plays the role PTLsim-ASF plays in the paper: it executes workload
// threads against a simulated memory hierarchy with near-cycle-level cost
// accounting, models the OS events that matter to ASF (timer interrupts,
// demand-paging faults, system calls), and provides the hook points the ASF
// architectural extension (package asf) plugs into.
//
// # Execution model
//
// Each simulated core runs its thread body in a goroutine. Every memory
// operation is a rendezvous with the engine: the engine always resumes the
// core with the smallest local cycle clock (ties broken by core id), the
// core performs exactly one operation against the shared simulator state,
// advances its clock by the operation's latency, and yields. Because at most
// one core ever holds the "turn", all simulator state is single-threaded and
// runs are bit-for-bit reproducible for a given seed.
//
// Pure compute (Exec/Cycles) is batched locally and folded into the clock at
// the next rendezvous, so simulation cost is proportional to the number of
// memory operations, not instructions.
//
// When only one runnable core remains, the engine grants it a free-running
// lease and the rendezvous overhead disappears — single-threaded
// configurations (sequential baselines, Table 1) simulate at full speed.
package sim

import (
	"fmt"
	"sync/atomic"

	"asfstack/internal/cache"
	"asfstack/internal/mem"
)

// Config describes the simulated machine.
type Config struct {
	Cores   int
	ClockHz uint64 // core clock; the paper simulates 2.2 GHz

	Cache cache.Config

	IssueWidth int // superscalar width for Exec batching (Barcelona: 3)

	// OS model.
	TimerInterval uint64 // cycles between timer interrupts (0 disables)
	InterruptCost uint64 // kernel entry/exit per interrupt
	PageFaultCost uint64 // minor-fault handling
	SyscallCost   uint64 // base cost of a system call

	Seed int64
}

// Barcelona returns the machine configuration used for all measurements in
// the paper: eight 2.2 GHz cores behaving as if on one socket.
func Barcelona(cores int) Config {
	return Config{
		Cores:         cores,
		ClockHz:       2_200_000_000,
		Cache:         cache.Barcelona(),
		IssueWidth:    3,
		TimerInterval: 2_200_000, // 1 ms OS tick
		InterruptCost: 2_000,
		PageFaultCost: 2_500,
		SyscallCost:   300,
		Seed:          42,
	}
}

// NativeReference returns the calibration standing in for the paper's
// native Barcelona machine in the Fig. 3 accuracy experiment. Real hardware
// differs from the simulator in ways PTLsim cannot capture (prefetchers,
// store TLB behaviour, finer pipelining); this model differs from
// Barcelona() along the same axes so the accuracy experiment exercises the
// same code path: two timing models compared per benchmark.
func NativeReference(cores int) Config {
	cfg := Barcelona(cores)
	cfg.Cache.MemLat = 180 // hardware prefetch hides part of DRAM latency
	cfg.Cache.C2CLat = 100
	cfg.Cache.L2Lat = 12
	cfg.Cache.StoresUseTLB = true // real hardware translates stores
	cfg.IssueWidth = 3
	return cfg
}

// Machine is one simulated system: memory, caches, cores, and OS model.
type Machine struct {
	cfg  Config
	Mem  *mem.Memory
	Hier *cache.Hierarchy
	cpus []*CPU

	hook     AccessHook
	events   chan event
	runnable int
	solo     int // core id holding a free-run lease, or -1

	running atomic.Bool // a Run call is in flight

	failure any // first workload panic, re-raised after shutdown
}

// AccessHook observes every memory access from every core after the cache
// model has charged latency and before data moves. The ASF system installs
// its conflict-detection and read/write-set tracking here. The hook may
// abort the accessing core (via CPU.RaiseAbort) or other cores (via their
// speculative unit).
type AccessHook func(c *CPU, addr mem.Addr, f Flags)

// Flags qualifies a memory access for the AccessHook.
type Flags uint8

const (
	FWrite  Flags = 1 << iota // store (or the store half of an RMW)
	FLocked                   // carries the LOCK prefix (ASF speculative)
	FWatch                    // WATCHR/WATCHW: monitor only, no data use
	FAtomic                   // part of an atomic read-modify-write

	// FPre marks the first of the two hook invocations per access: the
	// coherence-probe phase, before the cache model moves any line.
	// Conflict resolution (requester wins) happens here, so a conflicting
	// region is rolled back — and its speculative marks cleared — before
	// the access's fills and invalidations can displace them. The second
	// invocation (without FPre) runs after the cache access, for
	// read/write-set tracking.
	FPre
)

type event struct {
	core   int
	finish bool
}

// New builds a machine. Thread bodies are supplied to Run.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 || cfg.Cores > 32 {
		panic(fmt.Sprintf("sim: bad core count %d", cfg.Cores))
	}
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 3
	}
	m := &Machine{
		cfg:    cfg,
		Mem:    mem.New(),
		Hier:   cache.New(cfg.Cores, cfg.Cache),
		events: make(chan event, cfg.Cores),
		solo:   -1,
	}
	for i := 0; i < cfg.Cores; i++ {
		m.cpus = append(m.cpus, newCPU(m, i))
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Running reports whether a Run call is in flight. Statistics and metric
// snapshots are only coherent at barriers — between Run calls — and the
// stack's snapshot paths enforce that with this flag.
func (m *Machine) Running() bool { return m.running.Load() }

// CPU returns core i's handle (for pre-run setup such as installing
// speculative units).
func (m *Machine) CPU(i int) *CPU { return m.cpus[i] }

// SetAccessHook installs the machine-wide memory access hook.
func (m *Machine) SetAccessHook(h AccessHook) { m.hook = h }

// CyclesToNanos converts simulated cycles to simulated nanoseconds.
func (m *Machine) CyclesToNanos(cy uint64) float64 {
	return float64(cy) / float64(m.cfg.ClockHz) * 1e9
}

// Run executes one thread body per core (len(bodies) ≤ Cores) to completion
// and returns the simulated duration in cycles (the maximum core clock).
// It may be called repeatedly; cores keep their clocks across calls so a
// setup phase can be run before a measured phase.
func (m *Machine) Run(bodies ...func(c *CPU)) uint64 {
	if len(bodies) > len(m.cpus) {
		panic("sim: more thread bodies than cores")
	}
	m.running.Store(true)
	defer m.running.Store(false)
	m.runnable = len(bodies)
	for i, body := range bodies {
		c := m.cpus[i]
		c.running = true
		go func(c *CPU, body func(*CPU)) {
			defer func() {
				if r := recover(); r != nil {
					if m.failure == nil {
						m.failure = fmt.Sprintf("core %d: %v", c.id, r)
					}
				}
				c.flushCycles()
				// Give the turn back if we died holding it, then
				// signal completion.
				c.holding = false
				m.events <- event{core: c.id, finish: true}
			}()
			body(c)
		}(c, body)
	}
	m.schedule()
	if m.failure != nil {
		f := m.failure
		m.failure = nil
		panic(f)
	}
	var maxNow uint64
	for _, c := range m.cpus {
		if c.everRan && c.now > maxNow {
			maxNow = c.now
		}
	}
	return maxNow
}

// SyncClocks aligns every core's clock to the latest one — the barrier
// between a setup phase and the measured phase — and returns the common
// time. Must be called between Run invocations.
func (m *Machine) SyncClocks() uint64 {
	var maxNow uint64
	for _, c := range m.cpus {
		if c.now > maxNow {
			maxNow = c.now
		}
	}
	for _, c := range m.cpus {
		c.now = maxNow
		if m.cfg.TimerInterval > 0 {
			c.nextTimer = maxNow + m.cfg.TimerInterval
		}
	}
	return maxNow
}

// ResetAllCounters zeroes every core's per-category cycle counters (start
// of the measured phase).
func (m *Machine) ResetAllCounters() {
	for _, c := range m.cpus {
		c.ResetCounters()
	}
}

// schedule is the engine loop: grant the turn to the earliest waiting core,
// wait for it to yield or finish, repeat until all threads finish.
func (m *Machine) schedule() {
	waiting := make([]bool, len(m.cpus)) // core is blocked in acquire
	nWaiting := 0
	for m.runnable > 0 {
		// Collect events until every runnable core is either waiting
		// for the turn or finished.
		for nWaiting < m.runnable {
			ev := <-m.events
			if ev.finish {
				m.cpus[ev.core].running = false
				m.runnable--
				if m.solo == ev.core {
					m.solo = -1
				}
			} else {
				waiting[ev.core] = true
				nWaiting++
			}
		}
		if m.runnable == 0 {
			break
		}
		// Pick the earliest waiting core; ties go to the lowest id.
		best := -1
		for i, c := range m.cpus {
			if waiting[i] && (best < 0 || c.now < m.cpus[best].now) {
				best = i
			}
		}
		if m.runnable == 1 {
			m.solo = best // free-run lease: no more rendezvous needed
		}
		waiting[best] = false
		nWaiting--
		m.cpus[best].turn <- struct{}{}
	}
}
