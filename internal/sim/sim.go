// Package sim is the deterministic multicore simulator the ASF stack runs
// on. It plays the role PTLsim-ASF plays in the paper: it executes workload
// threads against a simulated memory hierarchy with near-cycle-level cost
// accounting, models the OS events that matter to ASF (timer interrupts,
// demand-paging faults, system calls), and provides the hook points the ASF
// architectural extension (package asf) plugs into.
//
// # Execution model
//
// Each simulated core runs its thread body inside a coroutine (iter.Pull);
// the goroutine that called Run drives them. Every memory operation is
// globally ordered: the core with the smallest local cycle clock (ties
// broken by core id) performs exactly one operation against the shared
// simulator state, advances its clock by the operation's latency, and
// yields. Because at most one core ever holds the turn, all simulator state
// is single-threaded and runs are bit-for-bit reproducible for a given seed.
//
// Scheduling decisions are not brokered by the driver: each grant carries a
// *run-ahead lease* — "run until your clock reaches the earliest waiting
// core's clock" — taken from an index min-heap of waiting cores keyed by
// (clock, id). While the lease holds, the core would be re-picked on every
// yield anyway, so it simply keeps executing with no synchronization at
// all; when the lease expires it pushes itself into the heap, pops the new
// minimum, names that core as the driver's next resume target, and yields.
// The driver loop is a single indirect call: resume whichever core the last
// one granted. Hand-offs ride runtime coroutine switches (no channels, no
// scheduler queues, no parking), which cost a fraction of a goroutine
// round-trip through the run queue — the dominant host cost at high core
// counts, where near-lockstep clocks force a hand-off on almost every
// operation.
//
// Pure compute (Exec/Cycles) is batched locally and folded into the clock at
// the next rendezvous, so simulation cost is proportional to the number of
// memory operations, not instructions.
//
// When only one runnable core remains its lease is unbounded — the old
// free-running "solo" special case falls out of the lease rule — and
// single-threaded configurations (sequential baselines, Table 1) simulate
// at full speed.
package sim

import (
	"fmt"
	"iter"
	"sync/atomic"

	"asfstack/internal/cache"
	"asfstack/internal/mem"
	"asfstack/internal/topo"
)

// Config describes the simulated machine.
type Config struct {
	Cores   int
	ClockHz uint64 // core clock; the paper simulates 2.2 GHz

	Cache cache.Config

	// Topology partitions the cores into sockets (e.g. topo "2x8": two
	// sockets of eight cores, each with its own L3 slice, cross-socket
	// directory hops charged per cache.Config.XSockLat). The zero value
	// keeps the paper's single-socket machine. When set, Total() must
	// equal Cores; New validates and copies the socket count into the
	// cache configuration.
	Topology topo.Topology

	IssueWidth int // superscalar width for Exec batching (Barcelona: 3)

	// OS model.
	TimerInterval uint64 // cycles between timer interrupts (0 disables)
	InterruptCost uint64 // kernel entry/exit per interrupt
	PageFaultCost uint64 // minor-fault handling
	SyscallCost   uint64 // base cost of a system call

	Seed int64

	// SchedNoise enables schedule exploration: every globally ordered
	// operation is preceded by a pseudo-random stall of up to SchedNoise
	// cycles, drawn from a dedicated per-core stream derived from Seed.
	// Different seeds then produce different interleavings while each seed
	// remains bit-for-bit replayable — the litmus explorer's knob. The
	// stalls pollute the cycle accounting, so exploration runs are not
	// measurement runs. Zero (the default) keeps the scheduler purely
	// clock-driven and byte-identical to previous behaviour.
	SchedNoise uint64

	// Engine selects the execution engine (see engine.go). Simulated
	// results are bit-identical across engines; only host cost differs.
	Engine Engine

	// EpochLen is the epoch length of the epoch-speculative engine, in
	// simulated cycles; zero means DefaultEpochLen. Ignored by the serial
	// engine. Results are identical for every value — another pure
	// host-performance knob.
	EpochLen uint64
}

// Barcelona returns the machine configuration used for all measurements in
// the paper: eight 2.2 GHz cores behaving as if on one socket.
func Barcelona(cores int) Config {
	return Config{
		Cores:         cores,
		ClockHz:       2_200_000_000,
		Cache:         cache.Barcelona(),
		IssueWidth:    3,
		TimerInterval: 2_200_000, // 1 ms OS tick
		InterruptCost: 2_000,
		PageFaultCost: 2_500,
		SyscallCost:   300,
		Seed:          42,
	}
}

// NativeReference returns the calibration standing in for the paper's
// native Barcelona machine in the Fig. 3 accuracy experiment. Real hardware
// differs from the simulator in ways PTLsim cannot capture (prefetchers,
// store TLB behaviour, finer pipelining); this model differs from
// Barcelona() along the same axes so the accuracy experiment exercises the
// same code path: two timing models compared per benchmark.
func NativeReference(cores int) Config {
	cfg := Barcelona(cores)
	cfg.Cache.MemLat = 180 // hardware prefetch hides part of DRAM latency
	cfg.Cache.C2CLat = 100
	cfg.Cache.L2Lat = 12
	cfg.Cache.StoresUseTLB = true // real hardware translates stores
	cfg.IssueWidth = 3
	return cfg
}

// Scheduling keys pack (clock, id) into one uint64 so the min-heap compares
// a single word: clock in the high bits, core id in the low coreBits. The
// lexicographic (clock, id) order the engine has always used is exactly
// numeric order on the packed key.
const (
	coreBits = 6
	coreMask = (1 << coreBits) - 1

	// leaseFree is the unbounded lease granted when no other core is
	// waiting: every key compares below it, so the holder never yields.
	leaseFree = ^uint64(0)
)

// Machine is one simulated system: memory, caches, cores, and OS model.
type Machine struct {
	cfg  Config
	Mem  *mem.Memory
	Hier *cache.Hierarchy
	cpus []*CPU

	hook AccessHook

	// idleHook, when set, is invoked by CPU.IdleHint — a cooperative
	// quiescence annotation (RCU-style) that long non-transactional spin
	// loops (barriers) and thread exits call so a runtime that tracks
	// per-core liveness can observe the core as quiescent. Set before Run.
	idleHook func(*CPU)

	// Scheduling state. Only ever touched single-threaded: by the core
	// holding the turn, or by the driver between resumes.
	runnable   int
	heap       []uint64 // packed (clock<<coreBits|id) keys of waiting cores
	resume     int      // core id the driver resumes next (set by grant)
	collecting bool     // Run's startup sweep is in progress; no grants yet

	closed atomic.Bool

	running atomic.Bool // a Run call is in flight

	failure any // first workload panic, re-raised after shutdown
}

// AccessHook observes every memory access from every core after the cache
// model has charged latency and before data moves. The ASF system installs
// its conflict-detection and read/write-set tracking here. The hook may
// abort the accessing core (via CPU.RaiseAbort) or other cores (via their
// speculative unit).
type AccessHook func(c *CPU, addr mem.Addr, f Flags)

// Flags qualifies a memory access for the AccessHook.
type Flags uint8

const (
	FWrite  Flags = 1 << iota // store (or the store half of an RMW)
	FLocked                   // carries the LOCK prefix (ASF speculative)
	FWatch                    // WATCHR/WATCHW: monitor only, no data use
	FAtomic                   // part of an atomic read-modify-write

	// FPre marks the first of the two hook invocations per access: the
	// coherence-probe phase, before the cache model moves any line.
	// Conflict resolution (requester wins) happens here, so a conflicting
	// region is rolled back — and its speculative marks cleared — before
	// the access's fills and invalidations can displace them. The second
	// invocation (without FPre) runs after the cache access, for
	// read/write-set tracking.
	FPre
)

// MaxCores is the machine-size cap: core ids must fit the packed
// scheduling keys (coreBits) and the coherence bitmasks (one uint64).
const MaxCores = 64

// New builds a machine. Thread bodies are supplied to Run.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 || cfg.Cores > MaxCores {
		panic(fmt.Sprintf("sim: bad core count %d", cfg.Cores))
	}
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 3
	}
	if cfg.EpochLen == 0 {
		cfg.EpochLen = DefaultEpochLen
	}
	if !cfg.Topology.IsZero() {
		if cfg.Topology.Total() != cfg.Cores {
			panic(fmt.Sprintf("sim: topology %s has %d cores, config has %d",
				cfg.Topology, cfg.Topology.Total(), cfg.Cores))
		}
		cfg.Cache.Sockets = cfg.Topology.Sockets
		if cfg.Topology.Sockets > 1 && cfg.Cache.XSockLat == 0 {
			// Resolve the default here too so Config() readers (the ASF
			// conflict-probe charging) see the effective latency.
			cfg.Cache.XSockLat = cache.DefaultXSockLat
		}
	}
	m := &Machine{
		cfg:  cfg,
		Mem:  mem.New(),
		Hier: cache.New(cfg.Cores, cfg.Cache),
		heap: make([]uint64, 0, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		m.cpus = append(m.cpus, newCPU(m, i))
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Running reports whether a Run call is in flight. Statistics and metric
// snapshots are only coherent at barriers — between Run calls — and the
// stack's snapshot paths enforce that with this flag.
func (m *Machine) Running() bool { return m.running.Load() }

// CPU returns core i's handle (for pre-run setup such as installing
// speculative units).
func (m *Machine) CPU(i int) *CPU { return m.cpus[i] }

// SetAccessHook installs the machine-wide memory access hook.
func (m *Machine) SetAccessHook(h AccessHook) { m.hook = h }

// SetIdleHook installs the cooperative-quiescence callback CPU.IdleHint
// invokes. Install before Run; nil disables (IdleHint becomes free).
func (m *Machine) SetIdleHook(h func(*CPU)) { m.idleHook = h }

// CyclesToNanos converts simulated cycles to simulated nanoseconds.
func (m *Machine) CyclesToNanos(cy uint64) float64 {
	return float64(cy) / float64(m.cfg.ClockHz) * 1e9
}

// Close marks the machine shut down. The machine cannot Run again
// afterwards. Idempotent. Coroutines live only inside a Run call, so there
// is nothing to tear down; Close exists to catch use-after-close bugs.
func (m *Machine) Close() {
	if m.closed.Swap(true) {
		return
	}
	if m.running.Load() {
		panic("sim: Close while a Run call is in flight")
	}
}

// Run executes one thread body per core (len(bodies) ≤ Cores) to completion
// and returns the simulated duration in cycles (the maximum core clock).
// It may be called repeatedly; cores keep their clocks across calls so a
// setup phase can be run before a measured phase.
//
// Run is the scheduler's driver: each body runs inside a coroutine, and the
// loop below simply resumes whichever core the previous one granted the
// turn to. All scheduling decisions (heap, leases) happen inside the cores;
// the driver only supplies the switch points.
func (m *Machine) Run(bodies ...func(c *CPU)) uint64 {
	if len(bodies) > len(m.cpus) {
		panic("sim: more thread bodies than cores")
	}
	if m.closed.Load() {
		panic("sim: Run on a closed machine")
	}
	m.running.Store(true)
	defer m.running.Store(false)
	m.runnable = len(bodies)
	m.heap = m.heap[:0]
	if len(bodies) > 0 {
		nexts := make([]func() (struct{}, bool), len(bodies))
		stops := make([]func(), len(bodies))
		for i, body := range bodies {
			c := m.cpus[i]
			c.running = true
			c.holding = false
			c.checkedIn = false
			c.leaseKey = 0
			body := body
			nexts[i], stops[i] = iter.Pull(func(yield func(struct{}) bool) {
				c.yield = yield
				c.runBody(body)
			})
		}
		// Defensive teardown: on the normal path every coroutine has
		// already returned and stop is a no-op; if the driver unwinds
		// early (a scheduler bug), parked cores get errRunStopped.
		defer func() {
			for _, stop := range stops {
				stop()
			}
		}()
		// Startup barrier: run every core to its first yield — its first
		// operation (which pushes its key), or its finish if the body
		// performs none. Only then is the minimum well defined and the
		// first turn granted; from that point the cores schedule
		// themselves and the driver just follows the grants.
		m.collecting = true
		for i := range bodies {
			nexts[i]()
		}
		m.collecting = false
		if m.runnable > 0 {
			m.grant(m.heapPop())
			for m.runnable > 0 {
				nexts[m.resume]()
			}
		}
	}
	if m.failure != nil {
		f := m.failure
		m.failure = nil
		panic(f)
	}
	var maxNow uint64
	for _, c := range m.cpus {
		if c.everRan && c.now > maxNow {
			maxNow = c.now
		}
	}
	return maxNow
}

// grant hands the turn to the core identified by the packed key, attaching
// its run-ahead lease: the key of the earliest core left waiting (or
// leaseFree when none is). The grantee runs when the granter yields and the
// driver resumes it.
func (m *Machine) grant(key uint64) {
	c := m.cpus[key&coreMask]
	if len(m.heap) > 0 {
		c.leaseKey = m.heap[0]
	} else {
		c.leaseKey = leaseFree
	}
	m.resume = c.id
}

// SyncClocks aligns every core's clock to the latest one — the barrier
// between a setup phase and the measured phase — and returns the common
// time. Must be called between Run invocations.
func (m *Machine) SyncClocks() uint64 {
	var maxNow uint64
	for _, c := range m.cpus {
		if c.now > maxNow {
			maxNow = c.now
		}
	}
	for _, c := range m.cpus {
		c.now = maxNow
		if m.cfg.TimerInterval > 0 {
			c.nextTimer = maxNow + m.cfg.TimerInterval
		}
		c.resetEpoch()
	}
	return maxNow
}

// ResetAllCounters zeroes every core's per-category cycle counters (start
// of the measured phase).
func (m *Machine) ResetAllCounters() {
	for _, c := range m.cpus {
		c.ResetCounters()
	}
}

// --- waiting-core min-heap ----------------------------------------------

// The heap holds one packed key per waiting core. Push and pop are the
// only operations; both run under the turn token (or during Run's startup,
// before any token exists).

func (m *Machine) heapPush(k uint64) {
	h := append(m.heap, k)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	m.heap = h
}

// heapPushPop is heapPush(k) followed by heapPop(), fused into a single
// sift-down: when k belongs below the current minimum (the common case — a
// core whose lease just expired has a later clock than the earliest waiter),
// the minimum is replaced by k in one traversal instead of two.
func (m *Machine) heapPushPop(k uint64) uint64 {
	h := m.heap
	n := len(h)
	if n == 0 || k <= h[0] {
		return k
	}
	top := h[0]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && h[r] < h[l] {
			l = r
		}
		if k <= h[l] {
			break
		}
		h[i] = h[l]
		i = l
	}
	h[i] = k
	return top
}

func (m *Machine) heapPop() uint64 {
	h := m.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && h[r] < h[l] {
			l = r
		}
		if h[i] <= h[l] {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	m.heap = h
	return top
}
