package sim

import (
	"fmt"

	"asfstack/internal/cache"
	"asfstack/internal/mem"
)

// Engine selects how the simulator executes the globally ordered operation
// stream. Both engines produce bit-identical simulated results — same
// cycle counts, cache statistics, metrics, traces, and abort histories —
// for any configuration; they differ only in host-side cost.
//
// # EngineSerial
//
// The baseline from PR 3: every memory operation rendezvouses with the
// global turn token and executes the full timing model (TLB lookup, cache
// array scans, coherence directory, ASF access hooks, demand-paging check).
//
// # EngineEpoch
//
// The epoch-speculative engine. Each core keeps a private shadow plane of
// *access windows*: small per-line records seeded by full-path accesses,
// each capturing direct pointers into the core's L1 and L1-TLB arrays plus
// the access class that built it. While a window stays valid, repeat
// accesses to its line are serviced by a speculative fast path that replays
// exactly the architectural state changes the full path would make for a
// guaranteed L1 hit — the global LRU tick, the L1 and TLB recency stamps,
// the per-core load/store/L1-hit counters, and the L1 latency charge — while
// skipping the work the window proves to be a no-op: the TLB and cache-array
// scans, the coherence-directory lookup, both ASF hook dispatches, and the
// page-presence check.
//
// The proof obligations are discharged by live revalidation rather than by
// buffering and merging deltas:
//
//   - The cache and TLB arrays are allocated once and never reallocated, so
//     a window can hold pointers to their entries. A window replays only if
//     its L1 entry is still valid and still holds the window's line; any
//     eviction, invalidation, flush, or ASF Drop zeroes or retags the entry
//     and the window dies by inspection. No cross-core invalidation hook is
//     needed.
//   - Store windows additionally require the L1 entry's dirty bit. Dirty
//     implies the line is exclusively owned by this core (the upgrade that
//     set it invalidated all other copies; any later foreign access would
//     have cleared it), so the directory writes the full path would perform
//     are idempotent and the coherence-probe hook phase has no foreign
//     protection to act on.
//   - ASF-visible classes (locked accesses, and plain stores which can
//     raise the colocation exception inside a region) carry the core's
//     speculation generation, bumped on every speculative-unit operation
//     (SPECULATE/COMMIT/ABORT/RELEASE all funnel through CPU.SpecOp). A
//     generation match proves the access repeats inside the same region
//     with the same protections, where the ASF tracking hooks are
//     early-return no-ops.
//
// Because a replay performs the identical state writes with identical
// values, the shadow plane never needs an epoch-boundary merge: there is
// nothing to reconcile. Epochs instead bound the lifetime of the shadow
// plane itself — at each epoch boundary the core discards all windows
// (an epoch commit) and reseeds from full-path truth. The epoch length is
// therefore a pure host-performance knob: simulated results are identical
// for every EpochLen, which the determinism suite asserts.
type Engine uint8

const (
	// EngineSerial is the default full-path engine.
	EngineSerial Engine = iota
	// EngineEpoch enables the epoch-speculative access-window fast path.
	EngineEpoch
)

// String returns the engine's flag spelling ("serial", "epoch").
func (e Engine) String() string {
	switch e {
	case EngineSerial:
		return "serial"
	case EngineEpoch:
		return "epoch"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngine converts a flag spelling to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "serial", "":
		return EngineSerial, nil
	case "epoch":
		return EngineEpoch, nil
	default:
		return EngineSerial, fmt.Errorf("sim: unknown engine %q (want serial or epoch)", s)
	}
}

// DefaultEpochLen is the epoch length (in simulated cycles) used when
// Config.EpochLen is zero: long enough that the per-boundary window flush
// is noise, short enough that a stalled workload reseeds promptly.
const DefaultEpochLen = 100_000

// Window-table geometry: direct-mapped by line address. 1024 entries —
// twice the line capacity of a 64 KB L1 — so two resident lines sharing an
// L1 set usually land in distinct windows; aliasing between hot lines only
// costs reseeds, never correctness.
const (
	winBits = 10
	winSize = 1 << winBits
	winMask = winSize - 1
)

// Window capabilities. Each access class carries its own no-op proof for
// the ASF hook phase, so a window records per-class capability bits: a
// repeat access replays only under a capability its own class seeded.
// Capabilities accumulate in one window per line — the common
// read-modify-write pattern (load then store of the same word) earns both
// the load and store capability and replays both halves.
const (
	capPlainLoad uint8 = 1 << iota
	capLockedLoad
	capPlainStore
	capLockedStore
)

// capGenDep marks the capabilities whose proof depends on unchanged ASF
// protection state; they expire when the core's speculation generation
// moves. Plain loads are generation-independent: their hook phases are
// no-ops under every protection state the line's L1 residency permits.
const capGenDep = capLockedLoad | capPlainStore | capLockedStore

// ReplayTracker lets the epoch engine service generation-stale windows by
// replaying the tracking-phase hook effect directly instead of falling back
// to the full path. The ASF system installs one per core (CPU.SetReplayTracker).
//
// The soundness argument leans on live revalidation: a window only replays
// when its line is still valid in the core's L1 (dirty, for stores). That
// residency proves the conflict-probe hook phase is a no-op — any foreign
// speculative writer's upgrade would have invalidated this copy, and a
// write replay's dirty bit additionally rules out foreign readers — so the
// only remaining full-path hook effect is the tracking phase:
//
//   - a locked load in a newer region must re-insert the line into that
//     region's read set (TrackLoad);
//   - a locked store must re-insert into the write set, backing up the
//     pre-image (TrackStore);
//   - a plain access with no region active tracks nothing (Idle).
//
// Track calls may abort the region (capacity, ASF1 frozen-set) — they raise
// exactly the aborts the full path's tracking hook would, at the same point
// in the access (after the latency charge).
type ReplayTracker interface {
	// TrackableLoad reports whether a generation-stale locked-load window
	// may replay by re-tracking (a region is active on this core).
	TrackableLoad() bool
	// TrackableStore is TrackableLoad for locked stores.
	TrackableStore() bool
	// Idle reports that no region is active, so a plain access has no
	// tracking-phase effect and a stale plain-store window may replay.
	Idle() bool
	// TrackLoad replays the tracking hook of a locked load: insert line
	// into the active region's read set. May raise the same synchronous
	// aborts the full path would.
	TrackLoad(line mem.Addr)
	// TrackStore replays the tracking hook of a locked store.
	TrackStore(line mem.Addr)
}

// winEntry is one access window: the shadow record that lets repeat
// accesses of line skip the full timing-model path.
type winEntry struct {
	line mem.Addr
	lref cache.LineRef
	pref cache.PageRef // TLB entry; seeded by loads (stores skip the TLB)
	gen  uint32        // speculation generation the gen-dependent caps were seeded under
	caps uint8
}

// EngineStats counts epoch-engine activity on one core (or, aggregated by
// Machine.EngineStats, the whole machine). All counters are host-side
// observability: they never feed back into simulated state.
type EngineStats struct {
	// Commits counts epoch boundaries: each one retires the core's shadow
	// plane wholesale and starts reseeding.
	Commits uint64
	// Rollbacks counts mis-speculations: replay attempts that found a
	// window for the accessed line but failed revalidation (the line moved,
	// lost its dirty bit, or the region generation changed), forcing the
	// access back onto the full path.
	Rollbacks uint64
	// WastedCycles sums the simulated cycles charged by the full-path
	// re-execution of rolled-back accesses — the work the speculation
	// failed to save, in the units the PR 7 wasted-work accounting uses.
	WastedCycles uint64
	// Hits counts accesses serviced by the speculative fast path.
	Hits uint64
}

// add accumulates o into s.
func (s *EngineStats) add(o EngineStats) {
	s.Commits += o.Commits
	s.Rollbacks += o.Rollbacks
	s.WastedCycles += o.WastedCycles
	s.Hits += o.Hits
}

// EngineStats aggregates the per-core epoch-engine counters. Zero for the
// serial engine. Only coherent between Run calls, like all statistics.
func (m *Machine) EngineStats() EngineStats {
	var t EngineStats
	for _, c := range m.cpus {
		t.add(c.estats)
	}
	return t
}

// closeEpoch retires the core's shadow plane at an epoch boundary: every
// window is discarded and the next boundary is scheduled on the fixed
// epoch grid. Reaching a boundary is the epoch "commit" — since replays
// write ground truth directly, retiring the plane is a flush, not a merge.
func (c *CPU) closeEpoch() {
	c.estats.Commits++
	for i := range c.win {
		c.win[i] = winEntry{}
	}
	step := c.m.cfg.EpochLen
	for c.epochEnd <= c.now {
		c.epochEnd += step
	}
}

// resetEpoch realigns the epoch grid after an externally imposed clock jump
// (SyncClocks) and discards windows seeded in the previous phase.
func (c *CPU) resetEpoch() {
	if c.win == nil {
		return
	}
	for i := range c.win {
		c.win[i] = winEntry{}
	}
	c.epochEnd = c.now + c.m.cfg.EpochLen
}
