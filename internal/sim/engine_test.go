package sim

import (
	"testing"
	"testing/quick"

	"asfstack/internal/cache"
	"asfstack/internal/mem"
)

// runMixed executes a random plain-op workload on a machine with the given
// engine and returns everything observable: final memory checksum, duration,
// and the full per-core cache statistics.
func runMixed(t *testing.T, seed int64, cores int, eng Engine, epochLen uint64) (mem.Word, uint64, []cache.Stats) {
	t.Helper()
	cfg := Barcelona(cores)
	cfg.Seed = seed
	cfg.Engine = eng
	cfg.EpochLen = epochLen
	m := New(cfg)
	defer m.Close()
	m.Mem.Prefault(0, 1<<20)
	bodies := make([]func(*CPU), cores)
	for i := range bodies {
		bodies[i] = func(c *CPU) {
			rng := c.Rand()
			for j := 0; j < 400; j++ {
				a := mem.Addr(rng.Intn(96)) * mem.LineSize
				switch rng.Intn(5) {
				case 0:
					c.Load(a)
				case 1:
					c.Store(a, mem.Word(j))
				case 2:
					c.FetchAdd(a, 1)
				case 3:
					c.CAS(a, 0, mem.Word(c.ID()+1))
				default:
					// A tight repeat burst: the epoch engine's fast path
					// must produce identical stamps and statistics.
					for k := 0; k < 8; k++ {
						c.Load(a)
						c.Store(a, mem.Word(k))
					}
				}
				c.Exec(rng.Intn(50))
			}
		}
	}
	dur := m.Run(bodies...)
	var sum mem.Word
	for i := 0; i < 96; i++ {
		sum += m.Mem.Load(mem.Addr(i) * mem.LineSize)
	}
	stats := make([]cache.Stats, cores)
	for i := range stats {
		stats[i] = m.Hier.Stats(i)
	}
	return sum, dur, stats
}

// TestCrossEngineIdentity: for arbitrary seeds and core counts, the epoch
// engine produces bit-identical simulated results to the serial engine —
// memory contents, duration, and every cache counter on every core.
func TestCrossEngineIdentity(t *testing.T) {
	prop := func(seed int64, rawCores uint8) bool {
		cores := int(rawCores%8) + 1
		s1, d1, st1 := runMixed(t, seed, cores, EngineSerial, 0)
		s2, d2, st2 := runMixed(t, seed, cores, EngineEpoch, 0)
		if s1 != s2 || d1 != d2 {
			t.Logf("seed %d cores %d: sum %d vs %d, dur %d vs %d", seed, cores, s1, s2, d1, d2)
			return false
		}
		for i := range st1 {
			if st1[i] != st2[i] {
				t.Logf("seed %d cores %d: core %d stats %+v vs %+v", seed, cores, i, st1[i], st2[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestEpochLengthInvariance: the epoch length is a pure host-performance
// knob — results are identical for every value, including degenerate ones.
func TestEpochLengthInvariance(t *testing.T) {
	base, bdur, bstats := runMixed(t, 7, 4, EngineSerial, 0)
	for _, el := range []uint64{1, 500, 25_000, DefaultEpochLen, 1 << 40} {
		s, d, st := runMixed(t, 7, 4, EngineEpoch, el)
		if s != base || d != bdur {
			t.Fatalf("EpochLen %d: sum/dur %d/%d, want %d/%d", el, s, d, base, bdur)
		}
		for i := range st {
			if st[i] != bstats[i] {
				t.Fatalf("EpochLen %d: core %d stats %+v, want %+v", el, i, st[i], bstats[i])
			}
		}
	}
}

// TestEngineStatsActivity: a repeat-heavy workload must drive the epoch
// fast path (hits) and retire epochs (commits), and a cross-core write
// landing under a live window must cost a rollback with wasted-cycle
// attribution; the serial engine reports zeros.
//
// Coherence invalidations are the reliable rollback source, as in real
// contention. (Single-core capacity evictions can also roll back — the
// window table is larger than an L1 set's line span, so an evicted line's
// window may survive to fail revalidation — but this test does not rely
// on that.)
func TestEngineStatsActivity(t *testing.T) {
	run := func(eng Engine) EngineStats {
		cfg := Barcelona(2)
		cfg.Engine = eng
		cfg.EpochLen = 10_000
		m := New(cfg)
		defer m.Close()
		m.Mem.Prefault(0, 1<<22)
		m.Run(
			func(c *CPU) {
				for i := 0; i < 20_000; i++ {
					c.Load(0x40)
					c.Store(0x40, mem.Word(i))
				}
			},
			func(c *CPU) {
				// Land one conflicting write mid-way through core 0's
				// burst, invalidating its copy under a live window.
				c.Cycles(33_333)
				c.Store(0x40, 7)
			})
		return m.EngineStats()
	}
	if s := run(EngineSerial); s != (EngineStats{}) {
		t.Fatalf("serial engine reported engine stats: %+v", s)
	}
	s := run(EngineEpoch)
	if s.Hits == 0 || s.Commits == 0 || s.Rollbacks == 0 {
		t.Fatalf("epoch engine stats missing activity: %+v", s)
	}
	if s.WastedCycles == 0 {
		t.Fatalf("rollbacks without wasted-cycle attribution: %+v", s)
	}
}

// TestReplayZeroAlloc: the epoch fast path must not allocate — it runs once
// per simulated memory operation.
func TestReplayZeroAlloc(t *testing.T) {
	cfg := Barcelona(1)
	cfg.Engine = EngineEpoch
	cfg.TimerInterval = 0 // timers would trigger slow-path TLB refills
	m := New(cfg)
	defer m.Close()
	m.Mem.Prefault(0, 1<<16)
	m.Run(func(c *CPU) { c.Load(0x40); c.Store(0x40, 1) }) // seed
	var inner *CPU
	m.Run(func(c *CPU) { inner = c; c.Load(0x40) })
	// The worker goroutine owns the CPU during Run; drive a measured Run
	// per sample instead, subtracting nothing — Run itself allocates only
	// the body slice, so measure a long loop and amortise.
	allocs := testing.AllocsPerRun(10, func() {
		m.Run(func(c *CPU) {
			for i := 0; i < 1000; i++ {
				c.Load(0x40)
				c.Store(0x40, mem.Word(i))
			}
		})
	})
	_ = inner
	// Run's fixed overhead (bodies slice, closure, one coroutine per body
	// and the driver's resume tables) is a handful of small allocations;
	// 1000 fast-path ops on top must add nothing per op.
	if allocs > 20 {
		t.Fatalf("epoch fast path allocates: %.1f allocs per 1000-op run", allocs)
	}
}

// TestParseEngine covers the flag spellings both ways.
func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"serial", EngineSerial, true},
		{"epoch", EngineEpoch, true},
		{"", EngineSerial, true},
		{"warp", EngineSerial, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if EngineEpoch.String() != "epoch" || EngineSerial.String() != "serial" {
		t.Errorf("Engine.String round-trip broken")
	}
}
