package sim

import (
	"testing"
	"testing/quick"

	"asfstack/internal/mem"
)

// TestDeterminismProperty: for arbitrary seeds and core counts, two
// identical runs produce identical final memory and identical simulated
// durations — the property everything else (reproducible figures,
// debuggability) rests on.
func TestDeterminismProperty(t *testing.T) {
	run := func(seed int64, cores int) (mem.Word, uint64) {
		cfg := Barcelona(cores)
		cfg.Seed = seed
		m := New(cfg)
		m.Mem.Prefault(0, 1<<20)
		bodies := make([]func(*CPU), cores)
		for i := range bodies {
			bodies[i] = func(c *CPU) {
				rng := c.Rand()
				for j := 0; j < 120; j++ {
					a := mem.Addr(rng.Intn(64)) * mem.LineSize
					switch rng.Intn(3) {
					case 0:
						c.Load(a)
					case 1:
						c.FetchAdd(a, 1)
					default:
						c.CAS(a, 0, mem.Word(c.ID()+1))
					}
					c.Exec(rng.Intn(50))
				}
			}
		}
		dur := m.Run(bodies...)
		var sum mem.Word
		for i := 0; i < 64; i++ {
			sum += m.Mem.Load(mem.Addr(i) * mem.LineSize)
		}
		return sum, dur
	}
	prop := func(seed int64, rawCores uint8) bool {
		cores := int(rawCores%8) + 1
		s1, d1 := run(seed, cores)
		s2, d2 := run(seed, cores)
		return s1 == s2 && d1 == d2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestClockMonotonicity: a core's clock never goes backwards across any
// mix of operations.
func TestClockMonotonicity(t *testing.T) {
	m := New(Barcelona(2))
	m.Mem.Prefault(0, 1<<20)
	body := func(c *CPU) {
		last := c.Now()
		rng := c.Rand()
		for i := 0; i < 300; i++ {
			switch rng.Intn(4) {
			case 0:
				c.Load(mem.Addr(rng.Intn(1024)) * 8 * 8)
			case 1:
				c.Store(mem.Addr(rng.Intn(1024))*8*8, 1)
			case 2:
				c.Exec(rng.Intn(20))
			default:
				c.FetchAdd(0x40, 1)
			}
			if now := c.Now(); now < last {
				t.Errorf("clock went backwards: %d -> %d", last, now)
				return
			} else {
				last = now
			}
		}
	}
	m.Run(body, body)
}

// TestSyncClocks: after a sync, all cores share the maximum clock.
func TestSyncClocks(t *testing.T) {
	m := New(Barcelona(3))
	m.Mem.Prefault(0, 1<<16)
	m.Run(
		func(c *CPU) { c.Cycles(100); c.Load(0x40) },
		func(c *CPU) { c.Cycles(90000); c.Load(0x80) },
		func(c *CPU) { c.Load(0xC0) },
	)
	syncAt := m.SyncClocks()
	for i := 0; i < 3; i++ {
		if m.CPU(i).Now() != syncAt {
			t.Fatalf("core %d at %d, sync said %d", i, m.CPU(i).Now(), syncAt)
		}
	}
}
