package sim

import (
	"testing"

	"asfstack/internal/mem"
)

func testMachine(t *testing.T, cores int) *Machine {
	t.Helper()
	cfg := Barcelona(cores)
	m := New(cfg)
	m.Mem.Prefault(0, 1<<20) // first MiB present: tests control faults
	return m
}

func TestSingleCoreLoadStore(t *testing.T) {
	m := testMachine(t, 1)
	var got mem.Word
	m.Run(func(c *CPU) {
		c.Store(0x100, 42)
		got = c.Load(0x100)
	})
	if got != 42 {
		t.Fatalf("load after store = %d, want 42", got)
	}
}

func TestLatencyLevels(t *testing.T) {
	m := testMachine(t, 1)
	var first, second uint64
	m.Run(func(c *CPU) {
		t0 := c.Now()
		c.Load(0x40)
		first = c.Now() - t0
		t1 := c.Now()
		c.Load(0x48) // same line: L1 hit
		second = c.Now() - t1
	})
	cfg := m.Config().Cache
	if first < cfg.MemLat {
		t.Errorf("cold load cost %d, want >= RAM latency %d", first, cfg.MemLat)
	}
	if second != cfg.L1Lat {
		t.Errorf("warm load cost %d, want L1 latency %d", second, cfg.L1Lat)
	}
}

func TestExecBatching(t *testing.T) {
	m := testMachine(t, 1)
	var cycles uint64
	m.Run(func(c *CPU) {
		t0 := c.Now()
		c.Exec(300) // at issue width 3
		cycles = c.Now() - t0
	})
	if cycles != 100 {
		t.Fatalf("Exec(300) at width 3 charged %d cycles, want 100", cycles)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() (mem.Word, uint64) {
		m := testMachine(t, 4)
		body := func(c *CPU) {
			for i := 0; i < 200; i++ {
				c.FetchAdd(0x1000, 1)
				c.Exec(10)
			}
		}
		dur := m.Run(body, body, body, body)
		return m.Mem.Load(0x1000), dur
	}
	v1, d1 := run()
	v2, d2 := run()
	if v1 != 800 {
		t.Fatalf("4x200 atomic increments = %d, want 800", v1)
	}
	if v1 != v2 || d1 != d2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", v1, d1, v2, d2)
	}
}

func TestCoresRunConcurrently(t *testing.T) {
	// Two cores doing equal work should finish at roughly the same
	// simulated time, not serialised one after the other.
	m := testMachine(t, 2)
	ends := make([]uint64, 2)
	body := func(c *CPU) {
		for i := 0; i < 100; i++ {
			c.Store(mem.Addr(0x2000+c.ID()*0x1000+i*8), 1)
			c.Exec(30)
		}
		ends[c.ID()] = c.Now()
	}
	m.Run(body, body)
	if ends[0] == 0 || ends[1] == 0 {
		t.Fatal("a core did not run")
	}
	ratio := float64(ends[0]) / float64(ends[1])
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("cores not overlapped: end times %v", ends)
	}
}

func TestCASSemantics(t *testing.T) {
	m := testMachine(t, 1)
	m.Run(func(c *CPU) {
		c.Store(0x500, 7)
		if prev, ok := c.CAS(0x500, 7, 9); !ok || prev != 7 {
			t.Errorf("CAS(7->9): prev=%d ok=%v", prev, ok)
		}
		if prev, ok := c.CAS(0x500, 7, 11); ok || prev != 9 {
			t.Errorf("failed CAS: prev=%d ok=%v", prev, ok)
		}
	})
}

func TestPageFaultChargesCost(t *testing.T) {
	m := New(Barcelona(1)) // nothing prefaulted
	var cost uint64
	m.Run(func(c *CPU) {
		t0 := c.Now()
		c.Load(0x10000)
		cost = c.Now() - t0
	})
	if cost < m.Config().PageFaultCost {
		t.Fatalf("first touch cost %d, want >= page-fault cost %d",
			cost, m.Config().PageFaultCost)
	}
	if m.Mem.FaultCount() != 1 {
		t.Fatalf("fault count = %d, want 1", m.Mem.FaultCount())
	}
}

func TestTimerInterruptFires(t *testing.T) {
	cfg := Barcelona(1)
	cfg.TimerInterval = 10_000
	m := New(cfg)
	m.Mem.Prefault(0, 1<<16)
	var before, after uint64
	m.Run(func(c *CPU) {
		c.Load(0x40)
		before = c.Now()
		c.Cycles(25_000) // sail past two ticks
		c.Load(0x80)
		after = c.Now()
	})
	// Two interrupts' worth of kernel time should have been charged.
	if after-before < 25_000+2*cfg.InterruptCost {
		t.Fatalf("interrupt cost not charged: delta=%d", after-before)
	}
}

func TestCategoryAccounting(t *testing.T) {
	m := testMachine(t, 1)
	m.Run(func(c *CPU) {
		c.SetCategory(CatTxApp)
		c.Exec(30)
		c.SetCategory(CatTxLoadStore)
		c.Load(0x40)
		c.SetCategory(CatNonInstr)

		b := c.Counters()
		if b[CatTxApp] != 10 {
			t.Errorf("CatTxApp = %d, want 10", b[CatTxApp])
		}
		if b[CatTxLoadStore] == 0 {
			t.Errorf("CatTxLoadStore = 0, want load cost")
		}
	})
}

func TestMoveToAbort(t *testing.T) {
	m := testMachine(t, 1)
	m.Run(func(c *CPU) {
		c.SetCategory(CatTxApp)
		snap := c.Counters()
		c.Exec(300)
		c.Load(0x40)
		c.MoveToAbort(snap)
		b := c.Counters()
		if b[CatTxApp] != 0 {
			t.Errorf("CatTxApp = %d after MoveToAbort, want 0", b[CatTxApp])
		}
		if b[CatAbort] == 0 {
			t.Errorf("CatAbort = 0, want the attempt's cycles")
		}
	})
}

func TestRunTwicePreservesClocks(t *testing.T) {
	m := testMachine(t, 2)
	d1 := m.Run(func(c *CPU) { c.Load(0x40) }, func(c *CPU) { c.Load(0x80) })
	d2 := m.Run(func(c *CPU) { c.Load(0x40) })
	if d2 <= d1 {
		t.Fatalf("second run duration %d should extend the first (%d)", d2, d1)
	}
}

func TestWorkloadPanicPropagates(t *testing.T) {
	m := testMachine(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("workload panic did not propagate")
		}
	}()
	m.Run(
		func(c *CPU) {
			for i := 0; i < 100; i++ {
				c.Load(0x40)
			}
		},
		func(c *CPU) {
			c.Load(0x80)
			panic("boom")
		},
	)
}
