package sim

import (
	"strings"
	"testing"
)

// TestEnumStrings pins the human-readable names used in reports and logs.
func TestEnumStrings(t *testing.T) {
	wantReasons := map[AbortReason]string{
		AbortNone: "none", AbortContention: "contention",
		AbortCapacity: "capacity", AbortPageFault: "page-fault",
		AbortInterrupt: "interrupt", AbortSyscall: "syscall",
		AbortExplicit: "explicit", AbortDisallowed: "disallowed",
		AbortNesting: "nesting",
	}
	for r, want := range wantReasons {
		if r.String() != want {
			t.Errorf("AbortReason(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
	if !strings.Contains(AbortReason(200).String(), "200") {
		t.Error("unknown reason should include its value")
	}

	wantCats := map[Category]string{
		CatNonInstr: "non-instr", CatTxApp: "tx-app",
		CatTxLoadStore: "tx-load/store", CatTxStartCommit: "tx-start/commit",
		CatAbort: "abort/restart",
	}
	for c, want := range wantCats {
		if c.String() != want {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), want)
		}
	}

	for _, k := range []TraceKind{TraceCategory, TraceTxBegin, TraceTxCommit, TraceTxAbort} {
		if k.String() == "" || strings.Contains(k.String(), "?") {
			t.Errorf("TraceKind(%d) has no name", k)
		}
	}
}

func TestAbortErrorMessage(t *testing.T) {
	e := &AbortError{Core: 3, Reason: AbortCapacity}
	if !strings.Contains(e.Error(), "core 3") || !strings.Contains(e.Error(), "capacity") {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{1, 2, 3, 4, 5}
	b := Breakdown{10, 20, 30, 40, 50}
	if got := a.Total(); got != 15 {
		t.Errorf("Total = %d", got)
	}
	sum := a.Add(b)
	if sum[CatTxApp] != 22 {
		t.Errorf("Add = %v", sum)
	}
	if d := b.Sub(a); d[CatAbort] != 45 {
		t.Errorf("Sub = %v", d)
	}
}

func TestCyclesToNanos(t *testing.T) {
	m := New(Barcelona(1))
	if got := m.CyclesToNanos(2_200_000_000); got != 1e9 {
		t.Errorf("one second of cycles = %v ns", got)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-core machine accepted")
		}
	}()
	New(Config{Cores: 0})
}
