package sim

import (
	"fmt"
	"math/rand"

	"asfstack/internal/mem"
)

// SpecUnit is the per-core speculative-execution facility the simulator
// interacts with. Package asf provides the implementation; the simulator
// only needs to know whether a region is active (OS events must abort it)
// and how to abort it asynchronously.
type SpecUnit interface {
	// Active reports whether a speculative region is in flight.
	Active() bool
	// AsyncAbort rolls the region back immediately (restoring memory) and
	// arranges for the core to observe the abort at its next operation.
	// Called either by other cores (conflict, requester-wins) or by the
	// core's own OS events.
	AsyncAbort(reason AbortReason)
}

// CPU is one simulated core: the handle workload and runtime code issue
// operations through. All operations charge simulated cycles; memory
// operations additionally rendezvous with the engine so cross-core effects
// are globally ordered.
type CPU struct {
	id int
	m  *Machine

	// Scheduling. yield suspends this core's coroutine back to the Run
	// driver, which resumes whichever core was granted the turn.
	// leaseKey bounds the core's run-ahead: it may keep the turn while
	// its own packed (clock<<coreBits|id) key stays below it (see sim.go).
	yield     func(struct{}) bool
	leaseKey  uint64
	holding   bool
	checkedIn bool
	running   bool
	everRan   bool

	// Time.
	now       uint64
	pending   uint64 // batched compute cycles not yet folded into now
	instLeft  int    // sub-issue-width instruction remainder
	nextTimer uint64

	// Speculation. pendingBy/pendingAddr carry the causality edge of a
	// posted abort (aborter core and conflicting line) for the flight
	// recorder; NoCore/NoAddr when unknown.
	spec         SpecUnit
	pendingAbort AbortReason
	pendingBy    int
	pendingAddr  mem.Addr

	// abortErr is the scratch AbortError reused by every abort panic on
	// this core. Safe because the recovery handler (asf.Region) copies the
	// fields out before doing anything that could abort again, and each
	// core's panics unwind on the goroutine currently running that core.
	// Reusing it keeps abort delivery allocation-free.
	abortErr AbortError

	// presentPage is the page of this core's most recent access that was
	// known present. Presence is monotonic (pages are installed, never
	// evicted), so a match lets beforeAccess skip the Memory lookup.
	// Initialised to an unaligned sentinel that no page address equals.
	presentPage mem.Addr

	// Epoch-speculative engine state (engine.go); win is nil under the
	// serial engine, making every fast-path test one pointer compare.
	// specGen is the core's speculation generation: bumped by every
	// speculative-unit operation (SpecOp) and by explicit protection
	// releases, it timestamps access windows whose hook-no-op proof
	// depends on unchanged ASF protection state.
	win        []winEntry
	tracker    ReplayTracker
	specGen    uint32
	epochEnd   uint64
	replayFail bool // a replay just failed revalidation (wasted-work attribution)
	estats     EngineStats

	// Accounting.
	cat      Category
	counters [NumCategories]uint64

	// Tracing (see trace.go).
	tracing bool
	trace   []TraceEvent

	rng *rand.Rand

	// jrng drives schedule-noise stalls (Config.SchedNoise); nil when
	// exploration is off, so the hot path pays one pointer test.
	jrng *rand.Rand
	jmax int64
}

func newCPU(m *Machine, id int) *CPU {
	c := &CPU{
		id:          id,
		m:           m,
		presentPage: ^mem.Addr(0), // unaligned: matches no page
		rng:         rand.New(rand.NewSource(m.cfg.Seed*7919 + int64(id)*104729 + 1)),
	}
	if m.cfg.SchedNoise > 0 {
		// A stream separate from rng: exploration must not perturb the
		// workload's own random choices, only the schedule.
		c.jrng = rand.New(rand.NewSource(m.cfg.Seed*31607 + int64(id)*15485863 + 7))
		c.jmax = int64(m.cfg.SchedNoise) + 1
	}
	if m.cfg.TimerInterval > 0 {
		c.nextTimer = m.cfg.TimerInterval
	}
	if m.cfg.Engine == EngineEpoch {
		c.win = make([]winEntry, winSize)
		c.epochEnd = m.cfg.EpochLen
	}
	return c
}

// key packs the core's (clock, id) scheduling priority into one word.
func (c *CPU) key() uint64 { return c.now<<coreBits | uint64(c.id) }

// ID returns the core number.
func (c *CPU) ID() int { return c.id }

// Machine returns the machine this core belongs to.
func (c *CPU) Machine() *Machine { return c.m }

// Now returns the core's local cycle clock (including batched compute).
func (c *CPU) Now() uint64 { return c.now + c.pending }

// Rand returns the core's deterministic PRNG.
func (c *CPU) Rand() *rand.Rand { return c.rng }

// SetSpecUnit installs the core's speculative unit (done once at setup).
func (c *CPU) SetSpecUnit(u SpecUnit) { c.spec = u }

// SetReplayTracker installs the epoch engine's tracking-replay callback
// (done once at setup, by the ASF system). Nil disables re-tracking;
// generation-stale windows then always fall back to the full path.
func (c *CPU) SetReplayTracker(t ReplayTracker) { c.tracker = t }

// SpecUnit returns the installed speculative unit, or nil.
func (c *CPU) SpecUnit() SpecUnit { return c.spec }

// --- turn rendezvous -----------------------------------------------------

// acquire obtains the global turn. On return the core may touch all shared
// simulator state until it finishes the current operation.
//
// The caller has already folded batched compute into the clock
// (flushCycles), so c.key() here is exactly the priority the old central
// engine would have scanned when this core posted its wait event. holding
// is only ever true on entry when an abort panic unwound past endOp — that
// operation deliberately keeps the turn through the next operation.
func (c *CPU) acquire() {
	c.everRan = true
	if c.holding {
		return
	}
	m := c.m
	if !c.checkedIn {
		// First yield of this Run: push our key and park; the driver
		// sweeps every core to this point before granting the minimum.
		c.checkedIn = true
		m.heapPush(c.key())
		c.park()
		c.holding = true
		return
	}
	// The turn is still logically here (hand-off only happens below; no
	// other core has run since our last grant, so the waiting set — and
	// with it the lease — is unchanged). Run-ahead fast path: if our key
	// is still below every waiting core's, the engine would re-pick us
	// anyway; keep the turn with no synchronization at all.
	if c.key() < c.leaseKey {
		c.holding = true
		return
	}
	// Lease expired: join the waiting set, grant the new earliest core,
	// and suspend until the turn rotates back.
	next := m.heapPushPop(c.key())
	if next&coreMask == uint64(c.id) {
		// Defensive: the lease expired, so our key is >= the heap top and
		// the fused push-pop cannot hand our own key back — but renewing
		// the lease is harmless.
		if len(m.heap) > 0 {
			c.leaseKey = m.heap[0]
		} else {
			c.leaseKey = leaseFree
		}
		c.holding = true
		return
	}
	m.grant(next)
	c.park()
	c.holding = true
}

// errRunStopped unwinds a parked coroutine whose Run driver tore down early
// (defensive; never on the normal path, where every body runs to completion).
var errRunStopped = fmt.Errorf("sim: Run stopped")

// park suspends the core's coroutine; the driver resumes the granted core.
func (c *CPU) park() {
	if !c.yield(struct{}{}) {
		panic(errRunStopped)
	}
}

// endOp relinquishes the turn logically. The token stays with the core; the
// next acquire decides — against the clock with compute folded in — whether
// the run-ahead lease still holds or the token must be handed off. No shared
// state may be touched between endOp and the next acquire.
func (c *CPU) endOp() {
	c.holding = false
}

// runBody executes one Run's thread body on the core's coroutine and
// performs finish bookkeeping: the finishing core takes its turn like any
// other yield (so the waiting-set minimum stays well defined), retires
// itself, and passes the token on — or signals Run when it was the last.
func (c *CPU) runBody(body func(*CPU)) {
	defer c.finish()
	body(c)
}

func (c *CPU) finish() {
	r := recover()
	c.holding = false
	c.running = false
	if r == errRunStopped {
		// Defensive teardown by the Run driver: no bookkeeping, the
		// machine is being abandoned.
		return
	}
	c.flushCycles()
	m := c.m
	if r != nil && m.failure == nil {
		m.failure = fmt.Sprintf("core %d: %v", c.id, r)
	}
	m.runnable--
	// A body that performed no globally ordered operation (or died before
	// its first) retires during the startup sweep, before the first grant:
	// it touched no shared state, so it never needs a turn. Otherwise the
	// turn is here — either the lease kept it, or it was never handed off
	// after the last endOp — and retiring passes it to the earliest waiter.
	if m.collecting || m.runnable == 0 {
		return
	}
	m.grant(m.heapPop())
}

// flushCycles folds batched compute into the clock. With schedule noise
// enabled (Config.SchedNoise) it also folds in a deterministic pseudo-random
// stall, perturbing the (clock, id) priority this core rendezvouses with and
// thereby the global interleaving.
func (c *CPU) flushCycles() {
	if c.jrng != nil {
		c.pending += uint64(c.jrng.Int63n(c.jmax))
	}
	c.charge(c.pending)
	c.pending = 0
}

// charge advances the clock and attributes the cycles to the current
// accounting category.
func (c *CPU) charge(cy uint64) {
	c.now += cy
	c.counters[c.cat] += cy
}

// --- compute -----------------------------------------------------------

// Exec charges n machine instructions of straight-line compute, packed at
// the configured issue width. Purely local: no rendezvous.
func (c *CPU) Exec(n int) {
	c.instLeft += n
	w := c.m.cfg.IssueWidth
	c.pending += uint64(c.instLeft / w)
	c.instLeft %= w
}

// Cycles charges raw stall cycles (back-off spins, fixed hardware costs).
func (c *CPU) Cycles(n uint64) { c.pending += n }

// --- OS events ----------------------------------------------------------

// checkOSEvents delivers any timer interrupt that became due. Must be
// called holding the turn. Aborts an active speculative region: all
// privilege-level switches abort ASF regions (§2.2). Small enough to
// inline; the uncommon work lives in deliverTimers.
func (c *CPU) checkOSEvents() {
	if c.nextTimer != 0 && c.now >= c.nextTimer {
		c.deliverTimers()
	}
	if c.pendingAbort != AbortNone {
		c.deliverPendingAbort()
	}
}

// deliverTimers raises every timer interrupt that became due. nextTimer is
// nonzero exactly when Config.TimerInterval is (newCPU, SyncClocks).
func (c *CPU) deliverTimers() {
	for c.now >= c.nextTimer {
		c.nextTimer += c.m.cfg.TimerInterval
		c.charge(c.m.cfg.InterruptCost)
		c.m.Hier.FlushTLB(c.id)
		if c.spec != nil && c.spec.Active() {
			c.spec.AsyncAbort(AbortInterrupt)
		}
	}
}

// deliverPendingAbort raises any abort posted asynchronously (conflict from
// another core, interrupt) as a panic that unwinds to the region's retry
// point, mirroring ASF's rollback to the instruction after SPECULATE.
// The panic deliberately unwinds with the global turn still held: the
// recovery handler (asf.Region) completes rollback against shared state,
// and the turn is released at the end of the next operation.
func (c *CPU) deliverPendingAbort() {
	if c.pendingAbort != AbortNone {
		r, by, addr := c.pendingAbort, c.pendingBy, c.pendingAddr
		c.pendingAbort = AbortNone
		c.pendingBy, c.pendingAddr = NoCore, NoAddr
		c.abortPanic(r, 0, by, addr)
	}
}

// AbortPending reports whether an asynchronous abort awaits delivery.
// Hook code uses this to ignore the tail of an operation whose region was
// rolled back mid-flight.
func (c *CPU) AbortPending() bool { return c.pendingAbort != AbortNone }

// PostAbort records an abort to be delivered at the core's next operation.
// Called by SpecUnit implementations (with the posting core holding the
// global turn).
func (c *CPU) PostAbort(r AbortReason) { c.PostAbortFrom(r, NoCore, NoAddr) }

// PostAbortFrom is PostAbort carrying the causality edge: by is the core
// whose access killed this region and addr the conflicting cache line
// (NoCore/NoAddr when unknown). The edge is observability-only; delivery
// semantics are identical to PostAbort.
func (c *CPU) PostAbortFrom(r AbortReason, by int, addr mem.Addr) {
	c.pendingAbort = r
	c.pendingBy = by
	c.pendingAddr = addr
}

// abortPanic fills the core's scratch AbortError and unwinds with it.
// All abort panics funnel through here so delivery never allocates.
func (c *CPU) abortPanic(r AbortReason, code uint64, by int, addr mem.Addr) {
	c.abortErr = AbortError{Core: c.id, Reason: r, Code: code, By: by, Addr: addr}
	panic(&c.abortErr)
}

// RaiseAbort aborts the current core immediately: used for synchronous
// conditions (capacity overflow, explicit ABORT, colocation exception)
// detected while executing one of the core's own operations.
func (c *CPU) RaiseAbort(r AbortReason, code uint64) {
	c.abortPanic(r, code, NoCore, NoAddr)
}

// RaiseAbortAt is RaiseAbort carrying the cache line the condition was
// detected on (capacity displacement victims), for the flight recorder.
func (c *CPU) RaiseAbortAt(r AbortReason, code uint64, addr mem.Addr) {
	c.abortPanic(r, code, NoCore, addr)
}

// Syscall models entering the kernel for cost extra cycles. System calls
// abort speculative regions (§2.2).
func (c *CPU) Syscall(cost uint64) {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	c.charge(c.m.cfg.SyscallCost + cost)
	if c.spec != nil && c.spec.Active() {
		c.spec.AsyncAbort(AbortSyscall)
		c.deliverPendingAbort()
	}
	c.endOp()
}

// --- memory -------------------------------------------------------------

// Load performs a plain (non-speculative) load.
func (c *CPU) Load(a mem.Addr) mem.Word { return c.access(a, 0) }

// Store performs a plain (non-speculative) store.
func (c *CPU) Store(a mem.Addr, v mem.Word) { c.accessStore(a, v, FWrite) }

// LoadLocked performs a LOCK MOV load: the line joins the speculative
// region's read set. Only the ASF runtime issues these.
func (c *CPU) LoadLocked(a mem.Addr) mem.Word { return c.access(a, FLocked) }

// StoreLocked performs a LOCK MOV store: the line joins the region's write
// set and is versioned for rollback.
func (c *CPU) StoreLocked(a mem.Addr, v mem.Word) { c.accessStore(a, v, FWrite|FLocked) }

// Watch monitors the line containing a without transferring data to the
// program: WATCHR (write=false) or WATCHW (write=true).
func (c *CPU) Watch(a mem.Addr, write bool) {
	f := FLocked | FWatch
	if write {
		f |= FWrite
	}
	if write {
		c.accessStore(a, 0, f) // FWatch: no data is written
	} else {
		c.access(a, f)
	}
}

// CAS is an atomic compare-and-swap on the word at a. Returns the previous
// value and whether the swap happened. Counts as a store for coherence and
// speculation purposes (x86 CMPXCHG always issues a write probe).
func (c *CPU) CAS(a mem.Addr, old, new mem.Word) (prev mem.Word, ok bool) {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	c.beforeAccess(a, true)
	if c.m.hook != nil {
		c.m.hook(c, a, FWrite|FAtomic|FPre)
	}
	res := c.m.Hier.Access(c.id, a, true)
	c.charge(res.Cycles + 4) // locked RMW overhead
	if c.m.hook != nil {
		c.m.hook(c, a, FWrite|FAtomic)
	}
	prev = c.m.Mem.Load(a)
	if prev == old {
		c.m.Mem.Store(a, new)
		ok = true
	}
	c.endOp()
	return prev, ok
}

// FetchAdd atomically adds delta to the word at a, returning the old value.
func (c *CPU) FetchAdd(a mem.Addr, delta mem.Word) mem.Word {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	c.beforeAccess(a, true)
	if c.m.hook != nil {
		c.m.hook(c, a, FWrite|FAtomic|FPre)
	}
	res := c.m.Hier.Access(c.id, a, true)
	c.charge(res.Cycles + 4)
	if c.m.hook != nil {
		c.m.hook(c, a, FWrite|FAtomic)
	}
	old := c.m.Mem.Load(a)
	c.m.Mem.Store(a, old+delta)
	c.endOp()
	return old
}

// Fence charges a full memory barrier.
func (c *CPU) Fence() { c.Cycles(8) }

// IdleHint announces a quiescent state: the core is in a long
// non-transactional wait (a barrier spin, a thread exit) and will start no
// transaction before its next runtime entry point. Runtimes that track
// per-core liveness (the adaptive selector's switch gate) subscribe via
// Machine.SetIdleHook; with no subscriber the hint is free. Safe to call
// from any spin-loop iteration — subscribers make repeats idempotent.
func (c *CPU) IdleHint() {
	if h := c.m.idleHook; h != nil {
		h(c)
	}
}

// SpecOp performs a speculative-unit operation (SPECULATE, COMMIT, ABORT,
// RELEASE bookkeeping) atomically at the current time while holding the
// global turn. Pending asynchronous aborts are delivered first, so a COMMIT
// racing with a conflict abort observes the abort, never a late commit.
//
// Every SpecOp advances the core's speculation generation: region
// transitions are the only events that change this core's own ASF
// protection state, so the bump conservatively expires every access window
// whose replay proof depends on that state (see engine.go).
func (c *CPU) SpecOp(cost uint64, fn func()) {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	c.specGen++
	c.charge(cost)
	fn()
	c.endOp()
}

// BumpSpecGen expires the core's ASF-dependent access windows. Speculative
// units must call it from any protection-state change that does not pass
// through SpecOp (early release of individual lines).
func (c *CPU) BumpSpecGen() { c.specGen++ }

func (c *CPU) access(a mem.Addr, f Flags) mem.Word {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	if c.win != nil {
		if c.now >= c.epochEnd {
			c.closeEpoch()
		}
		if f&FWatch == 0 {
			if v, ok := c.replayLoad(a, f); ok {
				return v
			}
		}
	}
	c.beforeAccess(a, false)
	if c.m.hook != nil {
		c.m.hook(c, a, f|FPre)
	}
	res := c.m.Hier.Access(c.id, a, false)
	c.charge(res.Cycles)
	if c.m.hook != nil {
		c.m.hook(c, a, f)
	}
	var v mem.Word
	if f&FWatch == 0 {
		v = c.m.Mem.Load(a)
		if c.win != nil && c.pendingAbort == AbortNone {
			c.seedWindow(a, f, false, res.Cycles)
		}
	}
	c.endOp()
	return v
}

func (c *CPU) accessStore(a mem.Addr, v mem.Word, f Flags) {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	if c.win != nil {
		if c.now >= c.epochEnd {
			c.closeEpoch()
		}
		if f&FWatch == 0 && c.replayStore(a, v, f) {
			return
		}
	}
	c.beforeAccess(a, true)
	if c.m.hook != nil {
		c.m.hook(c, a, f|FPre) // conflict resolution before line movement
	}
	res := c.m.Hier.Access(c.id, a, true)
	c.charge(res.Cycles)
	if c.m.hook != nil {
		c.m.hook(c, a, f) // tracking & versioning
	}
	if f&FLocked != 0 && c.pendingAbort != AbortNone {
		// The access itself aborted the region mid-instruction (e.g.
		// its refill displaced a speculatively marked line): the
		// speculative store never retires.
		c.endOp()
		return
	}
	if f&FWatch == 0 {
		c.m.Mem.Store(a, v)
		if c.win != nil && c.pendingAbort == AbortNone {
			c.seedWindow(a, f, true, res.Cycles)
		}
	}
	c.endOp()
}

// --- epoch-engine fast path (see engine.go for the soundness argument) ---

// replayLoad attempts to service a load through the core's shadow plane.
// On success the access is complete (turn released) and the loaded word is
// returned; on failure nothing observable has changed and the caller falls
// through to the full path.
func (c *CPU) replayLoad(a mem.Addr, f Flags) (mem.Word, bool) {
	line := a.Line()
	w := &c.win[uint64(line>>mem.LineShift)&winMask]
	cp := capPlainLoad
	if f&FLocked != 0 {
		cp = capLockedLoad
	}
	if w.line != line || w.caps&cp == 0 {
		return 0, false // nothing speculated for this (line, class)
	}
	retrack := false
	if cp&capGenDep != 0 && w.gen != c.specGen {
		// Generation-stale locked load: the tracking hook of the full
		// path would re-insert the line into the (new) active region's
		// read set. With a tracker installed that insertion is replayable
		// directly; without one — or outside a region — fall back.
		if c.tracker == nil || !c.tracker.TrackableLoad() {
			c.mispredict(w)
			return 0, false
		}
		retrack = true
	}
	lat, ok := c.m.Hier.ReplayHit(c.id, w.lref, line, false, w.pref, a.Page())
	if !ok {
		c.mispredictHard(w)
		return 0, false
	}
	c.estats.Hits++
	c.charge(lat)
	if retrack {
		// Refresh the generation for the load capability alone: any store
		// capability was proven under the old region and must re-prove.
		w.caps = (w.caps &^ capGenDep) | capLockedLoad
		w.gen = c.specGen
		// May abort (capacity, ASF1) exactly like the full path's
		// tracking hook — after the latency charge, before the data read.
		c.tracker.TrackLoad(line)
	}
	v := c.m.Mem.Load(a)
	c.endOp()
	return v, true
}

// replayStore is replayLoad's store twin; true means the store retired.
func (c *CPU) replayStore(a mem.Addr, v mem.Word, f Flags) bool {
	line := a.Line()
	w := &c.win[uint64(line>>mem.LineShift)&winMask]
	cp := capPlainStore
	if f&FLocked != 0 {
		cp = capLockedStore
	}
	if w.line != line || w.caps&cp == 0 {
		return false
	}
	// Both store capabilities are generation-gated: a locked window must
	// repeat inside the region that built it, and a plain window was
	// seeded with no region active — a generation match proves that still
	// holds, so the colocation-exception branch of the tracking hook
	// stays dead. A stale window can still replay through the tracker:
	// a locked store by re-inserting into the new region's write set, a
	// plain store by proving no region is active (its hook is then empty;
	// the dirty bit the replay requires already rules out every foreign
	// protection the conflict probe could act on).
	retrack := false
	if w.gen != c.specGen {
		switch {
		case cp == capLockedStore && c.tracker != nil && c.tracker.TrackableStore():
			retrack = true
		case cp == capPlainStore && c.tracker != nil && c.tracker.Idle():
		default:
			c.mispredict(w)
			return false
		}
	}
	lat, ok := c.m.Hier.ReplayHit(c.id, w.lref, line, true, w.pref, a.Page())
	if !ok {
		c.mispredictHard(w)
		return false
	}
	c.estats.Hits++
	c.charge(lat)
	if w.gen != c.specGen {
		w.caps = (w.caps &^ capGenDep) | cp
		w.gen = c.specGen
	}
	if retrack {
		c.tracker.TrackStore(line) // may abort, like the full path's hook
	}
	c.m.Mem.Store(a, v)
	c.endOp()
	return true
}

// mispredict records a generation mispredict: the ASF-dependent
// capabilities are stale but the line references may still be good, so
// only the generation-dependent capabilities are dropped. The full-path
// re-execution that follows attributes its cycles to WastedCycles.
func (c *CPU) mispredict(w *winEntry) {
	c.estats.Rollbacks++
	c.replayFail = true
	w.caps &^= capGenDep
}

// mispredictHard drops the whole window: the line itself moved (evicted,
// invalidated, or flushed), so no capability survives.
func (c *CPU) mispredictHard(w *winEntry) {
	c.estats.Rollbacks++
	c.replayFail = true
	*w = winEntry{}
}

// seedWindow records a completed full-path access in the line's window so
// repeats can replay it, merging its capability into whatever the window
// already proves. Called with the turn held, after the access retired
// without aborting.
func (c *CPU) seedWindow(a mem.Addr, f Flags, write bool, cost uint64) {
	if c.replayFail {
		c.replayFail = false
		c.estats.WastedCycles += cost
	}
	var cp uint8
	switch {
	case !write && f&FLocked == 0:
		cp = capPlainLoad
	case !write:
		cp = capLockedLoad
	case f&FLocked != 0:
		cp = capLockedStore
	default:
		// A plain store inside an active region can raise the colocation
		// exception or hoist the line into the write set on any repeat;
		// only store windows built outside regions are provably no-ops.
		if c.spec != nil && c.spec.Active() {
			return
		}
		cp = capPlainStore
	}
	line := a.Line()
	lref := c.m.Hier.L1Ref(c.id, line)
	if lref == nil {
		return // immediately displaced by its own fill: not replayable
	}
	w := &c.win[uint64(line>>mem.LineShift)&winMask]
	if w.line != line {
		*w = winEntry{line: line}
	}
	if w.gen != c.specGen {
		w.caps &^= capGenDep
		w.gen = c.specGen
	}
	// The line reference is refreshed on every seed: the line may have
	// moved ways since the window was built. The TLB reference is seeded
	// by translated accesses only; stores keep any load-seeded one (live
	// revalidation covers it).
	w.lref = lref
	if !write || c.m.cfg.Cache.StoresUseTLB {
		pref := c.m.Hier.TLB1Ref(c.id, a.Page())
		if pref == nil {
			return
		}
		w.pref = pref
	}
	w.caps |= cp
}

// beforeAccess handles demand paging. A page fault inside a speculative
// region aborts it (ASF aborts on all exceptions); the OS model installs
// the page as part of handling the fault, so the retry proceeds. TLB
// misses, by contrast, never abort (unlike Sun Rock) — they are handled
// silently by the cache model's page walker.
func (c *CPU) beforeAccess(a mem.Addr, write bool) {
	pa := a.Page()
	if pa == c.presentPage {
		return
	}
	if c.m.Mem.Present(a) {
		c.presentPage = pa
		return
	}
	c.m.Mem.EnsurePresent(a)
	c.presentPage = pa
	c.charge(c.m.cfg.PageFaultCost)
	if c.spec != nil && c.spec.Active() {
		c.spec.AsyncAbort(AbortPageFault)
		c.deliverPendingAbort()
	}
	_ = write
}
