package sim

import (
	"math/rand"

	"asfstack/internal/mem"
)

// SpecUnit is the per-core speculative-execution facility the simulator
// interacts with. Package asf provides the implementation; the simulator
// only needs to know whether a region is active (OS events must abort it)
// and how to abort it asynchronously.
type SpecUnit interface {
	// Active reports whether a speculative region is in flight.
	Active() bool
	// AsyncAbort rolls the region back immediately (restoring memory) and
	// arranges for the core to observe the abort at its next operation.
	// Called either by other cores (conflict, requester-wins) or by the
	// core's own OS events.
	AsyncAbort(reason AbortReason)
}

// CPU is one simulated core: the handle workload and runtime code issue
// operations through. All operations charge simulated cycles; memory
// operations additionally rendezvous with the engine so cross-core effects
// are globally ordered.
type CPU struct {
	id int
	m  *Machine

	// Scheduling.
	turn    chan struct{}
	holding bool
	running bool
	everRan bool

	// Time.
	now       uint64
	pending   uint64 // batched compute cycles not yet folded into now
	instLeft  int    // sub-issue-width instruction remainder
	nextTimer uint64

	// Speculation.
	spec         SpecUnit
	pendingAbort AbortReason

	// Accounting.
	cat      Category
	counters [NumCategories]uint64

	// Tracing (see trace.go).
	tracing bool
	trace   []TraceEvent

	rng *rand.Rand
}

func newCPU(m *Machine, id int) *CPU {
	c := &CPU{
		id:   id,
		m:    m,
		turn: make(chan struct{}),
		rng:  rand.New(rand.NewSource(m.cfg.Seed*7919 + int64(id)*104729 + 1)),
	}
	if m.cfg.TimerInterval > 0 {
		c.nextTimer = m.cfg.TimerInterval
	}
	return c
}

// ID returns the core number.
func (c *CPU) ID() int { return c.id }

// Machine returns the machine this core belongs to.
func (c *CPU) Machine() *Machine { return c.m }

// Now returns the core's local cycle clock (including batched compute).
func (c *CPU) Now() uint64 { return c.now + c.pending }

// Rand returns the core's deterministic PRNG.
func (c *CPU) Rand() *rand.Rand { return c.rng }

// SetSpecUnit installs the core's speculative unit (done once at setup).
func (c *CPU) SetSpecUnit(u SpecUnit) { c.spec = u }

// SpecUnit returns the installed speculative unit, or nil.
func (c *CPU) SpecUnit() SpecUnit { return c.spec }

// --- engine rendezvous -------------------------------------------------

// acquire obtains the global turn. On return the core may touch all shared
// simulator state until it finishes the current operation.
func (c *CPU) acquire() {
	c.everRan = true
	if c.holding {
		return
	}
	if c.m.solo == c.id {
		c.holding = true
		return
	}
	c.m.events <- event{core: c.id}
	<-c.turn
	c.holding = true
}

// endOp relinquishes the turn logically; the engine learns about it at the
// next acquire. No shared state may be touched after endOp.
func (c *CPU) endOp() {
	if c.m.solo != c.id {
		c.holding = false
	}
}

// flushCycles folds batched compute into the clock.
func (c *CPU) flushCycles() {
	c.charge(c.pending)
	c.pending = 0
}

// charge advances the clock and attributes the cycles to the current
// accounting category.
func (c *CPU) charge(cy uint64) {
	c.now += cy
	c.counters[c.cat] += cy
}

// --- compute -----------------------------------------------------------

// Exec charges n machine instructions of straight-line compute, packed at
// the configured issue width. Purely local: no rendezvous.
func (c *CPU) Exec(n int) {
	c.instLeft += n
	w := c.m.cfg.IssueWidth
	c.pending += uint64(c.instLeft / w)
	c.instLeft %= w
}

// Cycles charges raw stall cycles (back-off spins, fixed hardware costs).
func (c *CPU) Cycles(n uint64) { c.pending += n }

// --- OS events ----------------------------------------------------------

// checkOSEvents delivers any timer interrupt that became due. Must be
// called holding the turn. Aborts an active speculative region: all
// privilege-level switches abort ASF regions (§2.2).
func (c *CPU) checkOSEvents() {
	for c.m.cfg.TimerInterval > 0 && c.now >= c.nextTimer {
		c.nextTimer += c.m.cfg.TimerInterval
		c.charge(c.m.cfg.InterruptCost)
		c.m.Hier.FlushTLB(c.id)
		if c.spec != nil && c.spec.Active() {
			c.spec.AsyncAbort(AbortInterrupt)
		}
	}
	c.deliverPendingAbort()
}

// deliverPendingAbort raises any abort posted asynchronously (conflict from
// another core, interrupt) as a panic that unwinds to the region's retry
// point, mirroring ASF's rollback to the instruction after SPECULATE.
// The panic deliberately unwinds with the global turn still held: the
// recovery handler (asf.Region) completes rollback against shared state,
// and the turn is released at the end of the next operation.
func (c *CPU) deliverPendingAbort() {
	if c.pendingAbort != AbortNone {
		r := c.pendingAbort
		c.pendingAbort = AbortNone
		panic(&AbortError{Core: c.id, Reason: r})
	}
}

// AbortPending reports whether an asynchronous abort awaits delivery.
// Hook code uses this to ignore the tail of an operation whose region was
// rolled back mid-flight.
func (c *CPU) AbortPending() bool { return c.pendingAbort != AbortNone }

// PostAbort records an abort to be delivered at the core's next operation.
// Called by SpecUnit implementations (with the posting core holding the
// global turn).
func (c *CPU) PostAbort(r AbortReason) { c.pendingAbort = r }

// RaiseAbort aborts the current core immediately: used for synchronous
// conditions (capacity overflow, explicit ABORT, colocation exception)
// detected while executing one of the core's own operations.
func (c *CPU) RaiseAbort(r AbortReason, code uint64) {
	panic(&AbortError{Core: c.id, Reason: r, Code: code})
}

// Syscall models entering the kernel for cost extra cycles. System calls
// abort speculative regions (§2.2).
func (c *CPU) Syscall(cost uint64) {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	c.charge(c.m.cfg.SyscallCost + cost)
	if c.spec != nil && c.spec.Active() {
		c.spec.AsyncAbort(AbortSyscall)
		c.deliverPendingAbort()
	}
	c.endOp()
}

// --- memory -------------------------------------------------------------

// Load performs a plain (non-speculative) load.
func (c *CPU) Load(a mem.Addr) mem.Word { return c.access(a, 0) }

// Store performs a plain (non-speculative) store.
func (c *CPU) Store(a mem.Addr, v mem.Word) { c.accessStore(a, v, FWrite) }

// LoadLocked performs a LOCK MOV load: the line joins the speculative
// region's read set. Only the ASF runtime issues these.
func (c *CPU) LoadLocked(a mem.Addr) mem.Word { return c.access(a, FLocked) }

// StoreLocked performs a LOCK MOV store: the line joins the region's write
// set and is versioned for rollback.
func (c *CPU) StoreLocked(a mem.Addr, v mem.Word) { c.accessStore(a, v, FWrite|FLocked) }

// Watch monitors the line containing a without transferring data to the
// program: WATCHR (write=false) or WATCHW (write=true).
func (c *CPU) Watch(a mem.Addr, write bool) {
	f := FLocked | FWatch
	if write {
		f |= FWrite
	}
	if write {
		c.accessStore(a, 0, f) // FWatch: no data is written
	} else {
		c.access(a, f)
	}
}

// CAS is an atomic compare-and-swap on the word at a. Returns the previous
// value and whether the swap happened. Counts as a store for coherence and
// speculation purposes (x86 CMPXCHG always issues a write probe).
func (c *CPU) CAS(a mem.Addr, old, new mem.Word) (prev mem.Word, ok bool) {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	c.beforeAccess(a, true)
	if c.m.hook != nil {
		c.m.hook(c, a, FWrite|FAtomic|FPre)
	}
	res := c.m.Hier.Access(c.id, a, true)
	c.charge(res.Cycles + 4) // locked RMW overhead
	if c.m.hook != nil {
		c.m.hook(c, a, FWrite|FAtomic)
	}
	prev = c.m.Mem.Load(a)
	if prev == old {
		c.m.Mem.Store(a, new)
		ok = true
	}
	c.endOp()
	return prev, ok
}

// FetchAdd atomically adds delta to the word at a, returning the old value.
func (c *CPU) FetchAdd(a mem.Addr, delta mem.Word) mem.Word {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	c.beforeAccess(a, true)
	if c.m.hook != nil {
		c.m.hook(c, a, FWrite|FAtomic|FPre)
	}
	res := c.m.Hier.Access(c.id, a, true)
	c.charge(res.Cycles + 4)
	if c.m.hook != nil {
		c.m.hook(c, a, FWrite|FAtomic)
	}
	old := c.m.Mem.Load(a)
	c.m.Mem.Store(a, old+delta)
	c.endOp()
	return old
}

// Fence charges a full memory barrier.
func (c *CPU) Fence() { c.Cycles(8) }

// SpecOp performs a speculative-unit operation (SPECULATE, COMMIT, ABORT,
// RELEASE bookkeeping) atomically at the current time while holding the
// global turn. Pending asynchronous aborts are delivered first, so a COMMIT
// racing with a conflict abort observes the abort, never a late commit.
func (c *CPU) SpecOp(cost uint64, fn func()) {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	c.charge(cost)
	fn()
	c.endOp()
}

func (c *CPU) access(a mem.Addr, f Flags) mem.Word {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	c.beforeAccess(a, false)
	if c.m.hook != nil {
		c.m.hook(c, a, f|FPre)
	}
	res := c.m.Hier.Access(c.id, a, false)
	c.charge(res.Cycles)
	if c.m.hook != nil {
		c.m.hook(c, a, f)
	}
	var v mem.Word
	if f&FWatch == 0 {
		v = c.m.Mem.Load(a)
	}
	c.endOp()
	return v
}

func (c *CPU) accessStore(a mem.Addr, v mem.Word, f Flags) {
	c.flushCycles()
	c.acquire()
	c.checkOSEvents()
	c.beforeAccess(a, true)
	if c.m.hook != nil {
		c.m.hook(c, a, f|FPre) // conflict resolution before line movement
	}
	res := c.m.Hier.Access(c.id, a, true)
	c.charge(res.Cycles)
	if c.m.hook != nil {
		c.m.hook(c, a, f) // tracking & versioning
	}
	if f&FLocked != 0 && c.pendingAbort != AbortNone {
		// The access itself aborted the region mid-instruction (e.g.
		// its refill displaced a speculatively marked line): the
		// speculative store never retires.
		c.endOp()
		return
	}
	if f&FWatch == 0 {
		c.m.Mem.Store(a, v)
	}
	c.endOp()
}

// beforeAccess handles demand paging. A page fault inside a speculative
// region aborts it (ASF aborts on all exceptions); the OS model installs
// the page as part of handling the fault, so the retry proceeds. TLB
// misses, by contrast, never abort (unlike Sun Rock) — they are handled
// silently by the cache model's page walker.
func (c *CPU) beforeAccess(a mem.Addr, write bool) {
	if c.m.Mem.Present(a) {
		return
	}
	c.m.Mem.EnsurePresent(a)
	c.charge(c.m.cfg.PageFaultCost)
	if c.spec != nil && c.spec.Active() {
		c.spec.AsyncAbort(AbortPageFault)
		c.deliverPendingAbort()
	}
	_ = write
}
