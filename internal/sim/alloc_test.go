package sim

import (
	"runtime"
	"testing"

	"asfstack/internal/mem"
)

// TestSteadyStateLoadAllocsNothing is the hot-path allocation guard: once
// caches, TLB, directory and demand paging are warm, a CPU.Load served from
// L1 must not allocate at all. A single free-running core performs no
// channel operations (unbounded lease), so the measured window contains
// nothing but the access path itself.
func TestSteadyStateLoadAllocsNothing(t *testing.T) {
	m := New(Barcelona(1))
	defer m.Close()
	m.Mem.Prefault(0, 1<<20)
	const lines = 512
	var allocs uint64
	m.Run(func(c *CPU) {
		// Warm-up: faults taken, lines resident, directory entries and any
		// table growth done.
		for j := 0; j < 2*lines; j++ {
			c.Load(mem.Addr(j % lines * mem.LineSize))
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for j := 0; j < 10_000; j++ {
			c.Load(mem.Addr(j % lines * mem.LineSize))
		}
		runtime.ReadMemStats(&after)
		allocs = after.Mallocs - before.Mallocs
	})
	if allocs != 0 {
		t.Fatalf("steady-state L1-hit loads performed %d heap allocations, want 0", allocs)
	}
}
