package sim

// Tracing reproduces the paper's overhead-analysis methodology (§5): the
// authors annotated the final binaries line-by-line with categories,
// extended the simulator to produce a timed trace, and computed the cycle
// breakdown by offline analysis — "without any interference with the
// benchmark's execution". Here, category switches and transaction
// lifecycle points are recorded as timestamped events when tracing is
// enabled; package trace replays them into a per-category breakdown that
// must agree with the online counters.

// TraceKind tags a trace event.
type TraceKind uint8

const (
	// TraceCategory: the core switched accounting category (Arg is the
	// new Category).
	TraceCategory TraceKind = iota
	// TraceTxBegin: a transaction attempt started.
	TraceTxBegin
	// TraceTxCommit: the attempt committed.
	TraceTxCommit
	// TraceTxAbort: the attempt aborted (Arg is the AbortReason); all
	// cycles since the matching TraceTxBegin are wasted work.
	TraceTxAbort
	// TraceTxFallback: the runtime switched execution path for this
	// transaction (hardware → software, software → serial, hardware →
	// serial). Arg is the tm.TxPath being entered.
	TraceTxFallback
	// TraceCohortSeal: this core sealed its commit cohort (it was the
	// first member to reach the commit point; Arg is the seal order the
	// core drew, 0 for the sealer).
	TraceCohortSeal
	// TraceTurbo: the last member of a sealed cohort entered turbo mode
	// (uninstrumented direct execution; Arg is the core's cohort order).
	TraceTurbo
)

func (k TraceKind) String() string {
	switch k {
	case TraceCategory:
		return "category"
	case TraceTxBegin:
		return "tx-begin"
	case TraceTxCommit:
		return "tx-commit"
	case TraceTxAbort:
		return "tx-abort"
	case TraceTxFallback:
		return "tx-fallback"
	case TraceCohortSeal:
		return "cohort-seal"
	case TraceTurbo:
		return "turbo"
	default:
		return "trace(?)"
	}
}

// TraceEvent is one timestamped event on one core.
type TraceEvent struct {
	Core int
	Time uint64
	Kind TraceKind
	Arg  uint64
}

// EnableTrace starts recording trace events (call before Run).
func (m *Machine) EnableTrace() {
	for _, c := range m.cpus {
		c.tracing = true
	}
}

// TraceEvents drains and returns all recorded events in per-core
// chronological order (cores concatenated).
func (m *Machine) TraceEvents() []TraceEvent {
	var out []TraceEvent
	for _, c := range m.cpus {
		out = append(out, c.trace...)
		c.trace = nil
	}
	return out
}

// Trace records an event at the core's current time (no cycle cost — the
// paper's methodology explicitly avoids online bookkeeping interference).
func (c *CPU) Trace(kind TraceKind, arg uint64) {
	if !c.tracing {
		return
	}
	c.trace = append(c.trace, TraceEvent{Core: c.id, Time: c.Now(), Kind: kind, Arg: arg})
}

// Tracing reports whether trace recording is on.
func (c *CPU) Tracing() bool { return c.tracing }
