// Package tm defines the transactional-memory application binary interface
// (ABI) the rest of the stack is written against, mirroring the role of the
// Intel TM ABI proposal in the paper's stack: the compiler (and our
// workloads, which are written in the post-compiler form) target this
// interface, and TM implementations — ASF-TM, the TinySTM baseline, the
// uninstrumented sequential runtime — provide it. Programs written against
// the ABI run unchanged on any of them, which is exactly the portability
// argument §3.1 makes.
package tm

import (
	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

// Tx is the per-transaction handle: the _ITM_R8/_ITM_W8-style barriers plus
// transactional memory management.
//
// Load and Store are the instrumented accesses for data that may be shared;
// thread-local data (the stack, in compiled code) is accessed directly
// through CPU() — the selective-annotation optimisation DTMC performs.
type Tx interface {
	// Load performs a transactional read of the word at a.
	Load(a mem.Addr) mem.Word
	// Store performs a transactional write of the word at a.
	Store(a mem.Addr, v mem.Word)
	// Alloc returns size bytes of zeroed transactional memory. The
	// allocation is abort-safe: it is rolled back (leaked, in the
	// arena model) if the transaction aborts.
	Alloc(size uint64) mem.Addr
	// AllocLines returns n whole, line-aligned cache lines — the padded
	// allocation used for shared-structure entry points.
	AllocLines(n int) mem.Addr
	// Free releases an allocation at commit time. (The arena allocator
	// makes this a bookkeeping no-op, charged but not reclaimed.)
	Free(a mem.Addr)
	// CPU returns the core, for uninstrumented (thread-local) accesses
	// and compute charging.
	CPU() *sim.CPU
	// Irrevocable reports whether the transaction runs in
	// serial-irrevocable mode (it cannot abort and runs alone).
	Irrevocable() bool
}

// Runtime is a TM implementation: it executes atomic blocks.
type Runtime interface {
	// Name returns the label used in figures ("LLB-256", "STM", ...).
	Name() string
	// Atomic executes body as one transaction on core c, retrying and
	// falling back as the implementation dictates, and returns only
	// after a successful commit.
	Atomic(c *sim.CPU, body func(tx Tx))
	// Stats returns core-level outcome counters.
	//
	// The counters are owned by the core's goroutine and mutated without
	// synchronisation while the machine runs; reading them mid-run is a
	// data race and, worse, an incoherent sample. Callers must read only
	// at a barrier — between sim.Machine.Run calls (sim.Machine.Running
	// reports this; the Stack's snapshot paths enforce it).
	Stats(core int) Stats
	// ResetStats zeroes all counters (start of the measured phase).
	ResetStats()
}

// Stats aggregates transaction outcomes for one core, in the categories of
// the paper's abort breakdown (Fig. 6).
type Stats struct {
	Commits uint64 // committed transactions
	Serial  uint64 // commits that ran in serial-irrevocable mode
	// SWCommits: commits of a *concurrent* software fallback path (the
	// hybrid runtime's non-serial software transactions). Also counted in
	// Commits; pure hardware and pure software runtimes leave this zero.
	SWCommits uint64

	// Aborts per hardware reason (indexed by sim.AbortReason).
	Aborts [sim.NumAbortReasons]uint64
	// MallocAborts: explicit aborts taken to refill the transactional
	// allocator (the paper's "Abort (malloc)" category). These are also
	// counted in Aborts[sim.AbortExplicit].
	MallocAborts uint64
	// STMAborts: software aborts of an STM runtime (conflict, validation
	// failure). Hardware runtimes leave this zero.
	STMAborts uint64
	// SeqAborts: hardware aborts induced by the hybrid runtime's commit-
	// sequence seqlock — regions that found it held at begin (also counted
	// in Aborts[sim.AbortContention]) plus in-flight regions killed by a
	// software commit's seqlock acquisition (attributed to the acquiring
	// core). Non-hybrid runtimes leave this zero.
	SeqAborts uint64
	// Seals: cohorts this core sealed (it was the first member of a batch
	// to reach its commit point, closing admission). Only the Cohorts
	// runtime populates it; the count of seals across cores is the number
	// of commit batches the run executed.
	Seals uint64
}

// TotalAborts sums hardware and software aborts.
func (s *Stats) TotalAborts() uint64 {
	var t uint64
	for _, v := range s.Aborts {
		t += v
	}
	return t + s.STMAborts
}

// Attempts returns commits + aborts (every try counts once).
func (s *Stats) Attempts() uint64 { return s.Commits + s.TotalAborts() }

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Commits += o.Commits
	s.Serial += o.Serial
	s.SWCommits += o.SWCommits
	for i := range s.Aborts {
		s.Aborts[i] += o.Aborts[i]
	}
	s.MallocAborts += o.MallocAborts
	s.STMAborts += o.STMAborts
	s.SeqAborts += o.SeqAborts
	s.Seals += o.Seals
}

// Explicit-abort software codes (carried in rAX by the ABORT instruction).
const (
	// CodeMallocRefill: the transactional allocator ran out of pool and
	// must call the real allocator outside the region.
	CodeMallocRefill uint64 = 0x11A110C
	// CodeSerialRunning: a serial-irrevocable transaction holds the
	// global token; the hardware path cannot proceed.
	CodeSerialRunning uint64 = 0x5E71A1
	// CodeUserRetry: the program requested an explicit retry.
	CodeUserRetry uint64 = 0x7E781
	// CodeSerialRequest: the program (via the compiler's serialize
	// lowering, §3.3) asked to restart in serial-irrevocable mode
	// before an action with no transaction-safe version.
	CodeSerialRequest uint64 = 0x5E71A2
	// CodeSeqLocked: the hybrid runtime's commit-sequence seqlock was held
	// (a software writeback or a serial transaction is in flight); the
	// hardware region must wait it out and retry.
	CodeSeqLocked uint64 = 0x5E90C
)

// CommitHook observes committed transactions in global commit order: core
// is the committing core and serial reports serial-irrevocable mode. The
// litmus conformance suite installs one to reconstruct the serialization
// order a run exhibited.
//
// Runtimes invoke the hook through sim.CPU.SpecOp, i.e. while holding the
// global turn, so invocations are totally ordered and the hook may touch
// shared (host) state without synchronisation — but it must stay cheap, and
// it observes a commit that has already happened (it cannot veto).
type CommitHook func(core int, serial bool)

// HookableRuntime is implemented by runtimes that can notify a CommitHook.
// Passing nil uninstalls the hook. Every runtime in this repository —
// ASF-TM, HyTM, STM, Cohorts, the sequential baseline, and the adaptive
// selector — implements it; it is kept out of Runtime so external
// implementations stay source-compatible.
type HookableRuntime interface {
	SetCommitHook(CommitHook)
}

// Irrevocably is implemented by transactions that can switch to
// serial-irrevocable mode mid-flight — the lowering DTMC emits before
// calling a function with no transactional clone. The switch may restart
// the transaction (work so far is rolled back and re-executed serially).
type Irrevocably interface {
	BecomeIrrevocable()
}

// --- Transaction-level profiling (flight recorder) ----------------------
//
// The types below are the wire format between the runtimes and the
// internal/txprof flight recorder. They live in tm (not txprof) so that
// runtimes depend only on the ABI; txprof implements TxProfiler on top.

// TxEventKind tags one flight-recorder record.
type TxEventKind uint8

const (
	// TxEvBegin: a transaction (first attempt) started.
	TxEvBegin TxEventKind = iota
	// TxEvAbort: an attempt aborted. Cause/Code/Aborter/Addr carry the
	// abort cause and its causality edge; Reads/Writes the attempt's
	// read/write-set sizes at rollback; Cycles the cycles the attempt
	// burned (wasted work).
	TxEvAbort
	// TxEvFallback: the runtime switched execution path (Path is the path
	// being entered: hardware → software, → serial, ...).
	TxEvFallback
	// TxEvCommit: an attempt committed on Path. Reads/Writes are the
	// final set sizes, Cycles the committed attempt's duration.
	TxEvCommit

	NumTxEventKinds = iota
)

func (k TxEventKind) String() string {
	switch k {
	case TxEvBegin:
		return "begin"
	case TxEvAbort:
		return "abort"
	case TxEvFallback:
		return "fallback"
	case TxEvCommit:
		return "commit"
	default:
		return "txev(?)"
	}
}

// TxPath identifies the execution path of a transaction attempt.
type TxPath uint8

const (
	// PathHW: an ASF hardware region.
	PathHW TxPath = iota
	// PathSW: a concurrent software path (HyTM's NOrec fallback, TinySTM,
	// an instrumented cohort member).
	PathSW
	// PathSerial: the serial-irrevocable token.
	PathSerial
	// PathTurbo: a cohort turbo commit (uninstrumented last member).
	PathTurbo

	NumTxPaths = iota
)

func (p TxPath) String() string {
	switch p {
	case PathHW:
		return "hw"
	case PathSW:
		return "sw"
	case PathSerial:
		return "serial"
	case PathTurbo:
		return "turbo"
	default:
		return "path(?)"
	}
}

// TxEvent is one per-transaction flight-recorder record. It is plain data
// (no pointers) so rings of them live in one allocation and recording never
// allocates.
type TxEvent struct {
	// Time is the core-local cycle stamp (sim.CPU.Now) of the event.
	Time uint64 `json:"time"`
	// Kind/Path: what happened and on which execution path.
	Kind TxEventKind `json:"kind"`
	Path TxPath      `json:"path"`
	// Cause/Code: abort cause (TxEvAbort only; Cause is a sim.AbortReason,
	// Code the software abort code — sim.AbortNone/0 for software-runtime
	// aborts, which set STM true instead).
	Cause sim.AbortReason `json:"cause,omitempty"`
	Code  uint64          `json:"code,omitempty"`
	// STM marks a software-runtime abort (validation/locking conflict)
	// rather than a hardware one.
	STM bool `json:"stm,omitempty"`
	// Aborter is the core whose access killed this attempt (the causality
	// edge), sim.NoCore when self-inflicted or unknown.
	Aborter int `json:"aborter"`
	// Addr is the conflicting (or displaced) cache line, sim.NoAddr when
	// unknown.
	Addr mem.Addr `json:"addr"`
	// Reads/Writes are the attempt's read/write-set sizes at the event.
	Reads  uint32 `json:"reads"`
	Writes uint32 `json:"writes"`
	// Cycles is the duration of the attempt that ended with this event
	// (abort: wasted work; commit: useful work); 0 for begin/fallback.
	Cycles uint64 `json:"cycles"`
}

// TxProfiler receives per-transaction flight-recorder events. Record is
// called from the core's own goroutine on the runtime hot path: it must not
// allocate, must not synchronise across cores beyond per-core state, and is
// only ever invoked for the given core from that core's execution.
type TxProfiler interface {
	Record(core int, ev TxEvent)
}

// ProfilableRuntime is implemented by runtimes that can feed a TxProfiler.
// Passing nil uninstalls the profiler (the disabled state: runtimes keep
// one predictable nil-check branch on the hot path and nothing else).
// Like HookableRuntime it is kept out of Runtime so external
// implementations stay source-compatible.
type ProfilableRuntime interface {
	SetProfiler(TxProfiler)
}
