package tm

import (
	"testing"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

func newHeap(t *testing.T) (*sim.Machine, *Heap) {
	t.Helper()
	m := sim.New(sim.Barcelona(2))
	layout := mem.NewLayout(mem.PageSize)
	return m, NewHeap(m.Mem, layout, 2, 8<<20)
}

func TestAllocFastNeedsRefill(t *testing.T) {
	m, h := newHeap(t)
	m.Run(func(c *sim.CPU) {
		if _, ok := h.AllocFast(c, 64, 8); ok {
			t.Error("empty pool satisfied an allocation")
		}
		h.Refill(c, 64)
		a, ok := h.AllocFast(c, 64, 8)
		if !ok {
			t.Fatal("refilled pool failed")
		}
		if !a.WordAligned() {
			t.Fatalf("allocation at %v", a)
		}
	})
}

func TestRefillGrowsToNeed(t *testing.T) {
	m, h := newHeap(t)
	m.Run(func(c *sim.CPU) {
		h.Refill(c, 1<<20) // bigger than one chunk
		if _, ok := h.AllocFast(c, 1<<20, 8); !ok {
			t.Fatal("refill did not cover the requested size")
		}
	})
}

func TestPerCorePoolsIndependent(t *testing.T) {
	m, h := newHeap(t)
	m.Run(
		func(c *sim.CPU) {
			h.Refill(c, 4096)
			if _, ok := h.AllocFast(c, 4096, 8); !ok {
				t.Error("core 0 pool empty after refill")
			}
		},
		func(c *sim.CPU) {
			if _, ok := h.AllocFast(c, 64, 8); ok {
				t.Error("core 1 pool shared core 0's refill")
			}
		},
	)
}

func TestSetupAllocPrefaults(t *testing.T) {
	m, h := newHeap(t)
	a := h.SetupAlloc(0, 3*mem.PageSize, mem.LineSize)
	if !m.Mem.Present(a) || !m.Mem.Present(a+2*mem.PageSize) {
		t.Fatal("setup allocation not prefaulted")
	}
	if a%mem.LineSize != 0 {
		t.Fatalf("alignment: %v", a)
	}
}

func TestDirectTxSemantics(t *testing.T) {
	m, h := newHeap(t)
	m.Mem.Prefault(0, 1<<16)
	m.Run(func(c *sim.CPU) {
		tx := Direct(c, h)
		tx.Store(0x800, 3)
		if got := tx.Load(0x800); got != 3 {
			t.Errorf("direct roundtrip = %d", got)
		}
		if !tx.Irrevocable() {
			t.Error("direct tx must be irrevocable")
		}
		a := tx.Alloc(128)
		tx.Store(a, 1)
		b := tx.AllocLines(2)
		if b%mem.LineSize != 0 {
			t.Errorf("AllocLines alignment: %v", b)
		}
	})
}

// TestFreeAccountsAndValidates: Free takes the freed address; in-arena
// frees are counted, and a foreign (never-allocated) pointer is a caught
// workload bug rather than a silent no-op.
func TestFreeAccountsAndValidates(t *testing.T) {
	m, h := newHeap(t)
	var a mem.Addr
	m.Run(func(c *sim.CPU) {
		h.Refill(c, 128)
		a, _ = h.AllocFast(c, 64, 8)
		h.Free(c, a)
	})
	if h.Frees() != 1 {
		t.Fatalf("frees = %d, want 1", h.Frees())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign free did not panic")
		}
	}()
	m.Run(func(c *sim.CPU) {
		h.Free(c, a+1<<30) // far outside every arena's allocated span
	})
}

// TestFreeRejectsUnallocatedTail: an address inside an arena's region but
// beyond its bump pointer was never handed out and must be rejected too.
func TestFreeRejectsUnallocatedTail(t *testing.T) {
	m, h := newHeap(t)
	defer func() {
		if recover() == nil {
			t.Fatal("free past the bump pointer did not panic")
		}
	}()
	m.Run(func(c *sim.CPU) {
		h.Refill(c, 128)
		a, _ := h.AllocFast(c, 64, 8)
		h.Free(c, a+mem.PageSize) // within the region, never allocated
	})
}
