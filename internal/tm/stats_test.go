package tm

import (
	"testing"

	"asfstack/internal/sim"
)

func TestStatsArithmetic(t *testing.T) {
	var a Stats
	a.Commits = 10
	a.Serial = 2
	a.Aborts[sim.AbortContention] = 3
	a.Aborts[sim.AbortCapacity] = 1
	a.STMAborts = 4
	a.MallocAborts = 1

	if got := a.TotalAborts(); got != 8 {
		t.Errorf("TotalAborts = %d, want 8", got)
	}
	if got := a.Attempts(); got != 18 {
		t.Errorf("Attempts = %d, want 18", got)
	}

	var b Stats
	b.Commits = 5
	b.Aborts[sim.AbortContention] = 2
	b.Add(a)
	if b.Commits != 15 || b.Aborts[sim.AbortContention] != 5 ||
		b.Serial != 2 || b.STMAborts != 4 || b.MallocAborts != 1 {
		t.Errorf("Add result = %+v", b)
	}
}
