package tm

import (
	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

// Direct returns a Tx that performs plain, unsynchronised accesses on c —
// no speculation, no locks, no barriers. It is used for setup phases
// (populating data structures before the measured region begins, the
// paper's "benchmark initialization ... at native speed") and by
// single-threaded baseline code.
//
// It is not a transaction: there is no atomicity and no rollback. Using it
// concurrently with real transactions on the same data is a workload bug.
func Direct(c *sim.CPU, heap *Heap) Tx {
	return &directTx{c: c, heap: heap}
}

type directTx struct {
	c    *sim.CPU
	heap *Heap
}

func (t *directTx) Load(a mem.Addr) mem.Word     { return t.c.Load(a) }
func (t *directTx) Store(a mem.Addr, v mem.Word) { t.c.Store(a, v) }
func (t *directTx) CPU() *sim.CPU                { return t.c }
func (t *directTx) Irrevocable() bool            { return true }
func (t *directTx) Free(a mem.Addr)              { t.heap.Free(t.c, a) }

func (t *directTx) Alloc(size uint64) mem.Addr {
	for {
		a, ok := t.heap.AllocFast(t.c, size, mem.WordSize)
		if ok {
			return a
		}
		t.heap.Refill(t.c, size)
	}
}

func (t *directTx) AllocLines(n int) mem.Addr {
	for {
		a, ok := t.heap.AllocFast(t.c, uint64(n)*mem.LineSize, mem.LineSize)
		if ok {
			return a
		}
		t.heap.Refill(t.c, uint64(n)*mem.LineSize)
	}
}
