package tm

import (
	"fmt"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

// Heap is the memory allocator shared by all runtimes: thread-private
// arenas in simulated memory (the paper selects the most scalable of three
// allocators; thread-private pools are what makes them scale), fronted by a
// per-thread fast pool that the *transactional* allocator bump-allocates
// from without leaving the speculative region.
//
// When the pool is empty the real allocator must run — a system call in the
// worst case — which is not abort-safe inside an ASF region. ASF-TM
// therefore aborts with CodeMallocRefill, refills outside the region, and
// retries: the paper's "Abort (malloc)" events. STM and serial transactions
// refill inline.
//
// Allocations made by aborted transactions are leaked (the pool pointer is
// not rolled back); this is the same robustness-by-leak design the paper's
// custom in-transaction allocator uses, and the arenas are sized for it.
type Heap struct {
	arenas []*mem.Arena
	pool   []uint64 // per core: bytes remaining before a refill is needed
	frees  uint64   // accounted Free calls (validation/accounting only)

	// ChunkSize is how many bytes a refill adds to the fast pool.
	ChunkSize uint64
	// RefillCost is the extra kernel cost of a refill (sbrk/mmap path).
	RefillCost uint64
	// AllocInstr is the instruction cost of a fast-path allocation.
	AllocInstr int
}

// NewHeap carves one arena per core out of layout and prefaults nothing:
// freshly allocated pages fault on first touch, exactly the behaviour that
// produces the hash-set page-fault aborts in Table 1.
func NewHeap(m *mem.Memory, layout *mem.Layout, cores int, bytesPerCore uint64) *Heap {
	h := &Heap{
		ChunkSize:  64 << 10,
		RefillCost: 800,
		AllocInstr: 25,
	}
	for i := 0; i < cores; i++ {
		base, end := layout.Region(bytesPerCore)
		h.arenas = append(h.arenas, mem.NewArena(m, base, end))
	}
	h.pool = make([]uint64, cores)
	return h
}

// AllocFast tries a pool allocation on core c, charging the fast-path cost.
// ok=false means the pool is exhausted: the caller must Refill (outside any
// hardware region) and try again.
func (h *Heap) AllocFast(c *sim.CPU, size, align uint64) (a mem.Addr, ok bool) {
	c.Exec(h.AllocInstr)
	if size > h.pool[c.ID()] {
		return 0, false
	}
	h.pool[c.ID()] -= size
	return h.arenas[c.ID()].Alloc(size, align), true
}

// Refill grows core c's fast pool by at least need bytes, entering the
// kernel. Must not be called inside an ASF speculative region (the system
// call would abort it); runtimes abort first and refill from the begin path.
func (h *Heap) Refill(c *sim.CPU, need uint64) {
	chunk := h.ChunkSize
	for chunk < need {
		chunk *= 2
	}
	c.Syscall(h.RefillCost)
	h.pool[c.ID()] += chunk
}

// Free accounts a transactional free of the block at a. The arena model
// reclaims nothing — allocations from aborted transactions leak by design —
// but the address is validated: freeing memory no arena ever handed out (a
// foreign or never-allocated pointer, e.g. a double free of a recycled
// address in a future reclaiming allocator) is a workload bug and panics.
// Only the bookkeeping cost is charged to the simulated core.
func (h *Heap) Free(c *sim.CPU, a mem.Addr) {
	c.Exec(12)
	if !h.owns(a) {
		panic(fmt.Sprintf("tm: Free(%#x): address outside every arena's allocated span", uint64(a)))
	}
	h.frees++
}

// owns reports whether a lies inside the allocated span of any core's
// arena.
func (h *Heap) owns(a mem.Addr) bool {
	for _, ar := range h.arenas {
		if ar.Owns(a) {
			return true
		}
	}
	return false
}

// Frees returns how many frees have been accounted. A retried transaction
// may free the same address once per attempt; with arenas that never
// recycle addresses this is harmless, so the count can exceed the number
// of distinct freed blocks.
func (h *Heap) Frees() uint64 { return h.frees }

// SetupAlloc allocates without charging simulated cycles — for building
// initial data sets before the measured phase. The touched pages are
// prefaulted so the measured phase does not pay their cold-start faults
// (benchmark initialisation runs natively, outside the simulator, in the
// paper's methodology).
func (h *Heap) SetupAlloc(core int, size, align uint64) mem.Addr {
	a := h.arenas[core].Alloc(size, align)
	h.arenas[core].Prefault(a, size)
	return a
}

// Arena exposes core i's arena (tests and setup code).
func (h *Heap) Arena(i int) *mem.Arena { return h.arenas[i] }
