// Package adaptive is the online runtime selector: a tm.Runtime that owns
// one instance of each concrete runtime — ASF-TM, HyTM, STM, Cohorts — and
// switches the active one at workload phase boundaries, using the per-
// reason abort-attribution counters the stack already keeps (PR 2) plus
// measured commit throughput.
//
// The motivation is the paper's own conclusion inverted: no single TM
// design point wins everywhere (ASF hardware is cheap per-transaction but
// capacity-fragile; software fallbacks trade per-op cost for concurrency —
// the frontier Ravi's "On the Cost of Concurrency in Transactional Memory"
// formalizes). Instead of choosing with a -runtime flag, the selector
// walks the frontier online.
//
// # Switch protocol
//
// All four runtimes are built over the same machine, heap, and (for the
// hardware-backed pair) the same ASF system, so committed state is just
// words in simulated memory — any runtime can pick up where another left
// off, provided no transaction is in flight during the change. Quiescence
// uses a Dekker-style gate in simulated memory (the simulator is
// sequentially consistent). The mode and the switch latch share one word
// (latch = a high bit), and liveness announcement is lazy, so the
// steady-state gate is ONE memory op per transaction — the combined
// mode+latch load:
//
//   - a core entering Atomic marks its per-core live word (only if not
//     already marked — the mark survives across back-to-back
//     transactions), then loads the combined word: latch clear means the
//     load is the current mode and any switcher (whose CAS follows this
//     load in the SC order) will wait on the live word; latch set means a
//     switch is draining — retract the live word and spin;
//   - the live word is retracted only at quiescent points: parking on the
//     latch, performing a switch, or a cooperative idle hint
//     (sim.CPU.IdleHint — called from barrier spins and thread exit) so a
//     draining switch never waits on a core parked in non-transactional
//     code;
//   - the switching core CASes the latch bit into the combined word,
//     waits until every live word is clear — in-flight transactions
//     drain; new arrivals park at the gate; lazily-announced idle cores
//     retract at their next gate check or idle hint — then stores the new
//     mode, which atomically clears the latch and publishes the mode.
//
// # Policy: classify, probe, then exploit
//
// Windows are counted in commits (so window rates are comparable) and
// evaluated under the global turn. The start mode is HyTM — never the
// fastest by much, never catastrophic, serial-free on capacity-bound
// cells, and the richest signal source: its first window yields a commit
// rate, a capacity-abort rate, and the share of commits that needed the
// software fallback, all at once. That window *classifies* the phase and
// picks the probe candidates, instead of probing every runtime blindly:
//
//   - capacity-bound (high capacity-abort rate or software-fallback
//     share): ASF-TM is pruned — its serial-irrevocable convoy is the
//     known loser there, and pruning it is what keeps the cell free of
//     serial commits — and only the software modes (STM, Cohorts) are
//     probed against the incumbent;
//   - hardware-friendly (fallback share below HWFriendly): the software
//     modes cannot beat a hardware path that already commits everything,
//     so only ASF-TM is probed;
//   - mixed: every non-pruned runtime is probed.
//
// Probes are abandoned early: once a candidate has ProbeMin commits and
// its rate sits below AbandonFrac of the best rate measured this round,
// the rest of its window is not worth buying. After the probes the
// selector settles on the highest-rate runtime and re-evaluates only on a
// sustained rate collapse (two consecutive exploitation windows below
// (1-RevertDrop) of the settled rate), which re-opens probing — a phase
// change.
//
// Every switch is recorded ({cycle, from, to, trigger}); E13 prints the
// log for a representative cell.
package adaptive

import (
	"fmt"

	"asfstack/internal/mem"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// Mode indices into the inner-runtime array. The order is fixed; stack
// construction must supply the runtimes in this order.
const (
	ModeASFTM = iota
	ModeHyTM
	ModeSTM
	ModeCohorts
	NumModes
)

// latchBit is the switch latch inside the combined mode word: set while a
// switching core drains the gate, cleared by the store that publishes the
// new mode. Mode indices stay far below it.
const latchBit mem.Word = 1 << 8

// Config tunes the selector.
type Config struct {
	// ProbeWindow is the per-window commit count during probing;
	// ExploitWindow the (larger) count between re-evaluations after
	// settling.
	ProbeWindow   uint64
	ExploitWindow uint64
	// Start is the mode the selector begins in.
	Start int
	// CapacityPrune and SWSharePrune: observing a capacity-abort rate or a
	// software-fallback commit share above these in the starting window
	// removes ASF-TM from the probe candidates (its serial convoy is the
	// known loser on capacity-bound phases, and pruning it keeps the cell
	// serial-free).
	CapacityPrune float64
	SWSharePrune  float64
	// HWFriendly: a starting-window software-fallback share at or below
	// this classifies the phase as hardware-friendly, and only ASF-TM is
	// probed (the software modes cannot beat a hardware path that already
	// commits everything).
	HWFriendly float64
	// ProbeWarmup: the first commits of every probe window are discarded
	// before the rate clock starts — a mode switch leaves the caches cold
	// for the incoming runtime's metadata, and the transient would bias
	// every probe toward whichever candidate happens to run last.
	ProbeWarmup uint64
	// ProbeMin and AbandonFrac: a probe with at least ProbeMin post-warmup
	// commits whose rate is below AbandonFrac of the round's best measured
	// rate is abandoned without finishing its window.
	ProbeMin    uint64
	AbandonFrac float64
	// RevertDrop: an exploitation window whose commit rate falls below
	// (1-RevertDrop) times the settled rate counts toward re-probing; two
	// consecutive such windows trigger it.
	RevertDrop float64
	// ForceRotate is a test knob: ignore the policy and rotate through all
	// modes, one switch per probe window — exercises the switch protocol
	// against every runtime pair under -race.
	ForceRotate bool
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		ProbeWindow:   128,
		ExploitWindow: 1024,
		Start:         ModeHyTM,
		CapacityPrune: 0.05,
		SWSharePrune:  0.30,
		HWFriendly:    0.05,
		ProbeWarmup:   16,
		ProbeMin:      40,
		AbandonFrac:   0.8,
		RevertDrop:    0.30,
	}
}

// Switch is one entry of the selector's decision log. The json tags are the
// machine-readable form the harness embeds in BenchReport cells (E13).
type Switch struct {
	Cycle   uint64 `json:"cycle"`   // simulated time of the switch (switching core's clock)
	From    string `json:"from"`    // runtime labels
	To      string `json:"to"`
	Trigger string `json:"trigger"` // "probe", "settle rate=...", "reprobe", "rotate"
}

// Runtime implements tm.Runtime as a mode-switching wrapper over the four
// concrete runtimes.
type Runtime struct {
	m    *sim.Machine
	cfg  Config
	name string

	inner [NumModes]tm.Runtime

	// Simulated-memory gate: combined mode+latch word and per-core live
	// words (each alone on its line).
	modeAddr mem.Addr
	live     []mem.Addr

	// Per-core host state, each touched only by its own core's goroutine.
	depth     []int        // flat-nesting depth of Atomic calls
	active    []int        // inner runtime a core's current transaction runs on
	announced []bool       // live word currently set (lazy retract)
	prev      [][]tm.Stats // [core][mode] stats snapshot at last window flush

	// Controller state. Only mutated under sim.CPU.SpecOp (the global
	// turn), so plain host fields are race-free.
	ctl controller

	met selMetrics
}

// controller is the windowed policy state (all access under SpecOp).
type controller struct {
	mode     int      // current mode (mirrors the simulated mode word)
	win      tm.Stats // outcome deltas accumulated this window
	winStart uint64   // cycle the window opened (first contributor's clock)
	target   uint64   // commits that close the window

	probing    bool
	warmed     bool      // probe window past its discarded warmup commits?
	classified bool      // has the first window of this round picked candidates?
	cands      []int     // remaining probe candidates (modes)
	probeRate  []float64 // measured rate per mode this probe round (commits/kilocycle)
	pruned     [NumModes]bool

	settledRate float64
	slowWindows int

	switches []Switch
	pending  int // mode to switch to after the window flush; -1 = none
	pendTrig string
}

type selMetrics struct {
	switches    metrics.Counter
	windows     metrics.Counter
	modeCommits [NumModes]metrics.Counter
}

// SetMetrics registers the selector's instruments with reg.
func (r *Runtime) SetMetrics(reg *metrics.Registry) {
	r.met.switches = reg.Counter("adaptive/switches")
	r.met.windows = reg.Counter("adaptive/windows")
	for i := 0; i < NumModes; i++ {
		r.met.modeCommits[i] = reg.Counter("adaptive/commits_" + r.inner[i].Name())
	}
}

// New builds the selector over the four inner runtimes (in Mode order:
// ASF-TM, HyTM, STM, Cohorts), laying its gate out in layout's space.
func New(m *sim.Machine, layout *mem.Layout, name string, inner [NumModes]tm.Runtime) *Runtime {
	cores := m.Config().Cores
	r := &Runtime{
		m:         m,
		cfg:       DefaultConfig(),
		name:      name,
		inner:     inner,
		depth:     make([]int, cores),
		active:    make([]int, cores),
		announced: make([]bool, cores),
		live:      make([]mem.Addr, cores),
		prev:      make([][]tm.Stats, cores),
	}
	base, end := layout.Region(uint64(1+cores) * mem.LineSize)
	m.Mem.Prefault(base, uint64(end-base))
	r.modeAddr = base
	for i := 0; i < cores; i++ {
		r.live[i] = base + mem.Addr(1+i)*mem.LineSize
		r.prev[i] = make([]tm.Stats, NumModes)
	}
	m.Mem.Store(r.modeAddr, mem.Word(r.cfg.Start))
	// Quiescent-state subscription: barrier spins and thread exits call
	// CPU.IdleHint, which retracts the core's lazy live announcement so a
	// draining switch never waits on a core that is parked in
	// non-transactional code.
	m.SetIdleHook(r.retract)
	r.resetController()
	return r
}

// SetConfig replaces the configuration (before any transaction runs).
func (r *Runtime) SetConfig(cfg Config) {
	r.cfg = cfg
	r.m.Mem.Store(r.modeAddr, mem.Word(cfg.Start))
	r.resetController()
}

func (r *Runtime) resetController() {
	r.ctl = controller{
		mode:    int(r.m.Mem.Load(r.modeAddr) &^ latchBit),
		target:  r.cfg.ProbeWindow,
		probing: true,
		pending: -1,
	}
	r.ctl.probeRate = make([]float64, NumModes)
	for i := range r.ctl.probeRate {
		r.ctl.probeRate[i] = -1
	}
	// The starting mode's window doubles as its probe and classifies the
	// phase; the candidate list is built from its abort attribution.
}

// Name implements tm.Runtime.
func (r *Runtime) Name() string { return r.name }

// Stats implements tm.Runtime: the union of the work done across modes.
func (r *Runtime) Stats(core int) tm.Stats {
	var t tm.Stats
	for _, in := range r.inner {
		t.Add(in.Stats(core))
	}
	return t
}

// ResetStats implements tm.Runtime (measurement barrier): inner counters,
// window snapshots, and the decision log all restart.
func (r *Runtime) ResetStats() {
	for _, in := range r.inner {
		in.ResetStats()
	}
	for c := range r.prev {
		for m := range r.prev[c] {
			r.prev[c][m] = tm.Stats{}
		}
	}
	r.resetController()
}

// SetCommitHook implements tm.HookableRuntime by forwarding to every inner
// runtime (whichever is active notifies).
func (r *Runtime) SetCommitHook(h tm.CommitHook) {
	for _, in := range r.inner {
		in.(tm.HookableRuntime).SetCommitHook(h)
	}
}

// SetProfiler implements tm.ProfilableRuntime by forwarding to every inner
// runtime (whichever is active records).
func (r *Runtime) SetProfiler(p tm.TxProfiler) {
	for _, in := range r.inner {
		in.(tm.ProfilableRuntime).SetProfiler(p)
	}
}

// Switches returns the decision log. Barrier-only, like Stats.
func (r *Runtime) Switches() []Switch {
	if r.m.Running() {
		panic("adaptive: Switches while the machine is running; the log is barrier-only")
	}
	return r.ctl.switches
}

// Mode returns the active mode's runtime label. Barrier-only.
func (r *Runtime) Mode() string {
	if r.m.Running() {
		panic("adaptive: Mode while the machine is running")
	}
	return r.inner[int(r.m.Mem.Load(r.modeAddr)&^latchBit)].Name()
}

// Atomic implements tm.Runtime: pass the gate, delegate, account.
func (r *Runtime) Atomic(c *sim.CPU, body func(tx tm.Tx)) {
	id := c.ID()
	if r.depth[id] > 0 {
		// Flat nesting: stay on the runtime executing the outer block.
		r.depth[id]++
		r.inner[r.active[id]].Atomic(c, body)
		r.depth[id]--
		return
	}
	r.depth[id] = 1
	defer func() { r.depth[id] = 0 }()

	// Gate (Dekker with the latch bit of the combined word, sound under
	// the simulator's sequential consistency): announce liveness, then
	// load mode+latch in one op. Latch clear ⇒ any switcher's CAS follows
	// this load in the SC order, so it will wait on our live word and the
	// loaded mode is current for this transaction.
	//
	// The announcement is lazy: the live word stays set across
	// back-to-back transactions (the steady-state gate is the single
	// mode+latch load) and is retracted only when the core parks on the
	// latch, switches, or reaches a quiescent point (barrier spin, thread
	// exit — the sim.CPU.IdleHint subscription). While a core is
	// announced no switch can complete, so its cached announcement can
	// never hide a mode change.
	var mode int
	for {
		if !r.announced[id] {
			c.Store(r.live[id], 1)
			r.announced[id] = true
		}
		w := c.Load(r.modeAddr)
		if w&latchBit == 0 {
			mode = int(w)
			break
		}
		r.retract(c) // back out; a switch is draining
		c.Cycles(200)
	}
	r.active[id] = mode
	r.inner[mode].Atomic(c, body)

	r.afterTx(c, mode)
}

// retract clears the core's live word (idempotent). Any in-progress
// switch can then drain past this core.
func (r *Runtime) retract(c *sim.CPU) {
	id := c.ID()
	if r.announced[id] {
		c.Store(r.live[id], 0)
		r.announced[id] = false
	}
}

// afterTx runs outside the gate after each top-level commit: fold this
// core's outcome delta into the shared window (under the global turn) and,
// if that closed the window with a switch decision, perform the switch.
func (r *Runtime) afterTx(c *sim.CPU, mode int) {
	id := c.ID()
	// The core's own inner stats are safe to read on its own goroutine.
	cur := r.inner[mode].Stats(id)
	delta := cur
	prev := r.prev[id][mode]
	delta.Commits -= prev.Commits
	delta.Serial -= prev.Serial
	delta.SWCommits -= prev.SWCommits
	for i := range delta.Aborts {
		delta.Aborts[i] -= prev.Aborts[i]
	}
	delta.MallocAborts -= prev.MallocAborts
	delta.STMAborts -= prev.STMAborts
	delta.SeqAborts -= prev.SeqAborts
	delta.Seals -= prev.Seals
	r.prev[id][mode] = cur

	target := -1
	trigger := ""
	now := c.Now()
	c.SpecOp(0, func() {
		ctl := &r.ctl
		if ctl.winStart == 0 {
			ctl.winStart = now
		}
		ctl.win.Add(delta)
		r.met.modeCommits[mode].Add(id, delta.Commits)
		if ctl.probing && !ctl.warmed && ctl.win.Commits >= r.cfg.ProbeWarmup {
			// Warmup over: restart the window so the measured rate is the
			// candidate's steady state, not its post-switch cold caches.
			ctl.warmed = true
			ctl.win = tm.Stats{}
			ctl.winStart = 0
			return
		}
		if ctl.pending >= 0 {
			return
		}
		if ctl.win.Commits < ctl.target && !r.abandonProbe(now) {
			return
		}
		target, trigger = r.evaluate(now)
		if target >= 0 {
			ctl.pending = target
			ctl.pendTrig = trigger
		}
	})
	if target >= 0 && target != mode {
		r.performSwitch(c, mode, target, trigger)
	} else if target >= 0 {
		// Same-mode decision (settled on the incumbent): no switch needed,
		// but the decision still goes in the log (From == To).
		now := c.Now()
		c.SpecOp(0, func() {
			r.ctl.pending = -1
			name := r.inner[mode].Name()
			r.ctl.switches = append(r.ctl.switches, Switch{
				Cycle: now, From: name, To: name, Trigger: trigger,
			})
		})
	}
}

// abandonProbe reports whether the current probe window is measurably a
// loser — classification has happened, the window has ProbeMin commits,
// and its rate sits below AbandonFrac of the round's best measurement —
// so the rest of the window is not worth buying. Runs under the global
// turn.
func (r *Runtime) abandonProbe(now uint64) bool {
	ctl := &r.ctl
	if !ctl.probing || !ctl.warmed || !ctl.classified || ctl.win.Commits < r.cfg.ProbeMin ||
		ctl.winStart == 0 || now <= ctl.winStart {
		return false
	}
	best := -1.0
	for _, mr := range ctl.probeRate {
		if mr > best {
			best = mr
		}
	}
	if best <= 0 {
		return false
	}
	rate := float64(ctl.win.Commits) * 1000 / float64(now-ctl.winStart)
	return rate < r.cfg.AbandonFrac*best
}

// evaluate closes a window and decides the next mode. Runs under the
// global turn. Returns -1 to keep going without a decision point.
func (r *Runtime) evaluate(now uint64) (target int, trigger string) {
	ctl := &r.ctl
	r.met.windows.Add(0, 1)
	elapsed := now - ctl.winStart
	if elapsed == 0 {
		elapsed = 1
	}
	rate := float64(ctl.win.Commits) * 1000 / float64(elapsed)
	attempts := float64(ctl.win.Attempts())
	capR := float64(ctl.win.Aborts[sim.AbortCapacity]) / attempts
	swShare := float64(ctl.win.SWCommits) / float64(max(ctl.win.Commits, 1))
	ctl.win = tm.Stats{}
	ctl.winStart = 0
	ctl.warmed = false

	if r.cfg.ForceRotate {
		return (ctl.mode + 1) % NumModes, "rotate"
	}

	if ctl.probing {
		ctl.probeRate[ctl.mode] = rate
		// Abort attribution prunes candidates: a capacity-bound phase
		// (observed from any window) never probes ASF-TM — its serial
		// convoy is the known loser and the only serial source.
		if capR > r.cfg.CapacityPrune || swShare > r.cfg.SWSharePrune {
			ctl.pruned[ModeASFTM] = true
		}
		if !ctl.classified {
			// The round's first window classifies the phase and picks the
			// candidates worth a probe window each.
			ctl.classified = true
			ctl.cands = ctl.cands[:0]
			switch {
			case ctl.pruned[ModeASFTM]:
				// Capacity-bound: only the software modes can compete.
				for _, mode := range [...]int{ModeHyTM, ModeSTM, ModeCohorts} {
					if mode != ctl.mode {
						ctl.cands = append(ctl.cands, mode)
					}
				}
			case ctl.mode == ModeHyTM && swShare <= r.cfg.HWFriendly:
				// Hardware-friendly: the fallback path is idle, so the
				// software modes cannot beat the incumbent — only the
				// cheaper pure-hardware runtime can.
				ctl.cands = append(ctl.cands, ModeASFTM)
			default:
				for mode := 0; mode < NumModes; mode++ {
					if mode != ctl.mode && !ctl.pruned[mode] {
						ctl.cands = append(ctl.cands, mode)
					}
				}
			}
		}
		for len(ctl.cands) > 0 {
			next := ctl.cands[0]
			ctl.cands = ctl.cands[1:]
			if ctl.pruned[next] || ctl.probeRate[next] >= 0 {
				continue
			}
			return next, "probe"
		}
		// Probe round complete: settle on the best measured rate.
		best, bestRate := ctl.mode, rate
		for mode, mr := range ctl.probeRate {
			if mr > bestRate {
				best, bestRate = mode, mr
			}
		}
		ctl.probing = false
		ctl.settledRate = bestRate
		ctl.slowWindows = 0
		ctl.target = r.cfg.ExploitWindow
		return best, fmt.Sprintf("settle rate=%.2f/kcyc", bestRate)
	}

	// Exploiting: watch for a sustained rate collapse (phase change).
	if rate < (1-r.cfg.RevertDrop)*ctl.settledRate {
		ctl.slowWindows++
		if ctl.slowWindows >= 2 {
			// Re-open probing from the current mode. The collapsed rate is
			// the incumbent's entry (and the abandon baseline); the
			// candidate list is rebuilt here, so no re-classification.
			ctl.probing = true
			ctl.classified = true
			ctl.target = r.cfg.ProbeWindow
			for i := range ctl.probeRate {
				ctl.probeRate[i] = -1
			}
			ctl.probeRate[ctl.mode] = rate
			ctl.cands = ctl.cands[:0]
			for mode := 0; mode < NumModes; mode++ {
				if mode != ctl.mode && !ctl.pruned[mode] {
					ctl.cands = append(ctl.cands, mode)
				}
			}
			ctl.slowWindows = 0
			if len(ctl.cands) > 0 {
				next := ctl.cands[0]
				ctl.cands = ctl.cands[1:]
				return next, "reprobe"
			}
		}
	} else {
		ctl.slowWindows = 0
		// Track slow drift so a gradually improving phase re-anchors.
		if rate > ctl.settledRate {
			ctl.settledRate = rate
		}
	}
	return -1, ""
}

// performSwitch executes the quiescent mode change: take the latch, drain
// live transactions, flip the mode word, release, log.
func (r *Runtime) performSwitch(c *sim.CPU, from, to int, trigger string) {
	id := c.ID()
	r.retract(c) // the drain below must not wait on our own live word
	if _, ok := c.CAS(r.modeAddr, mem.Word(from), mem.Word(from)|latchBit); !ok {
		// Another core is mid-switch; our decision is stale. Drop it.
		c.SpecOp(0, func() { r.ctl.pending = -1 })
		return
	}
	for _, la := range r.live {
		for c.Load(la) != 0 {
			c.Cycles(200)
		}
	}
	// Publishes the mode and clears the latch in one store.
	c.Store(r.modeAddr, mem.Word(to))
	now := c.Now()
	c.SpecOp(0, func() {
		r.ctl.mode = to
		r.ctl.pending = -1
		if r.ctl.probing {
			r.ctl.target = r.cfg.ProbeWindow
		}
		r.ctl.switches = append(r.ctl.switches, Switch{
			Cycle:   now,
			From:    r.inner[from].Name(),
			To:      r.inner[to].Name(),
			Trigger: trigger,
		})
	})
	r.met.switches.Inc(id)
}
