package adaptive_test

import (
	"testing"

	"asfstack"
	"asfstack/internal/adaptive"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

func newStack(t *testing.T, cores int) *asfstack.Stack {
	t.Helper()
	return asfstack.New(asfstack.Options{Cores: cores, Runtime: "Adaptive-8"})
}

// TestAtomicCounterAcrossModes: correctness of the shared-state handoff —
// contended increments must survive whatever mode the selector picks.
func TestAtomicCounterAcrossModes(t *testing.T) {
	s := newStack(t, 4)
	ctr := s.AllocShared(8)
	const rounds = 300
	s.Parallel(4, func(c *sim.CPU) {
		for i := 0; i < rounds; i++ {
			s.Atomic(c, func(tx tm.Tx) {
				tx.Store(ctr, tx.Load(ctr)+1)
			})
		}
	})
	if got := s.M.Mem.Load(ctr); got != 4*rounds {
		t.Fatalf("counter = %d, want %d (lost updates across a mode switch)", got, 4*rounds)
	}
	if total := s.TotalStats(); total.Commits != 4*rounds {
		t.Fatalf("commits = %d, want %d", total.Commits, 4*rounds)
	}
}

// TestForceRotateSwitchesThroughAllRuntimes drives the switch protocol
// through every mode pair repeatedly (run with -race: the quiescent gate is
// what keeps inner-runtime host state single-owner).
func TestForceRotateSwitchesThroughAllRuntimes(t *testing.T) {
	s := newStack(t, 4)
	cfg := adaptive.DefaultConfig()
	cfg.ForceRotate = true
	cfg.ProbeWindow = 40
	s.ADAPT.SetConfig(cfg)
	ctr := s.AllocShared(8)
	const rounds = 400
	s.Parallel(4, func(c *sim.CPU) {
		for i := 0; i < rounds; i++ {
			s.Atomic(c, func(tx tm.Tx) {
				tx.Store(ctr, tx.Load(ctr)+1)
				tx.Store(ctr+mem.Addr(8+8*c.ID()), mem.Word(i))
			})
		}
	})
	if got := s.M.Mem.Load(ctr); got != 4*rounds {
		t.Fatalf("counter = %d, want %d", got, 4*rounds)
	}
	sw := s.ADAPT.Switches()
	if len(sw) < adaptive.NumModes {
		t.Fatalf("switches = %d, want at least one full rotation (%d)", len(sw), adaptive.NumModes)
	}
	seen := map[string]bool{}
	for _, e := range sw {
		if e.Trigger != "rotate" {
			t.Fatalf("trigger = %q, want rotate", e.Trigger)
		}
		seen[e.To] = true
	}
	for _, name := range []string{"LLB-8", "HyTM-8", "STM", "Cohorts-turbo"} {
		if !seen[name] {
			t.Fatalf("rotation never reached %s (saw %v)", name, sw)
		}
	}
}

// TestProbeSettlesAndLogs: the default policy must run its probe round and
// settle, and the decision log must record probes before the settle.
func TestProbeSettlesAndLogs(t *testing.T) {
	s := newStack(t, 4)
	cfg := adaptive.DefaultConfig()
	cfg.ProbeWindow = 50
	cfg.ExploitWindow = 200
	s.ADAPT.SetConfig(cfg)
	ctr := s.AllocShared(8)
	s.Parallel(4, func(c *sim.CPU) {
		for i := 0; i < 500; i++ {
			s.Atomic(c, func(tx tm.Tx) {
				tx.Store(ctr, tx.Load(ctr)+1)
			})
		}
	})
	sw := s.ADAPT.Switches()
	if len(sw) == 0 {
		t.Fatal("no switches logged; probe round never ran")
	}
	settled := false
	for _, e := range sw {
		if e.Trigger == "probe" || e.Trigger == "reprobe" {
			continue
		}
		settled = true
	}
	if !settled {
		t.Fatalf("no settle decision in log: %v", sw)
	}
}

// TestCapacityPhasePrunesASFTM: on a capacity-bound workload (write sets
// far beyond the LLB-8), the selector must never probe ASF-TM, so the cell
// finishes with zero serial-irrevocable entries — the E13 acceptance
// criterion in miniature.
func TestCapacityPhasePrunesASFTM(t *testing.T) {
	s := newStack(t, 4)
	cfg := adaptive.DefaultConfig()
	cfg.ProbeWindow = 30
	cfg.ExploitWindow = 100
	s.ADAPT.SetConfig(cfg)
	base := s.AllocShared(64 * mem.LineSize)
	s.Parallel(4, func(c *sim.CPU) {
		for i := 0; i < 120; i++ {
			s.Atomic(c, func(tx tm.Tx) {
				for j := 0; j < 20; j++ { // 20 lines: overflows LLB-8
					a := base + mem.Addr((c.ID()*20+j)&63)*mem.LineSize
					tx.Store(a, tx.Load(a)+1)
				}
			})
		}
	})
	total := s.TotalStats()
	if total.Serial != 0 {
		t.Fatalf("serial entries = %d on a capacity-bound cell, want 0 (ASF-TM must be pruned)", total.Serial)
	}
	for _, e := range s.ADAPT.Switches() {
		if e.To == "LLB-8" {
			t.Fatalf("selector switched to ASF-TM on a capacity-bound phase: %v", e)
		}
	}
}

// TestNestedAtomicStaysOnOneRuntime: flat nesting must not re-enter the
// gate (a switch between outer and inner would deadlock or split the
// transaction across runtimes).
func TestNestedAtomicStaysOnOneRuntime(t *testing.T) {
	s := newStack(t, 2)
	a := s.AllocShared(64)
	s.Parallel(2, func(c *sim.CPU) {
		for i := 0; i < 50; i++ {
			s.Atomic(c, func(tx tm.Tx) {
				tx.Store(a, tx.Load(a)+1)
				s.Atomic(c, func(inner tm.Tx) {
					inner.Store(a+8, inner.Load(a+8)+1)
				})
			})
		}
	})
	if got := s.M.Mem.Load(a); got != 100 {
		t.Fatalf("outer counter = %d, want 100", got)
	}
	if got := s.M.Mem.Load(a + 8); got != 100 {
		t.Fatalf("inner counter = %d, want 100", got)
	}
}

// TestDeterminism: the selector's decisions are part of the simulation and
// must replay exactly.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, tm.Stats, int) {
		s := newStack(t, 4)
		cfg := adaptive.DefaultConfig()
		cfg.ProbeWindow = 40
		cfg.ExploitWindow = 160
		s.ADAPT.SetConfig(cfg)
		ctr := s.AllocShared(8)
		d := s.Parallel(4, func(c *sim.CPU) {
			for i := 0; i < 300; i++ {
				s.Atomic(c, func(tx tm.Tx) {
					tx.Store(ctr, tx.Load(ctr)+1)
				})
			}
		})
		return d, s.TotalStats(), len(s.ADAPT.Switches())
	}
	d1, s1, n1 := run()
	d2, s2, n2 := run()
	if d1 != d2 || s1 != s2 || n1 != n2 {
		t.Fatalf("nondeterministic: %d/%+v/%d vs %d/%+v/%d", d1, s1, n1, d2, s2, n2)
	}
}

// TestStatsAggregateAcrossModes: Stats must report the union of work done
// on every inner runtime, and ResetStats must clear all of them.
func TestStatsAggregateAcrossModes(t *testing.T) {
	s := newStack(t, 2)
	cfg := adaptive.DefaultConfig()
	cfg.ForceRotate = true
	cfg.ProbeWindow = 20
	s.ADAPT.SetConfig(cfg)
	ctr := s.AllocShared(8)
	body := func(c *sim.CPU) {
		for i := 0; i < 150; i++ {
			s.Atomic(c, func(tx tm.Tx) {
				tx.Store(ctr, tx.Load(ctr)+1)
			})
		}
	}
	s.Parallel(2, body)
	if total := s.TotalStats(); total.Commits != 300 {
		t.Fatalf("commits = %d, want 300 across modes", total.Commits)
	}
	s.RT.ResetStats()
	if total := s.TotalStats(); total.Commits != 0 {
		t.Fatalf("commits = %d after ResetStats, want 0", total.Commits)
	}
}
