package stamp

import (
	"fmt"

	"asfstack"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/txlib"
)

// labyrinth routes paths through a shared 3-D grid with Lee's algorithm.
// Each route is ONE transaction that breadth-first-expands through the
// grid (transactional reads of every visited cell) and claims the found
// path (transactional writes) — the huge read and write sets the paper
// calls out: labyrinth overflows every ASF capacity, runs in
// serial-irrevocable mode almost always, does not scale, and still beats
// the STM because serial execution pays no barrier costs (Fig. 4).
type labyrinth struct {
	x, y, z int
	routes  int

	grid  wordArray // x*y*z cells; 0 = free, else 1+route id
	workQ *txlib.Queue
	// done[i]: 0 = unrouted, 1 = routed, 2 = unroutable (Go-visible
	// only through simulated memory)
	done    wordArray
	lengths wordArray // cells claimed per route

	src, dst []int // cell indices per route
}

func newLabyrinth(scale float64) *labyrinth {
	g := &labyrinth{x: 48, y: 48, z: 3}
	g.routes = int(24 * scale)
	if g.routes < 2 {
		g.routes = 2
	}
	return g
}

func (l *labyrinth) Name() string { return "labyrinth" }

func (l *labyrinth) cells() int { return l.x * l.y * l.z }

func (l *labyrinth) Setup(s *asfstack.Stack, tx tm.Tx, threads int) {
	rng := tx.CPU().Rand()
	l.grid = allocArray(tx, l.cells())
	l.workQ = txlib.NewQueue(tx)
	l.done = allocArray(tx, l.routes)
	l.lengths = allocArray(tx, l.routes)

	used := map[int]bool{}
	pick := func() int {
		for {
			c := rng.Intn(l.cells())
			if !used[c] {
				used[c] = true
				return c
			}
		}
	}
	for i := 0; i < l.routes; i++ {
		l.src = append(l.src, pick())
		l.dst = append(l.dst, pick())
		l.workQ.Push(tx, mem.Word(i))
	}
}

// neighbors appends the orthogonal neighbours of cell c to buf.
func (l *labyrinth) neighbors(cell int, buf []int) []int {
	cx := cell % l.x
	cy := (cell / l.x) % l.y
	cz := cell / (l.x * l.y)
	if cx > 0 {
		buf = append(buf, cell-1)
	}
	if cx < l.x-1 {
		buf = append(buf, cell+1)
	}
	if cy > 0 {
		buf = append(buf, cell-l.x)
	}
	if cy < l.y-1 {
		buf = append(buf, cell+l.x)
	}
	if cz > 0 {
		buf = append(buf, cell-l.x*l.y)
	}
	if cz < l.z-1 {
		buf = append(buf, cell+l.x*l.y)
	}
	return buf
}

func (l *labyrinth) Thread(s *asfstack.Stack, c *sim.CPU, tid, threads int) {
	dist := make([]int32, l.cells())
	for {
		var route mem.Word
		ok := false
		s.Atomic(c, func(tx tm.Tx) { route, ok = l.workQ.Pop(tx) })
		if !ok {
			return
		}
		r := int(route)
		routed := false
		s.Atomic(c, func(tx tm.Tx) {
			routed = l.route(tx, r, dist)
		})
		status := mem.Word(2)
		if routed {
			status = 1
		}
		s.Atomic(c, func(tx tm.Tx) { tx.Store(l.done.addr(r), status) })
	}
}

// route performs the transactional Lee expansion and path claim for route
// r. dist is thread-private scratch.
func (l *labyrinth) route(tx tm.Tx, r int, dist []int32) bool {
	c := tx.CPU()
	for i := range dist {
		dist[i] = -1
	}
	c.Exec(len(dist) / 4) // memset

	src, dst := l.src[r], l.dst[r]
	// Endpoints must still be free (earlier routes may have claimed them).
	if tx.Load(l.grid.addr(src)) != 0 || tx.Load(l.grid.addr(dst)) != 0 {
		return false
	}

	frontier := []int{src}
	dist[src] = 0
	var nbuf [6]int
	found := false
	for len(frontier) > 0 && !found {
		var next []int
		for _, cell := range frontier {
			for _, nb := range l.neighbors(cell, nbuf[:0]) {
				c.Exec(5)
				if dist[nb] >= 0 {
					continue
				}
				if nb == dst {
					dist[nb] = dist[cell] + 1
					found = true
					break
				}
				// Transactional read: the whole explored region
				// joins the read set.
				if tx.Load(l.grid.addr(nb)) != 0 {
					dist[nb] = -2 // occupied
					continue
				}
				dist[nb] = dist[cell] + 1
				next = append(next, nb)
			}
			if found {
				break
			}
		}
		frontier = next
	}
	if !found {
		return false
	}

	// Backtrack from dst, claiming cells.
	id := mem.Word(r + 1)
	cur := dst
	length := mem.Word(0)
	for {
		tx.Store(l.grid.addr(cur), id)
		length++
		if cur == src {
			break
		}
		stepped := false
		for _, nb := range l.neighbors(cur, nbuf[:0]) {
			c.Exec(4)
			if dist[nb] == dist[cur]-1 && dist[nb] >= 0 {
				cur = nb
				stepped = true
				break
			}
		}
		if !stepped {
			panic("labyrinth: backtrack lost the wavefront")
		}
	}
	tx.Store(l.lengths.addr(r), length)
	return true
}

func (l *labyrinth) Validate(tx tm.Tx) error {
	// Count claimed cells per route id and compare with recorded lengths;
	// every route must be marked routed or unroutable.
	counts := make(map[int]int)
	for i := 0; i < l.cells(); i++ {
		v := int(tx.Load(l.grid.addr(i)))
		if v != 0 {
			counts[v-1]++
		}
	}
	routedCount := 0
	for r := 0; r < l.routes; r++ {
		st := tx.Load(l.done.addr(r))
		switch st {
		case 1:
			routedCount++
			want := int(tx.Load(l.lengths.addr(r)))
			if counts[r] != want {
				return fmt.Errorf("route %d claims %d cells, recorded %d", r, counts[r], want)
			}
			if tx.Load(l.grid.addr(l.src[r])) != mem.Word(r+1) ||
				tx.Load(l.grid.addr(l.dst[r])) != mem.Word(r+1) {
				return fmt.Errorf("route %d endpoints not claimed by it", r)
			}
		case 2:
			if counts[r] != 0 {
				return fmt.Errorf("failed route %d owns %d cells", r, counts[r])
			}
		default:
			return fmt.Errorf("route %d never finished (status %d)", r, st)
		}
	}
	if routedCount == 0 {
		return fmt.Errorf("no route succeeded")
	}
	return nil
}
