package stamp

import (
	"fmt"

	"asfstack"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// ssca2 is kernel 1 of the SSCA#2 graph benchmark: constructing the
// adjacency structure of a directed multigraph from a randomly ordered
// edge list. Each edge append is one tiny transaction on the target node's
// degree counter and adjacency slot — small transactions, low conflict
// probability, which is why ssca2 has the lowest abort rate of the suite
// (Fig. 6) and scales almost linearly (Fig. 4).
type ssca2 struct {
	nodes, edges int
	capacity     int

	edgeArr wordArray // packed (u<<32 | v), read-only input
	degree  wordArray // per-node degree (one line each: padded)
	adj     wordArray // nodes × capacity adjacency slots

	overflow []int // Go-side per-thread dropped-edge counts
}

func newSSCA2(scale float64) *ssca2 {
	n := int(2048 * scale)
	return &ssca2{nodes: n, edges: 3 * n, capacity: 32}
}

func (g *ssca2) Name() string { return "ssca2" }

func (g *ssca2) Setup(s *asfstack.Stack, tx tm.Tx, threads int) {
	rng := tx.CPU().Rand()
	g.edgeArr = allocArray(tx, g.edges)
	for i := 0; i < g.edges; i++ {
		u := rng.Intn(g.nodes)
		v := rng.Intn(g.nodes)
		tx.Store(g.edgeArr.addr(i), mem.Word(uint64(u)<<32|uint64(v)))
	}
	// Padded degree counters: one line per node, like the padded entry
	// points the paper adds to the main data structures.
	g.degree = allocArray(tx, g.nodes*mem.WordsPerLine)
	g.adj = allocArray(tx, g.nodes*g.capacity)
	g.overflow = make([]int, threads)
}

func (g *ssca2) degreeAddr(u int) mem.Addr { return g.degree.addr(u * mem.WordsPerLine) }

func (g *ssca2) Thread(s *asfstack.Stack, c *sim.CPU, tid, threads int) {
	lo, hi := span(g.edges, tid, threads)
	for i := lo; i < hi; i++ {
		e := uint64(c.Load(g.edgeArr.addr(i))) // read-only input: plain
		u, v := int(e>>32), int(e&0xFFFFFFFF)
		dropped := false // set by the last (committed) execution of the body
		s.Atomic(c, func(tx tm.Tx) {
			d := tx.Load(g.degreeAddr(u))
			if int(d) >= g.capacity {
				dropped = true
				return
			}
			dropped = false
			tx.Store(g.adj.addr(u*g.capacity+int(d)), mem.Word(v))
			tx.Store(g.degreeAddr(u), d+1)
		})
		if dropped {
			g.overflow[tid]++
		}
	}
}

func (g *ssca2) Validate(tx tm.Tx) error {
	var total int
	for u := 0; u < g.nodes; u++ {
		total += int(tx.Load(g.degreeAddr(u)))
	}
	dropped := 0
	for _, d := range g.overflow {
		dropped += d
	}
	if total+dropped != g.edges {
		return fmt.Errorf("adjacency entries %d + dropped %d != edges %d",
			total, dropped, g.edges)
	}
	return nil
}
