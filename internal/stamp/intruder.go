package stamp

import (
	"fmt"

	"asfstack"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/txlib"
)

// intruder is signature-based network intrusion detection: threads pull
// fragmented packets off a shared queue (capture), reassemble flows in a
// shared dictionary (reassembly — both transactional), and scan completed
// flows locally (detection). The two shared queues and the reassembly map
// make this the most contended application in the suite, matching its
// 30-40% abort rates in Fig. 6.
type intruder struct {
	flows    int
	maxFrags int

	packetQ  *txlib.Queue
	flowMap  *txlib.HashMap // flowID -> assembly record address
	decodedQ *txlib.Queue
	handled  wordArray // per flow: 1 once detection ran
	attacks  mem.Addr  // shared attack counter (one line)

	fragTotal  []int // Go-side: fragments per flow (validation)
	attackFlow []bool
}

// assembly record layout: word 0 = fragments seen, word 1 = total.
const asmSeen, asmTotal = 0, 1

func newIntruder(scale float64) *intruder {
	return &intruder{flows: int(384 * scale), maxFrags: 4}
}

func (in *intruder) Name() string { return "intruder" }

func (in *intruder) Setup(s *asfstack.Stack, tx tm.Tx, threads int) {
	rng := tx.CPU().Rand()
	in.packetQ = txlib.NewQueue(tx)
	in.flowMap = txlib.NewHashMap(tx, 10)
	in.decodedQ = txlib.NewQueue(tx)
	in.handled = allocArray(tx, in.flows)
	in.attacks = tx.AllocLines(1)

	// Build the fragment trace: every flow split into 1..maxFrags
	// fragments, all shuffled together (a packet is flowID<<8 | nfrags).
	in.fragTotal = make([]int, in.flows)
	in.attackFlow = make([]bool, in.flows)
	var trace []mem.Word
	for f := 0; f < in.flows; f++ {
		n := 1 + rng.Intn(in.maxFrags)
		in.fragTotal[f] = n
		in.attackFlow[f] = rng.Intn(10) == 0 // ~10% attack signatures
		for i := 0; i < n; i++ {
			trace = append(trace, mem.Word(uint64(f)<<8|uint64(n)))
		}
	}
	rng.Shuffle(len(trace), func(i, j int) { trace[i], trace[j] = trace[j], trace[i] })
	for _, p := range trace {
		in.packetQ.Push(tx, p)
	}
}

func (in *intruder) Thread(s *asfstack.Stack, c *sim.CPU, tid, threads int) {
	for {
		// Capture: one transaction per packet.
		var pkt mem.Word
		havePkt := false
		s.Atomic(c, func(tx tm.Tx) {
			pkt, havePkt = in.packetQ.Pop(tx)
		})
		if havePkt {
			flow := int(pkt >> 8)
			total := int(pkt & 0xFF)
			// Reassembly: find-or-create the flow record, bump it,
			// and hand complete flows to the decoded queue.
			s.Atomic(c, func(tx tm.Tx) {
				rec, ok := in.flowMap.Get(tx, uint64(flow))
				if !ok {
					r := tx.Alloc(16)
					tx.Store(r+asmSeen*8, 0)
					tx.Store(r+asmTotal*8, mem.Word(total))
					in.flowMap.Put(tx, uint64(flow), mem.Word(r))
					rec = mem.Word(r)
				}
				r := mem.Addr(rec)
				seen := tx.Load(r+asmSeen*8) + 1
				tx.Store(r+asmSeen*8, seen)
				if seen == tx.Load(r+asmTotal*8) {
					in.flowMap.Remove(tx, uint64(flow))
					in.decodedQ.Push(tx, mem.Word(flow))
				}
			})
		}

		// Detection: drain one decoded flow if available.
		var flow mem.Word
		haveFlow := false
		s.Atomic(c, func(tx tm.Tx) {
			flow, haveFlow = in.decodedQ.Pop(tx)
		})
		if haveFlow {
			f := int(flow)
			// Signature scan is thread-local compute over the payload.
			c.Exec(60 * in.fragTotal[f])
			isAttack := in.attackFlow[f]
			s.Atomic(c, func(tx tm.Tx) {
				tx.Store(in.handled.addr(f), tx.Load(in.handled.addr(f))+1)
				if isAttack {
					tx.Store(in.attacks, tx.Load(in.attacks)+1)
				}
			})
		}

		if !havePkt && !haveFlow {
			return // both queues drained
		}
	}
}

func (in *intruder) Validate(tx tm.Tx) error {
	wantAttacks := 0
	for f := 0; f < in.flows; f++ {
		if got := tx.Load(in.handled.addr(f)); got != 1 {
			return fmt.Errorf("flow %d handled %d times", f, got)
		}
		if in.attackFlow[f] {
			wantAttacks++
		}
	}
	if got := int(tx.Load(in.attacks)); got != wantAttacks {
		return fmt.Errorf("attacks = %d, want %d", got, wantAttacks)
	}
	if !in.packetQ.Empty(tx) || !in.decodedQ.Empty(tx) {
		return fmt.Errorf("queues not drained")
	}
	return nil
}
