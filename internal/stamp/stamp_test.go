package stamp

import (
	"testing"

	"asfstack/internal/sim"
)

// TestDeterministicRuns: identical configs produce identical results.
func TestDeterministicRuns(t *testing.T) {
	cfg := Config{App: "intruder", Runtime: "LLB-256", Threads: 4, Scale: 0.25}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatalf("nondeterministic: %d/%d cycles", a.Cycles, b.Cycles)
	}
}

// TestSeedZeroIsARealSeed: an explicit seed 0 must run as seed 0, not be
// silently promoted to the default 42, and distinct seeds must produce
// distinct executions (genome's input generation included, which once used
// a seed-independent hardcoded source).
func TestSeedZeroIsARealSeed(t *testing.T) {
	base := Config{App: "genome", Runtime: "LLB-256", Threads: 2, Scale: 0.125}

	zero := base
	zero.Seed, zero.SeedSet = 0, true
	def := base // Seed 0 without SeedSet: the default (42)
	other := base
	other.Seed = 7

	rz, err := Run(zero)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(def)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if rz.Cycles == rd.Cycles && rz.Stats == rd.Stats {
		t.Errorf("seed 0 ran identically to the default seed: 0 is still aliased to 42")
	}
	if ro.Cycles == rd.Cycles && ro.Stats == rd.Stats {
		t.Errorf("seed 7 ran identically to the default seed: the seed does not reach the workload")
	}
	// And an explicit 42 must be exactly the default.
	forty := base
	forty.Seed = 42
	rf, err := Run(forty)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Cycles != rd.Cycles || rf.Stats != rd.Stats {
		t.Errorf("explicit seed 42 differs from the default: %d vs %d cycles", rf.Cycles, rd.Cycles)
	}
}

// TestAllAppsValidateOnAllVariants runs every app on every ASF variant
// (small scale) — the validation inside Run is the assertion.
func TestAllAppsValidateOnAllVariants(t *testing.T) {
	for _, app := range Apps {
		for _, rt := range []string{"LLB-8", "LLB-8 w/ L1", "LLB-256 w/ L1"} {
			if _, err := Run(Config{App: app, Runtime: rt, Threads: 2, Scale: 0.125}); err != nil {
				t.Errorf("%s/%s: %v", app, rt, err)
			}
		}
	}
}

// TestSequentialBaseline: every app runs uninstrumented on one thread.
func TestSequentialBaseline(t *testing.T) {
	for _, app := range Apps {
		r, err := Run(Config{App: app, Runtime: "Sequential", Threads: 1, Scale: 0.125})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if r.Cycles == 0 {
			t.Fatalf("%s: no simulated time", app)
		}
		if r.Stats.TotalAborts() != 0 {
			t.Fatalf("%s: sequential run aborted", app)
		}
	}
}

// TestScalableAppsScale: genome and ssca2 must run faster on 4 threads
// than on 1 with LLB-256 (the Fig. 4 scaling shape).
func TestScalableAppsScale(t *testing.T) {
	for _, app := range []string{"genome", "ssca2"} {
		r1, err := Run(Config{App: app, Runtime: "LLB-256", Threads: 1, Scale: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		r4, err := Run(Config{App: app, Runtime: "LLB-256", Threads: 4, Scale: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if r4.Millis > r1.Millis*0.7 {
			t.Errorf("%s: 4 threads %.3fms vs 1 thread %.3fms — no scaling",
				app, r4.Millis, r1.Millis)
		}
	}
}

// TestLabyrinthMostlySerialOnASF: the huge read/write sets must push
// labyrinth's routing transactions into serial-irrevocable mode (Fig. 4's
// non-scaling panel).
func TestLabyrinthMostlySerialOnASF(t *testing.T) {
	r, err := Run(Config{App: "labyrinth", Runtime: "LLB-256", Threads: 4, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Each route is one transaction among ~3 per route; at least the
	// routing transactions should be serial.
	if r.Stats.Serial < 10 {
		t.Fatalf("labyrinth serial commits = %d: capacity pressure missing", r.Stats.Serial)
	}
	if r.Stats.Aborts[sim.AbortCapacity] == 0 {
		t.Fatal("labyrinth produced no capacity aborts")
	}
}

// TestIntruderContention: intruder's shared queues must produce a
// substantial abort rate at 4+ threads (Fig. 6's most contended app).
func TestIntruderContention(t *testing.T) {
	r, err := Run(Config{App: "intruder", Runtime: "LLB-256", Threads: 4, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(r.Stats.Aborts[sim.AbortContention]) / float64(r.Stats.Attempts())
	if rate < 0.05 {
		t.Fatalf("intruder contention abort rate %.1f%%: too tame", rate*100)
	}
}

// TestASFBeatsSTMOnStamp: at 4 threads, ASF (LLB-256) must beat the STM on
// every application (the paper's headline).
func TestASFBeatsSTMOnStamp(t *testing.T) {
	for _, app := range Apps {
		a, err := Run(Config{App: app, Runtime: "LLB-256", Threads: 4, Scale: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Run(Config{App: app, Runtime: "STM", Threads: 4, Scale: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		if a.Millis >= s.Millis {
			t.Errorf("%s: ASF %.3fms not faster than STM %.3fms", app, a.Millis, s.Millis)
		}
	}
}

// TestUnknownAppRejected: configuration errors surface as errors.
func TestUnknownAppRejected(t *testing.T) {
	if _, err := Run(Config{App: "bayes", Runtime: "LLB-256", Threads: 1}); err == nil {
		t.Fatal("excluded app accepted")
	}
}
