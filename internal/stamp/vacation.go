package stamp

import (
	"fmt"

	"asfstack"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/txlib"
)

// vacation emulates a travel reservation system: four red-black-tree
// tables (cars, rooms, flights, customers) queried and updated by client
// transactions. Each client action — make a reservation, delete a
// customer, update tables — is one atomic block spanning several tree
// lookups and record updates, so transactions read a few dozen cache lines:
// comfortable for LLB-256, hopeless for LLB-8 (Fig. 4's vacation panels).
//
// The low/high-contention variants differ in how much of the id space the
// queries hit (90% vs 10%) and the update mix, the same knobs as STAMP's
// vacation-low/high.
type vacation struct {
	relations int
	customers int
	tasks     int // total client tasks, divided among threads
	high      bool

	cars, rooms, flights *txlib.RBTree // id -> item record address
	custTree             *txlib.RBTree // id -> customer record address

	queryRange uint64 // ids drawn from [0, queryRange)
	reservePct int    // % of tasks that make reservations
}

// Item record layout (one line): word 0 total, 1 avail, 2 price.
const (
	itTotal = 0
	itAvail = 1
	itPrice = 2
)

// Customer record (one line): word 0 = reservation list head.
// Reservation node (24 B): word 0 next, 1 table index, 2 item id.

func newVacation(scale float64, high bool) *vacation {
	v := &vacation{
		relations: int(512 * scale),
		customers: int(256 * scale),
		tasks:     int(1600 * scale),
		high:      high,
	}
	if high {
		v.queryRange = uint64(float64(v.relations) * 0.10)
		v.reservePct = 50
	} else {
		v.queryRange = uint64(float64(v.relations) * 0.90)
		v.reservePct = 80
	}
	if v.queryRange < 4 {
		v.queryRange = 4
	}
	return v
}

func (v *vacation) Name() string {
	if v.high {
		return "vacation-high"
	}
	return "vacation-low"
}

func (v *vacation) tables() []*txlib.RBTree {
	return []*txlib.RBTree{v.cars, v.rooms, v.flights}
}

func (v *vacation) Setup(s *asfstack.Stack, tx tm.Tx, threads int) {
	rng := tx.CPU().Rand()
	v.cars = txlib.NewRBTree(tx)
	v.rooms = txlib.NewRBTree(tx)
	v.flights = txlib.NewRBTree(tx)
	v.custTree = txlib.NewRBTree(tx)
	for _, tbl := range v.tables() {
		for id := 0; id < v.relations; id++ {
			rec := tx.AllocLines(1)
			n := mem.Word(1 + rng.Intn(5))
			tx.Store(rec+itTotal*8, n)
			tx.Store(rec+itAvail*8, n)
			tx.Store(rec+itPrice*8, mem.Word(100+rng.Intn(400)))
			tbl.Insert(tx, uint64(id), mem.Word(rec))
		}
	}
	for id := 0; id < v.customers; id++ {
		rec := tx.AllocLines(1)
		tx.Store(rec, 0) // empty reservation list
		v.custTree.Insert(tx, uint64(id), mem.Word(rec))
	}
}

func (v *vacation) Thread(s *asfstack.Stack, c *sim.CPU, tid, threads int) {
	rng := c.Rand()
	lo, hi := span(v.tasks, tid, threads)
	for i := lo; i < hi; i++ {
		action := rng.Intn(100)
		switch {
		case action < v.reservePct:
			v.makeReservation(s, c)
		case action < v.reservePct+(100-v.reservePct)/2:
			v.deleteCustomer(s, c)
		default:
			v.updateTables(s, c)
		}
	}
}

// makeReservation queries 2..4 random items per table and reserves the
// cheapest available one of each queried table for a random customer —
// one atomic block, as in STAMP.
func (v *vacation) makeReservation(s *asfstack.Stack, c *sim.CPU) {
	rng := c.Rand()
	cust := uint64(rng.Intn(v.customers))
	nq := 2 + rng.Intn(3)
	// Pre-draw the query ids so retries see the same task.
	var queries [3][]uint64
	for t := 0; t < 3; t++ {
		for q := 0; q < nq; q++ {
			queries[t] = append(queries[t], uint64(rng.Int63n(int64(v.queryRange))))
		}
	}
	s.Atomic(c, func(tx tm.Tx) {
		crec, ok := v.custTree.Get(tx, cust)
		if !ok {
			return
		}
		for t, tbl := range v.tables() {
			bestID, bestRec, bestPrice := uint64(0), mem.Word(0), ^uint64(0)
			for _, id := range queries[t] {
				rec, ok := tbl.Get(tx, id)
				if !ok {
					continue
				}
				r := mem.Addr(rec)
				if tx.Load(r+itAvail*8) == 0 {
					continue
				}
				price := uint64(tx.Load(r + itPrice*8))
				if price < bestPrice {
					bestID, bestRec, bestPrice = id, rec, price
				}
			}
			if bestRec == 0 {
				continue
			}
			r := mem.Addr(bestRec)
			tx.Store(r+itAvail*8, tx.Load(r+itAvail*8)-1)
			// Prepend a reservation node to the customer's list.
			node := tx.Alloc(24)
			tx.Store(node+8, mem.Word(t))
			tx.Store(node+16, mem.Word(bestID))
			tx.Store(node, tx.Load(mem.Addr(crec)))
			tx.Store(mem.Addr(crec), mem.Word(node))
		}
	})
}

// deleteCustomer releases all of one customer's reservations.
func (v *vacation) deleteCustomer(s *asfstack.Stack, c *sim.CPU) {
	cust := uint64(c.Rand().Intn(v.customers))
	s.Atomic(c, func(tx tm.Tx) {
		crec, ok := v.custTree.Get(tx, cust)
		if !ok {
			return
		}
		head := mem.Addr(crec)
		cur := mem.Addr(tx.Load(head))
		for cur != 0 {
			t := int(tx.Load(cur + 8))
			id := uint64(tx.Load(cur + 16))
			if rec, ok := v.tables()[t].Get(tx, id); ok {
				r := mem.Addr(rec)
				tx.Store(r+itAvail*8, tx.Load(r+itAvail*8)+1)
			}
			next := mem.Addr(tx.Load(cur))
			tx.Free(cur)
			cur = next
		}
		tx.Store(head, 0)
	})
}

// updateTables changes prices (and occasionally adds capacity) on 1..3
// random items.
func (v *vacation) updateTables(s *asfstack.Stack, c *sim.CPU) {
	rng := c.Rand()
	n := 1 + rng.Intn(3)
	type upd struct {
		table int
		id    uint64
		price uint64
		grow  bool
	}
	var ups []upd
	for i := 0; i < n; i++ {
		ups = append(ups, upd{
			table: rng.Intn(3),
			id:    uint64(rng.Int63n(int64(v.queryRange))),
			price: uint64(100 + rng.Intn(400)),
			grow:  rng.Intn(8) == 0,
		})
	}
	s.Atomic(c, func(tx tm.Tx) {
		for _, u := range ups {
			rec, ok := v.tables()[u.table].Get(tx, u.id)
			if !ok {
				continue
			}
			r := mem.Addr(rec)
			tx.Store(r+itPrice*8, mem.Word(u.price))
			if u.grow {
				tx.Store(r+itTotal*8, tx.Load(r+itTotal*8)+1)
				tx.Store(r+itAvail*8, tx.Load(r+itAvail*8)+1)
			}
		}
	})
}

// Validate checks conservation: for every item, avail plus outstanding
// reservations equals total.
func (v *vacation) Validate(tx tm.Tx) error {
	type key struct{ t, id int }
	reserved := map[key]uint64{}
	for id := 0; id < v.customers; id++ {
		crec, ok := v.custTree.Get(tx, uint64(id))
		if !ok {
			return fmt.Errorf("customer %d missing", id)
		}
		cur := mem.Addr(tx.Load(mem.Addr(crec)))
		for cur != 0 {
			t := int(tx.Load(cur + 8))
			iid := int(tx.Load(cur + 16))
			reserved[key{t, iid}]++
			cur = mem.Addr(tx.Load(cur))
		}
	}
	for t, tbl := range v.tables() {
		for id := 0; id < v.relations; id++ {
			rec, ok := tbl.Get(tx, uint64(id))
			if !ok {
				return fmt.Errorf("table %d item %d missing", t, id)
			}
			r := mem.Addr(rec)
			total := uint64(tx.Load(r + itTotal*8))
			avail := uint64(tx.Load(r + itAvail*8))
			if avail > total {
				return fmt.Errorf("table %d item %d: avail %d > total %d", t, id, avail, total)
			}
			if avail+reserved[key{t, id}] != total {
				return fmt.Errorf("table %d item %d: avail %d + reserved %d != total %d",
					t, id, avail, reserved[key{t, id}], total)
			}
		}
	}
	return nil
}
