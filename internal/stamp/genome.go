package stamp

import (
	"fmt"

	"asfstack"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/txlib"
)

// genome is gene sequencing: deduplicate overlapping DNA segments, then
// link them by maximal suffix/prefix overlap. The transactional profile
// matches STAMP's: phase 1 hammers one shared hash set with small insert
// transactions; phase 2 links segments through a shared prefix table with
// small read-mostly transactions. Both scale well — genome is one of the
// applications where ASF shines in Fig. 4.
//
// Segments are L nucleotides (2 bits each) packed into one word. The gene
// itself is immutable input: it is read with plain accesses (selective
// annotation), keeping it out of the hardware's speculative capacity.
type genome struct {
	geneLen  int
	segLen   int
	segments int

	gene []byte // Go-side input generator state

	segArr wordArray // packed segment values (read-only input)
	unique *txlib.HashSet
	// uniqArr is partitioned per thread: thread t appends its unique
	// segments to [t*perThread, ...) with a private counter, so the
	// dedup phase has no shared append point (as in STAMP).
	uniqArr   wordArray
	uniqCnt   wordArray // per-thread counters, one line each
	perThread int
	prefix    *txlib.HashMap
	links     wordArray // links[i] = 1+index of successor of unique[i]
	linked    wordArray // linked[i] = 1 if unique[i] already has a predecessor

	contigs  wordArray // phase 3 output: contig lengths
	nContigs mem.Addr

	bar *Barrier

	oracleUnique int // Go-side expected dedup count
}

func newGenome(scale float64) *genome {
	return &genome{
		geneLen:  int(4096 * scale),
		segLen:   16,
		segments: int(3072 * scale),
	}
}

func (g *genome) Name() string { return "genome" }

func (g *genome) Setup(s *asfstack.Stack, tx tm.Tx, threads int) {
	// Derive the input from the run's seed like every other application
	// (core 0's stream is a pure function of Config.Seed), rather than a
	// hardcoded source that made every "seeded" genome run share one gene.
	rng := tx.CPU().Rand()
	g.gene = make([]byte, g.geneLen)
	for i := range g.gene {
		g.gene[i] = byte(rng.Intn(4))
	}
	g.segArr = allocArray(tx, g.segments)
	seen := map[uint64]bool{}
	for i := 0; i < g.segments; i++ {
		start := rng.Intn(g.geneLen - g.segLen)
		var v uint64
		for j := 0; j < g.segLen; j++ {
			v |= uint64(g.gene[start+j]) << uint(2*j)
		}
		tx.Store(g.segArr.addr(i), mem.Word(v))
		seen[v] = true
	}
	g.oracleUnique = len(seen)

	g.unique = txlib.NewHashSet(tx, 12)
	g.uniqArr = allocArray(tx, g.segments)
	g.uniqCnt = allocArray(tx, threads*mem.WordsPerLine)
	g.perThread = (g.segments + threads - 1) / threads
	g.prefix = txlib.NewHashMap(tx, 12)
	g.links = allocArray(tx, g.segments)
	g.linked = allocArray(tx, g.segments)
	g.contigs = allocArray(tx, g.segments)
	g.nContigs = tx.AllocLines(1)
	g.bar = NewBarrier(tx, threads)
}

// prefixKey tags a prefix of length o nucleotides with its level so
// different overlap levels do not collide in the shared table.
func prefixKey(seg uint64, o int) uint64 {
	return uint64(o)<<40 ^ (seg & (1<<uint(2*o) - 1))
}

func suffixBits(seg uint64, segLen, o int) uint64 {
	return seg >> uint(2*(segLen-o))
}

func (g *genome) Thread(s *asfstack.Stack, c *sim.CPU, tid, threads int) {
	// Phase 1: deduplicate segments into the shared set. Winners are
	// recorded in the thread's own partition of the unique array with
	// plain accesses — thread-private until the barrier, so the only
	// transactional state is the hash set itself.
	lo, hi := span(g.segments, tid, threads)
	myBase := tid * g.perThread
	myCount := 0
	for i := lo; i < hi; i++ {
		seg := uint64(c.Load(g.segArr.addr(i))) // read-only input: plain
		inserted := false
		s.Atomic(c, func(tx tm.Tx) {
			inserted = g.unique.Insert(tx, seg)
		})
		if inserted {
			c.Store(g.uniqArr.addr(myBase+myCount), mem.Word(seg))
			myCount++
		}
	}
	c.Store(g.uniqCnt.addr(tid*mem.WordsPerLine), mem.Word(myCount))
	g.bar.Wait(c)
	// Phase 2: three overlap levels, longest first, as in STAMP's
	// decreasing-match-length loop. Each thread processes its own
	// partition of the unique array.
	for _, o := range []int{g.segLen - 1, g.segLen - 2, g.segLen - 4} {
		// 2a: publish every unlinked segment's prefix.
		lo, hi := myBase, myBase+myCount
		for i := lo; i < hi; i++ {
			i := i
			seg := uint64(c.Load(g.uniqArr.addr(i)))
			s.Atomic(c, func(tx tm.Tx) {
				if tx.Load(g.linked.addr(i)) == 0 {
					g.prefix.PutIfAbsent(tx, prefixKey(seg, o), mem.Word(i+1))
				}
			})
		}
		g.bar.Wait(c)
		// 2b: match suffixes against published prefixes.
		for i := lo; i < hi; i++ {
			i := i
			seg := uint64(c.Load(g.uniqArr.addr(i)))
			s.Atomic(c, func(tx tm.Tx) {
				if tx.Load(g.links.addr(i)) != 0 {
					return
				}
				key := uint64(o)<<40 ^ suffixBits(seg, g.segLen, o)
				v, ok := g.prefix.Get(tx, key)
				if !ok {
					return
				}
				j := int(v) - 1
				if j == i {
					return
				}
				if tx.Load(g.linked.addr(j)) == 0 {
					tx.Store(g.links.addr(i), mem.Word(j+1))
					tx.Store(g.linked.addr(j), 1)
				}
			})
		}
		g.bar.Wait(c)
		// 2c: clear the prefix table between levels (thread 0; STAMP
		// rebuilds its table per pass).
		if tid == 0 {
			s.Atomic(c, func(tx tm.Tx) {
				// Levels use distinct key tags, so simply leave old
				// entries; nothing to clear. Charge the pass cost.
				tx.CPU().Exec(50)
			})
		}
		g.bar.Wait(c)
	}

	// Phase 3: sequence reconstruction — walk the successor chains from
	// every chain head and record contig lengths. Sequential in STAMP
	// (thread 0), plain accesses: the links are frozen after phase 2.
	if tid == 0 {
		g.reconstruct(c, threads)
	}
	g.bar.Wait(c)
}

// reconstruct builds the contig length table from the link graph: every
// segment that no one links to is a chain head; follow links[] until the
// chain ends. contigs[i] holds the i-th contig's length (in segments).
func (g *genome) reconstruct(c *sim.CPU, threads int) {
	nContigs := 0
	for t := 0; t < threads; t++ {
		cnt := int(c.Load(g.uniqCnt.addr(t * mem.WordsPerLine)))
		base := t * g.perThread
		for i := base; i < base+cnt; i++ {
			c.Exec(4)
			if c.Load(g.linked.addr(i)) != 0 {
				continue // has a predecessor: not a chain head
			}
			length := mem.Word(1)
			for j := i; ; {
				l := int(c.Load(g.links.addr(j)))
				if l == 0 {
					break
				}
				j = l - 1
				length++
				c.Exec(3)
			}
			c.Store(g.contigs.addr(nContigs), length)
			nContigs++
		}
	}
	c.Store(g.nContigs, mem.Word(nContigs))
}

func (g *genome) Validate(tx tm.Tx) error {
	n := 0
	for t := 0; t < g.uniqCnt.n/mem.WordsPerLine; t++ {
		n += int(tx.Load(g.uniqCnt.addr(t * mem.WordsPerLine)))
	}
	if n != g.oracleUnique {
		return fmt.Errorf("dedup count = %d, want %d", n, g.oracleUnique)
	}
	if got := g.unique.Size(tx); got != g.oracleUnique {
		return fmt.Errorf("unique set size = %d, want %d", got, g.oracleUnique)
	}
	// Phase 3 consistency: contig lengths partition the unique segments
	// (every segment in exactly one chain; chains are acyclic because
	// each segment has at most one predecessor and one successor, and
	// every walk from a head terminated).
	nc := int(tx.Load(g.nContigs))
	if nc == 0 {
		return fmt.Errorf("no contigs reconstructed")
	}
	var covered uint64
	for i := 0; i < nc; i++ {
		covered += uint64(tx.Load(g.contigs.addr(i)))
	}
	if covered != uint64(n) {
		return fmt.Errorf("contigs cover %d segments, want %d", covered, n)
	}
	// No segment may have two predecessors, and every link target must be
	// marked linked.
	preds := make(map[int]int)
	for i := 0; i < g.segments; i++ {
		l := int(tx.Load(g.links.addr(i)))
		if l == 0 {
			continue
		}
		j := l - 1
		preds[j]++
		if preds[j] > 1 {
			return fmt.Errorf("segment %d has %d predecessors", j, preds[j])
		}
		if tx.Load(g.linked.addr(j)) == 0 {
			return fmt.Errorf("segment %d linked but not marked", j)
		}
	}
	return nil
}
