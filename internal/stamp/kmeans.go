package stamp

import (
	"fmt"

	"asfstack"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// kmeans is K-means clustering. Each iteration, every thread assigns its
// share of points to the nearest center (plain reads of the read-only
// centers plus local floating-point work) and then updates the shared
// per-cluster accumulators in one small transaction — the only shared
// writes. Contention is set by the cluster count: the "low" configuration
// uses many clusters, "high" uses few, exactly the knob STAMP's low/high
// variants turn.
type kmeans struct {
	n, dims, k int
	iterations int
	high       bool

	points  wordArray // n × dims, fixed-point values (read-only)
	centers wordArray // k × dims, rebuilt between iterations
	// accumulators: one line-padded row per cluster: [count, sum_0..sum_d-1]
	acc    wordArray
	accRow int // words per row (padded)

	lastCounts []uint64 // Go-side copy of final iteration counts
	bar        *Barrier
}

func newKMeans(scale float64, high bool) *kmeans {
	k := 40
	if high {
		k = 8
	}
	return &kmeans{
		n:          int(1024 * scale),
		dims:       8,
		k:          k,
		iterations: 4,
		high:       high,
	}
}

func (m *kmeans) Name() string {
	if m.high {
		return "kmeans-high"
	}
	return "kmeans-low"
}

func (m *kmeans) Setup(s *asfstack.Stack, tx tm.Tx, threads int) {
	rng := tx.CPU().Rand()
	m.points = allocArray(tx, m.n*m.dims)
	for i := 0; i < m.n*m.dims; i++ {
		tx.Store(m.points.addr(i), mem.Word(rng.Intn(1024)))
	}
	m.centers = allocArray(tx, m.k*m.dims)
	for i := 0; i < m.k*m.dims; i++ {
		tx.Store(m.centers.addr(i), mem.Word(rng.Intn(1024)))
	}
	// One padded row per cluster so clusters conflict only with
	// themselves.
	wordsPerRow := m.dims + 1
	m.accRow = (wordsPerRow + mem.WordsPerLine - 1) / mem.WordsPerLine * mem.WordsPerLine
	m.acc = allocArray(tx, m.k*m.accRow)
	m.bar = NewBarrier(tx, threads)
}

func (m *kmeans) accAddr(cluster, word int) mem.Addr {
	return m.acc.addr(cluster*m.accRow + word)
}

func (m *kmeans) Thread(s *asfstack.Stack, c *sim.CPU, tid, threads int) {
	lo, hi := span(m.n, tid, threads)
	for iter := 0; iter < m.iterations; iter++ {
		for p := lo; p < hi; p++ {
			// Nearest center: plain reads (centers are read-only within
			// an iteration) plus the distance arithmetic.
			best, bestD := 0, ^uint64(0)
			for k := 0; k < m.k; k++ {
				var d uint64
				for j := 0; j < m.dims; j++ {
					pv := uint64(c.Load(m.points.addr(p*m.dims + j)))
					cv := uint64(c.Load(m.centers.addr(k*m.dims + j)))
					diff := int64(pv) - int64(cv)
					d += uint64(diff * diff)
				}
				c.Exec(3 * m.dims)
				if d < bestD {
					bestD, best = d, k
				}
			}
			// The one transaction: fold the point into its cluster.
			p := p
			s.Atomic(c, func(tx tm.Tx) {
				tx.Store(m.accAddr(best, 0), tx.Load(m.accAddr(best, 0))+1)
				for j := 0; j < m.dims; j++ {
					a := m.accAddr(best, 1+j)
					pv := tx.CPU().Load(m.points.addr(p*m.dims + j))
					tx.Store(a, tx.Load(a)+pv)
				}
			})
		}
		m.bar.Wait(c)
		if tid == 0 {
			m.recenter(c, iter)
		}
		m.bar.Wait(c)
	}
}

// recenter rebuilds centers from the accumulators and clears them (plain
// accesses; runs alone between iterations, like STAMP's master step).
func (m *kmeans) recenter(c *sim.CPU, iter int) {
	if iter == m.iterations-1 {
		m.lastCounts = make([]uint64, m.k)
	}
	for k := 0; k < m.k; k++ {
		cnt := uint64(c.Load(m.accAddr(k, 0)))
		if iter == m.iterations-1 {
			m.lastCounts[k] = cnt
		}
		for j := 0; j < m.dims; j++ {
			if cnt > 0 {
				sum := uint64(c.Load(m.accAddr(k, 1+j)))
				c.Store(m.centers.addr(k*m.dims+j), mem.Word(sum/cnt))
			}
			if iter != m.iterations-1 {
				c.Store(m.accAddr(k, 1+j), 0)
			}
		}
		if iter != m.iterations-1 {
			c.Store(m.accAddr(k, 0), 0)
		}
	}
}

func (m *kmeans) Validate(tx tm.Tx) error {
	var total uint64
	for _, cnt := range m.lastCounts {
		total += cnt
	}
	if total != uint64(m.n) {
		return fmt.Errorf("final assignment count = %d, want %d", total, m.n)
	}
	return nil
}
