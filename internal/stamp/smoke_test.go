package stamp

import "testing"

func TestSmokeAllApps(t *testing.T) {
	for _, app := range Apps {
		for _, rt := range []string{"LLB-256", "STM"} {
			r, err := Run(Config{App: app, Runtime: rt, Threads: 4, Scale: 0.25})
			if err != nil {
				t.Fatalf("%s/%s: %v", app, rt, err)
			}
			t.Logf("%-14s %-8s %8.3f ms commits=%d serial=%d aborts=%d stm=%d",
				app, rt, r.Millis, r.Stats.Commits, r.Stats.Serial,
				r.Stats.TotalAborts(), r.Stats.STMAborts)
		}
	}
}
