package stamp

import (
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// Barrier is a sense-reversing barrier in simulated memory, used between
// application phases (kmeans iterations, genome phases). It is plain
// synchronisation — no transactions — like the pthread barriers in STAMP.
//
// Layout: word 0 = arrival count, word 1 = generation, on one line.
type Barrier struct {
	addr mem.Addr
	n    int
}

// NewBarrier allocates a barrier for n threads.
func NewBarrier(tx tm.Tx, n int) *Barrier {
	b := &Barrier{addr: tx.AllocLines(1), n: n}
	tx.Store(b.addr, 0)
	tx.Store(b.addr+8, 0)
	return b
}

// Wait blocks (spinning in simulated time) until all n threads arrive.
func (b *Barrier) Wait(c *sim.CPU) {
	gen := c.Load(b.addr + 8)
	if c.FetchAdd(b.addr, 1) == mem.Word(b.n-1) {
		c.Store(b.addr, 0)
		c.Store(b.addr+8, gen+1)
		return
	}
	for c.Load(b.addr+8) == gen {
		// Quiescent state, like a pthread barrier wait: no transaction can
		// start before the barrier releases, so runtimes tracking per-core
		// liveness may treat this core as drained.
		c.IdleHint()
		c.Cycles(120)
	}
}

// span returns thread tid's half-open share [lo, hi) of n items.
func span(n, tid, threads int) (lo, hi int) {
	per := (n + threads - 1) / threads
	lo = tid * per
	hi = lo + per
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}

// wordArray is a convenience for simulated-memory arrays of words.
type wordArray struct {
	base mem.Addr
	n    int
}

func allocArray(tx tm.Tx, n int) wordArray {
	lines := (n*mem.WordSize + mem.LineSize - 1) / mem.LineSize
	return wordArray{base: tx.AllocLines(lines), n: n}
}

func (a wordArray) addr(i int) mem.Addr { return a.base + mem.Addr(i*mem.WordSize) }
