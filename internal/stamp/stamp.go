// Package stamp re-implements the STAMP benchmark applications the paper
// evaluates (§5): genome, intruder, kmeans (low/high), labyrinth, ssca2,
// and vacation (low/high). Bayes and yada are excluded, as in the paper.
//
// Each application preserves the original's algorithmic structure, shared
// data layout (with line-padded entry points), transaction boundaries and
// contention profile, scaled to simulator-sized inputs in the spirit of
// STAMP's own "-sim" configurations. All shared accesses go through the TM
// ABI; read-only inputs and thread-private scratch use plain accesses
// (DTMC's selective-annotation output).
package stamp

import (
	"fmt"

	"asfstack"
	"asfstack/internal/adaptive"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/topo"
	"asfstack/internal/txprof"
)

// Apps lists the benchmark configurations in the paper's figure order.
var Apps = []string{
	"genome", "intruder", "kmeans-low", "kmeans-high",
	"labyrinth", "ssca2", "vacation-low", "vacation-high",
}

// App is one STAMP application instance.
type App interface {
	// Name returns the figure label.
	Name() string
	// Setup builds the initial data set (direct, uninstrumented).
	// threads is the measured phase's worker count (for barriers).
	Setup(s *asfstack.Stack, tx tm.Tx, threads int)
	// Thread runs one worker's share of the measured phase.
	Thread(s *asfstack.Stack, c *sim.CPU, tid, threads int)
	// Validate checks application-level invariants after the run.
	Validate(tx tm.Tx) error
}

// Config describes one STAMP run.
type Config struct {
	App     string // one of Apps
	Runtime string // asfstack runtime label
	Threads int
	// Seed makes runs reproducible. Zero selects the default (42) unless
	// SeedSet marks it deliberate: seed 0 is a valid, distinct seed, not
	// an alias of the default.
	Seed    int64
	SeedSet bool
	// Scale multiplies the default input size (1.0 when zero); used by
	// tests to shrink runs.
	Scale float64
	// Native runs on the native-reference timing calibration instead of
	// the Barcelona simulator model (the Fig. 3 accuracy experiment).
	Native bool
	// Trace records sim trace events for the measured phase (Chrome trace
	// export). Off by default: event volume is proportional to work.
	Trace bool
	// Profile installs the transaction-level flight recorder and harvests
	// its profile into Result.Profile. Off by default.
	Profile bool
	// Engine selects the simulator execution engine (serial or epoch);
	// results are bit-identical either way, only host time differs.
	Engine sim.Engine
	// EpochLen overrides the epoch length for the epoch engine (0 keeps
	// the default).
	EpochLen uint64
	// Topology is the socket layout ("2x8"; see internal/topo); empty runs
	// single-socket. When set, Threads must be zero (derived from the
	// topology) or equal its total.
	Topology string
}

// Result carries the measurements of a run.
type Result struct {
	Config    Config
	Cycles    uint64 // simulated duration of the measured phase
	Millis    float64
	Stats     tm.Stats
	Breakdown sim.Breakdown

	// Metrics is the full registry snapshot at the end of the measured
	// phase (every layer's instruments).
	Metrics *metrics.Snapshot
	// Switches is the adaptive selector's decision log when Runtime is one
	// of the Adaptive configurations; nil for the static runtimes.
	Switches []adaptive.Switch
	// TraceEvents are the measured phase's trace events when
	// Config.Trace was set; TraceStart is the phase's start cycle.
	TraceEvents []sim.TraceEvent
	TraceStart  uint64
	// Profile is the flight-recorder snapshot when Config.Profile was set
	// (and the runtime supports profiling); nil otherwise.
	Profile *txprof.Profile
	// EngineStats is the epoch engine's host-side activity for the measured
	// phase; all zeros under the serial engine.
	EngineStats sim.EngineStats
}

// New instantiates an application by name.
func New(name string, threads int, scale float64) (App, error) {
	if scale <= 0 {
		scale = 1
	}
	switch name {
	case "genome":
		return newGenome(scale), nil
	case "intruder":
		return newIntruder(scale), nil
	case "kmeans-low":
		return newKMeans(scale, false), nil
	case "kmeans-high":
		return newKMeans(scale, true), nil
	case "labyrinth":
		return newLabyrinth(scale), nil
	case "ssca2":
		return newSSCA2(scale), nil
	case "vacation-low":
		return newVacation(scale, false), nil
	case "vacation-high":
		return newVacation(scale, true), nil
	default:
		return nil, fmt.Errorf("stamp: unknown app %q", name)
	}
}

// Run executes one configuration to completion and validates the result.
func Run(cfg Config) (Result, error) {
	if cfg.Seed == 0 && !cfg.SeedSet {
		cfg.Seed = 42
	}
	if cfg.Topology != "" {
		tp, err := topo.Parse(cfg.Topology)
		if err != nil {
			return Result{}, fmt.Errorf("stamp: %w", err)
		}
		if cfg.Threads != 0 && cfg.Threads != tp.Total() {
			return Result{}, fmt.Errorf("stamp: %d threads conflict with topology %s (%d cores)",
				cfg.Threads, tp, tp.Total())
		}
		cfg.Threads = tp.Total()
	}
	app, err := New(cfg.App, cfg.Threads, cfg.Scale)
	if err != nil {
		return Result{}, err
	}
	// Set the seed on the machine config directly: asfstack.Options.Seed
	// treats zero as "keep the default", which would silently turn an
	// explicit seed 0 back into 42.
	mc := sim.Barcelona(cfg.Threads)
	if cfg.Native {
		mc = sim.NativeReference(cfg.Threads)
	}
	mc.Seed = cfg.Seed
	mc.Engine = cfg.Engine
	if cfg.EpochLen != 0 {
		mc.EpochLen = cfg.EpochLen
	}
	opts := asfstack.Options{
		Cores:    cfg.Threads,
		Runtime:  cfg.Runtime,
		Topology: cfg.Topology,
		Machine:  &mc,
		Profile:  cfg.Profile,
	}
	s := asfstack.New(opts)
	s.Setup(func(tx tm.Tx) { app.Setup(s, tx, cfg.Threads) })

	start := s.BeginMeasured()
	if cfg.Trace {
		s.M.EnableTrace()
	}

	end := s.Parallel(cfg.Threads, func(c *sim.CPU) {
		app.Thread(s, c, c.ID(), cfg.Threads)
	})

	res := Result{Config: cfg, Cycles: end - start}
	res.Millis = float64(res.Cycles) / 2_200_000.0
	res.Stats = s.TotalStats()
	for i := 0; i < cfg.Threads; i++ {
		res.Breakdown = res.Breakdown.Add(s.M.CPU(i).Counters())
	}
	res.Metrics = s.MetricsSnapshot()
	if s.ADAPT != nil {
		res.Switches = s.ADAPT.Switches()
	}
	if cfg.Trace {
		// Drain before validation runs more simulated work: the trace
		// should cover exactly the measured phase.
		res.TraceEvents = s.M.TraceEvents()
		res.TraceStart = start
	}
	res.Profile = s.TxProfile()
	res.EngineStats = s.M.EngineStats()

	var verr error
	s.Setup(func(tx tm.Tx) { verr = app.Validate(tx) })
	if verr != nil {
		return res, fmt.Errorf("stamp %s/%s/%d: validation: %w",
			cfg.App, cfg.Runtime, cfg.Threads, verr)
	}
	return res, nil
}
