// Package metrics is the observability spine of the TM stack: a fixed-shape,
// zero-allocation-on-hot-path metrics registry the simulator, the ASF
// facility, the TM runtimes and the experiment harness all report through.
//
// The design follows the paper's §5 discipline of keeping the statistics
// path out of the measured execution:
//
//   - every instrument is registered once, at stack-construction time, and
//     hands out an integer-indexed handle; the hot path is a bounds-checked
//     slice increment — no map lookups, no interface calls, no allocation;
//   - storage is keyed per simulated core, so recording never synchronises
//     (each core only ever touches its own slot, under the simulator's
//     global turn);
//   - instruments record *simulated* quantities only. Host-side facts
//     (wall-clock time, worker queues) are registered with the Host flag
//     and land in a separate section of every snapshot, so the simulated
//     section of two runs with different host parallelism is byte-identical
//     (the determinism guarantee TestFig5ParallelDeterminism pins);
//   - Snapshot returns a deep copy in registration order (which is itself
//     deterministic: registration happens during single-threaded stack
//     construction), and Reset re-arms everything at a measurement barrier.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Registry holds the instruments of one simulated machine. It is not safe
// for concurrent host-side use; in the stack it is only touched under the
// simulator's global turn or at measurement barriers.
type Registry struct {
	cores int

	counterDefs []def
	gaugeDefs   []def
	histDefs    []histDef

	counters [][]uint64 // [core][id]
	gauges   [][]uint64 // [core][id]
	hists    [][]hist   // [core][id]

	sealed bool
}

type def struct {
	name string
	host bool
}

type histDef struct {
	def
	bounds []uint64 // inclusive upper bounds; final +Inf bucket is implicit
}

// hist is one core's data for one histogram.
type hist struct {
	counts []uint64 // len(bounds)+1
	sum    uint64
	count  uint64
	max    uint64
}

// New builds a registry for a machine with the given core count.
func New(cores int) *Registry {
	if cores <= 0 {
		panic(fmt.Sprintf("metrics: bad core count %d", cores))
	}
	return &Registry{
		cores:    cores,
		counters: make([][]uint64, cores),
		gauges:   make([][]uint64, cores),
		hists:    make([][]hist, cores),
	}
}

// Cores returns the registry's core count.
func (r *Registry) Cores() int { return r.cores }

func (r *Registry) checkReg(name string) {
	if r.sealed {
		panic(fmt.Sprintf("metrics: registering %q after first snapshot/record", name))
	}
	for _, d := range r.counterDefs {
		if d.name == name {
			panic(fmt.Sprintf("metrics: duplicate instrument %q", name))
		}
	}
	for _, d := range r.gaugeDefs {
		if d.name == name {
			panic(fmt.Sprintf("metrics: duplicate instrument %q", name))
		}
	}
	for _, d := range r.histDefs {
		if d.name == name {
			panic(fmt.Sprintf("metrics: duplicate instrument %q", name))
		}
	}
}

// seal grows the per-core storage to match the registered instruments. It
// runs lazily on the first record or snapshot; registration is rejected
// afterwards so handles can never dangle.
func (r *Registry) seal() {
	if r.sealed {
		return
	}
	r.sealed = true
	for c := 0; c < r.cores; c++ {
		r.counters[c] = make([]uint64, len(r.counterDefs))
		r.gauges[c] = make([]uint64, len(r.gaugeDefs))
		r.hists[c] = make([]hist, len(r.histDefs))
		for i := range r.hists[c] {
			r.hists[c][i].counts = make([]uint64, len(r.histDefs[i].bounds)+1)
		}
	}
}

// Counter registers a monotonic per-core counter recording a simulated
// quantity.
func (r *Registry) Counter(name string) Counter {
	return r.counter(name, false)
}

// HostCounter registers a counter for host-side (non-deterministic)
// quantities; it appears only in the snapshot's host section.
func (r *Registry) HostCounter(name string) Counter {
	return r.counter(name, true)
}

func (r *Registry) counter(name string, host bool) Counter {
	r.checkReg(name)
	r.counterDefs = append(r.counterDefs, def{name: name, host: host})
	return Counter{r: r, id: len(r.counterDefs) - 1}
}

// Gauge registers a per-core gauge (set or high-water semantics).
func (r *Registry) Gauge(name string) Gauge {
	r.checkReg(name)
	r.gaugeDefs = append(r.gaugeDefs, def{name: name})
	return Gauge{r: r, id: len(r.gaugeDefs) - 1}
}

// Histogram registers a fixed-bucket per-core histogram. bounds are the
// inclusive upper bounds of the buckets, strictly increasing; an implicit
// overflow bucket catches everything above the last bound.
func (r *Registry) Histogram(name string, bounds []uint64) Histogram {
	r.checkReg(name)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %q: bucket bounds not strictly increasing", name))
		}
	}
	b := append([]uint64(nil), bounds...)
	r.histDefs = append(r.histDefs, histDef{def: def{name: name}, bounds: b})
	return Histogram{r: r, id: len(r.histDefs) - 1}
}

// PowersOfTwo returns histogram bounds 1, 2, 4, ... up to 2^(n-1) — the
// stock bucketing for set sizes and attempt counts.
func PowersOfTwo(n int) []uint64 {
	b := make([]uint64, n)
	for i := range b {
		b[i] = 1 << uint(i)
	}
	return b
}

// Counter is a registered counter handle. The zero value is inert: every
// record on it is a no-op, so layers can be built with metrics disabled.
type Counter struct {
	r  *Registry
	id int
}

// Add adds v on the given core.
func (c Counter) Add(core int, v uint64) {
	if c.r == nil {
		return
	}
	c.r.seal()
	c.r.counters[core][c.id] += v
}

// Inc adds one on the given core.
func (c Counter) Inc(core int) { c.Add(core, 1) }

// Gauge is a registered gauge handle. The zero value is inert.
type Gauge struct {
	r  *Registry
	id int
}

// Set stores v on the given core.
func (g Gauge) Set(core int, v uint64) {
	if g.r == nil {
		return
	}
	g.r.seal()
	g.r.gauges[core][g.id] = v
}

// High raises the gauge to v if v is larger (high-water-mark semantics).
func (g Gauge) High(core int, v uint64) {
	if g.r == nil {
		return
	}
	g.r.seal()
	if v > g.r.gauges[core][g.id] {
		g.r.gauges[core][g.id] = v
	}
}

// Histogram is a registered histogram handle. The zero value is inert.
type Histogram struct {
	r  *Registry
	id int
}

// Observe records v on the given core.
func (h Histogram) Observe(core int, v uint64) {
	if h.r == nil {
		return
	}
	h.r.seal()
	hd := &h.r.histDefs[h.id]
	st := &h.r.hists[core][h.id]
	i := sort.Search(len(hd.bounds), func(i int) bool { return hd.bounds[i] >= v })
	st.counts[i]++
	st.sum += v
	st.count++
	if v > st.max {
		st.max = v
	}
}

// Reset zeroes every instrument on every core (measurement barrier).
func (r *Registry) Reset() {
	r.seal()
	for c := 0; c < r.cores; c++ {
		clear(r.counters[c])
		clear(r.gauges[c])
		for i := range r.hists[c] {
			h := &r.hists[c][i]
			clear(h.counts)
			h.sum, h.count, h.max = 0, 0, 0
		}
	}
}

// --- snapshots -----------------------------------------------------------

// Snapshot is a deep, JSON-ready copy of a registry's state, split into a
// deterministic simulated section (Sim) and a host section (Host). The
// simulated section of two runs of the same configuration is identical
// regardless of host scheduling or worker counts.
type Snapshot struct {
	Cores int     `json:"cores"`
	Sim   Section `json:"sim"`
	Host  Section `json:"host,omitempty"`
}

// Section is one side (simulated or host) of a snapshot.
type Section struct {
	Counters   []CounterSnap `json:"counters,omitempty"`
	Gauges     []GaugeSnap   `json:"gauges,omitempty"`
	Histograms []HistSnap    `json:"histograms,omitempty"`
}

// CounterSnap is one counter's values.
type CounterSnap struct {
	Name    string   `json:"name"`
	PerCore []uint64 `json:"per_core"`
	Total   uint64   `json:"total"`
}

// GaugeSnap is one gauge's values. Total is the per-core sum — meaningful
// for barrier-filled counters routed through gauges, advisory for true
// level gauges.
type GaugeSnap struct {
	Name    string   `json:"name"`
	PerCore []uint64 `json:"per_core"`
	Total   uint64   `json:"total"`
}

// HistSnap is one histogram's merged and per-core state.
type HistSnap struct {
	Name    string     `json:"name"`
	Bounds  []uint64   `json:"bounds"` // inclusive upper bounds; last bucket is overflow
	PerCore [][]uint64 `json:"per_core"`
	Counts  []uint64   `json:"counts"` // merged across cores
	Sum     uint64     `json:"sum"`
	Count   uint64     `json:"count"`
	Max     uint64     `json:"max"`
}

// Quantile estimates the p-quantile (0 < p ≤ 1) of the histogram from its
// bucket counts. Within the bucket holding the target rank it interpolates
// log-linearly — latency histograms use geometric (powers-of-two) bounds,
// where log-space interpolation is unbiased; the first bucket (lower edge
// 0) degrades to linear. The overflow bucket's upper edge is the observed
// Max. Returns 0 on an empty histogram; p outside (0,1] clamps.
func (h HistSnap) Quantile(p float64) float64 {
	if h.Count == 0 || p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.Count)
	var cum uint64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		if float64(cum)+float64(n) >= target {
			var lo, hi float64
			if i > 0 {
				lo = float64(h.Bounds[i-1])
			}
			if i < len(h.Bounds) {
				hi = float64(h.Bounds[i])
			} else {
				hi = float64(h.Max)
				if hi < lo {
					hi = lo
				}
			}
			frac := (target - float64(cum)) / float64(n)
			var q float64
			if lo <= 0 {
				q = lo + (hi-lo)*frac
			} else {
				q = lo * math.Pow(hi/lo, frac)
			}
			// No observation exceeds Max, so neither can a quantile —
			// relevant when Max sits below its bucket's upper bound.
			if max := float64(h.Max); q > max {
				q = max
			}
			return q
		}
		cum += n
	}
	return float64(h.Max)
}

// Snapshot deep-copies the registry state in registration order.
func (r *Registry) Snapshot() *Snapshot {
	r.seal()
	s := &Snapshot{Cores: r.cores}
	for id, d := range r.counterDefs {
		cs := CounterSnap{Name: d.name, PerCore: make([]uint64, r.cores)}
		for c := 0; c < r.cores; c++ {
			cs.PerCore[c] = r.counters[c][id]
			cs.Total += r.counters[c][id]
		}
		if d.host {
			s.Host.Counters = append(s.Host.Counters, cs)
		} else {
			s.Sim.Counters = append(s.Sim.Counters, cs)
		}
	}
	for id, d := range r.gaugeDefs {
		gs := GaugeSnap{Name: d.name, PerCore: make([]uint64, r.cores)}
		for c := 0; c < r.cores; c++ {
			gs.PerCore[c] = r.gauges[c][id]
			gs.Total += r.gauges[c][id]
		}
		s.Sim.Gauges = append(s.Sim.Gauges, gs)
	}
	for id, d := range r.histDefs {
		hs := HistSnap{
			Name:    d.name,
			Bounds:  append([]uint64(nil), d.bounds...),
			PerCore: make([][]uint64, r.cores),
			Counts:  make([]uint64, len(d.bounds)+1),
		}
		for c := 0; c < r.cores; c++ {
			st := &r.hists[c][id]
			hs.PerCore[c] = append([]uint64(nil), st.counts...)
			for i, n := range st.counts {
				hs.Counts[i] += n
			}
			hs.Sum += st.sum
			hs.Count += st.count
			if st.max > hs.Max {
				hs.Max = st.max
			}
		}
		s.Sim.Histograms = append(s.Sim.Histograms, hs)
	}
	return s
}

// Counter returns the named counter snapshot from the simulated section.
func (s *Snapshot) Counter(name string) (CounterSnap, bool) {
	for _, c := range s.Sim.Counters {
		if c.Name == name {
			return c, true
		}
	}
	return CounterSnap{}, false
}

// Gauge returns the named gauge snapshot from the simulated section.
func (s *Snapshot) Gauge(name string) (GaugeSnap, bool) {
	for _, g := range s.Sim.Gauges {
		if g.Name == name {
			return g, true
		}
	}
	return GaugeSnap{}, false
}

// Histogram returns the named histogram snapshot.
func (s *Snapshot) Histogram(name string) (HistSnap, bool) {
	for _, h := range s.Sim.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistSnap{}, false
}
