package metrics

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestQuantileGolden pins the interpolation math against hand-computed
// values: log-linear inside geometric buckets, linear in the zero-edged
// first bucket, Max-capped in the overflow bucket.
func TestQuantileGolden(t *testing.T) {
	h := HistSnap{
		Bounds: []uint64{1, 2, 4, 8},
		Counts: []uint64{0, 0, 4, 4, 0},
		Count:  8,
		Max:    8,
	}
	// Rank 4 of 8 lands at the top of the (2,4] bucket.
	approx(t, "Q(0.5)", h.Quantile(0.5), 4)
	// Rank 2 is halfway through (2,4] in rank space: 2·(4/2)^0.5.
	approx(t, "Q(0.25)", h.Quantile(0.25), 2*math.Sqrt2)
	approx(t, "Q(1.0)", h.Quantile(1), 8)
	// p clamps above 1 and floors at 0 below.
	approx(t, "Q(1.5)", h.Quantile(1.5), 8)
	approx(t, "Q(0)", h.Quantile(0), 0)
	approx(t, "Q(-1)", h.Quantile(-1), 0)

	// First bucket has lower edge 0: linear interpolation.
	first := HistSnap{Bounds: []uint64{10, 100}, Counts: []uint64{4, 0, 0}, Count: 4, Max: 9}
	approx(t, "first-bucket Q(0.5)", first.Quantile(0.5), 5)

	// Overflow bucket interpolates toward the observed Max.
	over := HistSnap{Bounds: []uint64{1, 2}, Counts: []uint64{0, 0, 2}, Count: 2, Max: 100}
	approx(t, "overflow Q(0.5)", over.Quantile(0.5), 2*math.Sqrt(50))
	approx(t, "overflow Q(1.0)", over.Quantile(1), 100)

	var empty HistSnap
	approx(t, "empty Q(0.99)", empty.Quantile(0.99), 0)
}

// TestQuantileFromRegistry drives the full path: observe through a
// registered histogram, snapshot, and check quantiles are ordered and
// bracket the observed range.
func TestQuantileFromRegistry(t *testing.T) {
	r := New(2)
	h := r.Histogram("lat", PowersOfTwo(12))
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(int(i%2), i)
	}
	hs, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	var prev float64
	for _, p := range []float64{0.5, 0.95, 0.99, 0.999} {
		q := hs.Quantile(p)
		if q < prev {
			t.Fatalf("quantiles not monotone: Q(%v) = %v < %v", p, q, prev)
		}
		if q <= 0 || q > float64(hs.Max) {
			t.Fatalf("Q(%v) = %v outside (0, %d]", p, q, hs.Max)
		}
		prev = q
	}
	// The true median of 1..1000 is 500.5; bucket interpolation must land
	// in the right bucket (256, 512].
	if q := hs.Quantile(0.5); q < 256 || q > 512 {
		t.Fatalf("median %v outside its bucket (256,512]", q)
	}
}
