package metrics

import (
	"encoding/json"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New(2)
	c := r.Counter("tm/commits")
	g := r.Gauge("asf/llb_highwater")
	h := r.Histogram("asf/readset", []uint64{1, 2, 4})

	c.Inc(0)
	c.Add(1, 4)
	g.High(0, 3)
	g.High(0, 2) // lower: ignored
	g.Set(1, 7)
	h.Observe(0, 1)
	h.Observe(0, 2)
	h.Observe(1, 3) // bucket ≤4
	h.Observe(1, 9) // overflow

	s := r.Snapshot()
	cs, ok := s.Counter("tm/commits")
	if !ok || cs.Total != 5 || cs.PerCore[0] != 1 || cs.PerCore[1] != 4 {
		t.Fatalf("counter snapshot: %+v", cs)
	}
	gs, ok := s.Gauge("asf/llb_highwater")
	if !ok || gs.PerCore[0] != 3 || gs.PerCore[1] != 7 {
		t.Fatalf("gauge snapshot: %+v", gs)
	}
	hs, ok := s.Histogram("asf/readset")
	if !ok || hs.Count != 4 || hs.Sum != 15 || hs.Max != 9 {
		t.Fatalf("hist snapshot: %+v", hs)
	}
	// bounds [1,2,4] + overflow: counts [1,1,1,1]
	for i, want := range []uint64{1, 1, 1, 1} {
		if hs.Counts[i] != want {
			t.Fatalf("hist counts = %v", hs.Counts)
		}
	}

	r.Reset()
	s = r.Snapshot()
	if cs, _ := s.Counter("tm/commits"); cs.Total != 0 {
		t.Fatalf("counter survived reset: %+v", cs)
	}
	if hs, _ := s.Histogram("asf/readset"); hs.Count != 0 || hs.Max != 0 {
		t.Fatalf("histogram survived reset: %+v", hs)
	}
}

func TestHostSegregation(t *testing.T) {
	r := New(1)
	r.Counter("sim/thing")
	hc := r.HostCounter("host/wall_polls")
	hc.Add(0, 9)
	s := r.Snapshot()
	if _, ok := s.Counter("host/wall_polls"); ok {
		t.Fatal("host counter leaked into simulated section")
	}
	if len(s.Host.Counters) != 1 || s.Host.Counters[0].Total != 9 {
		t.Fatalf("host section: %+v", s.Host)
	}
	if len(s.Sim.Counters) != 1 || s.Sim.Counters[0].Name != "sim/thing" {
		t.Fatalf("sim section: %+v", s.Sim)
	}
}

// TestZeroValueHandlesInert: layers built without a registry must be able
// to record into zero-value handles safely.
func TestZeroValueHandlesInert(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc(0)
	g.High(3, 10)
	h.Observe(7, 42) // must not panic
}

// TestHotPathZeroAlloc pins the registry's core contract: recording on a
// sealed registry allocates nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	r := New(4)
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", PowersOfTwo(10))
	c.Inc(0) // seal

	n := testing.AllocsPerRun(1000, func() {
		c.Add(1, 3)
		g.High(2, 17)
		h.Observe(3, 100)
	})
	if n != 0 {
		t.Fatalf("hot path allocates %.1f objects per record batch", n)
	}
}

func TestRegistrationAfterSealPanics(t *testing.T) {
	r := New(1)
	c := r.Counter("a")
	c.Inc(0)
	defer func() {
		if recover() == nil {
			t.Fatal("late registration accepted")
		}
	}()
	r.Counter("b")
}

func TestDuplicateNamePanics(t *testing.T) {
	r := New(1)
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name accepted")
		}
	}()
	r.Gauge("x")
}

// TestSnapshotJSONRoundTrip: snapshots are the payload of BenchReport
// cells; they must marshal deterministically and round-trip.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New(2)
	a := r.Counter("a")
	b := r.Histogram("b", []uint64{8})
	a.Add(1, 2)
	b.Observe(0, 3)
	s1 := r.Snapshot()
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("round trip changed bytes:\n%s\n%s", j1, j2)
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(4)
	want := []uint64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowersOfTwo(4) = %v", got)
		}
	}
}
