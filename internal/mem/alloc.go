package mem

import "fmt"

// Layout carves the simulated address space into disjoint regions. Having an
// explicit layout keeps static data, per-thread heaps, and runtime metadata
// (e.g., the STM lock array) from sharing cache lines by accident — the paper
// pads "the entry points of the main data structures to avoid unnecessary
// contention aborts due to false sharing of cache lines".
type Layout struct {
	next Addr
}

// NewLayout returns a layout whose first region starts at base.
// base 0 is legal; the simulated space is purely physical.
func NewLayout(base Addr) *Layout { return &Layout{next: base.Line()} }

// Region reserves size bytes, aligned up to a page boundary on both ends so
// regions never share pages (and hence never share lines).
func (l *Layout) Region(size uint64) (base Addr, end Addr) {
	base = Addr(alignUp(uint64(l.next), PageSize))
	end = Addr(alignUp(uint64(base)+size, PageSize))
	l.next = end
	return base, end
}

// Arena is a bump allocator over a region of simulated memory. Each
// simulated thread gets its own arena (mirroring the scalable allocator the
// paper selected — thread-private arenas avoid allocator contention).
//
// Arena is not safe for concurrent use; the simulation engine serialises all
// calls.
type Arena struct {
	mem  *Memory
	base Addr
	next Addr
	end  Addr
}

// NewArena returns an arena allocating from [base, end) of m.
func NewArena(m *Memory, base, end Addr) *Arena {
	return &Arena{mem: m, base: base, next: base, end: end}
}

// Remaining returns the number of bytes still available.
func (a *Arena) Remaining() uint64 { return uint64(a.end - a.next) }

// Base returns the start of the arena's region.
func (a *Arena) Base() Addr { return a.base }

// Alloc reserves size bytes with the given alignment (which must be a power
// of two ≥ 8) and returns the address. It panics when the arena is
// exhausted: workloads are sized so this is a configuration error, not a
// runtime condition.
func (a *Arena) Alloc(size uint64, align uint64) Addr {
	if align < WordSize || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: bad alignment %d", align))
	}
	p := Addr(alignUp(uint64(a.next), align))
	if p+Addr(size) > a.end {
		panic(fmt.Sprintf("mem: arena exhausted (base=%v size=%d remaining=%d)",
			a.base, size, a.Remaining()))
	}
	a.next = p + Addr(size)
	return p
}

// AllocWords reserves n words, word-aligned.
func (a *Arena) AllocWords(n int) Addr { return a.Alloc(uint64(n)*WordSize, WordSize) }

// AllocLines reserves n whole cache lines, line-aligned. This is the
// padded allocation the paper uses for shared-structure entry points.
func (a *Arena) AllocLines(n int) Addr { return a.Alloc(uint64(n)*LineSize, LineSize) }

// AllocPadded reserves size bytes rounded up to a whole number of cache
// lines, line-aligned, so the object shares its lines with nothing else.
func (a *Arena) AllocPadded(size uint64) Addr {
	return a.Alloc(alignUp(size, LineSize), LineSize)
}

// Owns reports whether p lies inside the arena's allocated span — an
// address some previous Alloc handed out. Addresses at or beyond the bump
// pointer were never allocated.
func (a *Arena) Owns(p Addr) bool { return p >= a.base && p < a.next }

// Prefault installs the pages backing [addr, addr+size) without counting
// faults — for data built during (unsimulated) initialisation.
func (a *Arena) Prefault(addr Addr, size uint64) { a.mem.Prefault(addr, size) }

func alignUp(v, align uint64) uint64 { return (v + align - 1) &^ (align - 1) }
