package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrGeometry(t *testing.T) {
	a := Addr(0x12345)
	if a.Line() != 0x12340 {
		t.Errorf("Line = %v", a.Line())
	}
	if a.Page() != 0x12000 {
		t.Errorf("Page = %v", a.Page())
	}
	if Addr(0x40).LineIndex() != 0 || Addr(0x48).LineIndex() != 1 || Addr(0x78).LineIndex() != 7 {
		t.Error("LineIndex wrong")
	}
	if !Addr(0x48).WordAligned() || Addr(0x44).WordAligned() {
		t.Error("WordAligned wrong")
	}
}

func TestLoadStoreRoundtrip(t *testing.T) {
	m := New()
	m.Prefault(0, 1<<16)
	f := func(off uint16, v Word) bool {
		a := Addr(off) &^ (WordSize - 1)
		m.Store(a, v)
		return m.Load(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned store did not panic")
		}
	}()
	m.Store(0x41, 1)
}

func TestLineOpsMatchWordOps(t *testing.T) {
	m := New()
	m.Prefault(0, PageSize)
	for i := 0; i < WordsPerLine; i++ {
		m.Store(Addr(0x100+i*WordSize), Word(i*7+1))
	}
	var buf [WordsPerLine]Word
	m.LoadLine(0x108, &buf) // any address within the line
	for i := range buf {
		if buf[i] != Word(i*7+1) {
			t.Fatalf("LoadLine[%d] = %d", i, buf[i])
		}
		buf[i] *= 2
	}
	m.StoreLine(0x100, &buf)
	for i := 0; i < WordsPerLine; i++ {
		if got := m.Load(Addr(0x100 + i*WordSize)); got != Word((i*7+1)*2) {
			t.Fatalf("word %d = %d after StoreLine", i, got)
		}
	}
}

func TestDemandPaging(t *testing.T) {
	m := New()
	if m.Present(0x5000) {
		t.Fatal("fresh page present")
	}
	if !m.EnsurePresent(0x5000) {
		t.Fatal("first touch did not fault")
	}
	if m.EnsurePresent(0x5008) {
		t.Fatal("second touch faulted")
	}
	if m.FaultCount() != 1 {
		t.Fatalf("faults = %d", m.FaultCount())
	}
	m.Prefault(0x10000, 3*PageSize)
	if m.FaultCount() != 1 {
		t.Fatal("Prefault counted faults")
	}
	for off := Addr(0); off < 3*PageSize; off += PageSize {
		if !m.Present(0x10000 + off) {
			t.Fatalf("page at +%#x not prefaulted", off)
		}
	}
}

func TestArenaAlignmentAndExhaustion(t *testing.T) {
	m := New()
	a := NewArena(m, 0x1000, 0x2000)
	p1 := a.Alloc(24, 8)
	p2 := a.Alloc(8, 64)
	if p2%64 != 0 {
		t.Fatalf("line-aligned alloc at %v", p2)
	}
	if p2 < p1+24 {
		t.Fatal("overlapping allocations")
	}
	if got := a.AllocPadded(10); got%64 != 0 {
		t.Fatalf("padded alloc at %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhaustion did not panic")
		}
	}()
	a.Alloc(1<<20, 8)
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	l := NewLayout(0)
	b1, e1 := l.Region(100)
	b2, e2 := l.Region(PageSize + 1)
	if e1 > b2 {
		t.Fatalf("regions overlap: [%v,%v) [%v,%v)", b1, e1, b2, e2)
	}
	if b1%PageSize != 0 || b2%PageSize != 0 || e2%PageSize != 0 {
		t.Fatal("regions not page aligned")
	}
}
