// Package mem implements the simulated physical memory that every other
// component of the ASF stack operates on.
//
// The memory is a sparse, word-addressable physical address space organised
// in 4 KiB pages and 64-byte cache lines — the units the rest of the stack
// cares about: ASF protects memory at cache-line granularity and the OS model
// pages memory in at page granularity (demand paging; the first touch of a
// page raises a page fault, which aborts ASF speculative regions).
//
// All workload data structures live in this address space, not in Go objects,
// so that address layout (padding, colocation, associativity conflicts) has
// the same first-order effects it has on real hardware.
package mem

import "fmt"

// Word is the unit of data access: a 64-bit little-endian machine word.
type Word = uint64

// Addr is a simulated physical byte address.
type Addr uint64

// Fundamental geometry of the simulated machine. These mirror the AMD
// family 10h ("Barcelona") configuration used in the paper.
const (
	WordSize  = 8 // bytes per word
	WordShift = 3

	LineSize     = 64 // bytes per cache line (ASF's unit of protection)
	LineShift    = 6
	WordsPerLine = LineSize / WordSize

	PageSize     = 4096 // bytes per page (demand-paging granularity)
	PageShift    = 12
	WordsPerPage = PageSize / WordSize
)

// Line returns the cache-line address (aligned down) containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// Page returns the page address (aligned down) containing a.
func (a Addr) Page() Addr { return a &^ (PageSize - 1) }

// WordAligned reports whether a is 8-byte aligned.
func (a Addr) WordAligned() bool { return a&(WordSize-1) == 0 }

// LineIndex returns the index of the word within its cache line.
func (a Addr) LineIndex() int { return int(a>>WordShift) & (WordsPerLine - 1) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

type page struct {
	words   [WordsPerPage]Word
	present bool // installed by the (simulated) OS on first fault
}

// Memory is the simulated physical memory. It is not safe for concurrent
// use; the simulation engine serialises all accesses.
type Memory struct {
	pages map[Addr]*page

	// cache is a small direct-mapped page cache that skips the map lookup:
	// accesses are heavily page-local per core, but cores interleave, so a
	// single entry thrashes. Slots are indexed by a multiplicative hash of
	// the page number. Pages are never removed, so cached pointers cannot
	// dangle.
	cache [pageCacheSlots]pageCacheEnt

	// faultedPages counts demand-paging faults taken so far.
	faultedPages uint64
}

const pageCacheSlots = 256 // power of two

type pageCacheEnt struct {
	pa Addr
	p  *page // nil marks an empty slot
}

// cacheIdx spreads page numbers across the cache slots; neighbouring pages
// and same-offset pages of different regions must not collide.
func cacheIdx(pa Addr) int {
	return int((uint64(pa>>PageShift) * 0x9E3779B97F4A7C15) >> 56)
}

// New returns an empty memory. Every page starts non-present; the first
// access must be preceded by EnsurePresent (the simulator's OS model does
// this and charges the page-fault cost).
func New() *Memory {
	return &Memory{pages: make(map[Addr]*page)}
}

func (m *Memory) pageFor(a Addr) *page {
	pa := a.Page()
	e := &m.cache[cacheIdx(pa)]
	if e.p != nil && e.pa == pa {
		return e.p
	}
	p, ok := m.pages[pa]
	if !ok {
		p = &page{}
		m.pages[pa] = p
	}
	e.pa, e.p = pa, p
	return p
}

// Present reports whether the page containing a has been installed. Unlike
// pageFor it never materialises the page.
func (m *Memory) Present(a Addr) bool {
	pa := a.Page()
	e := &m.cache[cacheIdx(pa)]
	if e.p != nil && e.pa == pa {
		return e.p.present
	}
	p, ok := m.pages[pa]
	if !ok {
		return false
	}
	e.pa, e.p = pa, p
	return p.present
}

// EnsurePresent installs the page containing a, returning true if this
// access faulted (i.e., the page was not yet present). The caller is
// responsible for charging page-fault latency and aborting speculative
// regions, mirroring the behaviour of a first-touch minor fault.
func (m *Memory) EnsurePresent(a Addr) (faulted bool) {
	p := m.pageFor(a)
	if p.present {
		return false
	}
	p.present = true
	m.faultedPages++
	return true
}

// Prefault installs every page in [a, a+size) without counting faults.
// Used to model memory that was touched during (unsimulated) initialisation.
func (m *Memory) Prefault(a Addr, size uint64) {
	for pa := a.Page(); pa < a+Addr(size); pa += PageSize {
		m.pageFor(pa).present = true
	}
}

// FaultCount returns the number of demand-paging faults taken so far.
func (m *Memory) FaultCount() uint64 { return m.faultedPages }

// Load reads the word at a. a must be word-aligned.
func (m *Memory) Load(a Addr) Word {
	mustAligned(a)
	return m.pageFor(a).words[wordIndex(a)]
}

// Store writes the word at a. a must be word-aligned.
func (m *Memory) Store(a Addr, v Word) {
	mustAligned(a)
	m.pageFor(a).words[wordIndex(a)] = v
}

// LoadLine copies the 8 words of the cache line containing a into buf.
func (m *Memory) LoadLine(a Addr, buf *[WordsPerLine]Word) {
	la := a.Line()
	p := m.pageFor(la)
	base := wordIndex(la)
	copy(buf[:], p.words[base:base+WordsPerLine])
}

// StoreLine writes the 8 words of buf to the cache line containing a.
func (m *Memory) StoreLine(a Addr, buf *[WordsPerLine]Word) {
	la := a.Line()
	p := m.pageFor(la)
	base := wordIndex(la)
	copy(p.words[base:base+WordsPerLine], buf[:])
}

func wordIndex(a Addr) int {
	return int(a&(PageSize-1)) >> WordShift
}

func mustAligned(a Addr) {
	if !a.WordAligned() {
		panic(fmt.Sprintf("mem: unaligned word access at %v", a))
	}
}
