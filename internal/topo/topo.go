// Package topo models the socket topology of the simulated machine: how
// the cores partition into sockets. The paper's machine is a single-socket
// 8-core Barcelona; the production-shape scenarios (E16) widen that to 2–4
// sockets, each with its own L3 slice, where crossing the socket boundary
// costs an extra coherence-directory hop (cache.Config.XSockLat).
//
// A Topology is pure arithmetic over core ids — no simulator state — so
// every layer (cache, asf, metrics tables) can share one value without
// import cycles. Core ids are assigned socket-major: cores
// [s*CoresPerSocket, (s+1)*CoresPerSocket) live on socket s.
package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Topology is one machine shape: Sockets × CoresPerSocket. The zero value
// means "unspecified" (single-socket semantics with whatever core count the
// machine has); use Parse or Make to build a real one.
type Topology struct {
	Sockets        int
	CoresPerSocket int
}

// Make builds a validated topology.
func Make(sockets, coresPerSocket int) (Topology, error) {
	t := Topology{Sockets: sockets, CoresPerSocket: coresPerSocket}
	if sockets <= 0 || coresPerSocket <= 0 {
		return Topology{}, fmt.Errorf("topo: bad shape %dx%d (both factors must be positive)", sockets, coresPerSocket)
	}
	return t, nil
}

// Parse converts the flag spelling "SxC" (e.g. "2x8": 2 sockets of 8 cores)
// into a Topology. The empty string parses to the zero value.
func Parse(s string) (Topology, error) {
	if s == "" {
		return Topology{}, nil
	}
	i := strings.IndexByte(s, 'x')
	if i <= 0 || i+1 >= len(s) {
		return Topology{}, fmt.Errorf("topo: bad topology %q (want SOCKETSxCORES, e.g. 2x8)", s)
	}
	sockets, err1 := strconv.Atoi(s[:i])
	cps, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil {
		return Topology{}, fmt.Errorf("topo: bad topology %q (want SOCKETSxCORES, e.g. 2x8)", s)
	}
	return Make(sockets, cps)
}

// IsZero reports whether t is the unspecified topology.
func (t Topology) IsZero() bool { return t == Topology{} }

// Total returns the machine's core count, Sockets × CoresPerSocket.
func (t Topology) Total() int { return t.Sockets * t.CoresPerSocket }

// SocketOf returns the socket core c lives on. The zero topology maps every
// core to socket 0.
func (t Topology) SocketOf(c int) int {
	if t.CoresPerSocket <= 0 {
		return 0
	}
	return c / t.CoresPerSocket
}

// String returns the flag spelling ("2x8"); the zero value prints "1xN?"-
// free as empty string so it round-trips through Parse.
func (t Topology) String() string {
	if t.IsZero() {
		return ""
	}
	return fmt.Sprintf("%dx%d", t.Sockets, t.CoresPerSocket)
}

// PerSocket folds a per-core slice (the metrics layer's PerCore arrays)
// into per-socket sums. Cores beyond Total() — or all cores, for the zero
// topology — fold into socket 0's bucket on a best-effort basis so callers
// never index out of range.
func (t Topology) PerSocket(perCore []uint64) []uint64 {
	n := t.Sockets
	if n <= 0 {
		n = 1
	}
	out := make([]uint64, n)
	for c, v := range perCore {
		s := t.SocketOf(c)
		if s >= n {
			s = n - 1
		}
		out[s] += v
	}
	return out
}
