package topo

import "testing"

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		want    Topology
		wantErr bool
	}{
		{"", Topology{}, false},
		{"1x8", Topology{1, 8}, false},
		{"2x8", Topology{2, 8}, false},
		{"4x16", Topology{4, 16}, false},
		{"x8", Topology{}, true},
		{"2x", Topology{}, true},
		{"2y8", Topology{}, true},
		{"0x8", Topology{}, true},
		{"2x-1", Topology{}, true},
		{"axb", Topology{}, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, s := range []string{"", "1x8", "2x8", "4x16"} {
		tp, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if tp.String() != s {
			t.Errorf("Parse(%q).String() = %q", s, tp.String())
		}
	}
}

func TestSocketOf(t *testing.T) {
	tp := Topology{Sockets: 4, CoresPerSocket: 16}
	if tp.Total() != 64 {
		t.Fatalf("Total = %d", tp.Total())
	}
	for c := 0; c < 64; c++ {
		if got, want := tp.SocketOf(c), c/16; got != want {
			t.Fatalf("SocketOf(%d) = %d, want %d", c, got, want)
		}
	}
	var zero Topology
	if zero.SocketOf(17) != 0 {
		t.Error("zero topology must map every core to socket 0")
	}
}

func TestPerSocket(t *testing.T) {
	tp := Topology{Sockets: 2, CoresPerSocket: 4}
	per := []uint64{1, 2, 3, 4, 10, 20, 30, 40}
	got := tp.PerSocket(per)
	if len(got) != 2 || got[0] != 10 || got[1] != 100 {
		t.Fatalf("PerSocket = %v, want [10 100]", got)
	}
	var zero Topology
	if s := zero.PerSocket([]uint64{5, 6}); len(s) != 1 || s[0] != 11 {
		t.Fatalf("zero PerSocket = %v", s)
	}
}
