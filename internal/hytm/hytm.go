// Package hytm is the hybrid TM runtime: ASF hardware transactions plus a
// *concurrent* software fallback, replacing ASF-TM's serial-irrevocable
// token as the overflow path. It implements the same tm ABI as
// internal/asftm and internal/stm, so every workload runs on it unchanged.
//
// The design follows the NOrec-style hybrids (Dalessandro et al., Hybrid
// NOrec; Riegel et al.) adapted to this simulator's ASF model:
//
//   - a shared commit-sequence word (swSeq, a seqlock: odd = a software
//     writeback or a serial transaction is in flight). Every hardware
//     region's first speculative read subscribes to it, so a committing
//     software transaction aborts exactly the hardware transactions it
//     races with — and only during its (short) writeback window, not for
//     its whole duration as the serial token did;
//   - a hardware-commit counter (hwSeq, its own cache line) that hardware
//     *writer* transactions increment with their last speculative store.
//     Software transactions sample both words and re-validate their read
//     set by value whenever either moves (NOrec's value-based validation),
//     so an atomically-committed hardware write set can never tear a
//     software snapshot. The bump is elided while no software transaction
//     exists: a fallback-population count (swCount) shares the seqlock's
//     cache line — covered by the same subscription, so a software
//     transaction's arrival aborts (and thereby re-arms) the hardware
//     regions that decided to skip it — and hardware writers conflict on
//     hwSeq only while there is someone to notify;
//   - the software fallback: an LSA-style invisible-read descriptor with a
//     redo log. Reads are plain loads (the simulator's requester-wins
//     conflict detection gives strong isolation against in-flight hardware
//     writers); writes buffer in the redo log and publish at commit under
//     the seqlock, after value validation. Software transactions run
//     concurrently with each other and with hardware transactions;
//   - true serial-irrevocable mode survives only for the cases that need
//     it — malloc-unsafe operations and syscalls reached through
//     BecomeIrrevocable — implemented as a degenerate software commit that
//     holds the seqlock for the whole transaction.
//
// Mode selection: capacity overflows fall back to software immediately
// (the working set will never fit); contention retries in hardware with
// back-off up to MaxHWAttempts, then falls back to software; the software
// path escalates to serial only on an explicit irrevocability request or
// as a livelock safety valve after MaxSWAttempts.
package hytm

import (
	"asfstack/internal/asf"
	"asfstack/internal/mem"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// Config tunes contention management and ABI costs for both paths.
type Config struct {
	// MaxHWAttempts is how many hardware attempts are made before a
	// transaction falls back to the concurrent software path. Capacity
	// overflows fall back immediately.
	MaxHWAttempts int
	// MaxSWAttempts is the livelock safety valve: software attempts before
	// the transaction escalates to serial-irrevocable mode. Software
	// conflicts are value-based and a failed validation means someone else
	// committed, so in practice this bound is never reached.
	MaxSWAttempts int
	// BackoffBase and BackoffMax bound the exponential back-off (cycles).
	BackoffBase uint64
	BackoffMax  uint64

	// ForceSW routes every transaction straight to the concurrent software
	// fallback, skipping the hardware attempts. Litmus conformance runs use
	// it to exercise the fallback's isolation behaviour directly — the
	// suite's transactions are far too small to overflow an LLB naturally.
	ForceSW bool

	// Hardware-path ABI costs, in instructions (as asftm.Config).
	BeginInstr   int
	CommitInstr  int
	BarrierInstr int

	// Software-path lengths, in instructions (beyond the memory traffic,
	// which is charged by the cache model). The redo-log write barrier is
	// cheaper than TinySTM's encounter-time locking (no CAS), the read
	// barrier pays the two seqlock sample loads instead of lock checks.
	SWBeginInstr, SWCommitInstr int
	SWReadInstr, SWWriteInstr   int
	SWValidateInstrPerEntry     int
	SWWritebackInstrPerEntry    int
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		MaxHWAttempts: 16,
		MaxSWAttempts: 1024,
		BackoffBase:   64,
		BackoffMax:    1 << 14,

		BeginInstr:   60,
		CommitInstr:  16,
		BarrierInstr: 2,

		SWBeginInstr:             50,
		SWCommitInstr:            30,
		SWReadInstr:              20,
		SWWriteInstr:             25,
		SWValidateInstrPerEntry:  4,
		SWWritebackInstrPerEntry: 4,
	}
}

// Runtime implements tm.Runtime as a hardware/software hybrid.
type Runtime struct {
	sys  *asf.System
	heap *tm.Heap
	m    *sim.Machine
	cfg  Config
	name string

	swSeq   mem.Addr // commit-sequence seqlock
	swCount mem.Addr // live software-fallback transactions (same line as swSeq)
	hwSeq   mem.Addr // hardware-commit counter, alone on its cache line

	stats []tm.Stats
	txs   []hyTx
	depth []int // per-core flat-nesting depth of Atomic calls

	hook tm.CommitHook
	prof tm.TxProfiler

	met rtMetrics
}

// SetCommitHook implements tm.HookableRuntime.
func (r *Runtime) SetCommitHook(h tm.CommitHook) { r.hook = h }

// SetProfiler implements tm.ProfilableRuntime.
func (r *Runtime) SetProfiler(p tm.TxProfiler) { r.prof = p }

// record feeds the flight recorder (nil check = the disabled-path cost).
func (r *Runtime) record(c *sim.CPU, ev tm.TxEvent) {
	if r.prof != nil {
		ev.Time = c.Now()
		r.prof.Record(c.ID(), ev)
	}
}

// notifyCommit reports a commit to the hook under the global turn (see
// tm.CommitHook).
func (r *Runtime) notifyCommit(c *sim.CPU, serial bool) {
	if r.hook != nil {
		c.SpecOp(0, func() { r.hook(c.ID(), serial) })
	}
}

// rtMetrics holds the runtime's metric handles (zero-value inert).
type rtMetrics struct {
	// hwAttempts is the number of hardware attempts each transaction made
	// before resolving (committing in hardware or falling back).
	hwAttempts metrics.Histogram
	// swAttempts is the number of software attempts each fallback
	// transaction made before committing.
	swAttempts metrics.Histogram
	// backoff records each contention back-off delay, in cycles.
	backoff metrics.Histogram
	// hwCommits/swCommits split the commit count by path; serialEntries
	// counts entries into true serial-irrevocable mode.
	hwCommits metrics.Counter
	swCommits metrics.Counter
	// seqAborts counts hardware aborts induced by the commit-sequence
	// seqlock (waits at begin plus in-flight kills by software commits).
	seqAborts metrics.Counter
	// swCycles accumulates simulated cycles spent resident in the software
	// fallback (from fallback entry to commit or serial escalation);
	// serialCycles accumulates cycles the seqlock was held for serial mode.
	swCycles      metrics.Counter
	serialEntries metrics.Counter
	serialCycles  metrics.Counter
}

// SetMetrics registers the runtime's instruments with reg. Must be called
// before the first transaction (stack construction does this).
func (r *Runtime) SetMetrics(reg *metrics.Registry) {
	r.met.hwAttempts = reg.Histogram("hytm/hw_attempts", metrics.PowersOfTwo(6))
	r.met.swAttempts = reg.Histogram("hytm/sw_attempts", metrics.PowersOfTwo(8))
	r.met.backoff = reg.Histogram("hytm/backoff_cycles", metrics.PowersOfTwo(16))
	r.met.hwCommits = reg.Counter("hytm/hw_commits")
	r.met.swCommits = reg.Counter("hytm/sw_commits")
	r.met.seqAborts = reg.Counter("hytm/seqlock_aborts")
	r.met.swCycles = reg.Counter("hytm/sw_cycles")
	r.met.serialEntries = reg.Counter("hytm/serial_entries")
	r.met.serialCycles = reg.Counter("hytm/serial_cycles")
}

// New builds the hybrid runtime for an installed ASF system. layout
// provides the runtime's metadata region (the two sequence words, each on
// its own line, plus per-core software logs) and name is the figure label
// ("HyTM-8", "HyTM-256").
func New(sys *asf.System, heap *tm.Heap, m *sim.Machine, layout *mem.Layout, name string) *Runtime {
	base, _ := layout.Region(2 * mem.LineSize)
	m.Mem.Prefault(base, 2*mem.LineSize)
	cores := m.Config().Cores
	r := &Runtime{
		sys:     sys,
		heap:    heap,
		m:       m,
		cfg:     DefaultConfig(),
		name:    name,
		swSeq:   base,
		swCount: base + mem.WordSize,
		hwSeq:   base + mem.LineSize,
		stats:   make([]tm.Stats, cores),
		txs:     make([]hyTx, cores),
		depth:   make([]int, cores),
	}
	for i := range r.txs {
		logBase, logEnd := layout.Region(1 << 18) // 256 KiB of log space
		m.Mem.Prefault(logBase, uint64(logEnd-logBase))
		r.txs[i] = hyTx{
			r:        r,
			windex:   make(map[mem.Addr]int),
			readLog:  logBase,
			writeLog: logBase + (1 << 17),
		}
	}
	return r
}

// SetConfig replaces the contention-management configuration.
func (r *Runtime) SetConfig(cfg Config) { r.cfg = cfg }

// Name implements tm.Runtime.
func (r *Runtime) Name() string { return r.name }

// Stats implements tm.Runtime.
func (r *Runtime) Stats(core int) tm.Stats { return r.stats[core] }

// ResetStats implements tm.Runtime.
func (r *Runtime) ResetStats() {
	for i := range r.stats {
		r.stats[i] = tm.Stats{}
		r.sys.Unit(i).ResetStats()
	}
}

// Transaction modes. A transaction starts in hardware and only moves
// forward: hw → sw → serial.
const (
	modeHW = iota
	modeSW
	modeSerial
)

// Atomic implements tm.Runtime: hardware attempts with the seqlock
// subscription, then the concurrent software fallback, then (explicit
// request or livelock valve only) serial-irrevocable mode.
func (r *Runtime) Atomic(c *sim.CPU, body func(tx tm.Tx)) {
	id := c.ID()
	if r.depth[id] > 0 {
		// Flat nesting at the language level.
		r.depth[id]++
		body(&r.txs[id])
		r.depth[id]--
		return
	}
	r.depth[id] = 1
	defer func() { r.depth[id] = 0 }()

	st := &r.stats[id]
	u := r.sys.Unit(id)
	t := &r.txs[id]
	t.c, t.u, t.mode, t.wrote = c, u, modeHW, false

	if r.cfg.ForceSW {
		r.record(c, tm.TxEvent{Kind: tm.TxEvBegin, Path: tm.PathSW,
			Aborter: sim.NoCore, Addr: sim.NoAddr})
		r.runSW(c, t, body)
		return
	}

	attempts := 0
	for {
		c.SetCategory(sim.CatTxStartCommit)
		snap := c.Counters()
		c.Trace(sim.TraceTxBegin, 0)
		attemptStart := c.Now()
		if attempts == 0 {
			r.record(c, tm.TxEvent{Kind: tm.TxEvBegin, Path: tm.PathHW,
				Aborter: sim.NoCore, Addr: sim.NoAddr})
		}
		c.Exec(r.cfg.BeginInstr)

		reason, code := u.Region(func() {
			// Subscribe: the commit-sequence word is the first
			// speculative read of every region. Odd means a software
			// writeback (or serial transaction) is in flight — we must
			// not read around it; and any later acquisition's CAS write
			// aborts us instantly.
			if u.Load(r.swSeq)&1 != 0 {
				u.Abort(tm.CodeSeqLocked)
			}
			// Same subscribed line: if a software transaction arrives
			// after this load, its population increment aborts us, so a
			// false answer stays true for the whole region.
			t.swPresent = u.Load(r.swCount) != 0
			c.SetCategory(sim.CatTxApp)
			body(t)
			c.SetCategory(sim.CatTxStartCommit)
			if t.wrote && t.swPresent {
				// Publish the commit to the concurrent software
				// transactions: their value validation re-arms when
				// the counter moves. Last store of the region, so the
				// conflict window on the counter line is one commit.
				u.Store(r.hwSeq, u.Load(r.hwSeq)+1)
			}
			c.Exec(r.cfg.CommitInstr)
		})

		if reason == sim.AbortNone {
			st.Commits++
			r.met.hwCommits.Inc(id)
			r.met.hwAttempts.Observe(id, uint64(attempts+1))
			r.notifyCommit(c, false)
			c.Trace(sim.TraceTxCommit, 0)
			if r.prof != nil {
				read, write := u.LastSetSizes()
				r.record(c, tm.TxEvent{Kind: tm.TxEvCommit, Path: tm.PathHW,
					Aborter: sim.NoCore, Addr: sim.NoAddr,
					Reads: uint32(read), Writes: uint32(write), Cycles: c.Now() - attemptStart})
			}
			c.SetCategory(sim.CatNonInstr)
			return
		}

		c.MoveToAbort(snap)
		c.Trace(sim.TraceTxAbort, uint64(reason))
		if r.prof != nil {
			by, addr := u.LastAbortEdge()
			read, write := u.LastSetSizes()
			r.record(c, tm.TxEvent{Kind: tm.TxEvAbort, Path: tm.PathHW,
				Cause: reason, Code: code, Aborter: by, Addr: addr,
				Reads: uint32(read), Writes: uint32(write), Cycles: c.Now() - attemptStart})
		}
		c.SetCategory(sim.CatAbort)
		attempts++
		t.wrote = false

		fallback := false
		switch reason {
		case sim.AbortCapacity:
			// The working set does not fit: go software, concurrently.
			st.Aborts[sim.AbortCapacity]++
			fallback = true
		case sim.AbortExplicit:
			switch code {
			case tm.CodeMallocRefill:
				st.MallocAborts++
				st.Aborts[sim.AbortExplicit]++
				r.heap.Refill(c, r.heap.ChunkSize)
			case tm.CodeSeqLocked:
				st.Aborts[sim.AbortContention]++
				st.SeqAborts++
				r.met.seqAborts.Inc(id)
				r.waitSeqEven(c)
			case tm.CodeSerialRequest:
				st.Aborts[sim.AbortExplicit]++
				r.met.hwAttempts.Observe(id, uint64(attempts))
				c.Trace(sim.TraceTxFallback, uint64(tm.PathSerial))
				r.record(c, tm.TxEvent{Kind: tm.TxEvFallback, Path: tm.PathSerial,
					Aborter: sim.NoCore, Addr: sim.NoAddr})
				r.runSerial(c, t, body)
				return
			default:
				st.Aborts[sim.AbortExplicit]++
			}
		case sim.AbortContention:
			st.Aborts[sim.AbortContention]++
			r.backoff(c, attempts)
		default:
			// Page fault (now handled), interrupt, syscall: retry.
			st.Aborts[reason]++
		}

		if fallback || attempts >= r.cfg.MaxHWAttempts {
			r.met.hwAttempts.Observe(id, uint64(attempts))
			c.Trace(sim.TraceTxFallback, uint64(tm.PathSW))
			r.record(c, tm.TxEvent{Kind: tm.TxEvFallback, Path: tm.PathSW,
				Aborter: sim.NoCore, Addr: sim.NoAddr})
			r.runSW(c, t, body)
			return
		}
	}
}

// backoff spins for a randomised exponential delay.
func (r *Runtime) backoff(c *sim.CPU, attempt int) {
	limit := r.cfg.BackoffBase << uint(min(attempt, 8))
	if limit > r.cfg.BackoffMax {
		limit = r.cfg.BackoffMax
	}
	delay := uint64(c.Rand().Int63n(int64(limit))) + 1
	r.met.backoff.Observe(c.ID(), delay)
	c.Cycles(delay)
}

// waitSeqEven polls the commit-sequence word with plain reads (they do not
// conflict) until the in-flight software writeback or serial transaction
// releases it.
func (r *Runtime) waitSeqEven(c *sim.CPU) {
	for c.Load(r.swSeq)&1 != 0 {
		c.Cycles(200)
	}
}

// hyConflict is the panic sentinel for the software longjmp on abort.
type hyConflict struct{ core int }

// runSW executes body on the concurrent software fallback path, retrying
// on validation failures until commit (or serial escalation).
func (r *Runtime) runSW(c *sim.CPU, t *hyTx, body func(tx tm.Tx)) {
	id := c.ID()
	st := &r.stats[id]
	entry := c.Now()
	// Announce the fallback: hardware writers start bumping hwSeq, and the
	// write probe aborts any in-flight region that read a zero count.
	c.FetchAdd(r.swCount, 1)
	defer c.FetchAdd(r.swCount, ^mem.Word(0))
	retries := 0
	for {
		c.SetCategory(sim.CatTxStartCommit)
		snap := c.Counters()
		c.Trace(sim.TraceTxBegin, 0)
		attemptStart := c.Now()
		t.swBegin()

		committed := func() (committed bool) {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if hc, ok := rec.(hyConflict); ok && hc.core == id {
					committed = false
					return
				}
				panic(rec)
			}()
			c.SetCategory(sim.CatTxApp)
			body(t)
			c.SetCategory(sim.CatTxStartCommit)
			t.swCommit()
			return true
		}()

		if committed {
			st.Commits++
			st.SWCommits++
			r.notifyCommit(c, false)
			r.met.swCommits.Inc(id)
			r.met.swAttempts.Observe(id, uint64(retries+1))
			r.met.swCycles.Add(id, c.Now()-entry)
			r.record(c, tm.TxEvent{Kind: tm.TxEvCommit, Path: tm.PathSW,
				Aborter: sim.NoCore, Addr: sim.NoAddr,
				Reads: uint32(len(t.reads)), Writes: uint32(len(t.writes)), Cycles: c.Now() - attemptStart})
			t.swReset()
			c.Trace(sim.TraceTxCommit, 0)
			c.SetCategory(sim.CatNonInstr)
			return
		}

		// Aborted: the redo log is simply discarded — nothing was
		// published, so there is no undo.
		c.MoveToAbort(snap)
		c.Trace(sim.TraceTxAbort, 0)
		r.record(c, tm.TxEvent{Kind: tm.TxEvAbort, Path: tm.PathSW,
			STM: true, Aborter: t.lastBy, Addr: t.lastAddr,
			Reads: uint32(len(t.reads)), Writes: uint32(len(t.writes)), Cycles: c.Now() - attemptStart})
		c.SetCategory(sim.CatAbort)
		st.STMAborts++
		retries++
		force := t.forceSerial
		t.forceSerial = false
		t.swReset()
		if force || retries >= r.cfg.MaxSWAttempts {
			r.met.swAttempts.Observe(id, uint64(retries))
			r.met.swCycles.Add(id, c.Now()-entry)
			c.Trace(sim.TraceTxFallback, uint64(tm.PathSerial))
			r.record(c, tm.TxEvent{Kind: tm.TxEvFallback, Path: tm.PathSerial,
				Aborter: sim.NoCore, Addr: sim.NoAddr})
			r.runSerial(c, t, body)
			return
		}
		r.backoff(c, retries)
	}
}

// runSerial executes body in serial-irrevocable mode: a degenerate
// software commit that holds the seqlock for the whole transaction. The
// acquisition aborts every subscribed hardware region; concurrent software
// transactions stall at their next validation until release, then
// re-validate by value against the serial transaction's in-place writes.
func (r *Runtime) runSerial(c *sim.CPU, t *hyTx, body func(tx tm.Tx)) {
	id := c.ID()
	st := &r.stats[id]
	c.SetCategory(sim.CatTxStartCommit)
	c.Trace(sim.TraceTxBegin, 0)
	attemptStart := c.Now()
	var seq mem.Word
	for {
		s := c.Load(r.swSeq)
		if s&1 == 0 {
			killed := r.sys.Monitors(c, r.swSeq)
			if _, ok := c.CAS(r.swSeq, s, s+1); ok {
				seq = s
				if killed > 0 {
					st.SeqAborts += uint64(killed)
					r.met.seqAborts.Add(id, uint64(killed))
				}
				break
			}
		}
		c.Cycles(uint64(c.Rand().Int63n(400)) + 100)
	}
	t.mode = modeSerial
	r.met.serialEntries.Inc(id)
	held := c.Now()
	c.SetCategory(sim.CatTxApp)
	body(t)
	c.SetCategory(sim.CatTxStartCommit)
	r.notifyCommit(c, true) // before the release: the seqlock is the commit point
	c.Store(r.swSeq, seq+2)
	r.met.serialCycles.Add(id, c.Now()-held)
	t.mode = modeHW
	st.Commits++
	st.Serial++
	c.Trace(sim.TraceTxCommit, 0)
	r.record(c, tm.TxEvent{Kind: tm.TxEvCommit, Path: tm.PathSerial,
		Aborter: sim.NoCore, Addr: sim.NoAddr, Cycles: c.Now() - attemptStart})
	c.SetCategory(sim.CatNonInstr)
}

// --- transaction descriptor ------------------------------------------------

type swRead struct {
	addr mem.Addr
	val  mem.Word
}

type swWrite struct {
	addr mem.Addr
	val  mem.Word
}

// hyTx implements tm.Tx for all three code paths — hardware, concurrent
// software, serial — dispatched by mode, like the begin function's return
// value selects the compiled code path (§3.1).
type hyTx struct {
	r    *Runtime
	c    *sim.CPU
	u    *asf.Unit
	mode int
	// wrote marks a hardware transaction that performed a transactional
	// store; swPresent records whether software transactions existed at
	// region begin (together they decide the hwSeq bump at commit).
	wrote, swPresent bool
	// forceSerial carries a BecomeIrrevocable request out of the software
	// path's abort unwind.
	forceSerial bool

	// Software descriptor: NOrec-style value-logged reads and a redo log
	// with an index for read-own-write.
	swSnap, hwSnap mem.Word
	reads          []swRead
	writes         []swWrite
	windex         map[mem.Addr]int

	// readLog/writeLog are the simulated-memory backing of the logs, so
	// each append charges a real store (the logs stay cache-hot).
	readLog, writeLog mem.Addr

	// lastBy/lastAddr stash the abort edge for the flight recorder before
	// the software longjmp unwinds (NOrec value validation cannot identify
	// the aborter, so lastBy stays sim.NoCore).
	lastBy   int
	lastAddr mem.Addr
}

func (t *hyTx) swAbort() {
	t.swAbortAt(sim.NoAddr)
}

// swAbortAt records the conflicting address, then unwinds.
func (t *hyTx) swAbortAt(a mem.Addr) {
	t.lastBy, t.lastAddr = sim.NoCore, a
	panic(hyConflict{core: t.c.ID()})
}

// swBegin samples a consistent (even) seqlock snapshot.
func (t *hyTx) swBegin() {
	c := t.c
	t.mode = modeSW
	c.Exec(t.r.cfg.SWBeginInstr)
	for {
		s := c.Load(t.r.swSeq)
		if s&1 == 0 {
			t.swSnap = s
			break
		}
		c.Cycles(200)
	}
	t.hwSnap = c.Load(t.r.hwSeq)
}

// swRevalidate re-establishes a consistent snapshot: wait out any
// writeback, validate every read by value, and move the snapshot forward.
// Aborts (software longjmp) on a changed value.
func (t *hyTx) swRevalidate() {
	c := t.c
	for {
		s := c.Load(t.r.swSeq)
		if s&1 != 0 {
			c.Cycles(200)
			continue
		}
		h := c.Load(t.r.hwSeq)
		for i := range t.reads {
			e := &t.reads[i]
			c.Exec(t.r.cfg.SWValidateInstrPerEntry)
			if c.Load(e.addr) != e.val {
				t.swAbortAt(e.addr)
			}
		}
		if c.Load(t.r.swSeq) == s {
			t.swSnap, t.hwSnap = s, h
			return
		}
	}
}

// swLoad is the NOrec read barrier: read-own-write from the redo log, else
// a plain load bracketed by the two sequence samples, re-validating when
// either moved since the snapshot.
func (t *hyTx) swLoad(a mem.Addr) mem.Word {
	c := t.c
	c.Exec(t.r.cfg.SWReadInstr)
	if i, ok := t.windex[a]; ok {
		return t.writes[i].val
	}
	v := c.Load(a)
	for {
		if c.Load(t.r.swSeq) == t.swSnap && c.Load(t.r.hwSeq) == t.hwSnap {
			break
		}
		t.swRevalidate()
		v = c.Load(a)
	}
	// Append to the read log (one simulated store).
	c.Store(t.readLogSlot(), mem.Word(a))
	t.reads = append(t.reads, swRead{addr: a, val: v})
	return v
}

// swStore buffers the write in the redo log; nothing is published until
// commit, so concurrent readers never see speculative software state.
func (t *hyTx) swStore(a mem.Addr, v mem.Word) {
	c := t.c
	c.Exec(t.r.cfg.SWWriteInstr)
	if i, ok := t.windex[a]; ok {
		t.writes[i].val = v
		c.Store(t.writeLog+mem.Addr((uint64(i)*2+1)*mem.WordSize)&((1<<17)-1), v)
		return
	}
	// Redo-log append: address + value (two simulated stores).
	i := len(t.writes)
	c.Store(t.writeLogSlot(i), mem.Word(a))
	c.Store(t.writeLogSlot(i)+mem.WordSize, v)
	t.windex[a] = i
	t.writes = append(t.writes, swWrite{addr: a, val: v})
}

// swCommit publishes the redo log under the seqlock. Read-only
// transactions commit at their (validated) snapshot without touching it.
func (t *hyTx) swCommit() {
	c := t.c
	r := t.r
	c.Exec(r.cfg.SWCommitInstr)
	if len(t.writes) == 0 {
		if c.Load(r.swSeq) != t.swSnap || c.Load(r.hwSeq) != t.hwSnap {
			t.swRevalidate()
		}
		return
	}
	id := c.ID()
	st := &r.stats[id]
	for {
		if c.Load(r.swSeq) != t.swSnap {
			// Someone committed since the snapshot: re-validate (and
			// move the snapshot up) before trying to acquire.
			t.swRevalidate()
			continue
		}
		// Count the subscribed hardware regions the acquisition is about
		// to kill (seqlock-induced aborts, attributed here: the victims
		// observe an indistinguishable contention abort).
		killed := r.sys.Monitors(c, r.swSeq)
		if _, ok := c.CAS(r.swSeq, t.swSnap, t.swSnap+1); !ok {
			c.Cycles(uint64(c.Rand().Int63n(200)) + 50)
			continue
		}
		if killed > 0 {
			st.SeqAborts += uint64(killed)
			r.met.seqAborts.Add(id, uint64(killed))
		}
		break
	}
	// Seqlock held (odd). The acquisition CAS itself validated that no
	// software commit intervened; a hardware commit still might have.
	if c.Load(r.hwSeq) != t.hwSnap {
		for i := range t.reads {
			e := &t.reads[i]
			c.Exec(r.cfg.SWValidateInstrPerEntry)
			if c.Load(e.addr) != e.val {
				c.Store(r.swSeq, t.swSnap+2) // release before unwinding
				t.swAbortAt(e.addr)
			}
		}
	}
	for i := range t.writes {
		w := &t.writes[i]
		c.Exec(r.cfg.SWWritebackInstrPerEntry)
		c.Store(w.addr, w.val)
	}
	c.Store(r.swSeq, t.swSnap+2)
}

func (t *hyTx) swReset() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	clear(t.windex)
	t.mode = modeHW
}

// readLogSlot returns the next simulated-memory slot of the read log,
// wrapping within its region (the charge is what matters).
func (t *hyTx) readLogSlot() mem.Addr {
	off := (uint64(len(t.reads)) * mem.WordSize) & ((1 << 17) - 1)
	return t.readLog + mem.Addr(off)
}

func (t *hyTx) writeLogSlot(i int) mem.Addr {
	off := (uint64(i) * 2 * mem.WordSize) & ((1 << 17) - 1)
	return t.writeLog + mem.Addr(off)
}

// --- tm.Tx -----------------------------------------------------------------

// Load implements tm.Tx.
func (t *hyTx) Load(a mem.Addr) mem.Word {
	prev := t.c.SetCategory(sim.CatTxLoadStore)
	var v mem.Word
	switch t.mode {
	case modeHW:
		t.c.Exec(t.r.cfg.BarrierInstr)
		v = t.u.Load(a)
	case modeSW:
		v = t.swLoad(a)
	default: // serial: plain accesses behind the seqlock
		t.c.Exec(2)
		v = t.c.Load(a)
	}
	t.c.SetCategory(prev)
	return v
}

// Store implements tm.Tx.
func (t *hyTx) Store(a mem.Addr, v mem.Word) {
	prev := t.c.SetCategory(sim.CatTxLoadStore)
	switch t.mode {
	case modeHW:
		t.c.Exec(t.r.cfg.BarrierInstr)
		t.u.Store(a, v)
		t.wrote = true
	case modeSW:
		t.swStore(a, v)
	default:
		t.c.Exec(2)
		t.c.Store(a, v)
	}
	t.c.SetCategory(prev)
}

// Alloc implements tm.Tx: pool allocation. The software and serial paths
// can refill inline (no speculative region is at risk); the hardware path
// aborts to refill outside the region (§3.3).
func (t *hyTx) Alloc(size uint64) mem.Addr {
	for {
		a, ok := t.r.heap.AllocFast(t.c, size, mem.WordSize)
		if ok {
			return a
		}
		if t.mode != modeHW {
			t.r.heap.Refill(t.c, size)
			continue
		}
		t.u.Abort(tm.CodeMallocRefill)
	}
}

// AllocLines implements tm.Tx.
func (t *hyTx) AllocLines(n int) mem.Addr {
	for {
		a, ok := t.r.heap.AllocFast(t.c, uint64(n)*mem.LineSize, mem.LineSize)
		if ok {
			return a
		}
		if t.mode != modeHW {
			t.r.heap.Refill(t.c, uint64(n)*mem.LineSize)
			continue
		}
		t.u.Abort(tm.CodeMallocRefill)
	}
}

// Free implements tm.Tx.
func (t *hyTx) Free(a mem.Addr) { t.r.heap.Free(t.c, a) }

// CPU implements tm.Tx.
func (t *hyTx) CPU() *sim.CPU { return t.c }

// Irrevocable implements tm.Tx.
func (t *hyTx) Irrevocable() bool { return t.mode == modeSerial }

// BecomeIrrevocable implements tm.Irrevocably: a hardware transaction
// aborts with a software code and restarts directly in serial mode; a
// software transaction unwinds and escalates; a serial transaction already
// is irrevocable.
func (t *hyTx) BecomeIrrevocable() {
	switch t.mode {
	case modeHW:
		t.u.Abort(tm.CodeSerialRequest)
	case modeSW:
		t.forceSerial = true
		t.swAbort()
	}
}

// Release exposes ASF early release on the hardware path (the linked-list
// workload's hand-over-hand traversal); the software and serial paths have
// no monitored read set to trim, so it is a no-op there.
func (t *hyTx) Release(a mem.Addr) {
	if t.mode == modeHW {
		t.u.Release(a)
	}
}

// Tx is the exported name of the runtime's transaction descriptor.
type Tx = hyTx
