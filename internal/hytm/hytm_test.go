package hytm

import (
	"testing"

	"asfstack/internal/asf"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

func newRT(t *testing.T, cores int, v asf.Variant) (*sim.Machine, *Runtime) {
	t.Helper()
	m := sim.New(sim.Barcelona(cores))
	m.Mem.Prefault(0, 1<<21)
	sys := asf.Install(m, v)
	layout := mem.NewLayout(1 << 22)
	heap := tm.NewHeap(m.Mem, layout, cores, 16<<20)
	return m, New(sys, heap, m, layout, "HyTM-test")
}

func TestHardwareCommitPublishes(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB256)
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			tx.Store(0x100, 5)
		})
	})
	if got := m.Mem.Load(0x100); got != 5 {
		t.Fatalf("value = %d", got)
	}
	st := r.Stats(0)
	if st.Commits != 1 || st.SWCommits != 0 || st.Serial != 0 {
		t.Fatalf("stats = %+v, want one pure hardware commit", st)
	}
}

func TestCapacityFallsBackToSoftwareNotSerial(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB8)
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			for i := 0; i < 20; i++ {
				a := mem.Addr(0x1000 + i*mem.LineSize)
				tx.Store(a, tx.Load(a)+1)
			}
		})
	})
	st := r.Stats(0)
	if st.Aborts[sim.AbortCapacity] != 1 {
		t.Fatalf("capacity aborts = %d, want exactly 1 (immediate fallback)", st.Aborts[sim.AbortCapacity])
	}
	if st.SWCommits != 1 || st.Serial != 0 {
		t.Fatalf("stats = %+v, want one software commit and no serial", st)
	}
	for i := 0; i < 20; i++ {
		if m.Mem.Load(mem.Addr(0x1000+i*mem.LineSize)) != 1 {
			t.Fatal("software fallback lost a store")
		}
	}
}

// TestSoftwareFallbacksRunConcurrently is the subsystem's reason to exist:
// two capacity-doomed threads on disjoint data must both commit on the
// software path with zero serial-irrevocable entries (under ASF-TM every
// one of these transactions would convoy behind the global token).
func TestSoftwareFallbacksRunConcurrently(t *testing.T) {
	m, r := newRT(t, 2, asf.LLB8)
	const rounds = 40
	hog := func(base mem.Addr) func(c *sim.CPU) {
		return func(c *sim.CPU) {
			for i := 0; i < rounds; i++ {
				r.Atomic(c, func(tx tm.Tx) {
					for j := 0; j < 20; j++ {
						a := base + mem.Addr(j*mem.LineSize)
						tx.Store(a, tx.Load(a)+1)
					}
				})
			}
		}
	}
	m.Run(hog(0x10000), hog(0x40000))
	var total tm.Stats
	for i := 0; i < 2; i++ {
		total.Add(r.Stats(i))
	}
	if total.Serial != 0 {
		t.Fatalf("serial entries = %d, want 0 (fallback must be concurrent)", total.Serial)
	}
	if total.SWCommits != 2*rounds {
		t.Fatalf("software commits = %d, want %d", total.SWCommits, 2*rounds)
	}
	for _, base := range []mem.Addr{0x10000, 0x40000} {
		for j := 0; j < 20; j++ {
			if got := m.Mem.Load(base + mem.Addr(j*mem.LineSize)); got != rounds {
				t.Fatalf("line %d = %d, want %d", j, got, rounds)
			}
		}
	}
}

// TestMixedPathsOneCounter is the atomicity torture test: hardware and
// software transactions increment the same word; no increment may be lost
// regardless of which path commits it.
func TestMixedPathsOneCounter(t *testing.T) {
	m, r := newRT(t, 4, asf.LLB8)
	const (
		ctr      = mem.Addr(0xB000)
		hwRounds = 120
		swRounds = 30
	)
	hw := func(c *sim.CPU) {
		for i := 0; i < hwRounds; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				tx.Store(ctr, tx.Load(ctr)+1)
			})
		}
	}
	sw := func(base mem.Addr) func(c *sim.CPU) {
		return func(c *sim.CPU) {
			for i := 0; i < swRounds; i++ {
				r.Atomic(c, func(tx tm.Tx) {
					for j := 0; j < 20; j++ { // overflow LLB-8: software path
						a := base + mem.Addr(j*mem.LineSize)
						tx.Store(a, tx.Load(a)+1)
					}
					tx.Store(ctr, tx.Load(ctr)+1)
				})
			}
		}
	}
	m.Run(hw, hw, sw(0x20000), sw(0x60000))
	want := mem.Word(2*hwRounds + 2*swRounds)
	if got := m.Mem.Load(ctr); got != want {
		t.Fatalf("counter = %d, want %d (lost updates across paths)", got, want)
	}
	var total tm.Stats
	for i := 0; i < 4; i++ {
		total.Add(r.Stats(i))
	}
	if total.SWCommits != 2*swRounds {
		t.Fatalf("software commits = %d, want %d", total.SWCommits, 2*swRounds)
	}
	if hwCommits := total.Commits - total.SWCommits - total.Serial; hwCommits == 0 {
		t.Fatal("no hardware commits despite the small transactions")
	}
	if total.SeqAborts == 0 {
		t.Fatal("no seqlock-induced aborts recorded despite software commits racing hardware")
	}
}

func TestMallocRefillAbortsOnce(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB256)
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			a := tx.Alloc(64)
			tx.Store(a, 9)
		})
	})
	st := r.Stats(0)
	if st.MallocAborts == 0 {
		t.Fatal("no malloc-refill abort recorded")
	}
	if st.Commits != 1 {
		t.Fatalf("commits = %d", st.Commits)
	}
}

func TestBecomeIrrevocableGoesSerial(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB256)
	runs := 0
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			runs++
			tx.Store(0x9000, mem.Word(runs))
			if !tx.Irrevocable() {
				tx.(tm.Irrevocably).BecomeIrrevocable()
				t.Error("unreachable: BecomeIrrevocable returned")
			}
		})
	})
	if runs != 2 {
		t.Fatalf("body ran %d times, want 2", runs)
	}
	if got := m.Mem.Load(0x9000); got != 2 {
		t.Fatalf("value = %d (first attempt leaked?)", got)
	}
	st := r.Stats(0)
	if st.Serial != 1 || st.SWCommits != 0 {
		t.Fatalf("stats = %+v, want exactly one serial commit", st)
	}
}

// TestBecomeIrrevocableFromSoftware: the escalation must also work when the
// request happens on the software path (capacity-overflowed transaction
// calling a non-transactional-safe function).
func TestBecomeIrrevocableFromSoftware(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB8)
	serialRuns := 0
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			for i := 0; i < 20; i++ { // overflow LLB-8 first
				tx.Store(mem.Addr(0x3000+i*mem.LineSize), 7)
			}
			if tx.Irrevocable() {
				serialRuns++
				return
			}
			tx.(tm.Irrevocably).BecomeIrrevocable()
		})
	})
	st := r.Stats(0)
	if serialRuns != 1 || st.Serial != 1 {
		t.Fatalf("serialRuns = %d, stats = %+v, want one serial commit", serialRuns, st)
	}
	for i := 0; i < 20; i++ {
		if m.Mem.Load(mem.Addr(0x3000+i*mem.LineSize)) != 7 {
			t.Fatal("serial escalation lost a store")
		}
	}
}

// TestMaxHWAttemptsFallsBackToSoftware: exhausting the hardware attempt
// budget must land on the concurrent software path, not serial mode.
func TestMaxHWAttemptsFallsBackToSoftware(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB256)
	cfg := DefaultConfig()
	cfg.MaxHWAttempts = 5
	r.SetConfig(cfg)

	hw, sw := 0, 0
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			h := tx.(*Tx)
			if h.mode == modeHW {
				hw++
				h.u.Abort(0xDEAD) // retryable explicit abort
			}
			sw++
			tx.Store(0xC000, mem.Word(sw))
		})
	})
	if hw != 5 || sw != 1 {
		t.Fatalf("hardware attempts = %d, software runs = %d; want 5 and 1", hw, sw)
	}
	st := r.Stats(0)
	if st.SWCommits != 1 || st.Serial != 0 {
		t.Fatalf("stats = %+v, want one software commit, no serial", st)
	}
	if got := m.Mem.Load(0xC000); got != 1 {
		t.Fatalf("value = %d", got)
	}
}

// TestReadOnlySoftwareCommitStaysOffSeqlock: a read-only fallback commit
// must not acquire the seqlock (it would needlessly abort every subscribed
// hardware region).
func TestReadOnlySoftwareCommitStaysOffSeqlock(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB8)
	var sum mem.Word
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			sum = 0
			for i := 0; i < 20; i++ { // read-set overflow: software path
				sum += tx.Load(mem.Addr(0x5000 + i*mem.LineSize))
			}
		})
	})
	st := r.Stats(0)
	if st.SWCommits != 1 {
		t.Fatalf("stats = %+v, want one software commit", st)
	}
	if got := m.Mem.Load(r.swSeq); got != 0 {
		t.Fatalf("swSeq = %d after read-only commit, want untouched 0", got)
	}
	_ = sum
}

// TestHwSeqElidedWithoutSoftware: with no software transaction ever
// present, hardware writers must not touch the hardware-commit counter
// (the hw-hw serialization it causes is only paid while someone listens).
func TestHwSeqElidedWithoutSoftware(t *testing.T) {
	m, r := newRT(t, 2, asf.LLB256)
	body := func(c *sim.CPU) {
		for i := 0; i < 50; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				tx.Store(0xD000+mem.Addr(c.ID())*mem.LineSize, mem.Word(i))
			})
		}
	}
	m.Run(body, body)
	if got := m.Mem.Load(r.hwSeq); got != 0 {
		t.Fatalf("hwSeq = %d with no software transactions, want 0", got)
	}
}

// TestFlatNesting: a nested Atomic must execute inside the enclosing
// transaction, not start a second region.
func TestFlatNesting(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB256)
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			tx.Store(0xE000, 1)
			r.Atomic(c, func(inner tm.Tx) {
				inner.Store(0xE008, 2)
			})
			tx.Store(0xE010, 3)
		})
	})
	if m.Mem.Load(0xE000) != 1 || m.Mem.Load(0xE008) != 2 || m.Mem.Load(0xE010) != 3 {
		t.Fatal("nested stores lost")
	}
	if st := r.Stats(0); st.Commits != 1 {
		t.Fatalf("commits = %d, want 1 (flat nesting)", st.Commits)
	}
}

// TestDeterminism: two identical machines running the same mixed hw/sw
// workload must agree exactly on simulated time and outcome counters.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, tm.Stats) {
		m, r := newRT(t, 4, asf.LLB8)
		hw := func(c *sim.CPU) {
			for i := 0; i < 60; i++ {
				r.Atomic(c, func(tx tm.Tx) {
					tx.Store(0xB000, tx.Load(0xB000)+1)
				})
			}
		}
		sw := func(c *sim.CPU) {
			for i := 0; i < 15; i++ {
				r.Atomic(c, func(tx tm.Tx) {
					for j := 0; j < 20; j++ {
						a := mem.Addr(0x20000 + j*mem.LineSize)
						tx.Store(a, tx.Load(a)+1)
					}
				})
			}
		}
		d := m.Run(hw, hw, sw, sw)
		var total tm.Stats
		for i := 0; i < 4; i++ {
			total.Add(r.Stats(i))
		}
		return d, total
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("nondeterministic: %d/%+v vs %d/%+v", d1, s1, d2, s2)
	}
}
