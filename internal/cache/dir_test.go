package cache

import (
	"testing"

	"asfstack/internal/mem"
)

// TestDirTableGrowthPreservesState: inserting past the load-factor limit
// rehashes every slot; coherence state recorded before the growth must be
// found intact afterwards. dirMinSlots*3/4 insertions force at least one
// grow.
func TestDirTableGrowthPreservesState(t *testing.T) {
	var d dirTable
	d.init()
	n := dirMinSlots * 2 // guarantees two growth steps
	for i := 0; i < n; i++ {
		line := mem.Addr(i * mem.LineSize)
		s := d.getOrInsert(line)
		if s.owner != -1 || s.holders != 0 {
			t.Fatalf("line %v: fresh state = %+v, want neutral", line, *s)
		}
		s.owner = int8(i % 8)
		s.holders = uint64(i)
	}
	for i := 0; i < n; i++ {
		line := mem.Addr(i * mem.LineSize)
		s := d.getOrInsert(line)
		if s.owner != int8(i%8) || s.holders != uint64(i) {
			t.Fatalf("line %v: state after growth = %+v, want {holders:%d owner:%d}",
				line, *s, i, i%8)
		}
	}
	if d.used != n {
		t.Fatalf("used = %d, want %d", d.used, n)
	}
}

// TestDirTableLineZero: line 0 is a real address (the key encoding must not
// confuse it with an empty slot).
func TestDirTableLineZero(t *testing.T) {
	var d dirTable
	d.init()
	s := d.getOrInsert(0)
	s.owner = 3
	if got := d.getOrInsert(0); got.owner != 3 {
		t.Fatalf("line 0 state lost: %+v", *got)
	}
	if d.used != 1 {
		t.Fatalf("used = %d, want 1", d.used)
	}
}

// TestCoherenceSurvivesDirGrowth drives growth through the public API:
// ownership recorded early must still trigger a cache-to-cache transfer
// after thousands of other lines have been tracked.
func TestCoherenceSurvivesDirGrowth(t *testing.T) {
	h := New(2, Barcelona())
	line := mem.Addr(0x4000)
	h.Access(0, line, true) // core 0 owns the line dirty
	for i := 0; i < dirMinSlots*2; i++ {
		h.Access(1, mem.Addr(0x800000+i*mem.LineSize), false)
	}
	r := h.Access(1, line, false)
	if r.Level != Remote {
		t.Fatalf("dirty line served from %v after directory growth, want remote", r.Level)
	}
}
