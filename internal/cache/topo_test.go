package cache

import (
	"testing"

	"asfstack/internal/mem"
)

// lineAddr returns the address of the i-th cache line.
func lineAddr(i int) mem.Addr { return mem.Addr(i << mem.LineShift) }

// homeLine finds a line whose home is socket s under h (address
// interleaving makes this a simple stride search).
func homeLine(h *Hierarchy, s int, from int) mem.Addr {
	for i := from; ; i++ {
		if h.homeSock(lineAddr(i)) == s {
			return lineAddr(i)
		}
	}
}

// TestSingleSocketUnchanged pins that Sockets=1 (and the zero value) costs
// exactly what the historical single-socket model costs and records no
// socket counters.
func TestSingleSocketUnchanged(t *testing.T) {
	cfg := Barcelona()
	for _, sockets := range []int{0, 1} {
		cfg.Sockets = sockets
		h := New(8, cfg)
		a := lineAddr(100)
		// Cold miss → RAM, no hop charge.
		r := h.Access(0, a, false)
		if want := h.tlbCost(t) + cfg.MemLat; r.Cycles != want {
			t.Fatalf("sockets=%d: cold miss cost %d, want %d", sockets, r.Cycles, want)
		}
		if st := h.Stats(0); st.XSockHops != 0 || st.L3RemoteHits != 0 {
			t.Fatalf("sockets=%d: socket counters moved: %+v", sockets, st)
		}
	}
}

// tlbCost returns the cost of the cold TLB walk the first load pays.
func (h *Hierarchy) tlbCost(t *testing.T) uint64 {
	t.Helper()
	return h.cfg.WalkLat
}

// TestCrossSocketCharges exercises the three cross-socket paths: RAM fill
// with a remote home, remote-slice L3 hit, and cross-socket dirty transfer.
func TestCrossSocketCharges(t *testing.T) {
	cfg := Barcelona()
	cfg.Sockets = 2
	cfg.XSockLat = 77
	h := New(8, cfg) // sockets {0..3} and {4..7}

	local := homeLine(h, 0, 100)  // home = socket 0 (core 0's socket)
	remote := homeLine(h, 1, 192) // home = socket 1, in a fresh page (64 lines/page)

	// Cold miss, local home: MemLat only (plus TLB walk).
	r := h.Access(0, local, false)
	if want := cfg.WalkLat + cfg.MemLat; r.Cycles != want {
		t.Fatalf("local cold miss: %d, want %d", r.Cycles, want)
	}
	// Cold miss, remote home: one hop on top.
	r = h.Access(0, remote, false)
	if want := cfg.WalkLat + cfg.MemLat + cfg.XSockLat; r.Cycles != want {
		t.Fatalf("remote cold miss: %d, want %d", r.Cycles, want)
	}
	if st := h.Stats(0); st.XSockHops != 1 {
		t.Fatalf("XSockHops = %d, want 1", st.XSockHops)
	}

	// remote is now in socket 1's slice (RAM fill) and core 0's L1. A
	// core on socket 1 whose L1/L2 miss finds it in its *local* home
	// slice: plain L3 hit, no hop, no remote-hit count.
	r = h.Access(4, remote, false)
	if r.Level != L3 {
		t.Fatalf("socket-1 access level = %v, want L3", r.Level)
	}
	if want := cfg.WalkLat + cfg.L3Lat; r.Cycles != want {
		t.Fatalf("local-slice L3 hit: %d, want %d", r.Cycles, want)
	}
	// Another socket-0 core missing on remote: L3 hit in the remote home
	// slice → L3Lat + hop, counted as a remote hit.
	r = h.Access(1, remote, false)
	if r.Level != L3 {
		t.Fatalf("cross-socket L3 level = %v, want L3", r.Level)
	}
	if want := cfg.WalkLat + cfg.L3Lat + cfg.XSockLat; r.Cycles != want {
		t.Fatalf("remote-slice L3 hit: %d, want %d", r.Cycles, want)
	}
	if st := h.Stats(1); st.L3RemoteHits != 1 || st.XSockHops != 1 {
		t.Fatalf("core 1 socket counters: %+v", st)
	}

	// Dirty transfer across the boundary: core 4 (socket 1) dirties a
	// socket-1-homed line; core 0 (socket 0) reads it → C2C + two hops
	// (home directory and owner both on the far socket).
	dirty := homeLine(h, 1, 200)
	h.Access(4, dirty, true)
	before := h.Stats(0).XSockHops
	r = h.Access(0, dirty, false)
	if r.Level != Remote {
		t.Fatalf("dirty transfer level = %v, want Remote", r.Level)
	}
	if got := h.Stats(0).XSockHops - before; got != 2 {
		t.Fatalf("dirty cross-socket hops = %d, want 2", got)
	}
}

// TestCrossSocketUpgrade pins the single extra hop a write upgrade pays
// when any holder sits on another socket.
func TestCrossSocketUpgrade(t *testing.T) {
	cfg := Barcelona()
	cfg.Sockets = 2
	cfg.XSockLat = 77
	h := New(8, cfg)

	line := homeLine(h, 0, 300)
	h.Access(0, line, false) // socket 0 holds it
	h.Access(4, line, false) // socket 1 holds it too
	before := h.Stats(0).XSockHops
	h.Access(0, line, true) // upgrade must probe across the boundary
	if got := h.Stats(0).XSockHops - before; got != 1 {
		t.Fatalf("upgrade cross-socket hops = %d, want 1", got)
	}

	// Same-socket sharers only: no hop.
	line2 := homeLine(h, 0, 400)
	h.Access(0, line2, false)
	h.Access(1, line2, false)
	before = h.Stats(0).XSockHops
	h.Access(0, line2, true)
	if got := h.Stats(0).XSockHops - before; got != 0 {
		t.Fatalf("same-socket upgrade hops = %d, want 0", got)
	}
}

// TestUnevenSocketsPanics pins the constructor backstop.
func TestUnevenSocketsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(7 cores, 2 sockets) did not panic")
		}
	}()
	cfg := Barcelona()
	cfg.Sockets = 2
	New(7, cfg)
}
