package cache

import (
	"testing"

	"asfstack/internal/mem"
)

type evictEvent struct {
	core int
	line mem.Addr
	spec bool
}

func recordEvictions(h *Hierarchy) *[]evictEvent {
	var evs []evictEvent
	h.SetEvictHook(func(core int, line mem.Addr, spec bool) {
		evs = append(evs, evictEvent{core, line, spec})
	})
	return &evs
}

// TestEvictHookOnCoherenceInvalidation: a remote write invalidating a
// spec-marked line must surface the mark through the eviction hook — losing
// the line to coherence means ASF can no longer monitor it, exactly like a
// capacity displacement.
func TestEvictHookOnCoherenceInvalidation(t *testing.T) {
	h := New(2, Barcelona())
	line := mem.Addr(0x7000)
	h.Access(0, line, false)
	if !h.SetSpecRead(0, line, true) {
		t.Fatal("SetSpecRead failed on a just-accessed line")
	}
	evs := recordEvictions(h)

	h.Access(1, line, true) // write probe invalidates core 0's copy

	if len(*evs) != 1 {
		t.Fatalf("events = %+v, want exactly one invalidation", *evs)
	}
	got := (*evs)[0]
	if got.core != 0 || got.line != line || !got.spec {
		t.Fatalf("invalidation event = %+v, want {0 %v true}", got, line)
	}
	if h.L1Resident(0, line) {
		t.Fatal("invalidated line still L1-resident")
	}
	if h.Stats(0).Evictions != 1 {
		t.Fatalf("core 0 evictions = %d, want 1", h.Stats(0).Evictions)
	}
}

// TestEvictHookOnL1Displacement: displacing a spec-marked line whose mark
// cannot follow into L2 (the line is already L2-resident, so the metadata
// slot exists without the mark) must report the loss with specRead=true;
// displacing unmarked lines must report nothing.
func TestEvictHookOnL1Displacement(t *testing.T) {
	h := New(1, Barcelona())
	stride := mem.Addr(512 * mem.LineSize) // same L1 set every stride
	a := mem.Addr(0x8000)
	h.Access(0, a, false)
	if !h.SetSpecRead(0, a, true) {
		t.Fatal("SetSpecRead failed")
	}
	evs := recordEvictions(h)

	// Two more lines in the same 2-way set displace a (the LRU way).
	h.Access(0, a+stride, false)
	h.Access(0, a+2*stride, false)

	if h.L1Resident(0, a) {
		t.Fatal("line survived a 3-way thrash of a 2-way set")
	}
	var marked []evictEvent
	for _, e := range *evs {
		if e.spec {
			marked = append(marked, e)
		}
	}
	if len(marked) != 1 || marked[0].line != a || marked[0].core != 0 {
		t.Fatalf("spec-marked displacement events = %+v, want exactly {0 %v true}", *evs, a)
	}
}

// TestTLBWalkAndL2TLBCharges: tlbLookup must charge the configured costs —
// a full WalkLat on a cold page, nothing on an L1-TLB hit, and TLB2Lat when
// the translation fell out of the small L1 TLB but survives in the L2 TLB.
func TestTLBWalkAndL2TLBCharges(t *testing.T) {
	cfg := Barcelona()
	h := New(1, cfg)

	// Cold page: full page-table walk on top of the RAM fill.
	r := h.Access(0, 0x100000, false)
	if !r.TLBMiss || r.Cycles != cfg.WalkLat+cfg.MemLat {
		t.Fatalf("cold access = %+v, want walk(%d)+mem(%d)", r, cfg.WalkLat, cfg.MemLat)
	}
	// Same line again: L1 cache hit, L1 TLB hit — only the load-to-use cost.
	r = h.Access(0, 0x100000, false)
	if r.TLBMiss || r.Cycles != cfg.L1Lat {
		t.Fatalf("warm access = %+v, want L1 hit at %d cycles", r, cfg.L1Lat)
	}

	// Touch enough distinct pages to push the first translation out of the
	// fully associative L1 TLB (TLB1Entries ways) while the much larger L2
	// TLB retains it. The one-line offset keeps every filler access out of
	// L1 set 0 (multiples of 64 sets + 1), so the probe line stays L1-hot.
	for i := 1; i <= cfg.TLB1Entries; i++ {
		h.Access(0, mem.Addr(0x100000+i*mem.PageSize+mem.LineSize), false)
	}
	r = h.Access(0, 0x100000, false)
	if r.TLBMiss {
		t.Fatal("translation fell out of the L2 TLB too")
	}
	if r.Cycles != cfg.TLB2Lat+cfg.L1Lat {
		t.Fatalf("L2-TLB hit = %+v, want tlb2(%d)+L1(%d)", r, cfg.TLB2Lat, cfg.L1Lat)
	}
	st := h.Stats(0)
	if st.TLB1Miss == 0 || st.TLBWalks == 0 {
		t.Fatalf("stats = %+v, want nonzero TLB1Miss and TLBWalks", st)
	}
}

// TestFlushTLBChargesWalk: after FlushTLB the next load must pay the full
// walk again even though the data is still cached.
func TestFlushTLBChargesWalk(t *testing.T) {
	cfg := Barcelona()
	h := New(1, cfg)
	h.Access(0, 0x200000, false)
	walksBefore := h.Stats(0).TLBWalks
	h.FlushTLB(0)
	r := h.Access(0, 0x200000, false)
	if !r.TLBMiss || r.Cycles != cfg.WalkLat+cfg.L1Lat {
		t.Fatalf("post-flush access = %+v, want walk(%d)+L1(%d)", r, cfg.WalkLat, cfg.L1Lat)
	}
	if got := h.Stats(0).TLBWalks; got != walksBefore+1 {
		t.Fatalf("walks = %d, want %d", got, walksBefore+1)
	}
}
