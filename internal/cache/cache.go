// Package cache models the memory hierarchy of the simulated machine: one
// private L1D and L2 per core, a shared L3, a two-level data TLB, and a
// simplified invalidation-based coherence directory.
//
// The model mirrors PTLsim-ASF's configuration for the AMD family 10h
// ("Barcelona") processor used in the paper:
//
//	L1D:  64 KB, 2-way set associative, 3 cycles load-to-use
//	L2:  512 KB, 16-way set associative, 15 cycles load-to-use
//	L3:    2 MB, 16-way set associative, 50 cycles load-to-use (shared)
//	RAM:  210 cycles load-to-use
//	D-TLB: 48 L1 entries fully associative; 512 L2 entries, 4-way
//
// Like PTLsim (a quirk the paper documents), only loads consult the TLB;
// stores do not and are never delayed by TLB misses.
//
// The hierarchy is a *timing and occupancy* model: data values always live in
// mem.Memory, which the simulation engine updates atomically. The caches
// decide how many cycles each access costs, which lines are resident where,
// and raise eviction callbacks that the ASF read-set tracking (hybrid
// implementation variant) depends on.
package cache

import (
	"fmt"

	"asfstack/internal/mem"
)

// Config describes the hierarchy geometry and latencies, in cycles.
type Config struct {
	L1Size  int // bytes
	L1Assoc int
	L1Lat   uint64

	L2Size  int
	L2Assoc int
	L2Lat   uint64

	L3Size  int
	L3Assoc int
	L3Lat   uint64

	MemLat uint64 // RAM load-to-use
	C2CLat uint64 // dirty cache-to-cache transfer between cores

	TLB1Entries int    // L1 TLB, fully associative
	TLB2Entries int    // L2 TLB
	TLB2Assoc   int    // L2 TLB associativity
	TLB2Lat     uint64 // extra cycles on L1-TLB miss, L2 hit
	WalkLat     uint64 // extra cycles for a full page-table walk

	// StoresUseTLB enables TLB lookups for stores. PTLsim-ASF does not
	// consult the TLB for stores (documented quirk, §5); the default
	// Barcelona config leaves this false to match.
	StoresUseTLB bool

	// Sockets partitions the cores into that many equal sockets (cores
	// socket-major, see internal/topo). Each socket owns one L3 slice of
	// L3Size bytes; lines are home-sliced by address interleaving, so a
	// line only ever caches in its home socket's slice. 0 or 1 keeps the
	// single-socket model byte-identical to previous behaviour.
	Sockets int
	// XSockLat is the extra latency, in cycles, of one cross-socket
	// coherence-directory hop: charged when a miss must consult a remote
	// home slice or pull a dirty line from a core on another socket, and
	// when a write upgrade must probe holders across the socket boundary.
	// 0 selects DefaultXSockLat when Sockets > 1; irrelevant otherwise.
	XSockLat uint64
}

// DefaultXSockLat is the cross-socket hop latency used when Config.XSockLat
// is zero on a multi-socket configuration: roughly one HyperTransport
// traversal at 2.2 GHz, sitting between the L3 (50) and RAM (210) charges.
const DefaultXSockLat = 90

// Barcelona returns the configuration used throughout the paper's
// evaluation (§5, "ASF simulator").
func Barcelona() Config {
	return Config{
		L1Size: 64 << 10, L1Assoc: 2, L1Lat: 3,
		L2Size: 512 << 10, L2Assoc: 16, L2Lat: 15,
		L3Size: 2 << 20, L3Assoc: 16, L3Lat: 50,
		MemLat: 210, C2CLat: 120,
		TLB1Entries: 48, TLB2Entries: 512, TLB2Assoc: 4,
		TLB2Lat: 5, WalkLat: 40,
		StoresUseTLB: false,
	}
}

// AccessResult reports where an access hit and what it cost.
type AccessResult struct {
	Cycles  uint64
	Level   Level // where the line was found
	TLBMiss bool  // required a page-table walk
}

// Level identifies the hierarchy level that served an access.
type Level uint8

const (
	L1 Level = iota
	L2
	L3
	Remote // dirty line transferred from another core's cache
	RAM
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Remote:
		return "remote"
	default:
		return "RAM"
	}
}

// EvictFn is called when a line leaves a core's private hierarchy entirely
// (displaced from L1 and not retained in L2, or invalidated by coherence).
// specRead reports whether the line carried the ASF speculative-read mark —
// the hybrid ASF variants abort on losing such a line.
type EvictFn func(core int, line mem.Addr, specRead bool)

// Stats counts accesses per core.
type Stats struct {
	Loads, Stores  uint64
	L1Hits, L2Hits uint64
	L3Hits, C2C    uint64
	MemFills       uint64
	TLB1Miss       uint64
	TLBWalks       uint64
	Evictions      uint64

	// XSockHops counts cross-socket directory hops this core's accesses
	// paid for (each one cost XSockLat cycles); L3RemoteHits counts the
	// subset of L3Hits served by a remote socket's home slice. Both stay
	// zero on single-socket configurations.
	XSockHops    uint64
	L3RemoteHits uint64
}

// Hierarchy is the full multicore memory system.
type Hierarchy struct {
	cfg   Config
	cores []*coreCaches
	l3s   []*array // one slice per socket; index 0 is the whole L3 when single-socket
	dir   dirTable
	stats []Stats

	sockets  int // ≥ 1
	coresPer int // cores per socket

	onEvict EvictFn
	tick    uint64 // LRU clock
}

type lineState struct {
	holders uint64 // bitmask of cores with a private copy (64-core cap)
	owner   int8   // core holding the line modified, or -1
}

type coreCaches struct {
	l1, l2 *array
	tlb1   *tlbArray
	tlb2   *tlbArray
}

// New builds a hierarchy for n cores. cfg.Sockets must divide n evenly
// (the sim layer validates topologies before construction; this is the
// backstop for direct users).
func New(n int, cfg Config) *Hierarchy {
	sockets := cfg.Sockets
	if sockets <= 1 {
		sockets = 1
	}
	if n%sockets != 0 {
		panic(fmt.Sprintf("cache: %d cores do not partition into %d sockets", n, sockets))
	}
	if sockets > 1 && cfg.XSockLat == 0 {
		cfg.XSockLat = DefaultXSockLat
	}
	h := &Hierarchy{
		cfg:      cfg,
		stats:    make([]Stats, n),
		sockets:  sockets,
		coresPer: n / sockets,
	}
	for s := 0; s < sockets; s++ {
		h.l3s = append(h.l3s, newArray(cfg.L3Size, cfg.L3Assoc))
	}
	h.dir.init()
	for i := 0; i < n; i++ {
		h.cores = append(h.cores, &coreCaches{
			l1:   newArray(cfg.L1Size, cfg.L1Assoc),
			l2:   newArray(cfg.L2Size, cfg.L2Assoc),
			tlb1: newTLB(cfg.TLB1Entries, cfg.TLB1Entries), // fully associative
			tlb2: newTLB(cfg.TLB2Entries, cfg.TLB2Assoc),
		})
	}
	return h
}

// SetEvictHook installs the callback invoked when a line (and its
// speculative-read mark) is displaced from a core's private caches.
func (h *Hierarchy) SetEvictHook(fn EvictFn) { h.onEvict = fn }

// Stats returns the access counters for core c.
func (h *Hierarchy) Stats(c int) Stats { return h.stats[c] }

// Occupancy reports how many lines are resident in core c's private L1 and
// L2 — the occupancy gauges of the metrics layer. O(1): the arrays keep a
// resident-line count.
func (h *Hierarchy) Occupancy(c int) (l1, l2 int) {
	cc := h.cores[c]
	return cc.l1.nValid, cc.l2.nValid
}

// L3Occupancy reports how many lines are resident across all L3 slices.
func (h *Hierarchy) L3Occupancy() int {
	n := 0
	for _, a := range h.l3s {
		n += a.nValid
	}
	return n
}

// sockOf returns the socket core c lives on (cores are socket-major).
func (h *Hierarchy) sockOf(c int) int { return c / h.coresPer }

// homeSock returns the socket owning line's L3 slice and directory home:
// lines interleave round-robin across sockets by line index, a pure
// function of the address so home assignment is deterministic.
func (h *Hierarchy) homeSock(line mem.Addr) int {
	if h.sockets == 1 {
		return 0
	}
	return int((uint64(line) >> mem.LineShift) % uint64(h.sockets))
}

// homeSlice returns the L3 slice lines of this address cache in.
func (h *Hierarchy) homeSlice(line mem.Addr) *array { return h.l3s[h.homeSock(line)] }

// NumCores returns the number of cores the hierarchy was built for.
func (h *Hierarchy) NumCores() int { return len(h.cores) }

// state returns the coherence-directory entry for line, creating a neutral
// one on first touch. The returned pointer is valid until the next insertion
// of a never-seen line (which may grow the table); within one Access, only
// the initial state() call can insert — every other line consulted (victims,
// remote holders) has been through Access before and is already present.
func (h *Hierarchy) state(line mem.Addr) *lineState {
	return h.dir.getOrInsert(line)
}

// Access simulates core c touching addr (write=true for stores) and returns
// the latency. It updates residency, coherence state and LRU, firing
// eviction callbacks as needed.
func (h *Hierarchy) Access(c int, addr mem.Addr, write bool) AccessResult {
	h.tick++
	line := addr.Line()
	cc := h.cores[c]
	if write {
		h.stats[c].Stores++
	} else {
		h.stats[c].Loads++
	}

	var res AccessResult

	// TLB (loads only, unless configured otherwise).
	if !write || h.cfg.StoresUseTLB {
		res.Cycles += h.tlbLookup(c, addr.Page())
		if res.Cycles >= h.cfg.WalkLat {
			res.TLBMiss = true
		}
	}

	if e := cc.l1.lookup(line); e != nil {
		// L1 hit: plain reads need no directory consultation at all —
		// an L1-resident line always has a directory entry (entries are
		// never deleted), and reads don't change coherence state.
		e.lastUse = h.tick
		res.Level = L1
		res.Cycles += h.cfg.L1Lat
		h.stats[c].L1Hits++
		if write {
			res.Cycles += h.upgrade(c, line, h.state(line))
			e.dirty = true
		}
		return res
	}

	ls := h.state(line)
	mask := uint64(1) << uint(c)

	// L1 miss: find the line further out, then fill into L1. On a
	// multi-socket machine any path past the private L2 consults line's
	// home directory; when that home — or a dirty owner — sits on another
	// socket, the access pays XSockLat per boundary crossed. All of these
	// charges live on L1-miss paths only, which the epoch engine's replay
	// windows never cover, so both engines stay byte-identical.
	mySock := h.sockOf(c)
	switch {
	case cc.l2.lookup(line) != nil:
		res.Level = L2
		res.Cycles += h.cfg.L2Lat
		h.stats[c].L2Hits++
	case ls.owner >= 0 && int(ls.owner) != c:
		// Dirty in another core's private cache: cache-to-cache transfer,
		// routed through the home directory.
		res.Level = Remote
		res.Cycles += h.cfg.C2CLat
		if h.sockets > 1 {
			if h.homeSock(line) != mySock {
				res.Cycles += h.cfg.XSockLat
				h.stats[c].XSockHops++
			}
			if h.sockOf(int(ls.owner)) != mySock {
				res.Cycles += h.cfg.XSockLat
				h.stats[c].XSockHops++
			}
		}
		h.stats[c].C2C++
		h.downgrade(int(ls.owner), line, write)
	case h.homeSlice(line).lookup(line) != nil:
		res.Level = L3
		res.Cycles += h.cfg.L3Lat
		h.stats[c].L3Hits++
		if hs := h.homeSock(line); hs != mySock {
			res.Cycles += h.cfg.XSockLat
			h.stats[c].XSockHops++
			h.stats[c].L3RemoteHits++
		}
	default:
		res.Level = RAM
		res.Cycles += h.cfg.MemLat
		if h.homeSock(line) != mySock {
			res.Cycles += h.cfg.XSockLat
			h.stats[c].XSockHops++
		}
		h.stats[c].MemFills++
		h.fill(h.homeSlice(line), line)
	}

	if write {
		res.Cycles += h.upgrade(c, line, ls)
	}

	// Install in the private hierarchy.
	h.fillPrivate(c, line, write)
	ls = h.state(line) // downgrade/invalidate may have replaced it
	ls.holders |= mask
	if write {
		ls.owner = int8(c)
	}
	return res
}

// upgrade obtains write permission: invalidates all other private copies.
// Returns extra latency if any probe was needed.
func (h *Hierarchy) upgrade(c int, line mem.Addr, ls *lineState) uint64 {
	var cost uint64
	others := ls.holders &^ (1 << uint(c))
	if others != 0 || (ls.owner >= 0 && int(ls.owner) != c) {
		cost = h.cfg.L1Lat * 8 // invalidation probe round-trip
		if h.sockets > 1 {
			// One extra hop if any holder (or the dirty owner) sits on
			// another socket: the probes fan out in parallel over the
			// socket link, so the boundary is paid once, not per core.
			// A store replay requires the dirty bit, which implies
			// exclusive ownership and an empty probe set — so this
			// charge, like the miss-path ones, is unreachable from the
			// epoch engine's fast path.
			mySock := h.sockOf(c)
			cross := ls.owner >= 0 && int(ls.owner) != c && h.sockOf(int(ls.owner)) != mySock
			for o, rem := 0, others; !cross && rem != 0; o, rem = o+1, rem>>1 {
				if rem&1 != 0 && h.sockOf(o) != mySock {
					cross = true
				}
			}
			if cross {
				cost += h.cfg.XSockLat
				h.stats[c].XSockHops++
			}
		}
	}
	for o := 0; others != 0; o++ {
		if others&1 != 0 {
			h.invalidate(o, line)
		}
		others >>= 1
	}
	if ls.owner >= 0 && int(ls.owner) != c {
		h.downgrade(int(ls.owner), line, true)
	}
	ls.holders &= 1 << uint(c)
	ls.owner = int8(c)
	return cost
}

// downgrade handles a remote probe hitting core o's dirty line: the data is
// written back (to the line's home L3 slice in this model). If forWrite,
// the copy is invalidated.
func (h *Hierarchy) downgrade(o int, line mem.Addr, forWrite bool) {
	ls := h.state(line)
	if int(ls.owner) == o {
		ls.owner = -1
	}
	h.fill(h.homeSlice(line), line)
	if forWrite {
		h.invalidate(o, line)
	} else {
		if e := h.cores[o].l1.lookup(line); e != nil {
			e.dirty = false
		}
		if e := h.cores[o].l2.lookup(line); e != nil {
			e.dirty = false
		}
	}
}

// invalidate removes line from core o's private caches (coherence
// invalidation). The speculative-read mark, if set, is surfaced through the
// eviction hook exactly like a displacement: losing the line means losing
// ASF's ability to monitor it.
func (h *Hierarchy) invalidate(o int, line mem.Addr) {
	spec := false
	if e := h.cores[o].l1.lookup(line); e != nil {
		spec = spec || e.specRead
		h.cores[o].l1.remove(line)
	}
	h.cores[o].l2.remove(line)
	ls := h.state(line)
	ls.holders &^= 1 << uint(o)
	if int(ls.owner) == o {
		ls.owner = -1
	}
	h.stats[o].Evictions++
	if h.onEvict != nil {
		h.onEvict(o, line, spec)
	}
}

// fillPrivate installs line into core c's L1 (and L2), handling victims.
func (h *Hierarchy) fillPrivate(c int, line mem.Addr, dirty bool) {
	cc := h.cores[c]
	if v, ok := cc.l1.insert(line, h.tick); ok {
		// L1 victim drops to L2.
		if v.dirty {
			if e2 := cc.l2.lookup(v.line); e2 != nil {
				e2.dirty = true
			}
		}
		if cc.l2.lookup(v.line) == nil {
			if v2, ok2 := cc.l2.insert(v.line, h.tick); ok2 {
				h.dropFromPrivate(c, v2)
			}
			// Move entry metadata: the victim left L1 but stays private.
			if e2 := cc.l2.lookup(v.line); e2 != nil {
				e2.dirty = v.dirty
				e2.specRead = v.specRead
				v.specRead = false
			}
		}
		if v.specRead {
			// The mark could not be preserved (line already in L2):
			// treat as lost, like PTLsim-ASF's displacement behaviour.
			h.stats[c].Evictions++
			if h.onEvict != nil {
				h.onEvict(c, v.line, true)
			}
			h.state(v.line).holders &^= 1 << uint(c)
		}
	}
	if e := cc.l1.lookup(line); e != nil && dirty {
		e.dirty = true
	}
	if cc.l2.lookup(line) == nil {
		if v2, ok2 := cc.l2.insert(line, h.tick); ok2 {
			h.dropFromPrivate(c, v2)
		}
	}
}

// dropFromPrivate handles a line leaving the private hierarchy entirely
// (L2 victim): write back to its home L3 slice and report the eviction.
func (h *Hierarchy) dropFromPrivate(c int, v entry) {
	if h.cores[c].l1.lookup(v.line) != nil {
		// Still in L1 (non-inclusive); the private copy survives.
		return
	}
	h.fill(h.homeSlice(v.line), v.line)
	ls := h.state(v.line)
	ls.holders &^= 1 << uint(c)
	if int(ls.owner) == c {
		ls.owner = -1
	}
	h.stats[c].Evictions++
	if h.onEvict != nil {
		h.onEvict(c, v.line, v.specRead)
	}
}

func (h *Hierarchy) fill(a *array, line mem.Addr) {
	if a.lookup(line) == nil {
		a.insert(line, h.tick)
	}
}

// SetSpecRead marks (or clears) the ASF speculative-read bit on core c's L1
// copy of line. Returns false if the line is not L1-resident (the caller
// must have just accessed it, so this indicates an associativity conflict
// evicted it immediately — treated by ASF as a capacity condition).
func (h *Hierarchy) SetSpecRead(c int, line mem.Addr, on bool) bool {
	if e := h.cores[c].l1.lookup(line.Line()); e != nil {
		e.specRead = on
		return true
	}
	return false
}

// FlashClearSpecRead clears every speculative-read bit in core c's L1, the
// single-cycle flash-clear a commit or abort performs.
func (h *Hierarchy) FlashClearSpecRead(c int) {
	h.cores[c].l1.forEach(func(e *entry) { e.specRead = false })
}

// L1Resident reports whether line is in core c's L1.
func (h *Hierarchy) L1Resident(c int, line mem.Addr) bool {
	return h.cores[c].l1.lookup(line.Line()) != nil
}

// Drop silently removes line from core c's private caches without firing
// the eviction hook. The ASF abort path uses it to discard speculatively
// written lines whose data is being rolled back.
func (h *Hierarchy) Drop(c int, line mem.Addr) {
	line = line.Line()
	h.cores[c].l1.remove(line)
	h.cores[c].l2.remove(line)
	ls := h.state(line)
	ls.holders &^= 1 << uint(c)
	if int(ls.owner) == c {
		ls.owner = -1
	}
}

func (h *Hierarchy) tlbLookup(c int, page mem.Addr) uint64 {
	cc := h.cores[c]
	if cc.tlb1.lookup(page, h.tick) {
		return 0
	}
	h.stats[c].TLB1Miss++
	if cc.tlb2.lookup(page, h.tick) {
		cc.tlb1.insert(page, h.tick)
		return h.cfg.TLB2Lat
	}
	h.stats[c].TLBWalks++
	cc.tlb2.insert(page, h.tick)
	cc.tlb1.insert(page, h.tick)
	return h.cfg.WalkLat
}

// FlushPrivate writes back and drops every line in core c's private
// caches, leaving the data in L3. Models the cache state at PTLsim's
// native-to-simulated switchover: the measured phase starts with cold
// private caches regardless of which core ran initialisation.
func (h *Hierarchy) FlushPrivate(c int) {
	cc := h.cores[c]
	var lines []mem.Addr
	cc.l1.forEach(func(e *entry) { lines = append(lines, e.line) })
	cc.l2.forEach(func(e *entry) { lines = append(lines, e.line) })
	for _, line := range lines {
		h.fill(h.homeSlice(line), line)
		cc.l1.remove(line)
		cc.l2.remove(line)
		ls := h.state(line)
		ls.holders &^= 1 << uint(c)
		if int(ls.owner) == c {
			ls.owner = -1
		}
	}
}

// FlushTLB drops all of core c's TLB entries (context switch / interrupt).
func (h *Hierarchy) FlushTLB(c int) {
	h.cores[c].tlb1.flush()
	h.cores[c].tlb2.flush()
}

// --- speculative replay (sim's epoch engine) -----------------------------
//
// The epoch engine (sim.EngineEpoch) services repeat accesses to L1-resident
// lines without re-running the full Access path. It holds direct references
// to the L1 and L1-TLB entries an access touched and revalidates them
// against live array state on every replay. The arrays are allocated once
// and never reallocated (see array.go), so the references stay safe for the
// hierarchy's lifetime; any eviction, invalidation, or flush retags or
// zeroes the entry and revalidation fails by inspection.

// LineRef is an opaque reference to one core's L1 entry for a line.
type LineRef *entry

// PageRef is an opaque reference to one core's L1-TLB entry for a page.
type PageRef *tlbEntry

// L1Ref returns a replay reference for line in core c's L1, or nil if the
// line is not resident (e.g. the access that just completed was immediately
// displaced by its own L2 victim handling).
func (h *Hierarchy) L1Ref(c int, line mem.Addr) LineRef {
	return LineRef(h.cores[c].l1.lookup(line))
}

// TLB1Ref returns a replay reference for page in core c's L1 TLB, or nil.
// Only the MRU entry is consulted: after a full access of page it is the
// MRU entry by construction, and a miss here merely skips seeding.
func (h *Hierarchy) TLB1Ref(c int, page mem.Addr) PageRef {
	if e := h.cores[c].tlb1.last; e != nil && e.valid && e.page == page {
		return PageRef(e)
	}
	return nil
}

// ReplayHit revalidates a seeded access window and, if still valid, replays
// exactly the state changes Access performs for an L1 hit: the LRU tick
// advances, the L1 entry (and, for TLB-translated accesses, the TLB entry
// and its MRU pointer) is stamped with the new tick, and the per-core
// load/store and L1-hit counters advance. Returns the latency to charge and
// true; on any validation failure it returns (0, false) having changed
// nothing.
//
// Validity is judged entirely from live state: the referenced L1 entry must
// still hold line, and for writes must be dirty — dirty implies this core
// owns the line exclusively, so the directory update and write-upgrade of
// the full path are idempotent no-ops and no invalidation probe is due.
func (h *Hierarchy) ReplayHit(c int, lr LineRef, line mem.Addr, write bool, pr PageRef, page mem.Addr) (uint64, bool) {
	e := (*entry)(lr)
	if e == nil || !e.valid || e.line != line || (write && !e.dirty) {
		return 0, false
	}
	var te *tlbEntry
	if !write || h.cfg.StoresUseTLB {
		te = (*tlbEntry)(pr)
		if te == nil || !te.valid || te.page != page {
			return 0, false
		}
	}
	h.tick++
	st := &h.stats[c]
	if write {
		st.Stores++
	} else {
		st.Loads++
	}
	if te != nil {
		te.lastUse = h.tick
		h.cores[c].tlb1.last = te
	}
	e.lastUse = h.tick
	st.L1Hits++
	return h.cfg.L1Lat, true
}
