package cache

import "asfstack/internal/mem"

// dirTable is the flat coherence directory: an open-addressed hash table
// mapping line addresses to lineState values stored inline. It replaces the
// previous map[mem.Addr]*lineState, which paid a heap allocation per tracked
// line and Go map hashing on every access.
//
// Invariants the rest of the hierarchy relies on:
//
//   - Entries are never deleted (the old map never deleted either; a line
//     whose holders mask drains to zero simply stays with neutral state).
//   - Pointers returned by getOrInsert stay valid until the next insertion
//     that grows the table. The hierarchy only inserts for lines that were
//     never accessed before — the initial state() call in Access — so all
//     later state() calls during the same access resolve to existing slots
//     and cannot move memory.
//   - The table is never iterated, so slot order cannot leak into simulated
//     timing (the determinism property PR 1 established for the arrays).
type dirTable struct {
	slots []dirSlot
	used  int
	shift uint // 64 - log2(len(slots)); used by the multiplicative hash
}

// dirSlot is one open-addressing slot. Lines are 64-byte aligned, so line|1
// is never zero and never collides with another line: key==0 means empty.
type dirSlot struct {
	key   uint64
	state lineState
}

const dirMinSlots = 1 << 10

// fibMult is 2^64 / phi, the standard multiplicative-hashing constant: the
// high bits of line*fibMult are well mixed even for sequential lines.
const fibMult = 0x9E3779B97F4A7C15

func (d *dirTable) init() {
	d.slots = make([]dirSlot, dirMinSlots)
	d.used = 0
	d.shift = 64 - 10
}

// getOrInsert returns the state for line, creating a neutral entry (no
// holders, no owner) on first touch — the same semantics as the old map's
// state() helper.
func (d *dirTable) getOrInsert(line mem.Addr) *lineState {
	key := uint64(line) | 1
	mask := uint64(len(d.slots) - 1)
	i := (uint64(line) * fibMult) >> d.shift
	for {
		s := &d.slots[i]
		if s.key == key {
			return &s.state
		}
		if s.key == 0 {
			if d.used >= len(d.slots)*3/4 {
				d.grow()
				return d.getOrInsert(line)
			}
			d.used++
			s.key = key
			s.state = lineState{owner: -1}
			return &s.state
		}
		i = (i + 1) & mask
	}
}

func (d *dirTable) grow() {
	old := d.slots
	d.slots = make([]dirSlot, len(old)*2)
	d.shift--
	mask := uint64(len(d.slots) - 1)
	for _, s := range old {
		if s.key == 0 {
			continue
		}
		i := ((s.key &^ 1) * fibMult) >> d.shift
		for d.slots[i].key != 0 {
			i = (i + 1) & mask
		}
		d.slots[i] = s
	}
}
