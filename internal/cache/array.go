package cache

import "asfstack/internal/mem"

// entry is one cache line's bookkeeping. Data values live in mem.Memory;
// the entry only tracks residency, dirtiness, recency, and the ASF
// speculative-read mark used by the hybrid implementation variants.
type entry struct {
	line     mem.Addr
	valid    bool
	dirty    bool
	specRead bool
	lastUse  uint64
}

// array is a set-associative cache array with LRU replacement.
type array struct {
	sets    [][]entry
	setMask mem.Addr
	index   map[mem.Addr]*entry // line -> entry, for O(1) lookup
}

func newArray(sizeBytes, assoc int) *array {
	nSets := sizeBytes / mem.LineSize / assoc
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	a := &array{
		sets:    make([][]entry, nSets),
		setMask: mem.Addr(nSets - 1),
		index:   make(map[mem.Addr]*entry, sizeBytes/mem.LineSize),
	}
	for i := range a.sets {
		a.sets[i] = make([]entry, assoc)
	}
	return a
}

func (a *array) setFor(line mem.Addr) []entry {
	return a.sets[(line>>mem.LineShift)&a.setMask]
}

// lookup returns the entry for line, or nil.
func (a *array) lookup(line mem.Addr) *entry {
	if e, ok := a.index[line]; ok {
		return e
	}
	return nil
}

// insert places line into its set, returning the displaced victim (by
// value) and true if a valid line was evicted.
func (a *array) insert(line mem.Addr, now uint64) (victim entry, evicted bool) {
	set := a.setFor(line)
	var slot *entry
	for i := range set {
		e := &set[i]
		if !e.valid {
			slot = e
			break
		}
		if slot == nil || e.lastUse < slot.lastUse {
			slot = e
		}
	}
	if slot.valid {
		victim, evicted = *slot, true
		delete(a.index, slot.line)
	}
	*slot = entry{line: line, valid: true, lastUse: now}
	a.index[line] = slot
	return victim, evicted
}

// remove invalidates line if present.
func (a *array) remove(line mem.Addr) {
	if e, ok := a.index[line]; ok {
		*e = entry{}
		delete(a.index, line)
	}
}

// forEach visits every valid entry in (set, way) order. Iteration must be
// deterministic: FlushPrivate refills L3 in this order, and Go map order
// would leak into L3's LRU state and make measured-phase timings vary from
// run to run.
func (a *array) forEach(fn func(*entry)) {
	for i := range a.sets {
		set := a.sets[i]
		for j := range set {
			if set[j].valid {
				fn(&set[j])
			}
		}
	}
}

// tlbArray is a set-associative TLB with LRU replacement over page numbers.
type tlbArray struct {
	sets    [][]tlbEntry
	setMask mem.Addr
}

type tlbEntry struct {
	page    mem.Addr
	valid   bool
	lastUse uint64
}

func newTLB(entries, assoc int) *tlbArray {
	nSets := entries / assoc
	if nSets == 0 {
		nSets = 1
	}
	// Round set count up to a power of two for masking; fully associative
	// TLBs (assoc == entries) have one set and are unaffected.
	p := 1
	for p < nSets {
		p <<= 1
	}
	t := &tlbArray{sets: make([][]tlbEntry, p), setMask: mem.Addr(p - 1)}
	for i := range t.sets {
		t.sets[i] = make([]tlbEntry, assoc)
	}
	return t
}

func (t *tlbArray) setFor(page mem.Addr) []tlbEntry {
	return t.sets[(page>>mem.PageShift)&t.setMask]
}

func (t *tlbArray) lookup(page mem.Addr, now uint64) bool {
	set := t.setFor(page)
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].lastUse = now
			return true
		}
	}
	return false
}

func (t *tlbArray) insert(page mem.Addr, now uint64) {
	set := t.setFor(page)
	var slot *tlbEntry
	for i := range set {
		e := &set[i]
		if !e.valid {
			slot = e
			break
		}
		if slot == nil || e.lastUse < slot.lastUse {
			slot = e
		}
	}
	*slot = tlbEntry{page: page, valid: true, lastUse: now}
}

func (t *tlbArray) flush() {
	for i := range t.sets {
		for j := range t.sets[i] {
			t.sets[i][j] = tlbEntry{}
		}
	}
}
