package cache

import "asfstack/internal/mem"

// entry is one cache line's bookkeeping. Data values live in mem.Memory;
// the entry only tracks residency, dirtiness, recency, and the ASF
// speculative-read mark used by the hybrid implementation variants.
type entry struct {
	line     mem.Addr
	valid    bool
	dirty    bool
	specRead bool
	lastUse  uint64
}

// array is a set-associative cache array with LRU replacement. The ways of
// set s occupy ents[s*assoc : (s+1)*assoc]; lookups scan the (small) set
// directly rather than going through a side map — at 2–16 ways the scan
// stays within a couple of cache lines and beats map hashing, and it keeps
// the hot path free of map machinery entirely.
type array struct {
	ents    []entry
	assoc   int
	setMask mem.Addr
	nValid  int // resident-line count, backing the occupancy gauges
}

func newArray(sizeBytes, assoc int) *array {
	nSets := sizeBytes / mem.LineSize / assoc
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	return &array{
		ents:    make([]entry, nSets*assoc),
		assoc:   assoc,
		setMask: mem.Addr(nSets - 1),
	}
}

func (a *array) setFor(line mem.Addr) []entry {
	s := int((line>>mem.LineShift)&a.setMask) * a.assoc
	return a.ents[s : s+a.assoc]
}

// lookup returns the entry for line, or nil.
func (a *array) lookup(line mem.Addr) *entry {
	set := a.setFor(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			return &set[i]
		}
	}
	return nil
}

// insert places line into its set, returning the displaced victim (by
// value) and true if a valid line was evicted.
func (a *array) insert(line mem.Addr, now uint64) (victim entry, evicted bool) {
	set := a.setFor(line)
	var slot *entry
	for i := range set {
		e := &set[i]
		if !e.valid {
			slot = e
			break
		}
		if slot == nil || e.lastUse < slot.lastUse {
			slot = e
		}
	}
	if slot.valid {
		victim, evicted = *slot, true
	} else {
		a.nValid++
	}
	*slot = entry{line: line, valid: true, lastUse: now}
	return victim, evicted
}

// remove invalidates line if present.
func (a *array) remove(line mem.Addr) {
	if e := a.lookup(line); e != nil {
		*e = entry{}
		a.nValid--
	}
}

// forEach visits every valid entry in (set, way) order. Iteration must be
// deterministic: FlushPrivate refills L3 in this order, and hash order
// would leak into L3's LRU state and make measured-phase timings vary from
// run to run.
func (a *array) forEach(fn func(*entry)) {
	for i := range a.ents {
		if a.ents[i].valid {
			fn(&a.ents[i])
		}
	}
}

// tlbArray is a set-associative TLB with LRU replacement over page numbers.
// last caches the most recent hit: consecutive accesses overwhelmingly land
// on the same page, and the pointer check skips the set scan (48 ways for
// the fully associative L1 TLB). The cached entry is in the array proper,
// so the lastUse update through it keeps LRU state exactly as a scan would.
type tlbArray struct {
	ents    []tlbEntry
	assoc   int
	setMask mem.Addr
	last    *tlbEntry
}

type tlbEntry struct {
	page    mem.Addr
	valid   bool
	lastUse uint64
}

func newTLB(entries, assoc int) *tlbArray {
	nSets := entries / assoc
	if nSets == 0 {
		nSets = 1
	}
	// Round set count up to a power of two for masking; fully associative
	// TLBs (assoc == entries) have one set and are unaffected.
	p := 1
	for p < nSets {
		p <<= 1
	}
	return &tlbArray{
		ents:    make([]tlbEntry, p*assoc),
		assoc:   assoc,
		setMask: mem.Addr(p - 1),
	}
}

func (t *tlbArray) setFor(page mem.Addr) []tlbEntry {
	s := int((page>>mem.PageShift)&t.setMask) * t.assoc
	return t.ents[s : s+t.assoc]
}

func (t *tlbArray) lookup(page mem.Addr, now uint64) bool {
	if e := t.last; e != nil && e.valid && e.page == page {
		e.lastUse = now
		return true
	}
	set := t.setFor(page)
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].lastUse = now
			t.last = &set[i]
			return true
		}
	}
	return false
}

func (t *tlbArray) insert(page mem.Addr, now uint64) {
	set := t.setFor(page)
	var slot *tlbEntry
	for i := range set {
		e := &set[i]
		if !e.valid {
			slot = e
			break
		}
		if slot == nil || e.lastUse < slot.lastUse {
			slot = e
		}
	}
	*slot = tlbEntry{page: page, valid: true, lastUse: now}
	t.last = slot
}

func (t *tlbArray) flush() {
	for i := range t.ents {
		t.ents[i] = tlbEntry{}
	}
	t.last = nil
}
