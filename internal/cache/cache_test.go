package cache

import (
	"testing"

	"asfstack/internal/mem"
)

func TestHitLevels(t *testing.T) {
	h := New(1, Barcelona())
	cfg := Barcelona()

	r := h.Access(0, 0x1000, false)
	if r.Level != RAM {
		t.Fatalf("cold access served from %v", r.Level)
	}
	if r.Cycles < cfg.MemLat {
		t.Fatalf("cold access cost %d", r.Cycles)
	}
	r = h.Access(0, 0x1008, false)
	if r.Level != L1 || r.Cycles != cfg.L1Lat {
		t.Fatalf("warm access: %v, %d cycles", r.Level, r.Cycles)
	}
}

func TestL1AssociativityEviction(t *testing.T) {
	h := New(1, Barcelona())
	// 64 KB 2-way: 512 sets. Three lines with the same set index thrash.
	stride := mem.Addr(512 * mem.LineSize)
	for i := 0; i < 3; i++ {
		h.Access(0, mem.Addr(i)*stride, false)
	}
	// Line 0 must have left L1 (LRU victim), still in L2.
	if h.L1Resident(0, 0) {
		t.Fatal("line 0 survived a 3-way thrash of a 2-way set")
	}
	r := h.Access(0, 0, false)
	if r.Level != L2 {
		t.Fatalf("displaced line served from %v, want L2", r.Level)
	}
}

func TestCoherenceInvalidationOnWrite(t *testing.T) {
	h := New(2, Barcelona())
	h.Access(0, 0x2000, false)
	h.Access(1, 0x2000, false)
	// Core 1 writes: core 0's copy must be invalidated.
	h.Access(1, 0x2000, true)
	if h.L1Resident(0, 0x2000) {
		t.Fatal("write did not invalidate the other core's copy")
	}
	// Core 0 re-reads a dirty remote line: cache-to-cache transfer.
	r := h.Access(0, 0x2000, false)
	if r.Level != Remote {
		t.Fatalf("dirty remote line served from %v, want remote", r.Level)
	}
}

func TestEvictHookFiresWithSpecMark(t *testing.T) {
	h := New(1, Barcelona())
	var evicted []mem.Addr
	var specs []bool
	h.SetEvictHook(func(core int, line mem.Addr, spec bool) {
		evicted = append(evicted, line)
		specs = append(specs, spec)
	})
	h.Access(0, 0x3000, false)
	if !h.SetSpecRead(0, 0x3000, true) {
		t.Fatal("SetSpecRead on resident line failed")
	}
	stride := mem.Addr(512 * mem.LineSize)
	h.Access(0, 0x3000+stride, false)
	h.Access(0, 0x3000+2*stride, false)
	found := false
	for i, l := range evicted {
		if l == 0x3000 && specs[i] {
			found = true
		}
	}
	if !found {
		t.Fatalf("speculative-read eviction not reported: %v %v", evicted, specs)
	}
}

func TestFlashClearSpecRead(t *testing.T) {
	h := New(1, Barcelona())
	for i := 0; i < 10; i++ {
		a := mem.Addr(0x4000 + i*mem.LineSize)
		h.Access(0, a, false)
		h.SetSpecRead(0, a, true)
	}
	h.FlashClearSpecRead(0)
	var spec int
	h.SetEvictHook(func(_ int, _ mem.Addr, s bool) {
		if s {
			spec++
		}
	})
	// Thrash everything out; no eviction may still carry the mark.
	for i := 0; i < 4096; i++ {
		h.Access(0, mem.Addr(0x100000+i*mem.LineSize), false)
	}
	if spec != 0 {
		t.Fatalf("%d lines still marked after flash clear", spec)
	}
}

func TestTLBMissCostsAndStoresSkipTLB(t *testing.T) {
	cfg := Barcelona()
	h := New(1, cfg)
	// First load on a fresh page: full walk.
	r1 := h.Access(0, 0x100000, false)
	if !r1.TLBMiss {
		t.Fatal("first load did not walk")
	}
	// Second load, same page: TLB hit.
	r2 := h.Access(0, 0x100040, false)
	if r2.TLBMiss {
		t.Fatal("second load walked again")
	}
	// Store to a brand-new page: must not consult the TLB (PTLsim quirk).
	r3 := h.Access(0, 0x900000, true)
	if r3.TLBMiss {
		t.Fatal("store consulted the TLB")
	}
	st := h.Stats(0)
	if st.TLBWalks != 1 {
		t.Fatalf("walks = %d, want 1", st.TLBWalks)
	}
}

func TestFlushTLB(t *testing.T) {
	h := New(1, Barcelona())
	h.Access(0, 0x200000, false)
	h.FlushTLB(0)
	r := h.Access(0, 0x200040, false)
	if !r.TLBMiss {
		t.Fatal("flush did not drop the translation")
	}
}

func TestDropRemovesResidency(t *testing.T) {
	h := New(1, Barcelona())
	h.Access(0, 0x5000, true)
	h.Drop(0, 0x5000)
	if h.L1Resident(0, 0x5000) {
		t.Fatal("Drop left the line resident")
	}
	// Re-access must miss past L2 (the private copy is gone).
	r := h.Access(0, 0x5000, false)
	if r.Level == L1 || r.Level == L2 {
		t.Fatalf("dropped line served from %v", r.Level)
	}
}

func TestStatsCount(t *testing.T) {
	h := New(1, Barcelona())
	for i := 0; i < 5; i++ {
		h.Access(0, 0x6000, false)
	}
	h.Access(0, 0x6000, true)
	st := h.Stats(0)
	if st.Loads != 5 || st.Stores != 1 {
		t.Fatalf("loads=%d stores=%d", st.Loads, st.Stores)
	}
	if st.L1Hits < 4 {
		t.Fatalf("l1 hits = %d", st.L1Hits)
	}
}
