// Package txprof is the transaction-level flight recorder: a fixed-size
// per-core ring of tm.TxEvent records (begin/abort/fallback/commit, with
// abort cause, causality edge, set sizes and attempt cycles) that every TM
// runtime feeds through the tm.TxProfiler ABI, plus the deterministic
// Profile aggregation (wasted-work accounting, top contended lines,
// aborter→victim causality graph) that cmd/tmprof analyses.
//
// Cost model: the rings and all full-run aggregates are allocated once at
// construction, so Record never allocates — it is a handful of array writes
// on per-core state touched only from that core's goroutine. When profiling
// is disabled the runtimes hold a nil tm.TxProfiler and pay exactly one
// predictable branch per would-be record (see the package benchmarks).
//
// Determinism: each core records only its own events in its own execution
// order, and Profile walks cores in index order with all aggregate sorts
// total — so for a fixed seed the serialized profile is byte-identical
// across runs and any host worker count.
package txprof

import (
	"fmt"
	"io"
	"sort"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// DefaultRing is the per-core ring capacity used when none is given: deep
// enough to hold every event of a litmus iteration or a profiling window,
// small enough that a full 8-core recorder stays under a megabyte.
const DefaultRing = 512

// coreRing is one core's flight-recorder state. Only that core's goroutine
// touches it while the machine runs; the trailing pad keeps neighbouring
// cores' rings out of each other's cache lines.
type coreRing struct {
	buf []tm.TxEvent
	n   uint64 // total events ever recorded; head slot is n % cap

	// Full-run aggregates (precise even after the ring wraps).
	kinds     [tm.NumTxEventKinds]uint64
	causes    [sim.NumAbortReasons]uint64
	stmAborts uint64
	wasted    uint64   // cycles burned in aborted attempts
	useful    uint64   // cycles of committed attempts
	edges     []uint64 // aborts of this core caused by core i

	_ [64]byte // false-sharing pad
}

// Recorder implements tm.TxProfiler: the per-core flight recorder.
type Recorder struct {
	rings []coreRing
	ring  int
}

var _ tm.TxProfiler = (*Recorder)(nil)

// NewRecorder returns a recorder for cores cores with the given per-core
// ring capacity (DefaultRing when ring <= 0). All memory is allocated here.
func NewRecorder(cores, ring int) *Recorder {
	if ring <= 0 {
		ring = DefaultRing
	}
	r := &Recorder{rings: make([]coreRing, cores), ring: ring}
	for i := range r.rings {
		r.rings[i].buf = make([]tm.TxEvent, ring)
		r.rings[i].edges = make([]uint64, cores)
	}
	return r
}

// Record appends ev to core's ring and folds it into the full-run
// aggregates. Zero allocations; called only from core's own goroutine.
func (r *Recorder) Record(core int, ev tm.TxEvent) {
	rg := &r.rings[core]
	rg.buf[rg.n%uint64(len(rg.buf))] = ev
	rg.n++
	rg.kinds[ev.Kind]++
	switch ev.Kind {
	case tm.TxEvAbort:
		rg.wasted += ev.Cycles
		if ev.STM {
			rg.stmAborts++
		} else {
			rg.causes[ev.Cause]++
		}
		if ev.Aborter >= 0 && ev.Aborter < len(rg.edges) {
			rg.edges[ev.Aborter]++
		}
	case tm.TxEvCommit:
		rg.useful += ev.Cycles
	}
}

// Reset clears all rings and aggregates (start of the measured phase).
// Must be called at a barrier (no cores running).
func (r *Recorder) Reset() {
	for i := range r.rings {
		rg := &r.rings[i]
		rg.n = 0
		rg.kinds = [tm.NumTxEventKinds]uint64{}
		rg.causes = [sim.NumAbortReasons]uint64{}
		rg.stmAborts, rg.wasted, rg.useful = 0, 0, 0
		for j := range rg.edges {
			rg.edges[j] = 0
		}
	}
}

// The txprof profile document schema. Additive changes (new fields) bump
// nothing; renames or semantic changes bump ProfileVersion.
const (
	ProfileSchema  = "asfstack/txprof"
	ProfileVersion = 1
)

// TopLinesN caps the contended-line leaderboard in a Profile.
const TopLinesN = 16

// Profile is the serialized flight-recorder state: the surviving per-core
// event windows plus full-run aggregates. It is deterministic for a fixed
// seed (see the package comment).
type Profile struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Ring is the per-core ring capacity the recording ran with.
	Ring int `json:"ring"`

	Cores   []CoreLog `json:"cores"`
	Summary Summary   `json:"summary"`
}

// CoreLog is one core's surviving event window, oldest first. Recorded
// counts every event the core ever logged; when it exceeds len(Events) the
// ring wrapped and only the newest window survives.
type CoreLog struct {
	Core     int          `json:"core"`
	Recorded uint64       `json:"recorded"`
	Events   []tm.TxEvent `json:"events"`
}

// Summary is the full-run aggregate section of a Profile. Counts and cycle
// sums are precise even when rings wrapped; TopLines is computed from the
// surviving windows only (the flight-recorder horizon).
type Summary struct {
	Begins    uint64 `json:"begins"`
	Commits   uint64 `json:"commits"`
	Aborts    uint64 `json:"aborts"`
	Fallbacks uint64 `json:"fallbacks"`

	// UsefulCycles/WastedCycles: cycles of committed attempts vs cycles
	// burned in aborted attempts. WastedRatio = wasted/(wasted+useful).
	UsefulCycles uint64  `json:"useful_cycles"`
	WastedCycles uint64  `json:"wasted_cycles"`
	WastedRatio  float64 `json:"wasted_ratio"`

	// AbortsByCause in sim.AbortReason order (plus the "stm" software
	// pseudo-cause), zero-count causes omitted.
	AbortsByCause []CauseCount `json:"aborts_by_cause,omitempty"`
	// TopLines: most contended cache lines by abort count over the
	// surviving event windows (count desc, address asc; ≤ TopLinesN).
	TopLines []LineCount `json:"top_lines,omitempty"`
	// Edges is the aborter→victim causality graph (full-run precise),
	// sorted by (from, to).
	Edges []Edge `json:"edges,omitempty"`
}

// CauseCount is one abort cause's total.
type CauseCount struct {
	Cause string `json:"cause"`
	Count uint64 `json:"count"`
}

// LineCount is one contended cache line's abort count.
type LineCount struct {
	Addr  mem.Addr `json:"addr"`
	Count uint64   `json:"count"`
}

// Edge is one aborter→victim edge of the causality graph: From's accesses
// aborted To's transactions Count times.
type Edge struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Count uint64 `json:"count"`
}

// Profile snapshots the recorder into its serialized form. Must be called
// at a barrier (no cores running).
func (r *Recorder) Profile() *Profile {
	p := &Profile{Schema: ProfileSchema, Version: ProfileVersion, Ring: r.ring}
	lines := map[mem.Addr]uint64{}
	var causes [sim.NumAbortReasons]uint64
	var stm uint64
	for i := range r.rings {
		rg := &r.rings[i]
		cl := CoreLog{Core: i, Recorded: rg.n}
		keep := rg.n
		if keep > uint64(len(rg.buf)) {
			keep = uint64(len(rg.buf))
		}
		cl.Events = make([]tm.TxEvent, 0, keep)
		for j := uint64(0); j < keep; j++ {
			ev := rg.buf[(rg.n-keep+j)%uint64(len(rg.buf))]
			cl.Events = append(cl.Events, ev)
			if ev.Kind == tm.TxEvAbort && ev.Addr != sim.NoAddr {
				lines[ev.Addr.Line()]++
			}
		}
		p.Cores = append(p.Cores, cl)

		s := &p.Summary
		s.Begins += rg.kinds[tm.TxEvBegin]
		s.Aborts += rg.kinds[tm.TxEvAbort]
		s.Fallbacks += rg.kinds[tm.TxEvFallback]
		s.Commits += rg.kinds[tm.TxEvCommit]
		s.UsefulCycles += rg.useful
		s.WastedCycles += rg.wasted
		for c := range causes {
			causes[c] += rg.causes[c]
		}
		stm += rg.stmAborts
		for from, n := range rg.edges {
			if n > 0 {
				p.Summary.Edges = append(p.Summary.Edges, Edge{From: from, To: i, Count: n})
			}
		}
	}

	s := &p.Summary
	if tot := s.WastedCycles + s.UsefulCycles; tot > 0 {
		s.WastedRatio = float64(s.WastedCycles) / float64(tot)
	}
	for c := 1; c < sim.NumAbortReasons; c++ { // skip AbortNone
		if causes[c] > 0 {
			s.AbortsByCause = append(s.AbortsByCause, CauseCount{Cause: sim.AbortReason(c).String(), Count: causes[c]})
		}
	}
	if stm > 0 {
		s.AbortsByCause = append(s.AbortsByCause, CauseCount{Cause: "stm", Count: stm})
	}
	for a, n := range lines {
		s.TopLines = append(s.TopLines, LineCount{Addr: a, Count: n})
	}
	sort.Slice(s.TopLines, func(i, j int) bool {
		if s.TopLines[i].Count != s.TopLines[j].Count {
			return s.TopLines[i].Count > s.TopLines[j].Count
		}
		return s.TopLines[i].Addr < s.TopLines[j].Addr
	})
	if len(s.TopLines) > TopLinesN {
		s.TopLines = s.TopLines[:TopLinesN]
	}
	sort.Slice(s.Edges, func(i, j int) bool {
		if s.Edges[i].From != s.Edges[j].From {
			return s.Edges[i].From < s.Edges[j].From
		}
		return s.Edges[i].To < s.Edges[j].To
	})
	return p
}

// WriteDump renders the per-core event history as text, the form litmus
// failures ship alongside the replay seed. Deterministic: cores in order,
// events oldest first.
func (p *Profile) WriteDump(w io.Writer) {
	fmt.Fprintf(w, "txprof flight recorder: %d commits, %d aborts, wasted ratio %.3f\n",
		p.Summary.Commits, p.Summary.Aborts, p.Summary.WastedRatio)
	for _, cl := range p.Cores {
		dropped := cl.Recorded - uint64(len(cl.Events))
		fmt.Fprintf(w, "core %d: %d events", cl.Core, cl.Recorded)
		if dropped > 0 {
			fmt.Fprintf(w, " (%d oldest dropped by ring wrap)", dropped)
		}
		fmt.Fprintln(w)
		for _, ev := range cl.Events {
			fmt.Fprintf(w, "  @%-10d %-8s %-6s", ev.Time, ev.Kind, ev.Path)
			switch ev.Kind {
			case tm.TxEvAbort:
				cause := ev.Cause.String()
				if ev.STM {
					cause = "stm"
				}
				fmt.Fprintf(w, " cause=%s", cause)
				if ev.Code != 0 {
					fmt.Fprintf(w, " code=0x%x", ev.Code)
				}
				if ev.Aborter != sim.NoCore {
					fmt.Fprintf(w, " by=core%d", ev.Aborter)
				}
				if ev.Addr != sim.NoAddr {
					fmt.Fprintf(w, " addr=%s", ev.Addr)
				}
				fmt.Fprintf(w, " r/w=%d/%d wasted=%d", ev.Reads, ev.Writes, ev.Cycles)
			case tm.TxEvCommit:
				fmt.Fprintf(w, " r/w=%d/%d cycles=%d", ev.Reads, ev.Writes, ev.Cycles)
			}
			fmt.Fprintln(w)
		}
	}
}
