package txprof

import (
	"strings"
	"testing"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// TestRecorderProfile feeds a synthetic two-core history and checks every
// aggregate: kind totals, the cause breakdown with the stm pseudo-cause,
// cycle accounting, line aggregation to cache-line granularity, and the
// sorted causality edges.
func TestRecorderProfile(t *testing.T) {
	r := NewRecorder(2, 8)
	r.Record(0, tm.TxEvent{Time: 10, Kind: tm.TxEvBegin, Path: tm.PathHW,
		Aborter: sim.NoCore, Addr: sim.NoAddr})
	r.Record(0, tm.TxEvent{Time: 40, Kind: tm.TxEvAbort, Path: tm.PathHW,
		Cause: sim.AbortContention, Aborter: 1, Addr: 0x1048, Cycles: 30})
	r.Record(0, tm.TxEvent{Time: 90, Kind: tm.TxEvCommit, Path: tm.PathHW,
		Aborter: sim.NoCore, Addr: sim.NoAddr, Reads: 3, Writes: 1, Cycles: 50})
	r.Record(1, tm.TxEvent{Time: 15, Kind: tm.TxEvBegin, Path: tm.PathSW,
		Aborter: sim.NoCore, Addr: sim.NoAddr})
	r.Record(1, tm.TxEvent{Time: 60, Kind: tm.TxEvAbort, Path: tm.PathSW,
		STM: true, Aborter: sim.NoCore, Addr: 0x1050, Cycles: 45})
	r.Record(1, tm.TxEvent{Time: 70, Kind: tm.TxEvFallback, Path: tm.PathSerial,
		Aborter: sim.NoCore, Addr: sim.NoAddr})
	r.Record(1, tm.TxEvent{Time: 120, Kind: tm.TxEvCommit, Path: tm.PathSerial,
		Aborter: sim.NoCore, Addr: sim.NoAddr, Cycles: 50})

	p := r.Profile()
	s := p.Summary
	if s.Begins != 2 || s.Commits != 2 || s.Aborts != 2 || s.Fallbacks != 1 {
		t.Fatalf("kind totals = %d/%d/%d/%d, want 2/2/2/1",
			s.Begins, s.Commits, s.Aborts, s.Fallbacks)
	}
	if s.UsefulCycles != 100 || s.WastedCycles != 75 {
		t.Fatalf("cycles = useful %d wasted %d, want 100/75", s.UsefulCycles, s.WastedCycles)
	}
	if want := 75.0 / 175.0; s.WastedRatio != want {
		t.Fatalf("wasted ratio = %v, want %v", s.WastedRatio, want)
	}
	wantCauses := []CauseCount{
		{Cause: sim.AbortContention.String(), Count: 1},
		{Cause: "stm", Count: 1},
	}
	if len(s.AbortsByCause) != len(wantCauses) {
		t.Fatalf("causes = %+v, want %+v", s.AbortsByCause, wantCauses)
	}
	for i, c := range wantCauses {
		if s.AbortsByCause[i] != c {
			t.Fatalf("cause[%d] = %+v, want %+v", i, s.AbortsByCause[i], c)
		}
	}
	// 0x1048 and 0x1050 share the 0x1040 cache line.
	if len(s.TopLines) != 1 || s.TopLines[0].Addr != mem.Addr(0x1048).Line() || s.TopLines[0].Count != 2 {
		t.Fatalf("top lines = %+v, want one line with 2 aborts", s.TopLines)
	}
	// Only the hardware abort carries an aborter; the stm abort does not.
	if len(s.Edges) != 1 || (s.Edges[0] != Edge{From: 1, To: 0, Count: 1}) {
		t.Fatalf("edges = %+v, want [{1 0 1}]", s.Edges)
	}
	if len(p.Cores) != 2 || p.Cores[0].Recorded != 3 || p.Cores[1].Recorded != 4 {
		t.Fatalf("core logs = %+v", p.Cores)
	}
}

// TestRingWrap: the surviving window shrinks to the ring capacity but the
// scalar aggregates stay precise, and TopLines is computed from the window
// only.
func TestRingWrap(t *testing.T) {
	r := NewRecorder(1, 4)
	for i := 0; i < 10; i++ {
		addr := mem.Addr(0x1000) // dropped from the window by later events
		if i >= 6 {
			addr = mem.Addr(0x2000)
		}
		r.Record(0, tm.TxEvent{Time: uint64(i), Kind: tm.TxEvAbort, Path: tm.PathHW,
			Cause: sim.AbortContention, Aborter: sim.NoCore, Addr: addr, Cycles: 7})
	}
	p := r.Profile()
	cl := p.Cores[0]
	if cl.Recorded != 10 || len(cl.Events) != 4 {
		t.Fatalf("recorded %d, window %d; want 10, 4", cl.Recorded, len(cl.Events))
	}
	if cl.Events[0].Time != 6 || cl.Events[3].Time != 9 {
		t.Fatalf("window = %v..%v, want the newest 4 (6..9)", cl.Events[0].Time, cl.Events[3].Time)
	}
	if p.Summary.Aborts != 10 || p.Summary.WastedCycles != 70 {
		t.Fatalf("aggregates not precise across wrap: aborts %d wasted %d",
			p.Summary.Aborts, p.Summary.WastedCycles)
	}
	if len(p.Summary.TopLines) != 1 || p.Summary.TopLines[0].Addr != mem.Addr(0x2000).Line() {
		t.Fatalf("top lines = %+v, want only the surviving window's line", p.Summary.TopLines)
	}
}

// TestReset: a reset recorder profiles as empty.
func TestReset(t *testing.T) {
	r := NewRecorder(2, 8)
	r.Record(0, tm.TxEvent{Kind: tm.TxEvCommit, Aborter: sim.NoCore, Addr: sim.NoAddr, Cycles: 9})
	r.Record(1, tm.TxEvent{Kind: tm.TxEvAbort, Cause: sim.AbortContention, Aborter: 0, Addr: 0x40, Cycles: 3})
	r.Reset()
	p := r.Profile()
	s := p.Summary
	if s.Begins != 0 || s.Commits != 0 || s.Aborts != 0 || s.Fallbacks != 0 ||
		s.UsefulCycles != 0 || s.WastedCycles != 0 ||
		len(s.AbortsByCause) != 0 || len(s.TopLines) != 0 || len(s.Edges) != 0 {
		t.Fatalf("summary after reset = %+v, want zero", s)
	}
	for _, cl := range p.Cores {
		if cl.Recorded != 0 || len(cl.Events) != 0 {
			t.Fatalf("core %d not empty after reset: %+v", cl.Core, cl)
		}
	}
}

// TestWriteDump pins the dump's load-bearing content (not exact spacing):
// the summary line, the wrap annotation, and the abort record's cause,
// causality edge and wasted cycles.
func TestWriteDump(t *testing.T) {
	r := NewRecorder(2, 2)
	r.Record(0, tm.TxEvent{Time: 5, Kind: tm.TxEvBegin, Path: tm.PathHW,
		Aborter: sim.NoCore, Addr: sim.NoAddr})
	r.Record(0, tm.TxEvent{Time: 20, Kind: tm.TxEvAbort, Path: tm.PathHW,
		Cause: sim.AbortContention, Code: 0x10, Aborter: 1, Addr: 0x1040,
		Reads: 2, Writes: 1, Cycles: 15})
	r.Record(0, tm.TxEvent{Time: 50, Kind: tm.TxEvCommit, Path: tm.PathHW,
		Aborter: sim.NoCore, Addr: sim.NoAddr, Reads: 2, Writes: 1, Cycles: 30})
	var b strings.Builder
	r.Profile().WriteDump(&b)
	got := b.String()
	for _, want := range []string{
		"txprof flight recorder: 1 commits, 1 aborts, wasted ratio 0.333",
		"core 0: 3 events (1 oldest dropped by ring wrap)",
		"cause=contention code=0x10 by=core1 addr=0x1040 r/w=2/1 wasted=15",
		"core 1: 0 events",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("dump missing %q:\n%s", want, got)
		}
	}
}

// TestRecordAllocs: Record must never allocate — it runs on every
// transaction event of a profiled run.
func TestRecordAllocs(t *testing.T) {
	r := NewRecorder(1, 64)
	ev := tm.TxEvent{Kind: tm.TxEvAbort, Cause: sim.AbortContention,
		Aborter: 0, Addr: 0x1040, Cycles: 12}
	if n := testing.AllocsPerRun(100, func() { r.Record(0, ev) }); n != 0 {
		t.Fatalf("Record allocates %v per call, want 0", n)
	}
}

// guarded mimics the runtimes' instrumentation sites: a nil-checked
// tm.TxProfiler field. The benchmarks below compare the three states the
// cost model in the package comment claims — enabled (array writes),
// disabled (one predictable branch), absent (no call at all).
type guarded struct {
	prof tm.TxProfiler
}

//go:noinline
func (g *guarded) record(core int, ev tm.TxEvent) {
	if g.prof != nil {
		g.prof.Record(core, ev)
	}
}

//go:noinline
func (g *guarded) absent(core int, ev tm.TxEvent) {}

var benchEv = tm.TxEvent{Time: 100, Kind: tm.TxEvAbort, Path: tm.PathHW,
	Cause: sim.AbortContention, Aborter: 1, Addr: 0x1040, Reads: 8, Writes: 2, Cycles: 400}

// BenchmarkRecordEnabled: the full recording path. Must report 0 allocs/op.
func BenchmarkRecordEnabled(b *testing.B) {
	g := &guarded{prof: NewRecorder(1, DefaultRing)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.record(0, benchEv)
	}
}

// BenchmarkRecordDisabled: the nil-profiler branch every unprofiled
// transaction pays. Must report 0 allocs/op and sit within noise of
// BenchmarkRecordAbsent.
func BenchmarkRecordDisabled(b *testing.B) {
	g := &guarded{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.record(0, benchEv)
	}
}

// BenchmarkRecordAbsent: the same call shape with no instrumentation at
// all — the baseline BenchmarkRecordDisabled is compared against.
func BenchmarkRecordAbsent(b *testing.B) {
	g := &guarded{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.absent(0, benchEv)
	}
}
