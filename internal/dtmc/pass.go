package dtmc

import "fmt"

// TxSuffix is appended to the names of transactional clones.
const TxSuffix = "$tx"

// Instrument runs the TM pass over the program: atomic regions and
// transactional clones get their shared accesses rewritten to ABI
// barriers. The result is a new program; the input is not modified.
//
// The pass is DTMC's in miniature:
//   - collect every function reachable from inside an atomic block,
//   - generate a "$tx" clone of each, with OpLoad/OpStore → OpTMLoad/
//     OpTMStore and calls redirected to clones,
//   - rewrite atomic regions in the original functions the same way,
//   - insert OpSerialize before OpExtern inside transactions (the only
//     safe option for functions with no transactional version, §3.3).
func Instrument(p *Program) (*Program, error) {
	out := NewProgram()

	// Pass 1: find functions called from transactional context.
	needClone := map[string]bool{}
	var mark func(fn *Function, inTx bool) error
	seen := map[string]bool{}
	for _, fn := range p.Funcs {
		if err := scanAtomic(p, fn, needClone, seen, &mark); err != nil {
			return nil, err
		}
	}

	// Pass 2: emit rewritten originals and clones.
	for name, fn := range p.Funcs {
		out.Add(rewriteFunction(fn, false))
		if needClone[name] {
			clone := rewriteFunction(fn, true)
			clone.Name = name + TxSuffix
			out.Add(clone)
		}
	}
	// Verify that every redirected call has a clone target.
	for _, fn := range out.Funcs {
		for _, ins := range fn.Code {
			if ins.Op == OpCall {
				if _, ok := out.Funcs[ins.Name]; !ok {
					return nil, fmt.Errorf("dtmc: missing clone %q", ins.Name)
				}
			}
		}
	}
	return out, nil
}

// scanAtomic walks fn marking the callee closure of its atomic regions.
func scanAtomic(p *Program, fn *Function, needClone map[string]bool,
	seen map[string]bool, _ *func(*Function, bool) error) error {
	depth := 0
	for _, ins := range fn.Code {
		switch ins.Op {
		case OpAtomicBegin:
			depth++
		case OpAtomicEnd:
			depth--
			if depth < 0 {
				return fmt.Errorf("dtmc: unbalanced atomic in %s", fn.Name)
			}
		case OpCall:
			if depth > 0 {
				if err := markClone(p, ins.Name, needClone); err != nil {
					return err
				}
			}
		case OpTMLoad, OpTMStore, OpSerialize:
			return fmt.Errorf("dtmc: %s in un-instrumented input %s", ins.Op, fn.Name)
		}
	}
	if depth != 0 {
		return fmt.Errorf("dtmc: unbalanced atomic in %s", fn.Name)
	}
	return nil
}

// markClone transitively marks name and its callees as needing clones.
func markClone(p *Program, name string, needClone map[string]bool) error {
	if needClone[name] {
		return nil
	}
	fn, ok := p.Funcs[name]
	if !ok {
		return fmt.Errorf("dtmc: call to undefined function %q", name)
	}
	needClone[name] = true
	for _, ins := range fn.Code {
		if ins.Op == OpCall {
			if err := markClone(p, ins.Name, needClone); err != nil {
				return err
			}
		}
		if ins.Op == OpAtomicBegin {
			// Nested atomic inside a cloned function flattens at
			// run time; the body is instrumented anyway.
			continue
		}
	}
	return nil
}

// rewriteFunction clones fn, instrumenting transactional context. For
// whole-function clones (cloneAll) every shared access is rewritten; for
// originals only the regions between AtomicBegin/AtomicEnd are.
// Inserted instructions shift indices, so jump targets are remapped.
func rewriteFunction(fn *Function, cloneAll bool) *Function {
	out := &Function{Name: fn.Name, NRegs: fn.NRegs, NSlots: fn.NSlots}
	idxMap := make([]int, len(fn.Code)+1)
	var jumps []int // indices into out.Code whose Imm is an old target
	depth := 0
	for i, ins := range fn.Code {
		idxMap[i] = len(out.Code)
		inTx := cloneAll || depth > 0
		switch ins.Op {
		case OpAtomicBegin:
			depth++
		case OpAtomicEnd:
			depth--
		case OpLoad:
			if inTx {
				ins.Op = OpTMLoad
			}
		case OpStore:
			if inTx {
				ins.Op = OpTMStore
			}
		case OpCall:
			if inTx {
				ins.Name += TxSuffix
			}
		case OpExtern:
			if inTx {
				out.Code = append(out.Code, Instr{Op: OpSerialize})
			}
		case OpJmp, OpJnz:
			jumps = append(jumps, len(out.Code))
		}
		out.Code = append(out.Code, ins)
	}
	idxMap[len(fn.Code)] = len(out.Code)
	for _, j := range jumps {
		out.Code[j].Imm = uint64(idxMap[out.Code[j].Imm])
	}
	return out
}
