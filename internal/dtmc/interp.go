package dtmc

import (
	"fmt"

	"asfstack"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// Exec runs instrumented function name on core c with arg in register 0,
// returning register 0 at OpRet. Atomic regions execute through the
// stack's TM runtime: each OpAtomicBegin checkpoints the registers and
// stack slots (the software setjmp the begin function performs), and the
// runtime's restart re-runs the block body exactly like returning from
// _ITM_beginTransaction again.
//
// The program must have been through Instrument; executing a raw OpLoad
// inside an atomic region is rejected as a compiler bug.
func Exec(s *asfstack.Stack, c *sim.CPU, p *Program, name string, arg uint64) (uint64, error) {
	fn, ok := p.Funcs[name]
	if !ok {
		return 0, fmt.Errorf("dtmc: undefined function %q", name)
	}
	e := &exec{s: s, c: c, p: p}
	v, err := e.run(fn, arg, nil)
	return v, err
}

type exec struct {
	s *asfstack.Stack
	c *sim.CPU
	p *Program
}

type frame struct {
	regs  []uint64
	slots []uint64
}

// run interprets fn. tx is non-nil when executing inside a transaction
// (clone context).
func (e *exec) run(fn *Function, arg uint64, tx tm.Tx) (uint64, error) {
	f := &frame{regs: make([]uint64, fn.NRegs), slots: make([]uint64, fn.NSlots)}
	if fn.NRegs > 0 {
		f.regs[0] = arg
	}
	return e.interp(fn, f, 0, len(fn.Code), tx)
}

// interp executes fn.Code[pc:end) and returns reg 0 at OpRet.
func (e *exec) interp(fn *Function, f *frame, pc, end int, tx tm.Tx) (uint64, error) {
	c := e.c
	for pc < end {
		ins := fn.Code[pc]
		c.Exec(1)
		switch ins.Op {
		case OpConst:
			f.regs[ins.A] = ins.Imm
		case OpMov:
			f.regs[ins.A] = f.regs[ins.B]
		case OpAdd:
			f.regs[ins.A] = f.regs[ins.B] + f.regs[ins.C]
		case OpSub:
			f.regs[ins.A] = f.regs[ins.B] - f.regs[ins.C]
		case OpLoad:
			if tx != nil {
				return 0, fmt.Errorf("dtmc: raw load inside transaction in %s (pass bug)", fn.Name)
			}
			f.regs[ins.A] = c.Load(mem.Addr(f.regs[ins.B]))
		case OpStore:
			if tx != nil {
				return 0, fmt.Errorf("dtmc: raw store inside transaction in %s (pass bug)", fn.Name)
			}
			c.Store(mem.Addr(f.regs[ins.B]), f.regs[ins.A])
		case OpTMLoad:
			if tx == nil {
				return 0, fmt.Errorf("dtmc: tmload outside transaction in %s", fn.Name)
			}
			f.regs[ins.A] = tx.Load(mem.Addr(f.regs[ins.B]))
		case OpTMStore:
			if tx == nil {
				return 0, fmt.Errorf("dtmc: tmstore outside transaction in %s", fn.Name)
			}
			tx.Store(mem.Addr(f.regs[ins.B]), f.regs[ins.A])
		case OpLocalLoad:
			f.regs[ins.A] = f.slots[ins.Imm]
		case OpLocalStore:
			f.slots[ins.Imm] = f.regs[ins.A]
		case OpAtomicBegin:
			endIdx, err := matchEnd(fn, pc)
			if err != nil {
				return 0, err
			}
			// The begin function's setjmp: checkpoint registers and
			// the slice of the stack a restart must restore.
			ckRegs := append([]uint64(nil), f.regs...)
			ckSlots := append([]uint64(nil), f.slots...)
			var ierr error
			e.s.RT.Atomic(c, func(inner tm.Tx) {
				copy(f.regs, ckRegs)
				copy(f.slots, ckSlots)
				_, ierr = e.interp(fn, f, pc+1, endIdx, inner)
			})
			if ierr != nil {
				return 0, ierr
			}
			pc = endIdx + 1
			continue
		case OpAtomicEnd:
			// Only reachable as `end` boundary of an atomic interp
			// or a stray end (checked by the pass).
			return 0, fmt.Errorf("dtmc: unexpected atomic end in %s", fn.Name)
		case OpCall:
			callee, ok := e.p.Funcs[ins.Name]
			if !ok {
				return 0, fmt.Errorf("dtmc: undefined function %q", ins.Name)
			}
			c.Exec(6) // call/return overhead
			v, err := e.run(callee, f.regs[ins.B], tx)
			if err != nil {
				return 0, err
			}
			f.regs[ins.A] = v
		case OpExtern:
			c.Exec(int(ins.Imm))
		case OpSerialize:
			if tx == nil {
				return 0, fmt.Errorf("dtmc: serialize outside transaction in %s", fn.Name)
			}
			if !tx.Irrevocable() {
				if ir, ok := tx.(tm.Irrevocably); ok {
					ir.BecomeIrrevocable()
				}
			}
		case OpJmp:
			pc = int(ins.Imm)
			continue
		case OpJnz:
			if f.regs[ins.A] != 0 {
				pc = int(ins.Imm)
				continue
			}
		case OpRet:
			return f.regs[0], nil
		default:
			return 0, fmt.Errorf("dtmc: bad opcode %v in %s", ins.Op, fn.Name)
		}
		pc++
	}
	return f.regs[0], nil
}

// matchEnd finds the OpAtomicEnd matching the OpAtomicBegin at pc.
func matchEnd(fn *Function, pc int) (int, error) {
	depth := 0
	for i := pc; i < len(fn.Code); i++ {
		switch fn.Code[i].Op {
		case OpAtomicBegin:
			depth++
		case OpAtomicEnd:
			depth--
			if depth == 0 {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("dtmc: unterminated atomic in %s", fn.Name)
}
