package dtmc_test

import (
	"testing"

	"asfstack"
	"asfstack/internal/dtmc"
	"asfstack/internal/sim"
)

// counterProgram is the paper's Fig. 2 example: an increment function with
// a transaction statement around a shared counter update.
//
//	void increment(cntr) { __tm_atomic { *cntr = *cntr + 5; } }
func counterProgram(t *testing.T) *dtmc.Program {
	t.Helper()
	b := dtmc.NewFunc("increment")
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicBegin})
	b.Emit(dtmc.Instr{Op: dtmc.OpLoad, A: 1, B: 0})      // r1 = *cntr
	b.Emit(dtmc.Instr{Op: dtmc.OpConst, A: 2, Imm: 5})   // r2 = 5
	b.Emit(dtmc.Instr{Op: dtmc.OpAdd, A: 1, B: 1, C: 2}) // r1 += 5
	b.Emit(dtmc.Instr{Op: dtmc.OpStore, A: 1, B: 0})     // *cntr = r1
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicEnd})
	b.Emit(dtmc.Instr{Op: dtmc.OpRet})
	p := dtmc.NewProgram()
	p.Add(b.Done())
	return p
}

func TestInstrumentRewritesAtomicAccesses(t *testing.T) {
	p, err := dtmc.Instrument(counterProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	fn := p.Funcs["increment"]
	var tmLoads, tmStores, raw int
	for _, ins := range fn.Code {
		switch ins.Op {
		case dtmc.OpTMLoad:
			tmLoads++
		case dtmc.OpTMStore:
			tmStores++
		case dtmc.OpLoad, dtmc.OpStore:
			raw++
		}
	}
	if tmLoads != 1 || tmStores != 1 || raw != 0 {
		t.Fatalf("instrumentation: tmloads=%d tmstores=%d raw=%d", tmLoads, tmStores, raw)
	}
}

func TestCounterAllRuntimes(t *testing.T) {
	const threads, incs = 4, 150
	prog, err := dtmc.Instrument(counterProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range []string{"LLB-256", "LLB-8", "STM"} {
		t.Run(rt, func(t *testing.T) {
			s := asfstack.New(asfstack.Options{Cores: threads, Runtime: rt})
			cntr := s.AllocShared(8)
			s.Parallel(threads, func(c *sim.CPU) {
				for i := 0; i < incs; i++ {
					if _, err := dtmc.Exec(s, c, prog, "increment", uint64(cntr)); err != nil {
						t.Error(err)
						return
					}
				}
			})
			if got := s.M.Mem.Load(cntr); got != 5*threads*incs {
				t.Fatalf("counter = %d, want %d", got, 5*threads*incs)
			}
		})
	}
}

// cloneProgram: main calls helper inside an atomic block; helper loads and
// stores shared memory. The pass must generate helper$tx and redirect the
// call.
func cloneProgram() *dtmc.Program {
	p := dtmc.NewProgram()

	h := dtmc.NewFunc("helper") // arg: addr; adds 1 to *addr
	h.Emit(dtmc.Instr{Op: dtmc.OpLoad, A: 1, B: 0})
	h.Emit(dtmc.Instr{Op: dtmc.OpConst, A: 2, Imm: 1})
	h.Emit(dtmc.Instr{Op: dtmc.OpAdd, A: 1, B: 1, C: 2})
	h.Emit(dtmc.Instr{Op: dtmc.OpStore, A: 1, B: 0})
	h.Emit(dtmc.Instr{Op: dtmc.OpRet})
	p.Add(h.Done())

	m := dtmc.NewFunc("main") // arg: addr
	m.Emit(dtmc.Instr{Op: dtmc.OpAtomicBegin})
	m.Emit(dtmc.Instr{Op: dtmc.OpCall, A: 1, B: 0, Name: "helper"})
	m.Emit(dtmc.Instr{Op: dtmc.OpCall, A: 1, B: 0, Name: "helper"})
	m.Emit(dtmc.Instr{Op: dtmc.OpAtomicEnd})
	m.Emit(dtmc.Instr{Op: dtmc.OpRet})
	p.Add(m.Done())
	return p
}

func TestTransactionalClones(t *testing.T) {
	p, err := dtmc.Instrument(cloneProgram())
	if err != nil {
		t.Fatal(err)
	}
	clone, ok := p.Funcs["helper"+dtmc.TxSuffix]
	if !ok {
		t.Fatal("no transactional clone generated for helper")
	}
	for _, ins := range clone.Code {
		if ins.Op == dtmc.OpLoad || ins.Op == dtmc.OpStore {
			t.Fatal("clone contains uninstrumented shared access")
		}
	}
	// Original must be untouched (callable outside transactions).
	orig := p.Funcs["helper"]
	rawOps := 0
	for _, ins := range orig.Code {
		if ins.Op == dtmc.OpLoad || ins.Op == dtmc.OpStore {
			rawOps++
		}
	}
	if rawOps != 2 {
		t.Fatalf("original helper rewritten (raw ops = %d, want 2)", rawOps)
	}

	s := asfstack.New(asfstack.Options{Cores: 2, Runtime: "LLB-256"})
	a := s.AllocShared(8)
	s.Parallel(2, func(c *sim.CPU) {
		for i := 0; i < 50; i++ {
			if _, err := dtmc.Exec(s, c, p, "main", uint64(a)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if got := s.M.Mem.Load(a); got != 200 {
		t.Fatalf("value = %d, want 200", got)
	}
}

// loopProgram has a backward jump inside an atomic block plus an OpExtern,
// exercising the pass's jump-target remapping and serialize insertion.
func loopProgram(iters uint64) *dtmc.Program {
	b := dtmc.NewFunc("loop") // arg r0: addr; loops `iters` times adding 1
	b.Emit(dtmc.Instr{Op: dtmc.OpConst, A: 3, Imm: iters})
	b.Emit(dtmc.Instr{Op: dtmc.OpConst, A: 4, Imm: 1})
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicBegin})
	b.Emit(dtmc.Instr{Op: dtmc.OpExtern, Imm: 20}) // forces serialize
	top := b.Here()
	b.Emit(dtmc.Instr{Op: dtmc.OpLoad, A: 1, B: 0})
	b.Emit(dtmc.Instr{Op: dtmc.OpAdd, A: 1, B: 1, C: 4})
	b.Emit(dtmc.Instr{Op: dtmc.OpStore, A: 1, B: 0})
	b.Emit(dtmc.Instr{Op: dtmc.OpSub, A: 3, B: 3, C: 4})
	b.Emit(dtmc.Instr{Op: dtmc.OpJnz, A: 3, Imm: uint64(top)})
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicEnd})
	b.Emit(dtmc.Instr{Op: dtmc.OpRet})
	p := dtmc.NewProgram()
	p.Add(b.Done())
	return p
}

func TestSerializeAndJumpRemap(t *testing.T) {
	p, err := dtmc.Instrument(loopProgram(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range []string{"LLB-256", "STM"} {
		t.Run(rt, func(t *testing.T) {
			s := asfstack.New(asfstack.Options{Cores: 2, Runtime: rt})
			a := s.AllocShared(8)
			s.Parallel(2, func(c *sim.CPU) {
				for i := 0; i < 20; i++ {
					if _, err := dtmc.Exec(s, c, p, "loop", uint64(a)); err != nil {
						t.Error(err)
						return
					}
				}
			})
			if got := s.M.Mem.Load(a); got != 2*20*10 {
				t.Fatalf("value = %d, want %d", got, 2*20*10)
			}
			// The extern must have forced serial-irrevocable execution.
			if st := s.TotalStats(); st.Serial != st.Commits {
				t.Fatalf("serial=%d commits=%d: serialize not honoured", st.Serial, st.Commits)
			}
		})
	}
}

func TestAtomicRestartRestoresRegisters(t *testing.T) {
	// Two threads increment via a register-carried intermediate; any
	// failure to re-run the block body from the checkpoint would lose or
	// double-apply updates.
	b := dtmc.NewFunc("rmw")
	b.Emit(dtmc.Instr{Op: dtmc.OpConst, A: 2, Imm: 1})
	b.Emit(dtmc.Instr{Op: dtmc.OpLocalStore, A: 2, Imm: 0}) // slot0 = 1
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicBegin})
	b.Emit(dtmc.Instr{Op: dtmc.OpLoad, A: 1, B: 0})
	b.Emit(dtmc.Instr{Op: dtmc.OpLocalLoad, A: 3, Imm: 0}) // stack access: uninstrumented
	b.Emit(dtmc.Instr{Op: dtmc.OpAdd, A: 1, B: 1, C: 3})
	b.Emit(dtmc.Instr{Op: dtmc.OpStore, A: 1, B: 0})
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicEnd})
	b.Emit(dtmc.Instr{Op: dtmc.OpMov, A: 0, B: 1})
	b.Emit(dtmc.Instr{Op: dtmc.OpRet})
	p := dtmc.NewProgram()
	p.Add(b.Done())
	ip, err := dtmc.Instrument(p)
	if err != nil {
		t.Fatal(err)
	}

	const threads, incs = 4, 120
	s := asfstack.New(asfstack.Options{Cores: threads, Runtime: "LLB-256"})
	a := s.AllocShared(8)
	s.Parallel(threads, func(c *sim.CPU) {
		for i := 0; i < incs; i++ {
			if _, err := dtmc.Exec(s, c, ip, "rmw", uint64(a)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if got := s.M.Mem.Load(a); got != threads*incs {
		t.Fatalf("value = %d, want %d (lost/duplicated restarts)", got, threads*incs)
	}
}

func TestInstrumentRejectsUnbalancedAtomic(t *testing.T) {
	b := dtmc.NewFunc("bad")
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicBegin})
	b.Emit(dtmc.Instr{Op: dtmc.OpRet})
	p := dtmc.NewProgram()
	p.Add(b.Done())
	if _, err := dtmc.Instrument(p); err == nil {
		t.Fatal("unbalanced atomic accepted")
	}
}

func TestInstrumentRejectsUndefinedCallee(t *testing.T) {
	b := dtmc.NewFunc("caller")
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicBegin})
	b.Emit(dtmc.Instr{Op: dtmc.OpCall, Name: "ghost"})
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicEnd})
	b.Emit(dtmc.Instr{Op: dtmc.OpRet})
	p := dtmc.NewProgram()
	p.Add(b.Done())
	if _, err := dtmc.Instrument(p); err == nil {
		t.Fatal("undefined callee accepted")
	}
}
