// Package dtmc is a miniature of the Dresden TM Compiler (§3.1): a tiny SSA-
// free register IR with atomic blocks, an instrumentation pass that lowers
// them onto the TM ABI of package tm, and an interpreter that executes the
// result on the simulated machine.
//
// The pass pipeline reproduces DTMC's (Fig. 2):
//
//  1. front end emits IR in which transaction statements are visible
//     (AtomicBegin/AtomicEnd);
//  2. the TM pass rewrites memory accesses inside transactions into ABI
//     barrier calls, redirects calls inside transactions to transactional
//     clones of the callees, and switches to serial-irrevocable mode before
//     calls with no transaction-safe version (§3.3, approach 3);
//  3. accesses to function-local slots (the "stack") stay uninstrumented —
//     DTMC's selective-annotation optimisation;
//  4. the interpreter plays the role of the binary: begin is a register
//     checkpoint plus runtime dispatch, and aborts restart the block body
//     exactly like returning from _ITM_beginTransaction a second time.
package dtmc

import "fmt"

// Op is an IR opcode.
type Op uint8

const (
	// OpConst: reg[A] = Imm.
	OpConst Op = iota
	// OpMov: reg[A] = reg[B].
	OpMov
	// OpAdd: reg[A] = reg[B] + reg[C].
	OpAdd
	// OpSub: reg[A] = reg[B] - reg[C].
	OpSub
	// OpLoad: reg[A] = shared[reg[B]] (a potentially shared access —
	// instrumented inside transactions).
	OpLoad
	// OpStore: shared[reg[B]] = reg[A].
	OpStore
	// OpLocalLoad: reg[A] = stack slot Imm (never instrumented).
	OpLocalLoad
	// OpLocalStore: stack slot Imm = reg[A].
	OpLocalStore
	// OpAtomicBegin / OpAtomicEnd bracket a transaction statement.
	OpAtomicBegin
	OpAtomicEnd
	// OpCall: call function Name, passing reg[B] in the callee's reg 0
	// and receiving the callee's reg 0 into reg[A].
	OpCall
	// OpExtern: call an external function with no transactional clone
	// (charged Imm instructions). Inside a transaction this forces
	// serial-irrevocable mode.
	OpExtern
	// OpJmp: jump to Imm.
	OpJmp
	// OpJnz: jump to Imm if reg[A] != 0.
	OpJnz
	// OpRet: return (value in reg 0).
	OpRet

	// Inserted by the TM pass only:

	// OpTMLoad / OpTMStore are OpLoad/OpStore lowered to ABI barriers.
	OpTMLoad
	OpTMStore
	// OpSerialize forces the enclosing transaction irrevocable before an
	// unsafe call.
	OpSerialize
)

func (o Op) String() string {
	names := [...]string{"const", "mov", "add", "sub", "load", "store",
		"lload", "lstore", "atomic{", "}atomic", "call", "extern",
		"jmp", "jnz", "ret", "tmload", "tmstore", "serialize"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one IR instruction.
type Instr struct {
	Op      Op
	A, B, C int    // register operands
	Imm     uint64 // immediate / slot / jump target / cost
	Name    string // callee for OpCall
}

// Function is one IR function.
type Function struct {
	Name   string
	NRegs  int
	NSlots int // stack slots (thread-local; uninstrumented)
	Code   []Instr
}

// Program is a set of functions; "main" names each thread's entry point by
// convention of the caller.
type Program struct {
	Funcs map[string]*Function
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{Funcs: map[string]*Function{}} }

// Add registers fn, panicking on duplicates (a front-end bug).
func (p *Program) Add(fn *Function) {
	if _, dup := p.Funcs[fn.Name]; dup {
		panic("dtmc: duplicate function " + fn.Name)
	}
	p.Funcs[fn.Name] = fn
}

// Builder assembles a function, tracking register and slot high-water
// marks so callers need not count them.
type Builder struct {
	fn *Function
}

// NewFunc starts building a function.
func NewFunc(name string) *Builder {
	return &Builder{fn: &Function{Name: name}}
}

// Emit appends an instruction and returns its index (for jump targets).
func (b *Builder) Emit(i Instr) int {
	for _, r := range []int{i.A, i.B, i.C} {
		if r+1 > b.fn.NRegs {
			b.fn.NRegs = r + 1
		}
	}
	if i.Op == OpLocalLoad || i.Op == OpLocalStore {
		if int(i.Imm)+1 > b.fn.NSlots {
			b.fn.NSlots = int(i.Imm) + 1
		}
	}
	b.fn.Code = append(b.fn.Code, i)
	return len(b.fn.Code) - 1
}

// Patch sets instruction idx's jump target to the current position.
func (b *Builder) Patch(idx int) { b.fn.Code[idx].Imm = uint64(len(b.fn.Code)) }

// Here returns the next instruction index.
func (b *Builder) Here() int { return len(b.fn.Code) }

// Done finalises the function.
func (b *Builder) Done() *Function { return b.fn }
