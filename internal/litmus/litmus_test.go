package litmus

import (
	"fmt"
	"reflect"
	"testing"

	"asfstack/internal/sim"
)

// --- oracle self-checks ----------------------------------------------------

// TestOracleTornWrite hand-checks the strong and weak envelopes of the
// atomicity test: the torn observation exists in exactly the weak one.
func TestOracleTornWrite(t *testing.T) {
	tt := ByName("atomicity-torn-write")
	torn := "1:r0=1 1:r1=0 x=1 y=1"
	strong, weak := tt.Strong(), tt.Weak()
	if len(strong) != 3 {
		t.Errorf("strong envelope: got %v, want 3 outcomes", SortedOutcomes(strong))
	}
	if strong[torn] {
		t.Errorf("strong envelope must forbid the torn read %q", torn)
	}
	if !weak[torn] {
		t.Errorf("weak envelope must allow the torn read %q", torn)
	}
}

// TestOracleLostUpdate: both serializations end at x=2, nothing else.
func TestOracleLostUpdate(t *testing.T) {
	tt := ByName("lost-update")
	want := []string{"0:r0=0 1:r0=1 x=2", "0:r0=1 1:r0=0 x=2"}
	if got := SortedOutcomes(tt.Strong()); !reflect.DeepEqual(got, want) {
		t.Errorf("strong envelope: got %v, want %v", got, want)
	}
	// No plain operations: the weak model collapses to the strong one.
	if got := SortedOutcomes(tt.Weak()); !reflect.DeepEqual(got, want) {
		t.Errorf("weak envelope: got %v, want %v", got, want)
	}
}

// TestOracleStrongSubsetOfWeak: every strong outcome must be weakly allowed
// (the weak model only adds interleavings).
func TestOracleStrongSubsetOfWeak(t *testing.T) {
	for _, tt := range Tests {
		weak := tt.Weak()
		for o := range tt.Strong() {
			if !weak[o] {
				t.Errorf("%s: strong outcome %q missing from weak envelope", tt.Name, o)
			}
		}
	}
}

// TestOracleForbidden spot-checks that the signature anomaly of each
// serializability test is outside even the weak envelope.
func TestOracleForbidden(t *testing.T) {
	cases := map[string]string{
		"write-skew":       "0:r0=0 1:r0=0 x=1 y=1",
		"store-buffering":  "0:r0=0 1:r0=0 x=1 y=1",
		"load-buffering":   "0:r0=1 1:r0=1 x=1 y=1",
		"message-passing":  "1:r0=1 1:r1=0 x=1 f=1",
		"dirty-read-write": "0:r0=0 1:r1=0 x=1 y=1",
		"write-causality":  "1:r0=1 2:r0=1 2:r1=0 x=1 y=1",
	}
	for name, anomaly := range cases {
		tt := ByName(name)
		if tt == nil {
			t.Fatalf("unknown test %q", name)
		}
		if tt.Weak()[anomaly] {
			t.Errorf("%s: anomaly %q must be outside the weak envelope", name, anomaly)
		}
	}
}

// --- conformance -----------------------------------------------------------

func iters(short, full int) int {
	if testing.Short() {
		return short
	}
	return full
}

// TestConformance is the suite: every litmus test on every runtime in the
// matrix — with six runtime configurations this explores thousands of
// interleavings per test even in short mode.
func TestConformance(t *testing.T) {
	n := iters(250, 1000)
	for _, tt := range Tests {
		for _, rc := range Matrix() {
			tt, rc := tt, rc
			t.Run(fmt.Sprintf("%s/%s", tt.Name, rc.Label), func(t *testing.T) {
				t.Parallel()
				res := Explore(tt, rc, ExploreOptions{Seed: 1, Iters: n})
				for _, v := range res.Violations {
					t.Errorf("%s", v)
				}
				if t.Failed() {
					t.Logf("observed outcomes: %v", SortedOutcomes(setOf(res.Outcomes)))
				}
			})
		}
	}
}

func setOf(m map[string]int) map[string]bool {
	s := make(map[string]bool, len(m))
	for k := range m {
		s[k] = true
	}
	return s
}

// --- explorer determinism --------------------------------------------------

// TestExplorerDeterministic: the same (test, runtime, seed) produce the
// same iteration trace — outcome and commit order — even when the two
// explorations run concurrently on the host (the go test -parallel
// situation).
func TestExplorerDeterministic(t *testing.T) {
	tt := ByName("lost-update")
	opts := ExploreOptions{Seed: 7, Iters: iters(60, 200)}
	rcs := []RuntimeConfig{Matrix()[0], Matrix()[4]} // ASF-TM and STM
	for _, rc := range rcs {
		ch := make(chan *Result, 2)
		for i := 0; i < 2; i++ {
			go func() { ch <- Explore(tt, rc, opts) }()
		}
		a, b := <-ch, <-ch
		if !reflect.DeepEqual(a.Trace, b.Trace) {
			t.Errorf("%s: concurrent explorations of the same seed diverged", rc.Label)
		}
		if !reflect.DeepEqual(a.Stats, b.Stats) || a.Cycles != b.Cycles {
			t.Errorf("%s: stats or cycles diverged across identical explorations", rc.Label)
		}
	}
}

// TestSeedsExploreDifferently: distinct seeds must drive distinct
// interleaving sequences — otherwise the explorer adds no coverage.
func TestSeedsExploreDifferently(t *testing.T) {
	tt := ByName("atomicity-torn-write")
	rc := Matrix()[0]
	n := iters(80, 200)
	a := Explore(tt, rc, ExploreOptions{Seed: 1, Iters: n})
	b := Explore(tt, rc, ExploreOptions{Seed: 2, Iters: n})
	if reflect.DeepEqual(a.Trace, b.Trace) {
		t.Errorf("seeds 1 and 2 produced identical %d-iteration traces", n)
	}
}

// TestNoiseExplores: with schedule noise, a test with racing outcomes must
// actually observe more than one outcome across iterations.
func TestNoiseExplores(t *testing.T) {
	tt := ByName("atomicity-torn-write")
	res := Explore(tt, Matrix()[0], ExploreOptions{Seed: 3, Iters: iters(100, 300)})
	if len(res.Outcomes) < 2 {
		t.Errorf("explorer found only %v — schedule noise is not spreading interleavings",
			SortedOutcomes(setOf(res.Outcomes)))
	}
}

// TestEpochEngineAdaptiveIdentity pins the PR 9 scheduler audit: a runtime
// switch draining behind the adaptive gate mid-epoch must not observe a
// speculatively-applied store. The epoch engine applies every replayed
// store to ground truth at its serial-order position (nothing is buffered),
// RMW atomics and SpecOps always take the full path, and a foreign store to
// the gate's mode or live words invalidates the reader's L1 line — killing
// its window by live revalidation — so the exploration traces must be
// bit-identical to the serial engine's even with an epoch boundary forced
// between nearly every pair of accesses (EpochLen 1).
func TestEpochEngineAdaptiveIdentity(t *testing.T) {
	m := Matrix()
	rc := m[len(m)-1]
	if rc.Stack != "Adaptive-8" {
		t.Fatalf("expected the adaptive column last in the matrix, got %q", rc.Stack)
	}
	n := iters(60, 200)
	for _, tt := range []*Test{ByName("atomicity-torn-write"), ByName("dirty-read-write"), ByName("privatization")} {
		base := Explore(tt, rc, ExploreOptions{Seed: 11, Iters: n})
		for _, el := range []uint64{1, 4096} {
			got := Explore(tt, rc, ExploreOptions{Seed: 11, Iters: n, Engine: sim.EngineEpoch, EpochLen: el})
			if !reflect.DeepEqual(base.Trace, got.Trace) {
				t.Errorf("%s: epoch engine (EpochLen=%d) diverged from serial traces", tt.Name, el)
			}
			if !reflect.DeepEqual(base.Stats, got.Stats) || base.Cycles != got.Cycles {
				t.Errorf("%s: epoch engine (EpochLen=%d) stats/cycles diverged", tt.Name, el)
			}
			for _, v := range got.Violations {
				t.Errorf("%s under epoch engine: %s", tt.Name, v)
			}
		}
	}
}

// --- pinned regressions ----------------------------------------------------

// TestSTMPrivatizationRegression pins the bug this suite flushed out of the
// STM: without commit-time quiescence, a doomed transaction that read the
// pre-privatization state can write through (and later undo) in place
// *after* the privatizing transaction committed, exposing its speculative
// value — or destroying plain stores — under the privatizer's plain
// accesses. The unsafe configuration must still reproduce the violation
// (the test is sharp) and the default, privatization-safe configuration
// must not (the fix works).
func TestSTMPrivatizationRegression(t *testing.T) {
	tt := ByName("privatization")
	opts := ExploreOptions{Seed: 1, Iters: iters(150, 600), MaxViolations: 100}
	unsafeRC := RuntimeConfig{Label: "STM-unsafe", Stack: "STM", STMUnsafe: true, Isolation: IsolationWeak}
	safeRC := RuntimeConfig{Label: "STM", Stack: "STM", Isolation: IsolationWeak}

	if res := Explore(tt, unsafeRC, opts); len(res.Violations) == 0 {
		t.Errorf("privatization-unsafe STM no longer reproduces the zombie-writeback violation; "+
			"the regression pin has gone stale (observed %v)", SortedOutcomes(setOf(res.Outcomes)))
	}
	if res := Explore(tt, safeRC, opts); len(res.Violations) != 0 {
		for _, v := range res.Violations {
			t.Errorf("privatization-safe STM: %s", v)
		}
	}
}

// TestReplay: the (seed, iteration) pair in a violation message is a real
// replay pointer — rerunning reproduces the identical outcome and commit
// order for every outcome the exploration observed.
func TestReplay(t *testing.T) {
	tt := ByName("store-buffering")
	rc := Matrix()[2] // HyTM-256
	opts := ExploreOptions{Seed: 5, Iters: iters(60, 150)}
	res := Explore(tt, rc, opts)
	for out, first := range res.FirstIter {
		rec := Replay(tt, rc, opts, first)
		if rec.Outcome != out || rec != res.Trace[first] {
			t.Errorf("replay of iter %d: got %+v, want %+v", first, rec, res.Trace[first])
		}
	}
}
