// Package litmus is the cross-runtime transactional litmus conformance
// suite: short multi-threaded programs (threads are sequences of atomic
// transactions and plain, uninstrumented accesses) with a declared set of
// allowed final outcomes, executed under a deterministically seeded
// randomized-schedule explorer that drives cores through the sim scheduler
// (sim.Config.SchedNoise). Every test runs on every TM runtime behind the
// tm ABI — ASF-TM, TinySTM, the hybrid runtime on both LLB sizes, the
// hybrid's forced software fallback, and the serial-irrevocable token path
// — and an outcome outside the runtime's allowed envelope fails with the
// seed and iteration needed to replay the exact interleaving.
//
// Allowed envelopes come from an in-package oracle rather than hand-written
// outcome lists: Strong() enumerates every interleaving in which an atomic
// block executes as one indivisible, isolated unit (strong isolation +
// serializability — what the ASF hardware path provides), and Weak()
// additionally lets *plain* operations of other threads interleave into an
// atomic block's operations (encounter-time/writeback visibility — what
// write-through software paths exhibit) while transactions remain atomic
// with respect to each other. Runtimes are classified by the isolation
// their implementation actually gives (see Matrix); a weakly isolated
// runtime may exhibit Weak()∪WeakAllowed outcomes, a strongly isolated one
// only Strong(). Cross-runtime divergence is thus judged against the shared
// envelopes, not by comparing two runtimes' sampled outcome sets directly —
// two correct runtimes legitimately cover different subsets of the allowed
// space under randomized schedules.
package litmus

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind distinguishes the two operations of the litmus machine.
type OpKind uint8

const (
	// OpLoad: regs[Reg] = vars[Var].
	OpLoad OpKind = iota
	// OpStore: vars[Var] = Imm, or regs[Reg]+Imm when FromReg.
	OpStore
)

// Op is one operation of a thread program.
type Op struct {
	Kind    OpKind
	Var     int    // shared-variable index
	Reg     int    // register index (load destination; store source when FromReg)
	Imm     uint64 // store immediate, or addend when FromReg
	FromReg bool   // store value = regs[Reg] + Imm
}

// L returns "regs[reg] = vars[v]".
func L(reg, v int) Op { return Op{Kind: OpLoad, Var: v, Reg: reg} }

// S returns "vars[v] = imm".
func S(v int, imm uint64) Op { return Op{Kind: OpStore, Var: v, Imm: imm} }

// SR returns "vars[v] = regs[reg] + add".
func SR(v, reg int, add uint64) Op {
	return Op{Kind: OpStore, Var: v, Reg: reg, Imm: add, FromReg: true}
}

// Block is a run of operations: one atomic transaction, or a stretch of
// plain (uninstrumented, non-transactional) accesses.
type Block struct {
	Atomic bool
	Ops    []Op
}

// Tx returns an atomic block.
func Tx(ops ...Op) Block { return Block{Atomic: true, Ops: ops} }

// Plain returns a block of plain accesses.
func Plain(ops ...Op) Block { return Block{Atomic: false, Ops: ops} }

// Thread is one thread's program: blocks execute in order.
type Thread []Block

// Test is one litmus test.
type Test struct {
	Name string
	// Doc says what the test distinguishes (shown in failures and docs).
	Doc string
	// Vars names the shared variables (each allocated on its own cache
	// line). Init gives initial values; missing entries are zero.
	Vars []string
	Init []uint64
	// Threads are the per-core programs.
	Threads []Thread
	// WeakAllowed pins extra outcomes tolerated on weakly isolated
	// runtimes beyond the computed Weak() envelope. The weak oracle does
	// not model transaction *aborts*, so transients of the write-through
	// STM's undo path (a speculative value visible in place and then
	// rolled back underneath a plain access) are pinned here explicitly,
	// each with a comment in tests.go.
	WeakAllowed []string
}

// regSlot identifies one observed register: thread t's register r.
type regSlot struct{ thread, reg int }

// regSlots returns the registers that appear as load destinations, in
// canonical (thread, reg) order — the register part of every outcome string.
func (t *Test) regSlots() []regSlot {
	seen := map[regSlot]bool{}
	var out []regSlot
	for ti, th := range t.Threads {
		for _, b := range th {
			for _, op := range b.Ops {
				if op.Kind == OpLoad {
					s := regSlot{ti, op.Reg}
					if !seen[s] {
						seen[s] = true
						out = append(out, s)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].thread != out[j].thread {
			return out[i].thread < out[j].thread
		}
		return out[i].reg < out[j].reg
	})
	return out
}

// maxReg returns the register-file size needed per thread.
func (t *Test) maxReg() int {
	max := 0
	for _, th := range t.Threads {
		for _, b := range th {
			for _, op := range b.Ops {
				if op.Reg+1 > max {
					max = op.Reg + 1
				}
			}
		}
	}
	return max
}

// initVals returns the padded initial variable values.
func (t *Test) initVals() []uint64 {
	v := make([]uint64, len(t.Vars))
	copy(v, t.Init)
	return v
}

// outcome renders the canonical outcome string for final register files and
// variable values: "0:r0=1 1:r0=0 x=1 y=2".
func (t *Test) outcome(regs [][]uint64, vars []uint64) string {
	var b strings.Builder
	for i, s := range t.regSlots() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:r%d=%d", s.thread, s.reg, regs[s.thread][s.reg])
	}
	for i, name := range t.Vars {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, vars[i])
	}
	return b.String()
}

// --- oracle ----------------------------------------------------------------

// unit is one indivisible scheduling step of the strong oracle: a whole
// atomic block, or a single plain operation.
type unit struct {
	atomic bool
	ops    []Op
}

// units flattens a thread into oracle units.
func units(th Thread) []unit {
	var out []unit
	for _, b := range th {
		if b.Atomic {
			out = append(out, unit{atomic: true, ops: b.Ops})
		} else {
			for i := range b.Ops {
				out = append(out, unit{ops: b.Ops[i : i+1]})
			}
		}
	}
	return out
}

// Strong returns the outcome set allowed under strong isolation and
// serializability: every interleaving in which atomic blocks execute as
// single indivisible units and plain operations interleave freely between
// them, evaluated on a sequentially consistent memory.
func (t *Test) Strong() map[string]bool {
	us := make([][]unit, len(t.Threads))
	for i, th := range t.Threads {
		us[i] = units(th)
	}
	out := map[string]bool{}
	st := newOracleState(t)
	var dfs func()
	pos := make([]int, len(t.Threads))
	dfs = func() {
		done := true
		for ti := range us {
			if pos[ti] < len(us[ti]) {
				done = false
				u := us[ti][pos[ti]]
				pos[ti]++
				undo := st.exec(ti, u.ops)
				dfs()
				undo()
				pos[ti]--
			}
		}
		if done {
			out[t.outcome(st.regs, st.vars)] = true
		}
	}
	dfs()
	return out
}

// Weak returns the outcome set under the suite's weak-isolation model:
// transactions remain atomic and serialized with respect to *each other*,
// but plain operations of other threads may interleave between an atomic
// block's individual operations — the visibility a write-through or
// redo-log-writeback software path gives uninstrumented accesses. Strong()
// is a subset by construction. Aborted-and-retried executions are not
// modelled; use Test.WeakAllowed to pin legitimate abort transients.
func (t *Test) Weak() map[string]bool {
	type tpos struct {
		block, op int // current block and intra-block position
	}
	out := map[string]bool{}
	st := newOracleState(t)
	pos := make([]tpos, len(t.Threads))
	inTx := -1 // thread currently inside an atomic block, or -1
	var dfs func()
	dfs = func() {
		done := true
		for ti, th := range t.Threads {
			p := pos[ti]
			if p.block >= len(th) {
				continue
			}
			done = false
			b := th[p.block]
			// An atomic block may only advance when no *other* thread
			// is mid-block: transactions serialize against each other.
			if b.Atomic && inTx != -1 && inTx != ti {
				continue
			}
			prevInTx := inTx
			if b.Atomic {
				inTx = ti
			}
			op := b.Ops[p.op]
			np := tpos{p.block, p.op + 1}
			if np.op >= len(b.Ops) {
				np = tpos{p.block + 1, 0}
				if b.Atomic {
					inTx = -1
				}
			}
			pos[ti] = np
			undo := st.exec(ti, []Op{op})
			dfs()
			undo()
			pos[ti] = p
			inTx = prevInTx
		}
		if done {
			out[t.outcome(st.regs, st.vars)] = true
		}
	}
	dfs()
	return out
}

// oracleState is the oracle's machine: variable values plus per-thread
// register files, with undo support for the DFS.
type oracleState struct {
	t    *Test
	vars []uint64
	regs [][]uint64
}

func newOracleState(t *Test) *oracleState {
	st := &oracleState{t: t, vars: t.initVals()}
	nr := t.maxReg()
	for range t.Threads {
		st.regs = append(st.regs, make([]uint64, nr))
	}
	return st
}

// exec runs ops for thread ti and returns an undo closure.
func (st *oracleState) exec(ti int, ops []Op) func() {
	savedVars := append([]uint64(nil), st.vars...)
	savedRegs := append([]uint64(nil), st.regs[ti]...)
	for _, op := range ops {
		switch op.Kind {
		case OpLoad:
			st.regs[ti][op.Reg] = st.vars[op.Var]
		case OpStore:
			v := op.Imm
			if op.FromReg {
				v = st.regs[ti][op.Reg] + op.Imm
			}
			st.vars[op.Var] = v
		}
	}
	return func() {
		copy(st.vars, savedVars)
		copy(st.regs[ti], savedRegs)
	}
}

// SortedOutcomes renders an outcome set as a sorted slice (stable failure
// messages and tables).
func SortedOutcomes(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
