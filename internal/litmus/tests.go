package litmus

// Tests is the conformance table. Names follow the memory-model litmus
// naming tradition where one exists (SB, LB, MP, WRC); the tx-vs-plain
// tests are named for the isolation property they probe.
//
// Every test is judged against oracle-computed envelopes (see Envelope), so
// the table only declares programs, not outcome lists — except WeakAllowed,
// which pins abort-path transients the weak oracle deliberately does not
// model (it executes every transaction exactly once). Each pin says which
// runtime produces it and why it is legitimate for that isolation class.
var Tests = []*Test{
	{
		Name: "atomicity-torn-write",
		Doc: "A transaction stores x then y; a plain reader loads x then y. " +
			"Seeing the second store's effect without the first (r0=1,r1=0) " +
			"means the reader caught the transaction half-done — forbidden " +
			"under strong isolation, the signature of write-through and " +
			"writeback software paths.",
		Vars: []string{"x", "y"},
		Threads: []Thread{
			{Tx(S(0, 1), S(1, 1))},
			{Plain(L(0, 0), L(1, 1))},
		},
	},
	{
		Name: "repeatable-read",
		Doc: "A transaction reads x twice; a plain writer stores x=1 in " +
			"between. Strong isolation forbids the two reads differing: the " +
			"plain store must abort the reader (ASF requester-wins) or " +
			"serialize around it.",
		Vars: []string{"x"},
		Threads: []Thread{
			{Tx(L(0, 0), L(1, 0))},
			{Plain(S(0, 1))},
		},
	},
	{
		Name: "publication",
		Doc: "T0 initializes x with a plain store, then publishes it with a " +
			"transactional flag store; T1 reads flag then x in one " +
			"transaction. Seeing the flag but not the data (r0=1,r1=0) is " +
			"forbidden in every isolation class — program order plus " +
			"transaction serialization carry the plain store with the " +
			"publication.",
		Vars: []string{"f", "x"},
		Threads: []Thread{
			{Plain(S(1, 1)), Tx(S(0, 1))},
			{Tx(L(0, 0), L(1, 1))},
		},
	},
	{
		Name: "privatization",
		Doc: "f=1 marks x shared. T0 transactionally claims x (f=0), then " +
			"accesses it with plain operations; T1 transactionally checks f " +
			"and writes x only if it saw it shared (stores its read of f). " +
			"The classic failure is T1's doomed writeback landing after T0 " +
			"privatized — clobbering T0's plain store or its read.",
		Vars: []string{"f", "x"},
		Init: []uint64{1, 0},
		Threads: []Thread{
			{Tx(S(0, 0)), Plain(S(1, 5), L(0, 1))},
			{Tx(L(1, 0), SR(1, 1, 0))},
		},
	},
	{
		Name: "write-skew",
		Doc: "T0 reads x and increments y; T1 reads y and increments x. " +
			"Serializability forces one to see the other's write: both " +
			"reading 0 (and both counters ending 1) is the write-skew " +
			"anomaly snapshot-isolation systems admit and TM must not.",
		Vars: []string{"x", "y"},
		Threads: []Thread{
			{Tx(L(0, 0), SR(1, 0, 1))},
			{Tx(L(0, 1), SR(0, 0, 1))},
		},
	},
	{
		Name: "lost-update",
		Doc: "Two transactions each increment x via load-add-store. Any " +
			"serialization ends with x=2; x=1 means an update was lost.",
		Vars: []string{"x"},
		Threads: []Thread{
			{Tx(L(0, 0), SR(0, 0, 1))},
			{Tx(L(0, 0), SR(0, 0, 1))},
		},
	},
	{
		Name: "store-buffering",
		Doc: "SB with each access in its own transaction: T0 stores x then " +
			"reads y, T1 stores y then reads x. Both reading 0 requires a " +
			"cycle in the commit order — forbidden under serializability " +
			"(unlike plain x86-TSO, where SB is the observable relaxation).",
		Vars: []string{"x", "y"},
		Threads: []Thread{
			{Tx(S(0, 1)), Tx(L(0, 1))},
			{Tx(S(1, 1)), Tx(L(0, 0))},
		},
	},
	{
		Name: "load-buffering",
		Doc: "LB: T0 reads x then stores y=1; T1 reads y then stores x=1. " +
			"Both reading 1 would require effects from the future; no " +
			"sequential execution produces it — a sanity check that holds " +
			"in every class.",
		Vars: []string{"x", "y"},
		Threads: []Thread{
			{Tx(L(0, 0)), Tx(S(1, 1))},
			{Tx(L(0, 1)), Tx(S(0, 1))},
		},
	},
	{
		Name: "message-passing",
		Doc: "MP: T0 transactionally stores data x then flag f; T1 reads f " +
			"then x in separate transactions. Flag observed but data stale " +
			"(r0=1,r1=0) breaks commit-order causality.",
		Vars: []string{"x", "f"},
		Threads: []Thread{
			{Tx(S(0, 1)), Tx(S(1, 1))},
			{Tx(L(0, 1)), Tx(L(1, 0))},
		},
	},
	{
		Name: "plain-lost-store",
		Doc: "T0 transactionally increments x; T1 does one plain store " +
			"x=10. Strong isolation admits only plain-then-tx (r0=10,x=11) " +
			"or tx-then-plain (r0=0,x=10). The plain store vanishing inside " +
			"the transaction's read-modify-write (x=1) is the weak-isolation " +
			"signature: software paths neither see nor abort on the " +
			"uninstrumented store.",
		Vars: []string{"x"},
		Threads: []Thread{
			{Tx(L(0, 0), SR(0, 0, 1))},
			{Plain(S(0, 10))},
		},
	},
	{
		Name: "dirty-read-write",
		Doc: "T0 stores x and reads y in one transaction; T1 stores y and " +
			"reads x in another. One transaction commits first and the " +
			"other must see its store: both reading 0 is forbidden.",
		Vars: []string{"x", "y"},
		Threads: []Thread{
			{Tx(S(0, 1), L(0, 1))},
			{Tx(S(1, 1), L(1, 0))},
		},
	},
	{
		Name: "write-causality",
		Doc: "WRC across three threads: T0 publishes x=1; T1 reads x and " +
			"then publishes y=1; T2 reads y then x. T2 seeing T1's write " +
			"(y=1) but not the write T1 already saw (x=0) breaks " +
			"transitivity of the commit order.",
		Vars: []string{"x", "y"},
		Threads: []Thread{
			{Tx(S(0, 1))},
			{Tx(L(0, 0)), Tx(S(1, 1))},
			{Tx(L(0, 1)), Tx(L(1, 0))},
		},
	},
}

// ByName returns the named test, or nil.
func ByName(name string) *Test {
	for _, t := range Tests {
		if t.Name == name {
			return t
		}
	}
	return nil
}
