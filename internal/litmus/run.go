package litmus

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	asfstack "asfstack"
	"asfstack/internal/hytm"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/stm"
	"asfstack/internal/tm"
)

// Isolation classifies what a runtime implementation guarantees to *plain*
// (uninstrumented) accesses racing with transactions.
type Isolation uint8

const (
	// IsolationStrong: atomic blocks are indivisible with respect to every
	// access, plain or transactional — the ASF hardware property (plain
	// probes abort the speculative region before they can observe or break
	// it). Allowed outcomes: Test.Strong().
	IsolationStrong Isolation = iota
	// IsolationWeak: transactions are atomic against each other, but plain
	// accesses can observe (or interleave with) a transaction's individual
	// memory operations — write-through STM stores, redo-log writebacks,
	// and serial-mode in-place stores. Allowed outcomes:
	// Test.Weak() ∪ Test.WeakAllowed.
	IsolationWeak
)

func (i Isolation) String() string {
	if i == IsolationStrong {
		return "strong"
	}
	return "weak"
}

// RuntimeConfig is one column of the conformance matrix: a stack runtime
// plus forcing knobs, classified by the isolation its implementation gives.
type RuntimeConfig struct {
	// Label names the column in failures and tables.
	Label string
	// Stack is the asfstack.Options.Runtime value.
	Stack string
	// ForceSerial routes every atomic block through the runtime's
	// serial-irrevocable path (BecomeIrrevocable as the first action).
	ForceSerial bool
	// ForceSW routes every hybrid transaction to the software fallback
	// (hytm.Config.ForceSW).
	ForceSW bool
	// STMUnsafe turns off the STM's privatization safety
	// (stm.Config.PrivatizationSafe) — the regression configuration that
	// reproduces the zombie-writeback bug the suite originally flushed out.
	// Not part of Matrix; see TestSTMPrivatizationRegression.
	STMUnsafe bool
	// Isolation selects the allowed-outcome envelope.
	Isolation Isolation
}

// Matrix is the conformance matrix: every TM runtime in the stack, plus the
// forced software-fallback and serial-token paths that normal litmus-sized
// transactions would never reach on their own.
func Matrix() []RuntimeConfig {
	return []RuntimeConfig{
		{Label: "ASF-TM", Stack: "LLB-256", Isolation: IsolationStrong},
		{Label: "HyTM-8", Stack: "HyTM-8", Isolation: IsolationStrong},
		{Label: "HyTM-256", Stack: "HyTM-256", Isolation: IsolationStrong},
		// The hybrid's software fallback publishes its redo log with plain
		// stores under the seqlock; concurrent transactions serialize
		// against it but plain readers can observe the writeback mid-way.
		{Label: "HyTM-SW", Stack: "HyTM-256", ForceSW: true, Isolation: IsolationWeak},
		// TinySTM is write-through: speculative values sit in place until
		// commit or undo, so plain accesses see them — the textbook weak
		// isolation the paper's STM baseline accepts.
		{Label: "STM", Stack: "STM", Isolation: IsolationWeak},
		// The serial token path runs bodies with plain in-place stores
		// while holding the token: atomic against transactions (they all
		// take the token) but torn for plain readers.
		{Label: "SerialToken", Stack: "LLB-256", ForceSerial: true, Isolation: IsolationWeak},
		// Cohorts publishes redo logs with plain stores during the batched
		// commit phase (and turbo mode writes in place mid-transaction), so
		// plain readers can observe a writeback mid-way — the same weak
		// class as HyTM-SW and STM. Both configurations are judged against
		// the weak envelope; the turbo column additionally exercises the
		// uninstrumented-last-member path.
		{Label: "Cohorts", Stack: "Cohorts", Isolation: IsolationWeak},
		{Label: "Cohorts-turbo", Stack: "Cohorts-turbo", Isolation: IsolationWeak},
		// The adaptive selector switches among the four families above
		// mid-run behind its drain gate; its envelope is the union of its
		// inner modes', i.e. weak. The row exists to pin the gate itself:
		// a runtime switch draining mid-epoch (under the epoch-speculative
		// sim engine) must never observe state a serial execution would
		// not — the cross-engine identity tests run this column under both
		// engines.
		{Label: "Adaptive-8", Stack: "Adaptive-8", Isolation: IsolationWeak},
	}
}

// ExploreOptions parameterizes one exploration run.
type ExploreOptions struct {
	// Seed seeds the machine and the schedule-noise streams. Each seed is
	// one deterministic sequence of interleavings.
	Seed int64
	// Iters is how many interleavings to run.
	Iters int
	// Noise is sim.Config.SchedNoise, the per-operation stall bound that
	// spreads iterations over distinct interleavings. 0 selects
	// DefaultNoise.
	Noise uint64
	// MaxViolations stops the run early once this many envelope violations
	// are collected (0 means DefaultMaxViolations).
	MaxViolations int
	// Engine selects the simulator execution engine. Outcomes are
	// bit-identical across engines — the cross-engine conformance rows pin
	// exactly that.
	Engine sim.Engine
	// EpochLen overrides the epoch length for the epoch engine (0 keeps
	// the default).
	EpochLen uint64
}

// DefaultNoise is large enough to reorder operations across cores (cache
// hits are single-digit to double-digit cycles) without drowning the run in
// stall time.
const DefaultNoise = 48

// DefaultMaxViolations bounds failure output.
const DefaultMaxViolations = 8

// IterRecord is what one iteration observed.
type IterRecord struct {
	// Outcome is the canonical outcome string.
	Outcome string
	// Order is the transaction commit order as one byte per commit: the
	// core digit, with '!' appended when that commit used a serial path.
	Order string
}

// Violation is one outcome outside the runtime's allowed envelope, with
// everything needed to replay the exact interleaving.
type Violation struct {
	Test    string
	Runtime string
	Seed    int64
	Iter    int
	Outcome string
	Order   string
	Allowed []string
	// Dump is the flight-recorder text for the violating iteration: every
	// core's transaction events (begin/abort/fallback/commit with causes,
	// causality edges and set sizes) from the per-iteration recorder window.
	Dump string
}

func (v Violation) String() string {
	msg := fmt.Sprintf(
		"litmus %s on %s: outcome %q outside the allowed envelope (commit order %q)\n"+
			"  replay: seed=%d iter=%d  (litmus.Replay reruns iterations 0..%d of this seed deterministically)\n"+
			"  allowed: %s",
		v.Test, v.Runtime, v.Outcome, v.Order,
		v.Seed, v.Iter, v.Iter,
		strings.Join(v.Allowed, " | "))
	if v.Dump != "" {
		msg += "\n  " + strings.ReplaceAll(strings.TrimRight(v.Dump, "\n"), "\n", "\n  ")
	}
	return msg
}

// SaveDump writes the violation's message and flight-recorder dump into dir
// and returns the file path. Explore calls it for every violation when the
// LITMUS_DUMP_DIR environment variable is set — the hook CI uses to upload
// the dumps as a failure artifact.
func (v Violation) SaveDump(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
				r == '-', r == '_', r == '.', r == '+':
				return r
			default:
				return '-'
			}
		}, s)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s-seed%d-iter%d.txt",
		clean(v.Test), clean(v.Runtime), v.Seed, v.Iter))
	return path, os.WriteFile(path, []byte(v.String()+"\n"), 0o644)
}

// Result is one exploration: a test on a runtime under a seed.
type Result struct {
	Test    string
	Runtime string
	Seed    int64
	Iters   int
	Noise   uint64

	// Outcomes counts iterations per observed outcome; FirstIter records
	// the earliest iteration that produced each (the replay pointer).
	Outcomes  map[string]int
	FirstIter map[string]int
	// Trace records every iteration in order (replay and determinism
	// checks).
	Trace []IterRecord
	// Violations are the outcomes outside the envelope, bounded by
	// MaxViolations.
	Violations []Violation
	// Allowed is the envelope the run was judged against, sorted.
	Allowed []string

	// Stats accumulates the runtime's counters over all iterations and
	// Cycles is the machine clock after the last one — the suite's feed
	// into the harness abort-attribution tables.
	Stats  tm.Stats
	Cycles uint64
}

// Envelope returns the allowed-outcome set for t on rc: Strong() for
// strongly isolated runtimes, Weak() plus the test's pinned extras for
// weakly isolated ones.
func Envelope(t *Test, rc RuntimeConfig) map[string]bool {
	if rc.Isolation == IsolationStrong {
		return t.Strong()
	}
	allowed := t.Weak()
	for _, o := range t.WeakAllowed {
		allowed[o] = true
	}
	return allowed
}

// Explore runs t on rc for opts.Iters deterministically seeded random
// interleavings and judges every outcome against the envelope. It is a pure
// function of its arguments: the same (test, runtime, options) produce the
// same Result, bit for bit, on any host.
func Explore(t *Test, rc RuntimeConfig, opts ExploreOptions) *Result {
	if opts.Noise == 0 {
		opts.Noise = DefaultNoise
	}
	if opts.MaxViolations == 0 {
		opts.MaxViolations = DefaultMaxViolations
	}
	n := len(t.Threads)
	cfg := sim.Barcelona(n)
	cfg.Seed = opts.Seed
	cfg.SchedNoise = opts.Noise
	cfg.Engine = opts.Engine
	if opts.EpochLen != 0 {
		cfg.EpochLen = opts.EpochLen
	}

	// The flight recorder is always on under exploration: Record costs no
	// simulated cycles, and a violating iteration's dump — reset at each
	// iteration boundary, so it covers exactly the violating interleaving —
	// ships with the replay pointer.
	s := asfstack.New(asfstack.Options{
		Cores:       n,
		Runtime:     rc.Stack,
		HeapPerCore: 1 << 20,
		Machine:     &cfg,
		Profile:     true,
	})
	if rc.ForceSW {
		hcfg := hytm.DefaultConfig()
		hcfg.ForceSW = true
		s.HYTM.SetConfig(hcfg)
	}
	if rc.STMUnsafe {
		scfg := stm.DefaultConfig()
		scfg.PrivatizationSafe = false
		s.STM.SetConfig(scfg)
	}

	// The commit hook runs under the global turn (via SpecOp), so appends
	// are totally ordered and race-free; the buffer is read at barriers.
	var order []byte
	if hr, ok := s.RT.(tm.HookableRuntime); ok {
		hr.SetCommitHook(func(core int, serial bool) {
			order = append(order, byte('0'+core))
			if serial {
				order = append(order, '!')
			}
		})
	}

	addrs := make([]mem.Addr, len(t.Vars))
	for i := range addrs {
		addrs[i] = s.AllocShared(mem.WordSize)
	}
	init := t.initVals()
	nr := t.maxReg()
	regs := make([][]uint64, n)
	for i := range regs {
		regs[i] = make([]uint64, nr)
	}

	// Per-op jitter alone cannot slide a short plain program across a long
	// instrumented transaction, so each thread also gets a fresh random
	// start offset every iteration, spanning a few transaction lengths.
	srng := rand.New(rand.NewSource(opts.Seed*1_000_003 + 17))
	stagMax := int64(opts.Noise)*32 + 1
	stag := make([]uint64, n)

	bodies := make([]func(*sim.CPU), n)
	for i := range bodies {
		i := i
		inner := threadBody(s, rc, t.Threads[i], regs[i], addrs)
		bodies[i] = func(c *sim.CPU) {
			c.Cycles(stag[i])
			inner(c)
			// Mirror Stack.Parallel's thread-exit idle hint: a finished
			// thread must retract any lazy liveness it announced (the
			// adaptive runtime's drain gate spins on it), or a concurrent
			// runtime switch on another core waits forever for this one.
			c.IdleHint()
		}
	}
	reset := func(c *sim.CPU) {
		for i, a := range addrs {
			c.Store(a, mem.Word(init[i]))
		}
	}

	res := &Result{
		Test: t.Name, Runtime: rc.Label,
		Seed: opts.Seed, Iters: opts.Iters, Noise: opts.Noise,
		Outcomes:  map[string]int{},
		FirstIter: map[string]int{},
	}
	allowed := Envelope(t, rc)
	res.Allowed = SortedOutcomes(allowed)

	for iter := 0; iter < opts.Iters; iter++ {
		s.M.Run(reset)
		// The reset ran on core 0 only; realign all core clocks so every
		// iteration starts the race from a common barrier and the noise
		// streams alone pick the interleaving.
		s.M.SyncClocks()
		for i := range stag {
			stag[i] = uint64(srng.Int63n(stagMax))
		}
		for i := range regs {
			for j := range regs[i] {
				regs[i][j] = 0
			}
		}
		order = order[:0]
		if s.Prof != nil {
			s.Prof.Reset()
		}
		s.M.Run(bodies...)

		vars := make([]uint64, len(addrs))
		for i, a := range addrs {
			vars[i] = uint64(s.M.Mem.Load(a))
		}
		out := t.outcome(regs, vars)
		rec := IterRecord{Outcome: out, Order: string(order)}
		res.Trace = append(res.Trace, rec)
		if res.Outcomes[out] == 0 {
			res.FirstIter[out] = iter
		}
		res.Outcomes[out]++
		if !allowed[out] {
			v := Violation{
				Test: t.Name, Runtime: rc.Label,
				Seed: opts.Seed, Iter: iter,
				Outcome: out, Order: rec.Order,
				Allowed: res.Allowed,
			}
			if s.Prof != nil {
				var b strings.Builder
				s.Prof.Profile().WriteDump(&b)
				v.Dump = b.String()
			}
			if dir := os.Getenv("LITMUS_DUMP_DIR"); dir != "" {
				if _, err := v.SaveDump(dir); err != nil {
					fmt.Fprintln(os.Stderr, "litmus: cannot save flight dump:", err)
				}
			}
			res.Violations = append(res.Violations, v)
			if len(res.Violations) >= opts.MaxViolations {
				res.Iters = iter + 1
				break
			}
		}
	}
	res.Stats = s.TotalStats()
	res.Cycles = s.M.SyncClocks()
	return res
}

// Replay reruns iterations 0..iter of the given seed and returns what
// iteration iter observed — the workflow a Violation message points at.
func Replay(t *Test, rc RuntimeConfig, opts ExploreOptions, iter int) IterRecord {
	opts.Iters = iter + 1
	// Do not stop early: the violation being replayed must be reached.
	opts.MaxViolations = iter + 2
	r := Explore(t, rc, opts)
	return r.Trace[iter]
}

// threadBody compiles one thread program against the stack. Register state
// is snapshotted before each atomic block and restored at the top of the
// body closure: runtimes re-execute bodies on abort, retry, and fallback
// transitions, and the restore makes re-execution idempotent.
func threadBody(s *asfstack.Stack, rc RuntimeConfig, th Thread, regs []uint64, addrs []mem.Addr) func(*sim.CPU) {
	return func(c *sim.CPU) {
		for _, b := range th {
			if !b.Atomic {
				for _, op := range b.Ops {
					runPlainOp(c, op, regs, addrs)
				}
				continue
			}
			block := b
			snap := append([]uint64(nil), regs...)
			s.RT.Atomic(c, func(tx tm.Tx) {
				if rc.ForceSerial {
					if irr, ok := tx.(tm.Irrevocably); ok {
						irr.BecomeIrrevocable()
					}
				}
				copy(regs, snap)
				for _, op := range block.Ops {
					runTxOp(tx, op, regs, addrs)
				}
			})
		}
	}
}

func runTxOp(tx tm.Tx, op Op, regs []uint64, addrs []mem.Addr) {
	switch op.Kind {
	case OpLoad:
		regs[op.Reg] = uint64(tx.Load(addrs[op.Var]))
	case OpStore:
		v := op.Imm
		if op.FromReg {
			v = regs[op.Reg] + op.Imm
		}
		tx.Store(addrs[op.Var], mem.Word(v))
	}
}

func runPlainOp(c *sim.CPU, op Op, regs []uint64, addrs []mem.Addr) {
	switch op.Kind {
	case OpLoad:
		regs[op.Reg] = uint64(c.Load(addrs[op.Var]))
	case OpStore:
		v := op.Imm
		if op.FromReg {
			v = regs[op.Reg] + op.Imm
		}
		c.Store(addrs[op.Var], mem.Word(v))
	}
}
