package intset

import (
	"testing"
)

// mustRun executes a configuration that the test requires to be valid.
func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRunIsDeterministic: identical configurations give identical results.
func TestRunIsDeterministic(t *testing.T) {
	cfg := Config{Structure: "rbtree", Runtime: "LLB-256", Threads: 4,
		Range: 512, UpdatePct: 20, OpsPerThread: 300, Seed: 7}
	a, b := mustRun(t, cfg), mustRun(t, cfg)
	if a.Cycles != b.Cycles || a.Txs != b.Txs || a.Stats != b.Stats {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestEveryOpCommits: committed transactions equal requested operations on
// every runtime (atomic blocks never get lost or double-committed).
func TestEveryOpCommits(t *testing.T) {
	for _, rt := range []string{"LLB-8", "LLB-256", "LLB-8 w/ L1", "LLB-256 w/ L1", "STM"} {
		r := mustRun(t, Config{Structure: "skiplist", Runtime: rt, Threads: 4,
			Range: 256, UpdatePct: 20, OpsPerThread: 200})
		if r.Txs != 4*200 {
			t.Fatalf("%s: txs = %d, want 800", rt, r.Txs)
		}
	}
}

// TestLLB8SerialisesLongLists: the Fig. 5 left-panel effect — LLB-8's
// capacity is insufficient for a 256-element list, so nearly all update
// transactions run serially, while LLB-256 stays in hardware.
func TestLLB8SerialisesLongLists(t *testing.T) {
	small := mustRun(t, Config{Structure: "linkedlist", Runtime: "LLB-8", Threads: 4,
		Range: 512, UpdatePct: 20, OpsPerThread: 250})
	big := mustRun(t, Config{Structure: "linkedlist", Runtime: "LLB-256", Threads: 4,
		Range: 512, UpdatePct: 20, OpsPerThread: 250})
	if small.Stats.Serial < small.Txs/2 {
		t.Fatalf("LLB-8 serial=%d of %d: capacity pressure missing", small.Stats.Serial, small.Txs)
	}
	if big.Stats.Serial > big.Txs/20 {
		t.Fatalf("LLB-256 serial=%d of %d: unexpectedly serialised", big.Stats.Serial, big.Txs)
	}
	if big.Throughput() < 2*small.Throughput() {
		t.Fatalf("LLB-256 (%.2f) not clearly faster than LLB-8 (%.2f)",
			big.Throughput(), small.Throughput())
	}
}

// TestEarlyReleaseRecoversLLB8: Fig. 8 — with early release the LLB-8 list
// throughput recovers to at least several times the no-release baseline.
func TestEarlyReleaseRecoversLLB8(t *testing.T) {
	base := mustRun(t, Config{Structure: "linkedlist", Runtime: "LLB-8", Threads: 4,
		Range: 256, UpdatePct: 20, OpsPerThread: 250})
	er := mustRun(t, Config{Structure: "linkedlist", Runtime: "LLB-8", Threads: 4,
		Range: 256, UpdatePct: 20, OpsPerThread: 250, EarlyRelease: true})
	if er.Throughput() < 2*base.Throughput() {
		t.Fatalf("early release %.2f vs %.2f tx/µs: no recovery",
			er.Throughput(), base.Throughput())
	}
}

// TestHashSetScalesOnAllVariants: the Fig. 5 hash-set panels — even LLB-8
// handles the hash set in hardware (tiny write sets).
func TestHashSetScalesOnAllVariants(t *testing.T) {
	for _, rt := range []string{"LLB-8", "LLB-256", "LLB-8 w/ L1", "LLB-256 w/ L1"} {
		r := mustRun(t, Config{Structure: "hashset", Runtime: rt, Threads: 4,
			Range: 1024, UpdatePct: 100, OpsPerThread: 250})
		if r.Stats.Serial > r.Txs/50 {
			t.Fatalf("%s: %d/%d serial on the hash set", rt, r.Stats.Serial, r.Txs)
		}
	}
}

// TestThroughputScalesWithThreads: rbtree on LLB-256 must gain from more
// threads (the Fig. 5 scaling shape).
func TestThroughputScalesWithThreads(t *testing.T) {
	t1 := mustRun(t, Config{Structure: "rbtree", Runtime: "LLB-256", Threads: 1,
		Range: 8192, UpdatePct: 20, OpsPerThread: 400})
	t4 := mustRun(t, Config{Structure: "rbtree", Runtime: "LLB-256", Threads: 4,
		Range: 8192, UpdatePct: 20, OpsPerThread: 400})
	if t4.Throughput() < 1.8*t1.Throughput() {
		t.Fatalf("4 threads %.2f vs 1 thread %.2f tx/µs: no scaling",
			t4.Throughput(), t1.Throughput())
	}
}

// TestBreakdownAccountsAllCycles: the per-category breakdown must sum to
// (roughly) threads × duration — nothing unattributed.
func TestBreakdownAccountsAllCycles(t *testing.T) {
	r := mustRun(t, Config{Structure: "rbtree", Runtime: "LLB-256", Threads: 2,
		Range: 512, UpdatePct: 20, OpsPerThread: 300})
	total := r.Breakdown.Total()
	upper := uint64(2) * r.Cycles
	if total == 0 || total > upper {
		t.Fatalf("breakdown total %d vs %d thread-cycles", total, upper)
	}
	if total < upper*8/10 {
		t.Fatalf("breakdown total %d misses >20%% of %d thread-cycles", total, upper)
	}
}

// TestRunRejectsBadConfig: configuration mistakes are reported as errors,
// not panics, so sweep harnesses can fail one cell and keep going.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Structure: "btree", Runtime: "STM", Range: 64}); err == nil {
		t.Fatal("unknown structure accepted")
	}
	if _, err := Run(Config{Structure: "rbtree", Runtime: "STM"}); err == nil {
		t.Fatal("zero key range accepted")
	}
}
