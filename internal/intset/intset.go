// Package intset implements the IntegerSet microbenchmarks of the paper's
// evaluation (§5): search/insert/remove operations on an ordered set of
// integers backed by a linked list, a skip list, a red-black tree, or a
// hash table, synchronised with atomic blocks through the TM ABI.
//
// Following the paper's setup: operations are completely random over
// random elements; the initial size of a set is half the key range; no
// insertion or removal happens if the element is already present or
// absent, respectively.
package intset

import (
	"fmt"

	"asfstack"
	"asfstack/internal/adaptive"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/topo"
	"asfstack/internal/txlib"
	"asfstack/internal/txprof"
)

// Structures lists the four IntegerSet data structures in figure order.
var Structures = []string{"linkedlist", "skiplist", "rbtree", "hashset"}

// Config describes one IntegerSet run.
type Config struct {
	Structure string // one of Structures
	Runtime   string // asfstack runtime label
	Threads   int
	Range     uint64 // keys drawn from [0, Range)
	UpdatePct int    // 20 → 10% ins / 10% rem / 80% search; 100 → 50/50
	// InitialSize overrides the default population (Range/2).
	InitialSize int
	// OpsPerThread is the measured operation count per thread.
	OpsPerThread int
	// EarlyRelease enables the hand-over-hand linked-list traversal
	// (Fig. 8); only the linked list uses it.
	EarlyRelease bool
	// HashBits overrides the hash-set table size (2^HashBits buckets);
	// Table 1 forces the paper's 2^17-bucket table.
	HashBits uint
	Seed     int64
	// Trace records sim trace events for the measured phase (Chrome trace
	// export). Off by default: event volume is proportional to work.
	Trace bool
	// Profile installs the transaction-level flight recorder and harvests
	// its profile into Result.Profile. Off by default.
	Profile bool
	// Engine selects the simulator execution engine (serial or epoch);
	// results are bit-identical either way, only host time differs.
	Engine sim.Engine
	// EpochLen overrides the epoch length for the epoch engine (0 keeps
	// the default).
	EpochLen uint64
	// Topology is the socket layout ("2x8"; see internal/topo); empty runs
	// single-socket. When set, Threads must be zero (derived from the
	// topology) or equal its total.
	Topology string
}

// Result carries the measurements a run produces.
type Result struct {
	Config    Config
	Cycles    uint64 // simulated duration of the measured phase
	Txs       uint64 // committed transactions
	Stats     tm.Stats
	Breakdown sim.Breakdown // per-category cycles, summed over threads

	// Metrics is the full registry snapshot at the end of the measured
	// phase (every layer's instruments).
	Metrics *metrics.Snapshot
	// Switches is the adaptive selector's decision log when Runtime is one
	// of the Adaptive configurations; nil for the static runtimes.
	Switches []adaptive.Switch
	// TraceEvents are the measured phase's trace events when
	// Config.Trace was set; TraceStart is the phase's start cycle.
	TraceEvents []sim.TraceEvent
	TraceStart  uint64
	// Profile is the flight-recorder snapshot when Config.Profile was set
	// (and the runtime supports profiling); nil otherwise.
	Profile *txprof.Profile
	// EngineStats is the epoch engine's host-side activity for the measured
	// phase; all zeros under the serial engine.
	EngineStats sim.EngineStats
}

// Throughput returns transactions per microsecond at the simulated clock
// (2.2 GHz), the Fig. 5/7/8 metric.
func (r Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	us := float64(r.Cycles) / 2200.0 // cycles per µs at 2.2 GHz
	return float64(r.Txs) / us
}

type setIface interface {
	Contains(tx tm.Tx, k uint64) bool
	Insert(tx tm.Tx, k uint64) bool
	Remove(tx tm.Tx, k uint64) bool
}

type rbAsSet struct{ t *txlib.RBTree }

func (s rbAsSet) Contains(tx tm.Tx, k uint64) bool { return s.t.Contains(tx, k) }
func (s rbAsSet) Insert(tx tm.Tx, k uint64) bool   { return s.t.Insert(tx, k, mem0(k)) }
func (s rbAsSet) Remove(tx tm.Tx, k uint64) bool   { return s.t.Remove(tx, k) }

func mem0(k uint64) uint64 { return k }

// hashBits picks the table size: the paper's hash set uses 2^17 buckets
// for the large configuration; smaller ranges shrink accordingly so the
// table stays about 4× the range.
func hashBits(r uint64) uint {
	bits := uint(4)
	for ; bits < 17 && (uint64(1)<<bits) < 4*r; bits++ {
	}
	return bits
}

// Run executes one configuration and returns its measurements. A bad
// configuration (unknown structure, empty key range) is reported as an
// error, not a panic, so sweep harnesses can fail one cell and continue.
func Run(cfg Config) (Result, error) {
	switch cfg.Structure {
	case "linkedlist", "skiplist", "rbtree", "hashset":
	default:
		return Result{}, fmt.Errorf("intset: unknown structure %q (want one of %v)",
			cfg.Structure, Structures)
	}
	if cfg.Range == 0 {
		return Result{}, fmt.Errorf("intset: %s: key range must be positive", cfg.Structure)
	}
	if cfg.OpsPerThread == 0 {
		cfg.OpsPerThread = 1500
	}
	if cfg.InitialSize == 0 {
		cfg.InitialSize = int(cfg.Range / 2)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Topology != "" {
		tp, err := topo.Parse(cfg.Topology)
		if err != nil {
			return Result{}, fmt.Errorf("intset: %w", err)
		}
		if cfg.Threads != 0 && cfg.Threads != tp.Total() {
			return Result{}, fmt.Errorf("intset: %d threads conflict with topology %s (%d cores)",
				cfg.Threads, tp, tp.Total())
		}
		cfg.Threads = tp.Total()
	}
	s := asfstack.New(asfstack.Options{
		Cores:    cfg.Threads,
		Runtime:  cfg.Runtime,
		Seed:     cfg.Seed,
		Topology: cfg.Topology,
		Profile:  cfg.Profile,
		Engine:   cfg.Engine,
		EpochLen: cfg.EpochLen,
	})

	var set setIface
	s.Setup(func(tx tm.Tx) {
		switch cfg.Structure {
		case "linkedlist":
			l := txlib.NewList(tx)
			l.EarlyRelease = cfg.EarlyRelease
			set = l
		case "skiplist":
			set = txlib.NewSkipList(tx)
		case "rbtree":
			set = rbAsSet{txlib.NewRBTree(tx)}
		case "hashset":
			bits := cfg.HashBits
			if bits == 0 {
				bits = hashBits(cfg.Range)
			}
			set = txlib.NewHashSet(tx, bits)
		}
		// Populate to the initial size with distinct random keys.
		rng := tx.CPU().Rand()
		for n := 0; n < cfg.InitialSize; {
			if set.Insert(tx, uint64(rng.Int63n(int64(cfg.Range)))) {
				n++
			}
		}
	})

	start := s.BeginMeasured()
	if cfg.Trace {
		s.M.EnableTrace()
	}

	end := s.Parallel(cfg.Threads, func(c *sim.CPU) {
		rng := c.Rand()
		for i := 0; i < cfg.OpsPerThread; i++ {
			k := uint64(rng.Int63n(int64(cfg.Range)))
			r := rng.Intn(100)
			switch {
			case r < cfg.UpdatePct/2:
				s.Atomic(c, func(tx tm.Tx) { set.Insert(tx, k) })
			case r < cfg.UpdatePct:
				s.Atomic(c, func(tx tm.Tx) { set.Remove(tx, k) })
			default:
				s.Atomic(c, func(tx tm.Tx) { set.Contains(tx, k) })
			}
		}
	})

	res := Result{Config: cfg, Cycles: end - start}
	res.Stats = s.TotalStats()
	res.Txs = res.Stats.Commits
	for i := 0; i < cfg.Threads; i++ {
		res.Breakdown = res.Breakdown.Add(s.M.CPU(i).Counters())
	}
	res.Metrics = s.MetricsSnapshot()
	if s.ADAPT != nil {
		res.Switches = s.ADAPT.Switches()
	}
	if cfg.Trace {
		res.TraceEvents = s.M.TraceEvents()
		res.TraceStart = start
	}
	res.Profile = s.TxProfile()
	res.EngineStats = s.M.EngineStats()
	return res, nil
}
