package intset

import "testing"

func TestSmoke(t *testing.T) {
	for _, rt := range []string{"LLB-8", "LLB-256", "STM", "Sequential"} {
		threads := 4
		if rt == "Sequential" {
			threads = 1
		}
		for _, st := range Structures {
			r := mustRun(t, Config{Structure: st, Runtime: rt, Threads: threads,
				Range: 256, UpdatePct: 20, OpsPerThread: 300})
			t.Logf("%-10s %-12s thr=%d tx/us=%.2f serial=%d aborts=%d stmAborts=%d",
				st, rt, threads, r.Throughput(), r.Stats.Serial, r.Stats.TotalAborts(), r.Stats.STMAborts)
			if r.Txs != uint64(threads*300) {
				t.Fatalf("%s/%s: txs=%d want %d", st, rt, r.Txs, threads*300)
			}
		}
	}
}
