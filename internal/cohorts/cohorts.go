// Package cohorts is the fourth TM runtime of the stack: a Cohorts-style
// software TM (modelled on llvm-transmem's cohorts.h and the published
// Cohorts algorithm) behind the same tm ABI as ASF-TM, TinySTM and the
// hybrid runtime.
//
// The design point is the fence-free end of the concurrency/cost frontier:
//
//   - validation uses *values*, not a lock table or timestamps — there is
//     no per-word metadata at all, so read and write barriers touch only
//     the transaction's own logs;
//   - speculative writes go out of place into a redo log; memory holds
//     committed state for the whole run phase of a cohort;
//   - commits happen in *batches* (cohorts): transactions that begin
//     together commit together, in seal order, and abort only at commit
//     time — there is no mid-transaction conflict detection, which is what
//     makes the barriers fence-free on relaxed-memory hardware;
//   - "turbo mode" (published but unimplemented in cohorts.h): when every
//     other member of a sealed cohort is waiting to commit, the one
//     transaction still running drops all read/write instrumentation —
//     it writes its redo log back in place, continues with plain accesses,
//     and commits first; the waiting members then validate against its
//     writes like against any earlier committer.
//
// The shared state is three counters on dedicated cache lines in
// *simulated* memory (STARTED, SEALED, FINISHED — the cohorts.h globals),
// plus a commit-order word and a turbo/solo word; all cohort-membership
// traffic is charged by the cache model.
//
// Cohort protocol. A transaction may join (STARTED++) only while the
// current cohort is open (SEALED == 0). The first transaction to reach its
// commit point seals the cohort (SEALED++ makes it non-zero), which closes
// admission; every member seals in turn and then waits until
// STARTED == SEALED. Commit proceeds in seal order: member i waits for the
// order word to reach i, validates its value log against memory (the first
// committer of a turbo-free cohort skips this — nothing was written back
// since the cohort opened), writes its redo log back, and passes the turn.
// A validation failure aborts — the only abort point in the algorithm —
// and the loser retries in a later cohort. The last member to finish
// rewinds the counters (arithmetically, so racing joiners that back out
// never corrupt them) and reopens admission.
//
// Irrevocability. Cohorts cannot make a transaction irrevocable in place
// (any member may still abort it at commit by committing ahead of it), so
// BecomeIrrevocable seals-and-drains to a *solo cohort*: the transaction
// unwinds, closes admission via the solo word, waits until the counters
// show no live cohort, and re-runs alone with plain in-place accesses —
// a cohort of one that cannot abort. This keeps the runtime ABI-complete
// instead of panicking like cohorts.h's assert.
package cohorts

import (
	"asfstack/internal/mem"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// Config tunes the runtime's software path lengths and policies.
type Config struct {
	// Turbo enables turbo mode: the last running transaction of a sealed
	// cohort drops instrumentation and commits first.
	Turbo bool
	// MaxAttempts is the starvation valve: commit-validation failures
	// before the transaction escalates to a solo (irrevocable) cohort.
	// A validation failure implies another transaction committed, so the
	// system always makes progress; the valve only bounds per-transaction
	// starvation.
	MaxAttempts int
	// SpinCycles is the poll interval for the admission gate and the
	// seal/order waits.
	SpinCycles uint64

	// Software path lengths, in instructions (beyond the memory traffic,
	// which is charged by the cache model). The barriers are cheaper than
	// TinySTM's: no lock-table hashing, no version checks — one log append.
	BeginInstr, CommitInstr int
	ReadInstr, WriteInstr   int
	ValidateInstrPerEntry   int
	WritebackInstrPerEntry  int
}

// DefaultConfig returns the evaluation configuration (turbo off — the
// "Cohorts" column; the "Cohorts-turbo" stack flips Turbo on).
func DefaultConfig() Config {
	return Config{
		Turbo:       false,
		MaxAttempts: 4096,
		SpinCycles:  160,

		BeginInstr:             40,
		CommitInstr:            24,
		ReadInstr:              12,
		WriteInstr:             16,
		ValidateInstrPerEntry:  4,
		WritebackInstrPerEntry: 4,
	}
}

// Runtime implements tm.Runtime with the Cohorts algorithm.
type Runtime struct {
	m    *sim.Machine
	heap *tm.Heap
	cfg  Config
	name string

	// The shared counters, each alone on its cache line (the cohorts.h
	// pad_dword_t discipline — sealing must not false-share with joining).
	started  mem.Addr // live transactions admitted to the current cohort
	sealed   mem.Addr // members that reached their commit point
	finished mem.Addr // members done with the commit phase
	order    mem.Addr // commit-order turn among non-turbo members
	turbo    mem.Addr // core+1 of the cohort's turbo transaction, else 0
	solo     mem.Addr // solo-cohort (irrevocable) admission latch

	stats []tm.Stats
	txs   []coTx
	depth []int // per-core flat-nesting depth of Atomic calls

	hook tm.CommitHook
	prof tm.TxProfiler

	// turboInCohort counts turbo entries in the current cohort and
	// turboViolations records cohorts that saw more than one — the
	// invariant the turbo regression test pins. Both are only touched
	// under sim.CPU.SpecOp (holding the global turn), so plain host
	// fields are race-free.
	turboInCohort   int
	turboViolations int

	met rtMetrics
}

// rtMetrics holds the runtime's metric handles (zero-value inert).
type rtMetrics struct {
	// attempts is the number of attempts each transaction made before
	// committing (1 = first try; aborts happen only at commit time).
	attempts metrics.Histogram
	// cohortSize records each cohort's member count at reset.
	cohortSize metrics.Histogram
	// sealWait / orderWait accumulate cycles spent between sealing and the
	// commit phase opening, and waiting for the in-order commit turn.
	sealWait  metrics.Counter
	orderWait metrics.Counter
	// turboCommits counts transactions that committed in turbo mode;
	// roCommits counts read-only transactions that left their cohort
	// without sealing; soloEntries counts solo (irrevocable) cohorts.
	turboCommits metrics.Counter
	roCommits    metrics.Counter
	soloEntries  metrics.Counter
	// validationAborts counts commit-time value-validation failures (the
	// algorithm's only abort point).
	validationAborts metrics.Counter
}

// SetMetrics registers the runtime's instruments with reg. Must be called
// before the first transaction (stack construction does this).
func (r *Runtime) SetMetrics(reg *metrics.Registry) {
	r.met.attempts = reg.Histogram("cohorts/attempts", metrics.PowersOfTwo(8))
	r.met.cohortSize = reg.Histogram("cohorts/cohort_size", metrics.PowersOfTwo(6))
	r.met.sealWait = reg.Counter("cohorts/seal_wait_cycles")
	r.met.orderWait = reg.Counter("cohorts/order_wait_cycles")
	r.met.turboCommits = reg.Counter("cohorts/turbo_commits")
	r.met.roCommits = reg.Counter("cohorts/ro_commits")
	r.met.soloEntries = reg.Counter("cohorts/solo_entries")
	r.met.validationAborts = reg.Counter("cohorts/validation_aborts")
}

// SetCommitHook implements tm.HookableRuntime.
func (r *Runtime) SetCommitHook(h tm.CommitHook) { r.hook = h }

// SetProfiler implements tm.ProfilableRuntime.
func (r *Runtime) SetProfiler(p tm.TxProfiler) { r.prof = p }

// record feeds the flight recorder (nil check = the disabled-path cost).
func (r *Runtime) record(c *sim.CPU, ev tm.TxEvent) {
	if r.prof != nil {
		ev.Time = c.Now()
		r.prof.Record(c.ID(), ev)
	}
}

// notifyCommit reports a commit to the hook under the global turn (see
// tm.CommitHook).
func (r *Runtime) notifyCommit(c *sim.CPU, serial bool) {
	if r.hook != nil {
		c.SpecOp(0, func() { r.hook(c.ID(), serial) })
	}
}

// New builds the Cohorts runtime over machine m. Its metadata (the cohort
// counters and the per-thread logs) is laid out in layout's space and
// prefaulted. name is the figure label ("Cohorts", "Cohorts-turbo").
func New(m *sim.Machine, heap *tm.Heap, layout *mem.Layout, name string) *Runtime {
	cores := m.Config().Cores
	r := &Runtime{
		m:     m,
		heap:  heap,
		cfg:   DefaultConfig(),
		name:  name,
		stats: make([]tm.Stats, cores),
		txs:   make([]coTx, cores),
		depth: make([]int, cores),
	}
	base, end := layout.Region(6 * mem.LineSize)
	m.Mem.Prefault(base, uint64(end-base))
	r.started = base
	r.sealed = base + 1*mem.LineSize
	r.finished = base + 2*mem.LineSize
	r.order = base + 3*mem.LineSize
	r.turbo = base + 4*mem.LineSize
	r.solo = base + 5*mem.LineSize

	for i := range r.txs {
		logBase, logEnd := layout.Region(1 << 18) // 256 KiB of log space
		m.Mem.Prefault(logBase, uint64(logEnd-logBase))
		r.txs[i] = coTx{
			r:        r,
			windex:   make(map[mem.Addr]int),
			readLog:  logBase,
			writeLog: logBase + (1 << 17),
		}
	}
	return r
}

// SetConfig replaces the configuration (before any transaction runs).
func (r *Runtime) SetConfig(cfg Config) { r.cfg = cfg }

// Name implements tm.Runtime.
func (r *Runtime) Name() string { return r.name }

// Stats implements tm.Runtime.
func (r *Runtime) Stats(core int) tm.Stats { return r.stats[core] }

// ResetStats implements tm.Runtime.
func (r *Runtime) ResetStats() {
	for i := range r.stats {
		r.stats[i] = tm.Stats{}
	}
}

// TurboViolations returns how many cohorts saw more than one turbo entry —
// always zero; the turbo regression test pins the invariant.
func (r *Runtime) TurboViolations() int { return r.turboViolations }

// Counters returns the current (started, sealed, finished, order) counter
// values from simulated memory — a barrier-only debug/test accessor.
func (r *Runtime) Counters() (started, sealed, finished, order uint64) {
	return uint64(r.m.Mem.Load(r.started)), uint64(r.m.Mem.Load(r.sealed)),
		uint64(r.m.Mem.Load(r.finished)), uint64(r.m.Mem.Load(r.order))
}

// coConflict is the panic sentinel for the software longjmp on abort.
type coConflict struct{ core int }

// Transaction modes.
const (
	modeInstr = iota // instrumented: value log + redo log
	modeTurbo        // turbo: plain accesses, commits first in its cohort
	modeSolo         // solo cohort: irrevocable, plain accesses, alone
)

// Atomic implements tm.Runtime.
func (r *Runtime) Atomic(c *sim.CPU, body func(tx tm.Tx)) {
	id := c.ID()
	if r.depth[id] > 0 {
		// Flat nesting at the language level.
		r.depth[id]++
		body(&r.txs[id])
		r.depth[id]--
		return
	}
	r.depth[id] = 1
	defer func() { r.depth[id] = 0 }()

	st := &r.stats[id]
	t := &r.txs[id]
	t.c = c

	attempts := 0
	for {
		attempts++
		c.SetCategory(sim.CatTxStartCommit)
		snap := c.Counters()
		c.Trace(sim.TraceTxBegin, 0)
		attemptStart := c.Now()
		if attempts == 1 {
			r.record(c, tm.TxEvent{Kind: tm.TxEvBegin, Path: tm.PathSW,
				Aborter: sim.NoCore, Addr: sim.NoAddr})
		}
		t.begin()

		committed := func() (committed bool) {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if cc, ok := rec.(coConflict); ok && cc.core == id {
					committed = false
					return
				}
				panic(rec)
			}()
			c.SetCategory(sim.CatTxApp)
			body(t)
			c.SetCategory(sim.CatTxStartCommit)
			t.commit()
			return true
		}()

		if committed {
			st.Commits++
			r.met.attempts.Observe(id, uint64(attempts))
			path := tm.PathSW
			if t.mode == modeTurbo {
				path = tm.PathTurbo
			}
			r.record(c, tm.TxEvent{Kind: tm.TxEvCommit, Path: path,
				Aborter: sim.NoCore, Addr: sim.NoAddr,
				Reads: uint32(len(t.reads)), Writes: uint32(len(t.writes)), Cycles: c.Now() - attemptStart})
			t.reset()
			c.Trace(sim.TraceTxCommit, 0)
			c.SetCategory(sim.CatNonInstr)
			return
		}

		// Aborted at commit validation (or unwound by BecomeIrrevocable):
		// the redo log was never published, so there is nothing to undo.
		c.MoveToAbort(snap)
		c.Trace(sim.TraceTxAbort, 0)
		c.SetCategory(sim.CatAbort)
		force := t.forceSolo
		t.forceSolo = false
		if !force {
			st.STMAborts++
			r.record(c, tm.TxEvent{Kind: tm.TxEvAbort, Path: tm.PathSW,
				STM: true, Aborter: t.lastBy, Addr: t.lastAddr,
				Reads: uint32(len(t.reads)), Writes: uint32(len(t.writes)), Cycles: c.Now() - attemptStart})
		}
		t.reset()
		if force || attempts >= r.cfg.MaxAttempts {
			c.Trace(sim.TraceTxFallback, uint64(tm.PathSerial))
			r.record(c, tm.TxEvent{Kind: tm.TxEvFallback, Path: tm.PathSerial,
				Aborter: sim.NoCore, Addr: sim.NoAddr})
			r.runSolo(c, t, body)
			return
		}
	}
}

// runSolo executes body as a solo cohort: admission latched shut, existing
// cohorts drained, then plain in-place accesses with no possibility of
// abort — the runtime's serial-irrevocable mode.
func (r *Runtime) runSolo(c *sim.CPU, t *coTx, body func(tx tm.Tx)) {
	id := c.ID()
	st := &r.stats[id]
	c.SetCategory(sim.CatTxStartCommit)
	c.Trace(sim.TraceTxBegin, 0)
	attemptStart := c.Now()
	// Latch the solo word (queue behind any other solo transaction).
	for {
		if _, ok := c.CAS(r.solo, 0, mem.Word(id+1)); ok {
			break
		}
		c.Cycles(uint64(c.Rand().Int63n(int64(r.cfg.SpinCycles))) + r.cfg.SpinCycles)
	}
	// Drain: no new members can join (begin re-checks solo after its
	// increment), so wait until every live cohort has fully finished and
	// rewound its counters. Transient joiner increments back out on their
	// own once they observe the latch.
	for {
		if c.Load(r.started) == 0 && c.Load(r.sealed) == 0 {
			break
		}
		c.Cycles(r.cfg.SpinCycles)
	}
	r.met.soloEntries.Inc(id)
	t.mode = modeSolo
	c.SetCategory(sim.CatTxApp)
	body(t)
	c.SetCategory(sim.CatTxStartCommit)
	c.Exec(r.cfg.CommitInstr)
	r.notifyCommit(c, true) // before the release: the latch is the commit point
	c.Store(r.solo, 0)
	t.mode = modeInstr
	st.Commits++
	st.Serial++
	c.Trace(sim.TraceTxCommit, 0)
	r.record(c, tm.TxEvent{Kind: tm.TxEvCommit, Path: tm.PathSerial,
		Aborter: sim.NoCore, Addr: sim.NoAddr, Cycles: c.Now() - attemptStart})
	c.SetCategory(sim.CatNonInstr)
}

// --- transaction descriptor ------------------------------------------------

type readEntry struct {
	addr mem.Addr
	val  mem.Word
}

type writeEntry struct {
	addr mem.Addr
	val  mem.Word
}

// coTx implements tm.Tx for the three Cohorts code paths — instrumented,
// turbo, solo — dispatched by mode.
type coTx struct {
	r    *Runtime
	c    *sim.CPU
	mode int

	// forceSolo carries a BecomeIrrevocable request out of the abort
	// unwind; irrevocable marks a turbo transaction granted
	// irrevocability in place.
	forceSolo   bool
	irrevocable bool

	// Value log (reads) and redo log (writes) with a read-own-write index.
	reads  []readEntry
	writes []writeEntry
	windex map[mem.Addr]int

	// readLog/writeLog are the simulated-memory backing of the logs, so
	// each append charges a real store (the logs stay cache-hot).
	readLog, writeLog mem.Addr

	// lastBy/lastAddr stash the abort edge for the flight recorder before
	// the software longjmp unwinds (value validation cannot identify the
	// aborter, so lastBy stays sim.NoCore).
	lastBy   int
	lastAddr mem.Addr
}

func (t *coTx) abort() {
	t.abortAt(sim.NoAddr)
}

// abortAt records the conflicting address, then unwinds.
func (t *coTx) abortAt(a mem.Addr) {
	t.lastBy, t.lastAddr = sim.NoCore, a
	panic(coConflict{core: t.c.ID()})
}

// begin joins the current cohort: admission is open while no member has
// sealed (SEALED == 0) and no solo transaction holds the latch. The join
// is optimistic — increment STARTED, then re-check; a raced seal or solo
// latch backs the increment out arithmetically, which is safe against the
// commit phase's counter rewind (also arithmetic) at any interleaving.
func (t *coTx) begin() {
	c := t.c
	r := t.r
	c.Exec(r.cfg.BeginInstr)
	t.mode = modeInstr
	t.irrevocable = false
	for {
		if c.Load(r.solo) != 0 || c.Load(r.sealed) != 0 {
			c.Cycles(r.cfg.SpinCycles)
			continue
		}
		c.FetchAdd(r.started, 1)
		if c.Load(r.solo) == 0 && c.Load(r.sealed) == 0 {
			return // joined the open cohort
		}
		c.FetchAdd(r.started, ^mem.Word(0)) // back out and wait
		c.Cycles(r.cfg.SpinCycles)
	}
}

// maybeTurbo checks whether this transaction is the last one still running
// in a sealed cohort and, if so, switches to turbo mode: the redo log is
// written back in place immediately (every other member is parked at its
// seal wait, so only plain — weakly isolated — readers can observe it) and
// the rest of the transaction runs uninstrumented. Loading SEALED before
// STARTED makes a false positive impossible: once SEALED is observed
// nonzero, admission is closed, so STARTED can only transiently
// over-count (a raced joiner backing out arithmetically) — which misses
// turbo, never falsely enters it. Sampling in the other order would let a
// join between the two loads raise SEALED to match a stale STARTED while
// another instrumented member is still running.
func (t *coTx) maybeTurbo() {
	c := t.c
	r := t.r
	if t.mode != modeInstr || !r.cfg.Turbo {
		return
	}
	s := c.Load(r.sealed)
	if s == 0 {
		return
	}
	if c.Load(r.started) != s+1 {
		return
	}
	if _, ok := c.CAS(r.turbo, 0, mem.Word(c.ID()+1)); !ok {
		return
	}
	c.Trace(sim.TraceTurbo, uint64(s))
	c.SpecOp(0, func() {
		r.turboInCohort++
		if r.turboInCohort > 1 {
			r.turboViolations++
		}
	})
	// Publish the redo log in place and go uninstrumented.
	for i := range t.writes {
		w := &t.writes[i]
		c.Exec(r.cfg.WritebackInstrPerEntry)
		c.Store(w.addr, w.val)
	}
	t.mode = modeTurbo
}

// commit is the batched cohort commit described in the package comment.
func (t *coTx) commit() {
	c := t.c
	r := t.r
	id := c.ID()
	st := &r.stats[id]
	c.Exec(r.cfg.CommitInstr)

	switch t.mode {
	case modeSolo:
		return // runSolo owns the commit protocol
	case modeTurbo:
		// Writes are already in place and nothing can invalidate the
		// value log (every other member is sealed and waiting), so the
		// turbo transaction commits first: seal — which opens the commit
		// phase — and finish without taking an order turn. (A turbo seal
		// is never the cohort's first: turbo requires an existing seal.)
		r.notifyCommit(c, false)
		c.Trace(sim.TraceCohortSeal, uint64(c.FetchAdd(r.sealed, 1)))
		r.met.turboCommits.Inc(id)
		t.finishMember(false)
		return
	}

	// Read-only fast exit: no writebacks have happened since the cohort
	// opened (the commit phase needs STARTED == SEALED, impossible while
	// this member is unsealed), so the value log is trivially valid and
	// the transaction can leave the cohort without sealing.
	if len(t.writes) == 0 {
		r.notifyCommit(c, false)
		c.FetchAdd(r.started, ^mem.Word(0))
		r.met.roCommits.Inc(id)
		return
	}

	// Seal: my pre-increment value is my commit order within the cohort;
	// a zero pre-value means this seal closed the cohort's admission —
	// the event the tm/cohort_seals gauge and the abort table's seal
	// column count.
	myOrder := uint64(c.FetchAdd(r.sealed, 1))
	c.Trace(sim.TraceCohortSeal, myOrder)
	if myOrder == 0 {
		st.Seals++
	}

	// Wait for the cohort to finish sealing (every admitted member to
	// reach its commit point; racing joiners back out on their own).
	// Loading SEALED before STARTED makes a spurious pass impossible.
	sealStart := c.Now()
	for {
		s := c.Load(r.sealed)
		if c.Load(r.started) == s {
			break
		}
		c.Cycles(r.cfg.SpinCycles)
	}
	r.met.sealWait.Add(id, c.Now()-sealStart)

	// In-order commit: wait for my turn among the non-turbo members.
	// (A turbo member always seals last — it was the last one running —
	// so non-turbo orders are contiguous from zero and the order word
	// only counts non-turbo turns.)
	orderStart := c.Now()
	for uint64(c.Load(r.order)) != myOrder {
		c.Cycles(r.cfg.SpinCycles)
	}
	r.met.orderWait.Add(id, c.Now()-orderStart)

	// Validate by value. The first committer of a turbo-free cohort skips
	// this: no writeback has happened since the cohort opened. Any later
	// committer — or any member of a cohort with a turbo transaction —
	// re-reads every logged address and compares values.
	turboHere := c.Load(r.turbo) != 0
	if myOrder > 0 || turboHere {
		for i := range t.reads {
			e := &t.reads[i]
			c.Exec(r.cfg.ValidateInstrPerEntry)
			if c.Load(e.addr) != e.val {
				r.met.validationAborts.Inc(id)
				t.finishMember(true)
				t.abortAt(e.addr)
			}
		}
	}

	// Write back the redo log and pass the turn.
	for i := range t.writes {
		w := &t.writes[i]
		c.Exec(r.cfg.WritebackInstrPerEntry)
		c.Store(w.addr, w.val)
	}
	r.notifyCommit(c, false)
	t.finishMember(true)
}

// finishMember counts this member as finished — passing the in-order
// commit turn first if it held one — and, when it is the cohort's last,
// rewinds the counters and reopens admission. The turbo member can be the
// last finisher (every order turn may complete between its seal and its
// finished increment), which is why the rewind lives here and not on the
// in-order path. All rewinds are arithmetic (FetchAdd of a negative
// delta), never stores of zero, so joiner increments that are concurrently
// backing out can interleave anywhere without corrupting the counters.
func (t *coTx) finishMember(bumpOrder bool) {
	c := t.c
	r := t.r
	if bumpOrder {
		c.FetchAdd(r.order, 1)
	}
	fin := uint64(c.FetchAdd(r.finished, 1)) + 1
	// SEALED is frozen by the time any member increments FINISHED (the
	// commit phase opens only once every member sealed), so comparing
	// against it is stable.
	size := uint64(c.Load(r.sealed))
	if fin != size {
		return
	}
	// Last finisher: record the cohort and rewind. Only non-turbo members
	// take order turns, so the order word ends at size minus the turbo
	// count. The turbo word is only ever CASed by a running member of
	// *this* cohort (admission is closed), so a plain store resets it
	// safely before admission reopens.
	r.met.cohortSize.Observe(c.ID(), size)
	c.SpecOp(0, func() { r.turboInCohort = 0 })
	orderEnd := size
	if c.Load(r.turbo) != 0 {
		orderEnd = size - 1
		c.Store(r.turbo, 0)
	}
	c.FetchAdd(r.order, ^mem.Word(orderEnd)+1)
	c.FetchAdd(r.finished, ^mem.Word(size)+1)
	c.FetchAdd(r.started, ^mem.Word(size)+1)
	c.FetchAdd(r.sealed, ^mem.Word(size)+1) // last: reopens admission
}

func (t *coTx) reset() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	clear(t.windex)
	t.mode = modeInstr
	t.irrevocable = false
}

// readLogSlot returns the next simulated-memory slot of the value log,
// wrapping within its region (the charge is what matters).
func (t *coTx) readLogSlot() mem.Addr {
	off := (uint64(len(t.reads)) * 2 * mem.WordSize) & ((1 << 17) - 1)
	return t.readLog + mem.Addr(off)
}

func (t *coTx) writeLogSlot(i int) mem.Addr {
	off := (uint64(i) * 2 * mem.WordSize) & ((1 << 17) - 1)
	return t.writeLog + mem.Addr(off)
}

// --- tm.Tx -----------------------------------------------------------------

// Load implements tm.Tx: read-own-write from the redo log, else a plain
// load appended to the value log. There is no version to check and no
// fence to take — validation is deferred to the commit turn.
func (t *coTx) Load(a mem.Addr) mem.Word {
	c := t.c
	prev := c.SetCategory(sim.CatTxLoadStore)
	defer c.SetCategory(prev)
	t.maybeTurbo()
	if t.mode != modeInstr {
		c.Exec(2)
		return c.Load(a)
	}
	c.Exec(t.r.cfg.ReadInstr)
	if i, ok := t.windex[a]; ok {
		return t.writes[i].val
	}
	v := c.Load(a)
	// Value-log append: address + value (two simulated stores).
	slot := t.readLogSlot()
	c.Store(slot, mem.Word(a))
	c.Store(slot+mem.WordSize, v)
	t.reads = append(t.reads, readEntry{addr: a, val: v})
	return v
}

// Store implements tm.Tx: out-of-place append to the redo log. Nothing is
// published until the cohort's commit phase.
func (t *coTx) Store(a mem.Addr, v mem.Word) {
	c := t.c
	prev := c.SetCategory(sim.CatTxLoadStore)
	defer c.SetCategory(prev)
	t.maybeTurbo()
	if t.mode != modeInstr {
		c.Exec(2)
		c.Store(a, v)
		return
	}
	c.Exec(t.r.cfg.WriteInstr)
	if i, ok := t.windex[a]; ok {
		t.writes[i].val = v
		c.Store(t.writeLogSlot(i)+mem.WordSize, v)
		return
	}
	i := len(t.writes)
	slot := t.writeLogSlot(i)
	c.Store(slot, mem.Word(a))
	c.Store(slot+mem.WordSize, v)
	t.windex[a] = i
	t.writes = append(t.writes, writeEntry{addr: a, val: v})
}

// Alloc implements tm.Tx. Cohorts can refill inline: writes are buffered,
// so no speculative region is at risk during the refill.
func (t *coTx) Alloc(size uint64) mem.Addr {
	for {
		a, ok := t.r.heap.AllocFast(t.c, size, mem.WordSize)
		if ok {
			return a
		}
		t.r.heap.Refill(t.c, size)
	}
}

// AllocLines implements tm.Tx.
func (t *coTx) AllocLines(n int) mem.Addr {
	for {
		a, ok := t.r.heap.AllocFast(t.c, uint64(n)*mem.LineSize, mem.LineSize)
		if ok {
			return a
		}
		t.r.heap.Refill(t.c, uint64(n)*mem.LineSize)
	}
}

// Free implements tm.Tx.
func (t *coTx) Free(a mem.Addr) { t.r.heap.Free(t.c, a) }

// CPU implements tm.Tx.
func (t *coTx) CPU() *sim.CPU { return t.c }

// Irrevocable implements tm.Tx: true in a solo cohort, and for a turbo
// transaction that was granted a BecomeIrrevocable request in place.
func (t *coTx) Irrevocable() bool { return t.mode == modeSolo || t.irrevocable }

// BecomeIrrevocable implements tm.Irrevocably: a Cohorts transaction can
// never become irrevocable in place, so the transaction unwinds and
// restarts as a solo cohort (seal-and-drain; see runSolo). cohorts.h
// asserts instead; the ABI requires an answer.
func (t *coTx) BecomeIrrevocable() {
	if t.mode == modeSolo {
		return
	}
	if t.mode == modeTurbo {
		// A turbo transaction has published writes in place and cannot
		// roll back — but it also cannot abort (every other member of its
		// cohort is sealed and waiting, and turbo commits first), which
		// is the guarantee irrevocability asks for. Grant in place.
		t.irrevocable = true
		return
	}
	// Leave the cohort before unwinding: the started count must not
	// include a member that will never seal.
	t.c.FetchAdd(t.r.started, ^mem.Word(0))
	t.forceSolo = true
	t.abort()
}

// Tx is the exported name of the runtime's transaction descriptor.
type Tx = coTx
