package cohorts

import (
	"testing"

	"asfstack/internal/mem"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

func newRT(t *testing.T, cores int, turbo bool) (*sim.Machine, *Runtime) {
	t.Helper()
	m := sim.New(sim.Barcelona(cores))
	m.Mem.Prefault(0, 1<<21)
	layout := mem.NewLayout(1 << 22)
	heap := tm.NewHeap(m.Mem, layout, cores, 16<<20)
	r := New(m, heap, layout, "Cohorts-test")
	cfg := DefaultConfig()
	cfg.Turbo = turbo
	r.SetConfig(cfg)
	return m, r
}

// counterTotal pulls one cohorts/* counter out of a registry snapshot.
func counterTotal(t *testing.T, reg *metrics.Registry, name string) uint64 {
	t.Helper()
	snap := reg.Snapshot()
	for _, c := range snap.Sim.Counters {
		if c.Name == name {
			return c.Total
		}
	}
	t.Fatalf("counter %q not in snapshot", name)
	return 0
}

// TestAtomicCounter is the basic atomicity check for both configurations:
// contended read-modify-write increments across cores must not lose
// updates, and the shared cohort counters must all drain back to zero.
func TestAtomicCounter(t *testing.T) {
	for _, turbo := range []bool{false, true} {
		name := "plain"
		if turbo {
			name = "turbo"
		}
		t.Run(name, func(t *testing.T) {
			m, r := newRT(t, 4, turbo)
			const rounds = 50
			const ctr = mem.Addr(0xA000)
			body := func(c *sim.CPU) {
				for i := 0; i < rounds; i++ {
					r.Atomic(c, func(tx tm.Tx) {
						tx.Store(ctr, tx.Load(ctr)+1)
					})
				}
			}
			m.Run(body, body, body, body)
			if got := m.Mem.Load(ctr); got != 4*rounds {
				t.Fatalf("counter = %d, want %d (lost updates)", got, 4*rounds)
			}
			var total tm.Stats
			for i := 0; i < 4; i++ {
				total.Add(r.Stats(i))
			}
			if total.Commits != 4*rounds {
				t.Fatalf("commits = %d, want %d", total.Commits, 4*rounds)
			}
			if total.Seals == 0 {
				t.Fatal("no cohort seals recorded despite write transactions")
			}
			st, se, fi, or := r.Counters()
			if st != 0 || se != 0 || fi != 0 || or != 0 {
				t.Fatalf("cohort counters not drained: started=%d sealed=%d finished=%d order=%d", st, se, fi, or)
			}
			if v := r.TurboViolations(); v != 0 {
				t.Fatalf("turbo violations = %d", v)
			}
		})
	}
}

// TestSealDrainUnderChurn hammers begin/seal/commit from many cores over
// disjoint data (maximum membership churn, no validation aborts) and checks
// the counter-drain invariant after every machine barrier. Run with -race:
// the host-side descriptor state must stay per-core.
func TestSealDrainUnderChurn(t *testing.T) {
	m, r := newRT(t, 8, true)
	const rounds = 40
	worker := func(c *sim.CPU) {
		base := mem.Addr(0x10000 + c.ID()*0x4000)
		for i := 0; i < rounds; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				for j := 0; j < 4; j++ {
					a := base + mem.Addr(j*mem.LineSize)
					tx.Store(a, tx.Load(a)+1)
				}
			})
		}
	}
	fns := make([]func(*sim.CPU), 8)
	for i := range fns {
		fns[i] = worker
	}
	m.Run(fns...)
	st, se, fi, or := r.Counters()
	if st != 0 || se != 0 || fi != 0 || or != 0 {
		t.Fatalf("cohort counters not drained: started=%d sealed=%d finished=%d order=%d", st, se, fi, or)
	}
	var total tm.Stats
	for i := 0; i < 8; i++ {
		total.Add(r.Stats(i))
	}
	if total.Commits != 8*rounds {
		t.Fatalf("commits = %d, want %d", total.Commits, 8*rounds)
	}
	if total.STMAborts != 0 {
		t.Fatalf("validation aborts = %d on disjoint data, want 0", total.STMAborts)
	}
}

// TestValidationAbortRetries: conflicting writers must detect the conflict
// at commit (value validation), abort, and still converge to the correct
// value — and the abort is attributed as a software abort.
func TestValidationAbortRetries(t *testing.T) {
	m, r := newRT(t, 4, false)
	const rounds = 60
	const ctr = mem.Addr(0xB000)
	body := func(c *sim.CPU) {
		for i := 0; i < rounds; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				tx.Store(ctr, tx.Load(ctr)+1)
			})
		}
	}
	m.Run(body, body, body, body)
	if got := m.Mem.Load(ctr); got != 4*rounds {
		t.Fatalf("counter = %d, want %d", got, 4*rounds)
	}
	var total tm.Stats
	for i := 0; i < 4; i++ {
		total.Add(r.Stats(i))
	}
	if total.STMAborts == 0 {
		t.Fatal("no validation aborts despite full write contention")
	}
	if total.Serial != 0 {
		t.Fatalf("serial entries = %d, want 0 (no irrevocability requested)", total.Serial)
	}
}

// TestTurboExactlyOnePerCohort pins the turbo invariant: at most one
// transaction per sealed cohort runs uninstrumented, and turbo mode
// actually engages under contention.
func TestTurboExactlyOnePerCohort(t *testing.T) {
	m, r := newRT(t, 4, true)
	reg := metrics.New(4)
	r.SetMetrics(reg)
	const rounds = 80
	body := func(c *sim.CPU) {
		base := mem.Addr(0x20000 + c.ID()*0x4000)
		for i := 0; i < rounds; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				for j := 0; j < 3; j++ {
					a := base + mem.Addr(j*mem.LineSize)
					tx.Store(a, tx.Load(a)+1)
				}
			})
		}
	}
	m.Run(body, body, body, body)
	if v := r.TurboViolations(); v != 0 {
		t.Fatalf("turbo violations = %d, want 0 (more than one uninstrumented tx in a cohort)", v)
	}
	if n := counterTotal(t, reg, "cohorts/turbo_commits"); n == 0 {
		t.Fatal("turbo never engaged across a contended run")
	}
}

// TestTurboOffNeverEngages: the plain Cohorts configuration must never
// enter turbo mode.
func TestTurboOffNeverEngages(t *testing.T) {
	m, r := newRT(t, 4, false)
	reg := metrics.New(4)
	r.SetMetrics(reg)
	body := func(c *sim.CPU) {
		base := mem.Addr(0x20000 + c.ID()*0x4000)
		for i := 0; i < 30; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				tx.Store(base, tx.Load(base)+1)
			})
		}
	}
	m.Run(body, body, body, body)
	if n := counterTotal(t, reg, "cohorts/turbo_commits"); n != 0 {
		t.Fatalf("turbo commits = %d with Turbo disabled", n)
	}
}

// TestReadOnlyLeavesWithoutSealing: read-only transactions exit their
// cohort without sealing (no batch is formed just to read).
func TestReadOnlyLeavesWithoutSealing(t *testing.T) {
	m, r := newRT(t, 2, false)
	reg := metrics.New(2)
	r.SetMetrics(reg)
	var sum mem.Word
	body := func(c *sim.CPU) {
		for i := 0; i < 20; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				sum = tx.Load(0x3000) + tx.Load(0x3040)
			})
		}
	}
	m.Run(body, body)
	_ = sum
	var total tm.Stats
	for i := 0; i < 2; i++ {
		total.Add(r.Stats(i))
	}
	if total.Commits != 40 {
		t.Fatalf("commits = %d, want 40", total.Commits)
	}
	if total.Seals != 0 {
		t.Fatalf("seals = %d for a read-only workload, want 0", total.Seals)
	}
	if n := counterTotal(t, reg, "cohorts/ro_commits"); n != 40 {
		t.Fatalf("ro_commits = %d, want 40", n)
	}
}

// TestBecomeIrrevocableDrainsToSolo is the ABI answer the issue requires:
// a Cohorts transaction that requests irrevocability must not panic — it
// unwinds, drains the live cohorts, and re-runs as a solo cohort.
func TestBecomeIrrevocableDrainsToSolo(t *testing.T) {
	m, r := newRT(t, 4, true)
	reg := metrics.New(4)
	r.SetMetrics(reg)
	soloRuns := 0
	irrevocable := func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			tx.Store(0x9000, tx.Load(0x9000)+1)
			if tx.Irrevocable() {
				soloRuns++
				return
			}
			tx.(tm.Irrevocably).BecomeIrrevocable()
			t.Error("unreachable: BecomeIrrevocable returned on the instrumented path")
		})
	}
	noise := func(c *sim.CPU) {
		base := mem.Addr(0x30000 + c.ID()*0x4000)
		for i := 0; i < 30; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				tx.Store(base, tx.Load(base)+1)
			})
		}
	}
	m.Run(irrevocable, noise, noise, noise)
	if soloRuns != 1 {
		t.Fatalf("solo body runs = %d, want 1", soloRuns)
	}
	if got := m.Mem.Load(0x9000); got != 1 {
		t.Fatalf("value = %d, want 1 (aborted attempt leaked a store?)", got)
	}
	var total tm.Stats
	for i := 0; i < 4; i++ {
		total.Add(r.Stats(i))
	}
	if total.Serial != 1 {
		t.Fatalf("serial commits = %d, want exactly 1", total.Serial)
	}
	if n := counterTotal(t, reg, "cohorts/solo_entries"); n != 1 {
		t.Fatalf("solo_entries = %d, want 1", n)
	}
	st, se, fi, or := r.Counters()
	if st != 0 || se != 0 || fi != 0 || or != 0 {
		t.Fatalf("cohort counters not drained after solo: %d %d %d %d", st, se, fi, or)
	}
	if m.Mem.Load(r.solo) != 0 {
		t.Fatal("solo latch left held")
	}
}

// TestFlatNesting: a nested Atomic must run inside the enclosing
// transaction, not form a second cohort member.
func TestFlatNesting(t *testing.T) {
	m, r := newRT(t, 1, false)
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			tx.Store(0xE000, 1)
			r.Atomic(c, func(inner tm.Tx) {
				inner.Store(0xE008, 2)
			})
			tx.Store(0xE010, 3)
		})
	})
	if m.Mem.Load(0xE000) != 1 || m.Mem.Load(0xE008) != 2 || m.Mem.Load(0xE010) != 3 {
		t.Fatal("nested stores lost")
	}
	if st := r.Stats(0); st.Commits != 1 {
		t.Fatalf("commits = %d, want 1 (flat nesting)", st.Commits)
	}
}

// TestAllocInsideTransaction: the heap refills inline (writes are
// buffered, so nothing speculative is at risk).
func TestAllocInsideTransaction(t *testing.T) {
	m, r := newRT(t, 1, false)
	var a mem.Addr
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			a = tx.Alloc(64)
			tx.Store(a, 9)
		})
	})
	if got := m.Mem.Load(a); got != 9 {
		t.Fatalf("value = %d", got)
	}
	if st := r.Stats(0); st.Commits != 1 || st.MallocAborts != 0 {
		t.Fatalf("stats = %+v, want one commit and no malloc aborts", st)
	}
}

// TestDeterminism: two identical machines running the same contended
// workload must agree exactly on simulated time and outcome counters.
func TestDeterminism(t *testing.T) {
	for _, turbo := range []bool{false, true} {
		run := func() (uint64, tm.Stats) {
			m, r := newRT(t, 4, turbo)
			body := func(c *sim.CPU) {
				for i := 0; i < 40; i++ {
					r.Atomic(c, func(tx tm.Tx) {
						tx.Store(0xB000, tx.Load(0xB000)+1)
						tx.Store(0xB000+mem.Addr(c.ID())*mem.LineSize+0x100, mem.Word(i))
					})
				}
			}
			d := m.Run(body, body, body, body)
			var total tm.Stats
			for i := 0; i < 4; i++ {
				total.Add(r.Stats(i))
			}
			return d, total
		}
		d1, s1 := run()
		d2, s2 := run()
		if d1 != d2 || s1 != s2 {
			t.Fatalf("turbo=%v nondeterministic: %d/%+v vs %d/%+v", turbo, d1, s1, d2, s2)
		}
	}
}
