package harness

import (
	"strconv"
	"strings"
	"testing"
)

// TestFig4Fig5Fig6SmokeTiny executes the three big sweeps at a very small
// scale: every cell must be produced and be positive, and the qualitative
// STM-vs-ASF ordering must hold on at least one representative app.
func TestFig4Fig5Fig6SmokeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	fig4, err := Fig4(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4) != 8 {
		t.Fatalf("fig4 tables = %d", len(fig4))
	}
	for _, tab := range fig4 {
		if len(tab.Rows) != 6 { // 4 ASF + STM + Sequential
			t.Fatalf("%s: rows = %d", tab.Title, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			for col := 1; col < len(row); col++ {
				if row[col] == "-" {
					continue
				}
				v, err := strconv.ParseFloat(row[col], 64)
				if err != nil || v <= 0 {
					t.Fatalf("%s %s: bad cell %q", tab.Title, row[0], row[col])
				}
			}
		}
	}
	// genome is the first table; STM (row 4) slower than LLB-256 (row 1)
	// at one thread (column 1).
	g := fig4[0]
	asf := cellVal(t, g, 1, 1)
	stm := cellVal(t, g, 4, 1)
	if stm <= asf {
		t.Fatalf("genome: STM %.3f not slower than ASF %.3f", stm, asf)
	}

	fig5, err := Fig5(Options{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5) != 8 {
		t.Fatalf("fig5 tables = %d", len(fig5))
	}
	for _, tab := range fig5 {
		for _, row := range tab.Rows {
			for col := 1; col < len(row); col++ {
				if v := cellVal(t, tab, 0, col); v <= 0 {
					t.Fatalf("%s: nonpositive throughput %v", tab.Title, v)
				}
				_ = row
			}
		}
	}

	fig6, err := Fig6(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6) != 8 {
		t.Fatalf("fig6 tables = %d", len(fig6))
	}
	for _, tab := range fig6 {
		for _, row := range tab.Rows {
			tot, err := strconv.ParseFloat(row[len(row)-1], 64)
			if err != nil || tot < 0 || tot > 100 {
				t.Fatalf("%s: abort total %q out of range", tab.Title, row[len(row)-1])
			}
		}
	}
}

// TestRunDispatch exercises the name dispatcher for each experiment.
func TestRunDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	for _, name := range []string{"fig3", "table1"} {
		tabs, err := Run(name, Options{Scale: 0.1})
		if err != nil || len(tabs) == 0 {
			t.Fatalf("Run(%s): %v, %d tables", name, err, len(tabs))
		}
	}
}

// TestHybridSmokeTiny executes E11 at a very small scale: every table must
// be produced, the intset throughput cells must be positive, and the hybrid
// runtime must record concurrent software commits (the subsystem's whole
// point) with zero serial entries on the capacity-bound intset cells.
func TestHybridSmokeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	rep, err := RunReport("hybrid", Options{Scale: 0.05, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 2 apps × 2 runtimes × 4 threads + 6 intset cells × 2 runtimes.
	if want := 2*2*4 + 6*2; len(rep.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), want)
	}
	// 2 STAMP tables + 2 intset tables + summary + abort attribution.
	if len(rep.Tables) != 6 {
		t.Fatalf("tables = %d, want 6", len(rep.Tables))
	}
	swSeen := false
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Fatalf("cell %q failed: %s", c.Label, c.Err)
		}
		st := c.Sim.Stats
		if strings.Contains(c.Label, "HyTM") {
			if st.SWCommits > 0 {
				swSeen = true
			}
			if g, ok := c.Sim.Metrics.Gauge("tm/sw_commits"); !ok || g.Total != st.SWCommits {
				t.Fatalf("cell %q: tm/sw_commits gauge %+v disagrees with stats %d", c.Label, g, st.SWCommits)
			}
			if strings.Contains(c.Label, "linkedlist") || strings.Contains(c.Label, "rbtree") {
				if st.Serial != 0 {
					t.Fatalf("cell %q: %d serial entries on the hybrid path", c.Label, st.Serial)
				}
				if st.SWCommits == 0 {
					t.Fatalf("cell %q: capacity-bound cell committed nothing in software", c.Label)
				}
			}
		} else if st.SWCommits != 0 || st.SeqAborts != 0 {
			t.Fatalf("cell %q: non-hybrid runtime reported hybrid counters: %+v", c.Label, st)
		}
	}
	if !swSeen {
		t.Fatal("no cell recorded concurrent software commits")
	}
}

// TestServerSmokeTiny executes E16 at a very small scale: every cell must
// complete, the latency quantiles must be populated, monotone, and present
// in the report's sim sections, and the multi-socket cells must record
// cross-socket directory traffic.
func TestServerSmokeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	rep, err := RunReport("server", Options{Scale: 0.02, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	nCells := len(serverTopologies) * len(serverRuntimes) * len(serverLoads)
	if len(rep.Cells) != nCells {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), nCells)
	}
	// One quantile table per topology + per-socket hops + ranking + abort
	// attribution.
	if want := len(serverTopologies) + 3; len(rep.Tables) != want {
		t.Fatalf("tables = %d, want %d", len(rep.Tables), want)
	}
	xsockSeen := false
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Fatalf("cell %q failed: %s", c.Label, c.Err)
		}
		s := c.Sim
		if !(s.P50Cycles > 0 && s.P50Cycles <= s.P95Cycles &&
			s.P95Cycles <= s.P99Cycles && s.P99Cycles <= s.P999Cycles) {
			t.Fatalf("cell %q: bad quantiles p50=%v p95=%v p99=%v p999=%v",
				c.Label, s.P50Cycles, s.P95Cycles, s.P99Cycles, s.P999Cycles)
		}
		g, _ := s.Metrics.Gauge("cache/xsock_hops")
		if strings.Contains(c.Label, "1x8") {
			if g.Total != 0 {
				t.Fatalf("cell %q: single-socket cell recorded %d cross-socket hops", c.Label, g.Total)
			}
		} else if g.Total > 0 {
			xsockSeen = true
		}
	}
	if !xsockSeen {
		t.Fatal("no multi-socket cell recorded cross-socket hops")
	}
}
