package harness

import (
	"fmt"

	"asfstack/internal/adaptive"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
	"asfstack/internal/txprof"
)

// The BenchReport JSON schema. Versioning contract: additions of new fields
// bump nothing (consumers must ignore unknown fields); renames, removals,
// or semantic changes of existing fields bump ReportVersion. The sim
// sections are deterministic — byte-identical for a given seed and scale at
// any Options.Parallel — while the host section is wall-clock and varies.
const (
	// ReportSchema identifies a BenchReport document.
	ReportSchema = "asfstack/bench-report"
	// ReportVersion is the current schema version. Version 2 added the
	// open-loop sojourn-time quantile fields (p50_cyc … p999_cyc) to
	// CellSim; consumers accept 1..ReportVersion and treat the latency
	// fields as absent in older documents.
	ReportVersion = 2
)

// BenchReport is the machine-readable result of one asfbench invocation:
// every experiment run, with its tables, per-cell simulated measurements
// and host-side timing.
type BenchReport struct {
	Schema  string  `json:"schema"`
	Version int     `json:"version"`
	Scale   float64 `json:"scale"`
	// Engine is the execution engine every experiment ran under ("serial"
	// or "epoch"). benchjson -compare refuses to diff reports whose engines
	// differ unless explicitly told the comparison is intended — engine
	// changes sim nothing, but a compare across engines usually means a
	// mislabeled baseline.
	Engine string `json:"engine,omitempty"`

	Experiments []*ExperimentReport `json:"experiments"`
}

// NewBenchReport returns an empty report with the schema header filled in.
func NewBenchReport(scale float64) *BenchReport {
	if scale <= 0 {
		scale = 1
	}
	return &BenchReport{Schema: ReportSchema, Version: ReportVersion, Scale: scale}
}

// ExperimentReport is one experiment's full outcome.
type ExperimentReport struct {
	Name string `json:"name"`
	// Engine and Workers record how the experiment was executed on the
	// host: the simulator engine mode and the worker-pool size that drained
	// the cells. Host provenance only — the sim sections are identical for
	// every combination.
	Engine  string `json:"engine,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Err carries the joined cell errors when some cells failed; the
	// tables are still present with ERR entries.
	Err    string        `json:"err,omitempty"`
	Tables []*Table      `json:"tables"`
	Cells  []*CellReport `json:"cells"`
}

// CellReport is one cell — one simulated machine built, run and measured —
// in an ExperimentReport. The Sim section is deterministic; the Host
// section is measured on the host and varies run to run.
type CellReport struct {
	Label string `json:"label"`
	Err   string `json:"err,omitempty"`

	Sim *CellSim `json:"sim,omitempty"`
	// Engine is the epoch engine's activity for the cell, present only when
	// the cell ran under the epoch engine. It lives OUTSIDE the sim section
	// on purpose: engine counters describe host-side speculation (how much
	// full-path work the shadow plane saved), not simulated behaviour, and
	// folding them into CellSim or the metrics registry would break the
	// byte-identical-sim-sections contract between engines.
	Engine *CellEngine `json:"engine,omitempty"`
	Host   CellHost    `json:"host"`

	// TraceEvents/TraceStart carry the cell's sim trace when
	// Options.Trace was set. They are exported through the Chrome trace
	// writer, not the JSON report (volume).
	TraceEvents []sim.TraceEvent `json:"-"`
	TraceStart  uint64           `json:"-"`
}

// CellSim is the simulated (deterministic) section of a cell report.
type CellSim struct {
	// Cycles is the simulated duration of the measured phase.
	Cycles uint64 `json:"cycles"`
	// Stats are the TM runtime's outcome counters, summed over cores.
	Stats tm.Stats `json:"stats"`
	// Metrics is the cell's full registry snapshot.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`

	// Wasted-work accounting from the per-category cycle breakdown:
	// WastedCycles is time burned in aborted transaction attempts
	// (sim.CatAbort) summed over cores, BusyCycles the all-category total,
	// WastedPct = 100*wasted/busy. Additive fields — no version bump.
	WastedCycles uint64  `json:"wasted_cycles"`
	BusyCycles   uint64  `json:"busy_cycles"`
	WastedPct    float64 `json:"wasted_pct"`

	// Sojourn-time quantiles (simulated cycles, arrival → commit) for
	// open-loop server cells (E16); all zero elsewhere. Deterministic —
	// they come from the sojourn histogram in the metrics snapshot.
	// Schema version 2.
	P50Cycles  float64 `json:"p50_cyc,omitempty"`
	P95Cycles  float64 `json:"p95_cyc,omitempty"`
	P99Cycles  float64 `json:"p99_cyc,omitempty"`
	P999Cycles float64 `json:"p999_cyc,omitempty"`

	// Switches is the adaptive selector's per-window decision log when the
	// cell ran an Adaptive runtime (E13's machine-readable form).
	Switches []adaptive.Switch `json:"switches,omitempty"`
	// Profile is the transaction-level flight recorder snapshot when the
	// cell recorded one (cmd/tmprof reads this).
	Profile *txprof.Profile `json:"txprof,omitempty"`
}

// CellEngine is the epoch engine's host-side activity section of a cell
// report: machine-wide totals of the per-core engine counters.
type CellEngine struct {
	Commits      uint64 `json:"epoch_commits"`
	Rollbacks    uint64 `json:"epoch_rollbacks"`
	WastedCycles uint64 `json:"epoch_wasted_cyc"`
	Hits         uint64 `json:"epoch_hits"`
}

// CellHost is the host-side (non-deterministic) section of a cell report.
type CellHost struct {
	// WallMS is the cell's host wall time, milliseconds.
	WallMS float64 `json:"wall_ms"`
	// QueueMS is how long the cell waited in the worker pool before a
	// worker picked it up, milliseconds.
	QueueMS float64 `json:"queue_ms"`
}

// CellRecord collects one cell's simulated outcome during its run; the
// scheduler turns it into a CellReport. A nil record is inert so cell
// bodies can record unconditionally.
type CellRecord struct {
	sim         *CellSim
	engine      *CellEngine
	traceEvents []sim.TraceEvent
	traceStart  uint64
}

// Observe records the cell's simulated measurements (once, after the run).
func (rec *CellRecord) Observe(cycles uint64, stats tm.Stats, m *metrics.Snapshot) {
	if rec == nil {
		return
	}
	rec.sim = &CellSim{Cycles: cycles, Stats: stats, Metrics: m}
}

// ObserveBreakdown folds the cell's per-category cycle breakdown into the
// wasted-work fields. Call after Observe.
func (rec *CellRecord) ObserveBreakdown(b sim.Breakdown) {
	if rec == nil || rec.sim == nil {
		return
	}
	var busy uint64
	for _, v := range b {
		busy += v
	}
	rec.sim.WastedCycles = b[sim.CatAbort]
	rec.sim.BusyCycles = busy
	if busy > 0 {
		rec.sim.WastedPct = 100 * float64(b[sim.CatAbort]) / float64(busy)
	}
}

// ObserveLatency records the cell's sojourn-time quantiles (open-loop
// server cells). Call after Observe.
func (rec *CellRecord) ObserveLatency(p50, p95, p99, p999 float64) {
	if rec == nil || rec.sim == nil {
		return
	}
	rec.sim.P50Cycles = p50
	rec.sim.P95Cycles = p95
	rec.sim.P99Cycles = p99
	rec.sim.P999Cycles = p999
}

// ObserveSwitches attaches the adaptive selector's decision log (no-op on
// empty logs). Call after Observe.
func (rec *CellRecord) ObserveSwitches(sw []adaptive.Switch) {
	if rec == nil || rec.sim == nil || len(sw) == 0 {
		return
	}
	rec.sim.Switches = sw
}

// ObserveProfile attaches the cell's flight-recorder snapshot (no-op on
// nil). Call after Observe.
func (rec *CellRecord) ObserveProfile(p *txprof.Profile) {
	if rec == nil || rec.sim == nil || p == nil {
		return
	}
	rec.sim.Profile = p
}

// ObserveEngine attaches the cell's epoch-engine activity counters (no-op
// when they are all zero — i.e. under the serial engine).
func (rec *CellRecord) ObserveEngine(s sim.EngineStats) {
	if rec == nil || s == (sim.EngineStats{}) {
		return
	}
	rec.engine = &CellEngine{
		Commits:      s.Commits,
		Rollbacks:    s.Rollbacks,
		WastedCycles: s.WastedCycles,
		Hits:         s.Hits,
	}
}

// ObserveTrace attaches the cell's sim trace (no-op on empty events).
func (rec *CellRecord) ObserveTrace(events []sim.TraceEvent, start uint64) {
	if rec == nil || len(events) == 0 {
		return
	}
	rec.traceEvents = events
	rec.traceStart = start
}

// RunReport executes one named experiment and returns its full report:
// tables (the experiment's own plus the abort-attribution table), and one
// CellReport per cell in cell order. Like Run, a non-nil error alongside a
// non-nil report means some cells failed; a nil report means the experiment
// name was unknown.
func RunReport(name string, o Options) (*ExperimentReport, error) {
	var cells []*CellReport
	o.sink = &cells
	tables, err := runExperiment(name, o)
	if tables == nil {
		return nil, err
	}
	rep := &ExperimentReport{Name: name, Engine: o.Engine.String(), Workers: o.workers(), Tables: tables, Cells: cells}
	if err != nil {
		rep.Err = err.Error()
	}
	rep.Tables = append(rep.Tables, abortTable(name, cells))
	return rep, err
}

// abortTable builds the experiment-wide abort-attribution table: one row
// per cell (configuration), one column per hardware abort reason plus the
// software categories, raw counts. It is assembled from the deterministic
// cell reports in cell order, so its text is identical for any worker
// count.
func abortTable(name string, cells []*CellReport) *Table {
	header := []string{"cell", "commits", "serial", "sw", "seal"}
	for r := 1; r < sim.NumAbortReasons; r++ { // skip AbortNone
		header = append(header, sim.AbortReason(r).String())
	}
	header = append(header, "malloc", "stm", "seq", "wasted-cyc", "wasted%")
	t := &Table{
		Title:  fmt.Sprintf("%s — abort attribution (counts; one row per configuration)", name),
		Header: header,
		Note: "explicit includes malloc-refill aborts; stm counts software validation aborts; " +
			"sw = concurrent software-fallback commits, seq = seqlock-induced hardware aborts (hybrid runtime), " +
			"seal = cohort commit batches (cohorts runtime); " +
			"wasted-cyc/wasted% = cycles burned in aborted attempts and their share of all busy cycles",
	}
	for _, c := range cells {
		if c.Sim == nil {
			row := []any{c.Label}
			for range t.Header[1:] {
				row = append(row, "ERR")
			}
			t.Add(row...)
			continue
		}
		st := c.Sim.Stats
		row := []any{c.Label, st.Commits, st.Serial, st.SWCommits, st.Seals}
		for r := 1; r < sim.NumAbortReasons; r++ {
			row = append(row, st.Aborts[r])
		}
		row = append(row, st.MallocAborts, st.STMAborts, st.SeqAborts,
			c.Sim.WastedCycles, fmt.Sprintf("%.1f", c.Sim.WastedPct))
		t.Add(row...)
	}
	return t
}
