package harness

import (
	"fmt"

	"asfstack/internal/litmus"
)

// litmusSeed is the fixed exploration seed for the harness run: one seed is
// one deterministic sequence of interleavings, so the tables are
// reproducible bit for bit (go test exercises additional seeds).
const litmusSeed = 1

// Litmus — E12: the cross-runtime litmus conformance matrix. Every litmus
// test runs on every runtime configuration under the deterministic schedule
// explorer; each cell's outcomes are judged against the oracle envelope for
// that runtime's isolation class. A violation fails the cell loudly and
// shows up as VIOL in the matrix — its message carries the (seed, iteration)
// replay pointer.
func Litmus(o Options) ([]*Table, error) {
	iters := int(250 * o.scale())
	if iters < 40 {
		iters = 40
	}
	matrix := litmus.Matrix()
	nR := len(matrix)

	type obs struct {
		distinct int // distinct outcomes observed
		allowed  int // envelope size
		viol     int // outcomes outside the envelope
		iters    int // interleavings actually run
		cycles   uint64
	}
	res := make([]slot[obs], len(litmus.Tests)*nR)
	var cells []cell
	for ti, tt := range litmus.Tests {
		for ri, rc := range matrix {
			tt, rc := tt, rc
			dst := &res[ti*nR+ri]
			cells = append(cells, cell{
				label: fmt.Sprintf("litmus %-22s %-11s", tt.Name, rc.Label),
				run: func(rec *CellRecord) (string, error) {
					r := litmus.Explore(tt, rc, litmus.ExploreOptions{Seed: litmusSeed, Iters: iters, Engine: o.Engine, EpochLen: o.EpochLen})
					rec.Observe(r.Cycles, r.Stats, nil)
					dst.set(obs{
						distinct: len(r.Outcomes),
						allowed:  len(r.Allowed),
						viol:     len(r.Violations),
						iters:    r.Iters,
						cycles:   r.Cycles,
					})
					if len(r.Violations) > 0 {
						return "", fmt.Errorf("%s", r.Violations[0])
					}
					return fmt.Sprintf("%d/%d outcomes", len(r.Outcomes), len(r.Allowed)), nil
				},
			})
		}
	}
	err := runCells(cells, o)

	// Matrix: one row per test, one column per runtime. A conforming cell
	// reads observed/allowed (how much of the envelope the explorer reached);
	// a violating cell reads VIOL:n.
	header := []string{"test"}
	for _, rc := range matrix {
		header = append(header, rc.Label)
	}
	mt := &Table{
		Title:  "E12 — litmus conformance matrix (distinct outcomes observed / envelope size)",
		Header: header,
		Note: fmt.Sprintf("seed %d, %d interleavings per cell; strong runtimes judged against the "+
			"strong envelope, weak ones against the weak envelope; VIOL:n = n outcomes outside it",
			litmusSeed, iters),
	}
	for ti, tt := range litmus.Tests {
		row := []any{tt.Name}
		for ri := range matrix {
			s := res[ti*nR+ri]
			switch {
			case !s.ok:
				row = append(row, "ERR")
			case s.val.viol > 0:
				row = append(row, fmt.Sprintf("VIOL:%d", s.val.viol))
			default:
				row = append(row, fmt.Sprintf("%d/%d", s.val.distinct, s.val.allowed))
			}
		}
		mt.Add(row...)
	}

	// Per-runtime summary: coverage and conformance totals per column.
	st := &Table{
		Title:  "E12 — litmus conformance by runtime",
		Header: []string{"runtime", "isolation", "tests", "interleavings", "distinct outcomes", "violations", "sim Mcycles"},
		Note:   "interleavings and cycles sum over the runtime's tests; cycles are simulated, not host time",
	}
	for ri, rc := range matrix {
		var itersSum, distinct, viol int
		var cyc uint64
		ok := true
		for ti := range litmus.Tests {
			s := res[ti*nR+ri]
			if !s.ok {
				ok = false
				break
			}
			itersSum += s.val.iters
			distinct += s.val.distinct
			viol += s.val.viol
			cyc += s.val.cycles
		}
		if !ok {
			st.Add(rc.Label, rc.Isolation.String(), len(litmus.Tests), "ERR", "ERR", "ERR", "ERR")
			continue
		}
		st.Add(rc.Label, rc.Isolation.String(), len(litmus.Tests), itersSum, distinct, viol,
			float64(cyc)/1e6)
	}
	return []*Table{mt, st}, err
}
