package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"asfstack/internal/sim"
	"asfstack/internal/stamp"
)

func renderTables(tables []*Table) string {
	var b strings.Builder
	for _, t := range tables {
		t.Fprint(&b)
	}
	return b.String()
}

// TestFig5ParallelDeterminism: the parallel and sequential schedules of the
// same experiment must produce byte-identical tables — cells are isolated
// machines and assembly happens in figure order, so worker count cannot
// leak into results.
func TestFig5ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	render := func(parallel int) string {
		tables, err := Fig5(Options{Scale: 0.03, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return renderTables(tables)
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("parallel tables differ from sequential:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", seq, par)
	}
}

// simSections marshals every cell's deterministic section (plus the
// rendered tables) of one experiment run into a single byte string.
func simSections(t *testing.T, name string, o Options) string {
	t.Helper()
	rep, err := RunReport(name, o)
	if err != nil {
		t.Fatalf("%s (engine=%s parallel=%d): %v", name, o.Engine, o.Parallel, err)
	}
	var b strings.Builder
	b.WriteString(renderTables(rep.Tables))
	for _, c := range rep.Cells {
		j, err := json.Marshal(c.Sim)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(c.Label)
		b.WriteString(": ")
		b.Write(j)
		b.WriteString("\n")
	}
	return b.String()
}

// TestCrossEngineExperimentDeterminism is the cross-engine conformance
// matrix: every registered experiment runs under {serial, epoch} × worker
// counts {1, N}, and all four runs' sim sections — every cell's cycles,
// stats, metrics snapshot, profile, and every rendered table — must be
// byte-identical. This is the harness-level half of the epoch engine's
// determinism contract (internal/sim/engine_test.go is the machine-level
// half); it is what lets benchjson -compare treat engine as provenance
// rather than a result axis.
func TestCrossEngineExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	// Per-experiment scales keep the full matrix inside test-suite time;
	// identity must hold at any scale, so small is as strong as large.
	scales := map[string]float64{
		"fig4": 0.02, "fig6": 0.02, "adaptive": 0.02, "txprof": 0.03,
		"grid64": 0.01, "litmus": 0.02, "server": 0.02,
	}
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			scale := scales[name]
			if scale == 0 {
				scale = 0.03
			}
			base := simSections(t, name, Options{Scale: scale, Parallel: 1, Engine: sim.EngineSerial})
			for _, o := range []Options{
				{Parallel: 4, Engine: sim.EngineSerial},
				{Parallel: 1, Engine: sim.EngineEpoch},
				{Parallel: 4, Engine: sim.EngineEpoch},
				// A degenerate epoch length reseeds the shadow plane on
				// nearly every access and must change nothing.
				{Parallel: 4, Engine: sim.EngineEpoch, EpochLen: 300},
			} {
				o.Scale = scale
				if got := simSections(t, name, o); got != base {
					t.Fatalf("%s: sim sections differ (engine=%s parallel=%d epochLen=%d) from serial/parallel=1",
						name, o.Engine, o.Parallel, o.EpochLen)
				}
			}
		})
	}
}

// TestRunCellsCollectsFailures drives the scheduler directly: erroring and
// panicking cells must be reported as CellErrors in cell order while the
// healthy cells still complete.
func TestRunCellsCollectsFailures(t *testing.T) {
	var good slot[float64]
	cells := []cell{
		{label: "bad-error", run: func(*CellRecord) (string, error) {
			return "", errors.New("boom")
		}},
		{label: "good", run: func(*CellRecord) (string, error) {
			good.set(1.5)
			return "ok", nil
		}},
		{label: "bad-panic", run: func(*CellRecord) (string, error) {
			panic("kaboom")
		}},
	}
	var prog strings.Builder
	err := runCells(cells, Options{Parallel: 2, Progress: &prog})
	if err == nil {
		t.Fatal("failures not reported")
	}
	if !good.ok || good.val != 1.5 {
		t.Fatalf("healthy cell did not complete: %+v", good)
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v does not unwrap to *CellError", err)
	}
	msg := err.Error()
	// Joined in cell order: the erroring cell before the panicking one.
	ei, pi := strings.Index(msg, "bad-error"), strings.Index(msg, "bad-panic")
	if ei < 0 || pi < 0 || ei > pi {
		t.Fatalf("cell errors missing or out of order: %q", msg)
	}
	if !strings.Contains(msg, "kaboom") {
		t.Fatalf("panic not converted to error: %q", msg)
	}
	if !strings.Contains(prog.String(), "FAILED") {
		t.Fatalf("progress stream missing failure line:\n%s", prog.String())
	}
}

// TestRunReportsFailingCells injects failures into fig3's workload entry
// point: Run must return the full table with ERR cells, join one CellError
// per failure, and keep every healthy row intact — never crash.
func TestRunReportsFailingCells(t *testing.T) {
	orig := stampRun
	defer func() { stampRun = orig }()
	stampRun = func(cfg stamp.Config) (stamp.Result, error) {
		switch {
		case cfg.App == "ssca2" && !cfg.Native:
			return stamp.Result{}, errors.New("injected failure")
		case cfg.App == "genome" && cfg.Native:
			panic("injected panic")
		}
		return stamp.Result{Config: cfg, Millis: 1.0}, nil
	}

	tables, err := Run("fig3", Options{Scale: 0.1, Parallel: 4})
	if err == nil {
		t.Fatal("failing cells produced no error")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v does not unwrap to *CellError", err)
	}
	for _, want := range []string{"ssca2", "injected failure", "genome", "injected panic"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if len(tables) != 2 { // the fig3 table plus the abort-attribution table
		t.Fatalf("tables = %d, want 2 despite failures", len(tables))
	}
	out := renderTables(tables)
	if !strings.Contains(out, "ERR") {
		t.Fatalf("failed cells not marked ERR:\n%s", out)
	}
	// Healthy rows must carry real values.
	if !strings.Contains(out, fmt.Sprintf("%.2f", 1.0)) {
		t.Fatalf("healthy cells missing from table:\n%s", out)
	}
}
