package harness

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"asfstack/internal/stamp"
)

func renderTables(tables []*Table) string {
	var b strings.Builder
	for _, t := range tables {
		t.Fprint(&b)
	}
	return b.String()
}

// TestFig5ParallelDeterminism: the parallel and sequential schedules of the
// same experiment must produce byte-identical tables — cells are isolated
// machines and assembly happens in figure order, so worker count cannot
// leak into results.
func TestFig5ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	render := func(parallel int) string {
		tables, err := Fig5(Options{Scale: 0.03, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return renderTables(tables)
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("parallel tables differ from sequential:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", seq, par)
	}
}

// TestRunCellsCollectsFailures drives the scheduler directly: erroring and
// panicking cells must be reported as CellErrors in cell order while the
// healthy cells still complete.
func TestRunCellsCollectsFailures(t *testing.T) {
	var good slot[float64]
	cells := []cell{
		{label: "bad-error", run: func(*CellRecord) (string, error) {
			return "", errors.New("boom")
		}},
		{label: "good", run: func(*CellRecord) (string, error) {
			good.set(1.5)
			return "ok", nil
		}},
		{label: "bad-panic", run: func(*CellRecord) (string, error) {
			panic("kaboom")
		}},
	}
	var prog strings.Builder
	err := runCells(cells, Options{Parallel: 2, Progress: &prog})
	if err == nil {
		t.Fatal("failures not reported")
	}
	if !good.ok || good.val != 1.5 {
		t.Fatalf("healthy cell did not complete: %+v", good)
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v does not unwrap to *CellError", err)
	}
	msg := err.Error()
	// Joined in cell order: the erroring cell before the panicking one.
	ei, pi := strings.Index(msg, "bad-error"), strings.Index(msg, "bad-panic")
	if ei < 0 || pi < 0 || ei > pi {
		t.Fatalf("cell errors missing or out of order: %q", msg)
	}
	if !strings.Contains(msg, "kaboom") {
		t.Fatalf("panic not converted to error: %q", msg)
	}
	if !strings.Contains(prog.String(), "FAILED") {
		t.Fatalf("progress stream missing failure line:\n%s", prog.String())
	}
}

// TestRunReportsFailingCells injects failures into fig3's workload entry
// point: Run must return the full table with ERR cells, join one CellError
// per failure, and keep every healthy row intact — never crash.
func TestRunReportsFailingCells(t *testing.T) {
	orig := stampRun
	defer func() { stampRun = orig }()
	stampRun = func(cfg stamp.Config) (stamp.Result, error) {
		switch {
		case cfg.App == "ssca2" && !cfg.Native:
			return stamp.Result{}, errors.New("injected failure")
		case cfg.App == "genome" && cfg.Native:
			panic("injected panic")
		}
		return stamp.Result{Config: cfg, Millis: 1.0}, nil
	}

	tables, err := Run("fig3", Options{Scale: 0.1, Parallel: 4})
	if err == nil {
		t.Fatal("failing cells produced no error")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v does not unwrap to *CellError", err)
	}
	for _, want := range []string{"ssca2", "injected failure", "genome", "injected panic"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if len(tables) != 2 { // the fig3 table plus the abort-attribution table
		t.Fatalf("tables = %d, want 2 despite failures", len(tables))
	}
	out := renderTables(tables)
	if !strings.Contains(out, "ERR") {
		t.Fatalf("failed cells not marked ERR:\n%s", out)
	}
	// Healthy rows must carry real values.
	if !strings.Contains(out, fmt.Sprintf("%.2f", 1.0)) {
		t.Fatalf("healthy cells missing from table:\n%s", out)
	}
}
