package harness

import (
	"fmt"

	"asfstack/internal/intset"
	"asfstack/internal/sim"
)

// grid64Threads widens the paper's 1–8 thread axis to the simulator's full
// 64-core machine (E15). The 8-thread column overlaps Fig. 5/E13 so the
// widened grid anchors against the paper-scale numbers.
var grid64Threads = []int{8, 16, 32, 64}

// grid64Panels are the large-range Fig. 5 panels — the ones with enough
// keys to keep 64 threads busy rather than purely colliding.
var grid64Panels = []intset.Config{
	{Structure: "linkedlist", Range: 512, UpdatePct: 20},
	{Structure: "skiplist", Range: 8192, UpdatePct: 20},
	{Structure: "rbtree", Range: 8192, UpdatePct: 20},
	{Structure: "hashset", Range: 128000, UpdatePct: 100},
}

// grid64Runtimes is the E13 runtime field re-run at 64 threads: the four
// static families the adaptive selector switches among, plus the selector.
var grid64Runtimes = []string{"LLB-256", "HyTM-8", "STM", "Cohorts-turbo", "Adaptive-8"}

// grid64Sweep is the epoch-length axis of the E15 sweep table. The sim
// column must be constant along it — EpochLen is a host-performance knob,
// and the table shows the simulated cycles staying put while the engine's
// host-side counters move.
var grid64Sweep = []uint64{1_000, 10_000, sim.DefaultEpochLen, 1_000_000}

// Grid64 — E15: the widened 64-core grid. Three parts: the large Fig. 5
// panels on ASF-TM across 8–64 threads, the E13 runtime field head-to-head
// at 64 threads, and an epoch-length sweep on one 64-thread cell pinning
// that the epoch engine's knob never reaches simulated results. The whole
// experiment honours Options.Engine like every other; the sweep cells force
// the epoch engine since the sweep is about it.
func Grid64(o Options) ([]*Table, error) {
	ops := int(1500 * o.scale())
	nP, nT := len(grid64Panels), len(grid64Threads)
	thr := make([]slot[float64], nP*nT)
	var cells []cell
	for pi, panel := range grid64Panels {
		for ti, th := range grid64Threads {
			dst := &thr[pi*nT+ti]
			cfg := panel
			cfg.Runtime = "LLB-256"
			cfg.Threads = th
			cfg.OpsPerThread = ops
			cfg.Trace = o.Trace
			cfg.Profile = o.Profile
			cfg.Engine = o.Engine
			cfg.EpochLen = o.EpochLen
			cells = append(cells, cell{
				label: fmt.Sprintf("grid64 %-10s r=%-6d LLB-256 t=%d", panel.Structure, panel.Range, th),
				run: func(rec *CellRecord) (string, error) {
					r, err := intsetRun(cfg)
					if err != nil {
						return "", err
					}
					recordIntset(rec, r)
					dst.set(r.Throughput())
					return fmt.Sprintf("%.2f tx/us", r.Throughput()), nil
				},
			})
		}
	}

	nR := len(grid64Runtimes)
	rtThr := make([]slot[float64], nP*nR)
	for pi, panel := range grid64Panels {
		for ri, rt := range grid64Runtimes {
			dst := &rtThr[pi*nR+ri]
			cfg := panel
			cfg.Runtime = rt
			cfg.Threads = 64
			cfg.OpsPerThread = ops
			cfg.Trace = o.Trace
			cfg.Profile = o.Profile
			cfg.Engine = o.Engine
			cfg.EpochLen = o.EpochLen
			cells = append(cells, cell{
				label: fmt.Sprintf("grid64 %-10s r=%-6d %-13s t=64", panel.Structure, panel.Range, rt),
				run: func(rec *CellRecord) (string, error) {
					r, err := intsetRun(cfg)
					if err != nil {
						return "", err
					}
					recordIntset(rec, r)
					dst.set(r.Throughput())
					return fmt.Sprintf("%.2f tx/us", r.Throughput()), nil
				},
			})
		}
	}

	type sweepObs struct {
		cycles uint64
		thr    float64
		eng    sim.EngineStats
	}
	sweep := make([]slot[sweepObs], len(grid64Sweep))
	for si, el := range grid64Sweep {
		dst := &sweep[si]
		cfg := intset.Config{
			Structure: "rbtree", Runtime: "LLB-256", Threads: 64,
			Range: 8192, UpdatePct: 20, OpsPerThread: ops,
			Trace: o.Trace, Profile: o.Profile,
			Engine: sim.EngineEpoch, EpochLen: el,
		}
		cells = append(cells, cell{
			label: fmt.Sprintf("grid64 sweep rbtree epoch-len=%-8d t=64", el),
			run: func(rec *CellRecord) (string, error) {
				r, err := intsetRun(cfg)
				if err != nil {
					return "", err
				}
				recordIntset(rec, r)
				dst.set(sweepObs{cycles: r.Cycles, thr: r.Throughput(), eng: r.EngineStats})
				return fmt.Sprintf("%d cycles", r.Cycles), nil
			},
		})
	}
	err := runCells(cells, o)

	var tables []*Table
	scal := &Table{
		Title:  "E15 — 64-core grid: Fig. 5 large panels on ASF-TM (LLB-256), throughput (tx/µs)",
		Header: []string{"cell", "8", "16", "32", "64"},
		Note:   "the 8-thread column matches the corresponding Fig. 5 cells; higher is better",
	}
	for pi, panel := range grid64Panels {
		row := []any{fmt.Sprintf("%s/%d", panel.Structure, panel.Range)}
		for ti := range grid64Threads {
			row = append(row, thr[pi*nT+ti].cell())
		}
		scal.Add(row...)
	}
	tables = append(tables, scal)

	rtab := &Table{
		Title:  "E15 — 64-core grid: runtime field at 64 threads (E13 widened), throughput (tx/µs)",
		Header: append([]string{"cell"}, grid64Runtimes...),
	}
	for pi, panel := range grid64Panels {
		row := []any{fmt.Sprintf("%s/%d", panel.Structure, panel.Range)}
		for ri := range grid64Runtimes {
			row = append(row, rtThr[pi*nR+ri].cell())
		}
		rtab.Add(row...)
	}
	tables = append(tables, rtab)

	sw := &Table{
		Title:  "E15 — epoch-length sweep: Intset:rbtree/8192, LLB-256, 64 threads, epoch engine",
		Header: []string{"epoch-len", "sim cycles", "sim-identical", "tx/µs", "epoch commits", "rollbacks", "hits", "wasted-cyc"},
		Note:   "sim-identical compares each row's simulated cycles against the first row's: the epoch length is a host-performance knob and must never reach simulated results",
	}
	for si, el := range grid64Sweep {
		s := sweep[si]
		if !s.ok {
			sw.Add(el, "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
			continue
		}
		match := "yes"
		if sweep[0].ok && s.val.cycles != sweep[0].val.cycles {
			match = "NO"
		}
		sw.Add(el, s.val.cycles, match, s.val.thr,
			s.val.eng.Commits, s.val.eng.Rollbacks, s.val.eng.Hits, s.val.eng.WastedCycles)
	}
	tables = append(tables, sw)
	return tables, err
}
