package harness

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
		Note:   "a note",
	}
	tab.Add("x", 1.23456)
	tab.Add("longer-name", 42)
	var b strings.Builder
	tab.Fprint(&b)
	out := b.String()
	for _, want := range []string{"demo", "name", "1.23", "longer-name", "42", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	tabs, err := Run("fig99", Options{Scale: 1})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if tabs != nil {
		t.Fatal("unknown experiment produced tables")
	}
}

func cellVal(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

// TestFig8ShapeTiny runs the early-release experiment at a tiny scale and
// checks the paper's qualitative result: with early release, LLB-8
// throughput on long lists is far higher than without.
func TestFig8ShapeTiny(t *testing.T) {
	tables, err := Fig8(Options{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	llb8 := tables[0] // rows: without, with; cols: sizes 8..512
	lastCol := len(llb8.Header) - 1
	without := cellVal(t, llb8, 0, lastCol)
	with := cellVal(t, llb8, 1, lastCol)
	if with < 2*without {
		t.Fatalf("early release ineffective on LLB-8 size 512: %.2f vs %.2f", with, without)
	}
}

// TestTable1ShapeTiny checks the single-thread breakdown's headline
// shapes: STM spends far more in Tx load/store than ASF, and the ratio is
// larger for the cache-resident tree than for the miss-bound hash set.
func TestTable1ShapeTiny(t *testing.T) {
	tables, err := Table1(Options{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// tables: [list, skip, rbtree, hashset, fig9norm]
	ratio := func(tab *Table) float64 {
		// row 3 = Tx load/store; col 3 = ratio.
		return cellVal(t, tab, 3, 3)
	}
	rb := ratio(tables[2])
	hs := ratio(tables[3])
	if rb < 2 {
		t.Fatalf("rbtree STM/ASF barrier ratio = %.2f, want >> 1", rb)
	}
	if hs >= rb {
		t.Fatalf("hash-set ratio (%.2f) not below rbtree ratio (%.2f): cache-miss effect missing", hs, rb)
	}
}

// TestFig3ShapeTiny: the two timing models must produce nonzero times and
// bounded deviations.
func TestFig3ShapeTiny(t *testing.T) {
	tables, err := Fig3(Options{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		sim, _ := strconv.ParseFloat(row[1], 64)
		nat, _ := strconv.ParseFloat(row[2], 64)
		dev, _ := strconv.ParseFloat(row[3], 64)
		if sim <= 0 || nat <= 0 {
			t.Fatalf("%s: nonpositive times", row[0])
		}
		if dev < -60 || dev > 120 {
			t.Fatalf("%s: deviation %.1f%% out of plausible range", row[0], dev)
		}
	}
}

// TestFig7ShapeTiny checks the capacity crossover of Fig. 7: at mid sizes
// (62–126 elements) LLB-256 must far outperform LLB-8 (whose capacity is
// exhausted past ~8 elements), while at size 510 even LLB-256's traversals
// overflow and the curves converge — both effects the paper reports.
func TestFig7ShapeTiny(t *testing.T) {
	tables, err := Fig7(Options{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	list := tables[0] // rows: LLB-8, LLB-256, LLB-8 w/L1, LLB-256 w/L1
	// Header: [variant, 6, 14, 30, 62, 126, 254, 510] — col 5 is size 126.
	mid8 := cellVal(t, list, 0, 5)
	mid256 := cellVal(t, list, 1, 5)
	if mid256 < 2*mid8 {
		t.Fatalf("size-126 list: LLB-256 %.2f vs LLB-8 %.2f — no capacity gap", mid256, mid8)
	}
	// At 510 the read set exceeds 256 lines too: near-converged curves.
	lastCol := len(list.Header) - 1
	last8 := cellVal(t, list, 0, lastCol)
	last256 := cellVal(t, list, 1, lastCol)
	if last256 > 4*last8 {
		t.Fatalf("size-510 list: LLB-256 %.2f vs LLB-8 %.2f — should converge", last256, last8)
	}
	// LLB-8 itself must degrade sharply from tiny to large lists.
	small8 := cellVal(t, list, 0, 1)
	if small8 < 2*last8 {
		t.Fatalf("LLB-8: %.2f at size 6 vs %.2f at 510 — no collapse", small8, last8)
	}
}
