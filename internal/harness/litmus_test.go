package harness

import "testing"

// TestLitmusParallelDeterminism: the litmus experiment's tables must be
// byte-identical at any -parallel worker count. Each cell is one
// deterministic exploration (a pure function of test, runtime, seed), so
// the only way worker count could leak in is through cell scheduling —
// exactly what the harness guarantees cannot happen. Runs in short mode
// too: litmus cells are cheap and this is the suite's core byte-identical
// promise.
func TestLitmusParallelDeterminism(t *testing.T) {
	render := func(parallel int) string {
		tables, err := Litmus(Options{Scale: 0.2, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return renderTables(tables)
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("parallel tables differ from sequential:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", seq, par)
	}
}

// TestLitmusExperimentClean: the experiment must run violation-free on the
// shipped runtime matrix — the harness-level restatement of the litmus
// package's conformance suite, exercised through the cell scheduler and
// table assembly.
func TestLitmusExperimentClean(t *testing.T) {
	tables, err := Litmus(Options{Scale: 0.2, Parallel: 4})
	if err != nil {
		t.Fatalf("litmus experiment reported violations or cell errors: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	for _, row := range tables[1].Rows {
		if row[5] != "0" {
			t.Errorf("runtime %s reports %s violations", row[0], row[5])
		}
	}
}
