package harness

import (
	"fmt"

	"asfstack/internal/asf"
	"asfstack/internal/intset"
	"asfstack/internal/sim"
	"asfstack/internal/stamp"
)

// asfVariants are the four hardware configurations, in figure order.
func asfVariants() []string {
	names := make([]string, len(asf.Variants))
	for i, v := range asf.Variants {
		names[i] = v.Name
	}
	return names
}

var threadCounts = []int{1, 2, 4, 8}

// Fig3 — simulator accuracy: single-threaded STAMP without TM, detailed
// Barcelona model vs the native-reference calibration; reports the
// per-benchmark deviation (the paper's 10–35% bars).
func Fig3(scale float64, prog Progress) []*Table {
	t := &Table{
		Title:  "Fig. 3 — simulator accuracy (1 thread, no TM): deviation of simulated vs native-reference runtime",
		Header: []string{"benchmark", "sim (ms)", "native-ref (ms)", "deviation (%)"},
		Note:   "paper: 5 of 8 benchmarks within 10–15%; vacation and kmeans deviate most",
	}
	for _, app := range stamp.Apps {
		s, err := stamp.Run(stamp.Config{App: app, Runtime: "Sequential", Threads: 1, Scale: scale})
		if err != nil {
			panic(err)
		}
		n, err := stamp.Run(stamp.Config{App: app, Runtime: "Sequential", Threads: 1, Scale: scale, Native: true})
		if err != nil {
			panic(err)
		}
		dev := (s.Millis - n.Millis) / n.Millis * 100
		progf(prog, "fig3 %-14s sim=%.3fms native=%.3fms dev=%.1f%%\n", app, s.Millis, n.Millis, dev)
		t.Add(app, s.Millis, n.Millis, dev)
	}
	return []*Table{t}
}

// Fig4 — STAMP scalability: execution time (ms) for every application,
// ASF variants and STM across 1–8 threads, plus the sequential bar.
func Fig4(scale float64, prog Progress) []*Table {
	var tables []*Table
	for _, app := range stamp.Apps {
		t := &Table{
			Title:  fmt.Sprintf("Fig. 4 — STAMP: %s (execution time, ms; lower is better)", app),
			Header: []string{"runtime", "1", "2", "4", "8"},
		}
		for _, rt := range append(asfVariants(), "STM") {
			row := []any{rt}
			for _, th := range threadCounts {
				r, err := stamp.Run(stamp.Config{App: app, Runtime: rt, Threads: th, Scale: scale})
				if err != nil {
					panic(err)
				}
				progf(prog, "fig4 %-14s %-14s t=%d %.3fms\n", app, rt, th, r.Millis)
				row = append(row, r.Millis)
			}
			t.Add(row...)
		}
		seq, err := stamp.Run(stamp.Config{App: app, Runtime: "Sequential", Threads: 1, Scale: scale})
		if err != nil {
			panic(err)
		}
		t.Add("Sequential", seq.Millis, "-", "-", "-")
		tables = append(tables, t)
	}
	return tables
}

// fig5Panels are the eight IntegerSet panels of Fig. 5.
var fig5Panels = []intset.Config{
	{Structure: "linkedlist", Range: 28, UpdatePct: 20},
	{Structure: "linkedlist", Range: 512, UpdatePct: 20},
	{Structure: "skiplist", Range: 1024, UpdatePct: 20},
	{Structure: "skiplist", Range: 8192, UpdatePct: 20},
	{Structure: "rbtree", Range: 1024, UpdatePct: 20},
	{Structure: "rbtree", Range: 8192, UpdatePct: 20},
	{Structure: "hashset", Range: 256, UpdatePct: 100},
	{Structure: "hashset", Range: 128000, UpdatePct: 100},
}

// Fig5 — IntegerSet scalability: throughput (tx/µs) for the four ASF
// variants across thread counts, eight panels.
func Fig5(scale float64, prog Progress) []*Table {
	ops := int(1500 * scale)
	var tables []*Table
	for _, panel := range fig5Panels {
		t := &Table{
			Title: fmt.Sprintf("Fig. 5 — Intset:%s (range=%d, %d%% upd.) throughput (tx/µs; higher is better)",
				panel.Structure, panel.Range, panel.UpdatePct),
			Header: []string{"variant", "1", "2", "4", "8"},
		}
		for _, rt := range asfVariants() {
			row := []any{rt}
			for _, th := range threadCounts {
				cfg := panel
				cfg.Runtime = rt
				cfg.Threads = th
				cfg.OpsPerThread = ops
				r := intset.Run(cfg)
				progf(prog, "fig5 %-10s r=%-6d %-14s t=%d %.2f tx/us\n",
					panel.Structure, panel.Range, rt, th, r.Throughput())
				row = append(row, r.Throughput())
			}
			t.Add(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig6 — abort breakdown: percentage of transaction attempts aborted, by
// cause, for every STAMP application, ASF variant and thread count.
func Fig6(scale float64, prog Progress) []*Table {
	var tables []*Table
	for _, app := range stamp.Apps {
		t := &Table{
			Title: fmt.Sprintf("Fig. 6 — abort breakdown: %s (%% of attempts)", app),
			Header: []string{"variant", "thr", "contention", "page-fault",
				"capacity", "malloc", "syscall", "other", "total"},
		}
		for _, rt := range asfVariants() {
			for _, th := range threadCounts {
				r, err := stamp.Run(stamp.Config{App: app, Runtime: rt, Threads: th, Scale: scale})
				if err != nil {
					panic(err)
				}
				at := float64(r.Stats.Attempts())
				if at == 0 {
					at = 1
				}
				pct := func(n uint64) float64 { return float64(n) / at * 100 }
				cont := pct(r.Stats.Aborts[sim.AbortContention])
				pf := pct(r.Stats.Aborts[sim.AbortPageFault])
				cap_ := pct(r.Stats.Aborts[sim.AbortCapacity])
				mal := pct(r.Stats.MallocAborts)
				sys := pct(r.Stats.Aborts[sim.AbortSyscall])
				other := pct(r.Stats.Aborts[sim.AbortInterrupt] +
					r.Stats.Aborts[sim.AbortExplicit] +
					r.Stats.Aborts[sim.AbortDisallowed])
				tot := pct(r.Stats.TotalAborts() + r.Stats.MallocAborts)
				progf(prog, "fig6 %-14s %-14s t=%d total=%.1f%%\n", app, rt, th, tot)
				t.Add(rt, th, cont, pf, cap_, mal, sys, other, tot)
			}
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig7 — ASF capacity: throughput vs transaction size (initial structure
// size) at 8 threads, 20% updates, for the linked list and red-black tree.
func Fig7(scale float64, prog Progress) []*Table {
	ops := int(1200 * scale)
	var tables []*Table

	list := &Table{
		Title:  "Fig. 7 — Intset:LinkList (8 threads, 20% update): throughput (tx/µs) vs initial size",
		Header: []string{"variant", "6", "14", "30", "62", "126", "254", "510"},
	}
	listSizes := []int{6, 14, 30, 62, 126, 254, 510}
	for _, rt := range asfVariants() {
		row := []any{rt}
		for _, sz := range listSizes {
			r := intset.Run(intset.Config{
				Structure: "linkedlist", Runtime: rt, Threads: 8,
				Range: uint64(2 * sz), UpdatePct: 20, InitialSize: sz,
				OpsPerThread: ops,
			})
			progf(prog, "fig7 list %-14s size=%-4d %.2f tx/us\n", rt, sz, r.Throughput())
			row = append(row, r.Throughput())
		}
		list.Add(row...)
	}
	tables = append(tables, list)

	tree := &Table{
		Title:  "Fig. 7 — Intset:RBTree (8 threads, 20% update): throughput (tx/µs) vs initial size",
		Header: []string{"variant", "8", "16", "32", "64", "128", "256", "512", "1024", "2048", "4096"},
	}
	treeSizes := []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	for _, rt := range asfVariants() {
		row := []any{rt}
		for _, sz := range treeSizes {
			r := intset.Run(intset.Config{
				Structure: "rbtree", Runtime: rt, Threads: 8,
				Range: uint64(2 * sz), UpdatePct: 20, InitialSize: sz,
				OpsPerThread: ops,
			})
			progf(prog, "fig7 rbtree %-14s size=%-4d %.2f tx/us\n", rt, sz, r.Throughput())
			row = append(row, r.Throughput())
		}
		tree.Add(row...)
	}
	tables = append(tables, tree)
	return tables
}

// Fig8 — early release: linked-list throughput with and without early
// release for LLB-8 and LLB-256 (8 threads, 20% updates, sizes 2^3..2^9).
func Fig8(scale float64, prog Progress) []*Table {
	ops := int(1200 * scale)
	sizes := []int{8, 16, 32, 64, 128, 256, 512}
	var tables []*Table
	for _, llb := range []string{"LLB-8", "LLB-256"} {
		t := &Table{
			Title:  fmt.Sprintf("Fig. 8 — Intset:LinkList (%s, 8 threads, 20%% update): early-release impact (tx/µs)", llb),
			Header: []string{"mode", "8", "16", "32", "64", "128", "256", "512"},
		}
		for _, er := range []bool{false, true} {
			label := "Without early release"
			if er {
				label = "With early release"
			}
			row := []any{label}
			for _, sz := range sizes {
				r := intset.Run(intset.Config{
					Structure: "linkedlist", Runtime: llb, Threads: 8,
					Range: uint64(2 * sz), UpdatePct: 20, InitialSize: sz,
					OpsPerThread: ops, EarlyRelease: er,
				})
				progf(prog, "fig8 %-8s er=%-5v size=%-4d %.2f tx/us\n", llb, er, sz, r.Throughput())
				row = append(row, r.Throughput())
			}
			t.Add(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

// table1Configs are the four single-thread overhead workloads of Table 1 /
// Fig. 9.
var table1Configs = []intset.Config{
	{Structure: "linkedlist", Range: 256, InitialSize: 128, UpdatePct: 20},
	{Structure: "skiplist", Range: 256, InitialSize: 128, UpdatePct: 20},
	{Structure: "rbtree", Range: 256, InitialSize: 128, UpdatePct: 20},
	{Structure: "hashset", Range: 128000, InitialSize: 64000, UpdatePct: 100, HashBits: 17},
}

// Table1 — single-thread cycle breakdown: ASF-TM (LLB-256) vs TinySTM per
// category, with ratios (Table 1), and the normalised composition (Fig. 9).
func Table1(scale float64, prog Progress) []*Table {
	ops := int(4000 * scale)
	var tables []*Table
	norm := &Table{
		Title:  "Fig. 9 — single-thread overhead composition (normalised to the STM total of each benchmark)",
		Header: []string{"benchmark", "runtime", "non-instr", "tx app", "abort", "tx ld/st", "tx start/commit", "total"},
	}
	for _, cfg := range table1Configs {
		t := &Table{
			Title: fmt.Sprintf("Table 1 — cycles inside transactions: %s / %d%% / %d",
				cfg.Structure, cfg.UpdatePct, cfg.InitialSize),
			Header: []string{"category", "ASF", "STM", "ratio (STM/ASF)"},
		}
		results := map[string]intset.Result{}
		for _, rt := range []string{"LLB-256", "STM"} {
			c := cfg
			c.Runtime = rt
			c.Threads = 1
			c.OpsPerThread = ops
			r := intset.Run(c)
			results[rt] = r
			progf(prog, "table1 %-10s %-8s total=%d cycles\n", cfg.Structure, rt, r.Breakdown.Total())
		}
		a, s := results["LLB-256"].Breakdown, results["STM"].Breakdown
		cats := []struct {
			label string
			cat   sim.Category
		}{
			{"Non-instr. code", sim.CatNonInstr},
			{"Instr. app. code", sim.CatTxApp},
			{"Abort/restart", sim.CatAbort},
			{"Tx load/store", sim.CatTxLoadStore},
			{"Tx start/commit", sim.CatTxStartCommit},
		}
		for _, cc := range cats {
			ratio := "-"
			if a[cc.cat] > 0 {
				ratio = fmt.Sprintf("%.2f", float64(s[cc.cat])/float64(a[cc.cat]))
			}
			t.Add(cc.label, a[cc.cat], s[cc.cat], ratio)
		}
		tables = append(tables, t)

		stmTotal := float64(s.Total())
		for _, e := range []struct {
			rt string
			b  sim.Breakdown
		}{{"ASF", a}, {"STM", s}} {
			rt, b := e.rt, e.b
			norm.Add(cfg.Structure, rt,
				float64(b[sim.CatNonInstr])/stmTotal,
				float64(b[sim.CatTxApp])/stmTotal,
				float64(b[sim.CatAbort])/stmTotal,
				float64(b[sim.CatTxLoadStore])/stmTotal,
				float64(b[sim.CatTxStartCommit])/stmTotal,
				float64(b.Total())/stmTotal)
		}
	}
	tables = append(tables, norm)
	return tables
}
