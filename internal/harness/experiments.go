package harness

import (
	"fmt"

	"asfstack/internal/asf"
	"asfstack/internal/intset"
	"asfstack/internal/sim"
	"asfstack/internal/stamp"
)

// stampRun and intsetRun are the workload entry points, indirected so the
// scheduler's error handling can be tested with injected failures.
var (
	stampRun  = stamp.Run
	intsetRun = intset.Run
)

// recordStamp and recordIntset copy a workload result onto the cell's
// report record.
func recordStamp(rec *CellRecord, r stamp.Result) {
	rec.Observe(r.Cycles, r.Stats, r.Metrics)
	rec.ObserveBreakdown(r.Breakdown)
	rec.ObserveSwitches(r.Switches)
	rec.ObserveProfile(r.Profile)
	rec.ObserveTrace(r.TraceEvents, r.TraceStart)
	rec.ObserveEngine(r.EngineStats)
}

func recordIntset(rec *CellRecord, r intset.Result) {
	rec.Observe(r.Cycles, r.Stats, r.Metrics)
	rec.ObserveBreakdown(r.Breakdown)
	rec.ObserveSwitches(r.Switches)
	rec.ObserveProfile(r.Profile)
	rec.ObserveTrace(r.TraceEvents, r.TraceStart)
	rec.ObserveEngine(r.EngineStats)
}

// asfVariants are the four hardware configurations, in figure order.
func asfVariants() []string {
	names := make([]string, len(asf.Variants))
	for i, v := range asf.Variants {
		names[i] = v.Name
	}
	return names
}

var threadCounts = []int{1, 2, 4, 8}

// Fig3 — simulator accuracy: single-threaded STAMP without TM, detailed
// Barcelona model vs the native-reference calibration; reports the
// per-benchmark deviation (the paper's 10–35% bars).
func Fig3(o Options) ([]*Table, error) {
	scale := o.scale()
	sims := make([]slot[float64], len(stamp.Apps))
	nats := make([]slot[float64], len(stamp.Apps))
	var cells []cell
	for i, app := range stamp.Apps {
		for _, native := range []bool{false, true} {
			dst, kind := &sims[i], "sim"
			if native {
				dst, kind = &nats[i], "native"
			}
			cfg := stamp.Config{App: app, Runtime: "Sequential", Threads: 1, Scale: scale, Native: native, Trace: o.Trace, Profile: o.Profile, Engine: o.Engine, EpochLen: o.EpochLen}
			cells = append(cells, cell{
				label: fmt.Sprintf("fig3 %-14s %s", app, kind),
				run: func(rec *CellRecord) (string, error) {
					r, err := stampRun(cfg)
					if err != nil {
						return "", err
					}
					recordStamp(rec, r)
					dst.set(r.Millis)
					return fmt.Sprintf("%.3fms", r.Millis), nil
				},
			})
		}
	}
	err := runCells(cells, o)

	t := &Table{
		Title:  "Fig. 3 — simulator accuracy (1 thread, no TM): deviation of simulated vs native-reference runtime",
		Header: []string{"benchmark", "sim (ms)", "native-ref (ms)", "deviation (%)"},
		Note:   "paper: 5 of 8 benchmarks within 10–15%; vacation and kmeans deviate most",
	}
	for i, app := range stamp.Apps {
		if sims[i].ok && nats[i].ok {
			dev := (sims[i].val - nats[i].val) / nats[i].val * 100
			t.Add(app, sims[i].val, nats[i].val, dev)
		} else {
			t.Add(app, sims[i].cell(), nats[i].cell(), "ERR")
		}
	}
	return []*Table{t}, err
}

// Fig4 — STAMP scalability: execution time (ms) for every application,
// ASF variants and STM across 1–8 threads, plus the sequential bar.
func Fig4(o Options) ([]*Table, error) {
	scale := o.scale()
	rts := append(asfVariants(), "STM")
	nR, nT := len(rts), len(threadCounts)
	ms := make([]slot[float64], len(stamp.Apps)*nR*nT)
	seq := make([]slot[float64], len(stamp.Apps))
	var cells []cell
	for ai, app := range stamp.Apps {
		for ri, rt := range rts {
			for ti, th := range threadCounts {
				dst := &ms[(ai*nR+ri)*nT+ti]
				cfg := stamp.Config{App: app, Runtime: rt, Threads: th, Scale: scale, Trace: o.Trace, Profile: o.Profile, Engine: o.Engine, EpochLen: o.EpochLen}
				cells = append(cells, cell{
					label: fmt.Sprintf("fig4 %-14s %-14s t=%d", app, rt, th),
					run: func(rec *CellRecord) (string, error) {
						r, err := stampRun(cfg)
						if err != nil {
							return "", err
						}
						recordStamp(rec, r)
						dst.set(r.Millis)
						return fmt.Sprintf("%.3fms", r.Millis), nil
					},
				})
			}
		}
		dst := &seq[ai]
		cfg := stamp.Config{App: app, Runtime: "Sequential", Threads: 1, Scale: scale, Trace: o.Trace, Profile: o.Profile, Engine: o.Engine, EpochLen: o.EpochLen}
		cells = append(cells, cell{
			label: fmt.Sprintf("fig4 %-14s Sequential     t=1", app),
			run: func(rec *CellRecord) (string, error) {
				r, err := stampRun(cfg)
				if err != nil {
					return "", err
				}
				recordStamp(rec, r)
				dst.set(r.Millis)
				return fmt.Sprintf("%.3fms", r.Millis), nil
			},
		})
	}
	err := runCells(cells, o)

	var tables []*Table
	for ai, app := range stamp.Apps {
		t := &Table{
			Title:  fmt.Sprintf("Fig. 4 — STAMP: %s (execution time, ms; lower is better)", app),
			Header: []string{"runtime", "1", "2", "4", "8"},
		}
		for ri, rt := range rts {
			row := []any{rt}
			for ti := range threadCounts {
				row = append(row, ms[(ai*nR+ri)*nT+ti].cell())
			}
			t.Add(row...)
		}
		t.Add("Sequential", seq[ai].cell(), "-", "-", "-")
		tables = append(tables, t)
	}
	return tables, err
}

// fig5Panels are the eight IntegerSet panels of Fig. 5.
var fig5Panels = []intset.Config{
	{Structure: "linkedlist", Range: 28, UpdatePct: 20},
	{Structure: "linkedlist", Range: 512, UpdatePct: 20},
	{Structure: "skiplist", Range: 1024, UpdatePct: 20},
	{Structure: "skiplist", Range: 8192, UpdatePct: 20},
	{Structure: "rbtree", Range: 1024, UpdatePct: 20},
	{Structure: "rbtree", Range: 8192, UpdatePct: 20},
	{Structure: "hashset", Range: 256, UpdatePct: 100},
	{Structure: "hashset", Range: 128000, UpdatePct: 100},
}

// Fig5 — IntegerSet scalability: throughput (tx/µs) for the four ASF
// variants across thread counts, eight panels.
func Fig5(o Options) ([]*Table, error) {
	ops := int(1500 * o.scale())
	rts := asfVariants()
	nR, nT := len(rts), len(threadCounts)
	thr := make([]slot[float64], len(fig5Panels)*nR*nT)
	var cells []cell
	for pi, panel := range fig5Panels {
		for ri, rt := range rts {
			for ti, th := range threadCounts {
				dst := &thr[(pi*nR+ri)*nT+ti]
				cfg := panel
				cfg.Runtime = rt
				cfg.Threads = th
				cfg.OpsPerThread = ops
				cfg.Trace = o.Trace
				cfg.Profile = o.Profile
				cfg.Engine = o.Engine
				cfg.EpochLen = o.EpochLen
				cells = append(cells, cell{
					label: fmt.Sprintf("fig5 %-10s r=%-6d %-14s t=%d", panel.Structure, panel.Range, rt, th),
					run: func(rec *CellRecord) (string, error) {
						r, err := intsetRun(cfg)
						if err != nil {
							return "", err
						}
						recordIntset(rec, r)
						dst.set(r.Throughput())
						return fmt.Sprintf("%.2f tx/us", r.Throughput()), nil
					},
				})
			}
		}
	}
	err := runCells(cells, o)

	var tables []*Table
	for pi, panel := range fig5Panels {
		t := &Table{
			Title: fmt.Sprintf("Fig. 5 — Intset:%s (range=%d, %d%% upd.) throughput (tx/µs; higher is better)",
				panel.Structure, panel.Range, panel.UpdatePct),
			Header: []string{"variant", "1", "2", "4", "8"},
		}
		for ri, rt := range rts {
			row := []any{rt}
			for ti := range threadCounts {
				row = append(row, thr[(pi*nR+ri)*nT+ti].cell())
			}
			t.Add(row...)
		}
		tables = append(tables, t)
	}
	return tables, err
}

// abortRow is one Fig. 6 table row's worth of percentages, computed by the
// cell so assembly is pure formatting.
type abortRow struct {
	cont, pf, cap, mal, sys, other, tot float64
}

// Fig6 — abort breakdown: percentage of transaction attempts aborted, by
// cause, for every STAMP application, ASF variant and thread count.
func Fig6(o Options) ([]*Table, error) {
	scale := o.scale()
	rts := asfVariants()
	nR, nT := len(rts), len(threadCounts)
	rows := make([]slot[abortRow], len(stamp.Apps)*nR*nT)
	var cells []cell
	for ai, app := range stamp.Apps {
		for ri, rt := range rts {
			for ti, th := range threadCounts {
				dst := &rows[(ai*nR+ri)*nT+ti]
				cfg := stamp.Config{App: app, Runtime: rt, Threads: th, Scale: scale, Trace: o.Trace, Profile: o.Profile, Engine: o.Engine, EpochLen: o.EpochLen}
				cells = append(cells, cell{
					label: fmt.Sprintf("fig6 %-14s %-14s t=%d", app, rt, th),
					run: func(rec *CellRecord) (string, error) {
						r, err := stampRun(cfg)
						if err != nil {
							return "", err
						}
						recordStamp(rec, r)
						at := float64(r.Stats.Attempts())
						if at == 0 {
							at = 1
						}
						pct := func(n uint64) float64 { return float64(n) / at * 100 }
						dst.set(abortRow{
							cont: pct(r.Stats.Aborts[sim.AbortContention]),
							pf:   pct(r.Stats.Aborts[sim.AbortPageFault]),
							cap:  pct(r.Stats.Aborts[sim.AbortCapacity]),
							mal:  pct(r.Stats.MallocAborts),
							sys:  pct(r.Stats.Aborts[sim.AbortSyscall]),
							other: pct(r.Stats.Aborts[sim.AbortInterrupt] +
								r.Stats.Aborts[sim.AbortExplicit] +
								r.Stats.Aborts[sim.AbortDisallowed]),
							tot: pct(r.Stats.TotalAborts() + r.Stats.MallocAborts),
						})
						return fmt.Sprintf("total=%.1f%%", dst.val.tot), nil
					},
				})
			}
		}
	}
	err := runCells(cells, o)

	var tables []*Table
	for ai, app := range stamp.Apps {
		t := &Table{
			Title: fmt.Sprintf("Fig. 6 — abort breakdown: %s (%% of attempts)", app),
			Header: []string{"variant", "thr", "contention", "page-fault",
				"capacity", "malloc", "syscall", "other", "total"},
		}
		for ri, rt := range rts {
			for ti, th := range threadCounts {
				s := rows[(ai*nR+ri)*nT+ti]
				if s.ok {
					r := s.val
					t.Add(rt, th, r.cont, r.pf, r.cap, r.mal, r.sys, r.other, r.tot)
				} else {
					t.Add(rt, th, "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
				}
			}
		}
		tables = append(tables, t)
	}
	return tables, err
}

// Fig7 — ASF capacity: throughput vs transaction size (initial structure
// size) at 8 threads, 20% updates, for the linked list and red-black tree.
func Fig7(o Options) ([]*Table, error) {
	ops := int(1200 * o.scale())
	rts := asfVariants()
	series := []struct {
		structure string
		title     string
		sizes     []int
	}{
		{"linkedlist", "Fig. 7 — Intset:LinkList (8 threads, 20% update): throughput (tx/µs) vs initial size",
			[]int{6, 14, 30, 62, 126, 254, 510}},
		{"rbtree", "Fig. 7 — Intset:RBTree (8 threads, 20% update): throughput (tx/µs) vs initial size",
			[]int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}},
	}

	slots := make([][]slot[float64], len(series))
	var cells []cell
	for si, se := range series {
		slots[si] = make([]slot[float64], len(rts)*len(se.sizes))
		for ri, rt := range rts {
			for zi, sz := range se.sizes {
				dst := &slots[si][ri*len(se.sizes)+zi]
				cfg := intset.Config{
					Structure: se.structure, Runtime: rt, Threads: 8,
					Range: uint64(2 * sz), UpdatePct: 20, InitialSize: sz,
					OpsPerThread: ops, Trace: o.Trace, Profile: o.Profile,
					Engine: o.Engine, EpochLen: o.EpochLen,
				}
				cells = append(cells, cell{
					label: fmt.Sprintf("fig7 %-10s %-14s size=%-4d", se.structure, rt, sz),
					run: func(rec *CellRecord) (string, error) {
						r, err := intsetRun(cfg)
						if err != nil {
							return "", err
						}
						recordIntset(rec, r)
						dst.set(r.Throughput())
						return fmt.Sprintf("%.2f tx/us", r.Throughput()), nil
					},
				})
			}
		}
	}
	err := runCells(cells, o)

	var tables []*Table
	for si, se := range series {
		header := []string{"variant"}
		for _, sz := range se.sizes {
			header = append(header, fmt.Sprint(sz))
		}
		t := &Table{Title: se.title, Header: header}
		for ri, rt := range rts {
			row := []any{rt}
			for zi := range se.sizes {
				row = append(row, slots[si][ri*len(se.sizes)+zi].cell())
			}
			t.Add(row...)
		}
		tables = append(tables, t)
	}
	return tables, err
}

// Fig8 — early release: linked-list throughput with and without early
// release for LLB-8 and LLB-256 (8 threads, 20% updates, sizes 2^3..2^9).
func Fig8(o Options) ([]*Table, error) {
	ops := int(1200 * o.scale())
	sizes := []int{8, 16, 32, 64, 128, 256, 512}
	llbs := []string{"LLB-8", "LLB-256"}
	modes := []bool{false, true}
	thr := make([]slot[float64], len(llbs)*len(modes)*len(sizes))
	var cells []cell
	for li, llb := range llbs {
		for mi, er := range modes {
			for zi, sz := range sizes {
				dst := &thr[(li*len(modes)+mi)*len(sizes)+zi]
				cfg := intset.Config{
					Structure: "linkedlist", Runtime: llb, Threads: 8,
					Range: uint64(2 * sz), UpdatePct: 20, InitialSize: sz,
					OpsPerThread: ops, EarlyRelease: er, Trace: o.Trace, Profile: o.Profile,
					Engine: o.Engine, EpochLen: o.EpochLen,
				}
				cells = append(cells, cell{
					label: fmt.Sprintf("fig8 %-8s er=%-5v size=%-4d", llb, er, sz),
					run: func(rec *CellRecord) (string, error) {
						r, err := intsetRun(cfg)
						if err != nil {
							return "", err
						}
						recordIntset(rec, r)
						dst.set(r.Throughput())
						return fmt.Sprintf("%.2f tx/us", r.Throughput()), nil
					},
				})
			}
		}
	}
	err := runCells(cells, o)

	var tables []*Table
	for li, llb := range llbs {
		t := &Table{
			Title:  fmt.Sprintf("Fig. 8 — Intset:LinkList (%s, 8 threads, 20%% update): early-release impact (tx/µs)", llb),
			Header: []string{"mode", "8", "16", "32", "64", "128", "256", "512"},
		}
		for mi, er := range modes {
			label := "Without early release"
			if er {
				label = "With early release"
			}
			row := []any{label}
			for zi := range sizes {
				row = append(row, thr[(li*len(modes)+mi)*len(sizes)+zi].cell())
			}
			t.Add(row...)
		}
		tables = append(tables, t)
	}
	return tables, err
}

// table1Configs are the four single-thread overhead workloads of Table 1 /
// Fig. 9.
var table1Configs = []intset.Config{
	{Structure: "linkedlist", Range: 256, InitialSize: 128, UpdatePct: 20},
	{Structure: "skiplist", Range: 256, InitialSize: 128, UpdatePct: 20},
	{Structure: "rbtree", Range: 256, InitialSize: 128, UpdatePct: 20},
	{Structure: "hashset", Range: 128000, InitialSize: 64000, UpdatePct: 100, HashBits: 17},
}

// Table1 — single-thread cycle breakdown: ASF-TM (LLB-256) vs TinySTM per
// category, with ratios (Table 1), and the normalised composition (Fig. 9).
func Table1(o Options) ([]*Table, error) {
	ops := int(4000 * o.scale())
	asfB := make([]slot[sim.Breakdown], len(table1Configs))
	stmB := make([]slot[sim.Breakdown], len(table1Configs))
	var cells []cell
	for ci, cfg := range table1Configs {
		for _, rt := range []string{"LLB-256", "STM"} {
			dst := &asfB[ci]
			if rt == "STM" {
				dst = &stmB[ci]
			}
			c := cfg
			c.Runtime = rt
			c.Threads = 1
			c.OpsPerThread = ops
			c.Trace = o.Trace
			c.Profile = o.Profile
			c.Engine = o.Engine
			c.EpochLen = o.EpochLen
			cells = append(cells, cell{
				label: fmt.Sprintf("table1 %-10s %-8s", cfg.Structure, rt),
				run: func(rec *CellRecord) (string, error) {
					r, err := intsetRun(c)
					if err != nil {
						return "", err
					}
					recordIntset(rec, r)
					dst.set(r.Breakdown)
					return fmt.Sprintf("total=%d cycles", r.Breakdown.Total()), nil
				},
			})
		}
	}
	err := runCells(cells, o)

	cats := []struct {
		label string
		cat   sim.Category
	}{
		{"Non-instr. code", sim.CatNonInstr},
		{"Instr. app. code", sim.CatTxApp},
		{"Abort/restart", sim.CatAbort},
		{"Tx load/store", sim.CatTxLoadStore},
		{"Tx start/commit", sim.CatTxStartCommit},
	}

	var tables []*Table
	norm := &Table{
		Title:  "Fig. 9 — single-thread overhead composition (normalised to the STM total of each benchmark)",
		Header: []string{"benchmark", "runtime", "non-instr", "tx app", "abort", "tx ld/st", "tx start/commit", "total"},
	}
	for ci, cfg := range table1Configs {
		t := &Table{
			Title: fmt.Sprintf("Table 1 — cycles inside transactions: %s / %d%% / %d",
				cfg.Structure, cfg.UpdatePct, cfg.InitialSize),
			Header: []string{"category", "ASF", "STM", "ratio (STM/ASF)"},
		}
		if !asfB[ci].ok || !stmB[ci].ok {
			for _, cc := range cats {
				t.Add(cc.label, "ERR", "ERR", "ERR")
			}
			tables = append(tables, t)
			norm.Add(cfg.Structure, "ASF", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
			norm.Add(cfg.Structure, "STM", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
			continue
		}
		a, s := asfB[ci].val, stmB[ci].val
		for _, cc := range cats {
			ratio := "-"
			if a[cc.cat] > 0 {
				ratio = fmt.Sprintf("%.2f", float64(s[cc.cat])/float64(a[cc.cat]))
			}
			t.Add(cc.label, a[cc.cat], s[cc.cat], ratio)
		}
		tables = append(tables, t)

		stmTotal := float64(s.Total())
		for _, e := range []struct {
			rt string
			b  sim.Breakdown
		}{{"ASF", a}, {"STM", s}} {
			rt, b := e.rt, e.b
			norm.Add(cfg.Structure, rt,
				float64(b[sim.CatNonInstr])/stmTotal,
				float64(b[sim.CatTxApp])/stmTotal,
				float64(b[sim.CatAbort])/stmTotal,
				float64(b[sim.CatTxLoadStore])/stmTotal,
				float64(b[sim.CatTxStartCommit])/stmTotal,
				float64(b.Total())/stmTotal)
		}
	}
	tables = append(tables, norm)
	return tables, err
}
