// Package harness defines and runs the paper's evaluation experiments
// (E1–E7 in DESIGN.md): one function per figure/table, each returning
// plain-text tables with the same rows/series the paper plots. cmd/asfbench
// and the repository benchmarks drive these.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one printable result table (a figure panel or a table). The JSON
// tags are part of the BenchReport schema (see report.go).
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Note   string     `json:"note,omitempty"`
}

// Add appends a row; values are formatted with %v, floats with 2 decimals.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
}

// Progress is where experiments report per-run progress lines (may be
// io.Discard).
type Progress = io.Writer

func progf(w Progress, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// Experiment names accepted by Run, in paper order; the extension
// experiments (E11+) follow the paper's figures.
var Names = []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table1", "hybrid", "litmus", "adaptive", "txprof", "grid64", "server"}

// Descriptions maps each experiment in Names to the one-line summary
// cmd/asfbench -list prints.
var Descriptions = map[string]string{
	"fig3":   "simulator accuracy: single-threaded STAMP, simulated vs native-reference runtime",
	"fig4":   "STAMP scalability: execution time for all apps, ASF variants and STM, 1-8 threads",
	"fig5":   "IntegerSet scalability: throughput for the four ASF variants, eight panels",
	"fig6":   "abort breakdown: share of aborted attempts by cause, per app/variant/threads",
	"fig7":   "ASF capacity: throughput vs structure size at 8 threads (list and rbtree)",
	"fig8":   "early release: linked-list throughput with and without early release",
	"table1": "single-thread overhead: cycle breakdown ASF-TM vs TinySTM, plus Fig. 9 composition",
	"hybrid": "E11: capacity-bound cells, serial-fallback ASF-TM vs the hybrid (HyTM) runtime",
	"litmus":   "E12: cross-runtime litmus conformance — deterministic schedule explorer vs oracle envelopes",
	"adaptive": "E13: static-vs-adaptive runtime selection — four statics vs the online selector, with its decision log",
	"txprof":   "E14: wasted-work accounting — flight-recorder profiles for every runtime on the Fig. 5 cells",
	"grid64":   "E15: 64-core grid — Fig. 5 large panels and the E13 runtime field widened to 64 threads, plus the epoch-length sweep",
	"server":   "E16: open-loop server — sojourn-time quantiles per (runtime × topology × load), multi-socket topologies, overload tail",
}

// Run executes one named experiment and returns its tables in figure
// order — the experiment's own tables followed by its abort-attribution
// table. The experiment's independent cells — one simulated machine each —
// are fanned out over o.Parallel worker goroutines; tables are identical
// for every worker count.
//
// A non-nil error alongside non-nil tables means some cells failed: the
// error joins one *CellError per failure and the corresponding table
// entries read "ERR". Nil tables mean the experiment name was unknown.
func Run(name string, o Options) ([]*Table, error) {
	rep, err := RunReport(name, o)
	if rep == nil {
		return nil, err
	}
	return rep.Tables, err
}

// runExperiment dispatches to the experiment function by name.
func runExperiment(name string, o Options) ([]*Table, error) {
	switch name {
	case "fig3":
		return Fig3(o)
	case "fig4":
		return Fig4(o)
	case "fig5":
		return Fig5(o)
	case "fig6":
		return Fig6(o)
	case "fig7":
		return Fig7(o)
	case "fig8":
		return Fig8(o)
	case "table1":
		return Table1(o)
	case "hybrid":
		return Hybrid(o)
	case "litmus":
		return Litmus(o)
	case "adaptive":
		return Adaptive(o)
	case "txprof":
		return Txprof(o)
	case "grid64":
		return Grid64(o)
	case "server":
		return Server(o)
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (want one of %v)", name, Names)
	}
}
