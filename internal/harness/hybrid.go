package harness

import (
	"fmt"

	"asfstack/internal/intset"
	"asfstack/internal/stamp"
)

// hybridApps are the capacity-bound STAMP applications E11 re-runs: the
// cells the paper's serial-irrevocable fallback could not scale (Fig. 4
// discussion — labyrinth stays flat at every thread count, vacation
// convoys on LLB-8).
var hybridApps = []string{"labyrinth", "vacation-high"}

// hybridIntset are the Fig. 7 tail cells where the LLB-8 read set
// overflows on nearly every operation (long list and red-black tree).
var hybridIntset = []struct {
	structure string
	sizes     []int
}{
	{"linkedlist", []int{126, 254, 510}},
	{"rbtree", []int{1024, 2048, 4096}},
}

// hybridRuntimes compares the paper's serial-fallback ASF-TM against the
// hybrid runtime on the same LLB-8 hardware.
var hybridRuntimes = []string{"LLB-8", "HyTM-8"}

// Hybrid — E11: serial fallback vs concurrent software fallback on the
// capacity-bound cells. Reports STAMP execution times across threads,
// IntegerSet throughput at 8 threads across sizes, and a head-to-head
// 8-thread summary with the hybrid's commit-path split.
func Hybrid(o Options) ([]*Table, error) {
	scale := o.scale()
	ops := int(1200 * o.scale())
	nR, nT := len(hybridRuntimes), len(threadCounts)

	stampMS := make([]slot[float64], len(hybridApps)*nR*nT)
	stampMix := make([]slot[hybridMix], len(hybridApps)*nR*nT)
	var cells []cell
	for ai, app := range hybridApps {
		for ri, rt := range hybridRuntimes {
			for ti, th := range threadCounts {
				dst := &stampMS[(ai*nR+ri)*nT+ti]
				mix := &stampMix[(ai*nR+ri)*nT+ti]
				cfg := stamp.Config{App: app, Runtime: rt, Threads: th, Scale: scale, Trace: o.Trace, Profile: o.Profile, Engine: o.Engine, EpochLen: o.EpochLen}
				cells = append(cells, cell{
					label: fmt.Sprintf("hybrid %-14s %-8s t=%d", app, rt, th),
					run: func(rec *CellRecord) (string, error) {
						r, err := stampRun(cfg)
						if err != nil {
							return "", err
						}
						recordStamp(rec, r)
						dst.set(r.Millis)
						mix.set(newHybridMix(r.Stats.Commits, r.Stats.SWCommits, r.Stats.Serial, r.Stats.SeqAborts))
						return fmt.Sprintf("%.3fms", r.Millis), nil
					},
				})
			}
		}
	}

	nI := 0
	for _, se := range hybridIntset {
		nI += len(se.sizes)
	}
	intThr := make([]slot[float64], nI*nR)
	intMix := make([]slot[hybridMix], nI*nR)
	base := 0
	for _, se := range hybridIntset {
		se := se
		for zi, sz := range se.sizes {
			for ri, rt := range hybridRuntimes {
				dst := &intThr[(base+zi)*nR+ri]
				mix := &intMix[(base+zi)*nR+ri]
				cfg := intset.Config{
					Structure: se.structure, Runtime: rt, Threads: 8,
					Range: uint64(2 * sz), UpdatePct: 20, InitialSize: sz,
					OpsPerThread: ops, Trace: o.Trace, Profile: o.Profile,
					Engine: o.Engine, EpochLen: o.EpochLen,
				}
				cells = append(cells, cell{
					label: fmt.Sprintf("hybrid %-10s size=%-4d %-8s t=8", se.structure, sz, rt),
					run: func(rec *CellRecord) (string, error) {
						r, err := intsetRun(cfg)
						if err != nil {
							return "", err
						}
						recordIntset(rec, r)
						dst.set(r.Throughput())
						mix.set(newHybridMix(r.Stats.Commits, r.Stats.SWCommits, r.Stats.Serial, r.Stats.SeqAborts))
						return fmt.Sprintf("%.2f tx/us", r.Throughput()), nil
					},
				})
			}
		}
		base += len(se.sizes)
	}
	err := runCells(cells, o)

	var tables []*Table
	for ai, app := range hybridApps {
		t := &Table{
			Title:  fmt.Sprintf("E11 — hybrid fallback: %s (execution time, ms; lower is better)", app),
			Header: []string{"runtime", "1", "2", "4", "8"},
			Note:   "LLB-8 = serial-irrevocable fallback (the paper's design); HyTM-8 = concurrent software fallback",
		}
		for ri, rt := range hybridRuntimes {
			row := []any{rt}
			for ti := range threadCounts {
				row = append(row, stampMS[(ai*nR+ri)*nT+ti].cell())
			}
			t.Add(row...)
		}
		tables = append(tables, t)
	}

	base = 0
	for _, se := range hybridIntset {
		header := []string{"runtime"}
		for _, sz := range se.sizes {
			header = append(header, fmt.Sprint(sz))
		}
		t := &Table{
			Title: fmt.Sprintf("E11 — hybrid fallback: Intset:%s (8 threads, 20%% update): throughput (tx/µs) vs initial size",
				se.structure),
			Header: header,
		}
		for ri, rt := range hybridRuntimes {
			row := []any{rt}
			for zi := range se.sizes {
				row = append(row, intThr[(base+zi)*nR+ri].cell())
			}
			t.Add(row...)
		}
		tables = append(tables, t)
		base += len(se.sizes)
	}

	// Head-to-head at 8 threads: the acceptance evidence. Serial and
	// hybrid numbers side by side, the improvement, and where the hybrid's
	// commits actually ran (hw / concurrent sw / serial).
	sum := &Table{
		Title:  "E11 — 8-thread head-to-head: serial fallback vs hybrid",
		Header: []string{"cell", "metric", "LLB-8", "HyTM-8", "improvement (%)", "hw commits", "sw commits", "serial", "seq aborts"},
		Note:   "improvement: time reduction for STAMP (ms), throughput gain for Intset; commit split is the HyTM-8 run's",
	}
	t8 := len(threadCounts) - 1
	for ai, app := range hybridApps {
		s := stampMS[(ai*nR+0)*nT+t8]
		h := stampMS[(ai*nR+1)*nT+t8]
		m := stampMix[(ai*nR+1)*nT+t8]
		if s.ok && h.ok && m.ok && h.val > 0 {
			imp := (s.val - h.val) / s.val * 100
			sum.Add(app, "ms", s.val, h.val, imp, m.val.hw, m.val.sw, m.val.serial, m.val.seq)
		} else {
			sum.Add(app, "ms", s.cell(), h.cell(), "ERR", "ERR", "ERR", "ERR", "ERR")
		}
	}
	base = 0
	for _, se := range hybridIntset {
		for zi, sz := range se.sizes {
			s := intThr[(base+zi)*nR+0]
			h := intThr[(base+zi)*nR+1]
			m := intMix[(base+zi)*nR+1]
			label := fmt.Sprintf("%s/%d", se.structure, sz)
			if s.ok && h.ok && m.ok && s.val > 0 {
				imp := (h.val - s.val) / s.val * 100
				sum.Add(label, "tx/µs", s.val, h.val, imp, m.val.hw, m.val.sw, m.val.serial, m.val.seq)
			} else {
				sum.Add(label, "tx/µs", s.cell(), h.cell(), "ERR", "ERR", "ERR", "ERR", "ERR")
			}
		}
		base += len(se.sizes)
	}
	tables = append(tables, sum)
	return tables, err
}

// hybridMix is the hybrid runtime's commit-path split for one cell.
type hybridMix struct {
	hw, sw, serial, seq uint64
}

func newHybridMix(commits, sw, serial, seq uint64) hybridMix {
	return hybridMix{hw: commits - sw - serial, sw: sw, serial: serial, seq: seq}
}
