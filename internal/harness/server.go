package harness

import (
	"fmt"
	"sort"

	"asfstack/internal/server"
	"asfstack/internal/topo"
)

// serverRun is the workload entry point, indirected like stampRun.
var serverRun = server.Run

// serverTopologies spans the socket axis: the paper's single-socket
// 8-core machine, the same cores split across two sockets, and a 64-core
// four-socket box.
var serverTopologies = []string{"1x8", "2x8", "4x16"}

// serverLoads are the offered-load points per core, as fractions of the
// nominal service rate: comfortable, near-saturation, and overload. The
// overload point is the one closed-loop experiments cannot express — an
// open-loop client keeps sending regardless.
var serverLoads = []float64{0.5, 0.9, 1.4}

// serverRuntimes is the E13 runtime field on the server workload.
var serverRuntimes = []string{"LLB-256", "HyTM-256", "STM", "Cohorts-turbo", "Adaptive-256"}

// serverObs is one cell's table-facing measurements.
type serverObs struct {
	p50, p95, p99, p999 float64
	max                 uint64
	thr                 float64
	xsock               uint64
	perSock             []uint64
}

func recordServer(rec *CellRecord, r server.Result) {
	rec.Observe(r.Cycles, r.Stats, r.Metrics)
	rec.ObserveBreakdown(r.Breakdown)
	rec.ObserveLatency(r.P50, r.P95, r.P99, r.P999)
	rec.ObserveSwitches(r.Switches)
	rec.ObserveProfile(r.Profile)
	rec.ObserveTrace(r.TraceEvents, r.TraceStart)
	rec.ObserveEngine(r.EngineStats)
}

// Server — E16: the open-loop transactional server. One cell per
// (topology × runtime × load): each runs the vacation-style reservation
// service under a pre-drawn open-loop arrival schedule and reports
// sojourn-time quantiles (arrival → commit). The final ranking table
// orders runtimes by p99 in every cell — under overload the order departs
// from the closed-loop throughput ranking of Fig. 5/E13, which is the
// point of measuring latency open-loop.
func Server(o Options) ([]*Table, error) {
	nT, nR, nL := len(serverTopologies), len(serverRuntimes), len(serverLoads)
	obs := make([]slot[serverObs], nT*nR*nL)
	var cells []cell
	for ti, topology := range serverTopologies {
		tp, err := topo.Parse(topology)
		if err != nil {
			return nil, fmt.Errorf("harness: server topology %q: %w", topology, err)
		}
		for ri, rt := range serverRuntimes {
			for li, load := range serverLoads {
				dst := &obs[(ti*nR+ri)*nL+li]
				cfg := server.Config{
					Runtime:  rt,
					Topology: topology,
					Load:     load,
					Scale:    o.scale(),
					Trace:    o.Trace,
					Profile:  o.Profile,
					Engine:   o.Engine,
					EpochLen: o.EpochLen,
				}
				tp := tp
				cells = append(cells, cell{
					label: fmt.Sprintf("server %-5s %-13s load=%.2f", topology, rt, load),
					run: func(rec *CellRecord) (string, error) {
						r, err := serverRun(cfg)
						if err != nil {
							return "", err
						}
						recordServer(rec, r)
						ob := serverObs{
							p50: r.P50, p95: r.P95, p99: r.P99, p999: r.P999,
							max: r.MaxSojourn, thr: r.Throughput(), xsock: r.XSockHops,
						}
						if g, ok := r.Metrics.Gauge("cache/xsock_hops"); ok {
							ob.perSock = tp.PerSocket(g.PerCore)
						}
						dst.set(ob)
						return fmt.Sprintf("p99=%.0f cyc", r.P99), nil
					},
				})
			}
		}
	}
	err := runCells(cells, o)

	var tables []*Table
	for ti, topology := range serverTopologies {
		t := &Table{
			Title: fmt.Sprintf("E16 — open-loop server, topology %s: sojourn-time quantiles (cycles)", topology),
			Header: []string{"runtime", "load", "p50", "p95", "p99", "p999", "max", "tx/µs", "xsock-hops"},
			Note: "sojourn = arrival → commit under a fixed open-loop schedule; " +
				"load is offered per-core load relative to the nominal service rate, " +
				"load ≥ 1 is overload and the tail reflects queue growth",
		}
		for ri, rt := range serverRuntimes {
			for li, load := range serverLoads {
				s := obs[(ti*nR+ri)*nL+li]
				if !s.ok {
					t.Add(rt, load, "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
					continue
				}
				t.Add(rt, load,
					s.val.p50, s.val.p95, s.val.p99, s.val.p999,
					s.val.max, s.val.thr, s.val.xsock)
			}
		}
		tables = append(tables, t)
	}

	// Per-socket hop distribution on the largest topology at overload:
	// address interleaving should spread directory traffic evenly.
	big := len(serverTopologies) - 1
	tpBig, _ := topo.Parse(serverTopologies[big])
	ps := &Table{
		Title:  fmt.Sprintf("E16 — cross-socket hops by requesting socket (%s, load=%.2f)", serverTopologies[big], serverLoads[nL-1]),
		Header: []string{"runtime"},
	}
	for s := 0; s < tpBig.Sockets; s++ {
		ps.Header = append(ps.Header, fmt.Sprintf("sock%d", s))
	}
	for ri, rt := range serverRuntimes {
		s := obs[(big*nR+ri)*nL+nL-1]
		row := []any{rt}
		for k := 0; k < tpBig.Sockets; k++ {
			if !s.ok || k >= len(s.val.perSock) {
				row = append(row, "ERR")
			} else {
				row = append(row, s.val.perSock[k])
			}
		}
		ps.Add(row...)
	}
	tables = append(tables, ps)

	// p99 ranking per cell: best-first. This is where the open-loop view
	// reorders the runtime field relative to closed-loop throughput.
	rank := &Table{
		Title:  "E16 — runtime ranking by p99 sojourn (best first)",
		Header: []string{"topology", "load", "ranking"},
		Note:   "compare against the closed-loop throughput ranking (Fig. 5/E13): under overload the orders differ",
	}
	for ti, topology := range serverTopologies {
		for li, load := range serverLoads {
			type rp struct {
				rt  string
				p99 float64
				ok  bool
			}
			rps := make([]rp, nR)
			all := true
			for ri, rt := range serverRuntimes {
				s := obs[(ti*nR+ri)*nL+li]
				rps[ri] = rp{rt: rt, p99: s.val.p99, ok: s.ok}
				all = all && s.ok
			}
			if !all {
				rank.Add(topology, load, "ERR")
				continue
			}
			sort.SliceStable(rps, func(a, b int) bool { return rps[a].p99 < rps[b].p99 })
			line := ""
			for i, r := range rps {
				if i > 0 {
					line += " < "
				}
				line += r.rt
			}
			rank.Add(topology, load, line)
		}
	}
	tables = append(tables, rank)
	return tables, err
}
