package harness

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"asfstack/internal/sim"
)

// Options configures how an experiment schedules its cells.
type Options struct {
	// Scale shrinks workload sizes proportionally; <= 0 means 1.0, the
	// reported configuration.
	Scale float64
	// Parallel is the number of host goroutines running cells; <= 0 means
	// runtime.NumCPU(). Every cell is an isolated simulated machine and
	// results assemble in figure order, so tables are byte-identical for
	// any value.
	Parallel int
	// Progress receives one line per completed cell (may be nil).
	Progress Progress
	// Trace enables sim trace-event recording in every cell (the
	// asfbench -trace export). Off by default: event volume is
	// proportional to simulated work.
	Trace bool
	// Profile enables the transaction-level flight recorder in every cell
	// (the asfbench -profile flag); the txprof experiment records
	// unconditionally. Off by default.
	Profile bool
	// Engine selects the simulator execution engine for every cell (the
	// asfbench -engine flag). Cell sim sections are byte-identical for
	// either engine; only host time and the host-side engine counters
	// differ.
	Engine sim.Engine
	// EpochLen overrides the epoch length for the epoch engine (0 keeps
	// the default).
	EpochLen uint64

	// sink, when non-nil, receives every cell's report in cell order
	// (RunReport installs it).
	sink *[]*CellReport
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

func (o Options) workers() int {
	if o.Parallel <= 0 {
		return runtime.NumCPU()
	}
	return o.Parallel
}

// CellError is the failure of a single experiment cell. Experiments join
// cell errors and still return every table; the failed cells render as
// "ERR" in their table slots.
type CellError struct {
	Cell string // cell label, e.g. "fig5 rbtree r=1024 LLB-8 t=4"
	Err  error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %q: %v", e.Cell, e.Err) }
func (e *CellError) Unwrap() error { return e.Err }

// cell is one independent unit of work — one simulated machine built, run
// and measured — whose results land in fixed slots of the experiment's
// tables. run returns a short summary line for the progress stream and
// records its simulated outcome on rec (for the report layer).
type cell struct {
	label string
	run   func(rec *CellRecord) (summary string, err error)
}

// slot is a single-writer result location pre-allocated by an experiment:
// exactly one cell sets it, and the assembly code reads it only after the
// worker pool has drained. A slot left unset (its cell failed) renders as
// "ERR".
type slot[T any] struct {
	val T
	ok  bool
}

func (s *slot[T]) set(v T) { s.val, s.ok = v, true }

// cell returns the value for a table slot, or "ERR" when the producing
// cell failed (its error is reported separately through runCells).
func (s *slot[T]) cell() any {
	if !s.ok {
		return "ERR"
	}
	return s.val
}

// runCells drains cells through a pool of worker goroutines and returns
// the joined per-cell errors (nil when every cell succeeded), in cell
// order. A cell that fails — by error or by panic — is reported and the
// remaining cells keep running; the experiment still assembles every
// table.
func runCells(cells []cell, o Options) error {
	workers := o.workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	errs := make([]error, len(cells))
	reps := make([]*CellReport, len(cells))
	var next atomic.Int64
	var mu sync.Mutex // serialises Progress writes
	var wg sync.WaitGroup
	poolStart := time.Now() // every cell is queued from here
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				c := cells[i]
				queued := time.Since(poolStart)
				rec := &CellRecord{}
				start := time.Now()
				summary, err := runCell(c, rec)
				wall := time.Since(start)
				host := wall.Round(time.Millisecond)
				rep := &CellReport{
					Label:  strings.TrimRight(c.label, " "),
					Sim:    rec.sim,
					Engine: rec.engine,
					Host: CellHost{
						WallMS:  float64(wall.Microseconds()) / 1e3,
						QueueMS: float64(queued.Microseconds()) / 1e3,
					},
					TraceEvents: rec.traceEvents,
					TraceStart:  rec.traceStart,
				}
				if err != nil {
					rep.Err = err.Error()
					rep.Sim = nil // a failed cell's partial state is not a result
				}
				reps[i] = rep
				mu.Lock()
				if err != nil {
					progf(o.Progress, "[%d/%d] %s FAILED (%v host): %v\n",
						i+1, len(cells), c.label, host, err)
				} else {
					progf(o.Progress, "[%d/%d] %s %s (%v host)\n",
						i+1, len(cells), c.label, summary, host)
				}
				mu.Unlock()
				if err != nil {
					errs[i] = &CellError{Cell: c.label, Err: err}
				}
			}
		}()
	}
	wg.Wait()
	if o.sink != nil {
		*o.sink = reps
	}
	return errors.Join(errs...)
}

// runCell runs one cell, converting a workload panic (simulator
// assertion, arena exhaustion, bad configuration) into an error so a bad
// cell cannot kill the whole experiment.
func runCell(c cell, rec *CellRecord) (summary string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return c.run(rec)
}
