package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// TestTableFprintGolden pins Fprint's exact rendering: column alignment
// from the widest cell, ERR cells, separator row, trailing-space trimming,
// and the Note footer.
func TestTableFprintGolden(t *testing.T) {
	tab := &Table{
		Title:  "golden",
		Header: []string{"cell", "value", "note-col"},
		Note:   "footer",
	}
	tab.Add("short", 1.5, "a")
	tab.Add("a-much-longer-cell", "ERR", "bb")
	var b strings.Builder
	tab.Fprint(&b)
	want := "\n== golden ==\n" +
		"cell                value  note-col\n" +
		"------------------  -----  --------\n" +
		"short               1.50   a\n" +
		"a-much-longer-cell  ERR    bb\n" +
		"note: footer\n"
	if got := b.String(); got != want {
		t.Fatalf("Fprint rendering changed:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}

// TestRunReportUnknownName: an unknown experiment yields a nil report and
// an error, mirroring Run's nil-tables contract.
func TestRunReportUnknownName(t *testing.T) {
	rep, err := RunReport("fig99", Options{})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if rep != nil {
		t.Fatal("unknown experiment produced a report")
	}
}

// TestBenchReportSchema: the envelope carries the schema header and
// round-trips through JSON.
func TestBenchReportSchema(t *testing.T) {
	rep := NewBenchReport(0) // zero scale normalises to 1.0
	if rep.Schema != ReportSchema || rep.Version != ReportVersion {
		t.Fatalf("header = %q v%d", rep.Schema, rep.Version)
	}
	if rep.Scale != 1 {
		t.Fatalf("scale = %v, want 1", rep.Scale)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || back.Version != ReportVersion {
		t.Fatalf("round-trip header = %q v%d", back.Schema, back.Version)
	}
}

// TestRunReportTable1 exercises the full report path on the cheapest real
// experiment: every cell must carry a deterministic sim section (cycles,
// stats, metrics) and a host section, and the abort-attribution table must
// be appended with one row per cell.
func TestRunReportTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	rep, err := RunReport("table1", Options{Scale: 0.05, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "table1" {
		t.Fatalf("name = %q", rep.Name)
	}
	if len(rep.Cells) != 8 { // 4 structures × {ASF, STM}
		t.Fatalf("cells = %d, want 8", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Fatalf("cell %q failed: %s", c.Label, c.Err)
		}
		if c.Sim == nil || c.Sim.Cycles == 0 || c.Sim.Stats.Commits == 0 {
			t.Fatalf("cell %q: missing sim section: %+v", c.Label, c.Sim)
		}
		if c.Sim.Metrics == nil {
			t.Fatalf("cell %q: missing metrics snapshot", c.Label)
		}
		if c.Host.WallMS <= 0 {
			t.Fatalf("cell %q: wall time %v", c.Label, c.Host.WallMS)
		}
		if c.Host.QueueMS < 0 {
			t.Fatalf("cell %q: negative queue latency %v", c.Label, c.Host.QueueMS)
		}
		// The tm-level gauges must agree with the runtime's stats.
		if g, ok := c.Sim.Metrics.Gauge("tm/commits"); !ok || g.Total != c.Sim.Stats.Commits {
			t.Fatalf("cell %q: tm/commits gauge %+v disagrees with stats %d",
				c.Label, g, c.Sim.Stats.Commits)
		}
	}
	last := rep.Tables[len(rep.Tables)-1]
	if !strings.Contains(last.Title, "abort attribution") {
		t.Fatalf("last table is %q, want the abort-attribution table", last.Title)
	}
	if len(last.Rows) != len(rep.Cells) {
		t.Fatalf("abort table rows = %d, want one per cell (%d)", len(last.Rows), len(rep.Cells))
	}
	for _, col := range []string{"commits", "contention", "capacity", "malloc", "stm"} {
		found := false
		for _, h := range last.Header {
			if h == col {
				found = true
			}
		}
		if !found {
			t.Fatalf("abort table header %v missing %q", last.Header, col)
		}
	}
}

// reportSimJSON runs one experiment and serialises the deterministic part
// of its report — every cell's label and sim section plus the tables, host
// sections excluded (wall-clock, varies run to run).
func reportSimJSON(t *testing.T, name string, scale float64, parallel int) string {
	t.Helper()
	rep, err := RunReport(name, Options{Scale: scale, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	type det struct {
		Label  string
		Sim    *CellSim
		Tables []*Table
	}
	var ds []det
	for _, c := range rep.Cells {
		ds = append(ds, det{Label: c.Label, Sim: c.Sim})
	}
	ds = append(ds, det{Label: "tables", Tables: rep.Tables})
	data, err := json.MarshalIndent(ds, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestReportSimDeterminism: the JSON encoding of every cell's sim section —
// metrics snapshots included — must be byte-identical at any worker count.
func TestReportSimDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	seq := reportSimJSON(t, "table1", 0.05, 1)
	par := reportSimJSON(t, "table1", 0.05, 8)
	if seq != par {
		t.Fatalf("sim sections differ between parallel=1 and parallel=8:\n--- 1 ---\n%.2000s\n--- 8 ---\n%.2000s", seq, par)
	}
}

// TestFig5ReportSimDeterminism is the scheduler-refactor regression guard:
// fig5 is the multicore sweep most sensitive to operation interleaving, so
// its full deterministic report must be byte-identical whether cells run on
// one worker or eight. Any run-ahead lease or hand-off bug that reordered
// even one memory operation shows up here as a cycle-count diff.
func TestFig5ReportSimDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	seq := reportSimJSON(t, "fig5", 0.03, 1)
	par := reportSimJSON(t, "fig5", 0.03, 8)
	if seq != par {
		t.Fatalf("fig5 sim sections differ between parallel=1 and parallel=8:\n--- 1 ---\n%.2000s\n--- 8 ---\n%.2000s", seq, par)
	}
}

// TestHybridReportSimDeterminism: E11 is the first experiment whose cells
// mix three commit paths (hardware, concurrent software, serial), so its
// deterministic report — hytm gauges included — must be byte-identical at
// any worker count like every other experiment's.
func TestHybridReportSimDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	seq := reportSimJSON(t, "hybrid", 0.05, 1)
	par := reportSimJSON(t, "hybrid", 0.05, 8)
	if seq != par {
		t.Fatalf("hybrid sim sections differ between parallel=1 and parallel=8:\n--- 1 ---\n%.2000s\n--- 8 ---\n%.2000s", seq, par)
	}
}

// TestTxprofReportSimDeterminism: E14 embeds full flight-recorder profiles
// in every cell's sim section, so this byte-identity guard covers the
// recorder end to end — per-core rings, wasted-work aggregates, contended-
// line leaderboards and causality edges — at any worker count. cmd/tmprof
// output is a pure function of these sections, so its determinism follows.
func TestTxprofReportSimDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	seq := reportSimJSON(t, "txprof", 0.03, 1)
	par := reportSimJSON(t, "txprof", 0.03, 8)
	if seq != par {
		t.Fatalf("txprof sim sections differ between parallel=1 and parallel=8:\n--- 1 ---\n%.2000s\n--- 8 ---\n%.2000s", seq, par)
	}
	if !strings.Contains(seq, `"schema": "asfstack/txprof"`) {
		t.Fatal("txprof cells carry no embedded profile")
	}
}

// TestAbortTableGolden pins the abort-attribution table's exact column
// order and rendering — the one report surface with no golden before the
// hybrid columns (sw, seq) were added. Reordering, renaming, or dropping a
// column is a schema change for report consumers and must show up here.
func TestAbortTableGolden(t *testing.T) {
	var st tm.Stats
	st.Commits = 100
	st.Serial = 3
	st.SWCommits = 40
	st.Seals = 12
	st.Aborts[sim.AbortContention] = 7
	st.Aborts[sim.AbortCapacity] = 5
	st.Aborts[sim.AbortExplicit] = 2
	st.MallocAborts = 2
	st.STMAborts = 9
	st.SeqAborts = 4
	cells := []*CellReport{
		{Label: "hybrid demo t=8", Sim: &CellSim{Cycles: 1, Stats: st,
			WastedCycles: 1234, BusyCycles: 10000, WastedPct: 12.34}},
		{Label: "failed cell"}, // no sim section: every column reads ERR
	}
	var b strings.Builder
	abortTable("hybrid", cells).Fprint(&b)
	want := "\n== hybrid — abort attribution (counts; one row per configuration) ==\n" +
		"cell             commits  serial  sw   seal  contention  capacity  page-fault  interrupt  syscall  explicit  disallowed  nesting  malloc  stm  seq  wasted-cyc  wasted%\n" +
		"---------------  -------  ------  ---  ----  ----------  --------  ----------  ---------  -------  --------  ----------  -------  ------  ---  ---  ----------  -------\n" +
		"hybrid demo t=8  100      3       40   12    7           5         0           0          0        2         0           0        2       9    4    1234        12.3\n" +
		"failed cell      ERR      ERR     ERR  ERR   ERR         ERR       ERR         ERR        ERR      ERR       ERR         ERR      ERR     ERR  ERR  ERR         ERR\n" +
		"note: explicit includes malloc-refill aborts; stm counts software validation aborts; " +
		"sw = concurrent software-fallback commits, seq = seqlock-induced hardware aborts (hybrid runtime), " +
		"seal = cohort commit batches (cohorts runtime); " +
		"wasted-cyc/wasted% = cycles burned in aborted attempts and their share of all busy cycles\n"
	if got := b.String(); got != want {
		t.Fatalf("abort table rendering changed:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}
