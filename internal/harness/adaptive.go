package harness

import (
	"fmt"

	"asfstack/internal/adaptive"
	"asfstack/internal/intset"
	"asfstack/internal/stamp"
)

// adaptiveApps are the STAMP applications E13 runs: ssca2's tiny graph
// updates and genome's dedup/matching phases are hardware-friendly (the
// selector must find ASF-TM fast to stay near the best static), while
// kmeans-high's contended centroid updates sit between the hardware
// runtimes — the one STAMP cell where no static is safe a priori.
var adaptiveApps = []string{"ssca2", "kmeans-high", "genome"}

// adaptiveThreads: contention changes character between these two points,
// which is what gives the selector something to decide.
var adaptiveThreads = []int{4, 8}

// adaptiveRuntimes is the static field the selector competes against plus
// the selector itself (last). The statics are exactly the four inner
// runtimes the Adaptive-8 configuration switches among.
var adaptiveRuntimes = []string{"LLB-8", "HyTM-8", "STM", "Cohorts-turbo", "Adaptive-8"}

// adaptiveIntset are the E13 IntegerSet cells: the long linked list is the
// capacity cell (read sets far beyond the LLB-8; the selector must prune
// ASF-TM from abort attribution and keep the cell serial-free) and the
// hash set is the opposite pole — single-bucket transactions where pure
// hardware wins and the selector must find its way back to ASF-TM.
var adaptiveIntset = []struct {
	structure string
	size      int
}{
	{"linkedlist", 510},
	{"hashset", 8192},
}

// Adaptive — E13: static runtime choice vs online selection. Reports STAMP
// execution times and IntegerSet throughput for each static runtime and the
// adaptive selector, a best-static-vs-adaptive summary with the selector's
// deficit (or gain), and the decision log for the capacity cell.
func Adaptive(o Options) ([]*Table, error) {
	scale := o.scale()
	// The IntegerSet cells run long enough that the selector's one-time
	// probe and switch transients amortize the way they would in any
	// long-running workload — the steady state is what static-vs-adaptive
	// compares; the per-transaction gate cost never amortizes and stays in
	// the measurement.
	ops := int(4800 * o.scale())
	nR, nT := len(adaptiveRuntimes), len(adaptiveThreads)

	stampMS := make([]slot[float64], len(adaptiveApps)*nR*nT)
	stampSer := make([]slot[uint64], len(adaptiveApps)*nR*nT)
	var cells []cell
	for ai, app := range adaptiveApps {
		for ri, rt := range adaptiveRuntimes {
			for ti, th := range adaptiveThreads {
				dst := &stampMS[(ai*nR+ri)*nT+ti]
				ser := &stampSer[(ai*nR+ri)*nT+ti]
				cfg := stamp.Config{App: app, Runtime: rt, Threads: th, Scale: scale, Trace: o.Trace, Profile: o.Profile, Engine: o.Engine, EpochLen: o.EpochLen}
				cells = append(cells, cell{
					label: fmt.Sprintf("adaptive %-14s %-13s t=%d", app, rt, th),
					run: func(rec *CellRecord) (string, error) {
						r, err := stampRun(cfg)
						if err != nil {
							return "", err
						}
						recordStamp(rec, r)
						dst.set(r.Millis)
						ser.set(r.Stats.Serial)
						return fmt.Sprintf("%.3fms", r.Millis), nil
					},
				})
			}
		}
	}

	nI := len(adaptiveIntset)
	intThr := make([]slot[float64], nI*nR)
	intSer := make([]slot[uint64], nI*nR)
	var capLog slot[[]adaptive.Switch]
	for zi, se := range adaptiveIntset {
		se := se
		for ri, rt := range adaptiveRuntimes {
			dst := &intThr[zi*nR+ri]
			ser := &intSer[zi*nR+ri]
			isCapAdaptive := se.structure == "linkedlist" && rt == "Adaptive-8"
			cfg := intset.Config{
				Structure: se.structure, Runtime: rt, Threads: 8,
				Range: uint64(2 * se.size), UpdatePct: 20, InitialSize: se.size,
				OpsPerThread: ops, Trace: o.Trace, Profile: o.Profile,
				Engine: o.Engine, EpochLen: o.EpochLen,
			}
			cells = append(cells, cell{
				label: fmt.Sprintf("adaptive %-10s size=%-4d %-13s t=8", se.structure, se.size, rt),
				run: func(rec *CellRecord) (string, error) {
					r, err := intsetRun(cfg)
					if err != nil {
						return "", err
					}
					recordIntset(rec, r)
					dst.set(r.Throughput())
					ser.set(r.Stats.Serial)
					if isCapAdaptive {
						capLog.set(r.Switches)
					}
					return fmt.Sprintf("%.2f tx/us", r.Throughput()), nil
				},
			})
		}
	}
	err := runCells(cells, o)

	var tables []*Table
	for ai, app := range adaptiveApps {
		t := &Table{
			Title:  fmt.Sprintf("E13 — runtime selection: %s (execution time, ms; lower is better)", app),
			Header: []string{"runtime", "4", "8"},
			Note:   "statics are the four runtimes Adaptive-8 switches among; Adaptive-8 picks online per phase",
		}
		for ri, rt := range adaptiveRuntimes {
			row := []any{rt}
			for ti := range adaptiveThreads {
				row = append(row, stampMS[(ai*nR+ri)*nT+ti].cell())
			}
			t.Add(row...)
		}
		tables = append(tables, t)
	}

	ih := []string{"runtime"}
	for _, se := range adaptiveIntset {
		ih = append(ih, fmt.Sprintf("%s/%d", se.structure, se.size))
	}
	it := &Table{
		Title:  "E13 — runtime selection: IntegerSet (8 threads, 20% update): throughput (tx/µs)",
		Header: ih,
	}
	for ri, rt := range adaptiveRuntimes {
		row := []any{rt}
		for zi := range adaptiveIntset {
			row = append(row, intThr[zi*nR+ri].cell())
		}
		it.Add(row...)
	}
	tables = append(tables, it)

	// Best-static vs adaptive: the acceptance evidence. For each cell,
	// the best static runtime's number, the adaptive number, the gap
	// (negative = adaptive behind best static), and both serial counts.
	sum := &Table{
		Title:  "E13 — best static vs adaptive, per cell",
		Header: []string{"cell", "metric", "best static", "value", "adaptive", "gap (%)", "static serial", "adaptive serial"},
		Note:   "gap: adaptive vs the best static for that cell (time reduction for STAMP, throughput gain for Intset); positive = adaptive ahead",
	}
	ad := nR - 1 // Adaptive-8 is last in adaptiveRuntimes
	for ai, app := range adaptiveApps {
		for ti, th := range adaptiveThreads {
			bi, ok := -1, true
			for ri := 0; ri < ad; ri++ {
				s := stampMS[(ai*nR+ri)*nT+ti]
				if !s.ok {
					ok = false
					break
				}
				if bi < 0 || s.val < stampMS[(ai*nR+bi)*nT+ti].val {
					bi = ri
				}
			}
			a := stampMS[(ai*nR+ad)*nT+ti]
			label := fmt.Sprintf("%s t=%d", app, th)
			if !ok || !a.ok || bi < 0 {
				sum.Add(label, "ms", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
				continue
			}
			best := stampMS[(ai*nR+bi)*nT+ti].val
			gap := (best - a.val) / best * 100
			sum.Add(label, "ms", adaptiveRuntimes[bi], best, a.val, gap,
				stampSer[(ai*nR+bi)*nT+ti].val, stampSer[(ai*nR+ad)*nT+ti].val)
		}
	}
	for zi, se := range adaptiveIntset {
		bi, ok := -1, true
		for ri := 0; ri < ad; ri++ {
			s := intThr[zi*nR+ri]
			if !s.ok {
				ok = false
				break
			}
			if bi < 0 || s.val > intThr[zi*nR+bi].val {
				bi = ri
			}
		}
		a := intThr[zi*nR+ad]
		label := fmt.Sprintf("%s/%d", se.structure, se.size)
		if !ok || !a.ok || bi < 0 || intThr[zi*nR+bi].val == 0 {
			sum.Add(label, "tx/µs", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
			continue
		}
		best := intThr[zi*nR+bi].val
		gap := (a.val - best) / best * 100
		sum.Add(label, "tx/µs", adaptiveRuntimes[bi], best, a.val, gap,
			intSer[zi*nR+bi].val, intSer[zi*nR+ad].val)
	}
	tables = append(tables, sum)

	// The capacity cell's decision log: what the selector actually did.
	// The acceptance criterion (zero serial entries) falls out of the
	// abort-attribution prune: ASF-TM never gets probed once capacity
	// aborts dominate, so no transaction ever reaches the serial fallback.
	lg := &Table{
		Title:  "E13 — adaptive decision log: Intset:linkedlist/510 (8 threads)",
		Header: []string{"cycle", "from", "to", "trigger"},
		Note:   "probe = next candidate window; settle = exploit the best rate; reprobe = settled rate degraded",
	}
	if capLog.ok {
		if len(capLog.val) == 0 {
			lg.Add("-", "-", "-", "no switches: start mode won every probe")
		}
		for _, e := range capLog.val {
			lg.Add(e.Cycle, e.From, e.To, e.Trigger)
		}
	} else {
		lg.Add("ERR", "ERR", "ERR", "ERR")
	}
	tables = append(tables, lg)
	return tables, err
}
