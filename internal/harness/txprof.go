package harness

import (
	"fmt"

	"asfstack/internal/txprof"
)

// txprofRuntimes are the E14 columns: one representative of every runtime
// family behind the tm ABI.
var txprofRuntimes = []string{"LLB-256", "HyTM-8", "STM", "Cohorts-turbo", "Adaptive-8"}

// Txprof — E14: wasted-work accounting from the transaction-level flight
// recorder. Every Fig. 5 cell runs at 8 threads with the recorder enabled,
// once per runtime family; the table reports the profile's begin/commit/
// abort/fallback totals, the useful-vs-wasted cycle split, the most
// abort-implicated cache line, and the heaviest aborter→victim causality
// edge. The full profiles land in the cells' JSON reports for cmd/tmprof.
func Txprof(o Options) ([]*Table, error) {
	ops := int(1500 * o.scale())
	nR := len(txprofRuntimes)
	sums := make([]slot[txprof.Summary], len(fig5Panels)*nR)
	var cells []cell
	for pi, panel := range fig5Panels {
		for ri, rt := range txprofRuntimes {
			dst := &sums[pi*nR+ri]
			cfg := panel
			cfg.Runtime = rt
			cfg.Threads = 8
			cfg.OpsPerThread = ops
			cfg.Trace = o.Trace
			cfg.Profile = true
			cfg.Engine = o.Engine
			cfg.EpochLen = o.EpochLen
			cells = append(cells, cell{
				label: fmt.Sprintf("txprof %-10s r=%-6d %-14s t=8", panel.Structure, panel.Range, rt),
				run: func(rec *CellRecord) (string, error) {
					r, err := intsetRun(cfg)
					if err != nil {
						return "", err
					}
					recordIntset(rec, r)
					if r.Profile == nil {
						return "", fmt.Errorf("runtime %q produced no profile", cfg.Runtime)
					}
					dst.set(r.Profile.Summary)
					return fmt.Sprintf("wasted=%.1f%%", 100*r.Profile.Summary.WastedRatio), nil
				},
			})
		}
	}
	err := runCells(cells, o)

	t := &Table{
		Title: "E14 — wasted work (txprof flight recorder; Fig. 5 cells, 8 threads)",
		Header: []string{"cell", "runtime", "begins", "commits", "aborts", "fallbacks",
			"useful-cyc", "wasted-cyc", "wasted%", "top-line", "top-edge"},
		Note: "wasted% = attempt cycles thrown away on aborts / (useful + wasted); " +
			"top-line = most abort-implicated cache line over the surviving flight window; " +
			"top-edge = heaviest aborter→victim causality edge (full run, hardware conflict aborts)",
	}
	for pi, panel := range fig5Panels {
		cellName := fmt.Sprintf("%s/%d", panel.Structure, panel.Range)
		for ri, rt := range txprofRuntimes {
			s := sums[pi*nR+ri]
			if !s.ok {
				t.Add(cellName, rt, "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
				continue
			}
			sum := s.val
			topLine, topEdge := "-", "-"
			if len(sum.TopLines) > 0 {
				topLine = fmt.Sprintf("%s x%d", sum.TopLines[0].Addr, sum.TopLines[0].Count)
			}
			if len(sum.Edges) > 0 {
				best := sum.Edges[0]
				for _, e := range sum.Edges[1:] {
					if e.Count > best.Count {
						best = e
					}
				}
				topEdge = fmt.Sprintf("%d->%d x%d", best.From, best.To, best.Count)
			}
			t.Add(cellName, rt, sum.Begins, sum.Commits, sum.Aborts, sum.Fallbacks,
				sum.UsefulCycles, sum.WastedCycles,
				fmt.Sprintf("%.1f", 100*sum.WastedRatio), topLine, topEdge)
		}
	}
	return []*Table{t}, err
}
