package asftm

import (
	"testing"

	"asfstack/internal/asf"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

func newRT(t *testing.T, cores int, v asf.Variant) (*sim.Machine, *Runtime) {
	t.Helper()
	m := sim.New(sim.Barcelona(cores))
	m.Mem.Prefault(0, 1<<21)
	sys := asf.Install(m, v)
	layout := mem.NewLayout(1 << 22)
	heap := tm.NewHeap(m.Mem, layout, cores, 16<<20)
	return m, New(sys, heap, m, layout)
}

func TestCommitPublishes(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB256)
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			tx.Store(0x100, 5)
		})
	})
	if got := m.Mem.Load(0x100); got != 5 {
		t.Fatalf("value = %d", got)
	}
	if st := r.Stats(0); st.Commits != 1 || st.Serial != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCapacityGoesSerialImmediately(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB8)
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			for i := 0; i < 20; i++ {
				tx.Store(mem.Addr(0x1000+i*mem.LineSize), 1)
			}
		})
	})
	st := r.Stats(0)
	if st.Aborts[sim.AbortCapacity] != 1 {
		t.Fatalf("capacity aborts = %d, want exactly 1 (no pointless retries)", st.Aborts[sim.AbortCapacity])
	}
	if st.Serial != 1 {
		t.Fatalf("serial = %d", st.Serial)
	}
	for i := 0; i < 20; i++ {
		if m.Mem.Load(mem.Addr(0x1000+i*mem.LineSize)) != 1 {
			t.Fatal("serial fallback lost a store")
		}
	}
}

func TestMallocRefillAbortsOnce(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB256)
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			// The pool starts empty, so the first allocation forces a
			// refill abort; the retry succeeds from the refilled pool.
			a := tx.Alloc(64)
			tx.Store(a, 9)
		})
	})
	st := r.Stats(0)
	if st.MallocAborts == 0 {
		t.Fatal("no malloc-refill abort recorded")
	}
	if st.Commits != 1 {
		t.Fatalf("commits = %d", st.Commits)
	}
}

func TestSerialTokenAbortsHardwareRegions(t *testing.T) {
	// One thread goes serial (capacity); a concurrently running hardware
	// transaction must be aborted by the token CAS and re-execute.
	m, r := newRT(t, 2, asf.LLB8)
	const rounds = 60
	m.Run(
		func(c *sim.CPU) { // capacity hog: always serial
			for i := 0; i < rounds; i++ {
				r.Atomic(c, func(tx tm.Tx) {
					for j := 0; j < 20; j++ {
						a := mem.Addr(0x4000 + j*mem.LineSize)
						tx.Store(a, tx.Load(a)+1)
					}
				})
			}
		},
		func(c *sim.CPU) { // small hardware transactions
			for i := 0; i < rounds*4; i++ {
				r.Atomic(c, func(tx tm.Tx) {
					tx.Store(0x8000, tx.Load(0x8000)+1)
				})
			}
		},
	)
	if got := m.Mem.Load(0x8000); got != rounds*4 {
		t.Fatalf("hw counter = %d, want %d", got, rounds*4)
	}
	for j := 0; j < 20; j++ {
		if got := m.Mem.Load(mem.Addr(0x4000 + j*mem.LineSize)); got != rounds {
			t.Fatalf("serial line %d = %d, want %d", j, got, rounds)
		}
	}
	st := r.Stats(1)
	if st.Aborts[sim.AbortContention] == 0 {
		t.Fatal("hardware transactions never yielded to the serial token")
	}
}

func TestBecomeIrrevocable(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB256)
	runs := 0
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			runs++
			tx.Store(0x9000, mem.Word(runs))
			if !tx.Irrevocable() {
				tx.(tm.Irrevocably).BecomeIrrevocable()
				t.Error("unreachable: BecomeIrrevocable returned")
			}
		})
	})
	if runs != 2 {
		t.Fatalf("body ran %d times, want 2", runs)
	}
	if got := m.Mem.Load(0x9000); got != 2 {
		t.Fatalf("value = %d (first attempt leaked?)", got)
	}
	if st := r.Stats(0); st.Serial != 1 {
		t.Fatalf("serial = %d", st.Serial)
	}
}

func TestEarlyReleaseExposedOnHardwarePath(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB8)
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			rel := tx.(*Tx)
			var prev mem.Addr
			for i := 0; i < 32; i++ { // 32 lines through an 8-entry LLB
				a := mem.Addr(0xA000 + i*mem.LineSize)
				tx.Load(a)
				if prev != 0 {
					rel.Release(prev)
				}
				prev = a
			}
		})
	})
	st := r.Stats(0)
	if st.Serial != 0 || st.Aborts[sim.AbortCapacity] != 0 {
		t.Fatalf("early release failed: %+v", st)
	}
}

func TestAbortWasteAccounting(t *testing.T) {
	// Two writers on one line: the loser's attempt cycles must land in
	// the abort/restart category.
	m, r := newRT(t, 2, asf.LLB256)
	body := func(c *sim.CPU) {
		for i := 0; i < 150; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				tx.CPU().Exec(300)
				tx.Store(0xB000, tx.Load(0xB000)+1)
			})
		}
	}
	m.Run(body, body)
	var b sim.Breakdown
	for i := 0; i < 2; i++ {
		b = b.Add(m.CPU(i).Counters())
	}
	if b[sim.CatAbort] == 0 {
		t.Fatal("no cycles attributed to abort/restart despite contention")
	}
}

// TestMaxHWAttemptsHonored: a transaction that aborts on every hardware
// attempt must make exactly MaxHWAttempts attempts before falling back to
// serial-irrevocable mode — the configured bound, not one more (this was
// an off-by-one: `attempts > max` allowed max+1 attempts).
func TestMaxHWAttemptsHonored(t *testing.T) {
	m, r := newRT(t, 1, asf.LLB256)
	cfg := DefaultConfig()
	cfg.MaxHWAttempts = 5
	r.SetConfig(cfg)

	hw, serial := 0, 0
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			if tx.Irrevocable() {
				serial++
				return
			}
			hw++
			tx.(*Tx).u.Abort(0xDEAD) // retryable explicit abort, no back-off
		})
	})
	if hw != cfg.MaxHWAttempts || serial != 1 {
		t.Fatalf("hardware attempts = %d, serial runs = %d; want exactly %d and 1",
			hw, serial, cfg.MaxHWAttempts)
	}
	st := r.Stats(0)
	if st.Commits != 1 || st.Serial != 1 {
		t.Fatalf("stats = %+v, want one serial commit", st)
	}
	if st.Aborts[sim.AbortExplicit] != uint64(cfg.MaxHWAttempts) {
		t.Fatalf("explicit aborts = %d, want %d", st.Aborts[sim.AbortExplicit], cfg.MaxHWAttempts)
	}
}
