// Package asftm is ASF-TM: the TM runtime of the paper (§3.2), implementing
// the TM ABI of package tm on top of ASF speculative regions.
//
// The runtime provides what the ABI requires but ASF does not:
//
//   - a begin function combining a software setjmp (ASF restores only the
//     instruction and stack pointers) with SPECULATE, and restart emulation
//     by "returning from the begin function again";
//   - contention management: exponential back-off on contention aborts, and
//     a switch to the software fallback after repeated failures;
//   - the serial-irrevocable fallback itself: a global token acquired with
//     a plain CAS and *monitored* by every hardware transaction via a
//     speculative read at begin — acquiring the token instantly aborts all
//     in-flight regions, and new regions see it held and wait;
//   - an abort-robust transactional allocator (thread-private pools; pool
//     refills abort with a software code and run outside the region).
//
// Transactions that exceed ASF's capacity or fail too many times restart in
// serial-irrevocable mode, as in the paper.
package asftm

import (
	"asfstack/internal/asf"
	"asfstack/internal/mem"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// Config tunes the runtime's contention management and ABI costs.
type Config struct {
	// MaxHWAttempts is how many hardware attempts are made before a
	// transaction restarts in serial-irrevocable mode. Capacity
	// overflows switch immediately.
	MaxHWAttempts int
	// BackoffBase and BackoffMax bound the exponential back-off (cycles).
	BackoffBase uint64
	BackoffMax  uint64

	// ABI software costs, in instructions. BeginInstr covers the setjmp
	// register checkpoint, descriptor setup and mode dispatch; the paper
	// measures this added code making ASF's start/commit cost comparable
	// to the STM's (Table 1).
	BeginInstr   int
	CommitInstr  int
	BarrierInstr int // per Load/Store around the inlined LOCK MOV
}

// DefaultConfig returns the configuration used in the evaluation.
func DefaultConfig() Config {
	return Config{
		MaxHWAttempts: 16,
		BackoffBase:   64,
		BackoffMax:    1 << 14,
		BeginInstr:    60,
		CommitInstr:   16,
		BarrierInstr:  2,
	}
}

// Runtime implements tm.Runtime on ASF.
type Runtime struct {
	sys  *asf.System
	heap *tm.Heap
	cfg  Config

	serialLock mem.Addr // global token, alone on its cache line

	stats []tm.Stats
	txs   []hwTx // per-core transaction descriptors (reused)
	depth []int  // per-core flat-nesting depth of Atomic calls

	hook tm.CommitHook
	prof tm.TxProfiler

	met rtMetrics
}

// SetCommitHook implements tm.HookableRuntime.
func (r *Runtime) SetCommitHook(h tm.CommitHook) { r.hook = h }

// SetProfiler implements tm.ProfilableRuntime.
func (r *Runtime) SetProfiler(p tm.TxProfiler) { r.prof = p }

// record feeds the flight recorder. The nil check is the entire disabled-
// path cost; recording itself charges no simulated cycles (the paper's
// no-interference tracing methodology).
func (r *Runtime) record(c *sim.CPU, ev tm.TxEvent) {
	if r.prof != nil {
		ev.Time = c.Now()
		r.prof.Record(c.ID(), ev)
	}
}

// notifyCommit reports a commit to the hook under the global turn, so hook
// invocations across cores are totally ordered (and the hook needs no
// locking of its own).
func (r *Runtime) notifyCommit(c *sim.CPU, serial bool) {
	if r.hook != nil {
		c.SpecOp(0, func() { r.hook(c.ID(), serial) })
	}
}

// rtMetrics holds the runtime's metric handles (zero-value inert).
type rtMetrics struct {
	// hwAttempts is the number of hardware attempts each transaction made
	// before completing (committing in hardware or going serial).
	hwAttempts metrics.Histogram
	// backoff records each contention back-off delay, in cycles.
	backoff metrics.Histogram
	// serialEntries counts entries into serial-irrevocable mode;
	// serialCycles accumulates simulated cycles the global token was held.
	serialEntries metrics.Counter
	serialCycles  metrics.Counter
}

// SetMetrics registers the runtime's instruments with reg. Must be called
// before the first transaction (stack construction does this).
func (r *Runtime) SetMetrics(reg *metrics.Registry) {
	r.met.hwAttempts = reg.Histogram("asftm/hw_attempts", metrics.PowersOfTwo(6))
	r.met.backoff = reg.Histogram("asftm/backoff_cycles", metrics.PowersOfTwo(16))
	r.met.serialEntries = reg.Counter("asftm/serial_entries")
	r.met.serialCycles = reg.Counter("asftm/serial_cycles")
}

// New builds the runtime for an installed ASF system. layout provides the
// runtime's metadata region (the serial token).
func New(sys *asf.System, heap *tm.Heap, m *sim.Machine, layout *mem.Layout) *Runtime {
	base, _ := layout.Region(mem.LineSize)
	m.Mem.Prefault(base, mem.LineSize)
	cores := m.Config().Cores
	r := &Runtime{
		sys:        sys,
		heap:       heap,
		cfg:        DefaultConfig(),
		serialLock: base,
		stats:      make([]tm.Stats, cores),
		txs:        make([]hwTx, cores),
		depth:      make([]int, cores),
	}
	for i := range r.txs {
		r.txs[i] = hwTx{r: r}
	}
	return r
}

// SetConfig replaces the contention-management configuration.
func (r *Runtime) SetConfig(cfg Config) { r.cfg = cfg }

// Name returns the ASF variant label (the figures key runs by it).
func (r *Runtime) Name() string { return r.sys.Variant().Name }

// Stats implements tm.Runtime.
func (r *Runtime) Stats(core int) tm.Stats { return r.stats[core] }

// ResetStats implements tm.Runtime.
func (r *Runtime) ResetStats() {
	for i := range r.stats {
		r.stats[i] = tm.Stats{}
		r.sys.Unit(i).ResetStats()
	}
}

// Atomic implements tm.Runtime: the _ITM_beginTransaction /
// _ITM_commitTransaction pair with all retry logic in between.
func (r *Runtime) Atomic(c *sim.CPU, body func(tx tm.Tx)) {
	id := c.ID()
	if r.depth[id] > 0 {
		// Flat nesting at the language level: run inside the
		// enclosing transaction.
		r.depth[id]++
		body(&r.txs[id])
		r.depth[id]--
		return
	}
	r.depth[id] = 1
	defer func() { r.depth[id] = 0 }()

	st := &r.stats[id]
	u := r.sys.Unit(id)
	t := &r.txs[id]
	t.c, t.u, t.serial = c, u, false

	attempts := 0
	for {
		c.SetCategory(sim.CatTxStartCommit)
		snap := c.Counters()
		c.Trace(sim.TraceTxBegin, 0)
		attemptStart := c.Now()
		if attempts == 0 {
			r.record(c, tm.TxEvent{Kind: tm.TxEvBegin, Path: tm.PathHW, Aborter: sim.NoCore, Addr: sim.NoAddr})
		}
		c.Exec(r.cfg.BeginInstr)

		reason, code := u.Region(func() {
			// The global serial token is the first speculative
			// read of every region: if a serial transaction holds
			// it we must not proceed, and if one acquires it later
			// the CAS write aborts us instantly.
			if u.Load(r.serialLock) != 0 {
				u.Abort(tm.CodeSerialRunning)
			}
			c.SetCategory(sim.CatTxApp)
			body(t)
			c.SetCategory(sim.CatTxStartCommit)
			c.Exec(r.cfg.CommitInstr)
		})

		if reason == sim.AbortNone {
			st.Commits++
			r.met.hwAttempts.Observe(id, uint64(attempts+1))
			r.notifyCommit(c, false)
			c.Trace(sim.TraceTxCommit, 0)
			if r.prof != nil {
				read, write := u.LastSetSizes()
				r.record(c, tm.TxEvent{Kind: tm.TxEvCommit, Path: tm.PathHW,
					Aborter: sim.NoCore, Addr: sim.NoAddr,
					Reads: uint32(read), Writes: uint32(write), Cycles: c.Now() - attemptStart})
			}
			c.SetCategory(sim.CatNonInstr)
			return
		}

		// The attempt's cycles are wasted work: move them to the
		// abort/restart bucket, like the paper's trace annotation.
		c.MoveToAbort(snap)
		c.Trace(sim.TraceTxAbort, uint64(reason))
		if r.prof != nil {
			by, addr := u.LastAbortEdge()
			read, write := u.LastSetSizes()
			r.record(c, tm.TxEvent{Kind: tm.TxEvAbort, Path: tm.PathHW,
				Cause: reason, Code: code, Aborter: by, Addr: addr,
				Reads: uint32(read), Writes: uint32(write), Cycles: c.Now() - attemptStart})
		}
		c.SetCategory(sim.CatAbort)
		attempts++

		serial := false
		switch reason {
		case sim.AbortCapacity:
			// No point retrying: the working set does not fit.
			st.Aborts[sim.AbortCapacity]++
			serial = true
		case sim.AbortExplicit:
			switch code {
			case tm.CodeMallocRefill:
				st.MallocAborts++
				r.heap.Refill(c, r.heap.ChunkSize)
			case tm.CodeSerialRunning:
				st.Aborts[sim.AbortContention]++
				r.waitSerialFree(c)
			case tm.CodeSerialRequest:
				st.Aborts[sim.AbortExplicit]++
				serial = true
			default:
				st.Aborts[sim.AbortExplicit]++
			}
		case sim.AbortContention:
			st.Aborts[sim.AbortContention]++
			r.backoff(c, attempts)
		default:
			// Page fault (now handled), interrupt, syscall:
			// retry immediately.
			st.Aborts[reason]++
		}

		if serial || attempts >= r.cfg.MaxHWAttempts {
			r.met.hwAttempts.Observe(id, uint64(attempts))
			c.Trace(sim.TraceTxFallback, uint64(tm.PathSerial))
			r.record(c, tm.TxEvent{Kind: tm.TxEvFallback, Path: tm.PathSerial,
				Aborter: sim.NoCore, Addr: sim.NoAddr})
			r.runSerial(c, t, body)
			return
		}
	}
}

// backoff spins for a randomised exponential delay.
func (r *Runtime) backoff(c *sim.CPU, attempt int) {
	limit := r.cfg.BackoffBase << uint(min(attempt, 8))
	if limit > r.cfg.BackoffMax {
		limit = r.cfg.BackoffMax
	}
	delay := uint64(c.Rand().Int63n(int64(limit))) + 1
	r.met.backoff.Observe(c.ID(), delay)
	c.Cycles(delay)
}

// waitSerialFree polls the token (plain reads; they do not conflict) until
// the serial transaction releases it.
func (r *Runtime) waitSerialFree(c *sim.CPU) {
	for c.Load(r.serialLock) != 0 {
		c.Cycles(200)
	}
}

// runSerial executes body in serial-irrevocable mode: the global token is
// taken with a plain CAS (aborting every in-flight hardware region that
// monitors it), the body runs uninstrumented, and the token is released.
func (r *Runtime) runSerial(c *sim.CPU, t *hwTx, body func(tx tm.Tx)) {
	c.SetCategory(sim.CatTxStartCommit)
	c.Trace(sim.TraceTxBegin, 0)
	attemptStart := c.Now()
	for {
		if _, ok := c.CAS(r.serialLock, 0, 1); ok {
			break
		}
		c.Cycles(uint64(c.Rand().Int63n(400)) + 100)
	}
	t.serial = true
	r.met.serialEntries.Inc(c.ID())
	held := c.Now() // token acquired; measure simulated cycles held
	c.SetCategory(sim.CatTxApp)
	body(t)
	c.SetCategory(sim.CatTxStartCommit)
	r.notifyCommit(c, true) // before the release: the token is the commit point
	c.Store(r.serialLock, 0)
	r.met.serialCycles.Add(c.ID(), c.Now()-held)
	t.serial = false
	st := &r.stats[c.ID()]
	st.Commits++
	st.Serial++
	c.Trace(sim.TraceTxCommit, 0)
	r.record(c, tm.TxEvent{Kind: tm.TxEvCommit, Path: tm.PathSerial,
		Aborter: sim.NoCore, Addr: sim.NoAddr, Cycles: c.Now() - attemptStart})
	c.SetCategory(sim.CatNonInstr)
}

// hwTx implements tm.Tx for both the hardware and the serial code path —
// the two code paths the compiler generates, dispatched by the begin
// function's return value (§3.1).
type hwTx struct {
	r      *Runtime
	c      *sim.CPU
	u      *asf.Unit
	serial bool
}

// Load implements tm.Tx.
func (t *hwTx) Load(a mem.Addr) mem.Word {
	prev := t.c.SetCategory(sim.CatTxLoadStore)
	var v mem.Word
	if t.serial {
		t.c.Exec(2) // serial-mode ABI dispatch
		v = t.c.Load(a)
	} else {
		t.c.Exec(t.r.cfg.BarrierInstr)
		v = t.u.Load(a)
	}
	t.c.SetCategory(prev)
	return v
}

// Store implements tm.Tx.
func (t *hwTx) Store(a mem.Addr, v mem.Word) {
	prev := t.c.SetCategory(sim.CatTxLoadStore)
	if t.serial {
		t.c.Exec(2)
		t.c.Store(a, v)
	} else {
		t.c.Exec(t.r.cfg.BarrierInstr)
		t.u.Store(a, v)
	}
	t.c.SetCategory(prev)
}

// Alloc implements tm.Tx: pool allocation that aborts to refill.
func (t *hwTx) Alloc(size uint64) mem.Addr {
	for {
		a, ok := t.r.heap.AllocFast(t.c, size, mem.WordSize)
		if ok {
			return a
		}
		if t.serial {
			t.r.heap.Refill(t.c, size)
			continue
		}
		// Unsafe to call the real allocator speculatively: abort,
		// refill outside the region, retry (§3.3).
		t.u.Abort(tm.CodeMallocRefill)
	}
}

// AllocLines implements tm.Tx.
func (t *hwTx) AllocLines(n int) mem.Addr {
	for {
		a, ok := t.r.heap.AllocFast(t.c, uint64(n)*mem.LineSize, mem.LineSize)
		if ok {
			return a
		}
		if t.serial {
			t.r.heap.Refill(t.c, uint64(n)*mem.LineSize)
			continue
		}
		t.u.Abort(tm.CodeMallocRefill)
	}
}

// Free implements tm.Tx.
func (t *hwTx) Free(a mem.Addr) { t.r.heap.Free(t.c, a) }

// CPU implements tm.Tx.
func (t *hwTx) CPU() *sim.CPU { return t.c }

// Irrevocable implements tm.Tx.
func (t *hwTx) Irrevocable() bool { return t.serial }

// BecomeIrrevocable implements tm.Irrevocably: a hardware transaction
// aborts with a software code and restarts directly in serial mode; a
// serial transaction already is irrevocable.
func (t *hwTx) BecomeIrrevocable() {
	if !t.serial {
		t.u.Abort(tm.CodeSerialRequest)
	}
}

// Release exposes ASF early release to expert callers (the linked-list
// workload's hand-over-hand traversal, Fig. 8). It is a no-op in serial
// mode. Callers must type-assert the tm.Tx to *asftm.Tx — early release is
// an ASF-specific extension, not part of the portable ABI.
func (t *hwTx) Release(a mem.Addr) {
	if !t.serial {
		t.u.Release(a)
	}
}

// Tx is the exported name of the runtime's transaction descriptor, for
// ASF-specific extensions such as Release.
type Tx = hwTx
