package stm

import (
	"testing"
	"testing/quick"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

func TestLockWordEncoding(t *testing.T) {
	f := func(core uint8, ts uint32) bool {
		l := lockedBy(int(core))
		if !isLocked(l) || lockOwner(l) != int(core) {
			return false
		}
		v := versionWord(uint64(ts))
		return !isLocked(v) && versionOf(v) == uint64(ts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newSTM(t *testing.T, cores int) (*sim.Machine, *Runtime) {
	t.Helper()
	m := sim.New(sim.Barcelona(cores))
	layout := mem.NewLayout(mem.PageSize)
	heap := tm.NewHeap(m.Mem, layout, cores, 16<<20)
	return m, New(m, heap, layout)
}

func TestReadYourOwnWrites(t *testing.T) {
	m, r := newSTM(t, 1)
	m.Mem.Prefault(0, 1<<20)
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			tx.Store(0x100, 7)
			if got := tx.Load(0x100); got != 7 {
				t.Errorf("read own write = %d", got)
			}
			tx.Store(0x100, 9)
			if got := tx.Load(0x100); got != 9 {
				t.Errorf("second read = %d", got)
			}
		})
	})
	if got := m.Mem.Load(0x100); got != 9 {
		t.Fatalf("committed value = %d", got)
	}
}

func TestConflictingWritersSerialize(t *testing.T) {
	m, r := newSTM(t, 2)
	m.Mem.Prefault(0, 1<<20)
	const n = 200
	body := func(c *sim.CPU) {
		for i := 0; i < n; i++ {
			r.Atomic(c, func(tx tm.Tx) {
				tx.Store(0x200, tx.Load(0x200)+1)
			})
		}
	}
	m.Run(body, body)
	if got := m.Mem.Load(0x200); got != 2*n {
		t.Fatalf("counter = %d, want %d", got, 2*n)
	}
	st := r.Stats(0)
	st.Add(r.Stats(1))
	if st.STMAborts == 0 {
		t.Fatal("no conflicts detected on a contended counter")
	}
}

func TestSnapshotExtension(t *testing.T) {
	// A reader transaction whose snapshot must extend: another thread
	// commits between its reads of two locations; the reader must still
	// observe a consistent pair.
	m, r := newSTM(t, 2)
	m.Mem.Prefault(0, 1<<20)
	inconsistent := 0
	m.Run(
		func(c *sim.CPU) {
			for i := 0; i < 100; i++ {
				r.Atomic(c, func(tx tm.Tx) {
					a := tx.Load(0x300)
					c.Cycles(800) // let the writer slip in
					b := tx.Load(0x340)
					if a != b {
						inconsistent++
					}
				})
			}
		},
		func(c *sim.CPU) {
			for i := 0; i < 100; i++ {
				r.Atomic(c, func(tx tm.Tx) {
					v := tx.Load(0x300) + 1
					tx.Store(0x300, v)
					tx.Store(0x340, v)
				})
				c.Cycles(300)
			}
		},
	)
	if inconsistent != 0 {
		t.Fatalf("%d inconsistent snapshots (LSA extension broken)", inconsistent)
	}
}

func TestBecomeIrrevocableRestartsSerially(t *testing.T) {
	m, r := newSTM(t, 1)
	m.Mem.Prefault(0, 1<<20)
	runs := 0
	m.Run(func(c *sim.CPU) {
		r.Atomic(c, func(tx tm.Tx) {
			runs++
			tx.Store(0x400, mem.Word(runs))
			if !tx.Irrevocable() {
				tx.(tm.Irrevocably).BecomeIrrevocable()
				t.Error("BecomeIrrevocable returned on a revocable tx")
			}
		})
	})
	if runs != 2 {
		t.Fatalf("body ran %d times, want 2 (restart as irrevocable)", runs)
	}
	if st := r.Stats(0); st.Serial != 1 {
		t.Fatalf("serial commits = %d", st.Serial)
	}
	if got := m.Mem.Load(0x400); got != 2 {
		t.Fatalf("value = %d (aborted attempt leaked?)", got)
	}
}

func TestReadOnlyTxCommitsWithoutClockTick(t *testing.T) {
	m, r := newSTM(t, 1)
	m.Mem.Prefault(0, 1<<20)
	m.Run(func(c *sim.CPU) {
		before := m.Mem.Load(r.clockAddr)
		r.Atomic(c, func(tx tm.Tx) {
			tx.Load(0x500)
			tx.Load(0x540)
		})
		if after := m.Mem.Load(r.clockAddr); after != before {
			t.Errorf("read-only commit advanced the clock %d -> %d", before, after)
		}
	})
}

func TestUndoReleasesAtFreshVersion(t *testing.T) {
	// After an abort, the lock version must be newer than before the
	// attempt (the ABA guard), so concurrent readers bracketing the
	// write+undo window fail validation.
	m, r := newSTM(t, 1)
	m.Mem.Prefault(0, 1<<20)
	m.Run(func(c *sim.CPU) {
		la := r.lockFor(0x600)
		before := m.Mem.Load(la)
		t0 := r.descs[0]
		t0.c = c
		t0.begin()
		t0.Store(0x600, 42)
		t0.undo()
		t0.reset()
		after := m.Mem.Load(la)
		if isLocked(after) {
			t.Fatal("lock still held after undo")
		}
		if versionOf(after) <= versionOf(before) {
			t.Fatalf("undo released at version %d (was %d): ABA", versionOf(after), versionOf(before))
		}
		if got := m.Mem.Load(0x600); got != 0 {
			t.Fatalf("value = %d after undo", got)
		}
	})
}
