// Package stm is the software-TM baseline of the evaluation: a word-based,
// time-based STM in write-through mode, modelled on TinySTM 0.9.9 exactly
// as the paper configures it (§5).
//
// The algorithm is encounter-time locking with in-place (write-through)
// updates and an undo log:
//
//   - a global version clock and an array of versioned locks, hashed by
//     word address, both living in *simulated* memory so every barrier's
//     metadata traffic is charged by the cache model rather than assumed;
//   - reads are invisible: read the lock, read the data, re-read the lock,
//     and validate the version against the transaction's start time, with
//     lazy snapshot extension (LSA) when the version is newer;
//   - writes acquire the lock with a CAS, log the old value, and update
//     memory in place; aborts undo from the log and release the locks;
//   - commit fetches a new timestamp from the global clock, validates the
//     read set if needed, and releases write locks at the new version.
//
// Conflicts abort the transaction via a panic unwound to the retry loop
// (the software analogue of TinySTM's sigsetjmp/siglongjmp), followed by
// randomised exponential back-off.
package stm

import (
	"asfstack/internal/mem"
	"asfstack/internal/metrics"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// Config tunes the STM's geometry and costs.
type Config struct {
	// LockBits sets the versioned-lock array size to 2^LockBits entries
	// (one word each). TinySTM's default array is 2^20 entries; scaled
	// to this simulator's footprints we default to 2^18 (2 MiB).
	LockBits uint
	// MaxRetriesBeforeSerial bounds optimistic retries before the
	// transaction becomes irrevocable (TinySTM's serial mode).
	MaxRetriesBeforeSerial int
	// PrivatizationSafe enables commit-time quiescence (TinySTM's
	// stm_quiesce): a committing writer waits until every concurrent
	// transaction has finished or revalidated against its commit before
	// returning. Without it a doomed transaction can write through — or
	// undo — in place *after* a privatizing transaction committed,
	// clobbering data its owner now accesses with plain operations (the
	// litmus suite's privatization test catches exactly this). On by
	// default; the litmus matrix pins the unsafe behaviour as a regression.
	PrivatizationSafe bool
	// Backoff bounds (cycles).
	BackoffBase, BackoffMax uint64

	// Software path lengths, in instructions (beyond the memory traffic,
	// which is charged by the cache model).
	BeginInstr, CommitInstr int
	ReadInstr, WriteInstr   int
	ValidateInstrPerEntry   int
	UndoInstrPerEntry       int
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		LockBits:               18,
		MaxRetriesBeforeSerial: 64,
		PrivatizationSafe:      true,
		BackoffBase:            64,
		BackoffMax:             1 << 16,
		BeginInstr:             70,
		CommitInstr:            30,
		ReadInstr:              35,
		WriteInstr:             55,
		ValidateInstrPerEntry:  4,
		UndoInstrPerEntry:      6,
	}
}

// lock word encoding: LSB set = locked, owner core in the upper bits;
// LSB clear = version (commit timestamp << 1).
func lockedBy(core int) mem.Word     { return mem.Word(core)<<1 | 1 }
func isLocked(l mem.Word) bool       { return l&1 == 1 }
func lockOwner(l mem.Word) int       { return int(l >> 1) }
func versionOf(l mem.Word) uint64    { return uint64(l >> 1) }
func versionWord(ts uint64) mem.Word { return mem.Word(ts << 1) }

// Runtime implements tm.Runtime with the TinySTM algorithm.
type Runtime struct {
	m    *sim.Machine
	heap *tm.Heap
	cfg  Config

	clockAddr mem.Addr // global version clock
	lockBase  mem.Addr // versioned-lock array
	lockMask  uint64

	serialLock mem.Addr // irrevocable-mode token

	// statusBase is the per-core published transaction status used by
	// commit-time quiescence, one cache line per core. The word encodes
	// start<<1|1 while a revocable transaction is live and 0 when idle
	// (or irrevocable — a serial transaction can never abort-and-undo, so
	// it is not a zombie hazard and nobody needs to wait for it).
	statusBase mem.Addr

	stats []tm.Stats
	descs []*txDesc

	hook tm.CommitHook
	prof tm.TxProfiler

	met rtMetrics
}

// SetCommitHook implements tm.HookableRuntime.
func (r *Runtime) SetCommitHook(h tm.CommitHook) { r.hook = h }

// SetProfiler implements tm.ProfilableRuntime.
func (r *Runtime) SetProfiler(p tm.TxProfiler) { r.prof = p }

// record feeds the flight recorder (nil check = the disabled-path cost).
func (r *Runtime) record(c *sim.CPU, ev tm.TxEvent) {
	if r.prof != nil {
		ev.Time = c.Now()
		r.prof.Record(c.ID(), ev)
	}
}

// notifyCommit reports a commit to the hook under the global turn (see
// tm.CommitHook).
func (r *Runtime) notifyCommit(c *sim.CPU, serial bool) {
	if r.hook != nil {
		c.SpecOp(0, func() { r.hook(c.ID(), serial) })
	}
}

// rtMetrics holds the runtime's metric handles (zero-value inert).
type rtMetrics struct {
	// attempts is the number of attempts each transaction made before
	// committing (1 = first try).
	attempts metrics.Histogram
	// backoff records each contention back-off delay, in cycles.
	backoff metrics.Histogram
	// Read/write-set sizes (in entries) observed at commit.
	readCommit  metrics.Histogram
	writeCommit metrics.Histogram
	// serialEntries counts entries into serial-irrevocable mode;
	// serialCycles accumulates simulated cycles the global token was held.
	serialEntries metrics.Counter
	serialCycles  metrics.Counter
}

// SetMetrics registers the runtime's instruments with reg. Must be called
// before the first transaction (stack construction does this).
func (r *Runtime) SetMetrics(reg *metrics.Registry) {
	r.met.attempts = reg.Histogram("stm/attempts", metrics.PowersOfTwo(8))
	r.met.backoff = reg.Histogram("stm/backoff_cycles", metrics.PowersOfTwo(16))
	sizes := metrics.PowersOfTwo(10)
	r.met.readCommit = reg.Histogram("stm/readset_entries/commit", sizes)
	r.met.writeCommit = reg.Histogram("stm/writeset_entries/commit", sizes)
	r.met.serialEntries = reg.Counter("stm/serial_entries")
	r.met.serialCycles = reg.Counter("stm/serial_cycles")
}

type readEntry struct {
	lockAddr mem.Addr
	version  mem.Word // lock word observed at read time
}

type writeEntry struct {
	addr     mem.Addr
	old      mem.Word
	lockAddr mem.Addr
	first    bool // first entry holding this lock (release point)
}

type txDesc struct {
	r           *Runtime
	c           *sim.CPU
	start       uint64
	reads       []readEntry
	writes      []writeEntry
	serial      bool
	serialStart uint64 // cycle the irrevocability token was acquired
	forceSerial bool   // BecomeIrrevocable requested a serial restart
	active      bool
	depth       int

	// readLog/writeLog are the simulated-memory backing of the logs, so
	// each append charges a real store (TinySTM's logs are ordinary
	// malloc'd arrays that stay cache-hot).
	readLog, writeLog mem.Addr

	// lastBy/lastAddr: the causality edge of the most recent abort (lock
	// owner that conflicted and the contended word), recorded just before
	// the longjmp for the flight recorder.
	lastBy   int
	lastAddr mem.Addr
}

// stmConflict is the panic sentinel for the software longjmp on abort.
type stmConflict struct{ core int }

// New builds the STM over machine m. Its metadata (clock, lock array,
// per-thread logs) is laid out in layout's space and prefaulted: TinySTM
// allocates these at startup.
func New(m *sim.Machine, heap *tm.Heap, layout *mem.Layout) *Runtime {
	cfg := DefaultConfig()
	cores := m.Config().Cores
	r := &Runtime{m: m, heap: heap, cfg: cfg, stats: make([]tm.Stats, cores)}

	nLocks := uint64(1) << cfg.LockBits
	base, end := layout.Region(nLocks*mem.WordSize + 2*mem.PageSize)
	m.Mem.Prefault(base, uint64(end-base))
	r.clockAddr = base
	r.serialLock = base + mem.LineSize
	r.lockBase = base + mem.PageSize
	r.lockMask = nLocks - 1

	statusBase, statusEnd := layout.Region(uint64(cores) * mem.LineSize)
	m.Mem.Prefault(statusBase, uint64(statusEnd-statusBase))
	r.statusBase = statusBase

	for i := 0; i < cores; i++ {
		logBase, logEnd := layout.Region(1 << 18) // 256 KiB of log space
		m.Mem.Prefault(logBase, uint64(logEnd-logBase))
		r.descs = append(r.descs, &txDesc{
			r:        r,
			readLog:  logBase,
			writeLog: logBase + (1 << 17),
		})
	}
	return r
}

// SetConfig replaces the configuration (before any transaction runs).
func (r *Runtime) SetConfig(cfg Config) { r.cfg = cfg }

// Name implements tm.Runtime.
func (r *Runtime) Name() string { return "STM" }

// Stats implements tm.Runtime.
func (r *Runtime) Stats(core int) tm.Stats { return r.stats[core] }

// ResetStats implements tm.Runtime.
func (r *Runtime) ResetStats() {
	for i := range r.stats {
		r.stats[i] = tm.Stats{}
	}
}

func (r *Runtime) lockFor(a mem.Addr) mem.Addr {
	idx := (uint64(a) >> mem.WordShift) & r.lockMask
	return r.lockBase + mem.Addr(idx*mem.WordSize)
}

func (r *Runtime) statusAddr(core int) mem.Addr {
	return r.statusBase + mem.Addr(uint64(core)*mem.LineSize)
}

// publishStatus records this core's live start timestamp (or idle) for
// quiescing committers.
func (t *txDesc) publishStatus(live bool) {
	if !t.r.cfg.PrivatizationSafe {
		return
	}
	w := mem.Word(0)
	if live {
		w = mem.Word(t.start)<<1 | 1
	}
	t.c.Store(t.r.statusAddr(t.c.ID()), w)
}

// quiesce is the privatization-safety wait: after publishing a commit at
// timestamp ts (locks already released), wait until no other core is still
// running a transaction that started before ts. Any such transaction is a
// potential zombie — doomed by this commit but not yet aware — and could
// otherwise write through, or roll back, in place after our caller starts
// treating the data as private. The committer's own status is already idle,
// so two quiescing writers never wait for each other; zombies drain because
// their next barrier revalidates against the moved clock and aborts.
func (r *Runtime) quiesce(c *sim.CPU, ts uint64) {
	if !r.cfg.PrivatizationSafe || len(r.descs) == 1 {
		return
	}
	me := c.ID()
	for i := range r.descs {
		if i == me {
			continue
		}
		for {
			s := c.Load(r.statusAddr(i))
			if s&1 == 0 || uint64(s>>1) >= ts {
				break
			}
			c.Cycles(120)
		}
	}
}

// Atomic implements tm.Runtime.
func (r *Runtime) Atomic(c *sim.CPU, body func(tx tm.Tx)) {
	t := r.descs[c.ID()]
	if t.active {
		t.depth++
		body(t)
		t.depth--
		return
	}
	t.c = c
	st := &r.stats[c.ID()]

	retries := 0
	for {
		c.SetCategory(sim.CatTxStartCommit)
		snap := c.Counters()
		c.Trace(sim.TraceTxBegin, 0)
		attemptStart := c.Now()
		if retries == 0 {
			r.record(c, tm.TxEvent{Kind: tm.TxEvBegin, Path: tm.PathSW,
				Aborter: sim.NoCore, Addr: sim.NoAddr})
		}
		t.begin()

		committed := func() (committed bool) {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if sc, ok := rec.(stmConflict); ok && sc.core == c.ID() {
					committed = false
					return
				}
				panic(rec)
			}()
			c.SetCategory(sim.CatTxApp)
			body(t)
			c.SetCategory(sim.CatTxStartCommit)
			t.commit()
			return true
		}()

		if committed {
			r.notifyCommit(c, t.serial)
			if t.serial {
				r.releaseSerial(c)
				r.met.serialCycles.Add(c.ID(), c.Now()-t.serialStart)
				st.Serial++
			}
			id := c.ID()
			r.met.attempts.Observe(id, uint64(retries+1))
			r.met.readCommit.Observe(id, uint64(len(t.reads)))
			r.met.writeCommit.Observe(id, uint64(len(t.writes)))
			if r.prof != nil {
				path := tm.PathSW
				if t.serial {
					path = tm.PathSerial
				}
				r.record(c, tm.TxEvent{Kind: tm.TxEvCommit, Path: path,
					Aborter: sim.NoCore, Addr: sim.NoAddr,
					Reads: uint32(len(t.reads)), Writes: uint32(len(t.writes)),
					Cycles: c.Now() - attemptStart})
			}
			t.reset()
			st.Commits++
			c.Trace(sim.TraceTxCommit, 0)
			c.SetCategory(sim.CatNonInstr)
			return
		}

		// Aborted: roll back in-place writes, release locks, back off.
		t.undo()
		t.publishStatus(false)
		c.MoveToAbort(snap)
		c.Trace(sim.TraceTxAbort, 0)
		if r.prof != nil {
			r.record(c, tm.TxEvent{Kind: tm.TxEvAbort, Path: tm.PathSW, STM: true,
				Aborter: t.lastBy, Addr: t.lastAddr,
				Reads: uint32(len(t.reads)), Writes: uint32(len(t.writes)),
				Cycles: c.Now() - attemptStart})
		}
		c.SetCategory(sim.CatAbort)
		st.STMAborts++
		retries++
		t.reset()
		r.backoff(c, retries)
		if retries >= r.cfg.MaxRetriesBeforeSerial || t.forceSerial {
			t.forceSerial = false
			c.Trace(sim.TraceTxFallback, uint64(tm.PathSerial))
			r.record(c, tm.TxEvent{Kind: tm.TxEvFallback, Path: tm.PathSerial,
				Aborter: sim.NoCore, Addr: sim.NoAddr})
			r.acquireSerial(c)
			r.met.serialEntries.Inc(c.ID())
			t.serialStart = c.Now()
			t.serial = true
		}
	}
}

func (r *Runtime) backoff(c *sim.CPU, attempt int) {
	limit := r.cfg.BackoffBase << uint(min(attempt, 10))
	if limit > r.cfg.BackoffMax {
		limit = r.cfg.BackoffMax
	}
	delay := uint64(c.Rand().Int63n(int64(limit))) + 1
	r.met.backoff.Observe(c.ID(), delay)
	c.Cycles(delay)
}

// acquireSerial makes the transaction irrevocable: all other transactions
// will fail validation against its in-place writes and wait out the token.
func (r *Runtime) acquireSerial(c *sim.CPU) {
	for {
		if _, ok := c.CAS(r.serialLock, 0, 1); ok {
			return
		}
		c.Cycles(uint64(c.Rand().Int63n(400)) + 100)
	}
}

func (r *Runtime) releaseSerial(c *sim.CPU) { c.Store(r.serialLock, 0) }

// --- transaction descriptor ----------------------------------------------

func (t *txDesc) begin() {
	c := t.c
	c.Exec(t.r.cfg.BeginInstr)
	if t.serial {
		// Irrevocable: already holds the token; run with locking but
		// without the possibility of self-abort.
		_ = 0
	} else if t.r.m.Config().Cores > 1 {
		// Wait for any irrevocable transaction to drain.
		for c.Load(t.r.serialLock) != 0 {
			c.Cycles(200)
		}
	}
	t.start = versionOf(c.Load(t.r.clockAddr) &^ 1)
	t.active = true
	t.depth = 1
	if !t.serial {
		t.publishStatus(true)
	}
}

func (t *txDesc) abort() { t.abortDue(sim.NoCore, sim.NoAddr) }

// abortDue is abort carrying the causality edge: the conflicting lock's
// owner (sim.NoCore when unknown) and the contended address (sim.NoAddr
// when unknown), stashed on the descriptor for the flight recorder.
func (t *txDesc) abortDue(by int, addr mem.Addr) {
	t.lastBy, t.lastAddr = by, addr
	panic(stmConflict{core: t.c.ID()})
}

// ownerOf resolves a lock word to an owner core for abort attribution.
func ownerOf(l mem.Word) int {
	if isLocked(l) {
		return lockOwner(l)
	}
	return sim.NoCore
}

// Load implements tm.Tx: TinySTM's invisible read with LSA extension.
func (t *txDesc) Load(a mem.Addr) mem.Word {
	c := t.c
	prev := c.SetCategory(sim.CatTxLoadStore)
	defer c.SetCategory(prev)

	c.Exec(t.r.cfg.ReadInstr)
	la := t.r.lockFor(a)
	l := c.Load(la)
	if isLocked(l) {
		if lockOwner(l) == c.ID() {
			return c.Load(a) // read own write (in place)
		}
		if t.serial {
			// Irrevocable transactions cannot abort; spin until
			// the owner finishes.
			for isLocked(l) {
				c.Cycles(100)
				l = c.Load(la)
			}
		} else {
			t.abortDue(lockOwner(l), a)
		}
	}
	v := c.Load(a)
	l2 := c.Load(la)
	if l2 != l {
		if t.serial {
			return t.Load(a)
		}
		t.abortDue(ownerOf(l2), a)
	}
	if versionOf(l) > t.start {
		t.extend()
	}
	// Append to the read log (one simulated store).
	c.Store(t.readLogSlot(), mem.Word(la))
	t.reads = append(t.reads, readEntry{lockAddr: la, version: l})
	return v
}

// Store implements tm.Tx: encounter-time locking, write-through with undo.
func (t *txDesc) Store(a mem.Addr, v mem.Word) {
	c := t.c
	prev := c.SetCategory(sim.CatTxLoadStore)
	defer c.SetCategory(prev)

	c.Exec(t.r.cfg.WriteInstr)
	la := t.r.lockFor(a)
	l := c.Load(la)
	first := false
	if isLocked(l) {
		if lockOwner(l) != c.ID() {
			if t.serial {
				for isLocked(l) {
					c.Cycles(100)
					l = c.Load(la)
				}
			} else {
				t.abortDue(lockOwner(l), a)
			}
		}
	}
	if !isLocked(l) || lockOwner(l) != c.ID() {
		if versionOf(l) > t.start {
			t.extend()
		}
		if cur, ok := c.CAS(la, l, lockedBy(c.ID())); !ok {
			if t.serial {
				t.Store(a, v) // retry
				return
			}
			t.abortDue(ownerOf(cur), a)
		}
		first = true
	}
	old := c.Load(a)
	// Undo-log append: address + old value (two simulated stores).
	c.Store(t.writeLogSlot(), mem.Word(a))
	c.Store(t.writeLogSlot(), old)
	t.writes = append(t.writes, writeEntry{addr: a, old: old, lockAddr: la, first: first})
	c.Store(a, v)
}

// extend attempts LSA snapshot extension: validate every read entry, then
// move the start timestamp to the current clock.
func (t *txDesc) extend() {
	c := t.c
	now := versionOf(c.Load(t.r.clockAddr) &^ 1)
	for i := range t.reads {
		e := &t.reads[i]
		c.Exec(t.r.cfg.ValidateInstrPerEntry)
		l := c.Load(e.lockAddr)
		if l != e.version && !(isLocked(l) && lockOwner(l) == c.ID()) {
			if t.serial {
				continue
			}
			t.abortDue(ownerOf(l), sim.NoAddr)
		}
	}
	t.start = now
	if !t.serial {
		// The snapshot moved forward: quiescers waiting on this commit's
		// timestamp may now stop waiting for us.
		t.publishStatus(true)
	}
}

func (t *txDesc) commit() {
	c := t.c
	c.Exec(t.r.cfg.CommitInstr)
	if len(t.writes) == 0 {
		t.publishStatus(false)
		return // read-only: nothing to publish, nobody saw us
	}
	// An irrevocable transaction may have taken the token after we
	// started: it reads in place without logging, so we must not publish
	// underneath it. (It spins on our locks, so once it can read our
	// words we have either fully committed or fully undone.)
	if !t.serial && c.Load(t.r.serialLock) != 0 {
		t.abortDue(sim.NoCore, t.r.serialLock)
	}
	ts := uint64(c.FetchAdd(t.r.clockAddr, 2))>>1 + 1
	if ts > t.start+1 {
		t.extend()
	}
	for i := range t.writes {
		w := &t.writes[i]
		if w.first {
			c.Store(w.lockAddr, versionWord(ts))
		}
	}
	// Locks are released and this commit can no longer fail, so going idle
	// first keeps concurrent quiescing writers from waiting on each other.
	t.publishStatus(false)
	t.r.quiesce(c, ts)
}

// undo rolls back in-place writes (reverse order) and releases locks.
//
// The locks are released at a *fresh* timestamp, not the old one: the
// speculative values were transiently visible in place, so a concurrent
// reader whose two lock reads bracket our write+undo window must fail its
// validation — restoring the old version would be an ABA. (TinySTM's
// write-through rollback does the same.)
func (t *txDesc) undo() {
	c := t.c
	if len(t.writes) == 0 {
		return
	}
	for i := len(t.writes) - 1; i >= 0; i-- {
		w := &t.writes[i]
		c.Exec(t.r.cfg.UndoInstrPerEntry)
		c.Store(w.addr, w.old)
	}
	ts := uint64(c.FetchAdd(t.r.clockAddr, 2))>>1 + 1
	for i := len(t.writes) - 1; i >= 0; i-- {
		w := &t.writes[i]
		if w.first {
			c.Store(w.lockAddr, versionWord(ts))
		}
	}
}

func (t *txDesc) reset() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	t.active = false
	t.serial = false
	t.depth = 0
}

// readLogSlot returns the next simulated-memory slot of the read log,
// wrapping within its region (the charge is what matters).
func (t *txDesc) readLogSlot() mem.Addr {
	off := (uint64(len(t.reads)) * mem.WordSize) & ((1 << 17) - 1)
	return t.readLog + mem.Addr(off)
}

func (t *txDesc) writeLogSlot() mem.Addr {
	off := (uint64(len(t.writes)) * 2 * mem.WordSize) & ((1 << 17) - 1)
	return t.writeLog + mem.Addr(off)
}

// Alloc implements tm.Tx. The STM can refill inline: no speculative region
// is at risk.
func (t *txDesc) Alloc(size uint64) mem.Addr {
	for {
		a, ok := t.r.heap.AllocFast(t.c, size, mem.WordSize)
		if ok {
			return a
		}
		t.r.heap.Refill(t.c, size)
	}
}

// AllocLines implements tm.Tx.
func (t *txDesc) AllocLines(n int) mem.Addr {
	for {
		a, ok := t.r.heap.AllocFast(t.c, uint64(n)*mem.LineSize, mem.LineSize)
		if ok {
			return a
		}
		t.r.heap.Refill(t.c, uint64(n)*mem.LineSize)
	}
}

// Free implements tm.Tx.
func (t *txDesc) Free(a mem.Addr) { t.r.heap.Free(t.c, a) }

// CPU implements tm.Tx.
func (t *txDesc) CPU() *sim.CPU { return t.c }

// Irrevocable implements tm.Tx.
func (t *txDesc) Irrevocable() bool { return t.serial }

// BecomeIrrevocable implements tm.Irrevocably: abort and restart holding
// the irrevocability token (TinySTM's stm_set_irrevocable with restart).
func (t *txDesc) BecomeIrrevocable() {
	if t.serial {
		return
	}
	t.forceSerial = true
	t.abort()
}
