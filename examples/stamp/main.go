// Stamp: one STAMP application across the whole runtime matrix — a
// miniature of the paper's Fig. 4. Pick the application and thread count;
// the example prints execution time and abort statistics for the four ASF
// variants, the STM, and the sequential baseline.
//
//	go run ./examples/stamp
//	go run ./examples/stamp -app labyrinth -threads 8
package main

import (
	"flag"
	"fmt"
	"os"

	"asfstack/internal/stamp"
)

func main() {
	app := flag.String("app", "vacation-low", "one of: genome, intruder, kmeans-low, kmeans-high, labyrinth, ssca2, vacation-low, vacation-high")
	threads := flag.Int("threads", 4, "simulated cores")
	scale := flag.Float64("scale", 0.5, "input scale")
	flag.Parse()

	fmt.Printf("STAMP %s, %d threads, scale %.2f (simulated 2.2 GHz)\n\n", *app, *threads, *scale)
	fmt.Printf("%-14s %10s %10s %8s %8s\n", "runtime", "time (ms)", "commits", "serial", "aborts")

	for _, rt := range []string{"LLB-8", "LLB-256", "LLB-8 w/ L1", "LLB-256 w/ L1", "STM"} {
		r, err := stamp.Run(stamp.Config{App: *app, Runtime: rt, Threads: *threads, Scale: *scale})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stamp:", err)
			os.Exit(1)
		}
		fmt.Printf("%-14s %10.3f %10d %8d %8d\n",
			rt, r.Millis, r.Stats.Commits, r.Stats.Serial, r.Stats.TotalAborts())
	}
	seq, err := stamp.Run(stamp.Config{App: *app, Runtime: "Sequential", Threads: 1, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(1)
	}
	fmt.Printf("%-14s %10.3f %10d %8s %8s  (1 thread, uninstrumented)\n",
		"Sequential", seq.Millis, seq.Stats.Commits, "-", "-")
}
