// Elision: transactional lock elision on ASF — the paper's path for
// existing lock-based software (§3). Eight threads update their own
// counters under ONE global mutex; with elision the critical sections run
// concurrently as speculative regions that merely monitor the lock word,
// and the lock is taken for real only as a fallback.
//
//	go run ./examples/elision
package main

import (
	"fmt"

	"asfstack/internal/asf"
	"asfstack/internal/elision"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

func main() {
	const threads, rounds = 8, 400

	run := func(maxAttempts int) (simMs float64, st elision.Stats) {
		m := sim.New(sim.Barcelona(threads))
		m.Mem.Prefault(0, 1<<22)
		sys := asf.Install(m, asf.LLB256)
		e := elision.New(sys, threads)
		e.MaxAttempts = maxAttempts
		mu := elision.NewMutex(0x100000)

		bodies := make([]func(*sim.CPU), threads)
		for i := range bodies {
			bodies[i] = func(c *sim.CPU) {
				a := mem.Addr(0x200000 + c.ID()*0x1000)
				for j := 0; j < rounds; j++ {
					e.Critical(c, mu, func(cs elision.CS) {
						cs.Store(a, cs.Load(a)+1)
					})
				}
			}
		}
		dur := m.Run(bodies...)
		for i := 0; i < threads; i++ {
			s := e.Stats(i)
			st.Elided += s.Elided
			st.Acquired += s.Acquired
			st.Aborts += s.Aborts
		}
		for i := 0; i < threads; i++ {
			if got := m.Mem.Load(mem.Addr(0x200000 + i*0x1000)); got != rounds {
				panic(fmt.Sprintf("thread %d counter = %d", i, got))
			}
		}
		return float64(dur) / 2_200_000, st
	}

	withMs, withStats := run(4)
	withoutMs, _ := run(0) // MaxAttempts 0: always take the lock

	fmt.Printf("with elision:    %.3f simulated ms  (%d elided, %d acquired, %d aborts)\n",
		withMs, withStats.Elided, withStats.Acquired, withStats.Aborts)
	fmt.Printf("without elision: %.3f simulated ms  (every section serialised on the lock)\n", withoutMs)
	fmt.Printf("speedup:         %.1fx\n", withoutMs/withMs)
}
