// Intset: the linked-list integer set with early release — the Fig. 8
// scenario. An LLB-8 machine walks lists far larger than eight lines by
// keeping only a hand-over-hand window in the read set, and the example
// prints throughput with and without the optimisation next to the STM.
//
//	go run ./examples/intset
//	go run ./examples/intset -size 256 -threads 8
package main

import (
	"flag"
	"fmt"
	"os"

	"asfstack/internal/intset"
)

func main() {
	size := flag.Int("size", 126, "initial list size (key range is 2x)")
	threads := flag.Int("threads", 8, "simulated cores")
	ops := flag.Int("ops", 1500, "operations per thread (20% updates)")
	flag.Parse()

	type variant struct {
		label        string
		runtime      string
		earlyRelease bool
	}
	for _, v := range []variant{
		{"LLB-8, no early release", "LLB-8", false},
		{"LLB-8, early release", "LLB-8", true},
		{"LLB-256, no early release", "LLB-256", false},
		{"STM", "STM", false},
	} {
		r, err := intset.Run(intset.Config{
			Structure: "linkedlist", Runtime: v.runtime, Threads: *threads,
			Range: uint64(2 * *size), InitialSize: *size, UpdatePct: 20,
			OpsPerThread: *ops, EarlyRelease: v.earlyRelease,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "intset:", err)
			os.Exit(1)
		}
		fmt.Printf("%-26s %6.2f tx/µs   serial %5.1f%%   aborts %d\n",
			v.label, r.Throughput(),
			float64(r.Stats.Serial)/float64(r.Stats.Commits)*100,
			r.Stats.TotalAborts())
	}
}
