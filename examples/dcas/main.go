// DCAS: the paper's Figure 1 — a double compare-and-swap built directly on
// the raw ASF primitives (SPECULATE / LOCK MOV / COMMIT), below the TM
// runtime. Lock-free multiword atomics are what ASF was originally aimed
// at; the architectural minimum capacity of 4 lines guarantees this
// two-line region eventual forward progress without a software fallback.
//
//	go run ./examples/dcas
package main

import (
	"fmt"

	"asfstack/internal/asf"
	"asfstack/internal/mem"
	"asfstack/internal/sim"
)

// dcas atomically performs:
//
//	if *m1 == e1 && *m2 == e2 { *m1, *m2 = n1, n2; return true }
//
// retrying on transient aborts (interrupts), exactly like Fig. 1's retry
// loop around SPECULATE.
func dcas(c *sim.CPU, u *asf.Unit, m1, m2 mem.Addr, e1, e2, n1, n2 mem.Word) bool {
	for attempt := 0; ; attempt++ {
		ok := false
		reason, _ := u.Region(func() {
			v1 := u.Load(m1) // LOCK MOV
			v2 := u.Load(m2)
			if v1 != e1 || v2 != e2 {
				ok = false
				return
			}
			u.Store(m1, n1)
			u.Store(m2, n2)
			ok = true
		})
		switch reason {
		case sim.AbortNone:
			return ok
		case sim.AbortContention, sim.AbortInterrupt, sim.AbortPageFault:
			// Transient. ASF ensures eventual progress only absent
			// contention, so software must control it (§2.2):
			// randomised exponential back-off.
			limit := int64(32) << uint(min(attempt, 8))
			c.Cycles(uint64(c.Rand().Int63n(limit)) + 1)
		default:
			panic("dcas: unexpected abort: " + reason.String())
		}
	}
}

func main() {
	const threads, moves = 4, 5000
	m := sim.New(sim.Barcelona(threads))
	m.Mem.Prefault(0, 1<<20)
	sys := asf.Install(m, asf.LLB8)

	// Two counters whose SUM must stay invariant: each thread atomically
	// moves one unit from a to b or back, using DCAS.
	a, b := mem.Addr(0x1000), mem.Addr(0x2000)
	m.Mem.Store(a, 1_000_000)

	dur := m.Run(func(c *sim.CPU) { worker(sys, c, a, b, moves) },
		func(c *sim.CPU) { worker(sys, c, a, b, moves) },
		func(c *sim.CPU) { worker(sys, c, a, b, moves) },
		func(c *sim.CPU) { worker(sys, c, a, b, moves) })

	va, vb := m.Mem.Load(a), m.Mem.Load(b)
	fmt.Printf("a=%d b=%d sum=%d (invariant %d)\n", va, vb, va+vb, 1_000_000)
	var commits, aborts uint64
	for i := 0; i < threads; i++ {
		st := sys.Unit(i).Stats()
		commits += st.Commits
		aborts += st.TotalAborts()
	}
	fmt.Printf("%d DCAS commits, %d aborts, %.3f simulated ms\n",
		commits, aborts, float64(dur)/2_200_000)
	if va+vb != 1_000_000 {
		panic("invariant broken")
	}
}

func worker(sys *asf.System, c *sim.CPU, a, b mem.Addr, moves int) {
	u := sys.Unit(c.ID())
	for i := 0; i < moves; i++ {
		for {
			va, vb := c.Load(a), c.Load(b)
			if va == 0 {
				break
			}
			if dcas(c, u, a, b, va, vb, va-1, vb+1) {
				break
			}
		}
	}
}
