// DTMC pipeline: the paper's Figure 2 end to end. A function with a
// transaction statement is built in the mini compiler's IR, run through the
// TM instrumentation pass (barriers, transactional clones, serialize
// lowering), and executed on the simulated machine through the TM ABI — on
// ASF and on the STM, from the same instrumented program.
//
//	go run ./examples/dtmc
package main

import (
	"fmt"

	"asfstack"
	"asfstack/internal/dtmc"
	"asfstack/internal/sim"
)

func main() {
	// void increment(long *cntr) { __tm_atomic { *cntr += 5; } }
	b := dtmc.NewFunc("increment")
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicBegin})
	b.Emit(dtmc.Instr{Op: dtmc.OpLoad, A: 1, B: 0})
	b.Emit(dtmc.Instr{Op: dtmc.OpConst, A: 2, Imm: 5})
	b.Emit(dtmc.Instr{Op: dtmc.OpAdd, A: 1, B: 1, C: 2})
	b.Emit(dtmc.Instr{Op: dtmc.OpStore, A: 1, B: 0})
	b.Emit(dtmc.Instr{Op: dtmc.OpAtomicEnd})
	b.Emit(dtmc.Instr{Op: dtmc.OpRet})
	prog := dtmc.NewProgram()
	prog.Add(b.Done())

	fmt.Println("IR before the TM pass:")
	printFunc(prog, "increment")

	instrumented, err := dtmc.Instrument(prog)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nIR after the TM pass (barriers inserted):")
	printFunc(instrumented, "increment")

	for _, rt := range []string{"LLB-256", "STM"} {
		s := asfstack.New(asfstack.Options{Cores: 4, Runtime: rt})
		cntr := s.AllocShared(8)
		start := s.M.SyncClocks()
		end := s.Parallel(4, func(c *sim.CPU) {
			for i := 0; i < 1000; i++ {
				if _, err := dtmc.Exec(s, c, instrumented, "increment", uint64(cntr)); err != nil {
					panic(err)
				}
			}
		})
		fmt.Printf("\n%-8s counter=%d (want %d)  %.3f simulated ms\n",
			rt, s.M.Mem.Load(cntr), 4*1000*5, float64(end-start)/2_200_000)
	}
}

func printFunc(p *dtmc.Program, name string) {
	for i, ins := range p.Funcs[name].Code {
		fmt.Printf("  %2d: %-8s A=%d B=%d C=%d Imm=%d %s\n",
			i, ins.Op, ins.A, ins.B, ins.C, ins.Imm, ins.Name)
	}
}
