// Quickstart: the full ASF transactional memory stack in one page.
//
// Four threads increment a shared counter inside atomic blocks, running on
// the simulated eight-core Barcelona machine with the LLB-256 ASF
// implementation. Change -runtime to compare the paper's configurations.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -runtime STM -threads 8
package main

import (
	"flag"
	"fmt"

	"asfstack"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

func main() {
	runtimeName := flag.String("runtime", "LLB-256", "one of: LLB-8, LLB-256, LLB-8 w/ L1, LLB-256 w/ L1, STM, Sequential")
	threads := flag.Int("threads", 4, "simulated cores")
	incs := flag.Int("n", 2000, "increments per thread")
	flag.Parse()

	s := asfstack.New(asfstack.Options{Cores: *threads, Runtime: *runtimeName})
	counter := s.AllocShared(8)

	start := s.M.SyncClocks()
	end := s.Parallel(*threads, func(c *sim.CPU) {
		for i := 0; i < *incs; i++ {
			s.Atomic(c, func(tx tm.Tx) {
				tx.Store(counter, tx.Load(counter)+1)
			})
		}
	})

	st := s.TotalStats()
	fmt.Printf("runtime          %s\n", s.RT.Name())
	fmt.Printf("counter          %d (want %d)\n", s.M.Mem.Load(counter), *threads**incs)
	fmt.Printf("simulated time   %.3f ms at 2.2 GHz\n", float64(end-start)/2_200_000)
	fmt.Printf("commits          %d (%d serial-irrevocable)\n", st.Commits, st.Serial)
	fmt.Printf("aborts           %d hardware, %d software\n",
		st.TotalAborts()-st.STMAborts, st.STMAborts)
}
