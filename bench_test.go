package asfstack_test

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus micro-benchmarks of the stack's primitives. The figure benchmarks
// drive the same harness code as cmd/asfbench at a reduced scale and
// report the key simulated metric alongside wall-clock time:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig5 -benchtime=1x
//
// Custom metrics: sim_ms (simulated milliseconds at 2.2 GHz) and simtx/us
// (simulated transactions per microsecond).

import (
	"testing"

	"asfstack"
	"asfstack/internal/asf"
	"asfstack/internal/elision"
	"asfstack/internal/harness"
	"asfstack/internal/intset"
	"asfstack/internal/mem"
	"asfstack/internal/server"
	"asfstack/internal/sim"
	"asfstack/internal/stamp"
	"asfstack/internal/tm"
)

const benchScale = 0.125 // figure sweeps are large; benches run them small

// BenchmarkFig3 — simulator accuracy sweep (8 STAMP configs × 2 machines).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig3(harness.Options{Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 — STAMP scalability sweep (8 apps × 5 runtimes × 4 thread
// counts + sequential bars).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig4(harness.Options{Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 — IntegerSet scalability sweep (8 panels × 4 variants × 4
// thread counts).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig5(harness.Options{Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 — abort-reason breakdown sweep.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig6(harness.Options{Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 — capacity sweep (list and red-black tree size series).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig7(harness.Options{Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 — early-release sweep.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig8(harness.Options{Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 — single-thread overhead breakdown (and Fig. 9).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table1(harness.Options{Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptive — E13 static-vs-adaptive runtime-selection sweep
// (3 STAMP apps × 5 runtimes × 2 thread counts + 2 IntegerSet cells × 5
// runtimes). Its allocs/op and B/op are gated by benchjson -compare in CI.
func BenchmarkAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Adaptive(harness.Options{Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Cell runs one Fig. 5 cell — the 512-element linked list at
// 8 threads, the paper's most traversal-heavy panel — under each execution
// engine at the reported ops count. The sim results are bit-identical by
// construction (the epoch engine replays the serial global order); the
// benchmark exists to measure the host wall-time gap between the engines
// and to gate the epoch hot path's allocs/op via benchjson -compare: the
// replay path must stay allocation-free, so allocs/op growth here means a
// window-table regression.
func BenchmarkFig5Cell(b *testing.B) {
	cfg := intset.Config{Structure: "linkedlist", Runtime: "LLB-256",
		Threads: 8, Range: 512, UpdatePct: 20, OpsPerThread: 1500, Seed: 1}
	for _, eng := range []sim.Engine{sim.EngineSerial, sim.EngineEpoch} {
		b.Run(eng.String(), func(b *testing.B) {
			c := cfg
			c.Engine = eng
			var thr float64
			for i := 0; i < b.N; i++ {
				r, err := intset.Run(c)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput()
			}
			b.ReportMetric(thr, "simtx/us")
		})
	}
}

// BenchmarkServerCell runs one E16 cell — the open-loop server on a
// two-socket topology at an overload point — and reports the sojourn-time
// quantiles as benchmark metrics (the bench-json v2 latency units). The
// quantiles are deterministic for the fixed seed, so benchjson -compare
// shows them as advisory sim-latency deltas across PRs.
func BenchmarkServerCell(b *testing.B) {
	cfg := server.Config{Runtime: "LLB-256", Topology: "2x8",
		Load: 1.4, Scale: 0.25, Seed: 1, SeedSet: true}
	var r server.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = server.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.P50, "p50_cyc")
	b.ReportMetric(r.P95, "p95_cyc")
	b.ReportMetric(r.P99, "p99_cyc")
	b.ReportMetric(r.P999, "p999_cyc")
	b.ReportMetric(r.Throughput(), "simtx/us")
}

// --- per-workload micro-benchmarks with simulated-metric reporting -------

// benchIntset runs one IntegerSet configuration per iteration, reporting
// simulated throughput.
func benchIntset(b *testing.B, cfg intset.Config) {
	var thr float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r, err := intset.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		thr = r.Throughput()
	}
	b.ReportMetric(thr, "simtx/us")
}

func BenchmarkIntsetRBTreeASF(b *testing.B) {
	benchIntset(b, intset.Config{Structure: "rbtree", Runtime: "LLB-256",
		Threads: 8, Range: 1024, UpdatePct: 20, OpsPerThread: 400})
}

func BenchmarkIntsetRBTreeSTM(b *testing.B) {
	benchIntset(b, intset.Config{Structure: "rbtree", Runtime: "STM",
		Threads: 8, Range: 1024, UpdatePct: 20, OpsPerThread: 400})
}

func BenchmarkIntsetListEarlyRelease(b *testing.B) {
	benchIntset(b, intset.Config{Structure: "linkedlist", Runtime: "LLB-8",
		Threads: 8, Range: 256, UpdatePct: 20, OpsPerThread: 400, EarlyRelease: true})
}

func BenchmarkIntsetHashSetASF(b *testing.B) {
	benchIntset(b, intset.Config{Structure: "hashset", Runtime: "LLB-256",
		Threads: 8, Range: 4096, UpdatePct: 100, OpsPerThread: 400})
}

// BenchmarkIntsetProfiled is the flight-recorder-enabled twin of
// BenchmarkIntsetRBTreeASF: the same cell with txprof recording on,
// reporting the profile's wasted-work share alongside throughput. The
// wasted_pct unit is deliberately outside benchjson's deterministic set, so
// -compare prints its drift as advisory and never gates on it.
func BenchmarkIntsetProfiled(b *testing.B) {
	cfg := intset.Config{Structure: "rbtree", Runtime: "LLB-256",
		Threads: 8, Range: 1024, UpdatePct: 20, OpsPerThread: 400, Profile: true}
	var thr, wasted float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r, err := intset.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Profile == nil {
			b.Fatal("profiling enabled but no profile returned")
		}
		thr = r.Throughput()
		wasted = 100 * r.Profile.Summary.WastedRatio
	}
	b.ReportMetric(thr, "simtx/us")
	b.ReportMetric(wasted, "wasted_pct")
}

// benchStamp runs one STAMP configuration per iteration, reporting the
// simulated execution time.
func benchStamp(b *testing.B, app, rt string, threads int) {
	var ms float64
	for i := 0; i < b.N; i++ {
		r, err := stamp.Run(stamp.Config{App: app, Runtime: rt,
			Threads: threads, Scale: 0.25, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		ms = r.Millis
	}
	b.ReportMetric(ms, "sim_ms")
}

func BenchmarkStampGenomeASF(b *testing.B)   { benchStamp(b, "genome", "LLB-256", 8) }
func BenchmarkStampGenomeSTM(b *testing.B)   { benchStamp(b, "genome", "STM", 8) }
func BenchmarkStampVacationASF(b *testing.B) { benchStamp(b, "vacation-low", "LLB-256", 8) }
func BenchmarkStampSSCA2ASF(b *testing.B)    { benchStamp(b, "ssca2", "LLB-256", 8) }

// BenchmarkAtomicOverhead measures the bare begin/commit cost of an empty
// transaction on each runtime (the Table 1 start/commit row in isolation).
func BenchmarkAtomicOverhead(b *testing.B) {
	for _, rt := range asfstack.RuntimeNames {
		b.Run(rt, func(b *testing.B) {
			s := asfstack.New(asfstack.Options{Cores: 1, Runtime: rt})
			a := s.AllocShared(8)
			var perTx float64
			for i := 0; i < b.N; i++ {
				start := s.M.SyncClocks()
				end := s.Parallel(1, func(c *sim.CPU) {
					for j := 0; j < 200; j++ {
						s.Atomic(c, func(tx tm.Tx) { tx.Load(a) })
					}
				})
				perTx = float64(end-start) / 200
			}
			b.ReportMetric(perTx, "simcycles/tx")
		})
	}
}

// BenchmarkSimulatorOpRate measures raw simulation speed: host time per
// simulated memory operation, single core and 8 cores (the rendezvous
// cost).
func BenchmarkSimulatorOpRate(b *testing.B) {
	for _, cores := range []int{1, 8} {
		b.Run(map[int]string{1: "solo", 8: "8core"}[cores], func(b *testing.B) {
			m := sim.New(sim.Barcelona(cores))
			m.Mem.Prefault(0, 1<<24)
			b.ResetTimer()
			ops := 0
			for i := 0; i < b.N; i++ {
				bodies := make([]func(c *sim.CPU), cores)
				for t := 0; t < cores; t++ {
					bodies[t] = func(c *sim.CPU) {
						base := uint64(c.ID()) << 20
						for j := 0; j < 1000; j++ {
							c.Load(mem.Addr(base + uint64(j%512)*64))
						}
					}
				}
				m.Run(bodies...)
				ops += 1000 * cores
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ops), "host_ns/op")
		})
	}
}

// BenchmarkAblationVariants compares the paper's LLB-256 against the two
// ablation configurations DESIGN.md calls out: the pure cache-based
// implementation (§2.3) and the ASF1 revision without dynamic write-set
// expansion (§6), on the red-black-tree workload. ASF1's frozen protected
// set forces the runtime into serial-irrevocable mode for tree updates;
// the cache-based variant suffers associativity displacement.
func BenchmarkAblationVariants(b *testing.B) {
	for _, rt := range []string{"LLB-256", "Cache-based", "ASF1 LLB-256"} {
		b.Run(rt, func(b *testing.B) {
			var thr float64
			var serialPct float64
			for i := 0; i < b.N; i++ {
				r, err := intset.Run(intset.Config{Structure: "rbtree", Runtime: rt,
					Threads: 8, Range: 512, UpdatePct: 20, OpsPerThread: 300,
					Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput()
				serialPct = float64(r.Stats.Serial) / float64(r.Stats.Commits) * 100
			}
			b.ReportMetric(thr, "simtx/us")
			b.ReportMetric(serialPct, "serial%")
		})
	}
}

// BenchmarkLockElision compares eliding a single global lock against
// actually acquiring it, on disjoint per-thread updates (the elision
// best case).
func BenchmarkLockElision(b *testing.B) {
	run := func(b *testing.B, maxAttempts int) (elidedPct float64, simMs float64) {
		m := sim.New(sim.Barcelona(8))
		m.Mem.Prefault(0, 1<<22)
		sys := asf.Install(m, asf.LLB256)
		e := elision.New(sys, 8)
		e.MaxAttempts = maxAttempts
		mu := elision.NewMutex(0x100000)
		bodies := make([]func(*sim.CPU), 8)
		for t := range bodies {
			bodies[t] = func(c *sim.CPU) {
				a := mem.Addr(0x200000 + c.ID()*0x1000)
				for i := 0; i < 300; i++ {
					e.Critical(c, mu, func(cs elision.CS) {
						cs.Store(a, cs.Load(a)+1)
					})
				}
			}
		}
		dur := m.Run(bodies...)
		var st elision.Stats
		for i := 0; i < 8; i++ {
			s := e.Stats(i)
			st.Elided += s.Elided
			st.Acquired += s.Acquired
		}
		return float64(st.Elided) / float64(st.Elided+st.Acquired) * 100,
			float64(dur) / 2_200_000
	}
	b.Run("elided", func(b *testing.B) {
		var pct, ms float64
		for i := 0; i < b.N; i++ {
			pct, ms = run(b, 4)
		}
		b.ReportMetric(pct, "elided%")
		b.ReportMetric(ms, "sim_ms")
	})
	b.Run("always-acquire", func(b *testing.B) {
		var ms float64
		for i := 0; i < b.N; i++ {
			_, ms = run(b, 0)
		}
		b.ReportMetric(ms, "sim_ms")
	})
}
