package asfstack

import (
	"testing"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/stm"
	"asfstack/internal/tm"
)

func TestSTMDebugNoSerial(t *testing.T) {
	const threads, accounts, transfers, initBal = 4, 16, 300, 1000
	s := New(Options{Cores: threads, Runtime: "STM"})
	cfg := stm.DefaultConfig()
	cfg.MaxRetriesBeforeSerial = 1 << 30 // never go serial
	s.RT.(*stm.Runtime).SetConfig(cfg)
	base := s.AllocShared(accounts * mem.LineSize)
	acct := func(i int) mem.Addr { return base + mem.Addr(i*mem.LineSize) }
	for i := 0; i < accounts; i++ {
		s.M.Mem.Store(acct(i), initBal)
	}
	s.Parallel(threads, func(c *sim.CPU) {
		rng := c.Rand()
		for i := 0; i < transfers; i++ {
			from, to := rng.Intn(accounts), rng.Intn(accounts)
			amt := mem.Word(rng.Intn(50))
			s.Atomic(c, func(tx tm.Tx) {
				f := tx.Load(acct(from))
				tx.Store(acct(from), f-amt)
				tx.Store(acct(to), tx.Load(acct(to))+amt)
			})
		}
	})
	var sum mem.Word
	for i := 0; i < accounts; i++ {
		sum += s.M.Mem.Load(acct(i))
	}
	st := s.TotalStats()
	t.Logf("commits=%d stmAborts=%d serial=%d", st.Commits, st.STMAborts, st.Serial)
	if sum != accounts*initBal {
		t.Fatalf("total = %d, want %d", sum, accounts*initBal)
	}
}
