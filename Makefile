# Tier-1 verification targets. `make verify` is what CI and pre-merge
# checks run: build + vet + full tests, plus the race detector on the two
# packages with real host concurrency (the parallel experiment scheduler
# and the TM runtime it drives).

GO ?= go

.PHONY: build vet test race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/harness ./internal/asftm

verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x
