# Tier-1 verification targets. `make verify` is what CI and pre-merge
# checks run: build + vet + full tests, plus the race detector on the two
# packages with real host concurrency (the parallel experiment scheduler
# and the TM runtime it drives).

GO ?= go

.PHONY: build vet test race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/harness ./internal/asftm ./internal/litmus

verify: build vet test race

# `make bench` runs the figure benchmarks plus the simulator
# micro-benchmarks and records the results in $(BENCH_JSON) (section
# $(BENCH_SECTION); see EXPERIMENTS.md for the schema). The figure sweeps
# run once (-benchtime 1x); the noise-sensitive op-rate micro-benchmark is
# re-run longer and its later lines override the 1x pass.
BENCH_JSON ?= BENCH_PR10.json
BENCH_SECTION ?= current

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -timeout 60m . > BENCH_OUT.txt
	$(GO) test -run '^$$' -bench BenchmarkSimulatorOpRate -benchtime 2s . >> BENCH_OUT.txt
	cat BENCH_OUT.txt
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) -section $(BENCH_SECTION) < BENCH_OUT.txt
