module asfstack

go 1.23
