module asfstack

go 1.22
