// Package asfstack assembles the complete transactional memory stack the
// paper evaluates: the simulated multicore machine (package sim), AMD's
// Advanced Synchronization Facility (package asf), the ASF-TM runtime
// (package asftm) with its serial-irrevocable fallback, the TinySTM
// baseline (package stm), and the uninstrumented sequential baseline
// (package seq) — all behind the portable TM ABI of package tm.
//
// A Stack is one configured machine plus one TM runtime. Programs are
// thread bodies that run atomic blocks:
//
//	s := asfstack.New(asfstack.Options{Cores: 4, Runtime: "LLB-256"})
//	ctr := s.AllocLines(1)
//	s.Parallel(4, func(c *sim.CPU) {
//	    for i := 0; i < 1000; i++ {
//	        s.RT.Atomic(c, func(tx tm.Tx) {
//	            tx.Store(ctr, tx.Load(ctr)+1)
//	        })
//	    }
//	})
package asfstack

import (
	"fmt"

	"asfstack/internal/adaptive"
	"asfstack/internal/asf"
	"asfstack/internal/asftm"
	"asfstack/internal/cohorts"
	"asfstack/internal/hytm"
	"asfstack/internal/mem"
	"asfstack/internal/metrics"
	"asfstack/internal/seq"
	"asfstack/internal/sim"
	"asfstack/internal/stm"
	"asfstack/internal/tm"
	"asfstack/internal/topo"
	"asfstack/internal/txprof"
)

// RuntimeNames lists the accepted Options.Runtime values, in the order the
// paper's figures use them.
var RuntimeNames = []string{
	"LLB-8", "LLB-256", "LLB-8 w/ L1", "LLB-256 w/ L1", "STM",
	"HyTM-8", "HyTM-256", "Cohorts", "Cohorts-turbo",
	"Adaptive-8", "Adaptive-256", "Sequential",
}

// Options configures a Stack.
type Options struct {
	// Cores is the number of simulated cores (the paper's machine has 8).
	Cores int
	// Runtime selects the TM implementation by figure label: one of
	// RuntimeNames.
	Runtime string
	// Seed makes runs reproducible; 0 selects the default.
	Seed int64
	// HeapPerCore sizes each core's allocation arena in bytes
	// (default 64 MiB).
	HeapPerCore uint64
	// Topology selects the socket layout ("2x8": two sockets of eight
	// cores, per-socket L3 slices, cross-socket hop latency; see
	// internal/topo). Empty keeps the single-socket machine. When set,
	// Cores must be zero or equal the topology's total; it takes
	// precedence over any topology in Machine.
	Topology string
	// Machine, if non-nil, overrides the default Barcelona configuration
	// (Cores, Seed, Topology and Engine above still apply).
	Machine *sim.Config
	// Engine selects the simulator execution engine (serial or epoch).
	// Simulated results are identical either way; see sim.Engine. A
	// non-serial value takes precedence over Machine's engine field.
	Engine sim.Engine
	// EpochLen overrides the epoch engine's epoch length in cycles
	// (sim.DefaultEpochLen when zero). A pure host-performance knob.
	EpochLen uint64
	// Profile installs the transaction-level flight recorder
	// (internal/txprof) on the selected runtime. Off by default: the
	// disabled path costs one nil check per would-be event.
	Profile bool
	// ProfileRing overrides the per-core event ring capacity
	// (txprof.DefaultRing when zero).
	ProfileRing int
}

// Stack is one simulated machine with one TM runtime installed.
type Stack struct {
	M      *sim.Machine
	Layout *mem.Layout
	Heap   *tm.Heap
	// ASF is the installed ASF system, or nil for the STM and
	// sequential runtimes (which run on the bare machine).
	ASF *asf.System
	// ASFTM is the ASF-TM runtime when Runtime selected one, else nil.
	ASFTM *asftm.Runtime
	// HYTM is the hybrid runtime when Runtime selected one ("HyTM-8",
	// "HyTM-256"), else nil.
	HYTM *hytm.Runtime
	// STM is the TinySTM runtime when Runtime is "STM", else nil.
	STM *stm.Runtime
	// COHORTS is the batch-commit runtime when Runtime is "Cohorts" or
	// "Cohorts-turbo", else nil.
	COHORTS *cohorts.Runtime
	// ADAPT is the online runtime selector when Runtime is "Adaptive-8",
	// "Adaptive-256" (or the "adaptive" alias), else nil. When set, the
	// per-runtime fields above point at its inner instances.
	ADAPT *adaptive.Runtime
	// RT is the selected runtime behind the portable ABI.
	RT tm.Runtime
	// Metrics is the stack-wide registry: every layer registers its
	// instruments here during construction, keyed per core. Snapshot via
	// MetricsSnapshot, which enforces barrier semantics.
	Metrics *metrics.Registry
	// Prof is the transaction-level flight recorder when Options.Profile
	// was set (and the selected runtime supports profiling), else nil.
	// Snapshot via TxProfile, which enforces barrier semantics.
	Prof *txprof.Recorder

	gauges stackGauges
}

// stackGauges holds the fill-at-barrier handles for quantities other layers
// already count in their own structs (sim cycle breakdown, cache statistics,
// tm outcome counters). They are copied into the registry at snapshot time
// rather than maintained on the hot path.
type stackGauges struct {
	simCycles [sim.NumCategories]metrics.Gauge

	loads, stores          metrics.Gauge
	l1Hits, l2Hits, l3Hits metrics.Gauge
	c2c, memFills          metrics.Gauge
	tlb1Miss, tlbWalks     metrics.Gauge
	evictions              metrics.Gauge
	l1Resident, l2Resident metrics.Gauge
	xsockHops, l3Remote    metrics.Gauge

	tmCommits, tmSerial metrics.Gauge
	tmAborts            [sim.NumAbortReasons]metrics.Gauge
	tmMallocAborts      metrics.Gauge
	tmSTMAborts         metrics.Gauge
	tmSWCommits         metrics.Gauge
	tmSeqAborts         metrics.Gauge
	tmSeals             metrics.Gauge
}

func (g *stackGauges) register(reg *metrics.Registry) {
	for k := 0; k < sim.NumCategories; k++ {
		g.simCycles[k] = reg.Gauge("sim/cycles/" + sim.Category(k).String())
	}
	g.loads = reg.Gauge("cache/loads")
	g.stores = reg.Gauge("cache/stores")
	g.l1Hits = reg.Gauge("cache/l1_hits")
	g.l2Hits = reg.Gauge("cache/l2_hits")
	g.l3Hits = reg.Gauge("cache/l3_hits")
	g.c2c = reg.Gauge("cache/c2c_transfers")
	g.memFills = reg.Gauge("cache/mem_fills")
	g.tlb1Miss = reg.Gauge("cache/tlb1_misses")
	g.tlbWalks = reg.Gauge("cache/tlb_walks")
	g.evictions = reg.Gauge("cache/evictions")
	g.l1Resident = reg.Gauge("cache/l1_resident_lines")
	g.l2Resident = reg.Gauge("cache/l2_resident_lines")
	g.xsockHops = reg.Gauge("cache/xsock_hops")
	g.l3Remote = reg.Gauge("cache/l3_remote_hits")

	g.tmCommits = reg.Gauge("tm/commits")
	g.tmSerial = reg.Gauge("tm/serial")
	for r := 1; r < sim.NumAbortReasons; r++ { // skip AbortNone
		g.tmAborts[r] = reg.Gauge("tm/aborts/" + sim.AbortReason(r).String())
	}
	g.tmMallocAborts = reg.Gauge("tm/malloc_aborts")
	g.tmSTMAborts = reg.Gauge("tm/stm_aborts")
	g.tmSWCommits = reg.Gauge("tm/sw_commits")
	g.tmSeqAborts = reg.Gauge("tm/seq_aborts")
	g.tmSeals = reg.Gauge("tm/cohort_seals")
}

// New builds a stack. It panics on configuration errors (these are
// programming mistakes, not runtime conditions).
func New(opts Options) *Stack {
	var tp topo.Topology
	if opts.Topology != "" {
		var err error
		tp, err = topo.Parse(opts.Topology)
		if err != nil {
			panic(fmt.Sprintf("asfstack: %v", err))
		}
		if opts.Cores > 0 && opts.Cores != tp.Total() {
			panic(fmt.Sprintf("asfstack: %d cores conflict with topology %s (%d cores)",
				opts.Cores, tp, tp.Total()))
		}
		opts.Cores = tp.Total()
	}
	if opts.Cores <= 0 {
		opts.Cores = 1
	}
	if opts.HeapPerCore == 0 {
		opts.HeapPerCore = 64 << 20
	}
	cfg := sim.Barcelona(opts.Cores)
	if opts.Machine != nil {
		cfg = *opts.Machine
		cfg.Cores = opts.Cores
	}
	if !tp.IsZero() {
		cfg.Topology = tp
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Engine != sim.EngineSerial {
		cfg.Engine = opts.Engine
	}
	if opts.EpochLen != 0 {
		cfg.EpochLen = opts.EpochLen
	}
	m := sim.New(cfg)
	layout := mem.NewLayout(mem.PageSize) // skip page zero
	heap := tm.NewHeap(m.Mem, layout, opts.Cores, opts.HeapPerCore)

	s := &Stack{M: m, Layout: layout, Heap: heap, Metrics: metrics.New(opts.Cores)}
	s.gauges.register(s.Metrics)
	switch opts.Runtime {
	case "STM":
		s.STM = stm.New(m, heap, layout)
		s.STM.SetMetrics(s.Metrics)
		s.RT = s.STM
	case "Sequential", "":
		s.RT = seq.New(heap, opts.Cores)
	case "HyTM-8", "HyTM-256":
		// The hybrid runtime runs on the same ASF hardware variants as
		// ASF-TM; the label selects the LLB size.
		vname := "LLB-8"
		if opts.Runtime == "HyTM-256" {
			vname = "LLB-256"
		}
		v, err := asf.VariantByName(vname)
		if err != nil {
			panic(fmt.Sprintf("asfstack: %v", err))
		}
		s.ASF = asf.Install(m, v)
		s.ASF.SetMetrics(s.Metrics)
		s.HYTM = hytm.New(s.ASF, heap, m, layout, opts.Runtime)
		s.HYTM.SetMetrics(s.Metrics)
		s.RT = s.HYTM
	case "Cohorts", "Cohorts-turbo":
		s.COHORTS = cohorts.New(m, heap, layout, opts.Runtime)
		s.COHORTS.SetMetrics(s.Metrics)
		cfg := cohorts.DefaultConfig()
		cfg.Turbo = opts.Runtime == "Cohorts-turbo"
		s.COHORTS.SetConfig(cfg)
		s.RT = s.COHORTS
	case "Adaptive-8", "Adaptive-256", "adaptive":
		// The selector owns one instance of every runtime over the same
		// machine, heap, and ASF system, and switches the active one at
		// quiescent points ("adaptive" is the LLB-8 alias).
		vname := "LLB-8"
		if opts.Runtime == "Adaptive-256" {
			vname = "LLB-256"
		}
		v, err := asf.VariantByName(vname)
		if err != nil {
			panic(fmt.Sprintf("asfstack: %v", err))
		}
		s.ASF = asf.Install(m, v)
		s.ASF.SetMetrics(s.Metrics)
		s.ASFTM = asftm.New(s.ASF, heap, m, layout)
		s.ASFTM.SetMetrics(s.Metrics)
		hname := "HyTM-8"
		if vname == "LLB-256" {
			hname = "HyTM-256"
		}
		s.HYTM = hytm.New(s.ASF, heap, m, layout, hname)
		s.HYTM.SetMetrics(s.Metrics)
		s.STM = stm.New(m, heap, layout)
		s.STM.SetMetrics(s.Metrics)
		s.COHORTS = cohorts.New(m, heap, layout, "Cohorts-turbo")
		s.COHORTS.SetMetrics(s.Metrics)
		ccfg := cohorts.DefaultConfig()
		ccfg.Turbo = true
		s.COHORTS.SetConfig(ccfg)
		name := opts.Runtime
		if name == "adaptive" {
			name = "Adaptive-8"
		}
		s.ADAPT = adaptive.New(m, layout, name, [adaptive.NumModes]tm.Runtime{
			adaptive.ModeASFTM:   s.ASFTM,
			adaptive.ModeHyTM:    s.HYTM,
			adaptive.ModeSTM:     s.STM,
			adaptive.ModeCohorts: s.COHORTS,
		})
		s.ADAPT.SetMetrics(s.Metrics)
		s.RT = s.ADAPT
	default:
		v, err := asf.VariantByName(opts.Runtime)
		if err != nil {
			panic(fmt.Sprintf("asfstack: %v (want one of %v)", err, RuntimeNames))
		}
		s.ASF = asf.Install(m, v)
		s.ASF.SetMetrics(s.Metrics)
		s.ASFTM = asftm.New(s.ASF, heap, m, layout)
		s.ASFTM.SetMetrics(s.Metrics)
		s.RT = s.ASFTM
	}
	if opts.Profile {
		if p, ok := s.RT.(tm.ProfilableRuntime); ok {
			s.Prof = txprof.NewRecorder(opts.Cores, opts.ProfileRing)
			p.SetProfiler(s.Prof)
		}
	}
	return s
}

// AllocShared allocates size bytes of prefaulted shared memory for initial
// data (setup phase; charges no cycles). The allocation is padded to whole
// cache lines, the paper's anti-false-sharing discipline for the entry
// points of the main data structures.
func (s *Stack) AllocShared(size uint64) mem.Addr {
	a := s.Heap.SetupAlloc(0, alignUp(size, mem.LineSize), mem.LineSize)
	return a
}

// Parallel runs one thread body on each of n cores to completion and
// returns the simulated duration in cycles. Each thread announces a final
// quiescent state on exit (CPU.IdleHint), so a runtime tracking per-core
// liveness — the adaptive selector's switch gate — never waits on a core
// that has left the region.
func (s *Stack) Parallel(n int, body func(c *sim.CPU)) uint64 {
	bodies := make([]func(*sim.CPU), n)
	for i := range bodies {
		bodies[i] = func(c *sim.CPU) {
			body(c)
			c.IdleHint()
		}
	}
	return s.M.Run(bodies...)
}

// Setup runs body on core 0 with a direct (uninstrumented, plain-access)
// transaction handle — for building initial data sets before the measured
// phase. Simulated time advances but is outside any measurement window.
func (s *Stack) Setup(body func(tx tm.Tx)) {
	s.M.Run(func(c *sim.CPU) {
		body(tm.Direct(c, s.Heap))
	})
}

// BeginMeasured marks the boundary between setup and the measured phase:
// core clocks are aligned, private caches are flushed to L3 (the state at
// PTLsim's native-to-simulated switchover), and all statistics are reset.
// It returns the common start time in cycles.
func (s *Stack) BeginMeasured() uint64 {
	for i := 0; i < s.M.Config().Cores; i++ {
		s.M.Hier.FlushPrivate(i)
		s.M.Hier.FlushTLB(i)
	}
	start := s.M.SyncClocks()
	s.M.ResetAllCounters()
	s.RT.ResetStats()
	s.Metrics.Reset()
	if s.Prof != nil {
		s.Prof.Reset()
	}
	return start
}

// TxProfile snapshots the flight recorder into its serialized form, or
// returns nil when Options.Profile was off. Barrier-only, like
// MetricsSnapshot.
func (s *Stack) TxProfile() *txprof.Profile {
	if s.Prof == nil {
		return nil
	}
	if s.M.Running() {
		panic("asfstack: TxProfile while the machine is running; profiles are barrier-only")
	}
	return s.Prof.Profile()
}

// fillGauges copies the sim, cache, and tm counters into the registry's
// gauges. Only valid at a barrier.
func (s *Stack) fillGauges() {
	for i := 0; i < s.M.Config().Cores; i++ {
		b := s.M.CPU(i).Counters()
		for k := 0; k < sim.NumCategories; k++ {
			s.gauges.simCycles[k].Set(i, b[k])
		}
		cs := s.M.Hier.Stats(i)
		s.gauges.loads.Set(i, cs.Loads)
		s.gauges.stores.Set(i, cs.Stores)
		s.gauges.l1Hits.Set(i, cs.L1Hits)
		s.gauges.l2Hits.Set(i, cs.L2Hits)
		s.gauges.l3Hits.Set(i, cs.L3Hits)
		s.gauges.c2c.Set(i, cs.C2C)
		s.gauges.memFills.Set(i, cs.MemFills)
		s.gauges.tlb1Miss.Set(i, cs.TLB1Miss)
		s.gauges.tlbWalks.Set(i, cs.TLBWalks)
		s.gauges.evictions.Set(i, cs.Evictions)
		l1, l2 := s.M.Hier.Occupancy(i)
		s.gauges.l1Resident.Set(i, uint64(l1))
		s.gauges.l2Resident.Set(i, uint64(l2))
		s.gauges.xsockHops.Set(i, cs.XSockHops)
		s.gauges.l3Remote.Set(i, cs.L3RemoteHits)

		st := s.RT.Stats(i)
		s.gauges.tmCommits.Set(i, st.Commits)
		s.gauges.tmSerial.Set(i, st.Serial)
		for r := 1; r < sim.NumAbortReasons; r++ {
			s.gauges.tmAborts[r].Set(i, st.Aborts[r])
		}
		s.gauges.tmMallocAborts.Set(i, st.MallocAborts)
		s.gauges.tmSTMAborts.Set(i, st.STMAborts)
		s.gauges.tmSWCommits.Set(i, st.SWCommits)
		s.gauges.tmSeqAborts.Set(i, st.SeqAborts)
		s.gauges.tmSeals.Set(i, st.Seals)
	}
}

// MetricsSnapshot fills the barrier gauges and returns a deterministic
// snapshot of every registered instrument. It panics if called while the
// machine is running: metric state is only coherent between Run calls.
func (s *Stack) MetricsSnapshot() *metrics.Snapshot {
	if s.M.Running() {
		panic("asfstack: MetricsSnapshot while the machine is running; snapshots are barrier-only")
	}
	s.fillGauges()
	return s.Metrics.Snapshot()
}

// Atomic is shorthand for s.RT.Atomic.
func (s *Stack) Atomic(c *sim.CPU, body func(tx tm.Tx)) { s.RT.Atomic(c, body) }

// TotalStats sums the runtime's per-core statistics. Like MetricsSnapshot it
// is barrier-only: the per-core counters are written by core goroutines
// without synchronisation while a Run call is in flight.
func (s *Stack) TotalStats() tm.Stats {
	if s.M.Running() {
		panic("asfstack: TotalStats while the machine is running; stats are barrier-only")
	}
	var t tm.Stats
	for i := 0; i < s.M.Config().Cores; i++ {
		t.Add(s.RT.Stats(i))
	}
	return t
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
