package asfstack

import (
	"testing"

	"asfstack/internal/mem"
	"asfstack/internal/sim"
	"asfstack/internal/tm"
)

// concurrentRuntimes are the runtimes that are correct on >1 thread.
var concurrentRuntimes = []string{
	"LLB-8", "LLB-256", "LLB-8 w/ L1", "LLB-256 w/ L1", "STM",
}

func TestAtomicCounterAllRuntimes(t *testing.T) {
	const threads, incs = 4, 250
	for _, rt := range concurrentRuntimes {
		t.Run(rt, func(t *testing.T) {
			s := New(Options{Cores: threads, Runtime: rt})
			ctr := s.AllocShared(8)
			s.Parallel(threads, func(c *sim.CPU) {
				for i := 0; i < incs; i++ {
					s.Atomic(c, func(tx tm.Tx) {
						tx.Store(ctr, tx.Load(ctr)+1)
					})
				}
			})
			if got := s.M.Mem.Load(ctr); got != threads*incs {
				t.Fatalf("counter = %d, want %d", got, threads*incs)
			}
			st := s.TotalStats()
			if st.Commits != threads*incs {
				t.Fatalf("commits = %d, want %d", st.Commits, threads*incs)
			}
		})
	}
}

func TestBankTransferInvariant(t *testing.T) {
	// Random transfers between accounts must conserve the total: the
	// classic atomicity test. Accounts are line-padded so conflicts are
	// real (not false sharing).
	const threads, accounts, transfers, initBal = 4, 16, 300, 1000
	for _, rt := range concurrentRuntimes {
		t.Run(rt, func(t *testing.T) {
			s := New(Options{Cores: threads, Runtime: rt})
			base := s.AllocShared(accounts * mem.LineSize)
			acct := func(i int) mem.Addr { return base + mem.Addr(i*mem.LineSize) }
			for i := 0; i < accounts; i++ {
				s.M.Mem.Store(acct(i), initBal)
			}
			s.Parallel(threads, func(c *sim.CPU) {
				rng := c.Rand()
				for i := 0; i < transfers; i++ {
					from, to := rng.Intn(accounts), rng.Intn(accounts)
					amt := mem.Word(rng.Intn(50))
					s.Atomic(c, func(tx tm.Tx) {
						f := tx.Load(acct(from))
						tx.Store(acct(from), f-amt)
						tx.Store(acct(to), tx.Load(acct(to))+amt)
					})
				}
			})
			var sum mem.Word
			for i := 0; i < accounts; i++ {
				sum += s.M.Mem.Load(acct(i))
			}
			if sum != accounts*initBal {
				t.Fatalf("total = %d, want %d", sum, accounts*initBal)
			}
		})
	}
}

func TestCapacityFallbackKeepsCorrectness(t *testing.T) {
	// Transactions touching 32 lines exceed LLB-8: every one of them must
	// fall back to serial-irrevocable mode and still commit atomically.
	const threads, rounds, lines = 4, 40, 32
	s := New(Options{Cores: threads, Runtime: "LLB-8"})
	base := s.AllocShared(lines * mem.LineSize)
	s.Parallel(threads, func(c *sim.CPU) {
		for i := 0; i < rounds; i++ {
			s.Atomic(c, func(tx tm.Tx) {
				for j := 0; j < lines; j++ {
					a := base + mem.Addr(j*mem.LineSize)
					tx.Store(a, tx.Load(a)+1)
				}
			})
		}
	})
	for j := 0; j < lines; j++ {
		a := base + mem.Addr(j*mem.LineSize)
		if got := s.M.Mem.Load(a); got != threads*rounds {
			t.Fatalf("line %d = %d, want %d", j, got, threads*rounds)
		}
	}
	st := s.TotalStats()
	if st.Serial == 0 {
		t.Fatal("no serial-irrevocable executions despite capacity overflow")
	}
	if st.Aborts[sim.AbortCapacity] == 0 {
		t.Fatal("no capacity aborts recorded")
	}
}

func TestMixedReadersAndWriters(t *testing.T) {
	// Writers update a shared array; readers snapshot two cells and check
	// they observe a consistent pair (both updated together).
	const threads, rounds = 4, 200
	for _, rt := range concurrentRuntimes {
		t.Run(rt, func(t *testing.T) {
			s := New(Options{Cores: threads, Runtime: rt})
			base := s.AllocShared(2 * mem.LineSize)
			a0, a1 := base, base+mem.LineSize
			bad := 0
			s.Parallel(threads, func(c *sim.CPU) {
				for i := 0; i < rounds; i++ {
					if c.ID()%2 == 0 {
						s.Atomic(c, func(tx tm.Tx) {
							v := tx.Load(a0)
							tx.Store(a0, v+1)
							tx.Store(a1, v+1)
						})
					} else {
						s.Atomic(c, func(tx tm.Tx) {
							x := tx.Load(a0)
							y := tx.Load(a1)
							if x != y {
								bad++
							}
						})
					}
				}
			})
			if bad != 0 {
				t.Fatalf("%d inconsistent snapshots (atomicity violation)", bad)
			}
		})
	}
}

func TestTransactionalAllocation(t *testing.T) {
	// Allocate nodes inside transactions and link them into a shared
	// list; the list length must equal the commits.
	const threads, pushes = 4, 100
	for _, rt := range concurrentRuntimes {
		t.Run(rt, func(t *testing.T) {
			s := New(Options{Cores: threads, Runtime: rt})
			head := s.AllocShared(8)
			s.Parallel(threads, func(c *sim.CPU) {
				for i := 0; i < pushes; i++ {
					s.Atomic(c, func(tx tm.Tx) {
						n := tx.Alloc(16) // next, value
						tx.Store(n+8, mem.Word(c.ID()))
						tx.Store(n, tx.Load(head))
						tx.Store(head, mem.Word(n))
					})
				}
			})
			count := 0
			for p := s.M.Mem.Load(head); p != 0; p = s.M.Mem.Load(mem.Addr(p)) {
				count++
			}
			if count != threads*pushes {
				t.Fatalf("list length = %d, want %d", count, threads*pushes)
			}
		})
	}
}

func TestNestedAtomicFlattens(t *testing.T) {
	for _, rt := range append(concurrentRuntimes, "Sequential") {
		t.Run(rt, func(t *testing.T) {
			s := New(Options{Cores: 1, Runtime: rt})
			a := s.AllocShared(8)
			s.Parallel(1, func(c *sim.CPU) {
				s.Atomic(c, func(tx tm.Tx) {
					tx.Store(a, 1)
					s.Atomic(c, func(tx2 tm.Tx) {
						tx2.Store(a, tx2.Load(a)+1)
					})
					tx.Store(a, tx.Load(a)+1)
				})
			})
			if got := s.M.Mem.Load(a); got != 3 {
				t.Fatalf("nested result = %d, want 3", got)
			}
		})
	}
}

func TestSequentialBaselineRuns(t *testing.T) {
	s := New(Options{Cores: 1, Runtime: "Sequential"})
	a := s.AllocShared(8)
	dur := s.Parallel(1, func(c *sim.CPU) {
		for i := 0; i < 100; i++ {
			s.Atomic(c, func(tx tm.Tx) {
				tx.Store(a, tx.Load(a)+1)
			})
		}
	})
	if got := s.M.Mem.Load(a); got != 100 {
		t.Fatalf("counter = %d", got)
	}
	if dur == 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestASFOutperformsSTMSingleThread(t *testing.T) {
	// The headline claim at one thread: ASF-TM's barriers are far cheaper
	// than the STM's. Run identical work and compare simulated time.
	run := func(rt string) uint64 {
		s := New(Options{Cores: 1, Runtime: rt})
		base := s.AllocShared(64 * mem.LineSize)
		return s.Parallel(1, func(c *sim.CPU) {
			rng := c.Rand()
			for i := 0; i < 300; i++ {
				s.Atomic(c, func(tx tm.Tx) {
					for j := 0; j < 8; j++ {
						a := base + mem.Addr(rng.Intn(64)*mem.LineSize)
						tx.Store(a, tx.Load(a)+1)
					}
				})
			}
		})
	}
	asfT, stmT := run("LLB-256"), run("STM")
	if asfT >= stmT {
		t.Fatalf("ASF (%d cycles) not faster than STM (%d cycles)", asfT, stmT)
	}
}

func TestAblationRuntimesWork(t *testing.T) {
	// The ablation configurations are full runtimes: correctness must
	// hold even where their hardware limits force the serial fallback.
	const threads, incs = 4, 150
	for _, rt := range []string{"Cache-based", "ASF1 LLB-256"} {
		t.Run(rt, func(t *testing.T) {
			s := New(Options{Cores: threads, Runtime: rt})
			base := s.AllocShared(4 * mem.LineSize)
			s.Parallel(threads, func(c *sim.CPU) {
				rng := c.Rand()
				for i := 0; i < incs; i++ {
					a := base + mem.Addr(rng.Intn(4)*mem.LineSize)
					s.Atomic(c, func(tx tm.Tx) {
						tx.Store(a, tx.Load(a)+1)
					})
				}
			})
			var sum mem.Word
			for i := 0; i < 4; i++ {
				sum += s.M.Mem.Load(base + mem.Addr(i*mem.LineSize))
			}
			if sum != threads*incs {
				t.Fatalf("sum = %d, want %d", sum, threads*incs)
			}
		})
	}
}

func TestUnknownRuntimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bogus runtime accepted")
		}
	}()
	New(Options{Cores: 1, Runtime: "LLB-512"})
}

func TestBeginMeasuredResetsEverything(t *testing.T) {
	s := New(Options{Cores: 2, Runtime: "LLB-256"})
	a := s.AllocShared(8)
	s.Parallel(2, func(c *sim.CPU) {
		for i := 0; i < 20; i++ {
			s.Atomic(c, func(tx tm.Tx) { tx.Store(a, tx.Load(a)+1) })
		}
	})
	start := s.BeginMeasured()
	if st := s.TotalStats(); st.Commits != 0 {
		t.Fatal("stats survived BeginMeasured")
	}
	for i := 0; i < 2; i++ {
		if s.M.CPU(i).Now() != start {
			t.Fatal("clocks not synchronised")
		}
		if s.M.CPU(i).Counters().Total() != 0 {
			t.Fatal("counters survived BeginMeasured")
		}
	}
}
